// Package mkse is a Go implementation of the efficient and secure ranked
// multi-keyword search (MKS) scheme of Örencik & Savaş, "Efficient and
// Secure Ranked Multi-Keyword Search on Encrypted Cloud Data" (PAIS/EDBT
// Workshops 2012).
//
// # The scheme in one paragraph
//
// A data owner derives, for every keyword, a short bit index: an HMAC under
// a secret per-bin key, reduced from GF(2^d) digits to r bits (r = 448,
// d = 6 by default). A document's searchable index is the bitwise AND of
// its keywords' indices; a query index is the bitwise AND of the searched
// keywords' trapdoors plus V randomly chosen decoy-keyword trapdoors. The
// cloud server — which holds only encrypted documents, RSA-wrapped document
// keys and these opaque bit indices — matches a query against a document
// with a single r-bit comparison (every 0 of the query must be 0 in the
// document index), walks η cumulative term-frequency levels to assign a
// rank, and returns the top-τ matches. Document retrieval runs a Chaum
// blind-decryption protocol with the owner so that nobody, owner included,
// learns which document the user read.
//
// # Server engine
//
// The server stores indices in sharded columnar arenas — one flat []uint64
// per (shard, ranking level) holding every document's index words
// back-to-back — and scans them with a zero-word-skipping kernel that
// preprocesses each query into the few 64-bit words where ¬q ≠ 0 (the only
// words Equation 3 can fail on) and touches nothing else. Searches fan out
// over the shards with a worker pool, keep bounded top-τ heaps, and reuse
// pooled scratch so the steady-state query path is allocation-free; results
// are byte-identical to the paper's sequential scan. See core.Server and
// EXPERIMENTS.md ("Columnar index arenas") for the layout and measurements.
//
// # Persistence and crash recovery
//
// The cloud daemon's documents survive crashes, not just clean exits: a
// durable storage engine (internal/durable) appends every upload and delete
// to a CRC-framed write-ahead log before acknowledging it, with an fsync
// policy chosen per deployment (every record, on an interval, or never). A
// background checkpointer periodically materializes the server's state —
// pausing only the mutation stream for milliseconds while searches keep
// running — serializes it beside the log (internal/store's versioned
// checkpoint format, which still loads pre-engine snapshot files), and
// truncates the replayed log. Recovery loads the newest checkpoint and
// replays the log tail, tolerating the torn final record a crash mid-append
// leaves; for any crash point the recovered server's search output is
// byte-identical to a server that applied exactly the surviving operations.
// Documents can also be removed end to end: core.Server.Delete compacts the
// columnar arenas by swap-remove, and the Delete verb runs through the wire
// protocol, the daemons and the client. See EXPERIMENTS.md ("Durable
// storage engine") for replay-throughput and checkpoint-pause numbers.
//
// # Package layout
//
// This root package is the public API: parameters, the three roles (Owner,
// CloudServer, User), an in-process System harness, and the networked
// Client/daemon types. The implementation lives in internal packages:
//
//   - internal/core — the scheme itself (index/trapdoor/query generation,
//     oblivious ranked search, blinded retrieval)
//   - internal/bitindex, internal/kdf, internal/bins — index substrates
//   - internal/blindrsa, internal/sym — cryptographic substrates
//   - internal/analysis — the Section 6/7 analytic model
//   - internal/baseline/caomrse, internal/baseline/wangcsi — the paper's
//     comparison baselines
//   - internal/protocol, internal/service — the three-party TCP deployment
//
// # Quickstart
//
// See examples/quickstart for a complete program:
//
//	sys, _ := mkse.NewSystem(mkse.DefaultParams())
//	_ = sys.AddDocument("report-1", []byte("the quarterly cloud revenue grew"))
//	alice, _ := sys.NewUser("alice")
//	matches, _ := sys.Search(alice, []string{"cloud", "revenue"}, 10)
//	plaintext, _ := sys.Retrieve(alice, matches[0].DocID)
//
// The cmd/ directory ships the three daemons (mkse-owner, mkse-server,
// mkse-client) and the experiment driver (mkse-bench) that regenerates
// every table and figure of the paper's evaluation; see EXPERIMENTS.md.
package mkse
