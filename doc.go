// Package mkse is a Go implementation of the efficient and secure ranked
// multi-keyword search (MKS) scheme of Örencik & Savaş, "Efficient and
// Secure Ranked Multi-Keyword Search on Encrypted Cloud Data" (PAIS/EDBT
// Workshops 2012).
//
// # The scheme in one paragraph
//
// A data owner derives, for every keyword, a short bit index: an HMAC under
// a secret per-bin key, reduced from GF(2^d) digits to r bits (r = 448,
// d = 6 by default). A document's searchable index is the bitwise AND of
// its keywords' indices; a query index is the bitwise AND of the searched
// keywords' trapdoors plus V randomly chosen decoy-keyword trapdoors. The
// cloud server — which holds only encrypted documents, RSA-wrapped document
// keys and these opaque bit indices — matches a query against a document
// with a single r-bit comparison (every 0 of the query must be 0 in the
// document index), walks η cumulative term-frequency levels to assign a
// rank, and returns the top-τ matches. Document retrieval runs a Chaum
// blind-decryption protocol with the owner so that nobody, owner included,
// learns which document the user read.
//
// # Server engine
//
// The server stores indices in sharded columnar arenas — one flat []uint64
// per (shard, ranking level) holding every document's index words
// back-to-back, plus a word-major transpose of level 0 (one contiguous
// column per 64-bit word offset). Each query is preprocessed into the few
// words where ¬q ≠ 0 (the only words Equation 3 can fail on), and the
// level-0 screen sweeps just those columns with a blocked
// bitmap-refinement kernel: a branch-free pass over the first active
// column yields a survivor bitmask per 64 documents, and only surviving
// blocks are tested against the remaining active columns, most selective
// first. Searches fan out over the shards to persistent shard-affine
// workers, keep bounded top-τ heaps, and reuse pooled scratch so the
// steady-state query path is allocation-free; results are byte-identical
// to the paper's sequential scan, at million-document corpus scale
// (mkse-bench -exp million streams an arbitrarily large corpus through
// index construction and reports build, latency-percentile and memory
// numbers). See core.Server, ARCHITECTURE.md ("Index arena layouts") and
// EXPERIMENTS.md ("Columnar index arenas") for layouts and measurements.
//
// # Persistence and crash recovery
//
// The cloud daemon's documents survive crashes, not just clean exits: a
// durable storage engine (internal/durable) appends every upload and delete
// to a CRC-framed write-ahead log before acknowledging it, with an fsync
// policy chosen per deployment (every record, on an interval, or never). A
// background checkpointer periodically materializes the server's state —
// pausing only the mutation stream for milliseconds while searches keep
// running — serializes it beside the log (internal/store's versioned
// checkpoint format, which still loads pre-engine snapshot files), and
// truncates the replayed log. Recovery loads the newest checkpoint and
// replays the log tail, tolerating the torn final record a crash mid-append
// leaves; for any crash point the recovered server's search output is
// byte-identical to a server that applied exactly the surviving operations.
// Documents can also be removed end to end: core.Server.Delete compacts the
// columnar arenas by swap-remove, and the Delete verb runs through the wire
// protocol, the daemons and the client. See EXPERIMENTS.md ("Durable
// storage engine") for replay-throughput and checkpoint-pause numbers.
//
// # Replication
//
// Search traffic scales horizontally with WAL-shipping read replicas. A
// follower daemon (mkse-server -replica-of, or service.StartReplica over a
// durable engine) subscribes to a primary from its own log position; the
// primary bootstraps it from the newest checkpoint when the requested
// records have been pruned, then streams write-ahead-log record batches as
// mutations arrive and heartbeats when idle. The follower replays every
// record through its own durable engine — logging before applying, the
// same invariant as a primary-side mutation — so a follower killed at any
// point recovers and resumes from its acknowledged position, and can be
// promoted to primary in place (see below). Followers reject writes,
// answer searches and fetches, and report their lag (own position vs the
// primary's, as heard on the stream) through a status verb. service.Client
// fans Search/SearchBatch across a registered replica set with rotating
// selection, probing status and skipping followers that lag beyond
// MaxReplicaLag, and falls back to the primary on any transport failure;
// mutations and retrievals always go to the primary. See EXPERIMENTS.md
// ("WAL-shipping replication") for catch-up throughput and fan-out
// numbers, and examples/replication for a runnable deployment.
//
// # Partitioned scatter-gather cluster
//
// Beyond read replicas, the corpus itself scales out across P independent
// partition primaries (internal/cluster). A static FNV-1a doc-ID hash map
// assigns every document to exactly one partition — stateless, so owner,
// client and servers all compute the same assignment with no coordination
// — and each partition is an ordinary single-node deployment underneath
// (own WAL, checkpoints, followers). mkse-server -partition i/P stamps a
// daemon with its slot; primaries reject mutations for documents another
// partition owns. A fat client (DialCluster, mkse-client -cluster)
// verifies each server's reported identity at dial time, routes
// Upload/Delete/Retrieve to the owning partition, and fans Search out to
// all partitions, interleaving the per-partition top-τ lists under the
// global τ-cut. Partitions are disjoint by document ID, so the merged
// result is byte-identical to one node scanning everything — proven by a
// randomized property suite down to the binary-comparison cost accounting.
// A partition that stalls or dies mid-search burns only its bounded
// per-partition deadline, falls back to its read replicas, and — only if
// all of them fail — is named in a typed *cluster.PartialError returned
// alongside the survivors' merged results. See ARCHITECTURE.md
// ("Cluster") and examples/cluster for a runnable two-partition
// deployment including the severed-partition failure path.
//
// # Automatic failover
//
// Every durable engine carries a monotonic fencing term, persisted in the
// write-ahead log (a control record, always fsynced, replicated in-stream)
// and in every checkpoint header. A Promote protocol verb flips a live
// follower to primary in place: stop the stream, raise and persist the
// term, accept writes. A deposed primary is fenced read-only by the first
// peer that presents a higher term, and a rejoining node whose log
// diverged past the new term's start is wiped by a checkpoint bootstrap
// instead of forking the history. The mkse-observer daemon
// (internal/observer) automates the loop: it health-probes the primary,
// elects the lowest-lag reachable follower after a threshold of
// consecutive failures, promotes it, and repoints the survivors via a
// Reconfigure verb; service.Client follows the topology by re-probing its
// replica set on a primary failure. internal/faultnet injects partitions
// and stalls for the failure-mode tests. See ARCHITECTURE.md ("Fail over")
// and examples/failover for a runnable kill-and-promote walkthrough.
//
// # Query-result caching
//
// Production read traffic is dominated by repeated and popular queries, and
// trapdoors are deterministic per keyword set — the same search produces the
// same query vector. The cloud daemon can therefore memoize results
// (mkse-server -cache-mb, internal/qcache): a sharded, memory-bounded LRU
// maps a query fingerprint (hash of the wire query vector and τ) to the
// ranked result it produced. Correctness is enforced by epoch invalidation:
// the store keeps a mutation epoch bumped by every applied upload and
// delete, entries record the epoch their scan ran at, and a lookup hits
// only at that exact epoch — so an acknowledged mutation instantly
// invalidates every cached result, and a cache can never serve a stale
// answer (property-tested against uncached scans across random
// mutate/search interleavings). Caching is privacy-neutral under the
// paper's leakage profile: the server already observes that two identical
// queries are identical — the accepted search-pattern leakage — which is
// the only signal the cache exploits. Batches dedupe identical query
// vectors even with the cache disabled, and followers cache against their
// own epoch, so replicated applies invalidate naturally. The stats verb
// (mkse-client stats) reports hit/miss/eviction/invalidation counters. See
// EXPERIMENTS.md ("Query-result cache") for cold/warm/invalidate numbers.
//
// # Observability
//
// Every daemon is instrumented end to end (internal/telemetry): a
// dependency-free metrics registry — atomic counters, gauges and
// fixed-bucket latency histograms in the Prometheus text exposition format
// — and an HTTP sidecar (mkse-server/mkse-observer -metrics-addr) serving
// /metrics, a readiness-gated /healthz (503 on a fenced ex-primary or a
// lagging follower, the same judgment the cluster's own routing applies)
// and net/http/pprof. The instruments sit under the search hot path by
// design: an observation is a bucket-index computation plus two atomic
// adds, every method is nil-safe so disabled telemetry costs one nil
// check, and the steady-state scan path stays allocation-free with metrics
// enabled. Exported series cover per-verb request latency and errors, arena
// scan durations, WAL append/fsync/checkpoint latency, replication lag per
// follower, cache counters and failover activity; mkse-client stats -json
// emits the same series names over the wire protocol. All daemons log
// structured log/slog records (text or JSON) with a -slow-query WARN
// threshold, and every binary reports its build stamp via -version
// (internal/buildinfo) and the mkse_build_info series. See README.md
// ("Observability") for the full series table.
//
// # Distributed tracing
//
// Aggregates cannot explain a single slow query, so every request can
// also carry a trace (internal/trace): a 128-bit trace ID and per-hop
// span IDs propagated on the wire envelope, continued by each daemon and
// echoed back with the spans it recorded — coordinator scatter, each
// partition's RPC with redial and replica-fallback attempts, server verb
// dispatch, shard scan, qcache hit/miss, WAL append/fsync, checkpoint
// pause, replication apply. The client assembles one cross-daemon span
// tree per sampled search; completed traces land in bounded ring buffers
// served by the telemetry sidecar as /traces and /traces/slow JSON.
// Sampling is head-based (-trace-sample, with slow queries captured even
// when unsampled), a propagated sampled context is always honored, and
// with tracing disabled the scan path stays allocation-free. The
// mkse-client trace subcommand runs a forced-sample search and
// pretty-prints the assembled tree; see ARCHITECTURE.md ("Tracing").
//
// # Package layout
//
// This root package is the public API: parameters, the three roles (Owner,
// CloudServer, User), an in-process System harness, and the networked
// Client/daemon types. The implementation lives in internal packages:
//
//   - internal/core — the scheme itself (index/trapdoor/query generation,
//     oblivious ranked search, blinded retrieval)
//   - internal/bitindex, internal/kdf, internal/bins — index substrates
//   - internal/blindrsa, internal/sym — cryptographic substrates
//   - internal/analysis — the Section 6/7 analytic model
//   - internal/baseline/caomrse, internal/baseline/wangcsi — the paper's
//     comparison baselines
//   - internal/durable, internal/store — the write-ahead-logged storage
//     engine and the checkpoint/snapshot format
//   - internal/qcache — the epoch-invalidated query-result cache
//   - internal/protocol, internal/service — the three-party TCP deployment,
//     including the replication stream and the read-balancing client
//   - internal/telemetry, internal/buildinfo — the metrics registry, the
//     /metrics + /healthz + pprof sidecar, and build stamping
//   - internal/trace — the distributed-tracing core: span contexts,
//     samplers, ring buffers and the /traces handlers
//
// # Quickstart
//
// See examples/quickstart for a complete program:
//
//	sys, _ := mkse.NewSystem(mkse.DefaultParams())
//	_ = sys.AddDocument("report-1", []byte("the quarterly cloud revenue grew"))
//	alice, _ := sys.NewUser("alice")
//	matches, _ := sys.Search(alice, []string{"cloud", "revenue"}, 10)
//	plaintext, _ := sys.Retrieve(alice, matches[0].DocID)
//
// The cmd/ directory ships the three daemons (mkse-owner, mkse-server,
// mkse-client) and the experiment driver (mkse-bench) that regenerates
// every table and figure of the paper's evaluation; see EXPERIMENTS.md.
package mkse
