package mkse

import (
	"fmt"
	"math/big"

	"mkse/internal/bitindex"
	"mkse/internal/cluster"
	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/rank"
	"mkse/internal/service"
)

// Re-exported scheme types. The implementation lives in internal/core; the
// aliases make the full API usable from outside the module.
type (
	// Params fixes every tunable of the scheme; see DefaultParams.
	Params = core.Params
	// Owner is the data-owner role: index generation, trapdoor service,
	// blind decryption.
	Owner = core.Owner
	// CloudServer is the semi-honest server role: storage and oblivious
	// ranked search.
	CloudServer = core.Server
	// User is the querying role: trapdoor acquisition, query generation,
	// blinded retrieval.
	User = core.User
	// Match is one ranked search hit.
	Match = core.Match
	// SearchIndex is a per-document η-level searchable index.
	SearchIndex = core.SearchIndex
	// EncryptedDocument is the encrypted payload stored at the server.
	EncryptedDocument = core.EncryptedDocument
	// Document is a plaintext document with keyword term frequencies.
	Document = corpus.Document
	// Levels is the ascending term-frequency thresholds of the η ranking
	// levels.
	Levels = rank.Levels
)

// Networked deployment types (Figure 1 over TCP).
type (
	// OwnerService serves enrollment, trapdoor and blind-decryption
	// endpoints around an Owner.
	OwnerService = service.OwnerService
	// CloudService serves upload, search and fetch endpoints around a
	// CloudServer.
	CloudService = service.CloudService
	// Client drives the full user protocol against remote daemons.
	Client = service.Client
	// UploadItem pairs an index with its encrypted document for upload.
	UploadItem = service.UploadItem
	// RemoteMatch is a search hit returned over the wire.
	RemoteMatch = service.Match
)

// Partitioned scatter-gather deployment types (internal/cluster).
type (
	// ClusterConfig is the static topology of a partitioned deployment:
	// partition i's addresses at index i.
	ClusterConfig = cluster.Config
	// ClusterPartition is one partition's primary address plus optional
	// read replicas.
	ClusterPartition = cluster.Partition
	// PartialError reports which partitions a scatter-gather result is
	// missing; errors.As-match it to use partial results deliberately.
	PartialError = cluster.PartialError
)

// ParseClusterTargets parses the "primary[/replica...],..." topology syntax
// of the -cluster flag.
func ParseClusterTargets(s string) (ClusterConfig, error) { return cluster.ParseTargets(s) }

// DialCluster connects a new user to the owner daemon and every partition
// of a partitioned cloud deployment, verifying each server's reported
// partition identity. Searches scatter-gather across all partitions;
// mutations route to the partition owning the document ID.
func DialCluster(userID, ownerAddr string, cfg ClusterConfig) (*Client, error) {
	return service.DialCluster(userID, ownerAddr, cfg)
}

// UploadAllCluster pushes prepared documents to a partitioned deployment,
// routing each to the partition owning its document ID.
func UploadAllCluster(cfg ClusterConfig, items []UploadItem) error {
	return service.UploadAllCluster(cfg, items)
}

// DeleteAllCluster removes documents from a partitioned deployment by ID.
func DeleteAllCluster(cfg ClusterConfig, docIDs []string) error {
	return service.DeleteAllCluster(cfg, docIDs)
}

// DefaultParams returns the paper's implementation parameters (r = 448,
// d = 6, δ = 250, U = 60, V = 30, 1024-bit RSA, ranking disabled).
func DefaultParams() Params { return core.DefaultParams() }

// NewOwner creates a data owner with fresh secret keys. randomSeed drives
// only the choice of decoy keyword strings, keeping experiments repeatable.
func NewOwner(p Params, randomSeed int64) (*Owner, error) { return core.NewOwner(p, randomSeed) }

// NewCloudServer creates an empty cloud server with one store shard per
// GOMAXPROCS core.
func NewCloudServer(p Params) (*CloudServer, error) { return core.NewServer(p) }

// NewCloudServerSharded creates an empty cloud server with an explicit store
// shard count and search worker-pool size (<= 0 picks defaults); see
// core.Server for the sharding architecture.
func NewCloudServerSharded(p Params, shards, workers int) (*CloudServer, error) {
	return core.NewServerSharded(p, shards, workers)
}

// Dial connects a new user to remote owner and cloud daemons and enrolls it.
func Dial(userID, ownerAddr, cloudAddr string) (*Client, error) {
	return service.Dial(userID, ownerAddr, cloudAddr)
}

// UploadAll pushes prepared documents to a remote cloud daemon.
func UploadAll(cloudAddr string, items []UploadItem) error {
	return service.UploadAll(cloudAddr, items)
}

// DeleteAll removes documents from a remote cloud daemon by ID — the
// owner-side retraction mirroring UploadAll.
func DeleteAll(cloudAddr string, docIDs []string) error {
	return service.DeleteAll(cloudAddr, docIDs)
}

// Tokenize extracts lower-cased alphanumeric keywords (length >= minLen)
// with term frequencies from text — the minimal analyzer for indexing real
// documents.
func Tokenize(text string, minLen int) map[string]int { return corpus.Tokenize(text, minLen) }

// System wires the three roles together in one process. It is the quickest
// way to use the library and the harness the examples and benchmarks build
// on; production deployments run the roles as separate daemons (cmd/).
type System struct {
	Owner *Owner
	Cloud *CloudServer
}

// NewSystem creates an owner and an empty cloud server sharing parameters.
func NewSystem(p Params) (*System, error) {
	owner, err := core.NewOwner(p, 0)
	if err != nil {
		return nil, err
	}
	cloud, err := core.NewServer(p)
	if err != nil {
		return nil, err
	}
	return &System{Owner: owner, Cloud: cloud}, nil
}

// AddDocument tokenizes content (keywords of 3+ letters), builds the search
// index, encrypts the body and uploads both to the cloud.
func (s *System) AddDocument(id string, content []byte) error {
	tf := corpus.Tokenize(string(content), 3)
	if len(tf) == 0 {
		return fmt.Errorf("mkse: document %q has no indexable keywords", id)
	}
	return s.AddDocumentWithKeywords(id, tf, content)
}

// AddDocumentWithKeywords indexes a document under explicit keyword term
// frequencies (callers with their own analyzers).
func (s *System) AddDocumentWithKeywords(id string, termFreqs map[string]int, content []byte) error {
	doc := &corpus.Document{ID: id, TermFreqs: termFreqs, Content: content}
	si, enc, err := s.Owner.Prepare(doc)
	if err != nil {
		return err
	}
	return s.Cloud.Upload(si, enc)
}

// DeleteDocument removes a document from the cloud: its ciphertext, wrapped
// key and every ranking level's index row. Deleting an unknown ID returns an
// error wrapping core.ErrNotFound.
func (s *System) DeleteDocument(id string) error {
	return s.Cloud.Delete(id)
}

// NewUser enrolls a user: generates its keys, registers the verification key
// with the owner and hands over the random-keyword trapdoor package.
func (s *System) NewUser(id string) (*User, error) {
	u, err := core.NewUser(id, s.Owner.Params(), s.Owner.PublicKey(), s.Owner.RandomTrapdoors())
	if err != nil {
		return nil, err
	}
	if err := s.Owner.RegisterUser(id, u.PublicKey()); err != nil {
		return nil, err
	}
	return u, nil
}

// FetchTrapdoors runs the trapdoor exchange for any keywords the user does
// not already cover, with signature verification as on the wire.
func (s *System) FetchTrapdoors(u *User, words []string) error {
	var missing []string
	for _, w := range words {
		if !u.HasTrapdoorFor(w) {
			missing = append(missing, w)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	binIDs := u.BinIDs(missing)
	msg := signableBins(u.ID, binIDs)
	sig, err := u.Sign(msg)
	if err != nil {
		return err
	}
	if err := s.Owner.VerifyUser(u.ID, msg, sig); err != nil {
		return err
	}
	keys, err := s.Owner.TrapdoorKeys(binIDs)
	if err != nil {
		return err
	}
	return u.InstallTrapdoorKeys(binIDs, keys)
}

// signableBins is the in-process analogue of protocol.SignableTrapdoor.
func signableBins(userID string, binIDs []int) []byte {
	out := []byte("mkse/trapdoor\x00" + userID + "\x00")
	for _, b := range binIDs {
		out = append(out, byte(b>>24), byte(b>>16), byte(b>>8), byte(b))
	}
	return out
}

// Search obtains any missing trapdoors, builds a randomized query and runs
// the ranked oblivious search, returning up to topK matches (topK <= 0
// returns all).
func (s *System) Search(u *User, words []string, topK int) ([]Match, error) {
	if err := s.FetchTrapdoors(u, words); err != nil {
		return nil, err
	}
	q, err := u.BuildQuery(words)
	if err != nil {
		return nil, err
	}
	return s.Cloud.SearchTop(q, topK)
}

// SearchBatch obtains any missing trapdoors for every keyword set, builds
// one randomized query per set and evaluates them all in a single sharded
// pass over the cloud store. Result i corresponds to queries[i].
func (s *System) SearchBatch(u *User, queries [][]string, topK int) ([][]Match, error) {
	if err := s.FetchTrapdoors(u, service.KeywordUnion(queries)); err != nil {
		return nil, err
	}
	qs := make([]*bitindex.Vector, len(queries))
	for i, words := range queries {
		q, err := u.BuildQuery(words)
		if err != nil {
			return nil, err
		}
		qs[i] = q
	}
	return s.Cloud.SearchBatch(qs, topK)
}

// Retrieve fetches a document from the cloud and decrypts it through the
// blinded protocol with the owner.
func (s *System) Retrieve(u *User, docID string) ([]byte, error) {
	doc, err := s.Cloud.Fetch(docID)
	if err != nil {
		return nil, err
	}
	return u.DecryptDocument(doc, func(z *big.Int) (*big.Int, error) {
		return s.Owner.BlindDecrypt(z)
	})
}
