// Command mkse-client is the user CLI: it enrolls with the data owner,
// searches the cloud with multiple keywords, and retrieves + decrypts
// documents through the blinded protocol.
//
// Usage:
//
//	mkse-client -owner localhost:7001 -cloud localhost:7002 -user alice \
//	            search cloud encrypted ranked
//	mkse-client -owner ... -cloud ... -user alice get doc-00042
//	mkse-client -owner ... -cloud ... -user alice searchget cloud privacy
//	mkse-client -owner ... -cloud ... -user alice delete doc-00042
//	mkse-client -cloud localhost:7002 stats
//	mkse-client -cloud localhost:7002 -json stats
//	mkse-client -owner ... -cluster host1:7002,host2:7002 -user alice \
//	            search cloud encrypted ranked
//	mkse-client -owner ... -cluster ... -user alice trace cloud encrypted
//
// Subcommands: search <kw...>, get <docID>, searchget <kw...> (search then
// retrieve the best match), delete <docID>, trace <kw...> (search with its
// distributed trace forced on: prints the matches, then the assembled
// cross-daemon span tree — coordinator, per-partition fan-out, and every
// span the servers echoed back, with durations and attributes; the servers
// need no -trace-sample flag, a propagated sampled context is always
// continued), stats (one-round-trip server introspection: document/shard
// counts, WAL position, replication lag, query-result cache counters; needs
// only -cloud, no enrollment). With -json, stats emits one JSON object
// keyed by the daemon's Prometheus series names (mkse_documents,
// mkse_wal_position, …), so scripts parse the same vocabulary a /metrics
// scrape exposes.
//
// -cluster replaces -cloud with a partitioned topology: a comma-separated
// partition list, each element "primary[/replica...]", in partition order
// (element i must be the daemon started with -partition i/P). Searches
// scatter to every partition and gather into the exact order a single
// server would return; get and delete route to the partition owning the
// document ID; stats fetches every partition and prints the per-partition
// and aggregated counters. When a partition is unreachable the client falls
// back to its listed replicas, and failing that reports which partitions
// the (partial) result is missing.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"mkse/internal/buildinfo"
	"mkse/internal/cluster"
	"mkse/internal/service"
	"mkse/internal/trace"
)

func main() {
	var (
		ownerAddr = flag.String("owner", "localhost:7001", "owner daemon address")
		cloudAddr = flag.String("cloud", "localhost:7002", "cloud daemon address")
		clusterTg = flag.String("cluster", "", "partitioned topology host1[/replica],host2,... in partition order (replaces -cloud)")
		user      = flag.String("user", "cli-user", "user identity to enroll as")
		topK      = flag.Int("top", 10, "maximum matches to request (τ)")
		dialTO    = flag.Duration("dial-timeout", service.DialTimeout, "per-connection dial budget")
		asJSON    = flag.Bool("json", false, "emit stats as JSON keyed by Prometheus series names")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("mkse-client"))
		return
	}
	service.DialTimeout = *dialTO
	args := flag.Args()
	if len(args) >= 1 && args[0] == "stats" {
		// Operator introspection: a raw dial to the cloud daemon(s), no
		// owner connection or user enrollment needed.
		if *clusterTg != "" {
			printClusterStats(*clusterTg, *asJSON)
			return
		}
		printStats(*cloudAddr, *asJSON)
		return
	}
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mkse-client [flags] search|trace|get|searchget|delete <args...> | stats")
		os.Exit(2)
	}

	var client *service.Client
	var err error
	if *clusterTg != "" {
		cfg, perr := cluster.ParseTargets(*clusterTg)
		if perr != nil {
			log.Fatalf("mkse-client: %v", perr)
		}
		client, err = service.DialCluster(*user, *ownerAddr, cfg)
	} else {
		client, err = service.Dial(*user, *ownerAddr, *cloudAddr)
	}
	if err != nil {
		log.Fatalf("mkse-client: %v", err)
	}
	defer client.Close()

	switch args[0] {
	case "search":
		matches, err := client.Search(args[1:], *topK)
		var partial *cluster.PartialError
		if errors.As(err, &partial) {
			// The merged results cover the surviving partitions; say which
			// ones they are missing rather than discarding them.
			fmt.Fprintf(os.Stderr, "mkse-client: warning: %v\n", partial)
		} else if err != nil {
			log.Fatalf("mkse-client: search: %v", err)
		}
		if len(matches) == 0 {
			fmt.Println("no matches")
			return
		}
		fmt.Printf("%-4s %-30s %s\n", "rank", "document", "")
		for _, m := range matches {
			fmt.Printf("%-4d %-30s\n", m.Rank, m.DocID)
		}
	case "trace":
		// A one-shot tracer: rate 0 means nothing else is sampled, and
		// TraceSearch forces this one request on. No buffer — the assembled
		// spans come back from the call itself.
		client.Tracer = trace.New("client", 0, nil)
		matches, spans, err := client.TraceSearch(args[1:], *topK)
		var partial *cluster.PartialError
		if errors.As(err, &partial) {
			fmt.Fprintf(os.Stderr, "mkse-client: warning: %v\n", partial)
		} else if err != nil {
			log.Fatalf("mkse-client: trace: %v", err)
		}
		if len(matches) == 0 {
			fmt.Println("no matches")
		} else {
			fmt.Printf("%-4s %-30s\n", "rank", "document")
			for _, m := range matches {
				fmt.Printf("%-4d %-30s\n", m.Rank, m.DocID)
			}
		}
		fmt.Println()
		fmt.Print(trace.FormatTree(spans))
	case "get":
		pt, err := client.Retrieve(args[1])
		if err != nil {
			log.Fatalf("mkse-client: retrieve: %v", err)
		}
		os.Stdout.Write(pt)
	case "searchget":
		matches, err := client.Search(args[1:], 1)
		if err != nil {
			log.Fatalf("mkse-client: search: %v", err)
		}
		if len(matches) == 0 {
			fmt.Println("no matches")
			return
		}
		fmt.Fprintf(os.Stderr, "best match: %s (rank %d)\n", matches[0].DocID, matches[0].Rank)
		pt, err := client.Retrieve(matches[0].DocID)
		if err != nil {
			log.Fatalf("mkse-client: retrieve: %v", err)
		}
		os.Stdout.Write(pt)
	case "delete":
		if err := client.Delete(args[1]); err != nil {
			log.Fatalf("mkse-client: delete: %v", err)
		}
		fmt.Fprintf(os.Stderr, "deleted %s\n", args[1])
	default:
		fmt.Fprintf(os.Stderr, "mkse-client: unknown subcommand %q\n", args[0])
		os.Exit(2)
	}
}

// printStats renders one cloud daemon's stats response for operators:
// aligned text by default, or (with -json) a JSON object keyed by the
// daemon's Prometheus series names.
func printStats(cloudAddr string, asJSON bool) {
	st, err := service.FetchStats(cloudAddr)
	if err != nil {
		log.Fatalf("mkse-client: stats: %v", err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(service.StatsJSON(st)); err != nil {
			log.Fatalf("mkse-client: stats: %v", err)
		}
		return
	}
	fmt.Printf("documents      %d\n", st.NumDocuments)
	fmt.Printf("shards         %d\n", st.NumShards)
	fmt.Printf("epoch          %d\n", st.Epoch)
	if st.Durable {
		fmt.Printf("wal-position   %d\n", st.WALPosition)
		fmt.Printf("term           %d\n", st.Term)
	} else {
		fmt.Printf("wal-position   - (memory-only)\n")
	}
	if st.Replica {
		fmt.Printf("replica        yes (connected=%v)\n", st.ReplicaConnected)
		fmt.Printf("primary-pos    %d (lag %d records)\n", st.PrimaryPosition, st.PrimaryPosition-st.WALPosition)
	} else {
		fmt.Printf("replica        no\n")
	}
	c := st.Cache
	if !c.Enabled {
		fmt.Printf("cache          disabled\n")
		return
	}
	total := c.Hits + c.Misses
	rate := 0.0
	if total > 0 {
		rate = float64(c.Hits) / float64(total) * 100
	}
	fmt.Printf("cache          %d/%d bytes, %d entries\n", c.Bytes, c.MaxBytes, c.Entries)
	fmt.Printf("cache-hits     %d (%.1f%% of %d lookups)\n", c.Hits, rate, total)
	fmt.Printf("cache-misses   %d (%d epoch invalidations)\n", c.Misses, c.Invalidations)
	fmt.Printf("cache-evicted  %d\n", c.Evictions)
}

// printClusterStats renders every partition's stats plus the cluster-wide
// aggregate. With -json it emits an array of per-partition objects followed
// by no aggregate — scripts sum the same series names themselves.
func printClusterStats(targets string, asJSON bool) {
	cfg, err := cluster.ParseTargets(targets)
	if err != nil {
		log.Fatalf("mkse-client: %v", err)
	}
	parts, err := service.FetchClusterStats(cfg)
	if err != nil {
		log.Fatalf("mkse-client: stats: %v", err)
	}
	if asJSON {
		out := make([]map[string]any, len(parts))
		for i, st := range parts {
			out[i] = service.StatsJSON(st)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatalf("mkse-client: stats: %v", err)
		}
		return
	}
	agg := service.AggregateClusterStats(parts)
	for i, st := range parts {
		fmt.Printf("partition %d (%s): documents=%d shards=%d epoch=%d durable=%v\n",
			i, cfg.Partitions[i].Primary, st.NumDocuments, st.NumShards, st.Epoch, st.Durable)
	}
	fmt.Printf("cluster        %d partitions\n", agg.Partitions)
	fmt.Printf("documents      %d\n", agg.NumDocuments)
	fmt.Printf("shards         %d\n", agg.NumShards)
}
