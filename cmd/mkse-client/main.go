// Command mkse-client is the user CLI: it enrolls with the data owner,
// searches the cloud with multiple keywords, and retrieves + decrypts
// documents through the blinded protocol.
//
// Usage:
//
//	mkse-client -owner localhost:7001 -cloud localhost:7002 -user alice \
//	            search cloud encrypted ranked
//	mkse-client -owner ... -cloud ... -user alice get doc-00042
//	mkse-client -owner ... -cloud ... -user alice searchget cloud privacy
//	mkse-client -owner ... -cloud ... -user alice delete doc-00042
//
// Subcommands: search <kw...>, get <docID>, searchget <kw...> (search then
// retrieve the best match), delete <docID>.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mkse/internal/service"
)

func main() {
	var (
		ownerAddr = flag.String("owner", "localhost:7001", "owner daemon address")
		cloudAddr = flag.String("cloud", "localhost:7002", "cloud daemon address")
		user      = flag.String("user", "cli-user", "user identity to enroll as")
		topK      = flag.Int("top", 10, "maximum matches to request (τ)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mkse-client [flags] search|get|searchget|delete <args...>")
		os.Exit(2)
	}

	client, err := service.Dial(*user, *ownerAddr, *cloudAddr)
	if err != nil {
		log.Fatalf("mkse-client: %v", err)
	}
	defer client.Close()

	switch args[0] {
	case "search":
		matches, err := client.Search(args[1:], *topK)
		if err != nil {
			log.Fatalf("mkse-client: search: %v", err)
		}
		if len(matches) == 0 {
			fmt.Println("no matches")
			return
		}
		fmt.Printf("%-4s %-30s %s\n", "rank", "document", "")
		for _, m := range matches {
			fmt.Printf("%-4d %-30s\n", m.Rank, m.DocID)
		}
	case "get":
		pt, err := client.Retrieve(args[1])
		if err != nil {
			log.Fatalf("mkse-client: retrieve: %v", err)
		}
		os.Stdout.Write(pt)
	case "searchget":
		matches, err := client.Search(args[1:], 1)
		if err != nil {
			log.Fatalf("mkse-client: search: %v", err)
		}
		if len(matches) == 0 {
			fmt.Println("no matches")
			return
		}
		fmt.Fprintf(os.Stderr, "best match: %s (rank %d)\n", matches[0].DocID, matches[0].Rank)
		pt, err := client.Retrieve(matches[0].DocID)
		if err != nil {
			log.Fatalf("mkse-client: retrieve: %v", err)
		}
		os.Stdout.Write(pt)
	case "delete":
		if err := client.Delete(args[1]); err != nil {
			log.Fatalf("mkse-client: delete: %v", err)
		}
		fmt.Fprintf(os.Stderr, "deleted %s\n", args[1])
	default:
		fmt.Fprintf(os.Stderr, "mkse-client: unknown subcommand %q\n", args[0])
		os.Exit(2)
	}
}
