// Command mkse-server runs the cloud-server daemon of Figure 1: it stores
// encrypted documents and searchable indices uploaded by a data owner and
// answers anonymous search/fetch requests from users. It holds no key
// material.
//
// Usage:
//
//	mkse-server -listen :7002 [-levels 1,5,10] [-snapshot cloud.db]
//	            [-shards 8] [-workers 8]
//
// -shards splits the document store into independently locked shards
// (default: one per core) scanned concurrently by -workers goroutines per
// query; see core.Server for the architecture.
//
// With -snapshot the daemon restores its database from the given file at
// startup (if it exists) and writes it back on SIGINT/SIGTERM, so owners do
// not need to re-upload across restarts. The scheme parameters must match
// the owner daemon's.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"mkse/internal/cliutil"
	"mkse/internal/core"
	"mkse/internal/service"
	"mkse/internal/store"
)

func main() {
	var (
		listen   = flag.String("listen", ":7002", "address to listen on")
		levels   = flag.String("levels", "1", "comma-separated ranking thresholds (η levels)")
		snapshot = flag.String("snapshot", "", "path to persist/restore the database")
		shards   = flag.Int("shards", 0, "document store shards (0 = one per core)")
		workers  = flag.Int("workers", 0, "concurrent shard scans per query (0 = auto)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "mkse-server ", log.LstdFlags)

	p := core.DefaultParams()
	lv, err := cliutil.ParseLevels(*levels)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkse-server: %v\n", err)
		os.Exit(2)
	}
	p.Levels = lv

	mkServer := func(p core.Params) (*core.Server, error) {
		return core.NewServerSharded(p, *shards, *workers)
	}
	var server *core.Server
	if *snapshot != "" {
		if restored, err := store.LoadFileWith(*snapshot, mkServer); err == nil {
			server = restored
			logger.Printf("restored %d documents from %s", server.NumDocuments(), *snapshot)
		} else if !os.IsNotExist(err) {
			log.Fatalf("mkse-server: restoring %s: %v", *snapshot, err)
		}
	}
	if server == nil {
		server, err = mkServer(p)
		if err != nil {
			log.Fatalf("mkse-server: %v", err)
		}
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("mkse-server: %v", err)
	}

	if *snapshot != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			if err := store.SaveFile(*snapshot, server); err != nil {
				logger.Printf("snapshot failed: %v", err)
				os.Exit(1)
			}
			logger.Printf("snapshotted %d documents to %s", server.NumDocuments(), *snapshot)
			os.Exit(0)
		}()
	}

	logger.Printf("listening on %s (r=%d, η=%d, %d shards)", l.Addr(), server.Params().R, server.Params().Eta(), server.NumShards())
	if err := (&service.CloudService{Server: server, Logger: logger}).Serve(l); err != nil {
		log.Fatalf("mkse-server: %v", err)
	}
}
