// Command mkse-server runs the cloud-server daemon of Figure 1: it stores
// encrypted documents and searchable indices uploaded by a data owner and
// answers anonymous search/fetch requests from users. It holds no key
// material.
//
// Usage:
//
//	mkse-server -listen :7002 [-levels 1,5,10] [-shards 8] [-workers 8]
//	            [-cache-mb 256]
//	            [-data /var/lib/mkse] [-checkpoint-every 4096]
//	            [-fsync always|interval|never]
//	            [-replica-of primary:7002]
//	            [-partition 0/2]
//	            [-drain 5s] [-idle-timeout 0]
//	            [-metrics-addr :7012] [-slow-query 250ms] [-slow-query-ms 250]
//	            [-trace-sample 100]
//	            [-log-format text|json] [-log-level info]
//	            [-snapshot cloud.db]
//
// -shards splits the document store into independently locked shards
// (default: one per core) scanned concurrently by -workers goroutines per
// query; see core.Server for the architecture.
//
// -cache-mb enables the query-result cache (internal/qcache): repeated
// queries — identical query vector and τ — are answered from a sharded,
// memory-bounded LRU without rescanning the store, and every upload or
// delete bumps a mutation epoch that invalidates all cached results, so no
// acknowledged mutation is ever missing from a served result. Deterministic
// trapdoors make repeated searches produce identical vectors, and the
// scheme already concedes search-pattern leakage to the server, so caching
// reveals nothing new. Followers may enable it too: replicated applies bump
// the follower's own epoch. The stats verb (mkse-client stats) reports
// hit/miss/eviction counters.
//
// -data enables the durable storage engine (internal/durable): every upload
// and delete is appended to a write-ahead log in the directory before it is
// acknowledged, a checkpoint is materialized in the background every
// -checkpoint-every mutations (and on shutdown) without stopping searches,
// and startup recovers the newest checkpoint plus the log tail — so a
// crash, not just a clean exit, loses at most what the -fsync policy allows
// (always: nothing; interval: the last ~100ms; never: whatever the OS had
// not written back). The directory is created on first boot. A durably
// backed server also serves its write-ahead log to followers (see below);
// no extra flag is needed on the primary.
//
// -replica-of turns the daemon into a read-only follower of another
// durably backed mkse-server: it bootstraps from the primary's newest
// checkpoint when needed, then streams and replays the primary's
// write-ahead log through its own -data directory (logging before applying,
// so the follower is itself crash-safe), answers search and fetch requests,
// rejects uploads and deletions, and reports its lag to read balancers via
// the replica-status verb. It requires -data and the primary's scheme
// parameters (-levels). A follower killed mid-catch-up resumes from its
// recovered position on restart; restarting it without -replica-of promotes
// it to a standalone primary over the same directory. A durably backed
// daemon also participates in automatic failover: the promote verb (issued
// by mkse-observer, or manually) flips a live follower to primary in place
// under a higher fencing term, and the reconfigure verb repoints it at a
// new primary; see internal/observer.
//
// -partition gives the daemon its static cluster identity in a partitioned
// scatter-gather deployment (internal/cluster): "-partition i/P" declares
// that this server owns the documents the doc-ID hash map assigns to index
// i out of P partitions. The identity is reported to coordinators through
// the cluster-info verb — a fat client (mkse-client -cluster) verifies
// every address in its topology at dial time — and enforced on mutations:
// uploads and deletions for documents another partition owns are rejected
// with the wrong-partition error code, so a misconfigured coordinator
// cannot fork the corpus. Followers of a partitioned primary should carry
// the same -partition value. Omitting the flag (or a 1-partition cluster)
// leaves the daemon standalone.
//
// -metrics-addr starts the telemetry sidecar (internal/telemetry) on a
// separate listener: /metrics renders the daemon's Prometheus series —
// per-verb request latency histograms, arena-scan timings, store/cache/WAL
// gauges and counters, per-follower replication lag — /healthz answers a
// role-aware readiness check (a follower with its stream down or lagging
// past budget reports 503), and /debug/pprof exposes the runtime profiles.
// -slow-query logs any search or batch slower than the threshold at WARN
// (-slow-query-ms is the same knob in integer milliseconds, for launchers
// that cannot emit duration syntax; when both are given -slow-query-ms
// wins). Logs are structured (log/slog); -log-format json emits one object
// per line for shippers and -log-level debug adds a line per request.
//
// -trace-sample N enables distributed request tracing (internal/trace):
// 1 in N requests is sampled into a trace — spans for the verb dispatch,
// the arena scan, the query-cache lookup and every WAL append/fsync under
// the request — and a trace context propagated by a coordinator is always
// continued, so a sampled cluster search traces across every partition.
// Completed traces land in a bounded in-memory ring served by the
// telemetry sidecar as /traces and /traces/slow (JSON span trees; the slow
// ring keeps everything over the -slow-query threshold, including searches
// that were not sampled — those are captured as single-span traces).
// Sampled requests log their trace_id, and the slowest traced request per
// verb is exported as the mkse_request_slowest_traced_seconds series with
// its trace_id as a label. N = 1 traces everything (tests/debugging);
// 0 disables tracing entirely and costs the hot path nothing.
//
// -drain bounds the graceful-shutdown window: on SIGINT/SIGTERM the daemon
// stops accepting connections, waits up to the window for in-flight
// requests to finish, then force-closes stragglers before persisting.
// -idle-timeout, when non-zero, disconnects clients that sit idle between
// requests longer than the window (replication streams are exempt), so
// leaked connections cannot pin a drain to its deadline.
//
// -snapshot is the legacy single-file mode, superseded by -data: the
// database is restored from the file at startup (first boot starts empty)
// and written back only on shutdown. Both modes persist on any clean
// shutdown — SIGINT, SIGTERM, or the listener closing — and both restore
// with the scheme parameters recorded on disk, which must match the owner
// daemon's.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mkse/internal/buildinfo"
	"mkse/internal/cliutil"
	"mkse/internal/core"
	"mkse/internal/durable"
	"mkse/internal/service"
	"mkse/internal/store"
	"mkse/internal/telemetry"
	"mkse/internal/trace"
)

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mkse-server: "+format+"\n", args...)
	os.Exit(1)
}

// parsePartition parses the -partition flag's "i/P" syntax into a 0-based
// partition index and the total partition count.
func parsePartition(s string) (i, p int, err error) {
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &p); err != nil {
		return 0, 0, fmt.Errorf("-partition %q: want i/P, e.g. 0/2", s)
	}
	if p < 1 || i < 0 || i >= p {
		return 0, 0, fmt.Errorf("-partition %q: index must satisfy 0 <= i < P", s)
	}
	return i, p, nil
}

func main() {
	var (
		listen      = flag.String("listen", ":7002", "address to listen on")
		levels      = flag.String("levels", "1", "comma-separated ranking thresholds (η levels)")
		snapshot    = flag.String("snapshot", "", "legacy single-file persistence (superseded by -data)")
		dataDir     = flag.String("data", "", "durable engine data directory (write-ahead log + checkpoints)")
		ckptEvery   = flag.Int("checkpoint-every", 4096, "mutations between background checkpoints with -data (0 = only on shutdown)")
		fsyncMode   = flag.String("fsync", "interval", "WAL sync policy with -data: always, interval or never")
		replicaOf   = flag.String("replica-of", "", "primary address to follow as a read-only replica (requires -data)")
		partition   = flag.String("partition", "", "static cluster identity i/P: this daemon owns partition i of P (e.g. 0/2)")
		shards      = flag.Int("shards", 0, "document store shards (0 = one per core)")
		workers     = flag.Int("workers", 0, "concurrent shard scans per query (0 = auto)")
		cacheMB     = flag.Int("cache-mb", 0, "query-result cache budget in MiB (0 = disabled)")
		drain       = flag.Duration("drain", 5*time.Second, "graceful-shutdown window for in-flight requests")
		idle        = flag.Duration("idle-timeout", 0, "disconnect clients idle between requests this long (0 = never)")
		metricsAddr = flag.String("metrics-addr", "", "telemetry sidecar address serving /metrics, /healthz and /debug/pprof (empty = disabled)")
		slowQuery   = flag.Duration("slow-query", 0, "log searches slower than this at WARN and keep their traces in /traces/slow (0 = disabled)")
		slowQueryMS = flag.Int("slow-query-ms", 0, "same as -slow-query, in integer milliseconds (overrides it when both are set; 0 = defer to -slow-query)")
		traceSample = flag.Int("trace-sample", 0, "sample 1 in N requests into distributed traces served at /traces (1 = every request, 0 = tracing disabled)")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("mkse-server"))
		return
	}
	logger, err := cliutil.NewLogger("mkse-server", *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkse-server: %v\n", err)
		os.Exit(2)
	}

	p := core.DefaultParams()
	lv, err := cliutil.ParseLevels(*levels)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkse-server: %v\n", err)
		os.Exit(2)
	}
	p.Levels = lv

	if *dataDir != "" && *snapshot != "" {
		fmt.Fprintln(os.Stderr, "mkse-server: -data and -snapshot are mutually exclusive")
		os.Exit(2)
	}
	if *replicaOf != "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "mkse-server: -replica-of requires -data (the follower replays the primary's log through its own durable engine)")
		os.Exit(2)
	}

	if *slowQueryMS > 0 {
		*slowQuery = time.Duration(*slowQueryMS) * time.Millisecond
	}
	svc := &service.CloudService{Logger: logger, IdleTimeout: *idle, SlowQuery: *slowQuery}
	if *partition != "" {
		pi, pp, err := parsePartition(*partition)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkse-server: %v\n", err)
			os.Exit(2)
		}
		svc.Partition, svc.Partitions = pi, pp
		logger.Info("cluster partition identity", "partition", pi, "partitions", pp)
	}
	if *cacheMB > 0 {
		// Works on primaries and followers alike: entries are validated
		// against this server's own mutation epoch, so local mutations and
		// replicated applies both invalidate naturally.
		svc.Cache = service.NewResultCache(int64(*cacheMB) << 20)
		logger.Info("query-result cache enabled", "budget_mib", *cacheMB)
	}
	// persist runs on every clean shutdown path.
	var persist func()
	var eng *durable.Engine

	switch {
	case *dataDir != "":
		fsync, err := durable.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkse-server: %v\n", err)
			os.Exit(2)
		}
		eng, err = durable.Open(*dataDir, p, durable.Options{
			Shards: *shards, Workers: *workers,
			Fsync: fsync, CheckpointEvery: *ckptEvery,
			Logger: logger,
		})
		if err != nil {
			fatal("opening %s: %v", *dataDir, err)
		}
		st := eng.Stats()
		logger.Info("durable engine open", "dir", *dataDir,
			"documents", eng.Server().NumDocuments(), "checkpoint_lsn", st.CheckpointLSN,
			"replayed_ops", st.ReplayedOps, "term", st.Term, "fsync", fsync.String())
		svc.Server = eng.Server()
		svc.Store = eng
		svc.WAL = eng // any durable server can feed followers
		svc.Eng = eng // enables the promote and reconfigure verbs
		if *replicaOf != "" {
			svc.Replica = service.StartReplica(eng, *replicaOf, logger)
			logger.Info("following primary (read-only)", "primary", *replicaOf, "position", eng.Position())
		}
		persist = func() {
			// The replica may have been swapped or cleared at runtime by the
			// promote and reconfigure verbs; close whichever one is live now.
			if rep := svc.CurrentReplica(); rep != nil {
				rep.Close()
			}
			if err := eng.Close(); err != nil {
				logger.Error("final checkpoint failed", "err", err)
				os.Exit(1)
			}
			logger.Info("checkpointed on shutdown",
				"documents", eng.Server().NumDocuments(), "checkpoint_lsn", eng.Stats().CheckpointLSN)
		}

	default:
		mkServer := func(p core.Params) (*core.Server, error) {
			return core.NewServerSharded(p, *shards, *workers)
		}
		var server *core.Server
		if *snapshot != "" {
			switch restored, err := store.LoadFileWith(*snapshot, mkServer); {
			case err == nil:
				server = restored
				logger.Info("restored snapshot", "documents", server.NumDocuments(), "path", *snapshot)
			case errors.Is(err, fs.ErrNotExist):
				logger.Info("no snapshot yet, starting empty", "path", *snapshot)
			default:
				fatal("restoring %s: %v", *snapshot, err)
			}
		}
		if server == nil {
			if server, err = mkServer(p); err != nil {
				fatal("%v", err)
			}
		}
		svc.Server = server
		if *snapshot != "" {
			persist = func() {
				if err := store.SaveFile(*snapshot, server); err != nil {
					logger.Error("snapshot failed", "err", err)
					os.Exit(1)
				}
				logger.Info("snapshotted on shutdown", "documents", server.NumDocuments(), "path", *snapshot)
			}
		}
	}

	// Tracing must be wired before Serve: the Tracer field is read without a
	// lock on the request path.
	var traceBuf *trace.Buffer
	if *traceSample > 0 {
		traceBuf = trace.NewBuffer(256)
		traceBuf.SetSlowThreshold(*slowQuery)
		name := "cloud"
		if svc.Partitions > 0 {
			name = fmt.Sprintf("cloud-p%d", svc.Partition)
		}
		tr := trace.New(name, *traceSample, traceBuf)
		svc.EnableTracing(tr)
		if eng != nil {
			eng.SetTracer(tr)
		}
		logger.Info("request tracing enabled", "sample", *traceSample, "slow_query", *slowQuery)
	}

	// The telemetry sidecar listens separately from the wire protocol so
	// scrapes and profiles keep answering while the service port drains.
	var metricsSrv interface{ Close() error }
	if *metricsAddr != "" {
		reg := telemetry.New()
		ver, commit := buildinfo.Fields()
		reg.Gauge(service.SeriesBuildInfo, "Build metadata; the labelled series is always 1.",
			telemetry.Label{Key: "version", Value: ver},
			telemetry.Label{Key: "commit", Value: commit}).Set(1)
		svc.EnableMetrics(reg)
		if eng != nil {
			eng.EnableMetrics(reg)
		}
		var routes []telemetry.Route
		if traceBuf != nil {
			routes = append(routes,
				telemetry.Route{Pattern: "/traces", Handler: traceBuf.RecentHandler()},
				telemetry.Route{Pattern: "/traces/slow", Handler: traceBuf.SlowHandler()})
		}
		srv, err := telemetry.Serve(*metricsAddr, reg,
			func() telemetry.Health { return svc.Health(0) }, logger, routes...)
		if err != nil {
			fatal("%v", err)
		}
		metricsSrv = srv
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("%v", err)
	}

	// A signal closes the listener; Serve then returns cleanly and the
	// shutdown path below persists — the same path a programmatic listener
	// close takes, so persistence is not tied to signals alone.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Info("shutting down on signal", "signal", s.String())
		l.Close()
	}()

	logger.Info("listening", "addr", l.Addr().String(),
		"r", svc.Server.Params().R, "eta", svc.Server.Params().Eta(), "shards", svc.Server.NumShards())
	if err := svc.Serve(l); err != nil {
		fatal("%v", err)
	}
	// The listener is closed; give in-flight requests the drain window
	// before persisting, so the final checkpoint reflects every write the
	// daemon acknowledged. The sidecar stays up through the drain — the
	// final scrape sees the shutdown — and closes last.
	svc.Drain(*drain)
	if persist != nil {
		persist()
	}
	if metricsSrv != nil {
		metricsSrv.Close()
	}
}
