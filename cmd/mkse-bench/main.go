// Command mkse-bench regenerates the tables and figures of the paper's
// evaluation (Örencik & Savaş, PAIS 2012). Each experiment prints the same
// rows/series the paper reports; EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	mkse-bench -exp all                 # everything at default scale
//	mkse-bench -exp fig3 -docs 1000     # one experiment, custom scale
//	mkse-bench -exp cao -dict 2000      # widen the MRSE gap
//
// Experiments: fig2a fig2b fig3 fig4a fig4b table1 table2 ranking cao
// analytic theorem3 attack shards kernel million recovery replication cache
// cluster all. The million sweep (streamed corpus, -mdocs documents, p50/p99 search
// latency and RSS) runs only when named explicitly — at full scale it
// builds a million indices.
package main

import (
	"flag"
	"fmt"
	"os"

	"mkse/internal/buildinfo"
	"mkse/internal/cliutil"
	"mkse/internal/experiments"
)

func main() {
	var (
		version    = flag.Bool("version", false, "print version and exit")
		exp        = flag.String("exp", "all", "experiment to run (fig2a fig2b fig3 fig4a fig4b table1 table2 ranking cao analytic theorem3 attack ablate-d ablate-v ablate-bins shards kernel million recovery replication cache cluster all)")
		seed       = flag.Int64("seed", 2012, "experiment seed")
		docs       = flag.Int("docs", 400, "corpus size for fig3/table2")
		sizes      = flag.String("sizes", "2000,4000,6000,8000,10000", "comma-separated corpus sizes for fig4a/fig4b/cao sweeps")
		queries    = flag.Int("queries", 50, "queries per measurement point")
		dict       = flag.Int("dict", 1000, "MRSE dictionary size for -exp cao (paper: several thousands)")
		trials     = flag.Int("trials", 25, "trials for -exp ranking")
		kdocs      = flag.Int("kdocs", 10000, "corpus size for -exp kernel")
		mdocs      = flag.Int("mdocs", 1_000_000, "corpus size for -exp million")
		zipf       = flag.Bool("zipf", true, "Zipf-skewed keyword popularity for -exp million")
		zeros      = flag.String("zeros", "1,2,4,7,14,28,56,112,224", "comma-separated query zero-counts for -exp kernel")
		replicas   = flag.Int("replicas", 2, "read replicas for -exp replication")
		partitions = flag.String("partitions", "1,2,4", "comma-separated partition counts for -exp cluster")
		cacheMB    = flag.Int("cache-mb", 64, "query-result cache budget in MiB for -exp cache")
		shards     = flag.Int("shards", 0, "store shards for -exp shards (0 = one per core)")
		workers    = flag.Int("workers", 0, "concurrent shard scans for -exp shards (0 = auto)")
		batch      = flag.Int("batch", 16, "queries per SearchBatch call for -exp shards")
		traced     = flag.Bool("trace", false, "for -exp cluster: run the sweep with tracing enabled and print one assembled span tree")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("mkse-bench"))
		return
	}

	sweep, err := cliutil.ParseInts(*sizes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkse-bench: %v\n", err)
		os.Exit(2)
	}

	run := func(name string, fn func() (fmt.Stringer, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkse-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	run("fig2a", func() (fmt.Stringer, error) {
		r, err := experiments.Fig2a(*seed)
		return titled{r, "Figure 2(a) — query distances, term count unknown"}, err
	})
	run("fig2b", func() (fmt.Stringer, error) {
		r, err := experiments.Fig2b(*seed)
		return titled{r, "Figure 2(b) — query distances, 5 terms known"}, err
	})
	run("fig3", func() (fmt.Stringer, error) {
		r, err := experiments.Fig3(*docs, *queries, *seed)
		return stringer{r}, err
	})
	run("fig4a", func() (fmt.Stringer, error) {
		r, err := experiments.Fig4a(sweep, *seed)
		return stringer{r}, err
	})
	run("fig4b", func() (fmt.Stringer, error) {
		r, err := experiments.Fig4b(sweep, *queries, *seed)
		return stringer{r}, err
	})
	run("table1", func() (fmt.Stringer, error) {
		r, err := experiments.Table1(3, 10, 2, 1<<20, *seed)
		return stringer{r}, err
	})
	run("table2", func() (fmt.Stringer, error) {
		r, err := experiments.Table2(*docs, *seed)
		return stringer{r}, err
	})
	run("ranking", func() (fmt.Stringer, error) {
		r, err := experiments.RankingQuality(*trials, *seed)
		return stringer{r}, err
	})
	run("cao", func() (fmt.Stringer, error) {
		// The full paper sweep at n=4000+ takes hours for MRSE — exactly the
		// paper's point. Scale sizes down for the comparison by default.
		caoSizes := sweep
		if *exp == "all" {
			caoSizes = []int{500, 1000, 2000}
		}
		r, err := experiments.CaoComparison(caoSizes, *dict, *queries, *seed)
		return stringer{r}, err
	})
	run("analytic", func() (fmt.Stringer, error) {
		r, err := experiments.Analytics(300, *seed)
		return stringer{r}, err
	})
	run("theorem3", func() (fmt.Stringer, error) {
		r, err := experiments.Theorem3()
		return stringer{r}, err
	})
	run("attack", func() (fmt.Stringer, error) {
		r, err := experiments.BruteForceAttack(25000, *seed)
		return stringer{r}, err
	})
	run("confidence", func() (fmt.Stringer, error) {
		r, err := experiments.AdversaryConfidence(500, *seed)
		return stringer{r}, err
	})
	run("ablate-d", func() (fmt.Stringer, error) {
		r, err := experiments.DSweep(*docs, *queries, *seed)
		return stringer{r}, err
	})
	run("ablate-v", func() (fmt.Stringer, error) {
		r, err := experiments.VSweep(500, *seed)
		return stringer{r}, err
	})
	run("ablate-bins", func() (fmt.Stringer, error) {
		r, err := experiments.BinsSweep(25000, *seed)
		return stringer{r}, err
	})
	run("kernel", func() (fmt.Stringer, error) {
		zs, err := cliutil.ParseInts(*zeros)
		if err != nil {
			return nil, err
		}
		r, err := experiments.KernelSweep(*kdocs, 0, zs, *queries, *seed)
		return stringer{r}, err
	})
	run("recovery", func() (fmt.Stringer, error) {
		recSizes := sweep
		if *exp == "all" {
			recSizes = []int{1000, 5000}
		}
		r, err := experiments.RecoverySweep(recSizes, *seed)
		return stringer{r}, err
	})
	run("replication", func() (fmt.Stringer, error) {
		repSizes := sweep
		if *exp == "all" {
			repSizes = []int{1000, 5000}
		}
		r, err := experiments.ReplicationSweep(repSizes, *replicas, *queries, *seed)
		return stringer{r}, err
	})
	run("cluster", func() (fmt.Stringer, error) {
		cluSizes := sweep
		if *exp == "all" {
			cluSizes = []int{1000, 5000}
		}
		parts, err := cliutil.ParseInts(*partitions)
		if err != nil {
			return nil, err
		}
		r, err := experiments.ClusterSweep(cluSizes, parts, *queries, *seed, *traced)
		return stringer{r}, err
	})
	run("cache", func() (fmt.Stringer, error) {
		cacheSizes := sweep
		if *exp == "all" {
			cacheSizes = []int{1000, 10000}
		}
		r, err := experiments.CacheSweep(cacheSizes, *cacheMB, *queries, *seed)
		return stringer{r}, err
	})
	// The million-document sweep streams mdocs indices into the server —
	// minutes of index construction at full scale — so it only runs when
	// asked for by name, never under -exp all.
	if *exp == "million" {
		r, err := experiments.MillionSweep(*mdocs, *shards, *workers, *queries, *zipf, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkse-bench: million: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(stringer{r})
	}

	run("shards", func() (fmt.Stringer, error) {
		shardSizes := sweep
		if *exp == "all" {
			shardSizes = []int{1000, 10000}
		}
		r, err := experiments.ShardSweep(shardSizes, *shards, *workers, *queries, *batch, *seed)
		return stringer{r}, err
	})
}

// stringer adapts experiment results (which have Format() string) to
// fmt.Stringer.
type stringer struct{ r interface{ Format() string } }

func (s stringer) String() string { return s.r.Format() }

// titled adapts Fig2 results, whose Format takes a title.
type titled struct {
	r     interface{ Format(string) string }
	title string
}

func (t titled) String() string { return t.r.Format(t.title) }
