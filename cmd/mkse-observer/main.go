// Command mkse-observer watches a replicated mkse-server cluster and fails
// it over automatically: it health-probes the primary on a fixed cadence,
// and when the primary stays unreachable for -fail-after consecutive
// probes, it elects the reachable follower with the highest replicated
// position, promotes it under a freshly raised fencing term, and repoints
// the surviving followers at it. An old primary that later resurrects is
// reconfigured into a follower; the fencing term guarantees its
// unreplicated log tail is discarded rather than forked into the history.
//
// Usage:
//
//	mkse-observer -primary host:7002 -replicas host:7003,host:7004
//	              [-probe-every 1s] [-probe-timeout 1s] [-fail-after 3]
//	              [-metrics-addr :7013] [-trace-sample 10]
//	              [-log-format text|json] [-log-level info]
//	              [-oneshot]
//
// -oneshot runs a single probe cycle and exits: status 0 if the primary is
// healthy, 1 if it is not — usable as a liveness check from cron or CI
// without leaving a daemon running. (A single cycle never fails over unless
// -fail-after is 1.)
//
// -metrics-addr starts the telemetry sidecar: /metrics exports the
// observer's probe-failure, failover and promotion counters plus term and
// backlog gauges, /healthz reports liveness with the current escalation
// state in its detail field, and /debug/pprof exposes runtime profiles.
// With -trace-sample N, 1 in N probe cycles is recorded as a background
// trace (an observer.tick root with a probe child) served by the sidecar
// at /traces — the cheap way to see how long probes actually take.
//
// The observer keeps no state on disk. Restart it freely: roles, terms and
// positions are re-learned by probing, and a follower that was already
// promoted by a previous incarnation is adopted, not promoted again.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mkse/internal/buildinfo"
	"mkse/internal/cliutil"
	"mkse/internal/observer"
	"mkse/internal/telemetry"
	"mkse/internal/trace"
)

func main() {
	var (
		primary      = flag.String("primary", "", "address of the current primary (required)")
		replicas     = flag.String("replicas", "", "comma-separated follower addresses eligible for promotion (required)")
		probeEvery   = flag.Duration("probe-every", time.Second, "health-probe interval")
		probeTimeout = flag.Duration("probe-timeout", time.Second, "per-probe dial+roundtrip budget")
		failAfter    = flag.Int("fail-after", 3, "consecutive failed probes before failing over")
		oneshot      = flag.Bool("oneshot", false, "run one probe cycle and exit (0 = primary healthy)")
		metricsAddr  = flag.String("metrics-addr", "", "telemetry sidecar address serving /metrics, /healthz and /debug/pprof (empty = disabled)")
		traceSample  = flag.Int("trace-sample", 0, "sample 1 in N probe cycles into background traces served at /traces (0 = disabled)")
		logFormat    = flag.String("log-format", "text", "log output format: text or json")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("mkse-observer"))
		return
	}
	logger, err := cliutil.NewLogger("mkse-observer", *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkse-observer: %v\n", err)
		os.Exit(2)
	}

	var followers []string
	for _, a := range strings.Split(*replicas, ",") {
		if a = strings.TrimSpace(a); a != "" {
			followers = append(followers, a)
		}
	}
	if *primary == "" || len(followers) == 0 {
		fmt.Fprintln(os.Stderr, "mkse-observer: -primary and -replicas are required")
		os.Exit(2)
	}

	var traceBuf *trace.Buffer
	var tracer *trace.Tracer
	if *traceSample > 0 {
		traceBuf = trace.NewBuffer(128)
		tracer = trace.New("observer", *traceSample, traceBuf)
		logger.Info("probe tracing enabled", "sample", *traceSample)
	}

	obs := observer.New(observer.Config{
		Primary:      *primary,
		Followers:    followers,
		ProbeEvery:   *probeEvery,
		ProbeTimeout: *probeTimeout,
		FailAfter:    *failAfter,
		Logger:       logger,
		Tracer:       tracer,
		OnFailover: func(oldPrimary, newPrimary string, term uint64) {
			logger.Info("failover complete", "old_primary", oldPrimary, "new_primary", newPrimary, "term", term)
		},
	})

	if *oneshot {
		obs.Tick()
		st := obs.Status()
		if st.ConsecFails > 0 && st.Failovers == 0 {
			os.Exit(1)
		}
		logger.Info("primary healthy", "primary", st.Primary, "term", st.Term)
		return
	}

	if *metricsAddr != "" {
		reg := telemetry.New()
		ver, commit := buildinfo.Fields()
		reg.Gauge("mkse_build_info", "Build metadata; the labelled series is always 1.",
			telemetry.Label{Key: "version", Value: ver},
			telemetry.Label{Key: "commit", Value: commit}).Set(1)
		obs.EnableMetrics(reg)
		var routes []telemetry.Route
		if traceBuf != nil {
			routes = append(routes,
				telemetry.Route{Pattern: "/traces", Handler: traceBuf.RecentHandler()},
				telemetry.Route{Pattern: "/traces/slow", Handler: traceBuf.SlowHandler()})
		}
		srv, err := telemetry.Serve(*metricsAddr, reg, obs.Health, logger, routes...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkse-observer: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
	}

	obs.Start()
	logger.Info("watching primary", "primary", *primary, "followers", len(followers),
		"probe_every", *probeEvery, "fail_after", *failAfter)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logger.Info("shutting down on signal", "signal", s.String())
	obs.Close()
	st := obs.Status()
	logger.Info("final topology", "primary", st.Primary, "followers", st.Followers,
		"failovers", st.Failovers, "term", st.Term)
}
