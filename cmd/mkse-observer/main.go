// Command mkse-observer watches a replicated mkse-server cluster and fails
// it over automatically: it health-probes the primary on a fixed cadence,
// and when the primary stays unreachable for -fail-after consecutive
// probes, it elects the reachable follower with the highest replicated
// position, promotes it under a freshly raised fencing term, and repoints
// the surviving followers at it. An old primary that later resurrects is
// reconfigured into a follower; the fencing term guarantees its
// unreplicated log tail is discarded rather than forked into the history.
//
// Usage:
//
//	mkse-observer -primary host:7002 -replicas host:7003,host:7004
//	              [-probe-every 1s] [-probe-timeout 1s] [-fail-after 3]
//	              [-oneshot]
//
// -oneshot runs a single probe cycle and exits: status 0 if the primary is
// healthy, 1 if it is not — usable as a liveness check from cron or CI
// without leaving a daemon running. (A single cycle never fails over unless
// -fail-after is 1.)
//
// The observer keeps no state on disk. Restart it freely: roles, terms and
// positions are re-learned by probing, and a follower that was already
// promoted by a previous incarnation is adopted, not promoted again.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mkse/internal/observer"
)

func main() {
	var (
		primary      = flag.String("primary", "", "address of the current primary (required)")
		replicas     = flag.String("replicas", "", "comma-separated follower addresses eligible for promotion (required)")
		probeEvery   = flag.Duration("probe-every", time.Second, "health-probe interval")
		probeTimeout = flag.Duration("probe-timeout", time.Second, "per-probe dial+roundtrip budget")
		failAfter    = flag.Int("fail-after", 3, "consecutive failed probes before failing over")
		oneshot      = flag.Bool("oneshot", false, "run one probe cycle and exit (0 = primary healthy)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "mkse-observer ", log.LstdFlags)

	var followers []string
	for _, a := range strings.Split(*replicas, ",") {
		if a = strings.TrimSpace(a); a != "" {
			followers = append(followers, a)
		}
	}
	if *primary == "" || len(followers) == 0 {
		fmt.Fprintln(os.Stderr, "mkse-observer: -primary and -replicas are required")
		os.Exit(2)
	}

	obs := observer.New(observer.Config{
		Primary:      *primary,
		Followers:    followers,
		ProbeEvery:   *probeEvery,
		ProbeTimeout: *probeTimeout,
		FailAfter:    *failAfter,
		Logger:       logger,
		OnFailover: func(oldPrimary, newPrimary string, term uint64) {
			logger.Printf("failover complete: %s -> %s at term %d", oldPrimary, newPrimary, term)
		},
	})

	if *oneshot {
		obs.Tick()
		st := obs.Status()
		if st.ConsecFails > 0 && st.Failovers == 0 {
			os.Exit(1)
		}
		logger.Printf("primary %s healthy (term %d)", st.Primary, st.Term)
		return
	}

	obs.Start()
	logger.Printf("watching primary %s with %d follower(s), probing every %v (failover after %d misses)",
		*primary, len(followers), *probeEvery, *failAfter)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logger.Printf("received %v, shutting down", s)
	obs.Close()
	st := obs.Status()
	logger.Printf("final topology: primary %s, followers %v, %d failover(s), term %d",
		st.Primary, st.Followers, st.Failovers, st.Term)
}
