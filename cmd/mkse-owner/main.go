// Command mkse-owner runs the data-owner daemon of Figure 1 and performs the
// offline stage: it indexes and encrypts every document under -docs (plain
// text files; file name = document ID), uploads them to the cloud daemon,
// then serves enrollment, trapdoor and blind-decryption requests.
//
// Usage:
//
//	mkse-owner -listen :7001 -cloud localhost:7002 -docs ./corpus [-levels 1,5,10]
//	           [-metrics-addr :7011] [-trace-sample 100]
//
// With -synthetic N it generates N synthetic documents instead of reading a
// directory, which is handy for trying the system end to end.
//
// -metrics-addr starts the telemetry sidecar (/healthz, /debug/pprof, and —
// with -trace-sample — /traces). -trace-sample N samples 1 in N requests
// into single-span traces; a trace context propagated by a traced client is
// always continued, so the owner leg of an enrollment or blind decryption
// shows up in the client's assembled tree either way.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"mkse/internal/buildinfo"
	"mkse/internal/cliutil"
	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/service"
	"mkse/internal/store"
	"mkse/internal/telemetry"
	"mkse/internal/trace"
)

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mkse-owner: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		listen      = flag.String("listen", ":7001", "address to listen on")
		cloud       = flag.String("cloud", "localhost:7002", "cloud daemon address to upload to")
		docsDir     = flag.String("docs", "", "directory of plaintext documents to index")
		synthetic   = flag.Int("synthetic", 0, "generate N synthetic documents instead of -docs")
		levels      = flag.String("levels", "1", "comma-separated ranking thresholds (η levels)")
		seed        = flag.Int64("seed", 1, "seed for random keywords / synthetic corpus")
		state       = flag.String("state", "", "path to persist/restore the owner's secret state (protect this file!)")
		metricsAddr = flag.String("metrics-addr", "", "telemetry sidecar address serving /healthz, /debug/pprof and /traces (empty = disabled)")
		traceSample = flag.Int("trace-sample", 0, "sample 1 in N requests into traces served at /traces (0 = disabled)")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("mkse-owner"))
		return
	}
	logger, err := cliutil.NewLogger("mkse-owner", *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkse-owner: %v\n", err)
		os.Exit(2)
	}

	p := core.DefaultParams()
	lv, err := cliutil.ParseLevels(*levels)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkse-owner: %v\n", err)
		os.Exit(2)
	}
	p.Levels = lv

	var owner *core.Owner
	if *state != "" {
		if restored, err := store.LoadOwnerFile(*state); err == nil {
			owner = restored
			logger.Info("restored owner state", "path", *state, "epoch", owner.Epoch())
		} else if !os.IsNotExist(err) {
			fatal("restoring %s: %v", *state, err)
		}
	}
	if owner == nil {
		owner, err = core.NewOwner(p, *seed)
		if err != nil {
			fatal("%v", err)
		}
	}

	docs, err := loadDocuments(*docsDir, *synthetic, *seed)
	if err != nil {
		fatal("%v", err)
	}
	logger.Info("indexing documents", "documents", len(docs), "eta", p.Eta())
	// Register the observed keyword universe so clients may use vector-mode
	// trapdoors (§4.2's alternative delivery).
	dictSet := make(map[string]bool)
	for _, d := range docs {
		for w := range d.TermFreqs {
			dictSet[w] = true
		}
	}
	dictionary := make([]string, 0, len(dictSet))
	for w := range dictSet {
		dictionary = append(dictionary, w)
	}
	owner.RegisterDictionary(dictionary)

	items := make([]service.UploadItem, 0, len(docs))
	for _, d := range docs {
		si, enc, err := owner.Prepare(d)
		if err != nil {
			fatal("preparing %q: %v", d.ID, err)
		}
		items = append(items, service.UploadItem{Index: si, Doc: enc})
	}
	if len(items) > 0 {
		if err := service.UploadAll(*cloud, items); err != nil {
			fatal("upload: %v", err)
		}
		logger.Info("uploaded documents", "documents", len(items), "cloud", *cloud)
	}

	if *state != "" {
		if err := store.SaveOwnerFile(*state, owner); err != nil {
			fatal("saving state: %v", err)
		}
		logger.Info("owner state saved", "path", *state)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			if err := store.SaveOwnerFile(*state, owner); err != nil {
				logger.Error("state save failed", "err", err)
				os.Exit(1)
			}
			logger.Info("owner state saved", "path", *state)
			os.Exit(0)
		}()
	}

	svc := &service.OwnerService{Owner: owner, Logger: logger}
	var traceBuf *trace.Buffer
	if *traceSample > 0 {
		traceBuf = trace.NewBuffer(128)
		svc.Tracer = trace.New("owner", *traceSample, traceBuf)
		logger.Info("request tracing enabled", "sample", *traceSample)
	}
	if *metricsAddr != "" {
		reg := telemetry.New()
		ver, commit := buildinfo.Fields()
		reg.Gauge(service.SeriesBuildInfo, "Build metadata; the labelled series is always 1.",
			telemetry.Label{Key: "version", Value: ver},
			telemetry.Label{Key: "commit", Value: commit}).Set(1)
		var routes []telemetry.Route
		if traceBuf != nil {
			routes = append(routes,
				telemetry.Route{Pattern: "/traces", Handler: traceBuf.RecentHandler()},
				telemetry.Route{Pattern: "/traces/slow", Handler: traceBuf.SlowHandler()})
		}
		srv, err := telemetry.Serve(*metricsAddr, reg,
			func() telemetry.Health { return telemetry.Health{Ready: true, Role: "owner"} }, logger, routes...)
		if err != nil {
			fatal("%v", err)
		}
		defer srv.Close()
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("%v", err)
	}
	logger.Info("listening", "addr", l.Addr().String())
	if err := svc.Serve(l); err != nil {
		fatal("%v", err)
	}
}

// loadDocuments reads a directory of plain-text documents, or generates a
// synthetic corpus when n > 0 and no directory is given.
func loadDocuments(dir string, n int, seed int64) ([]*corpus.Document, error) {
	if dir == "" {
		if n <= 0 {
			return nil, nil // serve with an empty database
		}
		return corpus.Generate(corpus.Config{
			NumDocs: n, KeywordsPerDoc: 20, Dictionary: corpus.Dictionary(4000),
			MaxTermFreq: 15, ContentWords: 50, Seed: seed,
		})
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reading corpus directory: %w", err)
	}
	var docs []*corpus.Document
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		body, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", e.Name(), err)
		}
		tf := corpus.Tokenize(string(body), 3)
		if len(tf) == 0 {
			continue
		}
		docs = append(docs, &corpus.Document{ID: e.Name(), TermFreqs: tf, Content: body})
	}
	return docs, nil
}
