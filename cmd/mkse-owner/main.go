// Command mkse-owner runs the data-owner daemon of Figure 1 and performs the
// offline stage: it indexes and encrypts every document under -docs (plain
// text files; file name = document ID), uploads them to the cloud daemon,
// then serves enrollment, trapdoor and blind-decryption requests.
//
// Usage:
//
//	mkse-owner -listen :7001 -cloud localhost:7002 -docs ./corpus [-levels 1,5,10]
//
// With -synthetic N it generates N synthetic documents instead of reading a
// directory, which is handy for trying the system end to end.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"mkse/internal/cliutil"
	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/service"
	"mkse/internal/store"
)

func main() {
	var (
		listen    = flag.String("listen", ":7001", "address to listen on")
		cloud     = flag.String("cloud", "localhost:7002", "cloud daemon address to upload to")
		docsDir   = flag.String("docs", "", "directory of plaintext documents to index")
		synthetic = flag.Int("synthetic", 0, "generate N synthetic documents instead of -docs")
		levels    = flag.String("levels", "1", "comma-separated ranking thresholds (η levels)")
		seed      = flag.Int64("seed", 1, "seed for random keywords / synthetic corpus")
		state     = flag.String("state", "", "path to persist/restore the owner's secret state (protect this file!)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "mkse-owner ", log.LstdFlags)

	p := core.DefaultParams()
	lv, err := cliutil.ParseLevels(*levels)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkse-owner: %v\n", err)
		os.Exit(2)
	}
	p.Levels = lv

	var owner *core.Owner
	if *state != "" {
		if restored, err := store.LoadOwnerFile(*state); err == nil {
			owner = restored
			logger.Printf("restored owner state from %s (epoch %d)", *state, owner.Epoch())
		} else if !os.IsNotExist(err) {
			log.Fatalf("mkse-owner: restoring %s: %v", *state, err)
		}
	}
	if owner == nil {
		owner, err = core.NewOwner(p, *seed)
		if err != nil {
			log.Fatalf("mkse-owner: %v", err)
		}
	}

	docs, err := loadDocuments(*docsDir, *synthetic, *seed)
	if err != nil {
		log.Fatalf("mkse-owner: %v", err)
	}
	logger.Printf("indexing %d documents (η=%d)", len(docs), p.Eta())
	// Register the observed keyword universe so clients may use vector-mode
	// trapdoors (§4.2's alternative delivery).
	dictSet := make(map[string]bool)
	for _, d := range docs {
		for w := range d.TermFreqs {
			dictSet[w] = true
		}
	}
	dictionary := make([]string, 0, len(dictSet))
	for w := range dictSet {
		dictionary = append(dictionary, w)
	}
	owner.RegisterDictionary(dictionary)

	items := make([]service.UploadItem, 0, len(docs))
	for _, d := range docs {
		si, enc, err := owner.Prepare(d)
		if err != nil {
			log.Fatalf("mkse-owner: preparing %q: %v", d.ID, err)
		}
		items = append(items, service.UploadItem{Index: si, Doc: enc})
	}
	if len(items) > 0 {
		if err := service.UploadAll(*cloud, items); err != nil {
			log.Fatalf("mkse-owner: upload: %v", err)
		}
		logger.Printf("uploaded %d documents to %s", len(items), *cloud)
	}

	if *state != "" {
		if err := store.SaveOwnerFile(*state, owner); err != nil {
			log.Fatalf("mkse-owner: saving state: %v", err)
		}
		logger.Printf("owner state saved to %s", *state)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			if err := store.SaveOwnerFile(*state, owner); err != nil {
				logger.Printf("state save failed: %v", err)
				os.Exit(1)
			}
			logger.Printf("owner state saved to %s", *state)
			os.Exit(0)
		}()
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("mkse-owner: %v", err)
	}
	logger.Printf("listening on %s", l.Addr())
	if err := (&service.OwnerService{Owner: owner, Logger: logger}).Serve(l); err != nil {
		log.Fatalf("mkse-owner: %v", err)
	}
}

// loadDocuments reads a directory of plain-text documents, or generates a
// synthetic corpus when n > 0 and no directory is given.
func loadDocuments(dir string, n int, seed int64) ([]*corpus.Document, error) {
	if dir == "" {
		if n <= 0 {
			return nil, nil // serve with an empty database
		}
		return corpus.Generate(corpus.Config{
			NumDocs: n, KeywordsPerDoc: 20, Dictionary: corpus.Dictionary(4000),
			MaxTermFreq: 15, ContentWords: 50, Seed: seed,
		})
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reading corpus directory: %w", err)
	}
	var docs []*corpus.Document
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		body, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", e.Name(), err)
		}
		tf := corpus.Tokenize(string(body), 3)
		if len(tf) == 0 {
			continue
		}
		docs = append(docs, &corpus.Document{ID: e.Name(), TermFreqs: tf, Content: body})
	}
	return docs, nil
}
