// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (DESIGN.md §3 maps each to its experiment). Timing-oriented
// artifacts (Figure 4, the Cao comparison) are proper testing.B loops over
// the measured operation; distribution/accuracy artifacts (Figure 2/3,
// tables, ranking) benchmark one full experiment regeneration.
//
// Run everything:  go test -bench=. -benchmem
// One artifact:    go test -bench=BenchmarkFig4b -benchmem
//
// Owners are built with NewOwnerDeterministic so index and query material —
// and therefore match counts and the work a search does — are identical
// across processes; numbers from different runs are directly comparable.
package mkse

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"mkse/internal/baseline/caomrse"
	"mkse/internal/bitindex"
	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/experiments"
	"mkse/internal/harness"
	"mkse/internal/protocol"
	"mkse/internal/rank"
	"mkse/internal/service"
	"mkse/internal/telemetry"
)

// ---------------------------------------------------------------------------
// Figure 4(a) — index construction time (per document, by rank levels)
// ---------------------------------------------------------------------------

// BenchmarkIndexConstruction measures the owner's per-document index build
// with the paper's 20 genuine + 60 random keywords, for η = 1 (no ranking),
// 3 and 5 — the three series of Figure 4(a). Multiply by the corpus size for
// the paper's totals (e.g. ×10000 for the largest point).
func BenchmarkIndexConstruction(b *testing.B) {
	dict := corpus.Dictionary(4000)
	for _, eta := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("levels=%d", eta), func(b *testing.B) {
			p := core.DefaultParams()
			p.Bins = 64
			p.Levels = rank.DefaultLevels(eta, 15)
			owner, err := core.NewOwnerDeterministic(p, 1, 0xbe7c4)
			if err != nil {
				b.Fatal(err)
			}
			docs, err := corpus.Generate(corpus.Config{
				NumDocs: 256, KeywordsPerDoc: 20, Dictionary: dict, MaxTermFreq: 15, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := owner.BuildIndex(docs[i%len(docs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 4(b) — search time (per query, by corpus size and rank levels)
// ---------------------------------------------------------------------------

// BenchmarkSearch measures one ranked query over stored indices — Figure
// 4(b)'s series. The paper reports ≈1.5 ms over 6000 documents (2012 Java).
func BenchmarkSearch(b *testing.B) {
	dict := corpus.Dictionary(4000)
	for _, eta := range []int{1, 3, 5} {
		for _, size := range []int{2000, 6000, 10000} {
			b.Run(fmt.Sprintf("levels=%d/docs=%d", eta, size), func(b *testing.B) {
				p := core.DefaultParams()
				p.Bins = 64
				p.Levels = rank.DefaultLevels(eta, 15)
				owner, err := core.NewOwnerDeterministic(p, 1, 0xbe7c4)
				if err != nil {
					b.Fatal(err)
				}
				// One shard/worker: this benchmark replicates the paper's
				// sequential scan; BenchmarkShardedSearchTop covers layouts.
				server, err := core.NewServerSharded(p, 1, 1)
				if err != nil {
					b.Fatal(err)
				}
				docs, err := corpus.Generate(corpus.Config{
					NumDocs: size, KeywordsPerDoc: 20, Dictionary: dict, MaxTermFreq: 15, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, d := range docs {
					si, err := owner.BuildIndex(d)
					if err != nil {
						b.Fatal(err)
					}
					if err := server.Upload(si, &core.EncryptedDocument{ID: d.ID, Ciphertext: []byte{0}, EncKey: []byte{0}}); err != nil {
						b.Fatal(err)
					}
				}
				q := queryFor(b, owner, docs[0].Keywords()[:2])
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := server.Search(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSearchTelemetry is BenchmarkSearch's middle configuration
// (levels=3, docs=10000) with the telemetry scan histogram attached, the
// way EnableMetrics wires it in a daemon. CI compares it against the
// matching BenchmarkSearch sub-benchmark and fails on more than a few
// percent of overhead: an observation must stay a bucket-index computation
// plus two atomic adds. Allocation-freedom under telemetry is asserted
// separately by core's TestSearchScanPathAllocationFree.
func BenchmarkSearchTelemetry(b *testing.B) {
	const eta, size = 3, 10000
	p := core.DefaultParams()
	p.Bins = 64
	p.Levels = rank.DefaultLevels(eta, 15)
	owner, err := core.NewOwnerDeterministic(p, 1, 0xbe7c4)
	if err != nil {
		b.Fatal(err)
	}
	server, err := core.NewServerSharded(p, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: size, KeywordsPerDoc: 20, Dictionary: corpus.Dictionary(4000), MaxTermFreq: 15, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range docs {
		si, err := owner.BuildIndex(d)
		if err != nil {
			b.Fatal(err)
		}
		if err := server.Upload(si, &core.EncryptedDocument{ID: d.ID, Ciphertext: []byte{0}, EncKey: []byte{0}}); err != nil {
			b.Fatal(err)
		}
	}
	server.ObserveScans(telemetry.New().Histogram(
		"mkse_scan_duration_seconds", "scan timings", telemetry.RequestBuckets()))
	q := queryFor(b, owner, docs[0].Keywords()[:2])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}

// queryFor builds a randomized query as a user would, via owner trapdoors.
func queryFor(b *testing.B, owner *core.Owner, words []string) *bitindex.Vector {
	b.Helper()
	p := owner.Params()
	q := bitindex.NewOnes(p.R)
	for _, w := range words {
		q.AndInto(owner.Trapdoor(w))
	}
	for i, rt := range owner.RandomTrapdoors() {
		if i >= p.V {
			break
		}
		q.AndInto(rt)
	}
	return q
}

// ---------------------------------------------------------------------------
// Section 8.1 — MKS vs Cao et al. MRSE_I
// ---------------------------------------------------------------------------

// BenchmarkVsCaoIndexConstruction sets the two schemes' per-document index
// generation side by side (paper: 60 s vs 4500 s for 6000 documents). The
// MRSE cost is O(n²) in the dictionary size; n = 1000 here keeps the run
// short — the paper's n in the thousands widens the gap further.
func BenchmarkVsCaoIndexConstruction(b *testing.B) {
	dict := corpus.Dictionary(1000)
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: 64, KeywordsPerDoc: 20, Dictionary: dict, MaxTermFreq: 15, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("mks", func(b *testing.B) {
		p := core.DefaultParams()
		p.Bins = 64
		p.Levels = rank.DefaultLevels(5, 15)
		owner, err := core.NewOwnerDeterministic(p, 1, 0xbe7c4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := owner.BuildIndex(docs[i%len(docs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mrse", func(b *testing.B) {
		scheme, err := caomrse.New(dict, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scheme.BuildIndex(docs[i%len(docs)])
		}
	})
}

// BenchmarkVsCaoSearch sets one full query over 1000 stored documents side
// by side (paper: 1.5 ms vs 600 ms over 6000 documents).
func BenchmarkVsCaoSearch(b *testing.B) {
	dict := corpus.Dictionary(1000)
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: 1000, KeywordsPerDoc: 20, Dictionary: dict, MaxTermFreq: 15, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	words := docs[0].Keywords()[:3]

	b.Run("mks", func(b *testing.B) {
		p := core.DefaultParams()
		p.Bins = 64
		p.Levels = rank.DefaultLevels(5, 15)
		owner, err := core.NewOwnerDeterministic(p, 1, 0xbe7c4)
		if err != nil {
			b.Fatal(err)
		}
		// Sequential layout, like the MRSE baseline it is compared against.
		server, err := core.NewServerSharded(p, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range docs {
			si, err := owner.BuildIndex(d)
			if err != nil {
				b.Fatal(err)
			}
			if err := server.Upload(si, &core.EncryptedDocument{ID: d.ID, Ciphertext: []byte{0}, EncKey: []byte{0}}); err != nil {
				b.Fatal(err)
			}
		}
		q := queryFor(b, owner, words)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := server.Search(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mrse", func(b *testing.B) {
		scheme, err := caomrse.New(dict, 1)
		if err != nil {
			b.Fatal(err)
		}
		indices := make([]*caomrse.Index, len(docs))
		for i, d := range docs {
			indices[i] = scheme.BuildIndex(d)
		}
		td, err := scheme.Trapdoor(words)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			caomrse.Search(indices, td, 10)
		}
	})
}

// ---------------------------------------------------------------------------
// Figure 2 — query-distance histograms
// ---------------------------------------------------------------------------

// BenchmarkFig2a regenerates the Figure 2(a) histograms (2500 randomized
// queries + 2500 Hamming distances per iteration).
func BenchmarkFig2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2a(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2b regenerates the Figure 2(b) histograms.
func BenchmarkFig2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2b(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 3 — false accept rates
// ---------------------------------------------------------------------------

// BenchmarkFig3 regenerates the Figure 3 FAR sweep (4 document-keyword
// counts × 4 query sizes over a 400-document corpus per iteration).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(400, 25, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Table 1 — communication costs
// ---------------------------------------------------------------------------

// BenchmarkTable1Protocol regenerates the Table 1 accounting and exercises
// the real wire encodings it models.
func BenchmarkTable1Protocol(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(3, 10, 2, 1<<20, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Table 2 — computation costs (plus the protocol's unit operations)
// ---------------------------------------------------------------------------

// BenchmarkTable2Flow runs the full instrumented protocol flow Table 2
// tabulates: trapdoor exchange, query, ranked search over 300 documents,
// blinded retrieval.
func BenchmarkTable2Flow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(300, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrapdoorGeneration isolates the user-side "1 hash" entry of
// Table 2: one keyword-index derivation (HMAC expansion + GF reduction).
func BenchmarkTrapdoorGeneration(b *testing.B) {
	p := core.DefaultParams()
	p.Bins = 64
	owner, err := core.NewOwnerDeterministic(p, 1, 0xbe7c4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		owner.Trapdoor("confidential")
	}
}

// BenchmarkBlindDecryption isolates the Table 2 retrieval arithmetic: user
// blinding + owner exponentiation + unblinding.
func BenchmarkBlindDecryption(b *testing.B) {
	p := core.DefaultParams()
	p.Bins = 8
	owner, err := core.NewOwnerDeterministic(p, 1, 0xbe7c4)
	if err != nil {
		b.Fatal(err)
	}
	doc := &corpus.Document{ID: "d", TermFreqs: map[string]int{"k": 1}, Content: []byte("x")}
	enc, err := owner.EncryptDocument(doc)
	if err != nil {
		b.Fatal(err)
	}
	user, err := core.NewUser("bench", p, owner.PublicKey(), owner.RandomTrapdoors())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := user.DecryptDocument(enc, func(z *big.Int) (*big.Int, error) {
			return owner.BlindDecrypt(z)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Section 5 — ranking quality
// ---------------------------------------------------------------------------

// BenchmarkRankingQuality regenerates one trial of the Section 5 agreement
// study (1000 documents indexed and searched per iteration).
func BenchmarkRankingQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RankingQuality(1, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Section 6 analytics & Section 4.1 attack
// ---------------------------------------------------------------------------

// BenchmarkAnalytics regenerates the F(x) model-vs-simulation table.
func BenchmarkAnalytics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Analytics(50, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBruteForceAttack runs the Section 4.1 dictionary attack against
// both the keyless baseline and MKS (3000-word dictionary per iteration).
func BenchmarkBruteForceAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BruteForceAttack(3000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Sharded engine — scaling beyond the paper (EXPERIMENTS.md "Sharded search")
// ---------------------------------------------------------------------------

// benchServer builds a server with the given layout holding size documents.
func benchServer(b *testing.B, shards, workers, size int) (*core.Server, *bitindex.Vector, []*bitindex.Vector) {
	b.Helper()
	p := core.DefaultParams()
	p.Bins = 64
	p.Levels = rank.DefaultLevels(3, 15)
	owner, err := core.NewOwnerDeterministic(p, 1, 0xbe7c4)
	if err != nil {
		b.Fatal(err)
	}
	server, err := core.NewServerSharded(p, shards, workers)
	if err != nil {
		b.Fatal(err)
	}
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: size, KeywordsPerDoc: 20, Dictionary: corpus.Dictionary(4000),
		MaxTermFreq: 15, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	indices, err := owner.BuildIndexes(docs, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i, d := range docs {
		if err := server.Upload(indices[i], &core.EncryptedDocument{ID: d.ID, Ciphertext: []byte{0}, EncKey: []byte{0}}); err != nil {
			b.Fatal(err)
		}
	}
	q := queryFor(b, owner, docs[0].Keywords()[:2])
	batch := make([]*bitindex.Vector, 16)
	for i := range batch {
		batch[i] = queryFor(b, owner, docs[i*7%size].Keywords()[:2])
	}
	return server, q, batch
}

// BenchmarkMatchKernel isolates the Equation-3 scan the server spends its
// time in, across index layouts (EXPERIMENTS.md "Columnar arenas"): boxed
// per-document vectors (the pre-arena layout), the flat columnar arena with
// a dense word sweep, the arena with the zero-word-skipping kernel, and the
// word-major transposed layout with the blocked bitmap-refinement kernel
// (the layout the server's level-1 screen runs on) — for a
// near-single-trapdoor query (7 zeros) and a fully randomized
// multi-keyword query (170 zeros, every word active).
//
// kernelSink keeps the match counts live so the timed loops cannot be
// dead-code-eliminated.
var kernelSink int

func BenchmarkMatchKernel(b *testing.B) {
	const docs, r = 10000, 448
	stride := bitindex.WordsFor(r)
	rng := rand.New(rand.NewSource(31))
	boxed := make([]*bitindex.Vector, docs)
	arena := make([]uint64, 0, docs*stride)
	for i := range boxed {
		v := bitindex.New(r)
		for j := 0; j < r; j++ {
			if rng.Intn(100) < 28 { // ≈ document-index one-density under defaults
				v.SetBit(j, 1)
			}
		}
		boxed[i] = v
		arena = v.AppendTo(arena)
	}
	cols := make([][]uint64, stride)
	for w := range cols {
		cols[w] = make([]uint64, docs)
	}
	for i, v := range boxed {
		for w, word := range v.Words() {
			cols[w][i] = word
		}
	}
	for _, zeros := range []int{7, 170} {
		q := bitindex.NewOnes(r)
		for _, pos := range rng.Perm(r)[:zeros] {
			q.SetBit(pos, 0)
		}
		sq := q.Sparsify()
		b.Run(fmt.Sprintf("zeros=%d/layout=boxed", zeros), func(b *testing.B) {
			b.ReportAllocs()
			n := 0
			for i := 0; i < b.N; i++ {
				for _, v := range boxed {
					if v.Matches(q) {
						n++
					}
				}
			}
			kernelSink += n
		})
		b.Run(fmt.Sprintf("zeros=%d/layout=arena", zeros), func(b *testing.B) {
			b.ReportAllocs()
			qw := q.Words()
			n := 0
			for i := 0; i < b.N; i++ {
				for base := 0; base < len(arena); base += stride {
					ok := true
					for wi, w := range arena[base : base+stride] {
						if w&^qw[wi] != 0 {
							ok = false
							break
						}
					}
					if ok {
						n++
					}
				}
			}
			kernelSink += n
		})
		b.Run(fmt.Sprintf("zeros=%d/layout=arena+skip", zeros), func(b *testing.B) {
			b.ReportAllocs()
			var rows []int32
			for i := 0; i < b.N; i++ {
				rows = sq.AppendMatchingRows(arena, stride, rows[:0])
			}
			kernelSink += len(rows)
		})
		b.Run(fmt.Sprintf("zeros=%d/layout=cols+blocked", zeros), func(b *testing.B) {
			b.ReportAllocs()
			var bs bitindex.BlockScratch
			var rows []int32
			for i := 0; i < b.N; i++ {
				rows = sq.AppendMatchingRowsColumns(cols, docs, &bs, rows[:0])
			}
			kernelSink += len(rows)
		})
	}
}

// ---------------------------------------------------------------------------
// Query-result cache (EXPERIMENTS.md "Query-result cache")
// ---------------------------------------------------------------------------

// BenchmarkSearchCached measures the cloud service's wire-level search path
// over 10k documents with the query-result cache in its three regimes: the
// pure hit path (a repeated query answered without touching the arenas),
// the pure miss path (an LRU too small for the query working set, so every
// lookup falls through to a full scan plus fingerprint/insert overhead),
// and an invalidation-heavy mix (a mutation bumps the epoch before every
// query, the cache's worst case). The uncached sub-benchmark is the same
// path with no cache configured — the baseline the warm-hit speedup is
// quoted against. Owners are deterministic, so the match sets — and the
// work a miss does — are identical across runs.
func BenchmarkSearchCached(b *testing.B) {
	const size = 10000
	p := core.DefaultParams()
	p.Bins = 64
	p.Levels = rank.DefaultLevels(3, 15)
	owner, err := core.NewOwnerDeterministic(p, 1, 0xbe7c4)
	if err != nil {
		b.Fatal(err)
	}
	server, err := core.NewServerSharded(p, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: size, KeywordsPerDoc: 20, Dictionary: corpus.Dictionary(4000),
		MaxTermFreq: 15, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	indices, err := owner.BuildIndexes(docs, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i, d := range docs {
		if err := server.Upload(indices[i], &core.EncryptedDocument{ID: d.ID, Ciphertext: []byte{0}, EncKey: []byte{0}}); err != nil {
			b.Fatal(err)
		}
	}
	reqFor := func(i int) *protocol.SearchRequest {
		q := queryFor(b, owner, docs[(i*13)%size].Keywords()[:2])
		raw, err := q.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		return &protocol.SearchRequest{Query: raw, TopK: 10}
	}
	reqs := make([]*protocol.SearchRequest, 512)
	for i := range reqs {
		reqs[i] = reqFor(i)
	}
	svc := &service.CloudService{Server: server}
	run := func(req func(i int) *protocol.SearchRequest) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.SearchWire(req(i)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	svc.Cache = nil
	b.Run("uncached", run(func(int) *protocol.SearchRequest { return reqs[0] }))

	svc.Cache = service.NewResultCache(64 << 20)
	if _, err := svc.SearchWire(reqs[0]); err != nil { // prime
		b.Fatal(err)
	}
	b.Run("hit", run(func(int) *protocol.SearchRequest { return reqs[0] }))

	// A budget far under the 512-query working set: every entry is evicted
	// before its query comes around again, so every lookup misses.
	svc.Cache = service.NewResultCache(64 << 10)
	b.Run("miss", run(func(i int) *protocol.SearchRequest { return reqs[i%len(reqs)] }))

	// Invalidation-heavy mix: an in-place re-upload bumps the epoch before
	// every query, so each search pays mutation + scan + re-insert.
	svc.Cache = service.NewResultCache(64 << 20)
	b.Run("invalidate-mix", run(func(i int) *protocol.SearchRequest {
		j := i % 8
		if err := server.Upload(indices[j], &core.EncryptedDocument{ID: docs[j].ID, Ciphertext: []byte{0}, EncKey: []byte{0}}); err != nil {
			b.Fatal(err)
		}
		return reqs[j]
	}))
}

// BenchmarkShardedSearchTop compares ranked top-τ search across store
// layouts: 1 shard (the seed's monolithic scan) versus one shard per core.
func BenchmarkShardedSearchTop(b *testing.B) {
	for _, size := range []int{1000, 10000} {
		for _, layout := range []struct {
			name            string
			shards, workers int
		}{
			{"shards=1", 1, 1},
			{"shards=percore", 0, 0},
		} {
			b.Run(fmt.Sprintf("docs=%d/%s", size, layout.name), func(b *testing.B) {
				server, q, _ := benchServer(b, layout.shards, layout.workers, size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := server.SearchTop(q, 10); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSearchBatch compares a 16-query batch evaluated one Search at a
// time against a single SearchBatch pass over the same store.
func BenchmarkSearchBatch(b *testing.B) {
	for _, size := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("docs=%d/sequential", size), func(b *testing.B) {
			server, _, batch := benchServer(b, 0, 0, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range batch {
					if _, err := server.SearchTop(q, 10); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("docs=%d/batch", size), func(b *testing.B) {
			server, _, batch := benchServer(b, 0, 0, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := server.SearchBatch(batch, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Partitioned cluster — scatter-gather search (EXPERIMENTS.md "Cluster")
// ---------------------------------------------------------------------------

// BenchmarkClusterSearch measures a fat client's full scatter-gather search
// over loopback TCP — fan-out to every partition, per-partition scan, global
// merge — at 1, 2 and 4 partitions holding the same 2000-document corpus.
func BenchmarkClusterSearch(b *testing.B) {
	const size = 2000
	p := core.DefaultParams()
	p.Bins = 64
	p.Levels = rank.DefaultLevels(3, 15)
	owner, err := core.NewOwnerDeterministic(p, 1, 0xbe7c4)
	if err != nil {
		b.Fatal(err)
	}
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: size, KeywordsPerDoc: 20, Dictionary: corpus.Dictionary(4000),
		MaxTermFreq: 15, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	indices, err := owner.BuildIndexes(docs, 0)
	if err != nil {
		b.Fatal(err)
	}
	dialed := 0
	for _, partitions := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("partitions=%d", partitions), func(b *testing.B) {
			clu, err := harness.StartCluster(p, partitions, harness.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer clu.Close()
			m := clu.Config().Map()
			for i, d := range docs {
				enc := &core.EncryptedDocument{ID: d.ID, Ciphertext: []byte{0}, EncKey: []byte{0}}
				if err := clu.Primaries[m.Owner(d.ID)].Svc.Server.Upload(indices[i], enc); err != nil {
					b.Fatal(err)
				}
			}
			ol, oaddr, err := harness.StartOwner(owner)
			if err != nil {
				b.Fatal(err)
			}
			defer ol.Close()
			// The owner outlives the sub-benchmark reruns, so every dial
			// needs a fresh user ID.
			dialed++
			client, err := service.DialCluster(fmt.Sprintf("bench-clu-%d-%d", partitions, dialed), oaddr, clu.Config())
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			words := docs[0].Keywords()[:2]
			if _, err := client.Search(words, 10); err != nil { // warm trapdoors
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Search(words, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
