// Quickstart: index a handful of documents, search them with multiple
// keywords, and retrieve a match through the blinded decryption protocol —
// all in one process. This is the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"mkse"
)

func main() {
	// 1. Create a system: a data owner (key material, indexing) and a cloud
	//    server (storage, oblivious search) sharing the paper's parameters,
	//    with 3 ranking levels at term-frequency thresholds 1, 5 and 10.
	params := mkse.DefaultParams()
	params.Levels = mkse.Levels{1, 5, 10}
	sys, err := mkse.NewSystem(params)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The owner indexes and encrypts documents, then uploads them. The
	//    server sees only ciphertexts, wrapped keys and opaque bit indices.
	docs := map[string]string{
		"board-minutes": "the merger with the cloud provider closes friday; revenue synergy",
		"q3-report":     "cloud revenue grew nine percent; storage revenue fell; cloud cloud cloud cloud cloud",
		"lunch-menu":    "tomato soup and grilled cheese on friday",
	}
	for id, text := range docs {
		if err := sys.AddDocument(id, []byte(text)); err != nil {
			log.Fatalf("indexing %s: %v", id, err)
		}
	}

	// 3. Enroll a user. Enrollment registers the user's signature key with
	//    the owner and delivers the random-keyword trapdoors used for query
	//    randomization.
	alice, err := sys.NewUser("alice")
	if err != nil {
		log.Fatal(err)
	}

	// 4. Multi-keyword ranked search. The trapdoor exchange, the randomized
	//    r-bit query and the rank-ordered response all happen under the
	//    hood; the server never sees the words "cloud" or "revenue".
	matches, err := sys.Search(alice, []string{"cloud", "revenue"}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matches (rank-ordered):")
	for _, m := range matches {
		fmt.Printf("  rank %d  %s\n", m.Rank, m.DocID)
	}

	// 5. Retrieve the best match. The user blinds the wrapped document key;
	//    the owner decrypts it without learning which document it was.
	if len(matches) > 0 {
		pt, err := sys.Retrieve(alice, matches[0].DocID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nbest match %q decrypts to:\n  %s\n", matches[0].DocID, pt)
	}

	// 6. Retract a document. Deletion removes the ciphertext, the wrapped
	//    key and every index level; later searches cannot match it.
	if err := sys.DeleteDocument("lunch-menu"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndeleted lunch-menu; it can no longer be searched or fetched")
}
