// Ranking: the Section 5 study, runnable. Builds the paper's synthetic
// collection (1000 equal-length files; 3 query keywords, each in 200 files;
// 20 files containing all three with term frequencies uniform in [1,15]),
// ranks the all-match documents with the encrypted η = 5 level scheme, and
// compares against the classical relevance score of Equation 4.
package main

import (
	"fmt"
	"log"

	"mkse/internal/experiments"
)

func main() {
	fmt.Println("Section 5 ranking study — level ranking vs Equation 4 relevance score")
	fmt.Println("paper: top-1 agreement ≈40%, top-1 within top-3 = 100%, ≥4 of top-5 ≈80%")
	fmt.Println()

	res, err := experiments.RankingQuality(25, 2012)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Format())

	fmt.Println("Interpretation: the level ranking collapses term frequencies into η")
	fmt.Println("buckets keyed by the LEAST frequent query keyword, so it cannot")
	fmt.Println("reproduce the reference order exactly — but the documents the user")
	fmt.Println("actually wants land in the first few retrieved results, which is what")
	fmt.Println("the top-τ retrieval interface needs.")
}
