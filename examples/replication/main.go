// Replication: a WAL-shipping primary/follower deployment in one program.
// A durably backed primary cloud daemon starts on a loopback port; an owner
// uploads a corpus; two read-only followers bootstrap from the primary's
// log, converge, and a user's client fans its searches across them while
// deletes and fresh uploads keep flowing through the primary.
//
// In production the daemons run as separate processes:
//
//	mkse-server -listen :7002 -data /var/lib/mkse                       # primary
//	mkse-server -listen :7003 -data /var/lib/mkse-r1 -replica-of h:7002 # follower
//	mkse-client -cloud ... search encrypted cloud                       # reads
//
// A follower rejects writes, reports its lag to read balancers, and can be
// promoted by restarting it without -replica-of.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"mkse"
	"mkse/internal/corpus"
	"mkse/internal/durable"
	"mkse/internal/service"
)

func main() {
	params := mkse.DefaultParams()
	params.Levels = mkse.Levels{1, 5, 10}

	// --- Primary: durable engine + cloud daemon ----------------------------
	primaryDir, err := os.MkdirTemp("", "mkse-primary-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(primaryDir)
	primary, err := durable.Open(primaryDir, params, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		log.Fatal(err)
	}
	defer primary.Close()
	primarySvc := &service.CloudService{Server: primary.Server(), Store: primary, WAL: primary}
	primaryAddr := serve(primarySvc.Serve)
	fmt.Printf("primary on %s (data dir %s)\n", primaryAddr, primaryDir)

	// --- Owner: index, encrypt, upload -------------------------------------
	owner, err := mkse.NewOwner(params, 1)
	if err != nil {
		log.Fatal(err)
	}
	texts := map[string]string{
		"contract-acme":   "acme cloud services master contract with encrypted storage addendum",
		"contract-globex": "globex consulting contract renewal with travel budget",
		"incident-42":     "storage outage incident postmortem: encrypted backup restored from cloud",
		"roadmap":         "search ranking roadmap: trapdoor rotation and blinded retrieval hardening",
	}
	var items []service.UploadItem
	for id, text := range texts {
		d := &corpus.Document{ID: id, TermFreqs: corpus.Tokenize(text, 3), Content: []byte(text)}
		si, enc, err := owner.Prepare(d)
		if err != nil {
			log.Fatal(err)
		}
		items = append(items, service.UploadItem{Index: si, Doc: enc})
	}
	if err := mkse.UploadAll(primaryAddr, items); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner uploaded %d encrypted documents\n", len(items))

	ownerSvc := &mkse.OwnerService{Owner: owner}
	ownerAddr := serve(ownerSvc.Serve)

	// --- Two followers: bootstrap and stream the primary's log -------------
	var replicaAddrs []string
	var followers []*durable.Engine
	for i := 1; i <= 2; i++ {
		dir, err := os.MkdirTemp("", fmt.Sprintf("mkse-replica%d-", i))
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		eng, err := durable.Open(dir, params, durable.Options{Fsync: durable.FsyncNever})
		if err != nil {
			log.Fatal(err)
		}
		defer eng.Close()
		rep := service.StartReplica(eng, primaryAddr, nil)
		defer rep.Close()
		svc := &service.CloudService{Server: eng.Server(), WAL: eng, Replica: rep}
		addr := serve(svc.Serve)
		replicaAddrs = append(replicaAddrs, addr)
		followers = append(followers, eng)

		for eng.Position() < primary.Position() {
			time.Sleep(time.Millisecond)
		}
		st := rep.Status()
		fmt.Printf("follower %d on %s caught up (position %d, lag %d)\n",
			i, addr, st.Position, st.PrimaryPosition-st.Position)
	}

	// --- A user searches; reads fan across the followers -------------------
	client, err := mkse.Dial("alice", ownerAddr, primaryAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.AddReadReplicas(replicaAddrs...)

	for i := 0; i < 4; i++ {
		matches, err := client.Search([]string{"encrypted", "cloud"}, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("search %d -> %d match(es)\n", i+1, len(matches))
	}
	fmt.Printf("read distribution: %v\n", client.ReadDistribution())

	// --- Writes still flow through the primary and replicate ---------------
	if err := client.Delete("contract-globex"); err != nil {
		log.Fatal(err)
	}
	for _, eng := range followers {
		for eng.Position() < primary.Position() {
			time.Sleep(time.Millisecond)
		}
	}
	fmt.Printf("deleted contract-globex through the primary; every follower converged at %d documents\n",
		followers[0].Server().NumDocuments())
}

// serve starts a daemon on a loopback listener and returns its address.
func serve(fn func(net.Listener) error) string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := fn(l); err != nil {
			log.Printf("daemon: %v", err)
		}
	}()
	return l.Addr().String()
}
