// Cloudsearch: the full three-party deployment of Figure 1 over real TCP
// sockets, in one program for demonstration. A cloud daemon and an owner
// daemon start on loopback ports; the owner indexes, encrypts and uploads a
// corpus; two independent users enroll, search and retrieve concurrently.
//
// In production the three roles run as separate processes on separate
// machines — see cmd/mkse-owner, cmd/mkse-server and cmd/mkse-client, which
// expose exactly this flow behind flags, plus what a demo omits: crash-safe
// persistence (mkse-server -data, with an -fsync durability policy),
// document removal (mkse-client delete), and WAL-shipping read replicas
// (mkse-server -replica-of; see examples/replication).
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"mkse"
	"mkse/internal/corpus"
	"mkse/internal/service"
)

func main() {
	params := mkse.DefaultParams()
	params.Levels = mkse.Levels{1, 5, 10}

	// --- Cloud daemon -----------------------------------------------------
	cloud, err := mkse.NewCloudServer(params)
	if err != nil {
		log.Fatal(err)
	}
	cloudL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := (&mkse.CloudService{Server: cloud}).Serve(cloudL); err != nil {
			log.Printf("cloud daemon: %v", err)
		}
	}()
	fmt.Printf("cloud daemon on %s\n", cloudL.Addr())

	// --- Owner daemon: offline stage then serve ----------------------------
	owner, err := mkse.NewOwner(params, 1)
	if err != nil {
		log.Fatal(err)
	}
	corpusDocs := []*corpus.Document{
		doc("contract-acme", "acme cloud services master contract with encrypted storage addendum"),
		doc("contract-globex", "globex consulting contract renewal with travel budget"),
		doc("incident-42", "storage outage incident postmortem: encrypted backup restored from cloud"),
		doc("roadmap", "search ranking roadmap: trapdoor rotation and blinded retrieval hardening"),
	}
	var items []service.UploadItem
	for _, d := range corpusDocs {
		si, enc, err := owner.Prepare(d)
		if err != nil {
			log.Fatal(err)
		}
		items = append(items, service.UploadItem{Index: si, Doc: enc})
	}
	if err := mkse.UploadAll(cloudL.Addr().String(), items); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner uploaded %d encrypted documents\n", len(items))

	ownerL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := (&mkse.OwnerService{Owner: owner}).Serve(ownerL); err != nil {
			log.Printf("owner daemon: %v", err)
		}
	}()
	fmt.Printf("owner daemon on %s\n\n", ownerL.Addr())

	// --- Two users, concurrently -------------------------------------------
	var wg sync.WaitGroup
	queries := map[string][]string{
		"alice": {"encrypted", "cloud"},
		"bob":   {"contract", "renewal"},
	}
	for user, words := range queries {
		wg.Add(1)
		go func(user string, words []string) {
			defer wg.Done()
			client, err := mkse.Dial(user, ownerL.Addr().String(), cloudL.Addr().String())
			if err != nil {
				log.Printf("%s: %v", user, err)
				return
			}
			defer client.Close()
			matches, err := client.Search(words, 5)
			if err != nil {
				log.Printf("%s: search: %v", user, err)
				return
			}
			fmt.Printf("%s searched %v -> %d match(es)\n", user, words, len(matches))
			for _, m := range matches {
				pt, err := client.Retrieve(m.DocID)
				if err != nil {
					log.Printf("%s: retrieve %s: %v", user, m.DocID, err)
					return
				}
				fmt.Printf("%s   rank %d %-18s %q\n", user, m.Rank, m.DocID, truncate(string(pt), 48))
			}
		}(user, words)
	}
	wg.Wait()
}

func doc(id, text string) *corpus.Document {
	return &corpus.Document{ID: id, TermFreqs: corpus.Tokenize(text, 3), Content: []byte(text)}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
