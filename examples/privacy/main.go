// Privacy: the Section 6 query-randomization study and the Section 4.1
// brute-force attack, runnable.
//
// Part 1 regenerates the Figure 2 histograms: Hamming distances between
// randomized query indices built from the same vs different search terms.
// Part 2 demonstrates why the scheme's secret bin keys matter: the same
// dictionary attack that recovers keywords from the keyless Wang et al.
// index finds nothing against an MKS index.
package main

import (
	"fmt"
	"log"

	"mkse/internal/experiments"
)

func main() {
	fmt.Println("== Part 1: query randomization (Section 6, Figure 2) ==")
	fmt.Println()

	a, err := experiments.Fig2a(2012)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a.Format("Figure 2(a) — adversary does not know the number of search terms"))

	b, err := experiments.Fig2b(2012)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(b.Format("Figure 2(b) — adversary knows the query holds 5 terms"))
	fmt.Println("With the term count unknown the two distributions blur together;")
	fmt.Println("once it is known they separate — the paper's conclusion that the")
	fmt.Println("number of genuine keywords \"should be kept secret\" in action.")
	fmt.Println()

	fmt.Println("== Part 2: the brute-force attack (Section 4.1) ==")
	fmt.Println()
	att, err := experiments.BruteForceAttack(25000, 2012)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(att.Format())
}
