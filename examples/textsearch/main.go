// Textsearch: the paper's future-work item, runnable today — "the proposed
// method will be tested on a real dataset in order to compare the
// performance of our ranking method with the ranking methods used in plain
// datasets that do not involve any security or privacy-preserving
// techniques."
//
// This example indexes a small natural-language corpus (original sample
// memos, not synthetic keyword soup), runs encrypted ranked multi-keyword
// searches against it, and prints the plaintext Equation 4 relevance ranking
// alongside for comparison.
package main

import (
	"fmt"
	"log"

	"mkse"
	"mkse/internal/corpus"
	"mkse/internal/rank"
)

// stopwords are high-frequency function words excluded from the index; they
// carry no search value and waste index zeros.
var stopwords = map[string]bool{
	"the": true, "and": true, "for": true, "that": true, "was": true,
	"were": true, "with": true, "from": true, "after": true, "before": true,
	"over": true, "under": true, "into": true, "our": true, "your": true,
	"can": true, "cannot": true, "not": true, "are": true, "is": true,
	"never": true, "every": true, "each": true, "per": true, "when": true,
	"what": true, "must": true, "within": true, "during": true, "two": true,
	"forty": true, "first": true, "half": true, "ten": true, "items": true,
	"note": true, "topics": true, "question": true, "answer": true,
}

// analyze tokenizes, removes stopwords and caps the keyword set at the 35
// most frequent terms, respecting the paper's <40 keywords/document regime.
func analyze(text string) map[string]int {
	tf := mkse.Tokenize(text, 3)
	for w := range tf {
		if stopwords[w] {
			delete(tf, w)
		}
	}
	keep := corpus.TopKeywords(tf, 35)
	out := make(map[string]int, len(keep))
	for _, w := range keep {
		out[w] = tf[w]
	}
	return out
}

// corpus is a set of original sample documents with realistic, overlapping
// vocabulary and varying term frequencies.
var corpusDocs = map[string]string{
	"incident-2031": `Storage cluster incident report. The primary storage array dropped
offline during the nightly backup window. Encrypted backup snapshots were restored from
the secondary cluster within forty minutes. No customer data was lost. Action items:
monitor the storage controllers, rehearse the backup restore runbook quarterly, and
alert the on-call rotation when backup latency exceeds the threshold.`,

	"incident-2032": `Network incident report. A misconfigured firewall rule blocked the
replication traffic between regions for two hours. Backup replication resumed after the
rule was reverted. The encrypted channel itself was never at risk. Action items: peer
review for firewall changes and automated replication alerts.`,

	"design-search": `Design note: ranked keyword search over the encrypted document
archive. Each document receives a searchable index built from hashed keywords; the
cloud provider matches queries without learning the keywords. Ranking uses term
frequency levels so that a search for a keyword returns the documents where that
keyword dominates. Search latency must stay under a millisecond per thousand documents.`,

	"design-backup": `Design note: backup pipeline. Documents are encrypted client side
before upload; the backup service stores ciphertext only. Restore paths are tested
weekly. The search index is rebuilt after every key rotation so stale trapdoors expire.`,

	"minutes-april": `Engineering meeting minutes, April. Topics: the storage incident
postmortem, hiring for the search team, and the quarterly security review. The security
review flagged the firewall change process. The search team demo showed ranked results
over the encrypted archive; the ranking placed the most relevant documents first in
every trial query.`,

	"minutes-may": `Engineering meeting minutes, May. Topics: backup restore rehearsal
results, search latency benchmarks, and the key rotation schedule. Restore rehearsal
met the forty minute objective. Search benchmarks: under half a millisecond per query
at ten thousand documents. Key rotation approved for the first Monday of each quarter.`,

	"faq-customers": `Customer FAQ. Question: can your staff read my documents? Answer:
no — documents are encrypted before they reach our storage, and search works on
encrypted indexes. Question: what happens if I lose my passphrase? Answer: we cannot
recover your documents; the decryption keys never leave your organization.`,
}

func main() {
	params := mkse.DefaultParams()
	params.Levels = mkse.Levels{1, 3, 6} // η=3 levels tuned for prose term frequencies
	sys, err := mkse.NewSystem(params)
	if err != nil {
		log.Fatal(err)
	}

	// Index with the built-in analyzer plus stopword removal and a keyword
	// cap. The cap matters: the paper's false-accept analysis (§6.1) assumes
	// fewer than 40 keywords per document — indexing every word of prose
	// blows past that and floods the results with false accepts. analyze()
	// keeps the ≤35 most frequent content words.
	termFreqs := make(map[string]map[string]int, len(corpusDocs))
	for id, text := range corpusDocs {
		tf := analyze(text)
		termFreqs[id] = tf
		if err := sys.AddDocumentWithKeywords(id, tf, []byte(text)); err != nil {
			log.Fatalf("indexing %s: %v", id, err)
		}
	}

	user, err := sys.NewUser("analyst")
	if err != nil {
		log.Fatal(err)
	}

	// Plaintext reference: Equation 4 over the same analyzed corpus.
	var allTF []map[string]int
	ids := make([]string, 0, len(termFreqs))
	for id, tf := range termFreqs {
		allTF = append(allTF, tf)
		ids = append(ids, id)
	}
	stats := rank.NewCorpusStats(allTF)

	queries := [][]string{
		{"backup", "restore"},
		{"encrypted", "search"},
		{"incident", "firewall"},
		{"ranking", "documents"},
	}
	for _, q := range queries {
		fmt.Printf("query %v\n", q)

		matches, err := sys.Search(user, q, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  encrypted ranked search:")
		if len(matches) == 0 {
			fmt.Println("    (no matches)")
		}
		for _, m := range matches {
			fmt.Printf("    rank %d  %s\n", m.Rank, m.DocID)
		}

		var ranked []rank.Ranked
		for i, id := range ids {
			if s := stats.Score(q, allTF[i], float64(len(corpusDocs[id]))); s > 0 {
				ranked = append(ranked, rank.Ranked{DocID: id, Score: s})
			}
		}
		rank.SortRanked(ranked)
		fmt.Println("  plaintext Eq. 4 reference:")
		for i, r := range ranked {
			if i == 5 {
				break
			}
			fmt.Printf("    %.4f  %s\n", r.Score, r.DocID)
		}
		fmt.Println()
	}

	fmt.Println("Note: Eq. 4 scores every document containing ANY query keyword, while")
	fmt.Println("the encrypted conjunctive search returns only documents matching ALL")
	fmt.Println("keywords — the paper's design choice: retrieve precisely, rank coarsely.")
}
