// Cluster: a partitioned scatter-gather deployment in one program. Two
// cloud daemons start on loopback ports, each owning one partition of the
// static doc-ID hash map; an owner uploads a corpus routed by the map; a
// fat client fans its searches across both partitions and merges the
// per-partition top-τ lists into the exact order a single server holding
// everything would return. Finally one partition is severed mid-flight to
// show the typed partial-result error naming the dead partition.
//
// In production the daemons run as separate processes:
//
//	mkse-server -listen :7002 -partition 0/2   # partition 0
//	mkse-server -listen :7003 -partition 1/2   # partition 1
//	mkse-client -cluster host:7002,host:7003 search encrypted cloud
package main

import (
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"mkse"
	"mkse/internal/corpus"
)

func main() {
	params := mkse.DefaultParams()
	params.Levels = mkse.Levels{1, 5, 10}

	// --- Two partition primaries, each owning half the hash space ----------
	const partitions = 2
	var cfg mkse.ClusterConfig
	var svcs []*mkse.CloudService
	var listeners []net.Listener
	for i := 0; i < partitions; i++ {
		server, err := mkse.NewCloudServer(params)
		if err != nil {
			log.Fatal(err)
		}
		svc := &mkse.CloudService{Server: server, Partition: i, Partitions: partitions}
		l, addr := serve(svc.Serve)
		fmt.Printf("partition %d/%d on %s\n", i, partitions, addr)
		cfg.Partitions = append(cfg.Partitions, mkse.ClusterPartition{Primary: addr})
		svcs = append(svcs, svc)
		listeners = append(listeners, l)
	}

	// --- Owner: index, encrypt, upload routed by the partition map ---------
	owner, err := mkse.NewOwner(params, 1)
	if err != nil {
		log.Fatal(err)
	}
	texts := map[string]string{
		"contract-acme":   "acme cloud services master contract with encrypted storage addendum",
		"contract-globex": "globex consulting contract renewal with travel budget",
		"incident-42":     "storage outage incident postmortem: encrypted backup restored from cloud",
		"roadmap":         "search ranking roadmap: trapdoor rotation and blinded retrieval hardening",
		"handbook":        "employee handbook: encrypted laptop policy and cloud account hygiene",
		"audit-2026":      "storage audit twenty twenty six: encrypted volumes and cloud retention",
	}
	var items []mkse.UploadItem
	for id, text := range texts {
		d := &corpus.Document{ID: id, TermFreqs: corpus.Tokenize(text, 3), Content: []byte(text)}
		si, enc, err := owner.Prepare(d)
		if err != nil {
			log.Fatal(err)
		}
		items = append(items, mkse.UploadItem{Index: si, Doc: enc})
	}
	if err := mkse.UploadAllCluster(cfg, items); err != nil {
		log.Fatal(err)
	}
	m := cfg.Map()
	perPart := make([]int, partitions)
	for _, it := range items {
		perPart[m.Owner(it.Index.DocID)]++
	}
	fmt.Printf("owner uploaded %d encrypted documents, routed %v across partitions\n", len(items), perPart)

	ownerSvc := &mkse.OwnerService{Owner: owner}
	_, ownerAddr := serve(ownerSvc.Serve)

	// --- A fat client scatter-gathers across both partitions ---------------
	client, err := mkse.DialCluster("alice", ownerAddr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.PartitionTimeout = 500 * time.Millisecond

	matches, err := client.Search([]string{"encrypted", "cloud"}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scatter-gather search -> %d match(es), best %q (rank %d)\n",
		len(matches), matches[0].DocID, matches[0].Rank)

	// The merged order must be exactly what one server holding everything
	// would return (the test suite asserts byte-level agreement); show the
	// operational invariant here: globally rank-sorted, ties by document ID.
	sorted := true
	for i := 1; i < len(matches); i++ {
		if matches[i].Rank > matches[i-1].Rank ||
			(matches[i].Rank == matches[i-1].Rank && matches[i].DocID < matches[i-1].DocID) {
			sorted = false
		}
	}
	fmt.Printf("merge agreement: globally ordered=%v\n", sorted)

	// --- Routed mutation and aggregated stats ------------------------------
	if err := client.Delete("contract-globex"); err != nil {
		log.Fatal(err)
	}
	st, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted contract-globex via its owning partition; cluster stats: %d documents across %d partitions\n",
		st.NumDocuments, st.Partitions)

	// --- Sever one partition: the failure is typed and named ---------------
	listeners[1].Close() // no new connections...
	svcs[1].Drain(0)     // ...and the established ones are cut
	matches, err = client.Search([]string{"encrypted", "cloud"}, 5)
	var partial *mkse.PartialError
	if !errors.As(err, &partial) {
		log.Fatalf("expected a partial-result error after severing partition 1, got %v", err)
	}
	fmt.Printf("partition severed: %d match(es) from survivors; error names partition %d (%s)\n",
		len(matches), partial.Failures[0].Partition, partial.Failures[0].Addr)
}

// serve starts a daemon on a loopback listener and returns it with its
// address.
func serve(fn func(net.Listener) error) (net.Listener, string) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = fn(l) }()
	return l, l.Addr().String()
}
