// Failover: an observer-driven automatic failover in one program. A durably
// backed primary and two followers start on loopback ports; an observer
// health-probes the primary; the primary is killed mid-run; the observer
// detects the outage, elects the lowest-lag follower, promotes it under a
// raised fencing term, and repoints the survivor — while a client keeps
// writing, following the topology change on its own.
//
// In production the daemons run as separate processes:
//
//	mkse-server   -listen :7002 -data /var/lib/mkse                         # primary
//	mkse-server   -listen :7003 -data /var/lib/mkse-r1 -replica-of h:7002   # follower
//	mkse-server   -listen :7004 -data /var/lib/mkse-r2 -replica-of h:7002   # follower
//	mkse-observer -primary h:7002 -replicas h:7003,h:7004                   # failover
package main

import (
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"time"

	"mkse"
	"mkse/internal/corpus"
	"mkse/internal/durable"
	"mkse/internal/observer"
	"mkse/internal/service"
)

func main() {
	params := mkse.DefaultParams()
	params.Levels = mkse.Levels{1, 5, 10}

	// --- Primary: durable engine + cloud daemon ----------------------------
	primaryDir, err := os.MkdirTemp("", "mkse-primary-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(primaryDir)
	primary, err := durable.Open(primaryDir, params, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		log.Fatal(err)
	}
	primarySvc := &service.CloudService{Server: primary.Server(), Store: primary, WAL: primary, Eng: primary}
	primaryL, primaryAddr := listen()
	go func() { _ = primarySvc.Serve(primaryL) }()
	fmt.Printf("primary on %s (term %d)\n", primaryAddr, primary.Term())

	// --- Owner: index, encrypt, upload -------------------------------------
	owner, err := mkse.NewOwner(params, 1)
	if err != nil {
		log.Fatal(err)
	}
	texts := map[string]string{
		"contract-acme":   "acme cloud services master contract with encrypted storage addendum",
		"contract-globex": "globex consulting contract renewal with travel budget",
		"incident-42":     "storage outage incident postmortem: encrypted backup restored from cloud",
		"roadmap":         "search ranking roadmap: trapdoor rotation and blinded retrieval hardening",
	}
	var items []service.UploadItem
	for id, text := range texts {
		d := &corpus.Document{ID: id, TermFreqs: corpus.Tokenize(text, 3), Content: []byte(text)}
		si, enc, err := owner.Prepare(d)
		if err != nil {
			log.Fatal(err)
		}
		items = append(items, service.UploadItem{Index: si, Doc: enc})
	}
	if err := mkse.UploadAll(primaryAddr, items); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner uploaded %d encrypted documents\n", len(items))

	ownerSvc := &mkse.OwnerService{Owner: owner}
	ownerL, ownerAddr := listen()
	go func() { _ = ownerSvc.Serve(ownerL) }()

	// --- Two followers, wired exactly like `mkse-server -replica-of` -------
	var followerAddrs []string
	var followers []*durable.Engine
	var followerSvcs []*service.CloudService
	for i := 1; i <= 2; i++ {
		dir, err := os.MkdirTemp("", fmt.Sprintf("mkse-replica%d-", i))
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		eng, err := durable.Open(dir, params, durable.Options{Fsync: durable.FsyncNever})
		if err != nil {
			log.Fatal(err)
		}
		defer eng.Crash()
		svc := &service.CloudService{
			Server: eng.Server(), Store: eng, WAL: eng, Eng: eng,
			Replica: service.StartReplica(eng, primaryAddr, nil),
		}
		l, addr := listen()
		go func() { _ = svc.Serve(l) }()
		followerAddrs = append(followerAddrs, addr)
		followers = append(followers, eng)
		followerSvcs = append(followerSvcs, svc)
		for eng.Position() < primary.Position() {
			time.Sleep(time.Millisecond)
		}
		fmt.Printf("follower %d on %s caught up at position %d\n", i, addr, eng.Position())
	}

	// --- The observer watches the primary ----------------------------------
	obs := observer.New(observer.Config{
		Primary:      primaryAddr,
		Followers:    followerAddrs,
		ProbeEvery:   50 * time.Millisecond,
		ProbeTimeout: 250 * time.Millisecond,
		FailAfter:    3,
		Logger:       slog.New(slog.NewTextHandler(os.Stdout, nil)),
		OnFailover: func(oldPrimary, newPrimary string, term uint64) {
			fmt.Printf(">>> failover: %s -> %s at term %d\n", oldPrimary, newPrimary, term)
		},
	})
	obs.Start()
	defer obs.Close()

	// --- A client writes through the primary -------------------------------
	client, err := mkse.Dial("alice", ownerAddr, primaryAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.AddReadReplicas(followerAddrs...)

	// --- Kill the primary like a crashed process ---------------------------
	fmt.Println("killing the primary…")
	primaryL.Close()
	primarySvc.Drain(0)
	primary.Crash()

	deadline := time.Now().Add(30 * time.Second)
	for obs.Status().Failovers == 0 {
		if time.Now().After(deadline) {
			log.Fatal("observer never failed over")
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := obs.Status()
	fmt.Printf("new primary: %s (observer term %d)\n", st.Primary, st.Term)

	// --- The client's next write follows the topology on its own -----------
	if err := client.Delete("contract-globex"); err != nil {
		log.Fatal(err)
	}
	matches, err := client.Search([]string{"encrypted", "cloud"}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after failover: delete + search succeeded (%d matches) with zero manual steps\n", len(matches))

	// The survivor is repointed at the new primary and converges with it.
	var newPrimary, survivor *durable.Engine
	for i, addr := range followerAddrs {
		if addr == st.Primary {
			newPrimary = followers[i]
		} else {
			survivor = followers[i]
		}
	}
	for survivor.Position() < newPrimary.Position() {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("survivor converged: both at position %d, %d documents, term %d\n",
		survivor.Position(), survivor.Server().NumDocuments(), newPrimary.Term())

	// Close whatever replica streams are live now (roles moved at runtime).
	for _, svc := range followerSvcs {
		if r := svc.CurrentReplica(); r != nil {
			r.Close()
		}
	}
}

// listen opens a loopback listener for one daemon.
func listen() (net.Listener, string) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return l, l.Addr().String()
}
