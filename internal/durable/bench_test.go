package durable

import (
	"math/rand"
	"testing"

	"mkse/internal/core"
)

// benchOps pre-builds n upload ops so index generation stays out of the
// measured region.
func benchOps(b *testing.B, p core.Params, n int) []op {
	b.Helper()
	rng := rand.New(rand.NewSource(2012))
	ops := make([]op, n)
	for i := range ops {
		ops[i] = uploadOp(rng, p, "doc-"+string(rune('a'+i%26))+string(rune('0'+i%10))+"-"+itoa(i), "payload payload payload")
	}
	return ops
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

// BenchmarkWALAppend measures the logged-upload path (validate + frame +
// append + apply) without fsync.
func BenchmarkWALAppend(b *testing.B) {
	p := testParams()
	ops := benchOps(b, p, 512)
	e, err := Open(b.TempDir(), p, Options{Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Crash()
	var bytes0 int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := ops[i%len(ops)]
		if err := e.Upload(o.si, o.doc); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := e.Stats()
	b.SetBytes((st.WALBytes - bytes0) / int64(b.N))
}

// BenchmarkWALReplay measures crash recovery: reopening a directory whose
// log holds 1000 uploads and replaying them into a fresh server. This is
// the `-exp recovery` hot path; CI runs it at -benchtime=1x so it cannot
// rot.
func BenchmarkWALReplay(b *testing.B) {
	p := testParams()
	ops := benchOps(b, p, 1000)
	dir := b.TempDir()
	e, err := Open(dir, p, Options{Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	applyOps(b, e, ops)
	if err := e.Sync(); err != nil {
		b.Fatal(err)
	}
	e.Crash()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := Open(dir, p, Options{})
		if err != nil {
			b.Fatal(err)
		}
		st := re.Stats()
		if st.ReplayedOps != len(ops) {
			b.Fatalf("replayed %d, want %d", st.ReplayedOps, len(ops))
		}
		b.SetBytes(st.ReplayedBytes)
		re.Crash()
	}
	b.ReportMetric(float64(len(ops))*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
}
