package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// The write-ahead log is a sequence of self-delimiting records:
//
//	| u32 payload length (LE) | u32 CRC-32C of payload (LE) | payload |
//
// The CRC makes a torn write (a crash mid-append) detectable: recovery
// replays records until the first one whose frame is short or whose checksum
// fails, and treats that point as the end of the log. Each payload is one
// mutation, encoded by appendOp/decodeOp.

// recordHeaderSize is the fixed frame prefix: length + CRC.
const recordHeaderSize = 8

// MaxRecordSize bounds a single WAL record (64 MiB, matching the protocol
// frame limit): large enough for any upload a peer can deliver, small enough
// that a corrupted length field cannot demand an absurd allocation.
const MaxRecordSize = 64 << 20

// MaxOpSize bounds the mutations the engine accepts for logging, one
// mebibyte under MaxRecordSize. The headroom guarantees every logged
// record — even one carrying a maximal document — fits inside a single
// replication frame (protocol.MaxFrameSize, also 64 MiB) with envelope
// overhead to spare, so a follower can never be wedged behind a record too
// large to ship.
const MaxOpSize = MaxRecordSize - 1<<20

// castagnoli is the CRC-32C polynomial table (the checksum used by iSCSI,
// ext4 and most storage engines; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptRecord reports a WAL record that cannot be decoded: a truncated
// frame, an oversized length, or a checksum mismatch. During recovery it
// marks the end of the usable log.
var ErrCorruptRecord = errors.New("durable: corrupt WAL record")

// AppendRecord appends one framed record carrying payload to dst.
func AppendRecord(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxRecordSize {
		return dst, fmt.Errorf("durable: record of %d bytes exceeds maximum %d", len(payload), MaxRecordSize)
	}
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// DecodeRecord decodes the first record in b, returning its payload (an
// alias into b, not a copy) and the total number of bytes the record
// occupies. Any malformed input — short header, length beyond MaxRecordSize,
// payload extending past b, CRC mismatch — returns ErrCorruptRecord; no
// input can cause a panic or an allocation proportional to a corrupt length
// field.
func DecodeRecord(b []byte) (payload []byte, n int, err error) {
	if len(b) < recordHeaderSize {
		return nil, 0, fmt.Errorf("%w: %d-byte frame header", ErrCorruptRecord, len(b))
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if length > MaxRecordSize {
		return nil, 0, fmt.Errorf("%w: implausible length %d", ErrCorruptRecord, length)
	}
	if uint64(len(b)-recordHeaderSize) < uint64(length) {
		return nil, 0, fmt.Errorf("%w: truncated payload", ErrCorruptRecord)
	}
	payload = b[recordHeaderSize : recordHeaderSize+int(length)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorruptRecord)
	}
	return payload, recordHeaderSize + int(length), nil
}

// Operation kinds carried in record payloads.
const (
	opUpload byte = 1
	opDelete byte = 2
	// opTerm is a control record: the engine's promotion (fencing) term was
	// raised to the carried value at this log position. It mutates no
	// documents, but it occupies a position like any record, so it ships to
	// followers through the ordinary replication stream — which is how a
	// follower durably learns the new term after a promotion.
	opTerm byte = 3
)

// walOp is one decoded mutation. Byte fields alias the decode buffer.
type walOp struct {
	kind       byte
	docID      []byte
	levels     [][]byte // marshaled bitindex vectors, one per ranking level
	ciphertext []byte
	encKey     []byte
	term       uint64 // opTerm only
}

// appendUploadOp encodes an upload mutation onto dst.
func appendUploadOp(dst []byte, docID string, levels [][]byte, ciphertext, encKey []byte) []byte {
	dst = append(dst, opUpload)
	dst = appendField(dst, []byte(docID))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(levels)))
	for _, l := range levels {
		dst = appendField(dst, l)
	}
	dst = appendField(dst, ciphertext)
	return appendField(dst, encKey)
}

// appendDeleteOp encodes a delete mutation onto dst.
func appendDeleteOp(dst []byte, docID string) []byte {
	dst = append(dst, opDelete)
	return appendField(dst, []byte(docID))
}

// appendTermOp encodes a term-bump control record onto dst.
func appendTermOp(dst []byte, term uint64) []byte {
	dst = append(dst, opTerm)
	return binary.LittleEndian.AppendUint64(dst, term)
}

func appendField(dst, b []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// decodeOp parses a record payload into a walOp whose byte fields alias b.
func decodeOp(b []byte) (*walOp, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("%w: empty operation", ErrCorruptRecord)
	}
	op := &walOp{kind: b[0]}
	rest := b[1:]
	if op.kind == opTerm {
		if len(rest) != 8 {
			return nil, fmt.Errorf("%w: term record of %d payload bytes", ErrCorruptRecord, len(rest))
		}
		op.term = binary.LittleEndian.Uint64(rest)
		return op, nil
	}
	var err error
	if op.docID, rest, err = cutField(rest); err != nil {
		return nil, err
	}
	switch op.kind {
	case opDelete:
	case opUpload:
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated level count", ErrCorruptRecord)
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		// A level is at least its 4-byte length field; bounding the count by
		// the remaining bytes stops a corrupt header from forcing a huge
		// slice allocation.
		if uint64(n) > uint64(len(rest))/4 {
			return nil, fmt.Errorf("%w: implausible level count %d", ErrCorruptRecord, n)
		}
		op.levels = make([][]byte, n)
		for i := range op.levels {
			if op.levels[i], rest, err = cutField(rest); err != nil {
				return nil, err
			}
		}
		if op.ciphertext, rest, err = cutField(rest); err != nil {
			return nil, err
		}
		if op.encKey, rest, err = cutField(rest); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unknown operation kind %d", ErrCorruptRecord, op.kind)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptRecord, len(rest))
	}
	return op, nil
}

func cutField(b []byte) (field, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("%w: truncated field length", ErrCorruptRecord)
	}
	n := binary.LittleEndian.Uint32(b)
	if uint64(n) > uint64(len(b)-4) {
		return nil, nil, fmt.Errorf("%w: field of %d bytes in %d remaining", ErrCorruptRecord, n, len(b)-4)
	}
	return b[4 : 4+int(n)], b[4+int(n):], nil
}
