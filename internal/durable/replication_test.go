package durable

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

// replicate pulls every record past the follower's position from src and
// applies it to dst, the in-process equivalent of one replication batch
// exchange.
func replicate(t *testing.T, src, dst *Engine) {
	t.Helper()
	for {
		recs, next, err := src.ReadWAL(dst.Position(), 1<<20)
		if err != nil {
			t.Fatalf("ReadWAL from %d: %v", dst.Position(), err)
		}
		if len(recs) == 0 {
			return
		}
		for _, rec := range recs {
			if err := dst.ApplyReplicated(rec); err != nil {
				t.Fatalf("ApplyReplicated: %v", err)
			}
		}
		if dst.Position() != next {
			t.Fatalf("follower at %d after applying a batch ending at %d", dst.Position(), next)
		}
	}
}

func TestReadWALFromEveryPosition(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(71))
	ops := genOps(rng, p, 40)

	dir := t.TempDir()
	eng, err := Open(dir, p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Crash()

	// Rotate mid-stream so reads must cross a segment boundary.
	applyOps(t, eng, ops[:25])
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyOps(t, eng, ops[25:])

	end := eng.Position()
	if end != uint64(len(ops)) {
		t.Fatalf("position %d after %d ops", end, len(ops))
	}
	oldest := eng.OldestRetained()
	for from := oldest; from <= end; from++ {
		recs, next, err := eng.ReadWAL(from, 1<<30)
		if err != nil {
			t.Fatalf("ReadWAL(%d): %v", from, err)
		}
		if want := end - from; uint64(len(recs)) != want {
			t.Fatalf("ReadWAL(%d): %d records, want %d", from, len(recs), want)
		}
		if next != end {
			t.Fatalf("ReadWAL(%d): next %d, want %d", from, next, end)
		}
	}

	// Small maxBytes still returns at least one record and a correct next.
	if oldest < end {
		recs, next, err := eng.ReadWAL(oldest, 1)
		if err != nil || len(recs) == 0 || next != oldest+uint64(len(recs)) {
			t.Fatalf("tiny batch: %d recs, next %d, err %v", len(recs), next, err)
		}
	}
}

func TestReadWALTruncatedHistory(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(72))
	ops := genOps(rng, p, 30)

	eng, err := Open(t.TempDir(), p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Crash()
	applyOps(t, eng, ops[:20])
	if err := eng.Checkpoint(); err != nil { // prunes segments below 20
		t.Fatal(err)
	}
	applyOps(t, eng, ops[20:])

	if got := eng.OldestRetained(); got != 20 {
		t.Fatalf("oldest retained %d, want 20", got)
	}
	if _, _, err := eng.ReadWAL(5, 1<<20); !errors.Is(err, ErrTruncatedHistory) {
		t.Fatalf("ReadWAL below retained history: %v, want ErrTruncatedHistory", err)
	}
}

func TestApplyReplicatedConvergesAndSurvivesCrash(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(73))
	ops := genOps(rng, p, 60)
	qs := queriesFor(rand.New(rand.NewSource(74)), p, ops)

	primary, err := Open(t.TempDir(), p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Crash()

	fdir := t.TempDir()
	follower, err := Open(fdir, p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}

	// First half, replicated, then a crash at an arbitrary point.
	applyOps(t, primary, ops[:30])
	replicate(t, primary, follower)
	if err := follower.Sync(); err != nil {
		t.Fatal(err)
	}
	follower.Crash()

	// The reopened follower resumes from its recovered position.
	follower, err = Open(fdir, p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("reopening crashed follower: %v", err)
	}
	defer follower.Crash()
	if got := follower.Position(); got != 30 {
		t.Fatalf("recovered follower at position %d, want 30", got)
	}

	applyOps(t, primary, ops[30:])
	replicate(t, primary, follower)

	if p1, p2 := primary.Position(), follower.Position(); p1 != p2 {
		t.Fatalf("positions diverge: primary %d, follower %d", p1, p2)
	}
	want := searchFingerprint(t, primary.Server(), qs)
	got := searchFingerprint(t, follower.Server(), qs)
	if want != got {
		t.Error("follower search output differs from primary after replication")
	}
}

func TestResetToCheckpointBootstrapsAndRecovers(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(75))
	ops := genOps(rng, p, 50)
	qs := queriesFor(rand.New(rand.NewSource(76)), p, ops)

	primary, err := Open(t.TempDir(), p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Crash()
	applyOps(t, primary, ops[:40])
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyOps(t, primary, ops[40:])

	data, lsn, err := primary.ReadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 40 {
		t.Fatalf("checkpoint at %d, want 40", lsn)
	}

	// A follower with unrelated stale state bootstraps over it.
	fdir := t.TempDir()
	follower, err := Open(fdir, p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	staleRng := rand.New(rand.NewSource(99))
	applyOps(t, follower, genOps(staleRng, p, 5))
	// Stale history is shorter than the snapshot position, as in a real
	// bootstrap (the primary is always ahead).
	if err := follower.ResetToCheckpoint(data, lsn); err != nil {
		t.Fatalf("ResetToCheckpoint: %v", err)
	}
	if got := follower.Position(); got != lsn {
		t.Fatalf("position %d after bootstrap, want %d", got, lsn)
	}
	replicate(t, primary, follower)

	want := searchFingerprint(t, primary.Server(), qs)
	if got := searchFingerprint(t, follower.Server(), qs); got != want {
		t.Error("bootstrapped follower differs from primary")
	}

	// The bootstrapped directory is self-sufficient: reopen and re-verify.
	if err := follower.Sync(); err != nil {
		t.Fatal(err)
	}
	follower.Crash()
	follower, err = Open(fdir, p, Options{})
	if err != nil {
		t.Fatalf("reopening bootstrapped follower: %v", err)
	}
	defer follower.Crash()
	if got := searchFingerprint(t, follower.Server(), qs); got != want {
		t.Error("reopened bootstrapped follower differs from primary")
	}
}

func TestResetToCheckpointRejectsGarbage(t *testing.T) {
	p := testParams()
	eng, err := Open(t.TempDir(), p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Crash()
	rng := rand.New(rand.NewSource(77))
	ops := genOps(rng, p, 8)
	applyOps(t, eng, ops)
	qs := queriesFor(rand.New(rand.NewSource(78)), p, ops)
	want := searchFingerprint(t, eng.Server(), qs)

	if err := eng.ResetToCheckpoint([]byte("not a checkpoint"), 10); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if got := eng.Position(); got != 8 {
		t.Fatalf("position moved to %d after rejected bootstrap", got)
	}
	if got := searchFingerprint(t, eng.Server(), qs); got != want {
		t.Error("state changed after rejected bootstrap")
	}
}

func TestWaitWAL(t *testing.T) {
	p := testParams()
	eng, err := Open(t.TempDir(), p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Crash()

	if eng.WaitWAL(0, 20*time.Millisecond) {
		t.Fatal("WaitWAL returned true with an empty log")
	}

	done := make(chan bool, 1)
	go func() { done <- eng.WaitWAL(0, 5*time.Second) }()
	rng := rand.New(rand.NewSource(79))
	applyOps(t, eng, genOps(rng, p, 1))
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("WaitWAL returned false after an append")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitWAL did not wake on append")
	}
}
