package durable

import (
	"context"
	"math/rand"
	"testing"

	"mkse/internal/trace"
)

// TestEngineTracing pins the engine's three tracing surfaces: WAL
// append/fsync spans hang under a traced request's context, checkpoints
// record a root + pause trace, and replication applies head-sample
// themselves.
func TestEngineTracing(t *testing.T) {
	p := testParams()
	e, err := Open(t.TempDir(), p, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	buf := trace.NewBuffer(64)
	tr := trace.New("cloud", 1, buf)
	e.SetTracer(tr)

	rng := rand.New(rand.NewSource(7))
	up := uploadOp(rng, p, "doc-0001", "body")

	ctx, root := tr.StartRequest(context.Background(), "server:upload", true)
	if err := e.UploadCtx(ctx, up.si, up.doc); err != nil {
		t.Fatal(err)
	}
	root.End()
	var gotAppend, gotFsync bool
	for _, sp := range root.Spans() {
		switch sp.Name {
		case "wal.append":
			gotAppend = true
		case "wal.fsync":
			gotFsync = true
		}
	}
	if !gotAppend || !gotFsync {
		t.Fatalf("traced upload missing WAL spans (append=%v fsync=%v): %+v",
			gotAppend, gotFsync, root.Spans())
	}

	// An untraced mutation must not record spans anywhere.
	up2 := uploadOp(rng, p, "doc-0002", "body2")
	if err := e.Upload(up2.si, up2.doc); err != nil {
		t.Fatal(err)
	}

	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var ckpt *trace.Trace
	for _, got := range buf.Recent(100) {
		if r := got.Root(); r != nil && r.Name == "durable.checkpoint" {
			g := got
			ckpt = &g
		}
	}
	if ckpt == nil {
		t.Fatal("checkpoint recorded no trace")
	}
	var pause bool
	for _, sp := range ckpt.Spans {
		if sp.Name == "checkpoint.pause" {
			pause = true
		}
	}
	if !pause {
		t.Fatalf("checkpoint trace missing pause span: %+v", ckpt.Spans)
	}
}

func TestApplyReplicatedTraceSampling(t *testing.T) {
	p := testParams()
	primary, err := Open(t.TempDir(), p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	follower, err := Open(t.TempDir(), p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	buf := trace.NewBuffer(64)
	follower.SetTracer(trace.New("cloud-follower", 1, buf)) // sample every apply

	rng := rand.New(rand.NewSource(9))
	applyOps(t, primary, genOps(rng, p, 5))
	records, _, err := primary.ReadWAL(0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range records {
		if err := follower.ApplyReplicated(rec); err != nil {
			t.Fatal(err)
		}
	}
	traces := buf.Recent(100)
	if len(traces) != len(records) {
		t.Fatalf("sampled %d apply traces for %d records", len(traces), len(records))
	}
	if r := traces[0].Root(); r == nil || r.Name != "replication.apply" {
		t.Fatalf("apply trace mis-rooted: %+v", traces[0])
	}
}
