package durable

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"mkse/internal/core"
	"mkse/internal/store"
	"mkse/internal/trace"
)

// This file is the engine's replication surface: everything a WAL-shipping
// primary needs to serve its log to followers (Position, OldestRetained,
// ReadWAL, WaitWAL, ReadCheckpoint) and everything a follower needs to
// replay it durably (ApplyReplicated, ResetToCheckpoint). The wire protocol
// and the streaming loops live in internal/service; this layer only moves
// records and snapshots in and out of the directory.

// ErrTruncatedHistory reports a ReadWAL position older than the oldest log
// record the engine still retains — checkpointing has pruned the segments
// that held it. A follower hitting this must bootstrap from a checkpoint
// (ReadCheckpoint) instead of replaying records.
var ErrTruncatedHistory = errors.New("durable: requested WAL position has been pruned")

// ErrNoCheckpoint reports that the directory holds no readable checkpoint.
var ErrNoCheckpoint = errors.New("durable: no checkpoint on disk")

// Position returns the engine's log sequence number: the number of
// mutations it has logged (and applied) over the directory's lifetime. It
// is the position a follower resumes streaming from after a restart.
func (e *Engine) Position() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lsn
}

// OldestRetained returns the position of the oldest log record still on
// disk. Positions below it can only be reached through a checkpoint.
func (e *Engine) OldestRetained() uint64 {
	_, segs, err := scanDir(e.dir)
	if err == nil && len(segs) > 0 {
		return segs[0]
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.segStart
}

// ReadWAL returns consecutive logged record payloads starting at position
// from: result[i] is the mutation at from+i, and next is the position after
// the last returned record. It reads until roughly maxBytes of payload have
// been collected (always at least one record when any is available) and
// returns an empty batch with next == from when the log has nothing past
// from yet. A position below OldestRetained returns ErrTruncatedHistory.
// The returned slices alias freshly read file buffers and are valid
// indefinitely, but retaining them pins those buffers.
func (e *Engine) ReadWAL(from uint64, maxBytes int) (records [][]byte, next uint64, err error) {
	e.mu.Lock()
	end := e.lsn
	liveStart, liveSize := e.segStart, e.segSize
	e.mu.Unlock()
	if from >= end {
		return nil, from, nil
	}

	_, segs, err := scanDir(e.dir)
	if err != nil {
		return nil, from, err
	}
	// The starting segment is the one with the largest start position <= from.
	start := -1
	for i, s := range segs {
		if s <= from {
			start = i
		} else {
			break
		}
	}
	if start < 0 {
		return nil, from, fmt.Errorf("%w: need %d, oldest retained segment starts at %d", ErrTruncatedHistory, from, OldestOf(segs))
	}

	var out [][]byte
	outBytes := 0
	pos := segs[start]
	for i := start; i < len(segs) && pos < end; i++ {
		data, rerr := os.ReadFile(filepath.Join(e.dir, segName(segs[i])))
		if rerr != nil {
			if os.IsNotExist(rerr) {
				// Cleanup pruned it between the scan and the read; the caller
				// must fall back to a checkpoint.
				return nil, from, fmt.Errorf("%w: segment %d pruned during read", ErrTruncatedHistory, segs[i])
			}
			return nil, from, fmt.Errorf("durable: reading WAL for replication: %w", rerr)
		}
		// The live segment may hold a partial frame past the committed size
		// captured above; never read beyond it.
		if segs[i] == liveStart && int64(len(data)) > liveSize {
			data = data[:liveSize]
		}
		off := 0
		for off < len(data) && pos < end {
			payload, n, derr := DecodeRecord(data[off:])
			if derr != nil {
				return nil, from, fmt.Errorf("durable: %s: record at offset %d while streaming: %w", segName(segs[i]), off, derr)
			}
			if pos >= from {
				// Stop before the budget is exceeded (never mid-batch past
				// it), so a caller's batch bound is hard; an oversized first
				// record still ships alone.
				if len(out) > 0 && outBytes+len(payload) > maxBytes {
					return out, from + uint64(len(out)), nil
				}
				out = append(out, payload)
				outBytes += len(payload)
			}
			off += n
			pos++
		}
	}
	return out, from + uint64(len(out)), nil
}

// OldestOf returns the first (oldest) segment start of a sorted list, or 0.
func OldestOf(segs []uint64) uint64 {
	if len(segs) == 0 {
		return 0
	}
	return segs[0]
}

// WaitWAL blocks until the engine's position exceeds from, the timeout
// elapses, or the engine closes. It returns true only when new records are
// available — the poll/park primitive replication streams idle on between
// batches.
func (e *Engine) WaitWAL(from uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		e.mu.Lock()
		if e.lsn > from {
			e.mu.Unlock()
			return true
		}
		if e.closing {
			e.mu.Unlock()
			// Shutdown: no new records will ever arrive. Sleep the timeout
			// out so callers polling in a loop (replication streams waiting
			// for their connection to die) stay paced instead of spinning.
			if remain := time.Until(deadline); remain > 0 {
				time.Sleep(remain)
			}
			return false
		}
		ch := e.notify
		e.mu.Unlock()

		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-e.done:
			t.Stop()
			return false
		case <-t.C:
			return false
		}
	}
}

// ReadCheckpoint returns the raw bytes of the newest readable checkpoint
// file and the position it covers, for shipping to a bootstrapping
// follower. ErrNoCheckpoint means the directory has none (the whole history
// is still in the log).
func (e *Engine) ReadCheckpoint() ([]byte, uint64, error) {
	ckpts, _, err := scanDir(e.dir)
	if err != nil {
		return nil, 0, err
	}
	for i := len(ckpts) - 1; i >= 0; i-- {
		data, rerr := os.ReadFile(filepath.Join(e.dir, ckptName(ckpts[i])))
		if rerr == nil {
			return data, ckpts[i], nil
		}
	}
	return nil, 0, ErrNoCheckpoint
}

// ApplyReplicated logs and applies one record payload shipped from a
// primary, advancing the follower's position by one. The payload is decoded
// and validated before it touches the log, so only mutations that cannot
// fail to apply are recorded — the same invariant Upload and Delete keep —
// which makes the follower's own directory crash-safe and promotable.
// Records must be applied in log order; the caller aligns the stream with
// Position.
func (e *Engine) ApplyReplicated(payload []byte) error {
	// Replication has no originating request to adopt a trace from, so the
	// apply stream head-samples itself: 1 in N applies becomes a one-span
	// trace in the follower's buffer.
	tr := e.tracer.Load()
	sampled := tr != nil && tr.SampleBackground()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	op, err := decodeOp(payload)
	if err != nil {
		return fmt.Errorf("durable: replicated record: %w", err)
	}
	var si *core.SearchIndex
	var doc *core.EncryptedDocument
	if op.kind == opUpload {
		if si, doc, err = decodeUploadOp(op); err != nil {
			return fmt.Errorf("durable: replicated upload: %w", err)
		}
		// Params are immutable after Open, so validating outside e.mu is safe.
		if err := si.Validate(e.srv.Params()); err != nil {
			return fmt.Errorf("durable: replicated upload rejected (parameter mismatch with primary?): %w", err)
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closing {
		return ErrClosed
	}
	pos := e.lsn // this record's position
	if err := e.logLocked(context.Background(), payload); err != nil {
		return err
	}
	switch op.kind {
	case opDelete:
		if err := e.srv.Delete(string(op.docID)); err != nil && !errors.Is(err, core.ErrNotFound) {
			return err
		}
	case opUpload:
		if err := e.srv.Upload(si, doc); err != nil {
			return err // unreachable given the validation above
		}
	case opTerm:
		// A replicated term bump is how a follower durably learns its
		// primary's new term. Like SetTerm, it must survive a crash whatever
		// the fsync policy — a follower that forgot the term would accept a
		// zombie's stream after restarting.
		if op.term > e.term {
			if err := e.syncLocked(context.Background()); err != nil {
				return err
			}
			e.term, e.termStart = op.term, pos
		}
	}
	e.noteOpLocked()
	if sampled {
		tr.RecordRoot("replication.apply", t0, time.Since(t0),
			trace.Attr{Key: "kind", Value: opKindName(op.kind)},
			trace.Attr{Key: "position", Value: strconv.FormatUint(pos, 10)})
	}
	return nil
}

// opKindName names a WAL op kind for trace attributes.
func opKindName(k byte) string {
	switch k {
	case opUpload:
		return "upload"
	case opDelete:
		return "delete"
	case opTerm:
		return "term"
	}
	return "unknown"
}

// BootstrapCheckpoint cuts a fresh checkpoint — even when the engine is
// unchanged since the last one — and returns its raw bytes and covered
// position. It is the primary's answer to a rejoining follower whose history
// has diverged (its position exceeds the primary's term start): such a
// follower cannot replay records and must be replaced wholesale via
// ResetToCheckpoint.
func (e *Engine) BootstrapCheckpoint() ([]byte, uint64, error) {
	if err := e.checkpoint(true); err != nil {
		return nil, 0, err
	}
	return e.ReadCheckpoint()
}

// ResetToCheckpoint replaces the engine's entire state — in memory and on
// disk — with a checkpoint shipped from a primary, leaving the engine at
// position lsn with an empty log tail. It is the follower's bootstrap path
// when the primary has pruned the records between them. The snapshot is
// fully parsed and validated before any local state is touched, and its
// parameters must equal the engine's. The in-memory server is rebuilt in
// place (readers holding the *core.Server keep working, though they observe
// the intermediate states of the swap), so a follower can bootstrap while
// serving.
func (e *Engine) ResetToCheckpoint(data []byte, lsn uint64) error {
	// Parse into a scratch server first: a malformed or mismatched snapshot
	// must not destroy the local state it was meant to replace.
	params := e.srv.Params()
	loaded, meta, err := store.LoadCheckpointBytes(data, func(p core.Params) (*core.Server, error) {
		if !p.Equal(params) {
			return nil, fmt.Errorf("durable: checkpoint parameters differ from this engine's (follower must be started with the primary's scheme parameters)")
		}
		return core.NewServerSharded(p, e.opts.Shards, e.opts.Workers)
	})
	if err != nil {
		return fmt.Errorf("durable: bootstrap checkpoint: %w", err)
	}
	if meta.LSN != lsn {
		return fmt.Errorf("durable: bootstrap checkpoint covers position %d, primary announced %d", meta.LSN, lsn)
	}

	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closing {
		return ErrClosed
	}

	// Install the checkpoint file first: if we crash anywhere past this
	// point, Open finds it, skips every older segment (all their records are
	// below lsn) and recovers at exactly lsn.
	path := filepath.Join(e.dir, ckptName(lsn))
	if err := writeFileSync(path, data); err != nil {
		return fmt.Errorf("durable: installing bootstrap checkpoint: %w", err)
	}
	if err := syncDir(e.dir); err != nil {
		return err
	}

	// Swap the in-memory state in place so readers keep a valid server.
	for _, id := range e.srv.DocumentIDs() {
		if derr := e.srv.Delete(id); derr != nil && !errors.Is(derr, core.ErrNotFound) {
			return derr
		}
	}
	err = loaded.Export(func(si *core.SearchIndex, doc *core.EncryptedDocument) error {
		return e.srv.Upload(si, doc)
	})
	if err != nil {
		return fmt.Errorf("durable: installing bootstrap state: %w", err)
	}

	// Start a fresh segment at lsn and drop the superseded files.
	if err := e.f.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(e.dir, segName(lsn)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: opening post-bootstrap WAL segment: %w", err)
	}
	if err := syncDir(e.dir); err != nil {
		f.Close()
		return err
	}
	e.f = f
	e.segStart = lsn
	e.segSize = 0
	e.lsn = lsn
	// The checkpoint replaces the whole local history, term included — the
	// shipped snapshot is now this engine's only provenance.
	e.term, e.termStart = meta.Term, meta.TermStart
	e.opsSinceCkpt = 0
	e.dirty = false
	e.broken = false
	e.stats.LSN = lsn
	e.stats.CheckpointLSN = lsn

	ckpts, segs, err := scanDir(e.dir)
	if err == nil {
		for _, c := range ckpts {
			if c != lsn {
				os.Remove(filepath.Join(e.dir, ckptName(c)))
			}
		}
		for _, s := range segs {
			if s != lsn {
				os.Remove(filepath.Join(e.dir, segName(s)))
			}
		}
	}
	logf(e.opts.Logger, "durable: bootstrapped from primary checkpoint at position %d (%d documents)", lsn, e.srv.NumDocuments())
	return nil
}

// writeFileSync writes data to path atomically: temp file, fsync, rename.
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
