// Package durable is the cloud server's storage engine: an append-only
// write-ahead log (WAL) of upload/delete mutations plus periodic materialized
// checkpoints, giving the daemon crash recovery with bounded data loss
// instead of the seed's exit-time-only snapshot.
//
// # Data directory layout
//
// An engine owns a directory holding two kinds of files, both named by LSN —
// the log sequence number, a count of mutations since the directory was
// created:
//
//	wal-<lsn>.log         log segment whose first record is mutation <lsn>
//	checkpoint-<lsn>.ckpt store.SaveCheckpoint snapshot covering mutations [0, lsn)
//
// Every mutation is validated, appended to the live segment (fsynced per
// FsyncPolicy), and only then applied to the in-memory core.Server — so the
// log is always at least as new as the state it reconstructs. A checkpoint
// cuts the log at the current LSN: the mutation stream is paused only while
// the server's state is materialized in memory and the segment rotated
// (searches keep running throughout; the pause is reported in Stats), then
// the snapshot is serialized and atomically renamed into place while uploads
// and deletes continue into the fresh segment, and obsolete files are
// removed.
//
// # Recovery
//
// Open loads the newest readable checkpoint and replays the log from its
// LSN, record by record, until the log ends or a record fails to decode. A
// torn final record — the expected residue of a crash mid-append — is
// truncated away and the engine resumes appending after it; a corrupt record
// with valid records behind it (bit rot, not tearing) aborts recovery, since
// silently skipping mutations would fork the state from the log. For any
// crash point, the recovered server's search output is byte-identical to a
// server that applied exactly the surviving prefix of mutations.
package durable

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mkse/internal/bitindex"
	"mkse/internal/core"
	"mkse/internal/store"
	"mkse/internal/telemetry"
	"mkse/internal/trace"
)

// FsyncPolicy says when the engine forces logged records to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs the log before every mutation is acknowledged: no
	// acknowledged write is ever lost, at the price of a disk round trip
	// per mutation.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background tick (Options.FsyncEvery,
	// default 100ms): a crash loses at most the last interval.
	FsyncInterval
	// FsyncNever leaves flushing to the operating system: fastest, and a
	// process crash (as opposed to a power cut) still loses nothing once
	// the engine's buffer is flushed.
	FsyncNever
)

// ParseFsyncPolicy maps the -fsync flag values onto policies.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval or never)", s)
}

// String returns the policy's -fsync flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	default:
		return "never"
	}
}

// Options tunes an engine. The zero value is usable: default shard layout,
// fsync on every mutation, no automatic checkpoints.
type Options struct {
	// Shards and Workers set the recovered server's layout, as in
	// core.NewServerSharded (<= 0 picks the defaults).
	Shards, Workers int
	// Fsync is the log sync policy.
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period; 0 means 100ms.
	FsyncEvery time.Duration
	// CheckpointEvery triggers a background checkpoint after that many
	// mutations since the last one; 0 checkpoints only on Close or by
	// explicit Checkpoint calls.
	CheckpointEvery int
	// Logger, if set, receives recovery and checkpoint notices.
	Logger *slog.Logger
}

// Stats is a point-in-time snapshot of the engine's counters.
type Stats struct {
	LSN           uint64 // mutations logged over the directory's lifetime
	CheckpointLSN uint64 // LSN covered by the newest durable checkpoint
	Checkpoints   int    // checkpoints taken by this engine instance
	Term          uint64 // promotion (fencing) term; see SetTerm

	// LastCheckpointPause is how long the last checkpoint blocked the
	// mutation stream (state materialization + segment rotation); searches
	// are never blocked. LastCheckpointWrite is the full serialization
	// time, which overlaps normal service.
	LastCheckpointPause time.Duration
	LastCheckpointWrite time.Duration

	// Replay footprint of Open: records applied, bytes decoded, wall time.
	ReplayedOps   int
	ReplayedBytes int64
	ReplayTime    time.Duration

	WALBytes int64 // bytes appended to the log by this engine instance
}

// ErrClosed reports a mutation against a closed engine.
var ErrClosed = errors.New("durable: engine is closed")

// Engine couples a core.Server with its write-ahead log and checkpointer.
// Route every mutation through the engine (Upload, Delete); reads — Search,
// SearchBatch, Fetch — go straight to Server(), which stays safe for
// concurrent use.
type Engine struct {
	dir  string
	opts Options
	srv  *core.Server

	// mu serializes mutations and checkpoint cuts, fixing one global order
	// that the log, the in-memory state and any replay all share.
	mu           sync.Mutex
	f            *os.File // live segment
	lsn          uint64
	term         uint64 // promotion (fencing) term; raised by SetTerm / replicated term records
	termStart    uint64 // log position where term began (the term record's position)
	segStart     uint64
	segSize      int64 // bytes of complete records in the live segment
	opsSinceCkpt int
	dirty        bool // bytes written since the last sync
	closing      bool
	broken       bool   // a failed append could not be rolled back
	buf          []byte // op staging buffer
	frame        []byte // framed-record staging buffer
	stats        Stats
	notify       chan struct{} // closed and replaced on every append (see WaitWAL)

	ckptMu sync.Mutex // serializes whole checkpoints

	ckptCh chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup

	// metrics, when set by EnableMetrics, receives append/fsync/checkpoint
	// latency observations. An atomic pointer so EnableMetrics can run after
	// Open without racing the mutation path; nil costs one load per append.
	metrics atomic.Pointer[engineMetrics]
	// tracer, when set by SetTracer, records checkpoint traces and sampled
	// replication-apply traces into the daemon's trace buffer; request-path
	// WAL spans (wal.append, wal.fsync) instead follow the request's own
	// context and need no tracer here.
	tracer atomic.Pointer[trace.Tracer]
	// openedAt anchors the checkpoint-age gauge until the first checkpoint;
	// lastCkptAt (under mu) is when the newest checkpoint landed.
	openedAt   time.Time
	lastCkptAt time.Time
}

// engineMetrics are the engine's hot-path latency instruments. The
// counters and gauges the engine already tracks in Stats are exported as
// scrape-time functions instead (see EnableMetrics).
type engineMetrics struct {
	appendLat *telemetry.Histogram // mkse_wal_append_seconds
	fsyncLat  *telemetry.Histogram // mkse_wal_fsync_seconds
	ckptDur   *telemetry.Histogram // mkse_checkpoint_duration_seconds
	ckptPause *telemetry.Histogram // mkse_checkpoint_pause_seconds
}

// EnableMetrics registers the engine's series on reg and starts observing:
// WAL append and fsync latency (WriteBuckets geometry), whole-checkpoint
// duration and mutation-stream pause, plus scrape-time readings of the
// Stats counters — checkpoint LSN and age, checkpoints taken, WAL bytes
// appended. Safe to call while the engine is serving.
func (e *Engine) EnableMetrics(reg *telemetry.Registry) {
	m := &engineMetrics{
		appendLat: reg.Histogram("mkse_wal_append_seconds",
			"WAL record append latency (framing + write + policy fsync).", telemetry.WriteBuckets()),
		fsyncLat: reg.Histogram("mkse_wal_fsync_seconds",
			"WAL fsync latency.", telemetry.WriteBuckets()),
		ckptDur: reg.Histogram("mkse_checkpoint_duration_seconds",
			"Whole-checkpoint duration: materialize, rotate, serialize, install.", telemetry.RequestBuckets()),
		ckptPause: reg.Histogram("mkse_checkpoint_pause_seconds",
			"Mutation-stream pause during a checkpoint cut (searches never pause).", telemetry.RequestBuckets()),
	}
	reg.GaugeFunc("mkse_checkpoint_lsn", "LSN covered by the newest durable checkpoint.",
		func() float64 { return float64(e.Stats().CheckpointLSN) })
	reg.GaugeFunc("mkse_checkpoint_age_seconds",
		"Seconds since the newest checkpoint landed (since Open when none has).",
		func() float64 { return time.Since(e.checkpointAnchor()).Seconds() })
	reg.CounterFunc("mkse_checkpoints_total", "Checkpoints taken by this engine instance.",
		func() float64 { return float64(e.Stats().Checkpoints) })
	reg.CounterFunc("mkse_wal_appended_bytes_total", "Bytes appended to the WAL by this engine instance.",
		func() float64 { return float64(e.Stats().WALBytes) })
	e.metrics.Store(m)
}

// SetTracer points the engine's background tracing at t: every checkpoint
// records a trace (root span plus the mutation-stream pause as a child),
// and replication applies record head-sampled single-span traces. A nil t
// disables both. Safe to call while the engine is serving.
func (e *Engine) SetTracer(t *trace.Tracer) { e.tracer.Store(t) }

// checkpointAnchor returns the newest checkpoint's completion time, or when
// the engine opened if it has not checkpointed yet.
func (e *Engine) checkpointAnchor() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.lastCkptAt.IsZero() {
		return e.openedAt
	}
	return e.lastCkptAt
}

// Open recovers (or creates) an engine over dir. A directory that does not
// exist yet is created and yields an empty server with parameters p; an
// existing directory is recovered from its newest checkpoint plus log tail,
// using the parameters persisted there (p is ignored then, like the legacy
// snapshot path — the log already encodes indices of the on-disk geometry).
func Open(dir string, p core.Params, opts Options) (*Engine, error) {
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: creating data dir: %w", err)
	}
	ckpts, segs, err := scanDir(dir)
	if err != nil {
		return nil, err
	}

	e := &Engine{
		dir:      dir,
		opts:     opts,
		ckptCh:   make(chan struct{}, 1),
		done:     make(chan struct{}),
		notify:   make(chan struct{}),
		openedAt: time.Now(),
	}
	mk := func(p core.Params) (*core.Server, error) {
		return core.NewServerSharded(p, opts.Shards, opts.Workers)
	}

	// Newest readable checkpoint wins; fall back past corrupt ones (a crash
	// cannot produce them — the rename is atomic — but bit rot can).
	for i := len(ckpts) - 1; i >= 0; i-- {
		srv, meta, err := store.LoadCheckpointFile(filepath.Join(dir, ckptName(ckpts[i])), mk)
		if err != nil {
			logf(opts.Logger, "durable: checkpoint %s unreadable, trying older: %v", ckptName(ckpts[i]), err)
			continue
		}
		if meta.LSN != ckpts[i] {
			return nil, fmt.Errorf("durable: checkpoint %s covers LSN %d", ckptName(ckpts[i]), meta.LSN)
		}
		e.srv, e.lsn = srv, meta.LSN
		e.term, e.termStart = meta.Term, meta.TermStart
		break
	}
	if e.srv == nil {
		if len(ckpts) > 0 {
			return nil, fmt.Errorf("durable: no readable checkpoint among %d in %s", len(ckpts), dir)
		}
		if e.srv, err = mk(p); err != nil {
			return nil, err
		}
	}
	e.stats.CheckpointLSN = e.lsn

	if err := e.replay(segs); err != nil {
		return nil, err
	}
	if err := e.openSegment(segs); err != nil {
		return nil, err
	}
	e.cleanup()

	e.wg.Add(1)
	go e.checkpointLoop()
	if opts.Fsync == FsyncInterval {
		e.wg.Add(1)
		go e.flushLoop()
	}
	return e, nil
}

// Server exposes the recovered server for reads. Mutations must go through
// the engine.
func (e *Engine) Server() *core.Server { return e.srv }

// Dir returns the engine's data directory.
func (e *Engine) Dir() string { return e.dir }

// Stats returns a copy of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.Term = e.term
	return st
}

// Term returns the engine's promotion (fencing) term: a monotonically
// increasing epoch raised by SetTerm on a promotion and learned by followers
// through replicated term records and checkpoints. Replication streams from
// a lower term are stale — they come from a primary that was failed over —
// and are rejected rather than applied.
func (e *Engine) Term() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.term
}

// TermStart returns the log position where the current term began: the
// position of the term-bump control record, or 0 for the initial term. A
// node whose position exceeds another history's TermStart holds records that
// history does not share, and must bootstrap from a checkpoint to rejoin it.
func (e *Engine) TermStart() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.termStart
}

// ErrStaleTerm reports an attempt to move the engine to a term at or below
// one it has already seen — the signature of a failed-over primary trying to
// act on an old claim to leadership.
var ErrStaleTerm = errors.New("durable: stale promotion term")

// SetTerm raises the engine's promotion term, durably: the bump is logged as
// a control record (occupying one log position, so it replicates to
// followers like any mutation) before the in-memory term changes. Raising to
// the current term is a no-op — promote retries must be idempotent — and a
// lower term returns ErrStaleTerm.
func (e *Engine) SetTerm(term uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closing {
		return ErrClosed
	}
	if term < e.term {
		return fmt.Errorf("%w: have term %d, refused %d", ErrStaleTerm, e.term, term)
	}
	if term == e.term {
		return nil
	}
	pos := e.lsn // the control record's position
	e.buf = appendTermOp(e.buf[:0], term)
	if err := e.logLocked(context.Background(), e.buf); err != nil {
		return err
	}
	// A term claim must survive a crash whatever the fsync policy: a
	// promoted primary that forgot its term would resurrect as fenceable.
	if err := e.syncLocked(context.Background()); err != nil {
		return err
	}
	e.term, e.termStart = term, pos
	e.noteOpLocked()
	return nil
}

// Upload durably stores one document: the mutation is logged (and synced,
// per policy) before it is applied to the server, so a crash straight after
// Upload returns cannot lose it under FsyncAlways. Re-uploading an existing
// ID logs and applies a replacement, as in core.Server.Upload.
func (e *Engine) Upload(si *core.SearchIndex, doc *core.EncryptedDocument) error {
	return e.UploadCtx(context.Background(), si, doc)
}

// UploadCtx is Upload with a request context: a traced request's context
// hangs the WAL append and fsync spans under the request. ctx does not
// cancel the mutation.
func (e *Engine) UploadCtx(ctx context.Context, si *core.SearchIndex, doc *core.EncryptedDocument) error {
	if si == nil || doc == nil {
		return fmt.Errorf("core: nil upload")
	}
	// Validate up front: only mutations that cannot fail to apply may reach
	// the log, otherwise replay would diverge from the live state.
	if err := si.Validate(e.srv.Params()); err != nil {
		return err
	}
	if doc.ID != si.DocID {
		return fmt.Errorf("core: index is for %q but document is %q", si.DocID, doc.ID)
	}
	levels := make([][]byte, len(si.Levels))
	for i, l := range si.Levels {
		enc, err := l.MarshalBinary()
		if err != nil {
			return err
		}
		levels[i] = enc
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closing {
		return ErrClosed
	}
	e.buf = appendUploadOp(e.buf[:0], si.DocID, levels, doc.Ciphertext, doc.EncKey)
	if err := e.logLocked(ctx, e.buf); err != nil {
		return err
	}
	if err := e.srv.Upload(si, doc); err != nil {
		return err // unreachable given the validation above
	}
	e.noteOpLocked()
	return nil
}

// Delete durably removes one document; deleting an unknown ID returns
// core.ErrNotFound without touching the log.
func (e *Engine) Delete(docID string) error {
	return e.DeleteCtx(context.Background(), docID)
}

// DeleteCtx is Delete with a request context (see UploadCtx).
func (e *Engine) DeleteCtx(ctx context.Context, docID string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closing {
		return ErrClosed
	}
	if _, err := e.srv.Fetch(docID); err != nil {
		return err
	}
	e.buf = appendDeleteOp(e.buf[:0], docID)
	if err := e.logLocked(ctx, e.buf); err != nil {
		return err
	}
	if err := e.srv.Delete(docID); err != nil {
		return err // unreachable: existence was checked under e.mu
	}
	e.noteOpLocked()
	return nil
}

// logLocked frames rec, appends it to the live segment and syncs per
// policy. Caller holds e.mu. ctx only feeds tracing: on a sampled request
// the append (and any policy fsync, separately) becomes a span.
func (e *Engine) logLocked(ctx context.Context, rec []byte) error {
	if e.broken {
		return fmt.Errorf("durable: log is in an unknown state after an unrecoverable append failure")
	}
	if len(rec) > MaxOpSize {
		return fmt.Errorf("durable: %d-byte mutation exceeds the %d-byte limit (documents must stay shippable to replicas in one frame)", len(rec), MaxOpSize)
	}
	m := e.metrics.Load()
	traced := trace.Sampled(ctx)
	var t0 time.Time
	if m != nil || traced {
		t0 = time.Now()
	}
	var err error
	e.frame, err = AppendRecord(e.frame[:0], rec)
	if err != nil {
		return err
	}
	if n, err := e.f.Write(e.frame); err != nil {
		// A short write (disk full, I/O error) leaves a partial frame in the
		// segment. Recovery would read it as a torn tail and silently drop
		// any acknowledged records appended after it — so roll the segment
		// back to the last record boundary; if even that fails, refuse all
		// further appends rather than risk losing acknowledged data.
		if n > 0 {
			if terr := e.f.Truncate(e.segSize); terr != nil {
				e.broken = true
				return fmt.Errorf("durable: appending WAL record: %v; rolling back partial frame: %w", err, terr)
			}
		}
		return fmt.Errorf("durable: appending WAL record: %w", err)
	}
	e.segSize += int64(len(e.frame))
	e.lsn++
	e.stats.LSN = e.lsn
	e.stats.WALBytes += int64(len(e.frame))
	e.dirty = true
	// Wake WAL tailers (replication streams) blocked in WaitWAL.
	close(e.notify)
	e.notify = make(chan struct{})
	if e.opts.Fsync == FsyncAlways {
		err = e.syncLocked(ctx)
	}
	if m != nil || traced {
		d := time.Since(t0)
		if m != nil {
			m.appendLat.Observe(d)
		}
		if traced {
			trace.AddCompleted(ctx, "wal.append", t0, d)
		}
	}
	return err
}

// syncLocked fsyncs the live segment; ctx only feeds tracing, like
// logLocked. Background callers pass context.Background().
func (e *Engine) syncLocked(ctx context.Context) error {
	if !e.dirty {
		return nil
	}
	m := e.metrics.Load()
	traced := trace.Sampled(ctx)
	var t0 time.Time
	if m != nil || traced {
		t0 = time.Now()
	}
	if err := e.f.Sync(); err != nil {
		return fmt.Errorf("durable: syncing WAL: %w", err)
	}
	if m != nil || traced {
		d := time.Since(t0)
		if m != nil {
			m.fsyncLat.Observe(d)
		}
		if traced {
			trace.AddCompleted(ctx, "wal.fsync", t0, d)
		}
	}
	e.dirty = false
	return nil
}

// Sync forces every logged record to stable storage, whatever the policy.
func (e *Engine) Sync() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.syncLocked(context.Background())
}

// noteOpLocked counts a mutation toward the automatic checkpoint trigger.
func (e *Engine) noteOpLocked() {
	e.opsSinceCkpt++
	if e.opts.CheckpointEvery > 0 && e.opsSinceCkpt >= e.opts.CheckpointEvery {
		select {
		case e.ckptCh <- struct{}{}:
		default: // one is already pending
		}
	}
}

// memSnapshot is the state captured during a checkpoint cut, serialized
// after the mutation stream resumes. It satisfies store.Exporter.
type memSnapshot struct {
	params core.Params
	items  []snapItem
}

type snapItem struct {
	si  *core.SearchIndex
	doc *core.EncryptedDocument
}

func (s *memSnapshot) Params() core.Params { return s.params }
func (s *memSnapshot) NumDocuments() int   { return len(s.items) }
func (s *memSnapshot) Export(fn func(*core.SearchIndex, *core.EncryptedDocument) error) error {
	for _, it := range s.items {
		if err := fn(it.si, it.doc); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint materializes the server's state, rotates the log, serializes
// the snapshot beside the live directory and atomically installs it, then
// prunes files the new checkpoint obsoletes. Mutations are blocked only
// during materialization and rotation (the reported pause); searches and
// fetches are never blocked, and the serialization overlaps normal service.
// Checkpointing an unchanged engine is a no-op.
func (e *Engine) Checkpoint() error { return e.checkpoint(false) }

// checkpoint implements Checkpoint; force writes a snapshot even when the
// engine is unchanged since the last one (the bootstrap path needs a
// checkpoint file to ship even from a fresh, empty directory).
func (e *Engine) checkpoint(force bool) error {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()

	start := time.Now()
	e.mu.Lock()
	lsn := e.lsn
	meta := store.CheckpointMeta{LSN: lsn, Term: e.term, TermStart: e.termStart}
	if lsn == e.stats.CheckpointLSN && !force {
		e.mu.Unlock()
		return nil
	}
	snap := &memSnapshot{params: e.srv.Params()}
	// Export's contract permits retaining (not mutating) its arguments, so
	// the snapshot captures the pointers and serializes after unlock.
	err := e.srv.Export(func(si *core.SearchIndex, doc *core.EncryptedDocument) error {
		snap.items = append(snap.items, snapItem{si: si, doc: doc})
		return nil
	})
	if err == nil && e.segStart != lsn {
		// Skip rotation when the live segment already starts at the cut: a
		// forced re-checkpoint of an unchanged engine would otherwise try to
		// recreate the segment it is writing to.
		err = e.rotateLocked(lsn)
	}
	pause := time.Since(start)
	e.stats.LastCheckpointPause = pause
	e.mu.Unlock()
	if err != nil {
		return err
	}

	wstart := time.Now()
	path := filepath.Join(e.dir, ckptName(lsn))
	if err := store.SaveCheckpointFile(path, snap, meta); err != nil {
		return fmt.Errorf("durable: writing checkpoint: %w", err)
	}
	if err := syncDir(e.dir); err != nil {
		return err
	}

	e.mu.Lock()
	e.stats.CheckpointLSN = lsn
	e.stats.Checkpoints++
	e.stats.LastCheckpointWrite = time.Since(wstart)
	e.lastCkptAt = time.Now()
	e.mu.Unlock()
	if m := e.metrics.Load(); m != nil {
		m.ckptPause.Observe(pause)
		m.ckptDur.Observe(time.Since(start))
	}
	// Checkpoints are rare and always worth inspecting, so every one is
	// recorded (no sampling): a root span for the whole checkpoint with the
	// mutation-stream pause as a child, making a pause-induced latency
	// outlier attributable from /traces alone.
	if tr := e.tracer.Load(); tr != nil {
		id := trace.NewTraceID()
		rootID := trace.NewSpanID()
		tr.RecordSpans([]trace.Span{
			{Trace: id, ID: rootID, Service: tr.Service(), Name: "durable.checkpoint",
				Start: start, Duration: time.Since(start), Attrs: []trace.Attr{
					{Key: "lsn", Value: strconv.FormatUint(lsn, 10)},
					{Key: "documents", Value: strconv.Itoa(len(snap.items))},
				}},
			{Trace: id, ID: trace.NewSpanID(), Parent: rootID, Service: tr.Service(),
				Name: "checkpoint.pause", Start: start, Duration: pause},
		})
	}
	e.cleanup()
	logf(e.opts.Logger, "durable: checkpoint at LSN %d (%d documents, %v pause)", lsn, len(snap.items), pause)
	return nil
}

// rotateLocked finishes the live segment and starts wal-<lsn>.log. Caller
// holds e.mu.
func (e *Engine) rotateLocked(lsn uint64) error {
	if err := e.syncLocked(context.Background()); err != nil {
		return err
	}
	if err := e.f.Close(); err != nil {
		return err
	}
	// O_APPEND keeps the write offset glued to EOF, so a rollback truncate
	// in logLocked cannot leave a hole.
	f, err := os.OpenFile(filepath.Join(e.dir, segName(lsn)), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: rotating WAL: %w", err)
	}
	if err := syncDir(e.dir); err != nil {
		f.Close()
		return err
	}
	e.f = f
	e.segStart = lsn
	e.segSize = 0
	e.opsSinceCkpt = 0
	e.dirty = false
	return nil
}

// checkpointLoop runs automatic checkpoints off the mutation path.
func (e *Engine) checkpointLoop() {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		case <-e.ckptCh:
			if err := e.Checkpoint(); err != nil {
				logf(e.opts.Logger, "durable: background checkpoint: %v", err)
			}
		}
	}
}

// flushLoop services FsyncInterval.
func (e *Engine) flushLoop() {
	defer e.wg.Done()
	t := time.NewTicker(e.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-t.C:
			if err := e.Sync(); err != nil {
				logf(e.opts.Logger, "durable: interval sync: %v", err)
			}
		}
	}
}

// Close stops the background work, takes a final checkpoint (so the next
// Open is replay-free) and closes the log. Further mutations return
// ErrClosed; reads through Server() keep working.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closing {
		e.mu.Unlock()
		return nil
	}
	e.closing = true
	e.mu.Unlock()
	close(e.done)
	e.wg.Wait()
	err := e.Checkpoint()
	e.mu.Lock()
	defer e.mu.Unlock()
	if serr := e.syncLocked(context.Background()); err == nil {
		err = serr
	}
	if cerr := e.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash abandons the engine the way a killed process would: background work
// stops and the log handle is closed without a flush, a sync or a final
// checkpoint. Only what the chosen fsync policy already made durable (plus
// whatever the OS wrote back on its own) survives into the next Open. For
// crash-recovery tests and experiments.
func (e *Engine) Crash() {
	e.mu.Lock()
	if e.closing {
		e.mu.Unlock()
		return
	}
	e.closing = true
	e.mu.Unlock()
	close(e.done)
	e.wg.Wait()
	e.f.Close()
}

// replay applies the log tail (segments at or past the checkpoint LSN) to
// the freshly loaded server.
func (e *Engine) replay(segs []uint64) error {
	start := time.Now()
	for i, seg := range segs {
		if seg < e.lsn {
			// Fully covered by the checkpoint — its cut always lands on a
			// rotation boundary — so skip it; cleanup prunes it later.
			continue
		}
		if seg > e.lsn {
			return fmt.Errorf("durable: log gap: next segment starts at LSN %d, have %d", seg, e.lsn)
		}
		stop, err := e.replaySegment(filepath.Join(e.dir, segName(seg)), i == len(segs)-1)
		if err != nil {
			return err
		}
		if stop {
			break
		}
	}
	e.stats.ReplayTime = time.Since(start)
	e.stats.LSN = e.lsn
	if e.stats.ReplayedOps > 0 {
		logf(e.opts.Logger, "durable: replayed %d operations (%d bytes) in %v",
			e.stats.ReplayedOps, e.stats.ReplayedBytes, e.stats.ReplayTime)
	}
	return nil
}

// replaySegment applies one segment's records. last marks the directory's
// final segment, the only place a torn record is legitimate: the tail is
// truncated away and replay stops. Returns stop=true when the segment ended
// early.
func (e *Engine) replaySegment(path string, last bool) (stop bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("durable: reading segment: %w", err)
	}
	off := 0
	for off < len(data) {
		payload, n, derr := DecodeRecord(data[off:])
		if derr != nil {
			if !last {
				return false, fmt.Errorf("durable: %s: record at offset %d with later segments present: %w", filepath.Base(path), off, derr)
			}
			logf(e.opts.Logger, "durable: %s: dropping torn tail at offset %d (%v)", filepath.Base(path), off, derr)
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return false, fmt.Errorf("durable: truncating torn tail: %w", terr)
			}
			return true, nil
		}
		if aerr := e.applyPayload(payload, e.lsn); aerr != nil {
			return false, fmt.Errorf("durable: %s: applying record %d: %w", filepath.Base(path), e.lsn, aerr)
		}
		off += n
		e.lsn++
		e.stats.ReplayedOps++
		e.stats.ReplayedBytes += int64(n)
	}
	return false, nil
}

// applyPayload re-applies one logged mutation. pos is the record's log
// position (needed by term records, whose position becomes the term start).
func (e *Engine) applyPayload(payload []byte, pos uint64) error {
	op, err := decodeOp(payload)
	if err != nil {
		return err
	}
	return e.applyOp(op, pos)
}

// applyOp applies one decoded mutation to the in-memory server.
func (e *Engine) applyOp(op *walOp, pos uint64) error {
	switch op.kind {
	case opDelete:
		if err := e.srv.Delete(string(op.docID)); err != nil && !errors.Is(err, core.ErrNotFound) {
			return err
		}
		return nil
	case opUpload:
		si, doc, err := decodeUploadOp(op)
		if err != nil {
			return err
		}
		return e.srv.Upload(si, doc)
	case opTerm:
		// Replaying (or receiving, via ApplyReplicated) a term bump adopts it.
		// An equal-or-lower carried term is a no-op, not an error: checkpoints
		// persist the term, so a replayed segment can legitimately carry bumps
		// the checkpoint already covers.
		if op.term > e.term {
			e.term, e.termStart = op.term, pos
		}
		return nil
	}
	return fmt.Errorf("%w: unknown operation kind %d", ErrCorruptRecord, op.kind)
}

// decodeUploadOp materializes an upload mutation's index and document. The
// ciphertext and key are copied out of the decode buffer so retained
// payloads do not pin whole segments (or wire batches) in memory.
func decodeUploadOp(op *walOp) (*core.SearchIndex, *core.EncryptedDocument, error) {
	levels := make([]*bitindex.Vector, len(op.levels))
	for i, raw := range op.levels {
		var v bitindex.Vector
		if err := v.UnmarshalBinary(raw); err != nil {
			return nil, nil, fmt.Errorf("level %d: %w", i+1, err)
		}
		levels[i] = &v
	}
	si := &core.SearchIndex{DocID: string(op.docID), Levels: levels}
	doc := &core.EncryptedDocument{
		ID:         si.DocID,
		Ciphertext: append([]byte(nil), op.ciphertext...),
		EncKey:     append([]byte(nil), op.encKey...),
	}
	return si, doc, nil
}

// openSegment resumes appending: to the directory's last segment if replay
// consumed it fully, otherwise to a fresh segment at the recovered LSN.
func (e *Engine) openSegment(segs []uint64) error {
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		if last <= e.lsn {
			path := filepath.Join(e.dir, segName(last))
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err == nil {
				fi, err := f.Stat()
				if err != nil {
					f.Close()
					return fmt.Errorf("durable: sizing WAL segment: %w", err)
				}
				e.f = f
				e.segStart = last
				e.segSize = fi.Size()
				return nil
			}
		}
	}
	f, err := os.OpenFile(filepath.Join(e.dir, segName(e.lsn)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: opening WAL segment: %w", err)
	}
	e.f = f
	e.segStart = e.lsn
	e.segSize = 0
	return syncDir(e.dir)
}

// cleanup removes files a durable checkpoint has obsoleted: older
// checkpoints, segments fully below the checkpoint LSN, and stale temp
// files. Failures are cosmetic (retried on the next cleanup) and ignored.
func (e *Engine) cleanup() {
	e.mu.Lock()
	ckptLSN := e.stats.CheckpointLSN
	segStart := e.segStart
	e.mu.Unlock()
	ckpts, segs, err := scanDir(e.dir)
	if err != nil {
		return
	}
	for _, c := range ckpts {
		if c < ckptLSN {
			os.Remove(filepath.Join(e.dir, ckptName(c)))
		}
	}
	for i, s := range segs {
		// A segment is dead once the checkpoint covers it entirely — its
		// end is the next segment's start — and it is not the live one.
		if s >= segStart {
			continue
		}
		if i+1 < len(segs) && segs[i+1] <= ckptLSN {
			os.Remove(filepath.Join(e.dir, segName(s)))
		}
	}
}

// --- directory plumbing ---

func segName(lsn uint64) string  { return fmt.Sprintf("wal-%016d.log", lsn) }
func ckptName(lsn uint64) string { return fmt.Sprintf("checkpoint-%016d.ckpt", lsn) }

// scanDir lists the directory's checkpoint and segment LSNs, ascending, and
// sweeps temp files left by an interrupted checkpoint write.
func scanDir(dir string) (ckpts, segs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: reading data dir: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if n, ok := parseName(name, "wal-", ".log"); ok {
			segs = append(segs, n)
		} else if n, ok := parseName(name, "checkpoint-", ".ckpt"); ok {
			ckpts = append(ckpts, n)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return ckpts, segs, nil
}

func parseName(name, prefix, suffix string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, suffix)
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	return n, err == nil
}

// syncDir fsyncs a directory so renames and creates within it survive a
// power cut.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: syncing data dir: %w", err)
	}
	return nil
}

func logf(l *slog.Logger, format string, args ...any) {
	if l != nil {
		l.Info(fmt.Sprintf(format, args...))
	}
}
