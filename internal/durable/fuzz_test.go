package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzWALRecord fuzzes the record codec with arbitrary bytes: corrupt CRCs,
// truncated frames and oversized length fields must all surface as
// ErrCorruptRecord — never a panic, and never an allocation driven by a
// corrupt length field (DecodeRecord only ever slices its input). Whatever
// decodes must re-encode to the identical frame, and every payload must
// round-trip.
func FuzzWALRecord(f *testing.F) {
	valid, err := AppendRecord(nil, appendUploadOp(nil, "doc-1", [][]byte{{1, 2, 3}}, []byte("ct"), []byte("ek")))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	crcFlip := bytes.Clone(valid)
	crcFlip[5] ^= 0xFF
	f.Add(crcFlip) // checksum mismatch
	oversize := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(oversize, 1<<31) // absurd length field
	f.Add(oversize)
	del, err := AppendRecord(nil, appendDeleteOp(nil, "doc-2"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(del)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}) // empty payload, zero CRC

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("DecodeRecord error %v is not ErrCorruptRecord", err)
			}
		} else {
			if n < recordHeaderSize || n > len(data) {
				t.Fatalf("DecodeRecord consumed %d of %d bytes", n, len(data))
			}
			// A decoded frame re-encodes to the identical bytes.
			re, err := AppendRecord(nil, payload)
			if err != nil {
				t.Fatalf("re-encoding decoded payload: %v", err)
			}
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("re-encoded frame differs from input")
			}
			// The op parser must be equally panic-free on whatever the
			// frame carried.
			if op, err := decodeOp(payload); err == nil {
				switch op.kind {
				case opUpload, opDelete:
				default:
					t.Fatalf("decodeOp accepted unknown kind %d", op.kind)
				}
			} else if !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("decodeOp error %v is not ErrCorruptRecord", err)
			}
		}

		// Any input, treated as a payload, must round-trip through the
		// framing (bounded by MaxRecordSize, which fuzz inputs are).
		framed, err := AppendRecord(nil, data)
		if err != nil {
			t.Fatalf("AppendRecord(%d bytes): %v", len(data), err)
		}
		got, n2, err := DecodeRecord(framed)
		if err != nil || n2 != len(framed) || !bytes.Equal(got, data) {
			t.Fatalf("round trip failed: n=%d err=%v", n2, err)
		}
	})
}

// The specific rejection cases the fuzz seeds encode, as a plain test so
// they run on every `go test`.
func TestDecodeRecordRejections(t *testing.T) {
	valid, err := AppendRecord(nil, appendDeleteOp(nil, "doc-9"))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"short header":     valid[:recordHeaderSize-1],
		"truncated body":   valid[:len(valid)-1],
		"crc mismatch":     append(bytes.Clone(valid[:len(valid)-1]), valid[len(valid)-1]^1),
		"oversized length": binary.LittleEndian.AppendUint32(nil, MaxRecordSize+1),
	}
	for name, data := range cases {
		if _, _, err := DecodeRecord(data); !errors.Is(err, ErrCorruptRecord) {
			t.Errorf("%s: got %v, want ErrCorruptRecord", name, err)
		}
	}
	if _, _, err := DecodeRecord(valid); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	if _, err := AppendRecord(nil, make([]byte, MaxRecordSize+1)); err == nil {
		t.Error("AppendRecord accepted an oversized payload")
	}
}
