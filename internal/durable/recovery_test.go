package durable

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mkse/internal/bitindex"
)

// copyDir clones the flat engine data directory (no subdirectories).
func copyDir(t testing.TB, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		in, err := os.Open(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// recordBoundaries returns the byte offsets of every record boundary in a
// segment (0, after record 1, ..., len(data)).
func recordBoundaries(t testing.TB, data []byte) []int {
	t.Helper()
	bounds := []int{0}
	off := 0
	for off < len(data) {
		_, n, err := DecodeRecord(data[off:])
		if err != nil {
			t.Fatalf("segment under test has corrupt record at %d: %v", off, err)
		}
		off += n
		bounds = append(bounds, off)
	}
	return bounds
}

// TestKillAnywhereRecovery is the kill-anywhere property test of ISSUE 3: a
// scripted mutation sequence (uploads, re-uploads, deletes, one mid-stream
// checkpoint) runs through an engine, then the WAL is cut at EVERY byte
// boundary of its final record — plus every earlier record boundary — and
// recovered. Each recovery must produce search output byte-identical to a
// server that simply applied the ops surviving the cut, and deleted
// documents must never resurface.
func TestKillAnywhereRecovery(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(71))
	const total, ckptAt = 56, 24
	ops := genOps(rng, p, total)
	qs := queriesFor(rand.New(rand.NewSource(72)), p, ops)
	base := filepath.Join(t.TempDir(), "base")

	e, err := Open(base, p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, e, ops[:ckptAt])
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyOps(t, e, ops[ckptAt:])
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	e.Crash()

	// The live segment now holds ops[ckptAt:].
	segPath := filepath.Join(base, segName(ckptAt))
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	bounds := recordBoundaries(t, data)
	if got := len(bounds) - 1; got != total-ckptAt {
		t.Fatalf("live segment holds %d records, want %d", got, total-ckptAt)
	}

	// Reference fingerprints per surviving-prefix length are reused across
	// cuts (every byte cut inside the final record recovers the same
	// prefix).
	fingerprints := make(map[int]string)
	wantFor := func(surviving int) string {
		fp, ok := fingerprints[surviving]
		if !ok {
			fp = searchFingerprint(t, referenceServer(t, p, ops[:surviving]), qs)
			fingerprints[surviving] = fp
		}
		return fp
	}

	scratch := filepath.Join(t.TempDir(), "cuts")
	recoverAt := func(cut, surviving int, label string) {
		t.Helper()
		dir := filepath.Join(scratch, fmt.Sprintf("%s-%d", label, cut))
		copyDir(t, base, dir)
		if err := os.Truncate(filepath.Join(dir, segName(ckptAt)), int64(cut)); err != nil {
			t.Fatal(err)
		}
		re, err := Open(dir, p, Options{})
		if err != nil {
			t.Fatalf("%s cut at %d: recovery failed: %v", label, cut, err)
		}
		defer re.Crash()
		if got := re.Stats().ReplayedOps; got != surviving-ckptAt {
			t.Fatalf("%s cut at %d: replayed %d ops, want %d", label, cut, got, surviving-ckptAt)
		}
		if got := searchFingerprint(t, re.Server(), qs); got != wantFor(surviving) {
			t.Fatalf("%s cut at %d (%d surviving ops): search output differs from sequential re-application",
				label, cut, surviving)
		}
		live := liveAfter(ops[:surviving])
		for _, o := range ops[:surviving] {
			_, err := re.Server().Fetch(o.id)
			if live[o.id] && err != nil {
				t.Fatalf("%s cut at %d: lost document %s: %v", label, cut, o.id, err)
			}
			if !live[o.id] && err == nil {
				t.Fatalf("%s cut at %d: deleted document %s resurfaced", label, cut, o.id)
			}
		}
	}

	// Every record boundary: recovery == sequential application of exactly
	// that prefix of the WAL.
	for i, cut := range bounds {
		recoverAt(cut, ckptAt+i, "boundary")
	}
	// Every byte boundary of the final record: all torn tails recover to
	// the sequence minus its final op.
	lastStart := bounds[len(bounds)-2]
	for cut := lastStart + 1; cut < len(data); cut++ {
		recoverAt(cut, total-1, "torn")
	}
}

// TestConcurrentMutationsWithCheckpoints drives uploads, deletes, searches
// and checkpoints concurrently (the -race configuration CI runs), then
// verifies a clean close + reopen reproduces the live server's output.
func TestConcurrentMutationsWithCheckpoints(t *testing.T) {
	p := testParams()
	dir := t.TempDir()
	e, err := Open(dir, p, Options{Fsync: FsyncNever, CheckpointEvery: 25})
	if err != nil {
		t.Fatal(err)
	}

	const uploaders, perUploader = 3, 60
	deletable := make(chan string, uploaders*perUploader)
	var wg sync.WaitGroup
	for u := 0; u < uploaders; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + u)))
			for i := 0; i < perUploader; i++ {
				id := fmt.Sprintf("u%d-doc%03d", u, i)
				o := uploadOp(rng, p, id, id)
				if err := e.Upload(o.si, o.doc); err != nil {
					t.Errorf("upload %s: %v", id, err)
					return
				}
				if i%3 == 0 {
					deletable <- id
				}
			}
		}(u)
	}
	wg.Add(1)
	go func() { // deletes only documents whose upload was acknowledged
		defer wg.Done()
		for i := 0; i < uploaders*perUploader/6; i++ {
			if err := e.Delete(<-deletable); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
		}
	}()
	stopSearch := make(chan struct{})
	searchDone := make(chan struct{})
	go func() { // reads race the mutation stream; stopped after the writers
		defer close(searchDone)
		rng := rand.New(rand.NewSource(200))
		q := queryFor(rng, p, randomIndex(rng, p, "probe"), 0)
		for {
			select {
			case <-stopSearch:
				return
			default:
				if _, err := e.Server().SearchTop(q, 5); err != nil {
					t.Errorf("search: %v", err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // explicit checkpoints race the automatic ones
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := e.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	close(stopSearch)
	<-searchDone
	if t.Failed() {
		return
	}

	// Probe queries derived from each uploader's first document (its index
	// is reproducible from the uploader's seed), so they hit stored data.
	probe := make([]*bitindex.Vector, 0, uploaders)
	prng := rand.New(rand.NewSource(203))
	for u := 0; u < uploaders; u++ {
		first := uploadOp(rand.New(rand.NewSource(int64(100+u))), p, "probe", "probe")
		probe = append(probe, queryFor(prng, p, first.si, u%p.Eta()))
	}
	want := searchFingerprint(t, e.Server(), probe)
	wantDocs := e.Server().NumDocuments()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Stats().ReplayedOps; got != 0 {
		t.Fatalf("clean close left %d ops to replay", got)
	}
	if got := re.Server().NumDocuments(); got != wantDocs {
		t.Fatalf("recovered %d documents, want %d", got, wantDocs)
	}
	if got := searchFingerprint(t, re.Server(), probe); got != want {
		t.Fatal("recovered search output differs from the live server at close")
	}
}
