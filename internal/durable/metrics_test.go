package durable

import (
	"math/rand"
	"strings"
	"testing"

	"mkse/internal/telemetry"
)

// Metrics can be enabled after Open (the engine stores them behind an
// atomic pointer), and from then on every append, fsync and checkpoint
// lands in the histograms while the scrape-time functions read the same
// totals Stats reports.
func TestEngineMetrics(t *testing.T) {
	p := testParams()
	eng, err := Open(t.TempDir(), p, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	reg := telemetry.New()
	eng.EnableMetrics(reg)

	rng := rand.New(rand.NewSource(5))
	ops := genOps(rng, p, 8)
	applyOps(t, eng, ops)

	// Counted before the checkpoint, which may append its own records.
	if got := eng.metrics.Load().appendLat.Count(); got != uint64(len(ops)) {
		t.Errorf("append histogram count = %d, want %d", got, len(ops))
	}
	if got := eng.metrics.Load().fsyncLat.Count(); got < uint64(len(ops)) {
		t.Errorf("fsync histogram count = %d with FsyncAlways, want >= %d", got, len(ops))
	}

	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := eng.metrics.Load().ckptDur.Count(); got != 1 {
		t.Errorf("checkpoint duration count = %d, want 1", got)
	}
	if got := eng.metrics.Load().ckptPause.Count(); got != 1 {
		t.Errorf("checkpoint pause count = %d, want 1", got)
	}

	rendered := reg.Render()
	for _, want := range []string{
		"mkse_wal_append_seconds_count ",
		"mkse_checkpoints_total 1",
		"mkse_checkpoint_lsn ",
		"mkse_checkpoint_age_seconds ",
		"mkse_wal_appended_bytes_total ",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if strings.Contains(rendered, "mkse_wal_appended_bytes_total 0\n") {
		t.Error("WAL byte counter still zero after appends")
	}
}
