package durable

import (
	"errors"
	"math/rand"
	"testing"
)

// A term raised by SetTerm must survive a crash — via WAL replay of the term
// control record — whatever the fsync policy, and the engine must refuse to
// move backwards.
func TestSetTermSurvivesCrash(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(71))
	dir := t.TempDir()
	e, err := Open(dir, p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	ops := genOps(rng, p, 6)
	applyOps(t, e, ops[:4])
	wantStart := e.Position()
	if err := e.SetTerm(3); err != nil {
		t.Fatalf("SetTerm(3): %v", err)
	}
	applyOps(t, e, ops[4:])

	// Idempotent retry and stale refusal.
	if err := e.SetTerm(3); err != nil {
		t.Fatalf("SetTerm(3) retry: %v", err)
	}
	if err := e.SetTerm(2); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("SetTerm(2) = %v, want ErrStaleTerm", err)
	}
	if got := e.Term(); got != 3 {
		t.Fatalf("Term = %d, want 3", got)
	}
	if got := e.TermStart(); got != wantStart {
		t.Fatalf("TermStart = %d, want %d", got, wantStart)
	}

	e.Crash()
	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Term(); got != 3 {
		t.Fatalf("recovered Term = %d, want 3 (term record not replayed?)", got)
	}
	if got := re.TermStart(); got != wantStart {
		t.Fatalf("recovered TermStart = %d, want %d", got, wantStart)
	}
	// The control record occupies a position: 6 mutations + 1 term record.
	if got := re.Position(); got != uint64(len(ops))+1 {
		t.Fatalf("recovered position = %d, want %d", got, len(ops)+1)
	}
	if got := re.Stats().Term; got != 3 {
		t.Fatalf("Stats().Term = %d, want 3", got)
	}
}

// A term must also survive through a checkpoint alone: Close checkpoints and
// prunes the log, so the only surviving copy is the checkpoint metadata.
func TestTermSurvivesCheckpointedClose(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(72))
	dir := t.TempDir()
	e, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, e, genOps(rng, p, 5))
	wantStart := e.Position()
	if err := e.SetTerm(9); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Stats().ReplayedOps != 0 {
		t.Fatalf("replayed %d ops after a clean close", re.Stats().ReplayedOps)
	}
	if got := re.Term(); got != 9 {
		t.Fatalf("Term = %d, want 9 (checkpoint metadata lost it)", got)
	}
	if got := re.TermStart(); got != wantStart {
		t.Fatalf("TermStart = %d, want %d", got, wantStart)
	}
}

// The term record ships to followers like any mutation and raises their term
// when applied.
func TestApplyReplicatedTermRecord(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(73))
	primary, err := Open(t.TempDir(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	follower, err := Open(t.TempDir(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	applyOps(t, primary, genOps(rng, p, 4))
	if err := primary.SetTerm(5); err != nil {
		t.Fatal(err)
	}
	records, next, err := primary.ReadWAL(0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if next != primary.Position() {
		t.Fatalf("ReadWAL next = %d, want %d", next, primary.Position())
	}
	for i, rec := range records {
		if err := follower.ApplyReplicated(rec); err != nil {
			t.Fatalf("ApplyReplicated record %d: %v", i, err)
		}
	}
	if got := follower.Term(); got != 5 {
		t.Fatalf("follower Term = %d, want 5", got)
	}
	if got, want := follower.TermStart(), primary.TermStart(); got != want {
		t.Fatalf("follower TermStart = %d, want %d", got, want)
	}
	if got, want := follower.Position(), primary.Position(); got != want {
		t.Fatalf("follower position = %d, want %d", got, want)
	}
}

// BootstrapCheckpoint forces a cut even on an unchanged engine, and a
// follower resetting to it adopts the checkpoint's term wholesale.
func TestBootstrapCheckpointCarriesTerm(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(74))
	primary, err := Open(t.TempDir(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	applyOps(t, primary, genOps(rng, p, 4))
	if err := primary.SetTerm(7); err != nil {
		t.Fatal(err)
	}
	// First cut covers everything; a second forced cut must still produce a
	// checkpoint (the no-op path would starve a bootstrapping follower).
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	data, lsn, err := primary.BootstrapCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != primary.Position() {
		t.Fatalf("bootstrap checkpoint at %d, want %d", lsn, primary.Position())
	}

	follower, err := Open(t.TempDir(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	// Give the follower a diverged history the reset must wipe, term included.
	applyOps(t, follower, genOps(rng, p, 2))
	if err := follower.ResetToCheckpoint(data, lsn); err != nil {
		t.Fatal(err)
	}
	if got := follower.Term(); got != 7 {
		t.Fatalf("follower Term after reset = %d, want 7", got)
	}
	if got, want := follower.TermStart(), primary.TermStart(); got != want {
		t.Fatalf("follower TermStart after reset = %d, want %d", got, want)
	}
	if got, want := follower.Server().NumDocuments(), primary.Server().NumDocuments(); got != want {
		t.Fatalf("follower holds %d documents after reset, want %d", got, want)
	}
}
