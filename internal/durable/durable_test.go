package durable

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mkse/internal/bitindex"
	"mkse/internal/core"
	"mkse/internal/rank"
)

// The engine tests exercise durability, not cryptography: indices are
// random valid vectors (mostly-ones with nested zero sets per level), and
// queries borrow zero positions from a target document so they match it.
// What matters is that a recovered server's search output is byte-identical
// to one that applied the same operations directly.

func testParams() core.Params {
	p := core.DefaultParams()
	p.Levels = rank.Levels{1, 5, 10}
	return p
}

// zerosPerLevel makes level l+1's zero set a strict subset of level l's, as
// real indices have (higher levels cover fewer keywords).
var zerosPerLevel = []int{30, 18, 8}

func randomIndex(rng *rand.Rand, p core.Params, id string) *core.SearchIndex {
	zeros := rng.Perm(p.R)[:zerosPerLevel[0]]
	si := &core.SearchIndex{DocID: id, Levels: make([]*bitindex.Vector, p.Eta())}
	for l := range si.Levels {
		v := bitindex.NewOnes(p.R)
		for _, z := range zeros[:zerosPerLevel[l]] {
			v.SetBit(z, 0)
		}
		si.Levels[l] = v
	}
	return si
}

// queryFor builds a query matching si at least to the given level: its few
// zero bits are drawn from si's level-(lvl+1) zeros.
func queryFor(rng *rand.Rand, p core.Params, si *core.SearchIndex, lvl int) *bitindex.Vector {
	q := bitindex.NewOnes(p.R)
	zp := si.Levels[lvl].ZeroPositions()
	for _, i := range rng.Perm(len(zp))[:3] {
		q.SetBit(zp[i], 0)
	}
	return q
}

// op is one scripted mutation, applied identically to engines and reference
// servers.
type op struct {
	del bool
	id  string
	si  *core.SearchIndex
	doc *core.EncryptedDocument
}

type mutator interface {
	Upload(*core.SearchIndex, *core.EncryptedDocument) error
	Delete(string) error
}

func applyOps(t testing.TB, m mutator, ops []op) {
	t.Helper()
	for i, o := range ops {
		var err error
		if o.del {
			err = m.Delete(o.id)
		} else {
			err = m.Upload(o.si, o.doc)
		}
		if err != nil {
			t.Fatalf("op %d (%+v): %v", i, o.del, err)
		}
	}
}

// genOps scripts n mutations: uploads, re-uploads of live IDs with fresh
// indices, and deletes. The final op is always an upload, so crash tests
// cutting the last record have a meaty record to cut.
func genOps(rng *rand.Rand, p core.Params, n int) []op {
	var ops []op
	var live []string
	next := 0
	for len(ops) < n {
		switch r := rng.Float64(); {
		case r < 0.2 && len(live) > 3 && len(ops) < n-1:
			i := rng.Intn(len(live))
			ops = append(ops, op{del: true, id: live[i]})
			live = append(live[:i], live[i+1:]...)
		case r < 0.35 && len(live) > 0 && len(ops) < n-1:
			id := live[rng.Intn(len(live))] // re-upload with a fresh index
			ops = append(ops, uploadOp(rng, p, id, fmt.Sprintf("v2 of %s", id)))
		default:
			id := fmt.Sprintf("doc-%04d", next)
			next++
			live = append(live, id)
			ops = append(ops, uploadOp(rng, p, id, fmt.Sprintf("body of %s", id)))
		}
	}
	return ops
}

func uploadOp(rng *rand.Rand, p core.Params, id, body string) op {
	si := randomIndex(rng, p, id)
	return op{id: id, si: si, doc: &core.EncryptedDocument{ID: id, Ciphertext: []byte(body), EncKey: []byte{0xEE}}}
}

// liveAfter returns the IDs a prefix of ops leaves stored.
func liveAfter(ops []op) map[string]bool {
	live := make(map[string]bool)
	for _, o := range ops {
		if o.del {
			delete(live, o.id)
		} else {
			live[o.id] = true
		}
	}
	return live
}

// queriesFor derives a deterministic query set from the scripted uploads.
func queriesFor(rng *rand.Rand, p core.Params, ops []op) []*bitindex.Vector {
	var qs []*bitindex.Vector
	for _, o := range ops {
		if o.del {
			continue
		}
		qs = append(qs, queryFor(rng, p, o.si, len(qs)%p.Eta()))
		if len(qs) == 8 {
			break
		}
	}
	return qs
}

// searchFingerprint renders every query's full and top-5 results — IDs,
// ranks and metadata bytes — into one string, the byte-identical-output
// check of the recovery tests.
func searchFingerprint(t testing.TB, srv *core.Server, qs []*bitindex.Vector) string {
	t.Helper()
	var b strings.Builder
	for qi, q := range qs {
		for _, tau := range []int{0, 5} {
			ms, err := srv.SearchTop(q, tau)
			if err != nil {
				t.Fatalf("query %d: %v", qi, err)
			}
			fmt.Fprintf(&b, "q%d tau%d:", qi, tau)
			for _, m := range ms {
				meta, err := m.Meta.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				fmt.Fprintf(&b, " %s/%d/%x", m.DocID, m.Rank, meta)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// referenceServer applies ops to a fresh server in a deliberately different
// shard layout than the engine default, so equality also covers layout
// independence.
func referenceServer(t testing.TB, p core.Params, ops []op) *core.Server {
	t.Helper()
	srv, err := core.NewServerSharded(p, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, srv, ops)
	return srv
}

func TestEngineRecoversAfterCrash(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(11))
	ops := genOps(rng, p, 60)
	qs := queriesFor(rand.New(rand.NewSource(12)), p, ops)
	dir := t.TempDir()

	e, err := Open(dir, p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, e, ops)
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	e.Crash()

	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatalf("recovering: %v", err)
	}
	defer re.Close()
	if got := re.Stats().ReplayedOps; got != len(ops) {
		t.Fatalf("replayed %d ops, want %d", got, len(ops))
	}
	want := searchFingerprint(t, referenceServer(t, p, ops), qs)
	if got := searchFingerprint(t, re.Server(), qs); got != want {
		t.Fatalf("recovered search output differs:\n got: %s\nwant: %s", got, want)
	}
	live := liveAfter(ops)
	if re.Server().NumDocuments() != len(live) {
		t.Fatalf("recovered %d documents, want %d", re.Server().NumDocuments(), len(live))
	}
	for _, o := range ops {
		if _, err := re.Server().Fetch(o.id); live[o.id] != (err == nil) {
			t.Fatalf("Fetch(%s) after recovery: live=%v err=%v", o.id, live[o.id], err)
		}
	}
}

func TestCheckpointCutsLogAndPrunes(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(21))
	ops := genOps(rng, p, 40)
	qs := queriesFor(rand.New(rand.NewSource(22)), p, ops)
	dir := t.TempDir()

	e, err := Open(dir, p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, e, ops[:25])
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.CheckpointLSN != 25 || st.Checkpoints != 1 {
		t.Fatalf("after checkpoint: %+v", st)
	}
	if st.LastCheckpointPause <= 0 || st.LastCheckpointWrite <= 0 {
		t.Fatalf("checkpoint timings not recorded: %+v", st)
	}
	ckpts, segs, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 1 || ckpts[0] != 25 || len(segs) != 1 || segs[0] != 25 {
		t.Fatalf("dir after checkpoint: ckpts=%v segs=%v, want one of each at 25", ckpts, segs)
	}
	// Checkpointing an unchanged engine is a no-op.
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Checkpoints; got != 1 {
		t.Fatalf("no-op checkpoint ran anyway: %d", got)
	}

	applyOps(t, e, ops[25:])
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	e.Crash()

	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Stats().ReplayedOps; got != len(ops)-25 {
		t.Fatalf("replayed %d ops, want only the %d past the checkpoint", got, len(ops)-25)
	}
	want := searchFingerprint(t, referenceServer(t, p, ops), qs)
	if got := searchFingerprint(t, re.Server(), qs); got != want {
		t.Fatal("recovered search output differs after checkpoint + replay")
	}
}

func TestCloseCheckpointsAndReopensReplayFree(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(31))
	ops := genOps(rng, p, 30)
	qs := queriesFor(rand.New(rand.NewSource(32)), p, ops)
	dir := t.TempDir()

	e, err := Open(dir, p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, e, ops)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Upload(ops[0].si, ops[0].doc); !errors.Is(err, ErrClosed) {
		t.Fatalf("Upload after Close = %v, want ErrClosed", err)
	}
	if err := e.Delete(ops[0].id); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close = %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Stats().ReplayedOps; got != 0 {
		t.Fatalf("clean shutdown still replayed %d ops", got)
	}
	want := searchFingerprint(t, referenceServer(t, p, ops), qs)
	if got := searchFingerprint(t, re.Server(), qs); got != want {
		t.Fatal("search output differs after clean shutdown")
	}
}

func TestAutomaticCheckpoints(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(41))
	dir := t.TempDir()
	e, err := Open(dir, p, Options{Fsync: FsyncNever, CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	applyOps(t, e, genOps(rng, p, 40))
	// The trigger is asynchronous; give the background checkpointer a
	// moment before declaring it broken.
	for i := 0; i < 200 && e.Stats().Checkpoints == 0; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	st := e.Stats()
	if st.Checkpoints == 0 || st.CheckpointLSN == 0 {
		t.Fatalf("no automatic checkpoint after 40 ops with CheckpointEvery=8: %+v", st)
	}
}

func TestOpenCreatesMissingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "not", "there", "yet")
	e, err := Open(dir, testParams(), Options{})
	if err != nil {
		t.Fatalf("Open on a missing directory: %v", err)
	}
	defer e.Close()
	if n := e.Server().NumDocuments(); n != 0 {
		t.Fatalf("fresh engine holds %d documents", n)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("data dir not created: %v", err)
	}
}

func TestTornFinalRecordTolerated(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(51))
	ops := genOps(rng, p, 20)
	qs := queriesFor(rand.New(rand.NewSource(52)), p, ops)
	dir := t.TempDir()

	e, err := Open(dir, p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, e, ops)
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	e.Crash()

	// A crash mid-append leaves a partial frame at the tail.
	seg := filepath.Join(dir, segName(0))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x00, 0x00, 0x00, 0xAA}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatalf("recovery with torn tail: %v", err)
	}
	if got := re.Stats().ReplayedOps; got != len(ops) {
		t.Fatalf("replayed %d ops, want %d", got, len(ops))
	}
	want := searchFingerprint(t, referenceServer(t, p, ops), qs)
	if got := searchFingerprint(t, re.Server(), qs); got != want {
		t.Fatal("recovered search output differs with torn tail")
	}
	// The tail was truncated away: the engine can append and recover again.
	extra := uploadOp(rng, p, "post-crash", "appended after recovery")
	if err := re.Upload(extra.si, extra.doc); err != nil {
		t.Fatal(err)
	}
	if err := re.Sync(); err != nil {
		t.Fatal(err)
	}
	re.Crash()
	re2, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := re2.Stats().ReplayedOps; got != len(ops)+1 {
		t.Fatalf("second recovery replayed %d ops, want %d", got, len(ops)+1)
	}
	if _, err := re2.Server().Fetch("post-crash"); err != nil {
		t.Fatalf("post-recovery upload lost: %v", err)
	}
}

// Corruption in a segment that is NOT the last one cannot be a torn write;
// skipping it would silently drop acknowledged mutations, so Open must fail.
func TestMidLogCorruptionFailsRecovery(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(61))
	ops := genOps(rng, p, 10)
	dir := t.TempDir()

	e, err := Open(dir, p, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, e, ops)
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	e.Crash()

	// Simulate a crash after segment rotation but before the checkpoint
	// write: a later, empty segment exists.
	if err := os.WriteFile(filepath.Join(dir, segName(10)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// Sanity: that layout alone recovers fine.
	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatalf("rotated-but-uncheckpointed layout should recover: %v", err)
	}
	if got := re.Stats().ReplayedOps; got != len(ops) {
		t.Fatalf("replayed %d, want %d", got, len(ops))
	}
	re.Crash()

	// Now flip one payload byte in the middle of the first segment.
	seg := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, p, Options{}); err == nil {
		t.Fatal("recovery over mid-log corruption with later segments succeeded; acknowledged ops were silently dropped")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"never", FsyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseFsyncPolicy(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", c.in, got, err)
		}
		if c.ok && got.String() != c.in {
			t.Errorf("String() round trip of %q = %q", c.in, got.String())
		}
	}
}
