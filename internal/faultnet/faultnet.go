// Package faultnet is a fault-injecting TCP proxy for failure-mode tests: it
// forwards bytes between clients and a target address until told to stall
// (hold every byte without closing anything — a network partition with
// half-open connections), sever (cut every connection and refuse new
// ones — a crashed host), or delay (add a fixed latency before every
// forwarded chunk — a slow link, for latency-attribution tests). Faults
// apply to live connections, not just new ones, which is what lets a test
// freeze an established replication stream mid-flight.
package faultnet

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy forwards TCP connections to a target, injecting faults on command.
type Proxy struct {
	target string
	l      net.Listener

	mu      sync.Mutex
	cond    *sync.Cond // broadcast on every state change
	stalled bool
	severed bool
	closed  bool
	conns   map[net.Conn]struct{} // both legs of every live connection

	// delay is the fixed latency (nanoseconds) injected before each
	// forwarded chunk; atomic so SetDelay needs no lock and pump reads it
	// per chunk, picking up changes on live connections.
	delay atomic.Int64

	wg sync.WaitGroup
}

// Listen starts a proxy on an ephemeral localhost port forwarding to target.
func Listen(target string) (*Proxy, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultnet: %w", err)
	}
	p := &Proxy{target: target, l: l, conns: make(map[net.Conn]struct{})}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — the address to hand to the
// component whose link is under test.
func (p *Proxy) Addr() string { return p.l.Addr().String() }

// Target returns the address the proxy forwards to.
func (p *Proxy) Target() string { return p.target }

// SetDelay injects a fixed latency before every forwarded chunk in both
// directions, on live and future connections alike (0 restores full-speed
// forwarding). Unlike Stall it never holds bytes indefinitely — traffic
// flows, just late — so a request through a delayed proxy completes with
// its wall-clock inflated by at least d per traversal, which is exactly
// what a tracing test needs to pin latency on one partition's link.
func (p *Proxy) SetDelay(d time.Duration) {
	p.delay.Store(int64(d))
}

// Stall freezes the proxy: established connections stay open but no byte
// moves in either direction until Resume. New connections are accepted and
// immediately freeze too — the half-open-network failure mode.
func (p *Proxy) Stall() {
	p.mu.Lock()
	p.stalled = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Sever cuts the proxy: every live connection is closed and new ones are
// accepted and dropped until Resume — the crashed-host failure mode.
func (p *Proxy) Sever() {
	p.mu.Lock()
	p.severed = true
	for c := range p.conns {
		c.Close()
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Resume lifts any stall or sever: stalled bytes flow again, new
// connections forward normally. Connections cut by Sever stay cut — their
// owners must reconnect.
func (p *Proxy) Resume() {
	p.mu.Lock()
	p.stalled = false
	p.severed = false
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Close shuts the proxy down, cutting every connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.l.Close()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.l.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed || p.severed {
			p.mu.Unlock()
			client.Close()
			continue
		}
		p.mu.Unlock()
		upstream, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		p.track(client)
		p.track(upstream)
		p.wg.Add(2)
		go p.pump(upstream, client)
		go p.pump(client, upstream)
	}
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

// pump copies src→dst one read at a time, consulting the fault gate before
// every write so a Stall freezes data already in flight.
func (p *Proxy) pump(dst, src net.Conn) {
	defer p.wg.Done()
	defer p.untrack(src)
	defer p.untrack(dst)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			if d := p.delay.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			if !p.gate() {
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if rerr != nil {
			if rerr != io.EOF {
				return
			}
			// Half-close: let the other pump finish independently.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}

// gate blocks while the proxy is stalled and reports whether forwarding may
// proceed (false: severed or closed — drop the connection).
func (p *Proxy) gate() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.stalled && !p.severed && !p.closed {
		p.cond.Wait()
	}
	return !p.severed && !p.closed
}
