package faultnet

import (
	"net"
	"testing"
	"time"
)

// startEcho runs a TCP echo server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String()
}

func echoOnce(t *testing.T, conn net.Conn, msg string) error {
	t.Helper()
	if _, err := conn.Write([]byte(msg)); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
	buf := make([]byte, len(msg))
	_, err := conn.Read(buf)
	return err
}

func TestProxyForwardsStallsAndSevers(t *testing.T) {
	p, err := Listen(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := echoOnce(t, conn, "hello"); err != nil {
		t.Fatalf("echo through healthy proxy: %v", err)
	}

	// Stall: the connection stays open but bytes freeze...
	p.Stall()
	if err := echoOnce(t, conn, "frozen"); err == nil {
		t.Fatal("bytes flowed through a stalled proxy")
	}
	// ...and Resume releases the bytes held in flight.
	p.Resume()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 6)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("stalled bytes were not delivered after Resume: %v", err)
	}

	// Sever: live connections are cut and new ones refused.
	p.Sever()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := echoOnce(t, conn, "dead"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("severed connection kept echoing")
		}
	}
	c2, err := net.Dial("tcp", p.Addr())
	if err == nil {
		if err := echoOnce(t, c2, "nope"); err == nil {
			t.Fatal("new connection echoed through a severed proxy")
		}
		c2.Close()
	}

	// Resume restores service for fresh connections.
	p.Resume()
	c3, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if err := echoOnce(t, c3, "again"); err != nil {
		t.Fatalf("echo after Resume: %v", err)
	}
}

func TestProxyDelay(t *testing.T) {
	p, err := Listen(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := echoOnce(t, conn, "warm"); err != nil {
		t.Fatalf("echo through healthy proxy: %v", err)
	}

	// A 50ms per-chunk delay applies to both directions, so one echo round
	// trip through the proxy costs at least 100ms of injected latency.
	p.SetDelay(50 * time.Millisecond)
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("echo through delayed proxy: %v", err)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("delayed round trip took %v, want >= 100ms", d)
	}

	// Clearing the delay restores full-speed forwarding on the live
	// connection.
	p.SetDelay(0)
	start = time.Now()
	if err := echoOnce(t, conn, "fast"); err != nil {
		t.Fatalf("echo after clearing delay: %v", err)
	}
	if d := time.Since(start); d >= 50*time.Millisecond {
		t.Fatalf("cleared delay still slow: %v", d)
	}
}
