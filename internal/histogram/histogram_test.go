package histogram

import (
	"math"
	"strings"
	"testing"
)

func TestNewPanicsOnBadGeometry(t *testing.T) {
	cases := []struct{ lo, hi, w int }{{0, 10, 0}, {0, 10, -1}, {10, 10, 1}, {10, 5, 1}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d,%d) did not panic", c.lo, c.hi, c.w)
				}
			}()
			New(c.lo, c.hi, c.w)
		}()
	}
}

func TestAddAndBuckets(t *testing.T) {
	h := New(100, 200, 10)
	h.AddAll([]int{100, 105, 109, 110, 199, 150})
	bks := h.Buckets()
	if len(bks) != 10 {
		t.Fatalf("%d buckets, want 10", len(bks))
	}
	if bks[0].Count != 3 {
		t.Errorf("bucket [100,110) count = %d, want 3", bks[0].Count)
	}
	if bks[1].Count != 1 {
		t.Errorf("bucket [110,120) count = %d, want 1", bks[1].Count)
	}
	if bks[9].Count != 1 {
		t.Errorf("bucket [190,200) count = %d, want 1", bks[9].Count)
	}
	if h.N() != 6 {
		t.Errorf("N = %d, want 6", h.N())
	}
}

// BucketIndex is the shared bucket math (Figure 2 histograms here, latency
// histograms in internal/telemetry): half-open [lo, hi) buckets, so a value
// exactly on a bound belongs to the next bucket, with out-of-range values
// clamped into the end buckets.
func TestBucketIndexBoundaries(t *testing.T) {
	const lo, width, nb = 100, 10, 5 // buckets [100,110) … [140,150)
	cases := []struct{ v, want int }{
		{99, 0},   // below range clamps to first
		{100, 0},  // inclusive lower bound
		{109, 0},  // last value of bucket 0
		{110, 1},  // exactly on a bound → next bucket
		{149, 4},  // last in-range value
		{150, 4},  // hi clamps to last
		{1000, 4}, // far past range clamps to last
		{-50, 0},  // negative clamps to first
	}
	for _, c := range cases {
		if got := BucketIndex(lo, width, nb, c.v); got != c.want {
			t.Errorf("BucketIndex(%d,%d,%d,%d) = %d, want %d", lo, width, nb, c.v, got, c.want)
		}
	}
}

func TestAddClampsOutOfRange(t *testing.T) {
	h := New(0, 100, 10)
	h.Add(-5)
	h.Add(1000)
	bks := h.Buckets()
	if bks[0].Count != 1 || bks[len(bks)-1].Count != 1 {
		t.Error("out-of-range samples not clamped to end buckets")
	}
	if h.N() != 2 {
		t.Errorf("N = %d, want 2", h.N())
	}
}

func TestMeanStdDev(t *testing.T) {
	h := New(0, 100, 1)
	h.AddAll([]int{10, 20, 30})
	if math.Abs(h.Mean()-20) > 1e-12 {
		t.Errorf("Mean = %v, want 20", h.Mean())
	}
	if math.Abs(h.StdDev()-10) > 1e-12 {
		t.Errorf("StdDev = %v, want 10", h.StdDev())
	}
}

func TestMeanEmptyIsNaN(t *testing.T) {
	h := New(0, 10, 1)
	if !math.IsNaN(h.Mean()) {
		t.Error("Mean of empty histogram should be NaN")
	}
	if !math.IsNaN(h.StdDev()) {
		t.Error("StdDev of empty histogram should be NaN")
	}
}

func TestMassBelowAndAt(t *testing.T) {
	h := New(100, 200, 10)
	// 4 below 150, 2 in [150,160), 4 above.
	h.AddAll([]int{110, 120, 130, 140, 150, 155, 160, 170, 180, 190})
	if got := h.MassBelow(150); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("MassBelow(150) = %v, want 0.4", got)
	}
	if got := h.MassAt(150); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("MassAt(150) = %v, want 0.2", got)
	}
	if got := h.MassBelow(100); got != 0 {
		t.Errorf("MassBelow(lo) = %v, want 0", got)
	}
	if got := h.MassBelow(200); math.Abs(got-1) > 1e-12 {
		t.Errorf("MassBelow(hi) = %v, want 1", got)
	}
}

func TestRenderShape(t *testing.T) {
	h := New(0, 30, 10)
	h.AddAll([]int{5, 5, 5, 5, 15, 25, 25})
	s := h.Render(20)
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[0], strings.Repeat("#", 20)) {
		t.Errorf("largest bucket not rendered at full width:\n%s", s)
	}
	if !strings.Contains(lines[0], "4") {
		t.Errorf("count missing from row:\n%s", s)
	}
}

func TestRenderPair(t *testing.T) {
	a := New(0, 20, 10)
	b := New(0, 20, 10)
	a.AddAll([]int{1, 2, 3})
	b.AddAll([]int{11, 12})
	s := RenderPair("different", a, "same", b)
	if !strings.Contains(s, "different") || !strings.Contains(s, "same") {
		t.Errorf("labels missing:\n%s", s)
	}
	if !strings.Contains(s, "total") {
		t.Errorf("total row missing:\n%s", s)
	}
}

func TestRenderPairGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on geometry mismatch")
		}
	}()
	RenderPair("a", New(0, 10, 1), "b", New(0, 20, 1))
}

func TestOverlapCoefficient(t *testing.T) {
	a := New(0, 20, 10)
	b := New(0, 20, 10)
	a.AddAll([]int{1, 2, 3, 4})
	b.AddAll([]int{1, 2, 3, 4})
	if got := OverlapCoefficient(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical distributions overlap %v, want 1", got)
	}
	c := New(0, 20, 10)
	c.AddAll([]int{11, 12, 13})
	if got := OverlapCoefficient(a, c); got != 0 {
		t.Errorf("disjoint distributions overlap %v, want 0", got)
	}
	d := New(0, 20, 10)
	d.AddAll([]int{1, 11})
	if got := OverlapCoefficient(a, d); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("half-overlapping distributions overlap %v, want 0.5", got)
	}
}

func TestQuantile(t *testing.T) {
	h := New(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(i)
	}
	med := h.Quantile(0.5)
	if med < 40 || med > 60 {
		t.Errorf("median %v outside [40,60]", med)
	}
	if !math.IsNaN(New(0, 10, 1).Quantile(0.5)) {
		t.Error("quantile of empty histogram should be NaN")
	}
	if !math.IsNaN(h.Quantile(1.5)) {
		t.Error("out-of-range q should give NaN")
	}
}

func TestSortedComplete(t *testing.T) {
	h := New(0, 30, 10)
	h.AddAll([]int{5, 15, 25, 25})
	m := h.Sorted()
	if len(m) != 3 {
		t.Fatalf("Sorted has %d keys, want 3", len(m))
	}
	if m[20] != 2 {
		t.Errorf("Sorted[20] = %d, want 2", m[20])
	}
}
