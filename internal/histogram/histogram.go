// Package histogram provides the fixed-width bucketing and text rendering
// used to regenerate the query-distance histograms of Figure 2.
package histogram

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram buckets integer-valued observations into fixed-width bins
// [lo, lo+width), [lo+width, lo+2·width), …. Observations outside
// [Lo, Hi) are clamped into the first or last bucket so no sample is lost.
type Histogram struct {
	Lo, Hi, Width int
	counts        []int
	n             int
	sum           float64
	sumSq         float64
}

// New creates a histogram over [lo, hi) with the given bucket width.
// It panics on a degenerate range or width, which is a programming error.
func New(lo, hi, width int) *Histogram {
	if width <= 0 || hi <= lo {
		panic(fmt.Sprintf("histogram: invalid range [%d,%d) width %d", lo, hi, width))
	}
	nb := (hi - lo + width - 1) / width
	return &Histogram{Lo: lo, Hi: hi, Width: width, counts: make([]int, nb)}
}

// BucketIndex maps observation v onto one of nb fixed-width buckets
// [lo, lo+width), [lo+width, lo+2·width), …, clamping out-of-range values
// into the first or last bucket so no sample is ever lost. It is the single
// source of the package's bucket math, shared by the Figure 2 histograms
// here and by internal/telemetry's latency histograms (whose final bucket
// doubles as the Prometheus +Inf bucket via the same clamp).
func BucketIndex(lo, width, nb, v int) int {
	if v < lo {
		return 0
	}
	idx := (v - lo) / width
	if idx >= nb {
		return nb - 1
	}
	return idx
}

// Add records one observation.
func (h *Histogram) Add(v int) {
	h.counts[BucketIndex(h.Lo, h.Width, len(h.counts), v)]++
	h.n++
	h.sum += float64(v)
	h.sumSq += float64(v) * float64(v)
}

// AddAll records a batch of observations.
func (h *Histogram) AddAll(vs []int) {
	for _, v := range vs {
		h.Add(v)
	}
}

// N returns the number of observations.
func (h *Histogram) N() int { return h.n }

// Mean returns the sample mean, or NaN when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.n)
}

// StdDev returns the sample standard deviation, or NaN with < 2 samples.
func (h *Histogram) StdDev() float64 {
	if h.n < 2 {
		return math.NaN()
	}
	mean := h.Mean()
	return math.Sqrt((h.sumSq - float64(h.n)*mean*mean) / float64(h.n-1))
}

// Bucket describes one bucket of the histogram.
type Bucket struct {
	Lo, Hi int // [Lo, Hi)
	Count  int
}

// Buckets returns the buckets in order.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, len(h.counts))
	for i, c := range h.counts {
		out[i] = Bucket{Lo: h.Lo + i*h.Width, Hi: h.Lo + (i+1)*h.Width, Count: c}
	}
	return out
}

// MassBelow returns the fraction of observations in buckets strictly below
// the bucket containing v — the machinery behind the paper's "45% of the
// time the distances are smaller than 150" reading of Figure 2(b).
func (h *Histogram) MassBelow(v int) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	idx := (v - h.Lo) / h.Width
	if v < h.Lo {
		idx = 0
	} else if idx >= len(h.counts) {
		idx = len(h.counts)
	}
	c := 0
	for i := 0; i < idx; i++ {
		c += h.counts[i]
	}
	return float64(c) / float64(h.n)
}

// MassAt returns the fraction of observations falling into the bucket that
// contains v.
func (h *Histogram) MassAt(v int) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	idx := (v - h.Lo) / h.Width
	if v < h.Lo || idx >= len(h.counts) {
		return 0
	}
	return float64(h.counts[idx]) / float64(h.n)
}

// Render draws the histogram as fixed-width ASCII rows:
//
//	[140,150)  ████████████████ 312
//
// scaled so the largest bucket occupies maxBar characters.
func (h *Histogram) Render(maxBar int) string {
	if maxBar <= 0 {
		maxBar = 50
	}
	peak := 0
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for _, bk := range h.Buckets() {
		bar := 0
		if peak > 0 {
			bar = bk.Count * maxBar / peak
		}
		fmt.Fprintf(&b, "[%4d,%4d) %-*s %d\n", bk.Lo, bk.Hi, maxBar, strings.Repeat("#", bar), bk.Count)
	}
	return b.String()
}

// RenderPair renders two histograms side by side with shared buckets, the
// layout of Figure 2 ("different qry" vs "same qry"). Both histograms must
// have identical geometry.
func RenderPair(labelA string, a *Histogram, labelB string, b *Histogram) string {
	if a.Lo != b.Lo || a.Hi != b.Hi || a.Width != b.Width {
		panic("histogram: RenderPair requires identical geometry")
	}
	var out strings.Builder
	fmt.Fprintf(&out, "%-12s %10s %10s\n", "distance", labelA, labelB)
	ba, bb := a.Buckets(), b.Buckets()
	for i := range ba {
		fmt.Fprintf(&out, "[%4d,%4d) %10d %10d\n", ba[i].Lo, ba[i].Hi, ba[i].Count, bb[i].Count)
	}
	fmt.Fprintf(&out, "%-12s %10d %10d\n", "total", a.N(), b.N())
	fmt.Fprintf(&out, "%-12s %10.1f %10.1f\n", "mean", a.Mean(), b.Mean())
	return out.String()
}

// OverlapCoefficient returns the histogram overlap Σ min(pA_i, pB_i) of the
// two normalized distributions — 1.0 means indistinguishable histograms,
// 0.0 means disjoint support. This quantifies the paper's claim that an
// adversary "basically needs to make a random guess" between the same-query
// and different-query distance distributions.
func OverlapCoefficient(a, b *Histogram) float64 {
	if a.Lo != b.Lo || a.Hi != b.Hi || a.Width != b.Width {
		panic("histogram: OverlapCoefficient requires identical geometry")
	}
	if a.n == 0 || b.n == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range a.counts {
		pa := float64(a.counts[i]) / float64(a.n)
		pb := float64(b.counts[i]) / float64(b.n)
		sum += math.Min(pa, pb)
	}
	return sum
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the raw observations,
// approximated from bucket midpoints.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	target := int(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	acc := 0
	for i, c := range h.counts {
		acc += c
		if acc >= target {
			return float64(h.Lo+i*h.Width) + float64(h.Width)/2
		}
	}
	return float64(h.Hi)
}

// Sorted returns bucket counts keyed by lower bound, for stable test output.
func (h *Histogram) Sorted() map[int]int {
	m := make(map[int]int, len(h.counts))
	for _, b := range h.Buckets() {
		m[b.Lo] = b.Count
	}
	// Defensive: map iteration is unordered, but keys are complete; callers
	// who want order use Buckets. Sorted exists for test convenience.
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return m
}
