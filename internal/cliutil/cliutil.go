// Package cliutil holds small flag-parsing helpers shared by the mkse
// commands.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"mkse/internal/rank"
)

// ParseLevels parses a comma-separated ascending threshold list ("1,5,10")
// into ranking levels.
func ParseLevels(s string) (rank.Levels, error) {
	ints, err := ParseInts(s)
	if err != nil {
		return nil, err
	}
	lv := rank.Levels(ints)
	if err := lv.Validate(); err != nil {
		return nil, err
	}
	return lv, nil
}

// ParseInts parses a comma-separated list of positive integers.
func ParseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid value %q (want positive integers, comma-separated)", p)
		}
		out = append(out, n)
	}
	return out, nil
}
