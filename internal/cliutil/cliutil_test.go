package cliutil

import "testing"

func TestParseInts(t *testing.T) {
	got, err := ParseInts("1, 5,10")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 5 || got[2] != 10 {
		t.Errorf("ParseInts = %v", got)
	}
	for _, bad := range []string{"", "a", "1,,2", "0", "-3", "1,x"} {
		if _, err := ParseInts(bad); err == nil {
			t.Errorf("ParseInts(%q) accepted", bad)
		}
	}
}

func TestParseLevels(t *testing.T) {
	lv, err := ParseLevels("1,5,10")
	if err != nil {
		t.Fatal(err)
	}
	if lv.Eta() != 3 {
		t.Errorf("Eta = %d", lv.Eta())
	}
	if _, err := ParseLevels("5,1"); err == nil {
		t.Error("descending levels accepted")
	}
}
