package cliutil

import (
	"fmt"
	"log/slog"
	"os"
)

// NewLogger builds the structured logger behind every daemon's -log-format
// and -log-level flags: slog on stderr, "text" (human-oriented key=value)
// or "json" (one object per line, for log shippers), at debug, info, warn
// or error. The binary's name rides along as the bin attribute so merged
// multi-daemon logs stay attributable.
func NewLogger(binary, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("invalid -log-format %q (want text or json)", format)
	}
	return slog.New(h).With("bin", binary), nil
}
