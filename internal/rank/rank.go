// Package rank implements the ranking side of the MKS scheme (Örencik &
// Savaş, Section 5): the η-level cumulative term-frequency thresholds that
// drive Algorithm 1, the reference relevance score of Equation 4 (the
// Zobel–Moffat formula also used by Wang et al. [13]), and the top-k
// agreement metrics with which the paper validates its level-based ranking
// against the reference score.
package rank

import (
	"fmt"
	"math"
	"sort"
)

// Levels is an ascending list of term-frequency thresholds, one per ranking
// level. Levels[0] is the threshold of level 1 (conventionally 1: "level 1
// index includes keywords that occur at least once"); the last entry is the
// highest, most selective level. η = len(Levels).
type Levels []int

// DefaultLevels returns η evenly spread thresholds over [1, maxTF]: for the
// paper's η = 3 example with thresholds 1, 5, 10 use Levels{1, 5, 10}
// directly; DefaultLevels is a convenience for sweeps over η.
func DefaultLevels(eta, maxTF int) Levels {
	if eta <= 0 {
		panic(fmt.Sprintf("rank: invalid level count %d", eta))
	}
	if maxTF < 1 {
		maxTF = 1
	}
	out := make(Levels, eta)
	for i := range out {
		// Level 1 at threshold 1, then evenly spaced up to maxTF·(η−1)/η so
		// the top level remains attainable.
		out[i] = 1 + i*maxTF/(eta+1)
	}
	return out
}

// Validate checks that thresholds are positive and strictly ascending.
func (l Levels) Validate() error {
	if len(l) == 0 {
		return fmt.Errorf("rank: empty level list")
	}
	prev := 0
	for i, th := range l {
		if th <= prev {
			return fmt.Errorf("rank: thresholds must be positive and strictly ascending; level %d has %d after %d", i+1, th, prev)
		}
		prev = th
	}
	return nil
}

// KeywordsAtLevel returns the keywords of a document whose term frequency
// meets the given level's threshold. Because thresholds ascend, the sets are
// cumulative in descending direction exactly as the paper describes: "ith
// level index includes all keywords in the (i+1)th level and the keywords
// that have term frequency for the ith level".
func (l Levels) KeywordsAtLevel(tf map[string]int, level int) []string {
	if level < 1 || level > len(l) {
		panic(fmt.Sprintf("rank: level %d out of range [1,%d]", level, len(l)))
	}
	th := l[level-1]
	out := make([]string, 0, len(tf))
	for w, f := range tf {
		if f >= th {
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}

// Eta returns the number of levels η.
func (l Levels) Eta() int { return len(l) }

// CorpusStats carries the collection statistics Equation 4 needs: the number
// of files M in the database and, per term, the number of files f_t
// containing it.
type CorpusStats struct {
	M  int            // number of files in the database
	Ft map[string]int // documents containing each term
}

// NewCorpusStats scans term-frequency maps of the whole collection.
func NewCorpusStats(tfs []map[string]int) CorpusStats {
	ft := make(map[string]int)
	for _, tf := range tfs {
		for w := range tf {
			ft[w]++
		}
	}
	return CorpusStats{M: len(tfs), Ft: ft}
}

// Score evaluates Equation 4 for a document against a query W:
//
//	Score(W,R) = Σ_{t∈W} (1/|R|) · (1 + ln f_{R,t}) · ln(1 + M/f_t)
//
// Terms absent from the document contribute zero (f_{R,t} = 0 has no
// defined logarithm; the standard reading, which the paper's experiment
// follows, is that missing terms simply add nothing). |R| is the document
// length; the paper's study uses equal-length files, so docLen is a free
// normalization parameter — pass 1 for equal-length collections.
func (cs CorpusStats) Score(query []string, tf map[string]int, docLen float64) float64 {
	if docLen <= 0 {
		docLen = 1
	}
	s := 0.0
	for _, t := range query {
		fRt, ok := tf[t]
		if !ok || fRt <= 0 {
			continue
		}
		ft := cs.Ft[t]
		if ft <= 0 {
			continue
		}
		s += (1.0 / docLen) * (1 + math.Log(float64(fRt))) * math.Log(1+float64(cs.M)/float64(ft))
	}
	return s
}

// Ranked is one document with an attached score or level, ready to sort.
type Ranked struct {
	DocID string
	Score float64
}

// SortRanked orders by descending score, ties broken by DocID for
// determinism.
func SortRanked(rs []Ranked) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].DocID < rs[j].DocID
	})
}

// TopK returns the first k document IDs of a sorted ranking.
func TopK(rs []Ranked, k int) []string {
	if k > len(rs) {
		k = len(rs)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = rs[i].DocID
	}
	return out
}

// Agreement quantifies how well a candidate ranking reproduces a reference
// ranking, in the three statistics the paper reports (Section 5):
//
//   - TopInTopK: the reference's top-1 document appears in the candidate's
//     top k ("in 40% of the time, the top match ... is also the top match for
//     our proposed ranking method, and 100% of the time in the top 3").
//   - OverlapAtK: |top-k(ref) ∩ top-k(cand)| ("at least 4 of the top 5").
type Agreement struct {
	TopInTop1  bool
	TopInTop3  bool
	OverlapAt5 int
}

// Agree compares a candidate ranking to the reference ranking.
func Agree(reference, candidate []Ranked) Agreement {
	var a Agreement
	if len(reference) == 0 || len(candidate) == 0 {
		return a
	}
	top := reference[0].DocID
	for i, r := range TopK(candidate, 3) {
		if r == top {
			a.TopInTop3 = true
			if i == 0 {
				a.TopInTop1 = true
			}
		}
	}
	ref5 := make(map[string]bool, 5)
	for _, id := range TopK(reference, 5) {
		ref5[id] = true
	}
	for _, id := range TopK(candidate, 5) {
		if ref5[id] {
			a.OverlapAt5++
		}
	}
	return a
}

// AgreeTied computes agreement like Agree but gives the candidate ranking
// the benefit of tie ordering. Level-based ranks are coarse integers: many
// documents share a rank, and the server returns equally-ranked documents in
// unspecified order (the user retrieves "the top τ matches", Section 5, with
// no intra-rank order defined). A reference document therefore counts as
// "in the candidate's top k" if SOME tie-consistent ordering puts it there.
func AgreeTied(reference, candidate []Ranked) Agreement {
	var a Agreement
	if len(reference) == 0 || len(candidate) == 0 {
		return a
	}
	score := make(map[string]float64, len(candidate))
	for _, c := range candidate {
		score[c.DocID] = c.Score
	}
	top := reference[0].DocID
	if s, ok := score[top]; ok {
		// Documents strictly above the reference top-1 in the candidate.
		above := 0
		for _, c := range candidate {
			if c.Score > s {
				above++
			}
		}
		a.TopInTop1 = above == 0
		a.TopInTop3 = above < 3
	}
	// Optimistic top-5 overlap: fill five slots in descending score order,
	// preferring reference-top-5 members inside each tie group.
	ref5 := make(map[string]bool, 5)
	for _, id := range TopK(reference, 5) {
		ref5[id] = true
	}
	groups := make(map[float64][2]int) // score → (ref5 members, others)
	for _, c := range candidate {
		g := groups[c.Score]
		if ref5[c.DocID] {
			g[0]++
		} else {
			g[1]++
		}
		groups[c.Score] = g
	}
	scores := make([]float64, 0, len(groups))
	for s := range groups {
		scores = append(scores, s)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	slots := 5
	for _, s := range scores {
		if slots == 0 {
			break
		}
		g := groups[s]
		take := g[0]
		if take > slots {
			take = slots
		}
		a.OverlapAt5 += take
		slots -= take
		// Non-ref members of this tie group only consume slots if the whole
		// group fits above lower groups; optimistically they yield to ref
		// members, but once ref members are exhausted the remaining slots
		// are consumed by the rest of the group before lower scores.
		rest := g[1]
		if rest > slots {
			rest = slots
		}
		slots -= rest
	}
	return a
}

// LevelScore converts a document's term frequencies into its true rank level
// for a query — the highest level at which *every* query keyword clears the
// threshold. Returns 0 when some query keyword is absent entirely. This is
// the plaintext ground truth the encrypted Algorithm 1 must reproduce; the
// paper notes "the rank of the document is identified with the least
// frequent keyword of the query".
func (l Levels) LevelScore(query []string, tf map[string]int) int {
	minTF := math.MaxInt
	for _, q := range query {
		f, ok := tf[q]
		if !ok {
			return 0
		}
		if f < minTF {
			minTF = f
		}
	}
	level := 0
	for i, th := range l {
		if minTF >= th {
			level = i + 1
		}
	}
	return level
}
