package rank

import (
	"math"
	"testing"
)

func TestDefaultLevels(t *testing.T) {
	l := DefaultLevels(5, 15)
	if err := l.Validate(); err != nil {
		t.Fatalf("DefaultLevels invalid: %v", err)
	}
	if len(l) != 5 {
		t.Fatalf("len = %d, want 5", len(l))
	}
	if l[0] != 1 {
		t.Errorf("level 1 threshold = %d, want 1", l[0])
	}
}

func TestDefaultLevelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DefaultLevels(0, 10) did not panic")
		}
	}()
	DefaultLevels(0, 10)
}

func TestValidate(t *testing.T) {
	cases := []struct {
		l  Levels
		ok bool
	}{
		{Levels{1, 5, 10}, true},
		{Levels{1}, true},
		{Levels{}, false},
		{Levels{0, 5}, false},
		{Levels{1, 1}, false},
		{Levels{5, 3}, false},
	}
	for _, c := range cases {
		err := c.l.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v) err=%v, want ok=%v", c.l, err, c.ok)
		}
	}
}

func TestKeywordsAtLevelCumulative(t *testing.T) {
	// Paper example: η=3, thresholds 1, 5, 10.
	l := Levels{1, 5, 10}
	tf := map[string]int{"rare": 1, "mid": 6, "hot": 12}
	lvl1 := l.KeywordsAtLevel(tf, 1)
	lvl2 := l.KeywordsAtLevel(tf, 2)
	lvl3 := l.KeywordsAtLevel(tf, 3)
	if len(lvl1) != 3 {
		t.Errorf("level 1 = %v, want all three", lvl1)
	}
	if len(lvl2) != 2 {
		t.Errorf("level 2 = %v, want [hot mid]", lvl2)
	}
	if len(lvl3) != 1 || lvl3[0] != "hot" {
		t.Errorf("level 3 = %v, want [hot]", lvl3)
	}
	// Cumulative: every level-(i+1) keyword appears at level i.
	in := func(set []string, w string) bool {
		for _, s := range set {
			if s == w {
				return true
			}
		}
		return false
	}
	for _, w := range lvl3 {
		if !in(lvl2, w) || !in(lvl1, w) {
			t.Errorf("keyword %q at level 3 missing from lower levels", w)
		}
	}
	for _, w := range lvl2 {
		if !in(lvl1, w) {
			t.Errorf("keyword %q at level 2 missing from level 1", w)
		}
	}
}

func TestKeywordsAtLevelPanics(t *testing.T) {
	l := Levels{1, 5}
	for _, lvl := range []int{0, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KeywordsAtLevel(level=%d) did not panic", lvl)
				}
			}()
			l.KeywordsAtLevel(map[string]int{}, lvl)
		}()
	}
}

func TestNewCorpusStats(t *testing.T) {
	tfs := []map[string]int{
		{"a": 1, "b": 2},
		{"b": 5},
		{"c": 1},
	}
	cs := NewCorpusStats(tfs)
	if cs.M != 3 {
		t.Errorf("M = %d, want 3", cs.M)
	}
	if cs.Ft["b"] != 2 || cs.Ft["a"] != 1 || cs.Ft["c"] != 1 {
		t.Errorf("Ft = %v", cs.Ft)
	}
}

func TestScoreEquation4(t *testing.T) {
	cs := CorpusStats{M: 1000, Ft: map[string]int{"x": 200, "y": 200}}
	tf := map[string]int{"x": 5, "y": 1}
	got := cs.Score([]string{"x", "y"}, tf, 1)
	want := (1 + math.Log(5)) * math.Log(1+1000.0/200) // x term
	want += (1 + math.Log(1)) * math.Log(1+1000.0/200) // y term
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Score = %v, want %v", got, want)
	}
}

func TestScoreMissingTermsContributeZero(t *testing.T) {
	cs := CorpusStats{M: 10, Ft: map[string]int{"x": 2}}
	if s := cs.Score([]string{"missing"}, map[string]int{"x": 3}, 1); s != 0 {
		t.Errorf("missing term scored %v, want 0", s)
	}
}

func TestScoreMonotoneInTermFrequency(t *testing.T) {
	cs := CorpusStats{M: 1000, Ft: map[string]int{"x": 100}}
	prev := -1.0
	for f := 1; f <= 20; f++ {
		s := cs.Score([]string{"x"}, map[string]int{"x": f}, 1)
		if s <= prev {
			t.Fatalf("score not increasing at tf=%d", f)
		}
		prev = s
	}
}

func TestScoreDocLenNormalization(t *testing.T) {
	cs := CorpusStats{M: 100, Ft: map[string]int{"x": 10}}
	tf := map[string]int{"x": 3}
	long := cs.Score([]string{"x"}, tf, 10)
	short := cs.Score([]string{"x"}, tf, 1)
	if math.Abs(short-10*long) > 1e-12 {
		t.Errorf("1/|R| normalization broken: short=%v long=%v", short, long)
	}
	// Non-positive docLen falls back to 1.
	if cs.Score([]string{"x"}, tf, 0) != short {
		t.Error("docLen=0 did not fall back to 1")
	}
}

func TestSortRankedDeterministic(t *testing.T) {
	rs := []Ranked{{"b", 1}, {"a", 1}, {"c", 5}}
	SortRanked(rs)
	if rs[0].DocID != "c" || rs[1].DocID != "a" || rs[2].DocID != "b" {
		t.Errorf("sorted order %v", rs)
	}
}

func TestTopK(t *testing.T) {
	rs := []Ranked{{"a", 3}, {"b", 2}, {"c", 1}}
	if got := TopK(rs, 2); len(got) != 2 || got[0] != "a" {
		t.Errorf("TopK(2) = %v", got)
	}
	if got := TopK(rs, 10); len(got) != 3 {
		t.Errorf("TopK(10) = %v, want all 3", got)
	}
}

func TestAgree(t *testing.T) {
	ref := []Ranked{{"a", 9}, {"b", 8}, {"c", 7}, {"d", 6}, {"e", 5}, {"f", 4}}
	cand := []Ranked{{"a", 9}, {"c", 8}, {"x", 7}, {"d", 6}, {"e", 5}}
	ag := Agree(ref, cand)
	if !ag.TopInTop1 || !ag.TopInTop3 {
		t.Errorf("top-1 agreement not detected: %+v", ag)
	}
	if ag.OverlapAt5 != 4 { // a, c, d, e
		t.Errorf("OverlapAt5 = %d, want 4", ag.OverlapAt5)
	}

	cand2 := []Ranked{{"b", 9}, {"c", 8}, {"a", 7}}
	ag2 := Agree(ref, cand2)
	if ag2.TopInTop1 {
		t.Error("false top-1 agreement")
	}
	if !ag2.TopInTop3 {
		t.Error("top-3 agreement missed")
	}
}

func TestAgreeEmpty(t *testing.T) {
	ag := Agree(nil, []Ranked{{"a", 1}})
	if ag.TopInTop1 || ag.TopInTop3 || ag.OverlapAt5 != 0 {
		t.Errorf("empty reference should yield zero agreement: %+v", ag)
	}
}

func TestAgreeTiedRespectsStrictOrder(t *testing.T) {
	// Without ties AgreeTied must agree with Agree.
	ref := []Ranked{{"a", 9}, {"b", 8}, {"c", 7}, {"d", 6}, {"e", 5}, {"f", 4}}
	cand := []Ranked{{"a", 5}, {"c", 4}, {"x", 3}, {"d", 2}, {"e", 1}}
	strict := Agree(ref, cand)
	tied := AgreeTied(ref, cand)
	if strict != tied {
		t.Errorf("tie-free rankings disagree: Agree=%+v AgreeTied=%+v", strict, tied)
	}
}

func TestAgreeTiedGivesTieBenefit(t *testing.T) {
	ref := []Ranked{{"a", 9}, {"b", 8}, {"c", 7}, {"d", 6}, {"e", 5}}
	// Candidate: everything tied at rank 1 — any of the 6 docs could be
	// returned first, so optimistically the reference top-1 is top-1 and all
	// five reference docs fit in the top 5.
	cand := []Ranked{{"x", 1}, {"a", 1}, {"b", 1}, {"c", 1}, {"d", 1}, {"e", 1}}
	ag := AgreeTied(ref, cand)
	if !ag.TopInTop1 || !ag.TopInTop3 {
		t.Errorf("tie benefit not applied to top-1/top-3: %+v", ag)
	}
	if ag.OverlapAt5 != 5 {
		t.Errorf("OverlapAt5 = %d, want 5 (ties yield to reference members)", ag.OverlapAt5)
	}
}

func TestAgreeTiedHigherTierBlocks(t *testing.T) {
	ref := []Ranked{{"a", 9}, {"b", 8}}
	// Three docs strictly above a: a cannot be top-1 or top-3... it can be
	// 4th at best.
	cand := []Ranked{{"x", 3}, {"y", 3}, {"z", 3}, {"a", 1}}
	ag := AgreeTied(ref, cand)
	if ag.TopInTop1 || ag.TopInTop3 {
		t.Errorf("blocked top-1 counted: %+v", ag)
	}
	if ag.OverlapAt5 != 1 {
		t.Errorf("OverlapAt5 = %d, want 1", ag.OverlapAt5)
	}
}

func TestAgreeTiedMissingDoc(t *testing.T) {
	ref := []Ranked{{"a", 9}}
	cand := []Ranked{{"b", 1}}
	ag := AgreeTied(ref, cand)
	if ag.TopInTop1 || ag.TopInTop3 || ag.OverlapAt5 != 0 {
		t.Errorf("absent reference doc credited: %+v", ag)
	}
}

func TestLevelScore(t *testing.T) {
	l := Levels{1, 5, 10}
	cases := []struct {
		tf   map[string]int
		want int
	}{
		{map[string]int{"a": 12, "b": 11}, 3}, // both clear level 3
		{map[string]int{"a": 12, "b": 6}, 2},  // min tf 6 clears level 2
		{map[string]int{"a": 12, "b": 1}, 1},  // min tf 1 only level 1
		{map[string]int{"a": 12}, 0},          // b missing entirely
	}
	for i, c := range cases {
		if got := l.LevelScore([]string{"a", "b"}, c.tf); got != c.want {
			t.Errorf("case %d: LevelScore = %d, want %d", i, got, c.want)
		}
	}
}

// The paper's caveat: "Rank of two documents will be the same if one involves
// all the queried keywords infrequently and the other involves all the
// queried keywords frequently except one infrequent one."
func TestLevelScoreLeastFrequentKeywordDominates(t *testing.T) {
	l := Levels{1, 5, 10}
	allInfrequent := map[string]int{"a": 1, "b": 1, "c": 1}
	oneInfrequent := map[string]int{"a": 14, "b": 14, "c": 1}
	q := []string{"a", "b", "c"}
	if l.LevelScore(q, allInfrequent) != l.LevelScore(q, oneInfrequent) {
		t.Error("least-frequent-keyword property violated")
	}
}
