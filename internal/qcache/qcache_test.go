package qcache

import (
	"fmt"
	"sync"
	"testing"
)

func key(s string) Key { return Fingerprint(448, 10, []byte(s)) }

func TestGetPutRoundtrip(t *testing.T) {
	c := New[string](1<<20, 4)
	k := key("q1")
	if v, ok := c.Get(k, 7); ok || v != "" {
		t.Fatalf("empty cache hit: %q", v)
	}
	c.Put(k, 7, "result", 6)
	if v, ok := c.Get(k, 7); !ok || v != "result" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	// A different fingerprint misses.
	if _, ok := c.Get(key("q2"), 7); ok {
		t.Fatal("foreign key hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 2 misses / 1 entry", st)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint(448, 10, []byte("query-bytes"))
	if Fingerprint(448, 10, []byte("query-bytes")) != base {
		t.Fatal("fingerprint is not deterministic")
	}
	for name, other := range map[string]Key{
		"tau":   Fingerprint(448, 11, []byte("query-bytes")),
		"r":     Fingerprint(256, 10, []byte("query-bytes")),
		"query": Fingerprint(448, 10, []byte("query-bytez")),
	} {
		if other == base {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
}

func TestEpochInvalidation(t *testing.T) {
	c := New[int](1<<20, 1)
	k := key("q")
	c.Put(k, 1, 42, 8)
	// The store mutated: epoch 2 must not see the epoch-1 result.
	if v, ok := c.Get(k, 2); ok {
		t.Fatalf("stale entry served: %d", v)
	}
	// The stale entry was dropped, so even the old epoch misses now.
	if _, ok := c.Get(k, 1); ok {
		t.Fatal("invalidated entry resurrected")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stale entry still accounted: %+v", st)
	}
}

// A reader that raced a mutation (it read the epoch just before the bump)
// must neither destroy nor overwrite a result cached at the newer epoch:
// its Get is a plain miss and its Put is discarded, so up-to-date readers
// keep hitting the fresh entry instead of rescanning after every mutation.
func TestStragglerCannotClobberNewerEntry(t *testing.T) {
	c := New[string](1<<20, 1)
	k := key("q")
	c.Put(k, 2, "fresh", 8)
	if v, ok := c.Get(k, 1); ok {
		t.Fatalf("old-epoch reader was served the new result: %q", v)
	}
	if v, ok := c.Get(k, 2); !ok || v != "fresh" {
		t.Fatalf("straggler Get destroyed the newer entry: %q, %v", v, ok)
	}
	c.Put(k, 1, "stale", 8)
	if v, ok := c.Get(k, 2); !ok || v != "fresh" {
		t.Fatalf("straggler Put clobbered the newer entry: %q, %v", v, ok)
	}
	if st := c.Stats(); st.Invalidations != 0 {
		t.Fatalf("newer-epoch misses must not count as invalidations: %+v", st)
	}
}

func TestReplaceExistingKey(t *testing.T) {
	c := New[string](1<<20, 1)
	k := key("q")
	c.Put(k, 1, "old", 100)
	c.Put(k, 2, "new", 10)
	if v, ok := c.Get(k, 2); !ok || v != "new" {
		t.Fatalf("Get after replace = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d after in-place replace", st.Entries)
	}
	if st.Bytes != 10+entryOverhead {
		t.Fatalf("bytes = %d, want %d (replace must re-account)", st.Bytes, 10+entryOverhead)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Budget for roughly three entries in one shard.
	c := New[int](3*(entryOverhead+100), 1)
	for i := 0; i < 3; i++ {
		c.Put(key(fmt.Sprintf("q%d", i)), 1, i, 100)
	}
	// Touch q0 so q1 becomes the least recently used.
	if _, ok := c.Get(key("q0"), 1); !ok {
		t.Fatal("q0 missing before eviction")
	}
	c.Put(key("q3"), 1, 3, 100)
	if _, ok := c.Get(key("q1"), 1); ok {
		t.Fatal("LRU entry q1 survived over-budget insert")
	}
	for _, name := range []string{"q0", "q2", "q3"} {
		if _, ok := c.Get(key(name), 1); !ok {
			t.Errorf("recently used %s evicted", name)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestByteBudgetHeld(t *testing.T) {
	const budget = 64 << 10
	c := New[[]byte](budget, 4)
	val := make([]byte, 1024)
	for i := 0; i < 1000; i++ {
		c.Put(key(fmt.Sprintf("q%d", i)), 1, val, int64(len(val)))
		if st := c.Stats(); st.Bytes > budget {
			t.Fatalf("insert %d: %d accounted bytes over the %d budget", i, st.Bytes, budget)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("1000 x 1KiB inserts into 64KiB evicted nothing")
	}
	if st.Entries == 0 {
		t.Fatal("cache emptied itself")
	}
}

func TestOversizedValueRejected(t *testing.T) {
	c := New[[]byte](1024, 1)
	c.Put(key("big"), 1, make([]byte, 4096), 4096)
	if _, ok := c.Get(key("big"), 1); ok {
		t.Fatal("value larger than the whole budget was cached")
	}
	if st := c.Stats(); st.Bytes != 0 {
		t.Fatalf("rejected value accounted %d bytes", st.Bytes)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache[string]
	c.Put(key("q"), 1, "v", 1)
	if v, ok := c.Get(key("q"), 1); ok || v != "" {
		t.Fatalf("nil cache returned %q", v)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
	if New[string](0, 4) != nil {
		t.Fatal("New with zero budget is not the disabled cache")
	}
}

func TestTinyBudgetCollapsesToOneShard(t *testing.T) {
	// Splitting 256 bytes over 16 shards would leave each shard unable to
	// hold anything; the constructor must fall back to one shard.
	c := New[int](2*entryOverhead, 16)
	c.Put(key("a"), 1, 1, 0)
	c.Put(key("b"), 1, 2, 0)
	st := c.Stats()
	if st.Entries == 0 {
		t.Fatal("tiny-budget cache holds nothing at all")
	}
	if st.Bytes > 2*entryOverhead {
		t.Fatalf("tiny-budget cache over budget: %+v", st)
	}
}

// TestConcurrentMixedUse hammers one cache from many goroutines mixing
// hits, misses, replacements, invalidations and evictions; run under -race
// it is the cache's data-race suite, and the byte budget must hold after.
func TestConcurrentMixedUse(t *testing.T) {
	const budget = 32 << 10
	c := New[int](budget, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := key(fmt.Sprintf("q%d", i%97))
				epoch := uint64(i % 5) // rotating epochs force invalidations
				if v, ok := c.Get(k, epoch); ok && v != i%97 {
					t.Errorf("cached value %d under key q%d", v, i%97)
					return
				}
				c.Put(k, epoch, i%97, int64(i%512))
				if i%100 == g {
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("budget violated after concurrent use: %+v", st)
	}
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}
