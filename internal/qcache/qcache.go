// Package qcache is the cloud server's query-result cache: a sharded,
// memory-bounded LRU mapping a query fingerprint to the final ranked result
// it produced, with correctness guaranteed by epoch invalidation rather than
// by tracking which entries a mutation touches.
//
// # Why caching search results is privacy-neutral here
//
// In the MKS scheme the server already observes every query vector in the
// clear (the vector is opaque, but its bits are what the server matches
// against), and trapdoors are deterministic per keyword set — two searches
// for the same keywords under the same decoy subset produce identical
// vectors. The search-pattern leakage the paper accepts (Section 7: the
// server can tell when two queries are related) is therefore exactly the
// information a result cache keys on; memoizing the answer reveals nothing
// the server could not already compute by diffing incoming query vectors.
//
// # Epoch invalidation
//
// Tracking which cached results a given Upload or Delete affects would mean
// re-deriving match sets on the mutation path. Instead the store keeps a
// single monotonically increasing mutation epoch (core.Server.Epoch): every
// cache entry records the epoch the scan ran at, and a lookup only hits when
// the entry's epoch equals the store's current epoch. Any mutation bumps the
// epoch after it is applied and before it is acknowledged, so once a
// mutation has been acknowledged no later lookup can serve a result computed
// without it. The flip side — one mutation invalidates everything — is the
// right trade for this workload: search traffic is read-dominated and
// repeated-query-heavy, and a full rescan is exactly what the cache was
// saving, no worse than having no cache for one round.
//
// The caller must read the epoch BEFORE starting the scan whose result it
// stores. Reading it after could pair a pre-mutation result with a
// post-mutation epoch and serve stale data forever.
//
// # Memory bound
//
// The cache holds at most MaxBytes of accounted payload (entry overhead
// included), split evenly across shards; each shard evicts its least
// recently used entries to stay within its slice of the budget. Entries
// stranded at an old epoch are not swept eagerly — they are dropped when a
// lookup trips over them or the LRU pushes them out, so a mutation burst
// costs no cache-wide scan.
package qcache

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Key is a query fingerprint: a SHA-256 digest, so distinct queries collide
// with cryptographically negligible probability and a cached result can
// never be served for a different query.
type Key [sha256.Size]byte

// Fingerprint derives the cache key for one search: a hash of the scheme's
// vector width r, the requested result bound τ, and the marshaled query
// vector exactly as it arrived on the wire (bitindex marshaling is
// canonical, so equal vectors always produce equal bytes).
func Fingerprint(r, tau int, query []byte) Key {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(r))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(tau))
	h := sha256.New()
	h.Write(hdr[:])
	h.Write(query)
	var k Key
	h.Sum(k[:0])
	return k
}

// entryOverhead is the accounted cost of an entry beyond its payload: key,
// epoch, links, map slot. Keeps a flood of tiny (or empty) results from
// evading the byte budget.
const entryOverhead = 128

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits          uint64 // lookups answered from the cache
	Misses        uint64 // lookups that fell through to a scan (stale included)
	Evictions     uint64 // entries dropped by the LRU byte budget
	Invalidations uint64 // entries dropped because their epoch was stale
	Entries       int    // live entries (stale-but-unswept included)
	Bytes         int64  // accounted bytes currently held
	MaxBytes      int64  // configured budget
}

// Cache is a sharded, memory-bounded, epoch-checked LRU. A nil *Cache is a
// valid disabled cache: Get always misses, Put and Stats are no-ops — call
// sites need no enabled/disabled branching. Values are returned by reference
// and may be handed to any number of concurrent readers, so callers must
// treat cached values as immutable.
type Cache[V any] struct {
	shards   []*shard[V]
	mask     uint32
	maxBytes int64

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
}

// shard is one independently locked slice of the cache with its own LRU
// list (head = most recently used) and byte budget.
type shard[V any] struct {
	mu         sync.Mutex
	maxBytes   int64
	bytes      int64
	entries    map[Key]*entry[V]
	head, tail *entry[V]
}

type entry[V any] struct {
	key        Key
	epoch      uint64
	size       int64
	val        V
	prev, next *entry[V]
}

// defaultShards balances lock contention against per-shard budget
// granularity; must be a power of two for mask indexing.
const defaultShards = 16

// New creates a cache bounded to maxBytes of accounted payload, split over
// the given number of shards (<= 0 picks the default; counts are rounded up
// to a power of two). maxBytes <= 0 returns nil — the disabled cache.
func New[V any](maxBytes int64, shards int) *Cache[V] {
	if maxBytes <= 0 {
		return nil
	}
	if shards <= 0 {
		shards = defaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := maxBytes / int64(n)
	if per < entryOverhead {
		// Budget too small to split: one shard keeps the bound meaningful.
		n, per = 1, maxBytes
	}
	c := &Cache[V]{shards: make([]*shard[V], n), mask: uint32(n - 1), maxBytes: maxBytes}
	for i := range c.shards {
		c.shards[i] = &shard[V]{maxBytes: per, entries: make(map[Key]*entry[V])}
	}
	return c
}

// shardFor routes a key to its shard by the digest's first word.
func (c *Cache[V]) shardFor(k Key) *shard[V] {
	return c.shards[binary.LittleEndian.Uint32(k[:4])&c.mask]
}

// Get returns the value cached under k if it was stored at exactly the given
// epoch. A hit refreshes the entry's LRU position. Finding an entry stored
// at an OLDER epoch drops it — the store has mutated since it was computed
// and no future lookup can want it. An entry at a NEWER epoch is left in
// place and reported as a plain miss: it is valid for every up-to-date
// reader, and the caller asking is a straggler that read the epoch just
// before a mutation landed — destroying the fresh entry would let every
// mutation thrash the warm set.
func (c *Cache[V]) Get(k Key, epoch uint64) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	sh := c.shardFor(k)
	sh.mu.Lock()
	e := sh.entries[k]
	if e == nil {
		sh.mu.Unlock()
		c.misses.Add(1)
		return zero, false
	}
	if e.epoch != epoch {
		if e.epoch < epoch {
			sh.removeLocked(e)
			sh.mu.Unlock()
			c.invalidations.Add(1)
		} else {
			sh.mu.Unlock()
		}
		c.misses.Add(1)
		return zero, false
	}
	sh.touchLocked(e)
	v := e.val
	sh.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores v under k as computed at the given epoch, accounting size bytes
// of payload (entry overhead is added internally), and evicts least recently
// used entries until the shard is back under budget. A value larger than the
// shard budget is not stored at all. Storing under an existing key replaces
// the entry — unless the existing entry was computed at a newer epoch, in
// which case the stale value is discarded (a straggling scan must not
// overwrite a result that up-to-date readers can still hit).
func (c *Cache[V]) Put(k Key, epoch uint64, v V, size int64) {
	if c == nil {
		return
	}
	if size < 0 {
		size = 0
	}
	size += entryOverhead
	sh := c.shardFor(k)
	if size > sh.maxBytes {
		return
	}
	sh.mu.Lock()
	if e := sh.entries[k]; e != nil {
		if e.epoch > epoch {
			sh.mu.Unlock()
			return
		}
		sh.bytes += size - e.size
		e.epoch, e.val, e.size = epoch, v, size
		sh.touchLocked(e)
	} else {
		e = &entry[V]{key: k, epoch: epoch, size: size, val: v}
		sh.entries[k] = e
		sh.pushFrontLocked(e)
		sh.bytes += size
	}
	var evicted uint64
	for sh.bytes > sh.maxBytes && sh.tail != nil {
		sh.removeLocked(sh.tail)
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Stats returns a snapshot of the cache's counters. Safe on a nil cache
// (all zeros).
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		MaxBytes:      c.maxBytes,
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		st.Entries += len(sh.entries)
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}

// --- intrusive LRU list plumbing (callers hold sh.mu) ---

func (sh *shard[V]) pushFrontLocked(e *entry[V]) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard[V]) unlinkLocked(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard[V]) touchLocked(e *entry[V]) {
	if sh.head == e {
		return
	}
	sh.unlinkLocked(e)
	sh.pushFrontLocked(e)
}

func (sh *shard[V]) removeLocked(e *entry[V]) {
	sh.unlinkLocked(e)
	delete(sh.entries, e.key)
	sh.bytes -= e.size
}
