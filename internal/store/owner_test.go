package store

import (
	"bytes"
	"math/big"
	"path/filepath"
	"testing"

	"mkse/internal/core"
	"mkse/internal/corpus"
)

// The full owner round trip: everything that matters — trapdoors, epoch,
// blind decryption of previously encrypted documents, user registry,
// vector-mode dictionary — must survive persistence.
func TestOwnerSaveLoadRoundTrip(t *testing.T) {
	p := core.DefaultParams()
	p.Bins = 16
	owner, err := core.NewOwner(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.RotateBinKeys(); err != nil { // epoch 2, fresh keys
		t.Fatal(err)
	}
	owner.RegisterDictionary([]string{"alpha", "beta", "gamma"})

	doc := &corpus.Document{ID: "persist-doc", TermFreqs: map[string]int{"alpha": 3}, Content: []byte("contents survive restarts")}
	_, enc, err := owner.Prepare(doc)
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewUser("persist-user", p, owner.PublicKey(), owner.RandomTrapdoors())
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.RegisterUser(user.ID, user.PublicKey()); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SaveOwner(&buf, owner); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadOwner(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Same trapdoors (bin keys survived).
	if !restored.Trapdoor("alpha").Equal(owner.Trapdoor("alpha")) {
		t.Error("trapdoors differ after restore")
	}
	// Same epoch.
	if restored.Epoch() != owner.Epoch() {
		t.Errorf("epoch %d after restore, want %d", restored.Epoch(), owner.Epoch())
	}
	// Same decoy trapdoors (random words + keys survived).
	a, b := owner.RandomTrapdoors(), restored.RandomTrapdoors()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("decoy trapdoor %d differs after restore", i)
		}
	}
	// Blind decryption of a pre-restart document still works.
	pt, err := user.DecryptDocument(&core.EncryptedDocument{ID: doc.ID, Ciphertext: enc.Ciphertext, EncKey: enc.EncKey},
		func(z *big.Int) (*big.Int, error) { return restored.BlindDecrypt(z) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, doc.Content) {
		t.Error("pre-restart document does not decrypt after restore")
	}
	// User registry survived: the old signature still verifies.
	msg := []byte("post-restart request")
	sig, err := user.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.VerifyUser(user.ID, msg, sig); err != nil {
		t.Errorf("registered user rejected after restore: %v", err)
	}
	// Vector-mode dictionary survived.
	if _, err := restored.TrapdoorVectors(user.BinIDs([]string{"alpha"})); err != nil {
		t.Errorf("vector mode unavailable after restore: %v", err)
	}
	// Document key bookkeeping survived.
	if _, ok := restored.DocumentKey(doc.ID); !ok {
		t.Error("document key missing after restore")
	}
}

func TestOwnerSaveLoadFile(t *testing.T) {
	p := core.DefaultParams()
	p.Bins = 8
	owner, err := core.NewOwner(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "owner.state")
	if err := SaveOwnerFile(path, owner); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadOwnerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Trapdoor("w").Equal(owner.Trapdoor("w")) {
		t.Error("file round trip lost key material")
	}
}

func TestLoadOwnerRejectsServerSnapshot(t *testing.T) {
	_, srv, _ := populatedServer(t)
	var buf bytes.Buffer
	if err := Save(&buf, srv); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOwner(&buf); err == nil {
		t.Error("server snapshot accepted as owner state")
	}
}

func TestLoadOwnerRejectsGarbage(t *testing.T) {
	if _, err := LoadOwner(bytes.NewReader([]byte("MKSEOWN1 not gob at all"))); err == nil {
		t.Error("garbage owner state accepted")
	}
	if _, err := LoadOwner(bytes.NewReader(nil)); err == nil {
		t.Error("empty owner state accepted")
	}
}
