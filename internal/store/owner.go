package store

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"mkse/internal/core"
)

// ownerMagic distinguishes owner-state files from server snapshots.
var ownerMagic = [8]byte{'M', 'K', 'S', 'E', 'O', 'W', 'N', '1'}

// SaveOwner persists the owner's secret state. The output contains every
// secret of the deployment (bin keys, RSA private key, document keys);
// protect it accordingly.
func SaveOwner(w io.Writer, o *core.Owner) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(ownerMagic[:]); err != nil {
		return err
	}
	if err := gob.NewEncoder(bw).Encode(o.ExportState()); err != nil {
		return fmt.Errorf("store: encoding owner state: %w", err)
	}
	return bw.Flush()
}

// LoadOwner restores an owner from SaveOwner output.
func LoadOwner(r io.Reader) (*core.Owner, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("store: reading owner magic: %w", err)
	}
	if got != ownerMagic {
		return nil, fmt.Errorf("%w: not an owner-state file", ErrBadSnapshot)
	}
	var st core.OwnerState
	if err := gob.NewDecoder(br).Decode(&st); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return core.RestoreOwner(&st)
}

// SaveOwnerFile writes owner state to path atomically with 0600 permissions.
func SaveOwnerFile(path string, o *core.Owner) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if err := SaveOwner(f, o); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadOwnerFile reads owner state from path.
func LoadOwnerFile(path string) (*core.Owner, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadOwner(f)
}
