// Package store persists a cloud server's database — search indices,
// ciphertexts and wrapped keys — in a versioned binary format, so a
// mkse-server daemon can restart without the owner re-uploading. The format
// stores exactly what the server legitimately holds (Figure 1): nothing in a
// snapshot lets its holder decrypt or search beyond what the live server
// could.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"mkse/internal/bitindex"
	"mkse/internal/core"
	"mkse/internal/rank"
)

// magic and version identify the snapshot format.
var magic = [8]byte{'M', 'K', 'S', 'E', 'S', 'T', 'O', '1'}

// ErrBadSnapshot is returned for malformed or truncated snapshot data.
var ErrBadSnapshot = errors.New("store: malformed snapshot")

// maxSliceLen bounds any length field read from disk (1 GiB), preventing a
// corrupted header from forcing an absurd allocation.
const maxSliceLen = 1 << 30

// Save snapshots a server's full state to w.
func Save(w io.Writer, srv *core.Server) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	p := srv.Params()
	if err := writeParams(bw, p); err != nil {
		return err
	}
	if err := writeInt(bw, srv.NumDocuments()); err != nil {
		return err
	}
	err := srv.Export(func(si *core.SearchIndex, doc *core.EncryptedDocument) error {
		if err := writeBytes(bw, []byte(si.DocID)); err != nil {
			return err
		}
		if err := writeInt(bw, len(si.Levels)); err != nil {
			return err
		}
		for _, l := range si.Levels {
			enc, err := l.MarshalBinary()
			if err != nil {
				return err
			}
			if err := writeBytes(bw, enc); err != nil {
				return err
			}
		}
		if err := writeBytes(bw, doc.Ciphertext); err != nil {
			return err
		}
		return writeBytes(bw, doc.EncKey)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Load reconstructs a server from a snapshot with the default shard layout.
func Load(r io.Reader) (*core.Server, error) {
	return LoadWith(r, core.NewServer)
}

// LoadWith reconstructs a server from a snapshot, building the empty server
// through mk — the hook daemons use to restore into a non-default shard
// layout. The snapshot format is layout-independent.
func LoadWith(r io.Reader, mk func(core.Params) (*core.Server, error)) (*core.Server, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	p, err := readParams(br)
	if err != nil {
		return nil, err
	}
	srv, err := mk(p)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot parameters: %w", err)
	}
	count, err := readInt(br)
	if err != nil {
		return nil, err
	}
	for i := 0; i < count; i++ {
		id, err := readBytes(br)
		if err != nil {
			return nil, err
		}
		nLevels, err := readInt(br)
		if err != nil {
			return nil, err
		}
		if nLevels <= 0 || nLevels > 1000 {
			return nil, fmt.Errorf("%w: %d levels", ErrBadSnapshot, nLevels)
		}
		levels := make([]*bitindex.Vector, nLevels)
		for j := range levels {
			enc, err := readBytes(br)
			if err != nil {
				return nil, err
			}
			var v bitindex.Vector
			if err := v.UnmarshalBinary(enc); err != nil {
				return nil, fmt.Errorf("%w: level %d of %q: %v", ErrBadSnapshot, j+1, id, err)
			}
			levels[j] = &v
		}
		ct, err := readBytes(br)
		if err != nil {
			return nil, err
		}
		ek, err := readBytes(br)
		if err != nil {
			return nil, err
		}
		si := &core.SearchIndex{DocID: string(id), Levels: levels}
		doc := &core.EncryptedDocument{ID: string(id), Ciphertext: ct, EncKey: ek}
		if err := srv.Upload(si, doc); err != nil {
			return nil, fmt.Errorf("store: restoring %q: %w", id, err)
		}
	}
	return srv, nil
}

// SaveFile writes a snapshot to path atomically (write temp + rename).
func SaveFile(path string, srv *core.Server) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Save(f, srv); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*core.Server, error) {
	return LoadFileWith(path, core.NewServer)
}

// LoadFileWith reads a snapshot from path, building the empty server
// through mk (see LoadWith).
func LoadFileWith(path string, mk func(core.Params) (*core.Server, error)) (*core.Server, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadWith(f, mk)
}

func writeParams(w io.Writer, p core.Params) error {
	for _, v := range []int{p.R, p.D, p.Bins, p.U, p.V, p.RSABits, len(p.Levels)} {
		if err := writeInt(w, v); err != nil {
			return err
		}
	}
	for _, th := range p.Levels {
		if err := writeInt(w, th); err != nil {
			return err
		}
	}
	return nil
}

func readParams(r io.Reader) (core.Params, error) {
	var vals [7]int
	for i := range vals {
		v, err := readInt(r)
		if err != nil {
			return core.Params{}, err
		}
		vals[i] = v
	}
	nLevels := vals[6]
	if nLevels <= 0 || nLevels > 1000 {
		return core.Params{}, fmt.Errorf("%w: %d levels in header", ErrBadSnapshot, nLevels)
	}
	levels := make(rank.Levels, nLevels)
	for i := range levels {
		v, err := readInt(r)
		if err != nil {
			return core.Params{}, err
		}
		levels[i] = v
	}
	return core.Params{
		R: vals[0], D: vals[1], Bins: vals[2], U: vals[3], V: vals[4],
		RSABits: vals[5], Levels: levels,
	}, nil
}

func writeInt(w io.Writer, v int) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(int64(v)))
	_, err := w.Write(buf[:])
	return err
}

func readInt(r io.Reader) (int, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, fmt.Errorf("%w: truncated", ErrBadSnapshot)
		}
		return 0, err
	}
	v := int64(binary.BigEndian.Uint64(buf[:]))
	if v < 0 || v > maxSliceLen {
		return 0, fmt.Errorf("%w: implausible length %d", ErrBadSnapshot, v)
	}
	return int(v), nil
}

func writeBytes(w io.Writer, b []byte) error {
	if err := writeInt(w, len(b)); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readBytes(r io.Reader) ([]byte, error) {
	n, err := readInt(r)
	if err != nil {
		return nil, err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, fmt.Errorf("%w: truncated payload", ErrBadSnapshot)
	}
	return b, nil
}
