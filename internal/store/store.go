// Package store persists a cloud server's database — search indices,
// ciphertexts and wrapped keys — in a versioned binary format, so a
// mkse-server daemon can restart without the owner re-uploading. The format
// stores exactly what the server legitimately holds (Figure 1): nothing in a
// snapshot lets its holder decrypt or search beyond what the live server
// could.
//
// Three on-disk versions exist. V1 ("MKSESTO1") is the bare snapshot
// written by Save. V2 ("MKSESTO2") is the checkpoint format of the durable
// storage engine (internal/durable): the same body prefixed with the
// write-ahead-log sequence number the checkpoint covers, so recovery knows
// where replay starts. V3 ("MKSESTO3") additionally stamps the engine's
// promotion term and the log position where that term began — the fencing
// metadata automatic failover needs to survive log pruning. Load, LoadWith
// and LoadCheckpoint accept all three, which keeps older snapshot files
// loadable (their term reads as zero).
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"mkse/internal/bitindex"
	"mkse/internal/core"
	"mkse/internal/rank"
)

// magicV1, magicV2 and magicV3 identify the snapshot format versions.
var (
	magicV1 = [8]byte{'M', 'K', 'S', 'E', 'S', 'T', 'O', '1'}
	magicV2 = [8]byte{'M', 'K', 'S', 'E', 'S', 'T', 'O', '2'}
	magicV3 = [8]byte{'M', 'K', 'S', 'E', 'S', 'T', 'O', '3'}
)

// CheckpointMeta is the durable-engine metadata stamped into a checkpoint.
type CheckpointMeta struct {
	// LSN is the write-ahead-log sequence number the checkpoint covers:
	// the state reflects exactly mutations [0, LSN).
	LSN uint64
	// Term is the engine's promotion (fencing) term at checkpoint time.
	// Zero for V1/V2 snapshots, which predate automatic failover.
	Term uint64
	// TermStart is the log position where Term began — the position of the
	// term-bump control record, 0 for the initial term. A rejoining node
	// whose own position exceeds the primary's TermStart holds records the
	// new history does not, and must bootstrap instead of streaming.
	TermStart uint64
}

// ErrBadSnapshot is returned for malformed or truncated snapshot data.
var ErrBadSnapshot = errors.New("store: malformed snapshot")

// maxSliceLen bounds any length field read from disk (1 GiB), preventing a
// corrupted header from forcing an absurd allocation.
const maxSliceLen = 1 << 30

// Exporter is the view of a server's state the snapshot writers need.
// *core.Server satisfies it; the durable engine's in-memory checkpoint
// snapshots (captured under lock, serialized after release) do too.
type Exporter interface {
	Params() core.Params
	NumDocuments() int
	Export(func(*core.SearchIndex, *core.EncryptedDocument) error) error
}

// Save snapshots a server's full state to w in the V1 format.
func Save(w io.Writer, srv Exporter) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicV1[:]); err != nil {
		return err
	}
	return saveBody(bw, srv)
}

// SaveCheckpoint snapshots a server's full state to w in the V3 checkpoint
// format: the body of Save prefixed with the LSN (count of write-ahead-log
// records) the state covers plus the promotion term and its start position.
// Recovery replays the log from that record on and resumes at that term.
func SaveCheckpoint(w io.Writer, srv Exporter, meta CheckpointMeta) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicV3[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range []uint64{meta.LSN, meta.Term, meta.TermStart} {
		binary.BigEndian.PutUint64(buf[:], v)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return saveBody(bw, srv)
}

// saveBody writes the magic-independent part of a snapshot and flushes.
func saveBody(bw *bufio.Writer, srv Exporter) error {
	p := srv.Params()
	if err := writeParams(bw, p); err != nil {
		return err
	}
	if err := writeInt(bw, srv.NumDocuments()); err != nil {
		return err
	}
	err := srv.Export(func(si *core.SearchIndex, doc *core.EncryptedDocument) error {
		if err := writeBytes(bw, []byte(si.DocID)); err != nil {
			return err
		}
		if err := writeInt(bw, len(si.Levels)); err != nil {
			return err
		}
		for _, l := range si.Levels {
			enc, err := l.MarshalBinary()
			if err != nil {
				return err
			}
			if err := writeBytes(bw, enc); err != nil {
				return err
			}
		}
		if err := writeBytes(bw, doc.Ciphertext); err != nil {
			return err
		}
		return writeBytes(bw, doc.EncKey)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Load reconstructs a server from a snapshot with the default shard layout.
func Load(r io.Reader) (*core.Server, error) {
	return LoadWith(r, core.NewServer)
}

// LoadWith reconstructs a server from a snapshot, building the empty server
// through mk — the hook daemons use to restore into a non-default shard
// layout. The snapshot format is layout-independent. All snapshot and
// checkpoint formats are accepted; the checkpoint's metadata is discarded
// (use LoadCheckpoint to recover it).
func LoadWith(r io.Reader, mk func(core.Params) (*core.Server, error)) (*core.Server, error) {
	srv, _, err := LoadCheckpoint(r, mk)
	return srv, err
}

// LoadCheckpoint reconstructs a server from a snapshot in any format and
// returns the checkpoint metadata it covers (all-zero for a V1 snapshot,
// which predates the log; zero term for V2, which predates failover).
func LoadCheckpoint(r io.Reader, mk func(core.Params) (*core.Server, error)) (*core.Server, CheckpointMeta, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, CheckpointMeta{}, fmt.Errorf("store: reading magic: %w", err)
	}
	var meta CheckpointMeta
	readU64 := func(dst *uint64) error {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return fmt.Errorf("%w: truncated checkpoint header", ErrBadSnapshot)
		}
		*dst = binary.BigEndian.Uint64(buf[:])
		return nil
	}
	switch got {
	case magicV1:
	case magicV2:
		if err := readU64(&meta.LSN); err != nil {
			return nil, CheckpointMeta{}, err
		}
	case magicV3:
		for _, dst := range []*uint64{&meta.LSN, &meta.Term, &meta.TermStart} {
			if err := readU64(dst); err != nil {
				return nil, CheckpointMeta{}, err
			}
		}
	default:
		return nil, CheckpointMeta{}, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	srv, err := loadBody(br, mk)
	if err != nil {
		return nil, CheckpointMeta{}, err
	}
	return srv, meta, nil
}

// loadBody reads the magic-independent part of a snapshot.
func loadBody(br *bufio.Reader, mk func(core.Params) (*core.Server, error)) (*core.Server, error) {
	p, err := readParams(br)
	if err != nil {
		return nil, err
	}
	srv, err := mk(p)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot parameters: %w", err)
	}
	count, err := readInt(br)
	if err != nil {
		return nil, err
	}
	for i := 0; i < count; i++ {
		id, err := readBytes(br)
		if err != nil {
			return nil, err
		}
		nLevels, err := readInt(br)
		if err != nil {
			return nil, err
		}
		if nLevels <= 0 || nLevels > 1000 {
			return nil, fmt.Errorf("%w: %d levels", ErrBadSnapshot, nLevels)
		}
		levels := make([]*bitindex.Vector, nLevels)
		for j := range levels {
			enc, err := readBytes(br)
			if err != nil {
				return nil, err
			}
			var v bitindex.Vector
			if err := v.UnmarshalBinary(enc); err != nil {
				return nil, fmt.Errorf("%w: level %d of %q: %v", ErrBadSnapshot, j+1, id, err)
			}
			levels[j] = &v
		}
		ct, err := readBytes(br)
		if err != nil {
			return nil, err
		}
		ek, err := readBytes(br)
		if err != nil {
			return nil, err
		}
		si := &core.SearchIndex{DocID: string(id), Levels: levels}
		doc := &core.EncryptedDocument{ID: string(id), Ciphertext: ct, EncKey: ek}
		if err := srv.Upload(si, doc); err != nil {
			return nil, fmt.Errorf("store: restoring %q: %w", id, err)
		}
	}
	return srv, nil
}

// SaveFile writes a V1 snapshot to path atomically (write temp + rename).
func SaveFile(path string, srv Exporter) error {
	return saveFileAs(path, func(f *os.File) error { return Save(f, srv) })
}

// SaveCheckpointFile writes a V3 checkpoint to path atomically, fsyncing the
// file before the rename so a crash cannot leave a live checkpoint name
// pointing at partial data.
func SaveCheckpointFile(path string, srv Exporter, meta CheckpointMeta) error {
	return saveFileAs(path, func(f *os.File) error {
		if err := SaveCheckpoint(f, srv, meta); err != nil {
			return err
		}
		return f.Sync()
	})
}

func saveFileAs(path string, write func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*core.Server, error) {
	return LoadFileWith(path, core.NewServer)
}

// LoadFileWith reads a snapshot from path, building the empty server
// through mk (see LoadWith).
func LoadFileWith(path string, mk func(core.Params) (*core.Server, error)) (*core.Server, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadWith(f, mk)
}

// LoadCheckpointBytes reads a snapshot in any format from an in-memory
// buffer and returns the covered metadata. Replication uses it to install a
// checkpoint a follower received over the wire (see LoadCheckpoint).
func LoadCheckpointBytes(data []byte, mk func(core.Params) (*core.Server, error)) (*core.Server, CheckpointMeta, error) {
	return LoadCheckpoint(bytes.NewReader(data), mk)
}

// LoadCheckpointFile reads a snapshot in any format from path and returns
// the covered metadata (see LoadCheckpoint).
func LoadCheckpointFile(path string, mk func(core.Params) (*core.Server, error)) (*core.Server, CheckpointMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, CheckpointMeta{}, err
	}
	defer f.Close()
	return LoadCheckpoint(f, mk)
}

func writeParams(w io.Writer, p core.Params) error {
	for _, v := range []int{p.R, p.D, p.Bins, p.U, p.V, p.RSABits, len(p.Levels)} {
		if err := writeInt(w, v); err != nil {
			return err
		}
	}
	for _, th := range p.Levels {
		if err := writeInt(w, th); err != nil {
			return err
		}
	}
	return nil
}

func readParams(r io.Reader) (core.Params, error) {
	var vals [7]int
	for i := range vals {
		v, err := readInt(r)
		if err != nil {
			return core.Params{}, err
		}
		vals[i] = v
	}
	nLevels := vals[6]
	if nLevels <= 0 || nLevels > 1000 {
		return core.Params{}, fmt.Errorf("%w: %d levels in header", ErrBadSnapshot, nLevels)
	}
	levels := make(rank.Levels, nLevels)
	for i := range levels {
		v, err := readInt(r)
		if err != nil {
			return core.Params{}, err
		}
		levels[i] = v
	}
	return core.Params{
		R: vals[0], D: vals[1], Bins: vals[2], U: vals[3], V: vals[4],
		RSABits: vals[5], Levels: levels,
	}, nil
}

func writeInt(w io.Writer, v int) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(int64(v)))
	_, err := w.Write(buf[:])
	return err
}

func readInt(r io.Reader) (int, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, fmt.Errorf("%w: truncated", ErrBadSnapshot)
		}
		return 0, err
	}
	v := int64(binary.BigEndian.Uint64(buf[:]))
	if v < 0 || v > maxSliceLen {
		return 0, fmt.Errorf("%w: implausible length %d", ErrBadSnapshot, v)
	}
	return int(v), nil
}

func writeBytes(w io.Writer, b []byte) error {
	if err := writeInt(w, len(b)); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readBytes(r io.Reader) ([]byte, error) {
	n, err := readInt(r)
	if err != nil {
		return nil, err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, fmt.Errorf("%w: truncated payload", ErrBadSnapshot)
	}
	return b, nil
}
