package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/big"
	"os"
	"path/filepath"
	"testing"

	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/rank"
)

// populatedServer builds an owner + server pair with a few documents and
// returns both plus the documents for verification.
func populatedServer(t *testing.T) (*core.Owner, *core.Server, []*corpus.Document) {
	t.Helper()
	p := core.DefaultParams().WithLevels(rank.Levels{1, 5, 10})
	p.Bins = 16
	owner, err := core.NewOwnerDeterministic(p, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(p)
	if err != nil {
		t.Fatal(err)
	}
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: 12, KeywordsPerDoc: 8, Dictionary: corpus.Dictionary(100),
		MaxTermFreq: 15, ContentWords: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		si, enc, err := owner.Prepare(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Upload(si, enc); err != nil {
			t.Fatal(err)
		}
	}
	return owner, srv, docs
}

func TestSaveLoadRoundTrip(t *testing.T) {
	owner, srv, docs := populatedServer(t)
	var buf bytes.Buffer
	if err := Save(&buf, srv); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumDocuments() != srv.NumDocuments() {
		t.Fatalf("restored %d docs, want %d", restored.NumDocuments(), srv.NumDocuments())
	}
	// Parameters survive.
	if restored.Params().R != srv.Params().R || restored.Params().Eta() != srv.Params().Eta() {
		t.Error("parameters not restored")
	}
	// Searches against the restored server behave identically: query a known
	// document's keywords and require it in the results of both.
	target := docs[4]
	user, err := core.NewUser("restore-check", owner.Params(), owner.PublicKey(), owner.RandomTrapdoors())
	if err != nil {
		t.Fatal(err)
	}
	words := target.Keywords()[:2]
	ids := user.BinIDs(words)
	keys, err := owner.TrapdoorKeys(ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := user.InstallTrapdoorKeys(ids, keys); err != nil {
		t.Fatal(err)
	}
	q, err := user.BuildQuery(words)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*core.Server{"original": srv, "restored": restored} {
		matches, err := s.Search(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		found := false
		for _, m := range matches {
			if m.DocID == target.ID {
				found = true
			}
		}
		if !found {
			t.Errorf("%s server did not return the target document", name)
		}
	}
	// Retrieval from the restored server still decrypts.
	fetched, err := restored.Fetch(target.ID)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := user.DecryptDocument(fetched, func(z *big.Int) (*big.Int, error) {
		return owner.BlindDecrypt(z)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, target.Content) {
		t.Error("restored document decrypts to wrong plaintext")
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	_, srv, _ := populatedServer(t)
	path := filepath.Join(t.TempDir(), "cloud.snapshot")
	if err := SaveFile(path, srv); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumDocuments() != srv.NumDocuments() {
		t.Errorf("restored %d docs, want %d", restored.NumDocuments(), srv.NumDocuments())
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOTMKSE0rest..."))); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("bad magic gave %v", err)
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	_, srv, _ := populatedServer(t)
	var buf bytes.Buffer
	if err := Save(&buf, srv); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncate at several depths: header, mid-params, mid-document.
	for _, n := range []int{4, 8, 20, 60, len(full) / 2, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncation at %d bytes accepted", n)
		}
	}
}

func TestLoadRejectsCorruptLength(t *testing.T) {
	_, srv, _ := populatedServer(t)
	var buf bytes.Buffer
	if err := Save(&buf, srv); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Overwrite the document-count field with an absurd value.
	for i := 0; i < 8; i++ {
		data[8+7*8+3*8+i] = 0x7f // somewhere in the header region
	}
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

func TestLoadEmptyServer(t *testing.T) {
	p := core.DefaultParams()
	srv, err := core.NewServer(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, srv); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumDocuments() != 0 {
		t.Errorf("empty snapshot restored %d docs", restored.NumDocuments())
	}
}

// A PR-2-era (V1, "MKSESTO1") snapshot must keep loading through LoadWith /
// LoadFileWith after the checkpoint format's introduction, reporting LSN 0
// through LoadCheckpoint. Guards the upgrade path of daemons that ran with
// the bare -snapshot flag before the durable engine existed.
func TestV1SnapshotBackCompat(t *testing.T) {
	_, srv, _ := populatedServer(t)
	var buf bytes.Buffer
	if err := Save(&buf, srv); err != nil {
		t.Fatal(err)
	}
	if got := string(buf.Bytes()[:8]); got != "MKSESTO1" {
		t.Fatalf("Save wrote magic %q, want the V1 magic (PR-2 snapshots must stay readable)", got)
	}
	path := filepath.Join(t.TempDir(), "pr2-era.db")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFileWith(path, core.NewServer)
	if err != nil {
		t.Fatalf("LoadFileWith on V1 snapshot: %v", err)
	}
	if restored.NumDocuments() != srv.NumDocuments() {
		t.Fatalf("restored %d docs, want %d", restored.NumDocuments(), srv.NumDocuments())
	}
	_, meta, err := LoadCheckpointFile(path, core.NewServer)
	if err != nil {
		t.Fatalf("LoadCheckpointFile on V1 snapshot: %v", err)
	}
	if meta != (CheckpointMeta{}) {
		t.Fatalf("V1 snapshot reported meta %+v, want all-zero", meta)
	}
}

// A PR-4-era V2 ("MKSESTO2") checkpoint — LSN header, no term fields — must
// keep loading after the V3 format's introduction, reporting term zero.
// Guards the upgrade path of data directories written before failover.
func TestV2CheckpointBackCompat(t *testing.T) {
	_, srv, _ := populatedServer(t)
	var buf bytes.Buffer
	// Hand-build a V2 checkpoint: V2 magic + LSN + the V1 body.
	const lsn = uint64(42)
	buf.WriteString("MKSESTO2")
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], lsn)
	buf.Write(hdr[:])
	var body bytes.Buffer
	if err := Save(&body, srv); err != nil {
		t.Fatal(err)
	}
	buf.Write(body.Bytes()[8:]) // body without the V1 magic
	restored, meta, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), core.NewServer)
	if err != nil {
		t.Fatalf("LoadCheckpoint on V2 checkpoint: %v", err)
	}
	if meta.LSN != lsn || meta.Term != 0 || meta.TermStart != 0 {
		t.Fatalf("V2 checkpoint meta %+v, want LSN %d and zero term", meta, lsn)
	}
	if restored.NumDocuments() != srv.NumDocuments() {
		t.Fatalf("restored %d docs, want %d", restored.NumDocuments(), srv.NumDocuments())
	}
}

// The checkpoint format carries a distinct magic and round-trips the
// metadata: LSN, promotion term, and the term's start position.
func TestCheckpointRoundTrip(t *testing.T) {
	_, srv, _ := populatedServer(t)
	var buf bytes.Buffer
	meta := CheckpointMeta{LSN: 0xDEADBEEFCAFE, Term: 7, TermStart: 0xBEE5}
	if err := SaveCheckpoint(&buf, srv, meta); err != nil {
		t.Fatal(err)
	}
	if got := string(buf.Bytes()[:8]); got != "MKSESTO3" {
		t.Fatalf("SaveCheckpoint wrote magic %q, want the V3 magic", got)
	}
	restored, gotMeta, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), core.NewServer)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}
	if restored.NumDocuments() != srv.NumDocuments() {
		t.Fatalf("restored %d docs, want %d", restored.NumDocuments(), srv.NumDocuments())
	}
	// The old entry point accepts checkpoints too (the daemon can point
	// -snapshot at a checkpoint file).
	if _, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Load on V3 checkpoint: %v", err)
	}
	// A truncated metadata header is a bad snapshot, not a crash.
	if _, _, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()[:20]), core.NewServer); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("truncated checkpoint header = %v, want ErrBadSnapshot", err)
	}
}
