package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// spanJSON is the wire shape of one span in a /traces response, nested
// under its parent.
type spanJSON struct {
	SpanID     string            `json:"span_id"`
	Service    string            `json:"service"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*spanJSON       `json:"children,omitempty"`
}

// traceJSON is one trace in a /traces response.
type traceJSON struct {
	TraceID    string      `json:"trace_id"`
	Root       string      `json:"root"`
	DurationMS float64     `json:"duration_ms"`
	SpanCount  int         `json:"span_count"`
	Spans      []*spanJSON `json:"spans"`
}

// buildTree nests a trace's spans under their parents; spans whose parent
// was never recorded locally (imports whose coordinator span lives
// elsewhere, or dropped spans) surface as additional top-level entries
// rather than disappearing. Children are ordered by start time.
func buildTree(tr Trace) traceJSON {
	nodes := make(map[uint64]*spanJSON, len(tr.Spans))
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		n := &spanJSON{
			SpanID:     fmt.Sprintf("%016x", sp.ID),
			Service:    sp.Service,
			Name:       sp.Name,
			Start:      sp.Start,
			DurationMS: float64(sp.Duration) / float64(time.Millisecond),
		}
		if len(sp.Attrs) > 0 {
			n.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				n.Attrs[a.Key] = a.Value
			}
		}
		nodes[sp.ID] = n
	}
	var roots []*spanJSON
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		if parent, ok := nodes[sp.Parent]; ok && sp.Parent != sp.ID {
			parent.Children = append(parent.Children, nodes[sp.ID])
		} else {
			roots = append(roots, nodes[sp.ID])
		}
	}
	var sortChildren func(ns []*spanJSON)
	sortChildren = func(ns []*spanJSON) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].Start.Before(ns[j].Start) })
		for _, n := range ns {
			sortChildren(n.Children)
		}
	}
	sortChildren(roots)
	out := traceJSON{TraceID: tr.ID.String(), SpanCount: len(tr.Spans), Spans: roots}
	if root := tr.Root(); root != nil {
		out.Root = root.Name
		out.DurationMS = float64(root.Duration) / float64(time.Millisecond)
	}
	return out
}

// handler serves a snapshot function as JSON; ?n= caps the count
// (default 64).
func handler(snap func(max int) []Trace) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		max := 64
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				max = v
			}
		}
		traces := snap(max)
		out := make([]traceJSON, len(traces))
		for i, tr := range traces {
			out[i] = buildTree(tr)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out) //nolint:errcheck // best-effort write to a scraper
	})
}

// RecentHandler serves the recent ring as /traces: newest-first JSON span
// trees.
func (b *Buffer) RecentHandler() http.Handler {
	return handler(b.Recent)
}

// SlowHandler serves the slow ring as /traces/slow: traces whose root
// crossed the slow threshold, surviving recent-ring churn.
func (b *Buffer) SlowHandler() http.Handler {
	return handler(b.Slow)
}

// FormatTree renders a trace's spans as an indented text tree for
// terminals (`mkse-client trace`). Spans are nested under their parents,
// siblings ordered by start time, each line showing service, name,
// duration, and attributes.
func FormatTree(spans []Span) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	tr := Trace{ID: spans[0].Trace, Spans: spans}
	tree := buildTree(tr)
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %s  %d spans  %.2fms\n", tree.TraceID, tree.SpanCount, tree.DurationMS)
	var walk func(ns []*spanJSON, prefix string)
	walk = func(ns []*spanJSON, prefix string) {
		for i, n := range ns {
			branch, childPrefix := "├─ ", prefix+"│  "
			if i == len(ns)-1 {
				branch, childPrefix = "└─ ", prefix+"   "
			}
			fmt.Fprintf(&sb, "%s%s%-24s %9.2fms  [%s]%s\n",
				prefix, branch, n.Name, n.DurationMS, n.Service, formatAttrs(n.Attrs))
			walk(n.Children, childPrefix)
		}
	}
	walk(tree.Spans, "")
	return sb.String()
}

func formatAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, " %s=%s", k, attrs[k])
	}
	return sb.String()
}
