package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNilAndUnsampledPathsAreInert(t *testing.T) {
	ctx := context.Background()
	if Sampled(ctx) {
		t.Fatal("background context reported sampled")
	}
	if got := ID(ctx); !got.IsZero() {
		t.Fatalf("untraced context has trace ID %v", got)
	}
	ctx2, sp := Start(ctx, "child")
	if sp != nil {
		t.Fatal("Start on untraced context returned a span")
	}
	if ctx2 != ctx {
		t.Fatal("Start on untraced context replaced the context")
	}
	// Nil span and nil tracer methods must all no-op.
	sp.SetAttr("k", "v")
	sp.End()
	if sp.Spans() != nil || sp.Context().Sampled || !sp.TraceID().IsZero() {
		t.Fatal("nil span leaked state")
	}
	var tr *Tracer
	if _, root := tr.StartRequest(ctx, "r", true); root != nil {
		t.Fatal("nil tracer sampled a request")
	}
	if _, root := tr.ContinueRequest(ctx, "r", SpanContext{Sampled: true, Trace: TraceID{Lo: 1}, Span: 1}); root != nil {
		t.Fatal("nil tracer continued a trace")
	}
	if id := tr.RecordRoot("x", time.Now(), time.Millisecond); !id.IsZero() {
		t.Fatal("nil tracer recorded a root")
	}
	AddCompleted(ctx, "scan", time.Now(), time.Millisecond)
	Import(ctx, []Span{{Name: "x"}})
}

func TestStartRequestSamplingAndForce(t *testing.T) {
	tr := New("svc", 3, nil)
	sampled := 0
	for i := 0; i < 9; i++ {
		if _, sp := tr.StartRequest(context.Background(), "r", false); sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 3 {
		t.Fatalf("1-in-3 sampler fired %d times over 9 requests", sampled)
	}
	off := New("svc", 0, nil)
	if _, sp := off.StartRequest(context.Background(), "r", false); sp != nil {
		t.Fatal("sampleN=0 tracer sampled without force")
	}
	_, sp := off.StartRequest(context.Background(), "r", true)
	if sp == nil {
		t.Fatal("forced request not sampled")
	}
	sp.End()
}

func TestSpanTreeAssemblyAndImport(t *testing.T) {
	buf := NewBuffer(32)
	tr := New("client", 1, buf)
	ctx, root := tr.StartRequest(context.Background(), "client:search", false)
	if root == nil {
		t.Fatal("sampleN=1 did not sample")
	}
	root.SetAttr("topk", "10")
	cctx, child := Start(ctx, "partition")
	child.SetAttr("partition", "0")

	// Simulate a server continuing the trace from the child's wire context.
	sc := child.Context()
	if !sc.Valid() {
		t.Fatal("child span context invalid")
	}
	remote := New("cloud-p0", 0, nil)
	rctx, rroot := remote.ContinueRequest(context.Background(), "server:search", sc)
	if rroot == nil {
		t.Fatal("server did not adopt sampled wire context")
	}
	AddCompleted(rctx, "scan", time.Now(), 2*time.Millisecond)
	rroot.End()
	Import(cctx, rroot.Spans())

	// A span from a different trace must not import.
	Import(cctx, []Span{{Trace: NewTraceID(), ID: NewSpanID(), Name: "alien"}})

	child.End()
	root.End()

	spans := root.Spans()
	if len(spans) != 4 { // root, partition, server:search, scan
		t.Fatalf("got %d spans: %+v", len(spans), spans)
	}
	for _, sp := range spans {
		if sp.Name == "alien" {
			t.Fatal("cross-trace span imported")
		}
		if sp.Trace != root.TraceID() {
			t.Fatalf("span %q carries wrong trace", sp.Name)
		}
	}

	got := buf.Recent(10)
	if len(got) != 1 || got[0].ID != root.TraceID() {
		t.Fatalf("buffer holds %d traces", len(got))
	}
	rootSpan := got[0].Root()
	if rootSpan == nil || rootSpan.Name != "client:search" {
		t.Fatalf("root detection failed: %+v", rootSpan)
	}

	// The rendered tree must nest coordinator → partition → server → scan.
	text := FormatTree(got[0].Spans)
	for _, want := range []string{"client:search", "partition", "server:search", "scan"} {
		if !strings.Contains(text, want) {
			t.Fatalf("tree missing %q:\n%s", want, text)
		}
	}
	if strings.Index(text, "client:search") > strings.Index(text, "scan") {
		t.Fatalf("scan rendered before root:\n%s", text)
	}
}

func TestInvalidWireContextFallsBackToLocalSampler(t *testing.T) {
	tr := New("cloud", 0, nil)
	for _, sc := range []SpanContext{
		{},
		{Sampled: true},                        // garbage: zero IDs
		{Sampled: true, Trace: TraceID{Lo: 7}}, // zero span ID
		{Trace: TraceID{Lo: 7}, Span: 9},       // not sampled
		{Sampled: true, Span: 9},               // zero trace ID
	} {
		if _, sp := tr.ContinueRequest(context.Background(), "r", sc); sp != nil {
			t.Fatalf("invalid wire context %+v was adopted", sc)
		}
	}
}

func TestBufferSlowRetentionAndHandlers(t *testing.T) {
	buf := NewBuffer(64)
	buf.SetSlowThreshold(50 * time.Millisecond)
	tr := New("cloud", 1, buf)
	fast := tr.RecordRoot("server:search", time.Now(), 5*time.Millisecond)
	slow := tr.RecordRoot("server:search", time.Now(), 80*time.Millisecond,
		Attr{Key: "verb", Value: "search"})
	if fast.IsZero() || slow.IsZero() {
		t.Fatal("RecordRoot returned zero ID")
	}
	if got := buf.Recent(10); len(got) != 2 {
		t.Fatalf("recent ring holds %d traces", len(got))
	}
	slowTraces := buf.Slow(10)
	if len(slowTraces) != 1 || slowTraces[0].ID != slow {
		t.Fatalf("slow ring holds %d traces", len(slowTraces))
	}

	rec := httptest.NewRecorder()
	buf.RecentHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
	var out []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("recent handler emitted invalid JSON: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("/traces returned %d traces", len(out))
	}
	rec = httptest.NewRecorder()
	buf.SlowHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/traces/slow?n=1", nil))
	out = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("slow handler emitted invalid JSON: %v", err)
	}
	if len(out) != 1 || out[0]["trace_id"] != slow.String() {
		t.Fatalf("/traces/slow returned %+v", out)
	}
}

func TestBufferRingOverwrites(t *testing.T) {
	buf := NewBuffer(8) // one slot per shard
	tr := New("x", 1, buf)
	for i := 0; i < 100; i++ {
		tr.RecordRoot("r", time.Now(), time.Millisecond)
	}
	if got := buf.Recent(1000); len(got) > 8 {
		t.Fatalf("ring grew past capacity: %d", len(got))
	}
}

func TestBackgroundSpansRecord(t *testing.T) {
	buf := NewBuffer(16)
	tr := New("durable", 1, buf)
	id := NewTraceID()
	rootID := NewSpanID()
	start := time.Now()
	tr.RecordSpans([]Span{
		{Trace: id, ID: rootID, Service: "durable", Name: "durable.checkpoint", Start: start, Duration: 10 * time.Millisecond},
		{Trace: id, ID: NewSpanID(), Parent: rootID, Service: "durable", Name: "checkpoint.pause", Start: start, Duration: 2 * time.Millisecond},
	})
	got := buf.Recent(10)
	if len(got) != 1 || got[0].Root() == nil || got[0].Root().Name != "durable.checkpoint" {
		t.Fatalf("checkpoint trace mis-recorded: %+v", got)
	}
}
