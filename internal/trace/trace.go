// Package trace is a dependency-free distributed-tracing subsystem for the
// MKS daemons: a 128-bit trace ID and a 64-bit span ID travel with every
// wire request (protocol.Message.Trace), each daemon records spans for the
// stages it owns — coordinator scatter, per-partition RPCs, server verb
// dispatch, arena scans, query-cache lookups, WAL appends — and echoes them
// back on the response, so the request's origin can assemble one span tree
// covering every process the request touched.
//
// # Design
//
// Sampling is head-based: the origin decides once (1 in N requests, or
// forced for `mkse-client trace`) and the decision propagates with the
// context; servers adopt a sampled context rather than re-deciding, so a
// trace is never half-recorded. An unsampled request carries no recorder in
// its context.Context, and every recording call is nil-safe and
// allocation-free in that case — which is what lets the scan path keep its
// allocation-free guarantee (TestSearchScanPathAllocationFree) with tracing
// compiled in.
//
// Requests that were not head-sampled but crossed the slow-query threshold
// are still captured as a single root span (Tracer.RecordRoot), so the tail
// that aggregate histograms flag is always inspectable in /traces/slow.
//
// Completed traces land in a bounded lock-sharded ring buffer (Buffer),
// served by the telemetry sidecar as JSON span trees on /traces (recent)
// and /traces/slow (retained above the slow threshold).
package trace

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the 128-bit identifier shared by every span of one trace.
type TraceID struct{ Hi, Lo uint64 }

// IsZero reports whether the ID is the invalid zero ID.
func (id TraceID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return fmt.Sprintf("%016x%016x", id.Hi, id.Lo) }

// NewTraceID draws a random non-zero trace ID.
func NewTraceID() TraceID {
	for {
		id := TraceID{Hi: rand.Uint64(), Lo: rand.Uint64()}
		if !id.IsZero() {
			return id
		}
	}
}

// NewSpanID draws a random non-zero span ID.
func NewSpanID() uint64 {
	for {
		if v := rand.Uint64(); v != 0 {
			return v
		}
	}
}

// SpanContext is the propagated part of a trace: what a request carries on
// the wire so the receiver can continue the trace as a child of the
// sender's span.
type SpanContext struct {
	Trace   TraceID
	Span    uint64
	Sampled bool
}

// Valid reports whether the context names a sampled, well-formed position
// in a trace. A garbage or truncated wire context (zero trace ID, zero
// span ID) is invalid and must be ignored rather than continued, so a
// hostile or corrupted frame cannot graft spans into a trace it does not
// own.
func (sc SpanContext) Valid() bool {
	return sc.Sampled && !sc.Trace.IsZero() && sc.Span != 0
}

// Attr is one key/value annotation on a span.
type Attr struct{ Key, Value string }

// Span is one completed, named, timed stage of a trace. Parent is the span
// ID this span nests under — zero for the trace root, or an ID recorded by
// another process for the local root of a server-side subtree.
type Span struct {
	Trace    TraceID
	ID       uint64
	Parent   uint64
	Service  string
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// Recorder accumulates the spans of one sampled trace as they complete.
// It is carried in the request's context.Context and is safe for the
// concurrent appends a scatter-gather fan-out produces.
type Recorder struct {
	tracer  *Tracer
	trace   TraceID
	service string
	root    uint64

	mu    sync.Mutex
	spans []Span
	done  bool
}

// TraceID returns the trace this recorder collects.
func (r *Recorder) TraceID() TraceID { return r.trace }

func (r *Recorder) add(sp Span) {
	r.mu.Lock()
	r.spans = append(r.spans, sp)
	r.mu.Unlock()
}

// Import grafts spans recorded by another process (echoed on a wire
// response) into this trace. Spans belonging to a different trace are
// dropped — a confused or hostile peer must not be able to mis-route its
// spans into ours.
func (r *Recorder) Import(spans []Span) {
	if len(spans) == 0 {
		return
	}
	r.mu.Lock()
	for _, sp := range spans {
		if sp.Trace == r.trace {
			r.spans = append(r.spans, sp)
		}
	}
	r.mu.Unlock()
}

// Spans snapshots every span recorded so far.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// finish hands the completed trace to the tracer's buffer, once.
func (r *Recorder) finish() {
	r.mu.Lock()
	done := r.done
	r.done = true
	spans := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	if done || r.tracer == nil || r.tracer.buf == nil {
		return
	}
	r.tracer.buf.Add(Trace{ID: r.trace, Spans: spans})
}

// active is the context payload: the trace's recorder plus the span ID new
// children nest under.
type active struct {
	rec    *Recorder
	spanID uint64
}

type ctxKey struct{}

func newContext(ctx context.Context, rec *Recorder, spanID uint64) context.Context {
	return context.WithValue(ctx, ctxKey{}, active{rec: rec, spanID: spanID})
}

func fromContext(ctx context.Context) (active, bool) {
	a, ok := ctx.Value(ctxKey{}).(active)
	return a, ok
}

// Sampled reports whether ctx carries a sampled trace. On an untraced
// context this is a single map-free Value lookup, so hot paths may call it
// before building attributes.
func Sampled(ctx context.Context) bool {
	_, ok := fromContext(ctx)
	return ok
}

// ID returns the trace ID carried by ctx, or the zero ID when untraced.
func ID(ctx context.Context) TraceID {
	if a, ok := fromContext(ctx); ok {
		return a.rec.trace
	}
	return TraceID{}
}

// ActiveSpan is an open span. The nil *ActiveSpan is valid and inert —
// every method no-ops — so untraced paths need no branching beyond what
// Start already did.
type ActiveSpan struct {
	rec  *Recorder
	span Span
}

// Start opens a child span under ctx's active span, returning a context
// for the span's own children. When ctx carries no sampled trace it
// returns ctx unchanged and a nil span, allocating nothing.
func Start(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	a, ok := fromContext(ctx)
	if !ok {
		return ctx, nil
	}
	sp := &ActiveSpan{rec: a.rec, span: Span{
		Trace:   a.rec.trace,
		ID:      NewSpanID(),
		Parent:  a.spanID,
		Service: a.rec.service,
		Name:    name,
		Start:   time.Now(),
	}}
	return newContext(ctx, a.rec, sp.span.ID), sp
}

// AddCompleted records an already-timed child span under ctx's active
// span — for stages timed by existing instrumentation (the arena-scan
// observer) where opening an ActiveSpan would be redundant. No-op on an
// untraced context.
func AddCompleted(ctx context.Context, name string, start time.Time, d time.Duration, attrs ...Attr) {
	a, ok := fromContext(ctx)
	if !ok {
		return
	}
	a.rec.add(Span{
		Trace:    a.rec.trace,
		ID:       NewSpanID(),
		Parent:   a.spanID,
		Service:  a.rec.service,
		Name:     name,
		Start:    start,
		Duration: d,
		Attrs:    attrs,
	})
}

// Import merges spans echoed by a peer into ctx's trace (see
// Recorder.Import). No-op on an untraced context.
func Import(ctx context.Context, spans []Span) {
	if a, ok := fromContext(ctx); ok {
		a.rec.Import(spans)
	}
}

// SetAttr annotates the span. Nil-safe.
func (a *ActiveSpan) SetAttr(key, value string) {
	if a != nil {
		a.span.Attrs = append(a.span.Attrs, Attr{Key: key, Value: value})
	}
}

// Context returns the span's propagation context, for stamping onto an
// outgoing request. The zero SpanContext on a nil span.
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: a.span.Trace, Span: a.span.ID, Sampled: true}
}

// TraceID returns the span's trace ID (zero on a nil span).
func (a *ActiveSpan) TraceID() TraceID {
	if a == nil {
		return TraceID{}
	}
	return a.span.Trace
}

// Spans snapshots every span recorded so far in this span's trace,
// including imports from peers. Nil-safe.
func (a *ActiveSpan) Spans() []Span {
	if a == nil {
		return nil
	}
	return a.rec.Spans()
}

// End closes the span, recording its duration. Ending the trace's root
// span also hands the completed trace to the tracer's buffer. Nil-safe.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.span.Duration = time.Since(a.span.Start)
	a.rec.add(a.span)
	if a.span.ID == a.rec.root {
		a.rec.finish()
	}
}

// Tracer makes sampling decisions and owns the destination buffer. A nil
// *Tracer is valid and disables tracing: every method no-ops or returns
// the untraced result.
type Tracer struct {
	service string
	sampleN int
	buf     *Buffer
	n       atomic.Uint64
}

// New builds a tracer for one daemon. service names the process in its
// spans (e.g. "client", "cloud-p0"); sampleN head-samples 1 in N locally
// originated requests (1 = every request, <= 0 = none, though forced and
// wire-adopted traces still record); buf, which may be nil, receives
// completed traces.
func New(service string, sampleN int, buf *Buffer) *Tracer {
	return &Tracer{service: service, sampleN: sampleN, buf: buf}
}

// Service returns the tracer's process name.
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// TraceBuffer returns the destination buffer (nil when none).
func (t *Tracer) TraceBuffer() *Buffer {
	if t == nil {
		return nil
	}
	return t.buf
}

// sampleHead is the 1-in-N head decision, counter-based so a steady load
// yields a steady sample rate.
func (t *Tracer) sampleHead() bool {
	if t == nil || t.sampleN <= 0 {
		return false
	}
	return t.n.Add(1)%uint64(t.sampleN) == 0
}

// SampleBackground exposes the head sampler for work with no originating
// request — replication applies and similar streams that would flood the
// buffer if every unit were recorded.
func (t *Tracer) SampleBackground() bool { return t.sampleHead() }

// StartRequest opens the root span of a locally originated trace if the
// head sampler fires (or force is set, as `mkse-client trace` does).
// Returns (ctx, nil) when not sampled.
func (t *Tracer) StartRequest(ctx context.Context, name string, force bool) (context.Context, *ActiveSpan) {
	if t == nil || (!force && !t.sampleHead()) {
		return ctx, nil
	}
	return t.startRoot(ctx, name, NewTraceID(), 0)
}

// ContinueRequest adopts a sampled context carried on an incoming request,
// opening this process's local root span as a child of the sender's span.
// An absent or invalid wire context falls back to the local head sampler,
// so a daemon fronted by traceless peers still self-samples.
func (t *Tracer) ContinueRequest(ctx context.Context, name string, parent SpanContext) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	if parent.Valid() {
		return t.startRoot(ctx, name, parent.Trace, parent.Span)
	}
	if !t.sampleHead() {
		return ctx, nil
	}
	return t.startRoot(ctx, name, NewTraceID(), 0)
}

func (t *Tracer) startRoot(ctx context.Context, name string, id TraceID, parent uint64) (context.Context, *ActiveSpan) {
	rec := &Recorder{tracer: t, trace: id, service: t.service}
	sp := &ActiveSpan{rec: rec, span: Span{
		Trace:   id,
		ID:      NewSpanID(),
		Parent:  parent,
		Service: t.service,
		Name:    name,
		Start:   time.Now(),
	}}
	rec.root = sp.span.ID
	return newContext(ctx, rec, sp.span.ID), sp
}

// RecordRoot records a complete single-span trace straight into the
// buffer: the slow-capture path for requests that were not head-sampled
// but crossed the slow threshold, and the background path for sampled
// replication applies. Returns the new trace's ID (zero when the tracer
// or its buffer is nil).
func (t *Tracer) RecordRoot(name string, start time.Time, d time.Duration, attrs ...Attr) TraceID {
	if t == nil || t.buf == nil {
		return TraceID{}
	}
	id := NewTraceID()
	t.buf.Add(Trace{ID: id, Spans: []Span{{
		Trace:    id,
		ID:       NewSpanID(),
		Service:  t.service,
		Name:     name,
		Start:    start,
		Duration: d,
		Attrs:    attrs,
	}}})
	return id
}

// RecordSpans records a pre-built multi-span trace into the buffer —
// background work with internal structure, like a checkpoint with its
// pause sub-span. All spans must share Spans[0].Trace.
func (t *Tracer) RecordSpans(spans []Span) {
	if t == nil || t.buf == nil || len(spans) == 0 {
		return
	}
	t.buf.Add(Trace{ID: spans[0].Trace, Spans: spans})
}
