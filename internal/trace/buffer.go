package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one completed trace: its ID plus every span any process
// recorded for it.
type Trace struct {
	ID    TraceID
	Spans []Span
}

// Root returns the trace's root span: the first span whose parent is not
// among the trace's own spans (the true root has Parent zero; a server-side
// subtree's local root parents a span recorded by the coordinator). Nil
// when the trace is empty.
func (tr Trace) Root() *Span {
	if len(tr.Spans) == 0 {
		return nil
	}
	ids := make(map[uint64]bool, len(tr.Spans))
	for i := range tr.Spans {
		ids[tr.Spans[i].ID] = true
	}
	for i := range tr.Spans {
		if tr.Spans[i].Parent == 0 || !ids[tr.Spans[i].Parent] {
			return &tr.Spans[i]
		}
	}
	return &tr.Spans[0]
}

const bufferShards = 8

// ringShard is a fixed-capacity overwrite ring of traces under its own
// lock.
type ringShard struct {
	mu   sync.Mutex
	buf  []Trace
	next int // insertion cursor
	n    int // live entries, <= len(buf)
}

func (r *ringShard) add(tr Trace) {
	r.mu.Lock()
	r.buf[r.next] = tr
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// snapshot appends the shard's live traces, newest first.
func (r *ringShard) snapshot(dst []Trace) []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 1; i <= r.n; i++ {
		dst = append(dst, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return dst
}

// Buffer is the bounded in-memory destination for completed traces: a
// lock-sharded ring of recent traces (sharded by trace ID so concurrent
// request completions rarely contend) plus a separate ring that retains
// only traces whose root span crossed the slow threshold, so slow-query
// evidence survives long after the recent ring has cycled.
type Buffer struct {
	slowNS atomic.Int64
	recent [bufferShards]ringShard
	slow   ringShard
}

// NewBuffer sizes a buffer to retain roughly capacity recent traces (split
// across the shards) and capacity/2 slow traces.
func NewBuffer(capacity int) *Buffer {
	if capacity < bufferShards {
		capacity = bufferShards
	}
	b := &Buffer{}
	per := capacity / bufferShards
	if per < 1 {
		per = 1
	}
	for i := range b.recent {
		b.recent[i].buf = make([]Trace, per)
	}
	slowCap := capacity / 2
	if slowCap < 16 {
		slowCap = 16
	}
	b.slow.buf = make([]Trace, slowCap)
	return b
}

// SetSlowThreshold sets the root-span duration above which a trace is also
// retained in the slow ring. Zero disables slow retention. Matches the
// daemon's -slow-query-ms so logs and /traces/slow agree on "slow".
func (b *Buffer) SetSlowThreshold(d time.Duration) {
	b.slowNS.Store(int64(d))
}

// SlowThreshold returns the current slow-retention threshold.
func (b *Buffer) SlowThreshold() time.Duration {
	return time.Duration(b.slowNS.Load())
}

// Add records a completed trace. Nil-safe.
func (b *Buffer) Add(tr Trace) {
	if b == nil || len(tr.Spans) == 0 {
		return
	}
	b.recent[tr.ID.Lo%bufferShards].add(tr)
	if th := b.slowNS.Load(); th > 0 {
		if root := tr.Root(); root != nil && int64(root.Duration) >= th {
			b.slow.add(tr)
		}
	}
}

// Recent returns up to max traces, newest root first.
func (b *Buffer) Recent(max int) []Trace {
	if b == nil {
		return nil
	}
	var all []Trace
	for i := range b.recent {
		all = b.recent[i].snapshot(all)
	}
	return sortTrim(all, max)
}

// Slow returns up to max slow-retained traces, newest root first.
func (b *Buffer) Slow(max int) []Trace {
	if b == nil {
		return nil
	}
	return sortTrim(b.slow.snapshot(nil), max)
}

func sortTrim(all []Trace, max int) []Trace {
	sort.SliceStable(all, func(i, j int) bool {
		ri, rj := all[i].Root(), all[j].Root()
		if ri == nil || rj == nil {
			return rj == nil
		}
		return ri.Start.After(rj.Start)
	})
	if max > 0 && len(all) > max {
		all = all[:max]
	}
	return all
}
