package observer

import (
	"testing"

	"mkse/internal/trace"
)

// Every sampled probe cycle must land one background trace — an
// observer.tick root with a probe child — in the tracer's buffer, whether
// the probe succeeded or not.
func TestTickRecordsBackgroundTrace(t *testing.T) {
	buf := trace.NewBuffer(16)
	o := New(Config{
		Primary:   "127.0.0.1:1", // nothing listens there; the probe fails fast
		Followers: []string{"127.0.0.1:2"},
		FailAfter: 100, // never escalate to a failover in this test
		Tracer:    trace.New("observer", 1, buf),
	})
	o.Tick()
	o.Tick()

	traces := buf.Recent(10)
	if len(traces) != 2 {
		t.Fatalf("sampled %d tick traces, want 2", len(traces))
	}
	for _, tr := range traces {
		r := tr.Root()
		if r == nil || r.Name != "observer.tick" {
			t.Fatalf("tick trace mis-rooted: %+v", tr)
		}
		var outcome string
		for _, a := range r.Attrs {
			if a.Key == "outcome" {
				outcome = a.Value
			}
		}
		if outcome != "probe-failed" {
			t.Errorf("tick against a dead primary recorded outcome %q, want probe-failed", outcome)
		}
		var probe bool
		for _, sp := range tr.Spans {
			if sp.Name == "probe" && sp.Parent == r.ID {
				probe = true
			}
		}
		if !probe {
			t.Errorf("tick trace missing probe child: %+v", tr.Spans)
		}
	}
}
