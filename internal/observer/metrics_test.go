package observer

import (
	"strings"
	"testing"
	"time"

	"mkse/internal/telemetry"
)

// Probe failures land in the counter and surface through /healthz detail;
// the scrape-time gauges track Status without double bookkeeping.
func TestObserverMetrics(t *testing.T) {
	obs := New(Config{
		Primary:      "127.0.0.1:1", // nothing listens there
		Followers:    []string{"127.0.0.1:2"},
		ProbeTimeout: 50 * time.Millisecond,
		FailAfter:    10, // far above the ticks below: no failover attempt
	})
	reg := telemetry.New()
	obs.EnableMetrics(reg)

	obs.Tick()
	obs.Tick()

	if got := obs.probeFailures.Value(); got != 2 {
		t.Errorf("probe failure counter = %d, want 2", got)
	}
	if got := obs.failoverCount.Value(); got != 0 {
		t.Errorf("failover counter = %d, want 0", got)
	}

	h := obs.Health()
	if !h.Ready || h.Role != "observer" {
		t.Errorf("health = %+v, want ready observer", h)
	}
	if !strings.Contains(h.Detail, "failing probes") {
		t.Errorf("health detail %q should narrate the failing probes", h.Detail)
	}

	rendered := reg.Render()
	for _, want := range []string{
		"mkse_observer_probe_failures_total 2",
		"mkse_observer_failovers_total 0",
		"mkse_observer_promotions_total 0",
		"mkse_observer_consecutive_failures 2",
		"mkse_observer_term ",
		"mkse_observer_pending_repoints 0",
		"mkse_observer_pending_demotes 0",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// An unconfigured observer (no metrics enabled) ticks fine: the counters
// are nil and nil instruments no-op.
func TestObserverWithoutMetrics(t *testing.T) {
	obs := New(Config{
		Primary:      "127.0.0.1:1",
		ProbeTimeout: 50 * time.Millisecond,
		FailAfter:    10,
	})
	obs.Tick()
	if st := obs.Status(); st.ConsecFails != 1 {
		t.Errorf("ConsecFails = %d, want 1", st.ConsecFails)
	}
}
