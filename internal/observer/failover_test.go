package observer

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mkse/internal/bitindex"
	"mkse/internal/core"
	"mkse/internal/durable"
	"mkse/internal/faultnet"
	"mkse/internal/protocol"
	"mkse/internal/rank"
	"mkse/internal/service"
)

// End-to-end failover scenarios: real daemons over real TCP, faults injected
// by killing processes (listener + connections + engine, no checkpoint) or
// by the faultnet proxy (partitions that leave a zombie primary alive).
// Convergence is always judged the strong way — byte-identical search output
// against a sequential re-application of the acknowledged writes.

func tParams() core.Params {
	p := core.DefaultParams()
	p.Levels = rank.Levels{1, 5, 10}
	return p
}

var tZerosPerLevel = []int{30, 18, 8}

// docIndex derives document i's search index deterministically from i alone,
// so the writer, its retries, and the reference re-application all produce
// bit-identical vectors without sharing state.
func docIndex(p core.Params, i int) *core.SearchIndex {
	rng := rand.New(rand.NewSource(int64(1000 + i)))
	zeros := rng.Perm(p.R)[:tZerosPerLevel[0]]
	si := &core.SearchIndex{DocID: docID(i), Levels: make([]*bitindex.Vector, p.Eta())}
	for l := range si.Levels {
		v := bitindex.NewOnes(p.R)
		for _, z := range zeros[:tZerosPerLevel[l]] {
			v.SetBit(z, 0)
		}
		si.Levels[l] = v
	}
	return si
}

func docID(i int) string { return fmt.Sprintf("doc-%03d", i) }

// wireUpload pushes document i at addr over one bounded connection — the
// acknowledged-write primitive every scenario builds on.
func wireUpload(p core.Params, addr string, i int) error {
	si := docIndex(p, i)
	conn, err := net.DialTimeout("tcp", addr, 300*time.Millisecond)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	levels := make([][]byte, len(si.Levels))
	for l, v := range si.Levels {
		b, err := v.MarshalBinary()
		if err != nil {
			return err
		}
		levels[l] = b
	}
	_, err = protocol.NewConn(conn).Roundtrip(&protocol.Message{UploadReq: &protocol.UploadRequest{
		DocID: si.DocID, Levels: levels, Ciphertext: []byte("body of " + si.DocID), EncKey: []byte{0xEE},
	}})
	return err
}

// node is one cloud daemon under test, killable like a crashed process.
type node struct {
	eng  *durable.Engine
	svc  *service.CloudService
	l    net.Listener
	addr string

	mu   sync.Mutex
	dead bool
}

func startNode(t *testing.T, p core.Params, dir, primaryAddr string) *node {
	t.Helper()
	eng, err := durable.Open(dir, p, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	svc := &service.CloudService{
		Server: eng.Server(), Store: eng, WAL: eng, Eng: eng,
		HeartbeatEvery: 20 * time.Millisecond,
	}
	if primaryAddr != "" {
		svc.Replica = service.StartReplica(eng, primaryAddr, nil)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = svc.Serve(l) }()
	n := &node{eng: eng, svc: svc, l: l, addr: l.Addr().String()}
	t.Cleanup(n.kill)
	return n
}

// kill drops the node like a crashed process: no final checkpoint, no
// goodbye to its peers. Idempotent.
func (n *node) kill() {
	n.mu.Lock()
	if n.dead {
		n.mu.Unlock()
		return
	}
	n.dead = true
	n.mu.Unlock()
	n.l.Close()
	n.svc.Drain(0)
	if r := n.svc.CurrentReplica(); r != nil {
		r.Close()
	}
	n.eng.Crash()
}

// fingerprint renders the node's results for a query set — IDs, ranks,
// metadata bytes — into one string for byte-identical comparison.
func fingerprint(t *testing.T, srv *core.Server, qs []*bitindex.Vector) string {
	t.Helper()
	var b strings.Builder
	for qi, q := range qs {
		ms, err := srv.SearchTop(q, 0)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		fmt.Fprintf(&b, "q%d:", qi)
		for _, m := range ms {
			meta, err := m.Meta.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&b, " %s/%d/%x", m.DocID, m.Rank, meta)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// queriesFor builds queries matching a sample of the first n documents.
func queriesFor(p core.Params, n int) []*bitindex.Vector {
	rng := rand.New(rand.NewSource(7))
	var qs []*bitindex.Vector
	for i := 0; i < n && i < 8; i++ {
		si := docIndex(p, i*n/8)
		q := bitindex.NewOnes(p.R)
		zp := si.Levels[i%p.Eta()].ZeroPositions()
		for _, j := range rng.Perm(len(zp))[:3] {
			q.SetBit(zp[j], 0)
		}
		qs = append(qs, q)
	}
	return qs
}

func waitConverged(t *testing.T, a, b *durable.Engine) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if a.Position() == b.Position() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no convergence: %d vs %d", a.Position(), b.Position())
}

// waitStatus polls the observer until pred holds.
func waitStatus(t *testing.T, o *Observer, what string, pred func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st := o.Status(); pred(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("observer never reached: %s (status %+v)", what, o.Status())
	return Status{}
}

// referenceFingerprint re-applies the acknowledged writes sequentially into
// a fresh engine and fingerprints it — the ground truth every survivor must
// match byte for byte.
func referenceFingerprint(t *testing.T, p core.Params, n int, qs []*bitindex.Vector) string {
	t.Helper()
	ref, err := durable.Open(t.TempDir(), p, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Crash()
	for i := 0; i < n; i++ {
		si := docIndex(p, i)
		doc := &core.EncryptedDocument{ID: si.DocID, Ciphertext: []byte("body of " + si.DocID), EncKey: []byte{0xEE}}
		if err := ref.Upload(si, doc); err != nil {
			t.Fatal(err)
		}
	}
	return fingerprint(t, ref.Server(), qs)
}

// TestFailoverKillPrimaryMidWrite is the headline scenario: a sequential
// writer is pushing documents when the primary is killed mid-stream. The
// observer must detect, elect, promote and repoint with zero manual
// intervention; the writer reconciles by re-sending its journal at the new
// primary (uploads are idempotent replacements); and the final search output
// everywhere must be byte-identical to a sequential re-application of every
// acknowledged write.
func TestFailoverKillPrimaryMidWrite(t *testing.T) {
	p := tParams()
	prim := startNode(t, p, t.TempDir(), "")
	f1 := startNode(t, p, t.TempDir(), prim.addr)
	f2 := startNode(t, p, t.TempDir(), prim.addr)
	nodes := map[string]*node{f1.addr: f1, f2.addr: f2}

	obs := New(Config{
		Primary:      prim.addr,
		Followers:    []string{f1.addr, f2.addr},
		ProbeEvery:   15 * time.Millisecond,
		ProbeTimeout: 250 * time.Millisecond,
		FailAfter:    2,
	})
	obs.Start()
	defer obs.Close()

	const total, killAt = 60, 25
	acked := 0
	cur := prim.addr
	deadline := time.Now().Add(60 * time.Second)
	for acked < total {
		if time.Now().After(deadline) {
			t.Fatalf("writer stuck at %d/%d acknowledged writes", acked, total)
		}
		if st := obs.Status(); st.Primary != cur {
			// Failover behind our back: replay the journal so far at the new
			// primary — acknowledged writes that had not replicated when the
			// old primary died are restored, the rest are no-op replacements.
			cur = st.Primary
			for j := 0; j < acked; j++ {
				for wireUpload(p, cur, j) != nil {
					if time.Now().After(deadline) {
						t.Fatalf("journal replay stuck at write %d", j)
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
			continue
		}
		if err := wireUpload(p, cur, acked); err != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		acked++
		if acked == killAt {
			prim.kill()
		}
	}

	st := waitStatus(t, obs, "one failover", func(st Status) bool { return st.Failovers == 1 })
	newPrim, ok := nodes[st.Primary]
	if !ok {
		t.Fatalf("observer promoted %q, not one of the followers", st.Primary)
	}
	var survivor *node
	for addr, n := range nodes {
		if addr != st.Primary {
			survivor = n
		}
	}
	waitStatus(t, obs, "survivor repointed", func(st Status) bool { return len(st.PendingRepoint) == 0 })
	waitConverged(t, newPrim.eng, survivor.eng)

	if term := newPrim.eng.Term(); term != 1 {
		t.Fatalf("new primary at term %d, want 1", term)
	}
	if n := newPrim.eng.Server().NumDocuments(); n != total {
		t.Fatalf("new primary holds %d documents, want %d", n, total)
	}
	qs := queriesFor(p, total)
	want := referenceFingerprint(t, p, total, qs)
	if got := fingerprint(t, newPrim.eng.Server(), qs); got != want {
		t.Error("new primary's search output differs from sequential re-application of the acknowledged writes")
	}
	if got := fingerprint(t, survivor.eng.Server(), qs); got != want {
		t.Error("survivor's search output differs from sequential re-application of the acknowledged writes")
	}
}

// TestFailoverKillDuringPromote drives the nastiest window: the elected
// follower is killed immediately after its promotion succeeds, before any
// survivor is repointed. The observer must fail over again — at a higher
// term — and land the cluster on the remaining node.
func TestFailoverKillDuringPromote(t *testing.T) {
	p := tParams()
	prim := startNode(t, p, t.TempDir(), "")
	const seed = 10
	for i := 0; i < seed; i++ {
		if err := wireUpload(p, prim.addr, i); err != nil {
			t.Fatal(err)
		}
	}
	f1 := startNode(t, p, t.TempDir(), prim.addr)
	f2 := startNode(t, p, t.TempDir(), prim.addr)
	nodes := map[string]*node{f1.addr: f1, f2.addr: f2}
	waitConverged(t, prim.eng, f1.eng)
	waitConverged(t, prim.eng, f2.eng)

	obs := New(Config{
		Primary:      prim.addr,
		Followers:    []string{f1.addr, f2.addr},
		ProbeEvery:   15 * time.Millisecond,
		ProbeTimeout: 250 * time.Millisecond,
		FailAfter:    2,
	})
	// The hook runs on the observer's own goroutine right between the
	// promote and the repoints — kill the freshly promoted node there, once.
	var once sync.Once
	obs.afterPromote = func(addr string) {
		once.Do(func() { nodes[addr].kill() })
	}
	obs.Start()
	defer obs.Close()

	prim.kill()
	st := waitStatus(t, obs, "second failover", func(st Status) bool { return st.Failovers == 2 })
	final, ok := nodes[st.Primary]
	if !ok {
		t.Fatalf("final primary %q is not a known follower", st.Primary)
	}
	final.mu.Lock()
	dead := final.dead
	final.mu.Unlock()
	if dead {
		t.Fatal("observer settled on a dead node")
	}
	if st.Term != 2 || final.eng.Term() != 2 {
		t.Fatalf("terms after double failover: observer %d, node %d, want 2", st.Term, final.eng.Term())
	}
	if err := wireUpload(p, final.addr, seed); err != nil {
		t.Fatalf("write to twice-failed-over primary: %v", err)
	}
	if n := final.eng.Server().NumDocuments(); n != seed+1 {
		t.Fatalf("final primary holds %d documents, want %d", n, seed+1)
	}
}

// TestZombiePrimaryFencedAndRejoins partitions the primary behind a faultnet
// proxy instead of killing it: the observer fails over, the zombie keeps
// accepting a write on its side of the partition, and when the partition
// heals the observer demotes it into a follower — whose diverged tail (the
// zombie write) is wiped by the bootstrap, never forked into the history.
func TestZombiePrimaryFencedAndRejoins(t *testing.T) {
	p := tParams()
	prim := startNode(t, p, t.TempDir(), "")
	proxy, err := faultnet.Listen(prim.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// The cluster knows the primary by its proxy address only.
	const seed = 10
	for i := 0; i < seed; i++ {
		if err := wireUpload(p, proxy.Addr(), i); err != nil {
			t.Fatal(err)
		}
	}
	f1 := startNode(t, p, t.TempDir(), proxy.Addr())
	waitConverged(t, prim.eng, f1.eng)

	obs := New(Config{
		Primary:      proxy.Addr(),
		Followers:    []string{f1.addr},
		ProbeEvery:   15 * time.Millisecond,
		ProbeTimeout: 200 * time.Millisecond,
		FailAfter:    2,
	})
	obs.Start()
	defer obs.Close()

	// Partition. The observer fails over to the follower.
	proxy.Sever()
	waitStatus(t, obs, "failover past the partition", func(st Status) bool {
		return st.Failovers == 1 && st.Primary == f1.addr
	})

	// Split brain: the zombie, alive behind the partition, still takes a
	// write on its direct address. The new primary takes real writes.
	if err := wireUpload(p, prim.addr, 900); err != nil {
		t.Fatalf("zombie refused the split-brain write: %v", err)
	}
	for i := seed; i < seed+5; i++ {
		if err := wireUpload(p, f1.addr, i); err != nil {
			t.Fatalf("write to new primary: %v", err)
		}
	}

	// Heal. The observer demotes the zombie into a follower of f1; the
	// divergence rules force it through a bootstrap that discards its tail.
	proxy.Resume()
	waitStatus(t, obs, "zombie demoted", func(st Status) bool {
		return len(st.PendingDemote) == 0 && len(st.Followers) == 1
	})
	waitConverged(t, f1.eng, prim.eng)

	if term := prim.eng.Term(); term != 1 {
		t.Fatalf("rejoined zombie at term %d, want 1", term)
	}
	want := seed + 5
	if n := prim.eng.Server().NumDocuments(); n != want {
		t.Fatalf("rejoined zombie holds %d documents, want %d (its split-brain write must be gone)", n, want)
	}
	qs := queriesFor(p, want)
	ref := referenceFingerprint(t, p, want, qs)
	if got := fingerprint(t, f1.eng.Server(), qs); got != ref {
		t.Error("new primary differs from sequential re-application of the acknowledged writes")
	}
	if got := fingerprint(t, prim.eng.Server(), qs); got != ref {
		t.Error("rejoined zombie differs from the new primary's history")
	}
}

// TestObserverToleratesFlap: a transient stall shorter than FailAfter probes
// must not cost the primary its role.
func TestObserverToleratesFlap(t *testing.T) {
	p := tParams()
	prim := startNode(t, p, t.TempDir(), "")
	proxy, err := faultnet.Listen(prim.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	obs := New(Config{
		Primary:      proxy.Addr(),
		Followers:    []string{"127.0.0.1:1"}, // never needed
		ProbeTimeout: 100 * time.Millisecond,
		FailAfter:    4,
	})
	obs.Tick()
	if st := obs.Status(); st.ConsecFails != 0 {
		t.Fatalf("healthy probe counted as a failure: %+v", st)
	}

	proxy.Stall()
	obs.Tick()
	obs.Tick()
	if st := obs.Status(); st.ConsecFails != 2 || st.Failovers != 0 {
		t.Fatalf("after 2 stalled probes: %+v, want 2 consecutive failures and no failover", st)
	}

	proxy.Resume()
	obs.Tick()
	st := obs.Status()
	if st.ConsecFails != 0 || st.Failovers != 0 || st.Primary != proxy.Addr() {
		t.Fatalf("flap was not forgiven: %+v", st)
	}
}
