// Package observer is the failover daemon's brain, modeled on the Data
// Guard fast-start-failover observer: a third party that health-probes the
// primary cloud daemon, and when the primary stays unreachable past a
// consecutive-failure threshold, elects the lowest-lag reachable follower,
// promotes it (raising the cluster's fencing term), and repoints the
// surviving followers at it. An old primary that later resurrects is
// reconfigured into a follower of the new primary; its fenced log tail is
// discarded by the replication layer's divergence rules.
//
// The observer is deliberately stateless across restarts: everything it
// needs — positions, terms, roles — is re-learned by probing, and every
// action it takes (Promote, Reconfigure) is idempotent or term-guarded on
// the receiving side, so a crashed observer can simply be restarted.
package observer

import (
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"time"

	"mkse/internal/protocol"
	"mkse/internal/telemetry"
	"mkse/internal/trace"
)

// Config tunes an Observer. Primary and Followers are required.
type Config struct {
	// Primary is the cloud daemon currently accepting writes.
	Primary string
	// Followers are the replica daemons eligible for promotion.
	Followers []string
	// ProbeEvery is the health-probe interval (0 = 1s).
	ProbeEvery time.Duration
	// ProbeTimeout bounds each probe's dial plus round trip (0 = 1s).
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive failed primary probes trigger a
	// failover (0 = 3). One failed probe is routine — a GC pause, a dropped
	// packet; only a sustained outage may cost the primary its role.
	FailAfter int
	// Logger, if set, receives probe and failover notices.
	Logger *slog.Logger
	// Tracer, if set, head-samples probe cycles into background traces — an
	// "observer.tick" root with a "probe" child — landing in the tracer's
	// buffer, so a sidecar /traces scrape shows what the observer has been
	// doing and how long its probes take.
	Tracer *trace.Tracer
	// OnFailover, if set, is called after each completed promotion.
	OnFailover func(oldPrimary, newPrimary string, term uint64)
}

// Status is a point-in-time view of the observer's world.
type Status struct {
	Primary        string
	Followers      []string // sorted
	Failovers      int      // promotions performed
	ConsecFails    int      // current consecutive failed primary probes
	Term           uint64   // highest promotion term observed or issued
	PendingRepoint []string // followers not yet repointed at the new primary
	PendingDemote  []string // old primaries not yet reconfigured into followers
}

// Observer watches one primary and its followers. Create with New, start
// the probe loop with Start, stop with Close.
type Observer struct {
	cfg Config

	mu        sync.Mutex
	primary   string
	followers map[string]bool
	fails     int
	failovers int
	term      uint64
	repoint   map[string]bool // Reconfigure failed; retry while healthy
	demote    map[string]bool // old primaries to reconfigure when reachable

	// afterPromote, when set (by tests), runs after a successful Promote and
	// before the survivors are repointed — the window where a second fault
	// (the new primary dying mid-failover) is nastiest.
	afterPromote func(newPrimary string)

	// Counters set by EnableMetrics; nil-safe when disabled.
	probeFailures *telemetry.Counter
	failoverCount *telemetry.Counter
	promotions    *telemetry.Counter

	done chan struct{}
	wg   sync.WaitGroup
}

// EnableMetrics registers the observer's series on reg: probe-failure,
// failover and promotion counters, and scrape-time gauges for the highest
// term seen, the consecutive-failure streak, and the pending repoint and
// demote backlogs. Call it once, before Start.
func (o *Observer) EnableMetrics(reg *telemetry.Registry) {
	o.probeFailures = reg.Counter("mkse_observer_probe_failures_total",
		"Failed primary health probes.")
	o.failoverCount = reg.Counter("mkse_observer_failovers_total",
		"Completed failovers (a replacement primary is installed).")
	o.promotions = reg.Counter("mkse_observer_promotions_total",
		"Promote verbs issued (adoptions of an already-promoted peer not included).")
	reg.GaugeFunc("mkse_observer_term", "Highest promotion term observed or issued.",
		func() float64 { return float64(o.Status().Term) })
	reg.GaugeFunc("mkse_observer_consecutive_failures",
		"Current consecutive failed primary probes (failover triggers at the -fail-after threshold).",
		func() float64 { return float64(o.Status().ConsecFails) })
	reg.GaugeFunc("mkse_observer_pending_repoints",
		"Followers not yet repointed at the current primary.",
		func() float64 { return float64(len(o.Status().PendingRepoint)) })
	reg.GaugeFunc("mkse_observer_pending_demotes",
		"Old primaries not yet reconfigured into followers.",
		func() float64 { return float64(len(o.Status().PendingDemote)) })
}

// New builds an observer over the given topology.
func New(cfg Config) *Observer {
	o := &Observer{
		cfg:       cfg,
		primary:   cfg.Primary,
		followers: make(map[string]bool, len(cfg.Followers)),
		repoint:   make(map[string]bool),
		demote:    make(map[string]bool),
		done:      make(chan struct{}),
	}
	for _, f := range cfg.Followers {
		o.followers[f] = true
	}
	return o
}

// Start launches the probe loop in the background.
func (o *Observer) Start() {
	o.wg.Add(1)
	go func() {
		defer o.wg.Done()
		t := time.NewTicker(o.probeEvery())
		defer t.Stop()
		for {
			select {
			case <-o.done:
				return
			case <-t.C:
				o.Tick()
			}
		}
	}()
}

// Close stops the probe loop.
func (o *Observer) Close() {
	select {
	case <-o.done:
	default:
		close(o.done)
	}
	o.wg.Wait()
}

// Health reports the observer's /healthz payload. A running observer is
// ready by definition — it exists to act on outages, not avoid them — so
// readiness only reflects process liveness; the detail narrates an
// in-progress escalation or cleanup backlog for humans.
func (o *Observer) Health() telemetry.Health {
	st := o.Status()
	h := telemetry.Health{Ready: true, Role: "observer", Term: st.Term}
	switch {
	case st.ConsecFails > 0:
		h.Detail = fmt.Sprintf("primary %s failing probes (%d consecutive)", st.Primary, st.ConsecFails)
	case len(st.PendingRepoint)+len(st.PendingDemote) > 0:
		h.Detail = fmt.Sprintf("%d repoint(s) and %d demotion(s) pending", len(st.PendingRepoint), len(st.PendingDemote))
	}
	return h
}

// Status reports the observer's current view.
func (o *Observer) Status() Status {
	o.mu.Lock()
	defer o.mu.Unlock()
	return Status{
		Primary:        o.primary,
		Followers:      sortedKeys(o.followers),
		Failovers:      o.failovers,
		ConsecFails:    o.fails,
		Term:           o.term,
		PendingRepoint: sortedKeys(o.repoint),
		PendingDemote:  sortedKeys(o.demote),
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Tick runs one probe cycle: check the primary, escalate to failover after
// FailAfter consecutive failures, and retry any pending repoints and
// demotions while healthy. Exported so `mkse-observer -oneshot` and tests
// can drive the observer without the ticker.
func (o *Observer) Tick() {
	o.mu.Lock()
	primary := o.primary
	o.mu.Unlock()

	tr := o.cfg.Tracer
	sampled := tr != nil && tr.SampleBackground()
	var start time.Time
	var probeDur time.Duration
	outcome := "healthy"
	if sampled {
		start = time.Now()
		defer func() {
			id := trace.NewTraceID()
			rootID := trace.NewSpanID()
			tr.RecordSpans([]trace.Span{
				{Trace: id, ID: rootID, Service: tr.Service(), Name: "observer.tick",
					Start: start, Duration: time.Since(start), Attrs: []trace.Attr{
						{Key: "primary", Value: primary},
						{Key: "outcome", Value: outcome},
					}},
				{Trace: id, ID: trace.NewSpanID(), Parent: rootID, Service: tr.Service(),
					Name: "probe", Start: start, Duration: probeDur},
			})
		}()
	}

	st, err := o.probe(primary)
	if sampled {
		probeDur = time.Since(start)
	}
	if err == nil {
		o.mu.Lock()
		o.fails = 0
		if st.Term > o.term {
			o.term = st.Term
		}
		o.mu.Unlock()
		o.retryPending()
		return
	}

	o.mu.Lock()
	o.fails++
	fails := o.fails
	o.mu.Unlock()
	o.probeFailures.Inc()
	outcome = "probe-failed"
	o.logf("observer: primary %s unreachable (%d/%d): %v", primary, fails, o.failAfter(), err)
	if fails >= o.failAfter() {
		outcome = "failover"
		o.failover(primary)
	}
}

// candidate is one follower's probe result during an election.
type candidate struct {
	addr string
	st   *protocol.ReplicaStatusResponse
}

// failover elects and promotes a replacement for the dead primary. Any step
// that fails leaves the observer's state untouched past what already
// happened remotely — the next tick re-probes and retries, and the remote
// verbs are idempotent or term-guarded, so a half-done failover converges
// instead of compounding.
func (o *Observer) failover(deadPrimary string) {
	o.mu.Lock()
	followers := sortedKeys(o.followers)
	knownTerm := o.term
	o.mu.Unlock()

	// Probe the field. A follower that is already primary at a newer term
	// means a previous failover's promote landed but its acknowledgement was
	// lost (or another observer acted): adopt it instead of double-promoting.
	var cands []candidate
	var adopted *candidate
	maxTerm := knownTerm
	for _, addr := range followers {
		st, err := o.probe(addr)
		if err != nil {
			o.logf("observer: follower %s unreachable during election: %v", addr, err)
			continue
		}
		if st.Term > maxTerm {
			maxTerm = st.Term
		}
		if st.Durable && !st.Replica && st.Term > knownTerm {
			if adopted == nil || st.Term > adopted.st.Term {
				adopted = &candidate{addr: addr, st: st}
			}
			continue
		}
		if !st.Durable {
			o.logf("observer: follower %s is not durable; skipping it in the election", addr)
			continue
		}
		cands = append(cands, candidate{addr: addr, st: st})
	}

	var newPrimary string
	var newTerm uint64
	switch {
	case adopted != nil:
		newPrimary, newTerm = adopted.addr, adopted.st.Term
		o.logf("observer: adopting %s, already promoted at term %d", newPrimary, newTerm)
	case len(cands) == 0:
		o.logf("observer: no reachable follower to promote; will retry")
		return
	default:
		// Lowest lag wins — the candidate whose log kept the most
		// acknowledged writes. Candidates are probed in sorted address
		// order, so a strict > keeps the lexicographically smallest address
		// on ties, making the election deterministic.
		best := cands[0]
		for _, c := range cands[1:] {
			if c.st.Position > best.st.Position {
				best = c
			}
		}
		newPrimary, newTerm = best.addr, maxTerm+1
		if _, err := o.rpcPromote(newPrimary, newTerm); err != nil {
			o.logf("observer: promoting %s to term %d failed: %v; will retry", newPrimary, newTerm, err)
			return
		}
		o.promotions.Inc()
		o.logf("observer: promoted %s to primary at term %d", newPrimary, newTerm)
	}
	if o.afterPromote != nil {
		o.afterPromote(newPrimary)
	}

	// Commit the new topology, then repoint the survivors. Repoint failures
	// go to the pending set and are retried on every healthy tick.
	o.failoverCount.Inc()
	o.mu.Lock()
	o.failovers++
	o.fails = 0
	o.term = newTerm
	o.primary = newPrimary
	delete(o.followers, newPrimary)
	delete(o.repoint, newPrimary)
	o.demote[deadPrimary] = true
	survivors := sortedKeys(o.followers)
	o.mu.Unlock()

	for _, addr := range survivors {
		if err := o.rpcReconfigure(addr, newPrimary, newTerm); err != nil {
			o.logf("observer: repointing %s at %s failed: %v; will retry", addr, newPrimary, err)
			o.mu.Lock()
			o.repoint[addr] = true
			o.mu.Unlock()
		}
	}
	if o.cfg.OnFailover != nil {
		o.cfg.OnFailover(deadPrimary, newPrimary, newTerm)
	}
}

// retryPending re-attempts failed repoints and waits out dead old primaries,
// reconfiguring each into a follower of the current primary the moment it
// answers. Runs only while the primary probes healthy.
func (o *Observer) retryPending() {
	o.mu.Lock()
	primary := o.primary
	term := o.term
	repoint := sortedKeys(o.repoint)
	demote := sortedKeys(o.demote)
	o.mu.Unlock()

	for _, addr := range repoint {
		if err := o.rpcReconfigure(addr, primary, term); err != nil {
			continue
		}
		o.logf("observer: repointed %s at %s", addr, primary)
		o.mu.Lock()
		delete(o.repoint, addr)
		o.mu.Unlock()
	}
	for _, addr := range demote {
		if err := o.rpcReconfigure(addr, primary, term); err != nil {
			continue
		}
		o.logf("observer: old primary %s is back; demoted it to follow %s", addr, primary)
		o.mu.Lock()
		delete(o.demote, addr)
		o.followers[addr] = true
		o.mu.Unlock()
	}
}

// --- bounded wire helpers ---

// rpc performs one request/response exchange with a hard deadline covering
// dial, send and receive. Every observer action is bounded: an unresponsive
// daemon must never wedge the probe loop.
func (o *Observer) rpc(addr string, m *protocol.Message) (*protocol.Message, error) {
	conn, err := net.DialTimeout("tcp", addr, o.probeTimeout())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(o.probeTimeout()))
	return protocol.NewConn(conn).Roundtrip(m)
}

func (o *Observer) probe(addr string) (*protocol.ReplicaStatusResponse, error) {
	resp, err := o.rpc(addr, &protocol.Message{ReplicaStatusReq: &protocol.ReplicaStatusRequest{}})
	if err != nil {
		return nil, err
	}
	if resp.ReplicaStatusResp == nil {
		return nil, fmt.Errorf("observer: status response missing")
	}
	return resp.ReplicaStatusResp, nil
}

func (o *Observer) rpcPromote(addr string, term uint64) (*protocol.PromoteResponse, error) {
	resp, err := o.rpc(addr, &protocol.Message{PromoteReq: &protocol.PromoteRequest{Term: term}})
	if err != nil {
		return nil, err
	}
	if resp.PromoteResp == nil {
		return nil, fmt.Errorf("observer: promote response missing")
	}
	return resp.PromoteResp, nil
}

func (o *Observer) rpcReconfigure(addr, primary string, term uint64) error {
	resp, err := o.rpc(addr, &protocol.Message{ReconfigureReq: &protocol.ReconfigureRequest{Primary: primary, Term: term}})
	if err != nil {
		return err
	}
	if resp.ReconfigureResp == nil {
		return fmt.Errorf("observer: reconfigure response missing")
	}
	return nil
}

func (o *Observer) probeEvery() time.Duration {
	if o.cfg.ProbeEvery > 0 {
		return o.cfg.ProbeEvery
	}
	return time.Second
}

func (o *Observer) probeTimeout() time.Duration {
	if o.cfg.ProbeTimeout > 0 {
		return o.cfg.ProbeTimeout
	}
	return time.Second
}

func (o *Observer) failAfter() int {
	if o.cfg.FailAfter > 0 {
		return o.cfg.FailAfter
	}
	return 3
}

func (o *Observer) logf(format string, args ...any) {
	if o.cfg.Logger != nil {
		o.cfg.Logger.Info(fmt.Sprintf(format, args...))
	}
}
