package service

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mkse/internal/durable"
	"mkse/internal/protocol"
)

// WAL-shipping replication. A primary cloud daemon backed by the durable
// storage engine serves its write-ahead log over the wire protocol's
// replication verbs: a follower subscribes from its own log position, the
// primary bootstraps it from the newest checkpoint if the requested records
// have been pruned, then streams record batches as mutations arrive and
// heartbeats when idle. The follower replays every record through its own
// durable engine — logging before applying, exactly like a primary-side
// mutation — so a follower directory is crash-safe, resumes from its
// recovered position after a restart, and can be promoted to primary by
// simply restarting the daemon without -replica-of. Followers acknowledge
// their applied position on the same connection, which is what the primary
// reports as per-follower lag.

const (
	// replicaBatchBytes caps the record payload shipped per batch message,
	// comfortably under protocol.MaxFrameSize with envelope overhead.
	replicaBatchBytes = 4 << 20
	// snapshotChunkBytes slices a bootstrap checkpoint into frames.
	snapshotChunkBytes = 4 << 20
	// replicaRetryMin/Max bound the follower's reconnect backoff.
	replicaRetryMin = 100 * time.Millisecond
	replicaRetryMax = 5 * time.Second
)

// WALSource is the slice of the durable engine the replication server
// needs: positions, terms, record tailing, and checkpoint bytes for
// bootstrap. *durable.Engine satisfies it.
type WALSource interface {
	// Position returns the current log sequence number.
	Position() uint64
	// OldestRetained returns the oldest log position still replayable.
	OldestRetained() uint64
	// ReadWAL returns record payloads from a position (see durable.Engine.ReadWAL).
	ReadWAL(from uint64, maxBytes int) ([][]byte, uint64, error)
	// WaitWAL parks until the position exceeds from, a timeout, or close.
	WaitWAL(from uint64, timeout time.Duration) bool
	// ReadCheckpoint returns the newest checkpoint's bytes and position.
	ReadCheckpoint() ([]byte, uint64, error)
	// Term returns the promotion (fencing) term; TermStart the position
	// where it began — the divergence boundary for rejoining nodes.
	Term() uint64
	TermStart() uint64
	// BootstrapCheckpoint cuts and returns a fresh checkpoint, for wiping a
	// diverged follower.
	BootstrapCheckpoint() ([]byte, uint64, error)
}

var _ WALSource = (*durable.Engine)(nil)

// follower is one connected replication stream, tracked by the primary for
// lag reporting.
type follower struct {
	addr  string
	acked atomic.Uint64
}

// handleReplicaSubscribe serves one replication stream, blocking until the
// follower disconnects or the log becomes unreadable. It owns the
// connection: batches and heartbeats flow out from this goroutine while a
// helper goroutine drains the follower's position acknowledgements.
func (s *CloudService) handleReplicaSubscribe(pc *protocol.Conn, remote string, req *protocol.ReplicaSubscribeRequest) {
	wal := s.WAL
	if wal == nil {
		pc.Send(errMsg(fmt.Errorf("cloud: this server has no write-ahead log to replicate (start it with -data)")))
		return
	}
	term, termStart := wal.Term(), wal.TermStart()
	if req.Term > term {
		// The subscriber has seen a newer promotion than we have: we are the
		// stale side of a failover. Fence ourselves and tell it so.
		s.fence(req.Term)
		pc.Send(errMsgCode(protocol.CodeStaleTerm, fmt.Errorf("cloud: this server is at term %d, below the follower's %d — it is not the primary anymore", term, req.Term)))
		return
	}
	from := req.From
	pos := wal.Position()

	resp := &protocol.ReplicaSubscribeResponse{Position: pos, Term: term, TermStart: termStart}
	var snapshot []byte
	switch {
	case req.Bootstrap:
		// The follower asked for a wholesale reset (it was bounced with
		// CodeDiverged, or wants to discard its history).
		data, lsn, err := wal.BootstrapCheckpoint()
		if err != nil {
			pc.Send(errMsg(fmt.Errorf("cloud: cutting bootstrap checkpoint: %w", err)))
			return
		}
		snapshot = data
		resp.SnapshotLSN = lsn
		resp.SnapshotSize = len(data)
		from = lsn
	case req.Term < term && from > termStart:
		// The follower's log extends past the point where our term began, on
		// an older term: the tail beyond termStart was written by a deposed
		// primary and is not part of this history. Replaying records cannot
		// reconcile that — the follower must bootstrap.
		pc.Send(errMsgCode(protocol.CodeDiverged, fmt.Errorf("cloud: follower position %d is past term %d's start %d on an older term — its log has diverged; re-subscribe with bootstrap", from, term, termStart)))
		return
	case from > pos:
		pc.Send(errMsgCode(protocol.CodeDiverged, fmt.Errorf("cloud: follower position %d is ahead of primary position %d — diverged history; re-subscribe with bootstrap", from, pos)))
		return
	case from < wal.OldestRetained():
		// The follower's position predates the retained log: ship the newest
		// checkpoint first and stream from its position instead.
		data, lsn, err := wal.ReadCheckpoint()
		if err != nil {
			pc.Send(errMsg(fmt.Errorf("cloud: follower needs bootstrap but checkpoint is unavailable: %w", err)))
			return
		}
		snapshot = data
		resp.SnapshotLSN = lsn
		resp.SnapshotSize = len(data)
		from = lsn
	}
	if err := pc.Send(&protocol.Message{ReplicaSubscribeResp: resp}); err != nil {
		return
	}
	for off := 0; off < len(snapshot); off += snapshotChunkBytes {
		end := min(off+snapshotChunkBytes, len(snapshot))
		chunk := &protocol.ReplicaSnapshotChunk{Data: snapshot[off:end], Last: end == len(snapshot)}
		if err := pc.Send(&protocol.Message{ReplicaSnapshot: chunk}); err != nil {
			return
		}
	}
	logf(s.Logger, "cloud: replica %s subscribed from position %d (snapshot: %d bytes)", remote, from, len(snapshot))

	f := &follower{addr: remote}
	f.acked.Store(from)
	s.addFollower(f)
	defer s.removeFollower(f)

	// The ack reader owns the connection's receive side for the stream's
	// lifetime; `done` closing means the follower hung up.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := pc.Recv()
			if err != nil {
				return
			}
			if m.ReplicaAck != nil {
				if t := m.ReplicaAck.Term; t > wal.Term() {
					// The follower has moved to a newer term than ours — a
					// promotion happened behind our back. We are a zombie:
					// fence and drop the stream.
					s.fence(t)
					return
				}
				f.acked.Store(m.ReplicaAck.Position)
			}
		}
	}()

	hb := s.heartbeatEvery()
	for {
		select {
		case <-done:
			logf(s.Logger, "cloud: replica %s disconnected at position %d", remote, f.acked.Load())
			return
		default:
		}
		records, next, err := wal.ReadWAL(from, replicaBatchBytes)
		if err != nil {
			// Includes durable.ErrTruncatedHistory when a checkpoint pruned
			// the records mid-stream: the follower reconnects and bootstraps.
			pc.Send(errMsg(fmt.Errorf("cloud: replication stream: %w", err)))
			return
		}
		if len(records) == 0 {
			if !wal.WaitWAL(from, hb) {
				// Idle past the heartbeat interval: prove liveness and ship
				// the current position so the follower can measure lag.
				beat := &protocol.ReplicaRecordBatch{From: from, Position: wal.Position(), Term: wal.Term()}
				if err := pc.Send(&protocol.Message{ReplicaRecords: beat}); err != nil {
					return
				}
			}
			continue
		}
		batch := &protocol.ReplicaRecordBatch{From: from, Records: records, Position: wal.Position(), Term: wal.Term()}
		if err := pc.Send(&protocol.Message{ReplicaRecords: batch}); err != nil {
			return
		}
		from = next
	}
}

// heartbeatEvery returns the stream's idle heartbeat interval.
func (s *CloudService) heartbeatEvery() time.Duration {
	if s.HeartbeatEvery > 0 {
		return s.HeartbeatEvery
	}
	return 500 * time.Millisecond
}

func (s *CloudService) addFollower(f *follower) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.followers == nil {
		s.followers = make(map[*follower]struct{})
	}
	s.followers[f] = struct{}{}
}

func (s *CloudService) removeFollower(f *follower) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	delete(s.followers, f)
}

// handleReplicaStatus reports where this daemon stands in the replicated
// log: its own position, the primary's (as last heard, for a follower), and
// the acknowledged position of every connected follower (for a primary).
func (s *CloudService) handleReplicaStatus() *protocol.Message {
	resp := &protocol.ReplicaStatusResponse{}
	if s.WAL != nil {
		resp.Durable = true
		resp.Position = s.WAL.Position()
		resp.PrimaryPosition = resp.Position
		resp.Term = s.WAL.Term()
	}
	if r := s.replica(); r != nil {
		st := r.Status()
		resp.Replica = true
		resp.Connected = st.Connected
		resp.Position = st.Position
		resp.PrimaryPosition = st.PrimaryPosition
	}
	s.replMu.Lock()
	for f := range s.followers {
		resp.Followers = append(resp.Followers, protocol.FollowerWire{Addr: f.addr, Acked: f.acked.Load()})
	}
	s.replMu.Unlock()
	sort.Slice(resp.Followers, func(i, j int) bool { return resp.Followers[i].Addr < resp.Followers[j].Addr })
	return &protocol.Message{ReplicaStatusResp: resp}
}

// ReplicaStatus is a point-in-time view of a follower's replication stream.
type ReplicaStatus struct {
	// Position is the follower's own applied (and logged) position.
	Position uint64
	// PrimaryPosition is the newest primary position heard on the stream;
	// PrimaryPosition - Position is the follower's lag in records.
	PrimaryPosition uint64
	// Connected reports whether the stream is currently established.
	Connected bool
	// LastError is the most recent stream failure, nil after a healthy
	// (re)connect.
	LastError error
}

// Replica streams a primary's write-ahead log into a local durable engine.
// Start it with StartReplica; it bootstraps from the primary's newest
// checkpoint when needed, applies records through the engine (so they are
// locally durable before they are acknowledged), sends position acks, and
// reconnects with backoff on any failure — resuming from the engine's
// recovered position, which is what makes a follower crash mid-catch-up
// safe to restart.
type Replica struct {
	eng     *durable.Engine
	primary string
	logger  *slog.Logger

	mu         sync.Mutex
	primaryPos uint64
	connected  bool
	lastErr    error
	conn       net.Conn
	closed     bool
	// needBootstrap is set after the primary bounced a subscribe with
	// CodeDiverged: our log tail was written by a deposed primary and must
	// be discarded. The next subscribe requests a wholesale reset.
	needBootstrap bool

	done chan struct{}
	wg   sync.WaitGroup
}

// Primary returns the address this replica streams from.
func (r *Replica) Primary() string { return r.primary }

// StartReplica begins replicating primaryAddr's log into eng and returns
// immediately; the stream (re)connects in the background. The engine must
// use the same scheme parameters as the primary. Mutations must not be fed
// to eng from anywhere else while the replica runs.
func StartReplica(eng *durable.Engine, primaryAddr string, logger *slog.Logger) *Replica {
	r := &Replica{
		eng:     eng,
		primary: primaryAddr,
		logger:  logger,
		done:    make(chan struct{}),
	}
	r.wg.Add(1)
	go r.run()
	return r
}

// Status returns the replica's current positions and stream health.
func (r *Replica) Status() ReplicaStatus {
	pos := r.eng.Position()
	r.mu.Lock()
	defer r.mu.Unlock()
	pp := r.primaryPos
	if pp < pos {
		pp = pos
	}
	return ReplicaStatus{Position: pos, PrimaryPosition: pp, Connected: r.connected, LastError: r.lastErr}
}

// Close stops the stream and waits for it to wind down. The engine is left
// open — closing it is the caller's job, after Close returns.
func (r *Replica) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	conn := r.conn
	r.mu.Unlock()
	close(r.done)
	if conn != nil {
		conn.Close()
	}
	r.wg.Wait()
	return nil
}

// run is the reconnect loop.
func (r *Replica) run() {
	defer r.wg.Done()
	backoff := replicaRetryMin
	for {
		select {
		case <-r.done:
			return
		default:
		}
		start := time.Now()
		err := r.stream()
		r.mu.Lock()
		r.connected = false
		if err != nil && !r.closed {
			r.lastErr = err
		}
		closed := r.closed
		r.mu.Unlock()
		if closed {
			return
		}
		if err != nil {
			logf(r.logger, "replica: stream from %s: %v", r.primary, err)
		}
		// A stream that lived a while earns a fresh backoff.
		if time.Since(start) > replicaRetryMax {
			backoff = replicaRetryMin
		}
		select {
		case <-r.done:
			return
		case <-time.After(backoff):
		}
		backoff = min(backoff*2, replicaRetryMax)
	}
}

// stream runs one subscription until it fails.
func (r *Replica) stream() error {
	conn, err := net.DialTimeout("tcp", r.primary, DialTimeout)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		conn.Close()
		return nil
	}
	r.conn = conn
	r.mu.Unlock()
	defer func() {
		conn.Close()
		r.mu.Lock()
		r.conn = nil
		r.mu.Unlock()
	}()

	pc := protocol.NewConn(conn)
	from := r.eng.Position()
	r.mu.Lock()
	boot := r.needBootstrap
	r.mu.Unlock()
	sub := &protocol.ReplicaSubscribeRequest{From: from, Term: r.eng.Term(), Bootstrap: boot}
	if err := pc.Send(&protocol.Message{ReplicaSubscribeReq: sub}); err != nil {
		return err
	}
	m, err := pc.Recv()
	if err != nil {
		return err
	}
	if m.Error != nil {
		if m.Error.Code == protocol.CodeDiverged {
			// Our log holds records the primary's history does not share.
			// Ask for a wholesale reset on the next attempt.
			r.mu.Lock()
			r.needBootstrap = true
			r.mu.Unlock()
			return fmt.Errorf("primary rejected subscription (diverged log; will bootstrap): %s", m.Error.Text)
		}
		return fmt.Errorf("primary rejected subscription: %s", m.Error.Text)
	}
	resp := m.ReplicaSubscribeResp
	if resp == nil {
		return errors.New("primary sent no subscribe response")
	}
	if ours := r.eng.Term(); resp.Term < ours {
		// A primary on an older term is a resurrected zombie: never apply
		// its records. (It learns of its staleness from our subscribe term;
		// keep retrying until it is fenced or we are reconfigured.)
		return fmt.Errorf("primary is at stale term %d (ours is %d); refusing its stream", resp.Term, ours)
	}

	if resp.SnapshotSize > 0 {
		data := make([]byte, 0, resp.SnapshotSize)
		for {
			cm, err := pc.Recv()
			if err != nil {
				return fmt.Errorf("receiving bootstrap snapshot: %w", err)
			}
			chunk := cm.ReplicaSnapshot
			if chunk == nil {
				return errors.New("primary interrupted the bootstrap snapshot")
			}
			data = append(data, chunk.Data...)
			if chunk.Last {
				break
			}
		}
		if len(data) != resp.SnapshotSize {
			return fmt.Errorf("bootstrap snapshot is %d bytes, primary announced %d", len(data), resp.SnapshotSize)
		}
		if err := r.eng.ResetToCheckpoint(data, resp.SnapshotLSN); err != nil {
			return err
		}
		r.mu.Lock()
		r.needBootstrap = false
		r.mu.Unlock()
		logf(r.logger, "replica: bootstrapped from primary checkpoint at position %d", resp.SnapshotLSN)
	}

	r.mu.Lock()
	if resp.Position > r.primaryPos {
		r.primaryPos = resp.Position
	}
	r.connected = true
	r.lastErr = nil
	r.mu.Unlock()

	for {
		m, err := pc.Recv()
		if err != nil {
			return err
		}
		if m.Error != nil {
			return fmt.Errorf("primary closed the stream: %s", m.Error.Text)
		}
		batch := m.ReplicaRecords
		if batch == nil {
			return errors.New("unexpected message on replication stream")
		}
		if batch.Term != 0 && batch.Term < r.eng.Term() {
			return fmt.Errorf("stream fell to stale term %d (ours is %d); dropping it", batch.Term, r.eng.Term())
		}
		pos := r.eng.Position()
		records := batch.Records
		switch {
		case batch.From > pos:
			return fmt.Errorf("replication gap: primary streamed from %d, follower is at %d", batch.From, pos)
		case batch.From < pos:
			// Overlap after a reconnect race: the records up to our position
			// are already logged and applied.
			skip := pos - batch.From
			if skip >= uint64(len(records)) {
				records = nil
			} else {
				records = records[skip:]
			}
		}
		for _, rec := range records {
			if err := r.eng.ApplyReplicated(rec); err != nil {
				return fmt.Errorf("applying replicated record: %w", err)
			}
		}
		r.mu.Lock()
		if batch.Position > r.primaryPos {
			r.primaryPos = batch.Position
		}
		r.mu.Unlock()
		if err := pc.Send(&protocol.Message{ReplicaAck: &protocol.ReplicaAckMsg{Position: r.eng.Position(), Term: r.eng.Term()}}); err != nil {
			return err
		}
	}
}
