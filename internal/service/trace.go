package service

import (
	"context"
	"time"

	"mkse/internal/core"
	"mkse/internal/protocol"
	"mkse/internal/trace"
)

// This file is the service layer's tracing glue: wire conversions between
// trace.Span/SpanContext and their protocol twins, the context-aware
// mutation backend, and EnableTracing — the one call that turns a cloud
// daemon's tracing on.

// ctxBackend is the optional context-aware half of Backend. The durable
// engine implements it, hanging WAL append/fsync spans under a traced
// request; a plain core.Server does not, and traced requests simply record
// no WAL spans there.
type ctxBackend interface {
	UploadCtx(ctx context.Context, si *core.SearchIndex, doc *core.EncryptedDocument) error
	DeleteCtx(ctx context.Context, docID string) error
}

// EnableTracing attaches t to the service: incoming requests are adopted
// or head-sampled into traces (see Serve), and the core server's scan
// observer is pointed at the request context so every sampled search gets
// a "scan" span. The installed observer checks the context first, so with
// tracing enabled but a request unsampled the scan path performs one
// context lookup and allocates nothing — the allocation-free guarantee
// TestSearchScanPathAllocationFree pins survives tracing.
func (s *CloudService) EnableTracing(t *trace.Tracer) {
	s.Tracer = t
	s.Server.ObserveScanContexts(func(ctx context.Context, start time.Time, d time.Duration) {
		trace.AddCompleted(ctx, "scan", start, d)
	})
}

// traceCtxFromWire validates and converts a wire trace context. A nil or
// malformed context (zero IDs — a truncated or hostile frame) converts to
// the zero SpanContext, which ContinueRequest treats as absent.
func traceCtxFromWire(w *protocol.TraceContextWire) trace.SpanContext {
	if w == nil {
		return trace.SpanContext{}
	}
	return trace.SpanContext{
		Trace:   trace.TraceID{Hi: w.TraceHi, Lo: w.TraceLo},
		Span:    w.SpanID,
		Sampled: w.Sampled,
	}
}

// traceCtxToWire stamps a span's propagation context onto an outgoing
// request; nil when the span is not sampled (the common case), so untraced
// requests carry no trace field at all.
func traceCtxToWire(sc trace.SpanContext) *protocol.TraceContextWire {
	if !sc.Valid() {
		return nil
	}
	return &protocol.TraceContextWire{
		TraceHi: sc.Trace.Hi,
		TraceLo: sc.Trace.Lo,
		SpanID:  sc.Span,
		Sampled: true,
	}
}

// spansToWire encodes recorded spans for echoing on a response.
func spansToWire(spans []trace.Span) []protocol.SpanWire {
	if len(spans) == 0 {
		return nil
	}
	out := make([]protocol.SpanWire, 0, len(spans))
	for _, sp := range spans {
		w := protocol.SpanWire{
			TraceHi:       sp.Trace.Hi,
			TraceLo:       sp.Trace.Lo,
			SpanID:        sp.ID,
			ParentID:      sp.Parent,
			Service:       sp.Service,
			Name:          sp.Name,
			StartUnixNano: sp.Start.UnixNano(),
			DurationNanos: int64(sp.Duration),
		}
		if len(sp.Attrs) > 0 {
			w.Attrs = make([]protocol.SpanAttrWire, len(sp.Attrs))
			for i, a := range sp.Attrs {
				w.Attrs[i] = protocol.SpanAttrWire{Key: a.Key, Value: a.Value}
			}
		}
		out = append(out, w)
	}
	return out
}

// spansFromWire decodes spans echoed by a peer, keeping only well-formed
// spans belonging to trace id — a confused or hostile peer must not be
// able to graft spans into a trace it was not part of.
func spansFromWire(id trace.TraceID, ws []protocol.SpanWire) []trace.Span {
	if len(ws) == 0 {
		return nil
	}
	out := make([]trace.Span, 0, len(ws))
	for _, w := range ws {
		if w.SpanID == 0 || (trace.TraceID{Hi: w.TraceHi, Lo: w.TraceLo}) != id {
			continue
		}
		sp := trace.Span{
			Trace:    id,
			ID:       w.SpanID,
			Parent:   w.ParentID,
			Service:  w.Service,
			Name:     w.Name,
			Start:    time.Unix(0, w.StartUnixNano),
			Duration: time.Duration(w.DurationNanos),
		}
		if len(w.Attrs) > 0 {
			sp.Attrs = make([]trace.Attr, len(w.Attrs))
			for i, a := range w.Attrs {
				sp.Attrs[i] = trace.Attr{Key: a.Key, Value: a.Value}
			}
		}
		out = append(out, sp)
	}
	return out
}
