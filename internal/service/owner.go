package service

import (
	"context"
	"fmt"
	"log/slog"
	"math/big"
	"net"
	"time"

	"mkse/internal/core"
	"mkse/internal/protocol"
	"mkse/internal/trace"
)

// OwnerService exposes a core.Owner over TCP: Enroll, Trapdoor and
// BlindDecrypt endpoints. Trapdoor and BlindDecrypt requests must carry a
// valid signature from an enrolled user (Theorem 4); Enroll is the
// bootstrap step that registers the user's verification key.
type OwnerService struct {
	Owner *core.Owner
	// IdleTimeout, when non-zero, bounds how long a connection may sit
	// between requests before it is dropped.
	IdleTimeout time.Duration
	// Tracer, when set, samples requests into single-span traces (the owner
	// daemon has no downstream calls to fan a trace into): an incoming
	// sampled context is continued so a traced client's enrollment or
	// blind-decrypt round trip shows up in the assembled tree, other
	// requests are head-sampled 1 in N.
	Tracer *trace.Tracer
	Logger *slog.Logger // optional
}

// Serve accepts connections on l until it is closed.
func (s *OwnerService) Serve(l net.Listener) error {
	return serveLoop(l, s.Logger, s.IdleTimeout, nil, func(_ *protocol.Conn, _ net.Conn, m *protocol.Message) *protocol.Message {
		verb := ownerVerbOf(m)
		var root *trace.ActiveSpan
		if s.Tracer != nil {
			_, root = s.Tracer.ContinueRequest(context.Background(), "owner:"+verb, traceCtxFromWire(m.Trace))
		}
		resp := s.dispatchOwner(m, verb)
		if root != nil {
			if resp != nil && resp.Error != nil {
				root.SetAttr("error", resp.Error.Text)
			}
			root.End()
			if resp != nil {
				resp.Spans = spansToWire(root.Spans())
			}
		}
		return resp
	})
}

// ownerVerbOf classifies an owner-side request for trace span names.
func ownerVerbOf(m *protocol.Message) string {
	switch {
	case m.EnrollReq != nil:
		return "enroll"
	case m.TrapdoorReq != nil:
		return "trapdoor"
	case m.RefreshReq != nil:
		return "refresh"
	case m.BlindDecryptReq != nil:
		return "blinddecrypt"
	default:
		return "unknown"
	}
}

func (s *OwnerService) dispatchOwner(m *protocol.Message, verb string) *protocol.Message {
	switch verb {
	case "enroll":
		return s.handleEnroll(m.EnrollReq)
	case "trapdoor":
		return s.handleTrapdoor(m.TrapdoorReq)
	case "refresh":
		return s.handleRefresh(m.RefreshReq)
	case "blinddecrypt":
		return s.handleBlindDecrypt(m.BlindDecryptReq)
	default:
		return errMsg(fmt.Errorf("owner: unsupported request"))
	}
}

func (s *OwnerService) handleEnroll(req *protocol.EnrollRequest) *protocol.Message {
	pub, err := req.UserPub.ToPublicKey()
	if err != nil {
		return errMsg(fmt.Errorf("owner: enroll: %w", err))
	}
	if err := s.Owner.RegisterUser(req.UserID, pub); err != nil {
		return errMsg(err)
	}
	rts := s.Owner.RandomTrapdoors()
	wire := make([][]byte, len(rts))
	for i, v := range rts {
		wire[i] = marshalVector(v)
	}
	logf(s.Logger, "owner: enrolled user %q", req.UserID)
	return &protocol.Message{EnrollResp: &protocol.EnrollResponse{
		Params:          protocol.FromParams(s.Owner.Params()),
		OwnerPub:        protocol.FromPublicKey(s.Owner.PublicKey()),
		Epoch:           s.Owner.Epoch(),
		RandomTrapdoors: wire,
	}}
}

func (s *OwnerService) handleTrapdoor(req *protocol.TrapdoorRequest) *protocol.Message {
	signable := protocol.SignableTrapdoor(req.UserID, req.BinIDs)
	if err := s.Owner.VerifyUser(req.UserID, signable, req.Sig); err != nil {
		return errMsg(fmt.Errorf("owner: trapdoor request rejected: %w", err))
	}
	resp := &protocol.TrapdoorResponse{BinIDs: req.BinIDs, Epoch: s.Owner.Epoch()}
	if req.WantVectors {
		vs, err := s.Owner.TrapdoorVectors(req.BinIDs)
		if err != nil {
			return errMsg(err)
		}
		resp.Vectors = make(map[string][]byte, len(vs))
		for w, v := range vs {
			resp.Vectors[w] = marshalVector(v)
		}
		logf(s.Logger, "owner: served %d trapdoor vectors to %q", len(vs), req.UserID)
	} else {
		keys, err := s.Owner.TrapdoorKeys(req.BinIDs)
		if err != nil {
			return errMsg(err)
		}
		resp.Keys = keys
		logf(s.Logger, "owner: served %d bin keys to %q", len(keys), req.UserID)
	}
	return &protocol.Message{TrapdoorResp: resp}
}

func (s *OwnerService) handleRefresh(req *protocol.RefreshRequest) *protocol.Message {
	signable := protocol.SignableRefresh(req.UserID)
	if err := s.Owner.VerifyUser(req.UserID, signable, req.Sig); err != nil {
		return errMsg(fmt.Errorf("owner: refresh request rejected: %w", err))
	}
	rts := s.Owner.RandomTrapdoors()
	wire := make([][]byte, len(rts))
	for i, v := range rts {
		wire[i] = marshalVector(v)
	}
	return &protocol.Message{RefreshResp: &protocol.RefreshResponse{
		Epoch:           s.Owner.Epoch(),
		RandomTrapdoors: wire,
	}}
}

func (s *OwnerService) handleBlindDecrypt(req *protocol.BlindDecryptRequest) *protocol.Message {
	signable := protocol.SignableBlindDecrypt(req.UserID, req.Z)
	if err := s.Owner.VerifyUser(req.UserID, signable, req.Sig); err != nil {
		return errMsg(fmt.Errorf("owner: blind-decrypt request rejected: %w", err))
	}
	zbar, err := s.Owner.BlindDecrypt(new(big.Int).SetBytes(req.Z))
	if err != nil {
		return errMsg(err)
	}
	return &protocol.Message{BlindDecryptResp: &protocol.BlindDecryptResponse{
		ZBar: zbar.Bytes(),
	}}
}
