package service

import (
	"net"
	"strings"
	"testing"

	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/durable"
	"mkse/internal/protocol"
	"mkse/internal/rank"
	"mkse/internal/telemetry"
)

// metricsDeployment is a private owner+cloud pair with metrics enabled —
// the shared deployment is not used because EnableMetrics mutates the
// service and the assertions below count absolute requests.
func metricsDeployment(t *testing.T) (*telemetry.Registry, *CloudService, string, string, []*corpus.Document) {
	t.Helper()
	p := core.DefaultParams().WithLevels(rank.Levels{1, 5, 10})
	p.Bins = 64
	owner, err := core.NewOwner(p, 99)
	if err != nil {
		t.Fatal(err)
	}
	server, err := core.NewServer(p)
	if err != nil {
		t.Fatal(err)
	}
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: 10, KeywordsPerDoc: 8, Dictionary: corpus.Dictionary(100),
		MaxTermFreq: 10, ContentWords: 10, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var items []UploadItem
	for _, d := range docs {
		si, enc, err := owner.Prepare(d)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, UploadItem{Index: si, Doc: enc})
	}

	reg := telemetry.New()
	svc := &CloudService{Server: server, Cache: NewResultCache(1 << 20)}
	svc.EnableMetrics(reg)

	ownerL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cloudL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ownerL.Close(); cloudL.Close() })
	go func() { _ = (&OwnerService{Owner: owner}).Serve(ownerL) }()
	go func() { _ = svc.Serve(cloudL) }()

	if err := UploadAll(cloudL.Addr().String(), items); err != nil {
		t.Fatal(err)
	}
	return reg, svc, ownerL.Addr().String(), cloudL.Addr().String(), docs
}

// One live deployment: requests flow, then the scrape must show them — the
// per-verb latency counts, the error counter on a failed fetch, the scan
// histogram fed by core, the store gauges, the role series, and an
// in-flight gauge back at zero once the requests are done.
func TestEnableMetricsEndToEnd(t *testing.T) {
	reg, _, ownerAddr, cloudAddr, docs := metricsDeployment(t)

	client, err := Dial("metrics-alice", ownerAddr, cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Search(docs[0].Keywords()[:2], 5); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Retrieve("no-such-document"); err == nil {
		t.Fatal("retrieving a missing document should fail")
	}

	got := reg.Render()
	for _, want := range []string{
		`mkse_request_duration_seconds_count{verb="search"} 1`,
		`mkse_request_duration_seconds_count{verb="upload"} 10`,
		`mkse_request_errors_total{verb="fetch"} 1`,
		`mkse_request_errors_total{verb="search"} 0`,
		"mkse_requests_in_flight 0",
		"mkse_documents 10",
		"mkse_epoch ",
		`mkse_role{role="standalone"} 1`,
		"mkse_qcache_misses_total 1",
		"mkse_scan_duration_seconds_count 1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// No WAL: the durable series must be absent, mirroring StatsJSON.
	for _, absent := range []string{SeriesWALPosition, SeriesTerm} {
		if strings.Contains(got, absent) {
			t.Errorf("memory-only daemon scrape contains %q", absent)
		}
	}
}

func TestHealthRoles(t *testing.T) {
	p := core.DefaultParams()
	server, err := core.NewServer(p)
	if err != nil {
		t.Fatal(err)
	}

	s := &CloudService{Server: server}
	if h := s.Health(0); !h.Ready || h.Role != "standalone" {
		t.Errorf("standalone health = %+v, want ready standalone", h)
	}

	// A fenced ex-primary is never ready.
	s.fence(7)
	if h := s.Health(0); h.Ready || h.Role != "fenced" || h.Detail == "" {
		t.Errorf("fenced health = %+v, want unready fenced with detail", h)
	}

	// A follower whose stream is down (primary unreachable) is not ready,
	// and the detail says why.
	eng, err := durable.Open(t.TempDir(), p, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	r := StartReplica(eng, "127.0.0.1:1", nil)
	defer r.Close()
	f := &CloudService{Server: eng.Server(), Store: eng, WAL: eng, Eng: eng, Replica: r}
	if h := f.Health(0); h.Ready || h.Role != "follower" || !strings.Contains(h.Detail, "replication stream down") {
		t.Errorf("disconnected follower health = %+v, want unready with stream-down detail", h)
	}
}

func TestStatsJSONKeys(t *testing.T) {
	st := &protocol.StatsResponse{NumDocuments: 4, NumShards: 2, Epoch: 9}
	got := StatsJSON(st)
	for _, key := range []string{SeriesDocuments, SeriesShards, SeriesEpoch} {
		if _, ok := got[key]; !ok {
			t.Errorf("missing %q", key)
		}
	}
	// Memory-only, no cache: the conditional series are omitted, as on a
	// scrape of the same daemon.
	for _, key := range []string{SeriesWALPosition, SeriesTerm, SeriesReplicaLag, SeriesQCacheHits} {
		if _, ok := got[key]; ok {
			t.Errorf("memory-only stats should omit %q", key)
		}
	}

	st.Durable = true
	st.WALPosition = 42
	st.Term = 3
	st.Replica = true
	st.ReplicaConnected = true
	st.PrimaryPosition = 44
	st.Cache.Enabled = true
	st.Cache.Hits = 5
	got = StatsJSON(st)
	if got[SeriesWALPosition] != uint64(42) || got[SeriesTerm] != uint64(3) {
		t.Errorf("durable series wrong: %v", got)
	}
	if got[SeriesReplicaLag] != uint64(2) || got[SeriesReplicaConnected] != 1 {
		t.Errorf("replica series wrong: %v", got)
	}
	if got[SeriesQCacheHits] != uint64(5) {
		t.Errorf("cache series wrong: %v", got)
	}
}
