package service

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mkse/internal/cluster"
	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/faultnet"
	"mkse/internal/rank"
	"mkse/internal/trace"
)

// tracedCluster is a 2-partition loopback cluster with tracing enabled on
// every daemon before it starts serving (so no request can race the Tracer
// field under -race) and a fat client carrying its own tracer.
type tracedCluster struct {
	svcs    []*CloudService
	bufs    []*trace.Buffer
	proxies []*faultnet.Proxy
	cfg     cluster.Config
	client  *Client
	cbuf    *trace.Buffer
}

// startTracedCluster builds the cluster. proxied puts a fault proxy in front
// of every partition so tests can inject per-link latency.
func startTracedCluster(t *testing.T, partitions int, proxied bool) *tracedCluster {
	t.Helper()
	p := core.DefaultParams().WithLevels(rank.Levels{1, 5, 10})
	p.Bins = 64
	owner, err := core.NewOwner(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: 16, KeywordsPerDoc: 8, Dictionary: corpus.Dictionary(100),
		MaxTermFreq: 10, ContentWords: 10, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}

	tc := &tracedCluster{}
	for i := 0; i < partitions; i++ {
		server, err := core.NewServer(p)
		if err != nil {
			t.Fatal(err)
		}
		buf := trace.NewBuffer(64)
		svc := &CloudService{
			Server:     server,
			Partition:  i,
			Partitions: partitions,
			Cache:      NewResultCache(1 << 20),
		}
		// Sample rate 0: the daemon never head-samples on its own; it only
		// continues traces the coordinator propagates — so every span in the
		// buffers below is attributable to the traced search.
		svc.EnableTracing(trace.New(fmt.Sprintf("cloud-p%d", i), 0, buf))
		addr := serveLoopback(t, svc.Serve)
		if proxied {
			proxy, err := faultnet.Listen(addr)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(proxy.Close)
			tc.proxies = append(tc.proxies, proxy)
			addr = proxy.Addr()
		}
		tc.svcs = append(tc.svcs, svc)
		tc.bufs = append(tc.bufs, buf)
		tc.cfg.Partitions = append(tc.cfg.Partitions, cluster.Partition{Primary: addr})
	}
	ownerAddr := serveLoopback(t, (&OwnerService{Owner: owner}).Serve)

	var items []UploadItem
	for _, doc := range docs {
		si, enc, err := owner.Prepare(doc)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, UploadItem{Index: si, Doc: enc})
	}
	if err := UploadAllCluster(tc.cfg, items); err != nil {
		t.Fatal(err)
	}

	client, err := DialCluster("trace-user", ownerAddr, tc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	tc.cbuf = trace.NewBuffer(64)
	client.Tracer = trace.New("client", 0, tc.cbuf)
	tc.client = client
	return tc
}

// spansByName indexes an assembled trace for structural assertions.
func spansByName(spans []trace.Span) map[string][]trace.Span {
	m := make(map[string][]trace.Span)
	for _, sp := range spans {
		m[sp.Name] = append(m[sp.Name], sp)
	}
	return m
}

// A forced-sample cluster search must assemble ONE trace spanning the client
// coordinator, every partition's server dispatch, and the scan + qcache work
// inside each server — the tentpole acceptance criterion.
func TestClusterTraceAssemblesCrossDaemonTree(t *testing.T) {
	tc := startTracedCluster(t, 2, false)

	matches, spans, err := tc.client.TraceSearch([]string{"word1", "word2"}, 5)
	if err != nil {
		t.Fatalf("traced search: %v", err)
	}
	_ = matches

	byName := spansByName(spans)
	root := byName["client:search"]
	if len(root) != 1 {
		t.Fatalf("want one client:search root, got %d in %d spans", len(root), len(spans))
	}
	if len(byName["scatter"]) != 1 {
		t.Fatalf("want one scatter span, got %d", len(byName["scatter"]))
	}
	parts := byName["partition"]
	if len(parts) != 2 {
		t.Fatalf("want 2 partition spans, got %d", len(parts))
	}
	servers := byName["server:search"]
	if len(servers) != 2 {
		t.Fatalf("want 2 server:search spans (one per partition), got %d", len(servers))
	}
	if got := len(byName["scan"]); got != 2 {
		t.Fatalf("want 2 scan spans, got %d", got)
	}
	if got := len(byName["qcache"]); got != 2 {
		t.Fatalf("want 2 qcache spans, got %d", got)
	}

	// Every span belongs to the one trace, and each server subtree hangs off
	// a partition span: the server root's parent is the span ID the
	// coordinator stamped on that partition's request.
	id := root[0].Trace
	partIDs := map[uint64]bool{}
	for _, sp := range parts {
		partIDs[sp.ID] = true
	}
	services := map[string]bool{}
	for _, sp := range spans {
		if sp.Trace != id {
			t.Fatalf("span %q carries trace %s, want %s", sp.Name, sp.Trace, id)
		}
		services[sp.Service] = true
	}
	for _, sv := range servers {
		if !partIDs[sv.Parent] {
			t.Errorf("server span from %s parented to %#x, not a partition span", sv.Service, sv.Parent)
		}
	}
	for _, want := range []string{"client", "cloud-p0", "cloud-p1"} {
		if !services[want] {
			t.Errorf("trace has no span from service %q (got %v)", want, services)
		}
	}

	// The completed trace lands in the client's buffer, and the rendered
	// tree nests coordinator → partition → server dispatch.
	recent := tc.cbuf.Recent(10)
	if len(recent) != 1 {
		t.Fatalf("client buffer holds %d traces, want 1", len(recent))
	}
	tree := trace.FormatTree(recent[0].Spans)
	for _, want := range []string{"client:search", "partition", "server:search", "scan"} {
		if !strings.Contains(tree, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, tree)
		}
	}
}

// Latency injected on one partition's link must surface in that partition's
// span — the whole point of per-partition spans is attributing tail latency
// to the right scatter leg.
func TestClusterTraceAttributesInjectedLatency(t *testing.T) {
	tc := startTracedCluster(t, 2, true)

	// Warm the connections so the delayed measurement has no dial inside it.
	if _, _, err := tc.client.TraceSearch([]string{"word1"}, 5); err != nil {
		t.Fatalf("warm-up search: %v", err)
	}

	const delay = 50 * time.Millisecond
	tc.proxies[1].SetDelay(delay)
	_, spans, err := tc.client.TraceSearch([]string{"word2", "word3"}, 5)
	if err != nil {
		t.Fatalf("traced search through delayed link: %v", err)
	}

	var durs [2]time.Duration
	for _, sp := range spans {
		if sp.Name != "partition" {
			continue
		}
		for _, a := range sp.Attrs {
			if a.Key == "partition" {
				switch a.Value {
				case "0":
					durs[0] = sp.Duration
				case "1":
					durs[1] = sp.Duration
				}
			}
		}
	}
	if durs[0] == 0 || durs[1] == 0 {
		t.Fatalf("partition spans missing from trace: %+v", spans)
	}
	if durs[1] < delay {
		t.Errorf("delayed partition span shows %v, want >= %v", durs[1], delay)
	}
	if durs[0] >= delay {
		t.Errorf("healthy partition span shows %v — the delay leaked to the wrong leg", durs[0])
	}
}

// A search that crosses the SlowQuery threshold without being sampled must
// still land in the slow ring as a synthesized single-span trace — the
// capture-all-slow guarantee that makes every flagged tail inspectable.
func TestServerSlowQueryCaptureUnsampled(t *testing.T) {
	tc := startTracedCluster(t, 1, false)
	svc := tc.svcs[0]
	svc.SlowQuery = time.Nanosecond // every search is "slow"
	tc.bufs[0].SetSlowThreshold(time.Nanosecond)

	// Plain Search: the client tracer samples nothing (rate 0, not forced),
	// so the server sees an untraced request that exceeds the threshold.
	if _, err := tc.client.Search([]string{"word4"}, 5); err != nil {
		t.Fatalf("search: %v", err)
	}

	slow := tc.bufs[0].Slow(10)
	if len(slow) == 0 {
		t.Fatal("slow ring empty after an over-threshold unsampled search")
	}
	r := slow[0].Root()
	if r == nil || r.Name != "server:search" {
		t.Fatalf("slow capture mis-rooted: %+v", slow[0])
	}
}
