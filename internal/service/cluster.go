package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"mkse/internal/cluster"
	"mkse/internal/protocol"
	"mkse/internal/trace"
)

// DefaultPartitionTimeout bounds each partition's share of a scatter-gather
// read: a partition that has not answered within this budget is declared
// failed for the request and the fan-out proceeds to its replicas (and then
// without it). Override per client via Client.PartitionTimeout.
const DefaultPartitionTimeout = 2 * time.Second

// clusterState is the fat-client coordinator: the static topology plus one
// connection set per partition. It lives inside a Client; all access is
// serialized by the Client's mutex, except during a scatter-gather fan-out,
// where each goroutine owns exactly one partition's connections while the
// fan-out holds the mutex.
type clusterState struct {
	cfg   cluster.Config
	parts []*clusterPart
}

// clusterPart is one partition's connection set: the primary connection the
// coordinator routes by, plus a lazily dialed connection to whichever
// replica last served a fallback read.
type clusterPart struct {
	index int
	cfg   cluster.Partition

	conn *protocol.Conn // primary; nil after a failure until redialed
	raw  net.Conn

	rconn *protocol.Conn // replica fallback; nil until first needed
	rraw  net.Conn
	raddr string
}

// DialCluster connects to the owner daemon and to every partition primary in
// the topology, verifies each server's reported partition identity against
// its position in the config, and enrolls the user. The returned Client
// routes Upload/Delete/Retrieve to the partition owning the document ID and
// fans Search/SearchBatch out to every partition, merging the per-partition
// top-τ lists into the global order a single-node scan would produce.
//
// When a partition cannot be reached mid-request, reads fall back to that
// partition's replicas; if none answers, Search/SearchBatch return the
// merged results from the surviving partitions alongside a
// *cluster.PartialError naming the dead ones.
func DialCluster(userID, ownerAddr string, cfg cluster.Config) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	oc, err := net.DialTimeout("tcp", ownerAddr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("service: dialing owner: %w", err)
	}
	c := &Client{
		UserID:    userID,
		ownerConn: protocol.NewConn(oc),
		ownerRaw:  oc,
		clu:       &clusterState{cfg: cfg},
	}
	for i, p := range cfg.Partitions {
		raw, err := net.DialTimeout("tcp", p.Primary, DialTimeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("service: dialing partition %d (%s): %w", i, p.Primary, err)
		}
		part := &clusterPart{index: i, cfg: p, conn: protocol.NewConn(raw), raw: raw}
		c.clu.parts = append(c.clu.parts, part)
		if err := verifyPartitionIdentity(part.conn, i, cfg.P()); err != nil {
			c.Close()
			return nil, err
		}
	}
	if err := c.enroll(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// verifyPartitionIdentity performs the partition-map exchange: the server at
// config position i must report identity i/P, so a miswired address list
// (wrong order, wrong count, a server from another cluster) is caught at
// dial time rather than silently misrouting documents. A server with no
// cluster identity at all is tolerated only in a single-partition topology,
// where every routing decision is trivially correct.
func verifyPartitionIdentity(conn *protocol.Conn, i, p int) error {
	resp, err := conn.Roundtrip(&protocol.Message{ClusterInfoReq: &protocol.ClusterInfoRequest{}})
	if err != nil {
		return fmt.Errorf("service: cluster info from partition %d: %w", i, err)
	}
	ci := resp.ClusterInfoResp
	if ci == nil {
		return fmt.Errorf("service: cluster info response missing from partition %d", i)
	}
	if ci.Partitions == 0 {
		if p == 1 {
			return nil
		}
		return fmt.Errorf("service: partition %d reports no cluster identity, want %d/%d", i, i, p)
	}
	if ci.Partition != i || ci.Partitions != p {
		return fmt.Errorf("service: partition %d reports identity %d/%d, want %d/%d",
			i, ci.Partition, ci.Partitions, i, p)
	}
	return nil
}

// ClusterConfig returns the topology this client routes by, or the zero
// Config when the client was built with Dial rather than DialCluster.
func (c *Client) ClusterConfig() cluster.Config {
	if c.clu == nil {
		return cluster.Config{}
	}
	return c.clu.cfg
}

func (c *Client) partitionTimeout() time.Duration {
	if c.PartitionTimeout > 0 {
		return c.PartitionTimeout
	}
	return DefaultPartitionTimeout
}

// roundtripDeadline runs one exchange under a wall-clock deadline. A
// deadline that fires mid-frame leaves the stream unframed, so every caller
// must drop the connection on a transport error.
func roundtripDeadline(conn *protocol.Conn, raw net.Conn, m *protocol.Message, d time.Duration) (*protocol.Message, error) {
	if d > 0 {
		raw.SetDeadline(time.Now().Add(d))
		defer raw.SetDeadline(time.Time{})
	}
	return conn.Roundtrip(m)
}

// readPart sends one read request to a single partition, bounded by the
// partition timeout, falling back to the partition's replicas when the
// primary is unreachable or times out. It returns the address that answered
// (or was last tried) for failure reporting. A *protocol.RemoteError passes
// through without fallback: the server understood the request and rejected
// it, and every server holding the partition would.
//
// The caller must own the partition's connections exclusively — either by
// holding the Client mutex, or by being the one fan-out goroutine assigned
// to this partition while the mutex is held.
func (c *Client) readPart(ctx context.Context, p *clusterPart, m *protocol.Message) (*protocol.Message, string, error) {
	timeout := c.partitionTimeout()
	var primaryErr error
	if p.conn == nil {
		_, dsp := trace.Start(ctx, "redial")
		dsp.SetAttr("addr", p.cfg.Primary)
		raw, err := net.DialTimeout("tcp", p.cfg.Primary, replicaDialTimeout)
		if err != nil {
			dsp.SetAttr("error", err.Error())
			primaryErr = err
		} else {
			p.raw, p.conn = raw, protocol.NewConn(raw)
		}
		dsp.End()
	}
	if p.conn != nil {
		_, sp := trace.Start(ctx, "attempt")
		sp.SetAttr("addr", p.cfg.Primary)
		sp.SetAttr("role", "primary")
		resp, err := roundtripDeadline(p.conn, p.raw, m, timeout)
		var remote *protocol.RemoteError
		if err == nil || errors.As(err, &remote) {
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
			return resp, p.cfg.Primary, err
		}
		sp.SetAttr("error", err.Error())
		sp.End()
		primaryErr = err
		p.raw.Close()
		p.raw, p.conn = nil, nil
	}
	for _, addr := range p.cfg.Replicas {
		_, sp := trace.Start(ctx, "attempt")
		sp.SetAttr("addr", addr)
		sp.SetAttr("role", "replica")
		if p.rconn == nil || p.raddr != addr {
			if p.rraw != nil {
				p.rraw.Close()
				p.rraw, p.rconn = nil, nil
			}
			raw, err := net.DialTimeout("tcp", addr, replicaDialTimeout)
			if err != nil {
				sp.SetAttr("error", err.Error())
				sp.End()
				continue
			}
			p.rraw, p.rconn, p.raddr = raw, protocol.NewConn(raw), addr
		}
		resp, err := roundtripDeadline(p.rconn, p.rraw, m, timeout)
		var remote *protocol.RemoteError
		if err == nil || errors.As(err, &remote) {
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
			return resp, addr, err
		}
		sp.SetAttr("error", err.Error())
		sp.End()
		p.rraw.Close()
		p.rraw, p.rconn = nil, nil
	}
	return nil, p.cfg.Primary, fmt.Errorf("service: partition %d unreachable: %w", p.index, primaryErr)
}

// scatterLocked fans one read request to every partition concurrently and
// gathers the responses. resps[i] is nil when partition i (and all its
// replicas) failed; the returned *cluster.PartialError names each failed
// partition, or is nil when every partition answered. Caller holds c.mu;
// each goroutine touches only its own partition's connections.
//
// Under a sampled trace each partition gets its own "partition" span and a
// shallow copy of the request carrying that span's propagation context —
// the shared Message must not be stamped in place, or every partition would
// claim the same parent. The partition server's echoed spans are imported
// under the partition span, assembling the cross-daemon tree client-side.
func (c *Client) scatterLocked(ctx context.Context, m *protocol.Message) ([]*protocol.Message, *cluster.PartialError) {
	parts := c.clu.parts
	resps := make([]*protocol.Message, len(parts))
	addrs := make([]string, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p *clusterPart) {
			defer wg.Done()
			pctx, sp := trace.Start(ctx, "partition")
			req := m
			if sp != nil {
				sp.SetAttr("partition", strconv.Itoa(i))
				cp := *m
				cp.Trace = traceCtxToWire(sp.Context())
				req = &cp
			}
			resps[i], addrs[i], errs[i] = c.readPart(pctx, p, req)
			if sp != nil {
				sp.SetAttr("addr", addrs[i])
				if errs[i] != nil {
					sp.SetAttr("error", errs[i].Error())
				}
				if resps[i] != nil {
					trace.Import(pctx, spansFromWire(sp.TraceID(), resps[i].Spans))
				}
				sp.End()
			}
		}(i, p)
	}
	wg.Wait()
	var pe *cluster.PartialError
	for i, err := range errs {
		if err == nil {
			continue
		}
		if pe == nil {
			pe = &cluster.PartialError{Partitions: len(parts)}
		}
		pe.Failures = append(pe.Failures, cluster.PartitionFailure{
			Partition: i, Addr: addrs[i], Err: err,
		})
		resps[i] = nil
	}
	return resps, pe
}

// clusterSearchLocked is the scatter-gather Search: every partition runs the
// scan over its own corpus slice with its local top-τ cut, and the
// coordinator interleaves the sorted lists and applies the global cut.
// Because partitions hold disjoint document sets, the merged prefix is
// byte-identical to a single-node scan of the whole corpus. When partitions
// failed, the merged result covers the survivors and the *cluster.PartialError
// names the rest — callers choose whether a partial answer is usable.
func (c *Client) clusterSearchLocked(ctx context.Context, query []byte, topK int) ([]Match, error) {
	sctx, sp := trace.Start(ctx, "scatter")
	resps, pe := c.scatterLocked(sctx, &protocol.Message{SearchReq: &protocol.SearchRequest{
		Query: query,
		TopK:  topK,
	}})
	sp.SetAttr("partitions", strconv.Itoa(len(resps)))
	sp.End()
	lists := make([][]protocol.MatchWire, 0, len(resps))
	for i, r := range resps {
		if r == nil {
			continue
		}
		if r.SearchResp == nil {
			return nil, fmt.Errorf("service: search response missing from partition %d", i)
		}
		lists = append(lists, r.SearchResp.Matches)
	}
	merged := cluster.MergeWire(lists, topK)
	out := make([]Match, len(merged))
	for i, m := range merged {
		out[i] = Match{DocID: m.DocID, Rank: m.Rank}
	}
	if pe != nil {
		return out, pe
	}
	return out, nil
}

// clusterSearchBatchLocked is the scatter-gather SearchBatch: one batch
// round trip per partition, then a per-query merge under the global τ-cut.
func (c *Client) clusterSearchBatchLocked(ctx context.Context, wire [][]byte, topK int) ([][]Match, error) {
	sctx, sp := trace.Start(ctx, "scatter")
	resps, pe := c.scatterLocked(sctx, &protocol.Message{SearchBatchReq: &protocol.SearchBatchRequest{
		Queries: wire,
		TopK:    topK,
	}})
	sp.SetAttr("partitions", strconv.Itoa(len(resps)))
	sp.End()
	perQuery := make([][][]protocol.MatchWire, len(wire))
	for pi, r := range resps {
		if r == nil {
			continue
		}
		if r.SearchBatchResp == nil {
			return nil, fmt.Errorf("service: batch search response missing from partition %d", pi)
		}
		if got := len(r.SearchBatchResp.Results); got != len(wire) {
			return nil, fmt.Errorf("service: partition %d returned %d result sets for %d queries", pi, got, len(wire))
		}
		for qi, ms := range r.SearchBatchResp.Results {
			perQuery[qi] = append(perQuery[qi], ms)
		}
	}
	out := make([][]Match, len(wire))
	for qi, lists := range perQuery {
		merged := cluster.MergeWire(lists, topK)
		out[qi] = make([]Match, len(merged))
		for i, m := range merged {
			out[qi][i] = Match{DocID: m.DocID, Rank: m.Rank}
		}
	}
	if pe != nil {
		return out, pe
	}
	return out, nil
}

// clusterOwnerLocked returns the partition owning a document ID.
func (c *Client) clusterOwnerLocked(docID string) *clusterPart {
	return c.clu.parts[c.clu.cfg.Map().Owner(docID)]
}

// clusterMutateLocked routes a mutation to the partition primary owning the
// document. Mutations never fall back to replicas — a follower would reject
// them as read-only, and routing them elsewhere would fork the partition's
// history. Caller holds c.mu.
func (c *Client) clusterMutateLocked(docID string, m *protocol.Message) (*protocol.Message, error) {
	p := c.clusterOwnerLocked(docID)
	if p.conn == nil {
		raw, err := net.DialTimeout("tcp", p.cfg.Primary, DialTimeout)
		if err != nil {
			return nil, fmt.Errorf("service: partition %d (%s): %w", p.index, p.cfg.Primary, err)
		}
		p.raw, p.conn = raw, protocol.NewConn(raw)
	}
	resp, err := p.conn.Roundtrip(m)
	if err != nil {
		var remote *protocol.RemoteError
		if !errors.As(err, &remote) {
			p.raw.Close()
			p.raw, p.conn = nil, nil
		}
		return nil, err
	}
	return resp, nil
}

// ClusterStats fetches one StatsResponse per partition, in partition order,
// falling back to replicas for unreachable primaries. When partitions are
// missing entirely, the surviving entries are returned (nil at the failed
// indices) alongside a *cluster.PartialError.
func (c *Client) ClusterStats() ([]*protocol.StatsResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.clu == nil {
		resp, err := c.primaryRoundtripLocked(&protocol.Message{StatsReq: &protocol.StatsRequest{}})
		if err != nil {
			return nil, fmt.Errorf("service: stats: %w", err)
		}
		if resp.StatsResp == nil {
			return nil, fmt.Errorf("service: stats response missing")
		}
		return []*protocol.StatsResponse{resp.StatsResp}, nil
	}
	return c.clusterStatsLocked()
}

func (c *Client) clusterStatsLocked() ([]*protocol.StatsResponse, error) {
	resps, pe := c.scatterLocked(context.Background(), &protocol.Message{StatsReq: &protocol.StatsRequest{}})
	out := make([]*protocol.StatsResponse, len(resps))
	for i, r := range resps {
		if r == nil {
			continue
		}
		if r.StatsResp == nil {
			return nil, fmt.Errorf("service: stats response missing from partition %d", i)
		}
		out[i] = r.StatsResp
	}
	if pe != nil {
		return out, pe
	}
	return out, nil
}

// aggregateStats folds per-partition stats into one cluster-wide view:
// document, shard and cache counters sum; Partition is -1 to mark the
// aggregate; Durable holds only if every partition is durable.
func aggregateStats(parts []*protocol.StatsResponse) *protocol.StatsResponse {
	agg := &protocol.StatsResponse{Partition: -1, Durable: true}
	for _, st := range parts {
		if st == nil {
			continue
		}
		agg.Partitions++
		agg.NumDocuments += st.NumDocuments
		agg.NumShards += st.NumShards
		agg.Durable = agg.Durable && st.Durable
		agg.Cache.Enabled = agg.Cache.Enabled || st.Cache.Enabled
		agg.Cache.Hits += st.Cache.Hits
		agg.Cache.Misses += st.Cache.Misses
		agg.Cache.Evictions += st.Cache.Evictions
		agg.Cache.Invalidations += st.Cache.Invalidations
		agg.Cache.Entries += st.Cache.Entries
		agg.Cache.Bytes += st.Cache.Bytes
		if st.Cache.MaxBytes > agg.Cache.MaxBytes {
			agg.Cache.MaxBytes = st.Cache.MaxBytes
		}
	}
	return agg
}

// UploadAllCluster pushes prepared documents to the cluster, routing each to
// the partition primary owning its document ID — the owner-side upload of
// Figure 1's offline stage, partitioned.
func UploadAllCluster(cfg cluster.Config, items []UploadItem) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	m := cfg.Map()
	groups := make([][]UploadItem, cfg.P())
	for _, it := range items {
		i := m.Owner(it.Index.DocID)
		groups[i] = append(groups[i], it)
	}
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		if err := UploadAll(cfg.Partitions[i].Primary, g); err != nil {
			return fmt.Errorf("service: partition %d: %w", i, err)
		}
	}
	return nil
}

// DeleteAllCluster removes documents from the cluster by ID, routing each
// deletion to the owning partition primary.
func DeleteAllCluster(cfg cluster.Config, docIDs []string) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	m := cfg.Map()
	groups := make([][]string, cfg.P())
	for _, id := range docIDs {
		i := m.Owner(id)
		groups[i] = append(groups[i], id)
	}
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		if err := DeleteAll(cfg.Partitions[i].Primary, g); err != nil {
			return fmt.Errorf("service: partition %d: %w", i, err)
		}
	}
	return nil
}

// FetchClusterStats asks every partition primary for its operational
// counters without enrolling a user — the operator's one-shot cluster
// introspection path.
func FetchClusterStats(cfg cluster.Config) ([]*protocol.StatsResponse, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := make([]*protocol.StatsResponse, cfg.P())
	for i, p := range cfg.Partitions {
		st, err := FetchStats(p.Primary)
		if err != nil {
			return nil, fmt.Errorf("service: partition %d (%s): %w", i, p.Primary, err)
		}
		out[i] = st
	}
	return out, nil
}

// AggregateClusterStats folds per-partition stats into one cluster-wide
// summary (see aggregateStats for the folding rules).
func AggregateClusterStats(parts []*protocol.StatsResponse) *protocol.StatsResponse {
	return aggregateStats(parts)
}
