package service

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mkse/internal/bitindex"
	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/durable"
	"mkse/internal/protocol"
	"mkse/internal/rank"
)

// The replication tests exercise log shipping, not cryptography: indices
// are random valid vectors (as in the durable engine's own tests) fed
// straight into the primary's engine, and convergence is judged by
// byte-identical search output — IDs, ranks and metadata — between primary
// and follower.

func replParams() core.Params {
	p := core.DefaultParams()
	p.Levels = rank.Levels{1, 5, 10}
	return p
}

var replZerosPerLevel = []int{30, 18, 8}

func replIndex(rng *rand.Rand, p core.Params, id string) *core.SearchIndex {
	zeros := rng.Perm(p.R)[:replZerosPerLevel[0]]
	si := &core.SearchIndex{DocID: id, Levels: make([]*bitindex.Vector, p.Eta())}
	for l := range si.Levels {
		v := bitindex.NewOnes(p.R)
		for _, z := range zeros[:replZerosPerLevel[l]] {
			v.SetBit(z, 0)
		}
		si.Levels[l] = v
	}
	return si
}

func replUpload(t testing.TB, eng *durable.Engine, rng *rand.Rand, p core.Params, id string) *core.SearchIndex {
	t.Helper()
	si := replIndex(rng, p, id)
	doc := &core.EncryptedDocument{ID: id, Ciphertext: []byte("body of " + id), EncKey: []byte{0xEE}}
	if err := eng.Upload(si, doc); err != nil {
		t.Fatalf("upload %s: %v", id, err)
	}
	return si
}

// replQueries builds queries that match the given indices (zero bits drawn
// from a document's own zero set).
func replQueries(rng *rand.Rand, p core.Params, indices []*core.SearchIndex) []*bitindex.Vector {
	var qs []*bitindex.Vector
	for i, si := range indices {
		if i == 8 {
			break
		}
		q := bitindex.NewOnes(p.R)
		zp := si.Levels[i%p.Eta()].ZeroPositions()
		for _, j := range rng.Perm(len(zp))[:3] {
			q.SetBit(zp[j], 0)
		}
		qs = append(qs, q)
	}
	return qs
}

// replFingerprint renders every query's results — IDs, ranks, metadata
// bytes — into one string for byte-identical comparison across servers.
func replFingerprint(t testing.TB, srv *core.Server, qs []*bitindex.Vector) string {
	t.Helper()
	var b strings.Builder
	for qi, q := range qs {
		ms, err := srv.SearchTop(q, 0)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		fmt.Fprintf(&b, "q%d:", qi)
		for _, m := range ms {
			meta, err := m.Meta.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&b, " %s/%d/%x", m.DocID, m.Rank, meta)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// replPrimary is a durably backed cloud daemon serving its WAL.
type replPrimary struct {
	eng  *durable.Engine
	svc  *CloudService
	addr string
	l    net.Listener
}

func startReplPrimary(t testing.TB, p core.Params, dir string) *replPrimary {
	t.Helper()
	eng, err := durable.Open(dir, p, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	svc := &CloudService{Server: eng.Server(), Store: eng, WAL: eng, Eng: eng, HeartbeatEvery: 25 * time.Millisecond}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = svc.Serve(l) }()
	t.Cleanup(func() { l.Close(); eng.Crash() })
	return &replPrimary{eng: eng, svc: svc, addr: l.Addr().String(), l: l}
}

// kill drops the primary like a crashed process: listener closed, live
// connections severed, engine abandoned without a final checkpoint. Safe to
// let the cleanup run after.
func (pr *replPrimary) kill() {
	pr.l.Close()
	pr.svc.Drain(0)
	pr.eng.Crash()
}

// replFollower is a read-only follower daemon streaming from a primary.
type replFollower struct {
	eng  *durable.Engine
	rep  *Replica
	svc  *CloudService
	addr string
	l    net.Listener
}

func startReplFollower(t testing.TB, p core.Params, dir, primaryAddr string) *replFollower {
	t.Helper()
	eng, err := durable.Open(dir, p, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	rep := StartReplica(eng, primaryAddr, nil)
	// Store and Eng mirror what mkse-server wires in durable mode: writes are
	// rejected while the Replica field is set, and a Promote needs both to
	// flip the daemon to a fully durable primary in place.
	svc := &CloudService{Server: eng.Server(), Store: eng, WAL: eng, Eng: eng, Replica: rep, HeartbeatEvery: 25 * time.Millisecond}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = svc.Serve(l) }()
	f := &replFollower{eng: eng, rep: rep, svc: svc, addr: l.Addr().String(), l: l}
	t.Cleanup(func() { f.stop() })
	return f
}

func (f *replFollower) stop() {
	f.l.Close()
	f.rep.Close()
	f.eng.Crash()
}

// waitConverged polls until the follower's position matches the primary's.
func waitConverged(t testing.TB, primary, follower *durable.Engine) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if follower.Position() == primary.Position() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no convergence: follower at %d, primary at %d", follower.Position(), primary.Position())
}

func TestReplicaConvergesOverTCP(t *testing.T) {
	p := replParams()
	rng := rand.New(rand.NewSource(81))
	pr := startReplPrimary(t, p, t.TempDir())

	// History before the follower exists: streamed from position 0.
	var indices []*core.SearchIndex
	for i := 0; i < 20; i++ {
		indices = append(indices, replUpload(t, pr.eng, rng, p, fmt.Sprintf("doc-%03d", i)))
	}
	fo := startReplFollower(t, p, t.TempDir(), pr.addr)

	// Mixed workload while the stream is live: deletes, re-uploads, new docs.
	for i := 0; i < 10; i += 2 {
		if err := pr.eng.Delete(fmt.Sprintf("doc-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 20; i < 35; i++ {
		indices = append(indices, replUpload(t, pr.eng, rng, p, fmt.Sprintf("doc-%03d", i)))
	}
	indices[12] = replUpload(t, pr.eng, rng, p, "doc-012") // replacement index

	waitConverged(t, pr.eng, fo.eng)
	qs := replQueries(rand.New(rand.NewSource(82)), p, indices[10:])
	want := replFingerprint(t, pr.eng.Server(), qs)
	if got := replFingerprint(t, fo.eng.Server(), qs); got != want {
		t.Error("follower search output differs from primary after convergence")
	}
	if n1, n2 := pr.eng.Server().NumDocuments(), fo.eng.Server().NumDocuments(); n1 != n2 {
		t.Errorf("document counts diverge: primary %d, follower %d", n1, n2)
	}
}

func TestReplicaBootstrapsFromCheckpointOverTCP(t *testing.T) {
	p := replParams()
	rng := rand.New(rand.NewSource(83))
	pr := startReplPrimary(t, p, t.TempDir())

	var indices []*core.SearchIndex
	for i := 0; i < 25; i++ {
		indices = append(indices, replUpload(t, pr.eng, rng, p, fmt.Sprintf("doc-%03d", i)))
	}
	// Checkpoint prunes the log below position 25, forcing any new follower
	// through the snapshot path.
	if err := pr.eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := pr.eng.OldestRetained(); got != 25 {
		t.Fatalf("oldest retained %d, want 25", got)
	}
	for i := 25; i < 30; i++ {
		indices = append(indices, replUpload(t, pr.eng, rng, p, fmt.Sprintf("doc-%03d", i)))
	}

	fo := startReplFollower(t, p, t.TempDir(), pr.addr)
	waitConverged(t, pr.eng, fo.eng)

	qs := replQueries(rand.New(rand.NewSource(84)), p, indices)
	want := replFingerprint(t, pr.eng.Server(), qs)
	if got := replFingerprint(t, fo.eng.Server(), qs); got != want {
		t.Error("bootstrapped follower differs from primary")
	}
}

// drippingWAL throttles a primary's log to one record per batch with a
// small delay, so a catch-up takes long enough to be interrupted mid-way.
type drippingWAL struct {
	*durable.Engine
}

func (d drippingWAL) ReadWAL(from uint64, maxBytes int) ([][]byte, uint64, error) {
	time.Sleep(200 * time.Microsecond)
	return d.Engine.ReadWAL(from, 1)
}

func TestReplicaCrashDuringCatchUpRecovers(t *testing.T) {
	p := replParams()
	rng := rand.New(rand.NewSource(85))
	pr := startReplPrimary(t, p, t.TempDir())
	pr.svc.WAL = drippingWAL{pr.eng}

	var indices []*core.SearchIndex
	for i := 0; i < 120; i++ {
		indices = append(indices, replUpload(t, pr.eng, rng, p, fmt.Sprintf("doc-%03d", i)))
	}
	for i := 0; i < 120; i += 5 {
		if err := pr.eng.Delete(fmt.Sprintf("doc-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}

	// Start a follower and kill it mid-catch-up: stream torn down, engine
	// abandoned like a killed process.
	fdir := t.TempDir()
	eng, err := durable.Open(fdir, p, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	rep := StartReplica(eng, pr.addr, nil)
	deadline := time.Now().Add(20 * time.Second)
	for eng.Position() < 20 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	killedAt := eng.Position()
	if killedAt == 0 {
		t.Fatal("follower never started applying")
	}
	if killedAt >= pr.eng.Position() {
		t.Fatalf("follower caught up (%d) before the kill; the drip throttle failed", killedAt)
	}
	rep.Close()
	if err := eng.Sync(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	t.Logf("killed follower at position %d of %d", killedAt, pr.eng.Position())

	// Reopen: recovery lands exactly on the synced position and the stream
	// resumes from there.
	eng, err = durable.Open(fdir, p, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatalf("reopening crashed follower: %v", err)
	}
	if got := eng.Position(); got != killedAt {
		t.Fatalf("recovered at position %d, killed at %d", got, killedAt)
	}
	rep = StartReplica(eng, pr.addr, nil)
	defer func() { rep.Close(); eng.Crash() }()
	waitConverged(t, pr.eng, eng)

	qs := replQueries(rand.New(rand.NewSource(86)), p, indices[1:])
	want := replFingerprint(t, pr.eng.Server(), qs)
	if got := replFingerprint(t, eng.Server(), qs); got != want {
		t.Error("resumed follower differs from primary")
	}
}

func TestReplicaStaysConvergedUnderConcurrentWrites(t *testing.T) {
	p := replParams()
	pr := startReplPrimary(t, p, t.TempDir())
	fo1 := startReplFollower(t, p, t.TempDir(), pr.addr)
	fo2 := startReplFollower(t, p, t.TempDir(), pr.addr)

	// Concurrent writers mutate the primary while both followers stream.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var indices []*core.SearchIndex
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(87 + w)))
			for i := 0; i < 25; i++ {
				id := fmt.Sprintf("w%d-doc-%03d", w, i)
				si := replIndex(rng, p, id)
				doc := &core.EncryptedDocument{ID: id, Ciphertext: []byte(id), EncKey: []byte{1}}
				if err := pr.eng.Upload(si, doc); err != nil {
					t.Error(err)
					return
				}
				if i%7 == 3 {
					if err := pr.eng.Delete(fmt.Sprintf("w%d-doc-%03d", w, i-1)); err != nil {
						t.Error(err)
						return
					}
				} else {
					mu.Lock()
					indices = append(indices, si)
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	waitConverged(t, pr.eng, fo1.eng)
	waitConverged(t, pr.eng, fo2.eng)

	qs := replQueries(rand.New(rand.NewSource(91)), p, indices)
	want := replFingerprint(t, pr.eng.Server(), qs)
	if got := replFingerprint(t, fo1.eng.Server(), qs); got != want {
		t.Error("follower 1 differs from primary under concurrent writes")
	}
	if got := replFingerprint(t, fo2.eng.Server(), qs); got != want {
		t.Error("follower 2 differs from primary under concurrent writes")
	}
}

func TestReplicaRejectsWritesOverTCP(t *testing.T) {
	p := replParams()
	pr := startReplPrimary(t, p, t.TempDir())
	rng := rand.New(rand.NewSource(92))
	si := replUpload(t, pr.eng, rng, p, "doc-000")
	fo := startReplFollower(t, p, t.TempDir(), pr.addr)
	waitConverged(t, pr.eng, fo.eng)

	conn, err := net.Dial("tcp", fo.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := protocol.NewConn(conn)

	levels := make([][]byte, len(si.Levels))
	for i, l := range si.Levels {
		levels[i] = marshalVector(l)
	}
	_, err = pc.Roundtrip(&protocol.Message{UploadReq: &protocol.UploadRequest{
		DocID: "doc-intruder", Levels: levels, Ciphertext: []byte("x"), EncKey: []byte("k"),
	}})
	var remote *protocol.RemoteError
	if !errors.As(err, &remote) || !strings.Contains(err.Error(), "read-only replica") {
		t.Fatalf("upload to follower: %v, want read-only rejection", err)
	}
	if _, err = pc.Roundtrip(&protocol.Message{DeleteReq: &protocol.DeleteRequest{DocID: "doc-000"}}); !errors.As(err, &remote) {
		t.Fatalf("delete on follower: %v, want read-only rejection", err)
	}
	// The follower still serves reads on the same connection.
	resp, err := pc.Roundtrip(&protocol.Message{FetchReq: &protocol.FetchRequest{DocID: "doc-000"}})
	if err != nil || resp.FetchResp == nil {
		t.Fatalf("fetch from follower: %v", err)
	}
}

func TestClientFansReadsAcrossReplicas(t *testing.T) {
	p := core.DefaultParams().WithLevels(rank.Levels{1, 5, 10})
	p.Bins = 64
	owner, err := core.NewOwner(p, 47)
	if err != nil {
		t.Fatal(err)
	}
	pr := startReplPrimary(t, p, t.TempDir())

	docs, items, err := corpusDocsFor(owner, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := UploadAll(pr.addr, items); err != nil {
		t.Fatal(err)
	}

	fo1 := startReplFollower(t, p, t.TempDir(), pr.addr)
	fo2 := startReplFollower(t, p, t.TempDir(), pr.addr)
	waitConverged(t, pr.eng, fo1.eng)
	waitConverged(t, pr.eng, fo2.eng)

	ownerL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ownerL.Close()
	go func() { _ = (&OwnerService{Owner: owner}).Serve(ownerL) }()

	client, err := Dial("fanout-user", ownerL.Addr().String(), pr.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.AddReadReplicas(fo1.addr, fo2.addr)

	words := docs[3].Keywords()[:2]
	primaryOnly, err := clientSearchVia(t, client, words, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		got, err := client.Search(words, 0)
		if err != nil {
			t.Fatalf("replica-routed search %d: %v", i, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(primaryOnly) {
			t.Fatalf("replica search %d disagrees: %v vs %v", i, got, primaryOnly)
		}
	}
	dist := client.ReadDistribution()
	if dist[fo1.addr] == 0 || dist[fo2.addr] == 0 {
		t.Fatalf("reads did not fan across both replicas: %v", dist)
	}

	// A dead replica routes reads back without failing the client.
	fo1.stop()
	fo2.stop()
	for i := 0; i < 4; i++ {
		if _, err := client.Search(words, 0); err != nil {
			t.Fatalf("search after replica death: %v", err)
		}
	}
	dist = client.ReadDistribution()
	if dist["primary"] == 0 {
		t.Fatalf("reads never fell back to the primary: %v", dist)
	}
}

// corpusDocsFor prepares a small owner-indexed corpus for client tests.
func corpusDocsFor(owner *core.Owner, n int) ([]*corpus.Document, []UploadItem, error) {
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: n, KeywordsPerDoc: 12, Dictionary: corpus.Dictionary(200),
		MaxTermFreq: 15, ContentWords: 20, Seed: 11,
	})
	if err != nil {
		return nil, nil, err
	}
	items := make([]UploadItem, 0, n)
	for _, d := range docs {
		si, enc, err := owner.Prepare(d)
		if err != nil {
			return nil, nil, err
		}
		items = append(items, UploadItem{Index: si, Doc: enc})
	}
	return docs, items, nil
}

// clientSearchVia runs one search forced to the primary by temporarily
// emptying the replica set.
func clientSearchVia(t *testing.T, c *Client, words []string, topK int) ([]Match, error) {
	t.Helper()
	c.mu.Lock()
	saved := c.replicas
	c.replicas = nil
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.replicas = saved
		c.mu.Unlock()
	}()
	return c.Search(words, topK)
}

func TestReplicaStatusReportsPositionsAndFollowers(t *testing.T) {
	p := replParams()
	pr := startReplPrimary(t, p, t.TempDir())
	rng := rand.New(rand.NewSource(93))
	for i := 0; i < 10; i++ {
		replUpload(t, pr.eng, rng, p, fmt.Sprintf("doc-%03d", i))
	}
	fo := startReplFollower(t, p, t.TempDir(), pr.addr)
	waitConverged(t, pr.eng, fo.eng)

	status := func(addr string) *protocol.ReplicaStatusResponse {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		resp, err := protocol.NewConn(conn).Roundtrip(&protocol.Message{ReplicaStatusReq: &protocol.ReplicaStatusRequest{}})
		if err != nil || resp.ReplicaStatusResp == nil {
			t.Fatalf("status from %s: %v", addr, err)
		}
		return resp.ReplicaStatusResp
	}

	fs := status(fo.addr)
	if !fs.Replica || !fs.Durable {
		t.Fatalf("follower status: %+v, want Replica and Durable", fs)
	}
	if fs.Position != 10 || fs.PrimaryPosition < fs.Position {
		t.Fatalf("follower positions: own %d, primary %d", fs.Position, fs.PrimaryPosition)
	}

	// The primary learns the follower's acked position; acks trail the
	// stream by one exchange, so poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ps := status(pr.addr)
		if ps.Replica {
			t.Fatalf("primary claims to be a replica: %+v", ps)
		}
		if len(ps.Followers) == 1 && ps.Followers[0].Acked == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary never saw the follower's ack: %+v", ps)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
