package service

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"mkse/internal/bitindex"
	"mkse/internal/core"
	"mkse/internal/protocol"
	"mkse/internal/qcache"
)

// ResultCache is the query-result cache a cloud daemon may carry: query
// fingerprint → the wire-encoded ranked matches it produced, validated
// against the store's mutation epoch (see internal/qcache for why caching
// is privacy-neutral under this scheme's leakage profile). Cached match
// slices are shared across responses and must never be mutated.
type ResultCache = qcache.Cache[[]protocol.MatchWire]

// NewResultCache builds a query-result cache bounded to maxBytes (<= 0
// returns the nil disabled cache, which every call site tolerates).
func NewResultCache(maxBytes int64) *ResultCache {
	return qcache.New[[]protocol.MatchWire](maxBytes, 0)
}

// Backend applies the mutating half of the cloud service. *core.Server
// satisfies it (in-memory only); the durable storage engine
// (internal/durable) satisfies it too, logging every mutation to its
// write-ahead log before applying it.
type Backend interface {
	Upload(*core.SearchIndex, *core.EncryptedDocument) error
	Delete(docID string) error
}

// CloudService exposes a core.Server over TCP: Upload, Delete, Search,
// Fetch and Stats endpoints. It requires no authentication — the server is
// semi-honest and queries are anonymous ("the user does not provide his
// identity during the communication with the server", Section 7).
type CloudService struct {
	Server *core.Server
	// Store, when set, receives uploads and deletions instead of Server —
	// the hook that puts the durable write-ahead log under the daemon.
	// Reads always go to Server.
	Store Backend
	// WAL, when set, lets this daemon serve its write-ahead log to
	// followers over the replication verbs (any durably backed daemon can;
	// set it to the same durable engine as Store).
	WAL WALSource
	// Replica, when set, marks this daemon a read-only follower: uploads
	// and deletions are rejected — its state is fed exclusively by the
	// replication stream — and status replies report the stream's lag.
	Replica *Replica
	// Cache, when set, memoizes Search/SearchBatch results keyed by query
	// fingerprint and validated against Server's mutation epoch — repeated
	// queries skip the arena scan entirely. A nil Cache disables caching.
	// Works unchanged on followers: entries key off the follower's own
	// epoch, so replicated applies invalidate them like local mutations.
	Cache *ResultCache
	// HeartbeatEvery is the idle heartbeat interval of outgoing replication
	// streams (0 = 500ms).
	HeartbeatEvery time.Duration
	Logger         *log.Logger // optional

	replMu    sync.Mutex // guards followers
	followers map[*follower]struct{}
}

// backend returns the mutation sink: Store when configured, else Server.
func (s *CloudService) backend() Backend {
	if s.Store != nil {
		return s.Store
	}
	return s.Server
}

// Serve accepts connections on l until it is closed.
func (s *CloudService) Serve(l net.Listener) error {
	return serveLoop(l, s.Logger, func(pc *protocol.Conn, conn net.Conn, m *protocol.Message) *protocol.Message {
		switch {
		case m.UploadReq != nil:
			return s.handleUpload(m.UploadReq)
		case m.DeleteReq != nil:
			return s.handleDelete(m.DeleteReq)
		case m.SearchReq != nil:
			return s.handleSearch(m.SearchReq)
		case m.SearchBatchReq != nil:
			return s.handleSearchBatch(m.SearchBatchReq)
		case m.FetchReq != nil:
			return s.handleFetch(m.FetchReq)
		case m.StatsReq != nil:
			return s.handleStats()
		case m.ReplicaSubscribeReq != nil:
			// Takes over the connection for the stream's lifetime; a nil
			// return tells serveLoop the conversation is over.
			s.handleReplicaSubscribe(pc, conn.RemoteAddr().String(), m.ReplicaSubscribeReq)
			return nil
		case m.ReplicaStatusReq != nil:
			return s.handleReplicaStatus()
		default:
			return errMsg(fmt.Errorf("cloud: unsupported request"))
		}
	})
}

func (s *CloudService) handleUpload(req *protocol.UploadRequest) *protocol.Message {
	if s.Replica != nil {
		return errMsg(fmt.Errorf("cloud: this server is a read-only replica; route uploads to the primary"))
	}
	levels := make([]*bitindex.Vector, len(req.Levels))
	for i, raw := range req.Levels {
		v, err := unmarshalVector(raw)
		if err != nil {
			return errMsg(fmt.Errorf("cloud: upload level %d: %w", i+1, err))
		}
		levels[i] = v
	}
	si := &core.SearchIndex{DocID: req.DocID, Levels: levels}
	doc := &core.EncryptedDocument{ID: req.DocID, Ciphertext: req.Ciphertext, EncKey: req.EncKey}
	if err := s.backend().Upload(si, doc); err != nil {
		return errMsg(err)
	}
	return &protocol.Message{UploadResp: &protocol.UploadResponse{Stored: s.Server.NumDocuments()}}
}

func (s *CloudService) handleDelete(req *protocol.DeleteRequest) *protocol.Message {
	if s.Replica != nil {
		return errMsg(fmt.Errorf("cloud: this server is a read-only replica; route deletions to the primary"))
	}
	if err := s.backend().Delete(req.DocID); err != nil {
		return errMsg(err)
	}
	logf(s.Logger, "cloud: deleted %q, %d documents remain", req.DocID, s.Server.NumDocuments())
	return &protocol.Message{DeleteResp: &protocol.DeleteResponse{Stored: s.Server.NumDocuments()}}
}

func (s *CloudService) handleSearch(req *protocol.SearchRequest) *protocol.Message {
	resp, err := s.SearchWire(req)
	if err != nil {
		return errMsg(err)
	}
	logf(s.Logger, "cloud: query over %d documents -> %d matches", s.Server.NumDocuments(), len(resp.Matches))
	return &protocol.Message{SearchResp: resp}
}

func (s *CloudService) handleSearchBatch(req *protocol.SearchBatchRequest) *protocol.Message {
	resp, err := s.SearchBatchWire(req)
	if err != nil {
		return errMsg(err)
	}
	logf(s.Logger, "cloud: batch of %d queries over %d documents", len(req.Queries), s.Server.NumDocuments())
	return &protocol.Message{SearchBatchResp: resp}
}

// matchesToWire encodes ranked matches for the wire (and the cache).
func matchesToWire(matches []core.Match) []protocol.MatchWire {
	wire := make([]protocol.MatchWire, len(matches))
	for i, m := range matches {
		wire[i] = protocol.MatchWire{DocID: m.DocID, Rank: m.Rank, Meta: marshalVector(m.Meta)}
	}
	return wire
}

// wireSize is the cache-accounted payload of one result: the variable-length
// bytes plus a constant per match for the fixed fields.
func wireSize(ms []protocol.MatchWire) int64 {
	n := int64(0)
	for i := range ms {
		n += int64(len(ms[i].DocID)+len(ms[i].Meta)) + 48
	}
	return n
}

// SearchWire answers one search request at the wire level — the same path
// handleSearch serves over TCP, callable in-process by experiments, tests
// and benchmarks. With a Cache configured, the store's mutation epoch is
// read before the scan and the query fingerprint is looked up: a hit skips
// the scan entirely, a miss scans and stores the encoded result at that
// epoch. The returned match slice may be shared with the cache and other
// requests; callers must not mutate it.
func (s *CloudService) SearchWire(req *protocol.SearchRequest) (*protocol.SearchResponse, error) {
	var key qcache.Key
	var epoch uint64
	if s.Cache != nil {
		// The epoch MUST be read before the scan starts: a mutation landing
		// between this read and the scan invalidates the entry we are about
		// to store, never the other way around.
		epoch = s.Server.Epoch()
		key = qcache.Fingerprint(s.Server.Params().R, req.TopK, req.Query)
		if wire, ok := s.Cache.Get(key, epoch); ok {
			return &protocol.SearchResponse{Matches: wire}, nil
		}
	}
	q, err := unmarshalVector(req.Query)
	if err != nil {
		return nil, fmt.Errorf("cloud: malformed query: %w", err)
	}
	matches, err := s.Server.SearchTop(q, req.TopK)
	if err != nil {
		return nil, err
	}
	wire := matchesToWire(matches)
	if s.Cache != nil {
		s.Cache.Put(key, epoch, wire, wireSize(wire))
	}
	return &protocol.SearchResponse{Matches: wire}, nil
}

// batchGroup collects the request slots holding one distinct query vector.
type batchGroup struct {
	key   qcache.Key
	slots []int
}

// SearchBatchWire answers one batch search request at the wire level.
// Identical query vectors within the batch are computed once and the result
// fanned out to every slot — cache or no cache — and with a Cache configured
// each distinct query is first looked up by fingerprint, so a batch of
// already-cached queries performs no scan at all; only the misses go through
// one sharded SearchBatch pass. Result slices may be shared between
// duplicate slots and with the cache; callers must not mutate them.
func (s *CloudService) SearchBatchWire(req *protocol.SearchBatchRequest) (*protocol.SearchBatchResponse, error) {
	out := make([][]protocol.MatchWire, len(req.Queries))
	if len(req.Queries) == 0 {
		return &protocol.SearchBatchResponse{Results: out}, nil
	}
	var epoch uint64
	if s.Cache != nil {
		epoch = s.Server.Epoch() // before any scan, as in SearchWire
	}

	// Group slots by query fingerprint, preserving first-appearance order.
	r := s.Server.Params().R
	groups := make([]*batchGroup, 0, len(req.Queries))
	byKey := make(map[qcache.Key]*batchGroup, len(req.Queries))
	for i, raw := range req.Queries {
		k := qcache.Fingerprint(r, req.TopK, raw)
		g := byKey[k]
		if g == nil {
			g = &batchGroup{key: k}
			byKey[k] = g
			groups = append(groups, g)
		}
		g.slots = append(g.slots, i)
	}

	// Serve cached groups; decode one representative per remaining group.
	misses := groups[:0]
	var queries []*bitindex.Vector
	for _, g := range groups {
		if s.Cache != nil {
			if wire, ok := s.Cache.Get(g.key, epoch); ok {
				for _, slot := range g.slots {
					out[slot] = wire
				}
				continue
			}
		}
		q, err := unmarshalVector(req.Queries[g.slots[0]])
		if err != nil {
			return nil, fmt.Errorf("cloud: malformed batch query %d: %w", g.slots[0], err)
		}
		misses = append(misses, g)
		queries = append(queries, q)
	}

	if len(queries) > 0 {
		results, err := s.Server.SearchBatch(queries, req.TopK)
		if err != nil {
			return nil, err
		}
		for gi, g := range misses {
			wire := matchesToWire(results[gi])
			if s.Cache != nil {
				s.Cache.Put(g.key, epoch, wire, wireSize(wire))
			}
			for _, slot := range g.slots {
				out[slot] = wire
			}
		}
	}
	return &protocol.SearchBatchResponse{Results: out}, nil
}

// handleStats reports the daemon's operational counters: store size and
// layout, mutation epoch, log position (with replication lag on a
// follower), and the query-result cache counters.
func (s *CloudService) handleStats() *protocol.Message {
	resp := &protocol.StatsResponse{
		NumDocuments: s.Server.NumDocuments(),
		NumShards:    s.Server.NumShards(),
		Epoch:        s.Server.Epoch(),
	}
	if s.WAL != nil {
		resp.Durable = true
		resp.WALPosition = s.WAL.Position()
		resp.PrimaryPosition = resp.WALPosition
	}
	if s.Replica != nil {
		st := s.Replica.Status()
		resp.Replica = true
		resp.ReplicaConnected = st.Connected
		resp.WALPosition = st.Position
		resp.PrimaryPosition = st.PrimaryPosition
	}
	if s.Cache != nil {
		cs := s.Cache.Stats()
		resp.Cache = protocol.CacheStatsWire{
			Enabled:       true,
			Hits:          cs.Hits,
			Misses:        cs.Misses,
			Evictions:     cs.Evictions,
			Invalidations: cs.Invalidations,
			Entries:       cs.Entries,
			Bytes:         cs.Bytes,
			MaxBytes:      cs.MaxBytes,
		}
	}
	return &protocol.Message{StatsResp: resp}
}

func (s *CloudService) handleFetch(req *protocol.FetchRequest) *protocol.Message {
	doc, err := s.Server.Fetch(req.DocID)
	if err != nil {
		return errMsg(err)
	}
	return &protocol.Message{FetchResp: &protocol.FetchResponse{
		DocID:      doc.ID,
		Ciphertext: doc.Ciphertext,
		EncKey:     doc.EncKey,
	}}
}
