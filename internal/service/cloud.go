package service

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"mkse/internal/bitindex"
	"mkse/internal/core"
	"mkse/internal/protocol"
)

// Backend applies the mutating half of the cloud service. *core.Server
// satisfies it (in-memory only); the durable storage engine
// (internal/durable) satisfies it too, logging every mutation to its
// write-ahead log before applying it.
type Backend interface {
	Upload(*core.SearchIndex, *core.EncryptedDocument) error
	Delete(docID string) error
}

// CloudService exposes a core.Server over TCP: Upload, Delete, Search and
// Fetch endpoints. It requires no authentication — the server is semi-honest
// and queries are anonymous ("the user does not provide his identity during
// the communication with the server", Section 7).
type CloudService struct {
	Server *core.Server
	// Store, when set, receives uploads and deletions instead of Server —
	// the hook that puts the durable write-ahead log under the daemon.
	// Reads always go to Server.
	Store Backend
	// WAL, when set, lets this daemon serve its write-ahead log to
	// followers over the replication verbs (any durably backed daemon can;
	// set it to the same durable engine as Store).
	WAL WALSource
	// Replica, when set, marks this daemon a read-only follower: uploads
	// and deletions are rejected — its state is fed exclusively by the
	// replication stream — and status replies report the stream's lag.
	Replica *Replica
	// HeartbeatEvery is the idle heartbeat interval of outgoing replication
	// streams (0 = 500ms).
	HeartbeatEvery time.Duration
	Logger         *log.Logger // optional

	replMu    sync.Mutex // guards followers
	followers map[*follower]struct{}
}

// backend returns the mutation sink: Store when configured, else Server.
func (s *CloudService) backend() Backend {
	if s.Store != nil {
		return s.Store
	}
	return s.Server
}

// Serve accepts connections on l until it is closed.
func (s *CloudService) Serve(l net.Listener) error {
	return serveLoop(l, s.Logger, func(pc *protocol.Conn, conn net.Conn, m *protocol.Message) *protocol.Message {
		switch {
		case m.UploadReq != nil:
			return s.handleUpload(m.UploadReq)
		case m.DeleteReq != nil:
			return s.handleDelete(m.DeleteReq)
		case m.SearchReq != nil:
			return s.handleSearch(m.SearchReq)
		case m.SearchBatchReq != nil:
			return s.handleSearchBatch(m.SearchBatchReq)
		case m.FetchReq != nil:
			return s.handleFetch(m.FetchReq)
		case m.ReplicaSubscribeReq != nil:
			// Takes over the connection for the stream's lifetime; a nil
			// return tells serveLoop the conversation is over.
			s.handleReplicaSubscribe(pc, conn.RemoteAddr().String(), m.ReplicaSubscribeReq)
			return nil
		case m.ReplicaStatusReq != nil:
			return s.handleReplicaStatus()
		default:
			return errMsg(fmt.Errorf("cloud: unsupported request"))
		}
	})
}

func (s *CloudService) handleUpload(req *protocol.UploadRequest) *protocol.Message {
	if s.Replica != nil {
		return errMsg(fmt.Errorf("cloud: this server is a read-only replica; route uploads to the primary"))
	}
	levels := make([]*bitindex.Vector, len(req.Levels))
	for i, raw := range req.Levels {
		v, err := unmarshalVector(raw)
		if err != nil {
			return errMsg(fmt.Errorf("cloud: upload level %d: %w", i+1, err))
		}
		levels[i] = v
	}
	si := &core.SearchIndex{DocID: req.DocID, Levels: levels}
	doc := &core.EncryptedDocument{ID: req.DocID, Ciphertext: req.Ciphertext, EncKey: req.EncKey}
	if err := s.backend().Upload(si, doc); err != nil {
		return errMsg(err)
	}
	return &protocol.Message{UploadResp: &protocol.UploadResponse{Stored: s.Server.NumDocuments()}}
}

func (s *CloudService) handleDelete(req *protocol.DeleteRequest) *protocol.Message {
	if s.Replica != nil {
		return errMsg(fmt.Errorf("cloud: this server is a read-only replica; route deletions to the primary"))
	}
	if err := s.backend().Delete(req.DocID); err != nil {
		return errMsg(err)
	}
	logf(s.Logger, "cloud: deleted %q, %d documents remain", req.DocID, s.Server.NumDocuments())
	return &protocol.Message{DeleteResp: &protocol.DeleteResponse{Stored: s.Server.NumDocuments()}}
}

func (s *CloudService) handleSearch(req *protocol.SearchRequest) *protocol.Message {
	q, err := unmarshalVector(req.Query)
	if err != nil {
		return errMsg(fmt.Errorf("cloud: malformed query: %w", err))
	}
	matches, err := s.Server.SearchTop(q, req.TopK)
	if err != nil {
		return errMsg(err)
	}
	wire := make([]protocol.MatchWire, len(matches))
	for i, m := range matches {
		wire[i] = protocol.MatchWire{DocID: m.DocID, Rank: m.Rank, Meta: marshalVector(m.Meta)}
	}
	logf(s.Logger, "cloud: query over %d documents -> %d matches", s.Server.NumDocuments(), len(matches))
	return &protocol.Message{SearchResp: &protocol.SearchResponse{Matches: wire}}
}

func (s *CloudService) handleSearchBatch(req *protocol.SearchBatchRequest) *protocol.Message {
	queries := make([]*bitindex.Vector, len(req.Queries))
	for i, raw := range req.Queries {
		q, err := unmarshalVector(raw)
		if err != nil {
			return errMsg(fmt.Errorf("cloud: malformed batch query %d: %w", i, err))
		}
		queries[i] = q
	}
	results, err := s.Server.SearchBatch(queries, req.TopK)
	if err != nil {
		return errMsg(err)
	}
	wire := make([][]protocol.MatchWire, len(results))
	for qi, matches := range results {
		wire[qi] = make([]protocol.MatchWire, len(matches))
		for i, m := range matches {
			wire[qi][i] = protocol.MatchWire{DocID: m.DocID, Rank: m.Rank, Meta: marshalVector(m.Meta)}
		}
	}
	logf(s.Logger, "cloud: batch of %d queries over %d documents", len(queries), s.Server.NumDocuments())
	return &protocol.Message{SearchBatchResp: &protocol.SearchBatchResponse{Results: wire}}
}

func (s *CloudService) handleFetch(req *protocol.FetchRequest) *protocol.Message {
	doc, err := s.Server.Fetch(req.DocID)
	if err != nil {
		return errMsg(err)
	}
	return &protocol.Message{FetchResp: &protocol.FetchResponse{
		DocID:      doc.ID,
		Ciphertext: doc.Ciphertext,
		EncKey:     doc.EncKey,
	}}
}
