package service

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"strconv"
	"sync"
	"time"

	"mkse/internal/bitindex"
	"mkse/internal/cluster"
	"mkse/internal/core"
	"mkse/internal/durable"
	"mkse/internal/protocol"
	"mkse/internal/qcache"
	"mkse/internal/trace"
)

// ResultCache is the query-result cache a cloud daemon may carry: query
// fingerprint → the wire-encoded ranked matches it produced, validated
// against the store's mutation epoch (see internal/qcache for why caching
// is privacy-neutral under this scheme's leakage profile). Cached match
// slices are shared across responses and must never be mutated.
type ResultCache = qcache.Cache[[]protocol.MatchWire]

// NewResultCache builds a query-result cache bounded to maxBytes (<= 0
// returns the nil disabled cache, which every call site tolerates).
func NewResultCache(maxBytes int64) *ResultCache {
	return qcache.New[[]protocol.MatchWire](maxBytes, 0)
}

// Backend applies the mutating half of the cloud service. *core.Server
// satisfies it (in-memory only); the durable storage engine
// (internal/durable) satisfies it too, logging every mutation to its
// write-ahead log before applying it.
type Backend interface {
	Upload(*core.SearchIndex, *core.EncryptedDocument) error
	Delete(docID string) error
}

// CloudService exposes a core.Server over TCP: Upload, Delete, Search,
// Fetch and Stats endpoints. It requires no authentication — the server is
// semi-honest and queries are anonymous ("the user does not provide his
// identity during the communication with the server", Section 7).
type CloudService struct {
	Server *core.Server
	// Store, when set, receives uploads and deletions instead of Server —
	// the hook that puts the durable write-ahead log under the daemon.
	// Reads always go to Server.
	Store Backend
	// WAL, when set, lets this daemon serve its write-ahead log to
	// followers over the replication verbs (any durably backed daemon can;
	// set it to the same durable engine as Store).
	WAL WALSource
	// Eng, when set, enables the failover verbs (Promote, Reconfigure):
	// promotion needs the concrete durable engine — its term must be raised
	// and a replacement replication stream started against it. Set it to the
	// same engine as Store/WAL.
	Eng *durable.Engine
	// Replica, when set, marks this daemon a read-only follower: uploads
	// and deletions are rejected — its state is fed exclusively by the
	// replication stream — and status replies report the stream's lag. Set
	// it before Serve; afterwards the Promote and Reconfigure verbs mutate
	// it under the service's lock (use replica() to read it).
	Replica *Replica
	// IdleTimeout, when non-zero, bounds how long a connection may sit
	// between requests before it is dropped (replication streams, which own
	// their connection, are exempt).
	IdleTimeout time.Duration
	// Cache, when set, memoizes Search/SearchBatch results keyed by query
	// fingerprint and validated against Server's mutation epoch — repeated
	// queries skip the arena scan entirely. A nil Cache disables caching.
	// Works unchanged on followers: entries key off the follower's own
	// epoch, so replicated applies invalidate them like local mutations.
	Cache *ResultCache
	// HeartbeatEvery is the idle heartbeat interval of outgoing replication
	// streams (0 = 500ms).
	HeartbeatEvery time.Duration
	// Metrics, when set (EnableMetrics), receives per-verb request counts,
	// latency histograms and the in-flight gauge for every request this
	// service handles. A nil Metrics costs the hot path one nil check.
	Metrics *ServiceMetrics
	// SlowQuery, when non-zero, logs any search or batch search that takes
	// longer than the threshold at WARN level with verb/duration/remote
	// fields — the always-on tail-latency tripwire. The same threshold
	// governs /traces/slow retention (set the trace buffer's threshold to
	// this value), so logs and traces agree on what "slow" means.
	SlowQuery time.Duration
	// Tracer, when set (EnableTracing), samples requests into distributed
	// traces: an incoming sampled trace context is continued as a child of
	// the sender's span, other requests are head-sampled 1 in N, and
	// searches that cross SlowQuery without being sampled are still
	// captured as single-span traces. A nil Tracer disables tracing.
	Tracer *trace.Tracer
	// Partition and Partitions give the daemon its static cluster identity
	// (-partition i/P): this server owns the documents the doc-ID hash map
	// assigns to index Partition out of Partitions. With Partitions > 1 the
	// server enforces the map — uploads and deletions for documents another
	// partition owns are rejected with CodeWrongPartition, so a misconfigured
	// coordinator cannot fork the corpus. Partitions 0 means the daemon is
	// not part of a cluster.
	Partition  int
	Partitions int
	Logger     *slog.Logger // optional

	replMu    sync.Mutex // guards followers, Replica (post-Serve) and demoted
	followers map[*follower]struct{}
	// demoted marks a fenced ex-primary: a peer presented a higher promotion
	// term, so this daemon stops accepting writes until a Reconfigure or
	// Promote puts it back into a defined role.
	demoted bool

	// failMu serializes the failover verbs (Promote, Reconfigure) so an
	// observer retry cannot interleave with a promotion in flight.
	failMu sync.Mutex

	tracker connTracker
}

// replica returns the daemon's current follower stream, if any. Handlers
// must use this accessor rather than the field: Promote and Reconfigure
// swap the field at runtime.
func (s *CloudService) replica() *Replica {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.Replica
}

// CurrentReplica returns the daemon's follower stream, if any, reflecting
// runtime role changes — after a Promote the construction-time Replica
// field is stale. Shutdown paths should close what this returns.
func (s *CloudService) CurrentReplica() *Replica {
	return s.replica()
}

// isDemoted reports whether this daemon has been fenced (see demoted).
func (s *CloudService) isDemoted() bool {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.demoted
}

// fence demotes this daemon to read-only after a peer presented peerTerm,
// above our own: some follower was promoted while we were isolated, and
// accepting further writes would fork the history.
func (s *CloudService) fence(peerTerm uint64) {
	s.replMu.Lock()
	already := s.demoted
	s.demoted = true
	s.replMu.Unlock()
	if !already {
		logf(s.Logger, "cloud: fenced: a peer is at promotion term %d, above ours — this server was failed over; demoting to read-only", peerTerm)
	}
}

// Drain gracefully winds the service down after its listener has been
// closed: it waits up to timeout for in-flight connections to finish, then
// force-closes the rest. The storage engine is untouched — closing it is
// the caller's job, after Drain returns.
func (s *CloudService) Drain(timeout time.Duration) {
	if cut := s.tracker.drain(timeout); cut > 0 {
		logf(s.Logger, "cloud: drain window elapsed, cut %d connection(s)", cut)
	}
}

// backend returns the mutation sink: Store when configured, else Server.
func (s *CloudService) backend() Backend {
	if s.Store != nil {
		return s.Store
	}
	return s.Server
}

// Serve accepts connections on l until it is closed. Every request flows
// through one instrumented dispatch: the verb is classified, the in-flight
// gauge and per-verb counters/latency histograms are updated when Metrics
// is enabled, searches over the SlowQuery threshold are logged at WARN, and
// per-request DEBUG logs carry verb/duration/remote fields.
func (s *CloudService) Serve(l net.Listener) error {
	return serveLoop(l, s.Logger, s.IdleTimeout, &s.tracker, func(pc *protocol.Conn, conn net.Conn, m *protocol.Message) *protocol.Message {
		verb := verbOf(m)
		mt := s.Metrics
		var start time.Time
		if mt != nil || s.SlowQuery > 0 || s.Logger != nil || s.Tracer != nil {
			start = time.Now()
		}
		ctx, root := s.traceRequest(m, verb)
		mt.begin()
		resp := s.dispatch(ctx, pc, conn, m, verb)
		mt.end()
		traceID := ""
		if root != nil {
			if resp != nil && resp.Error != nil {
				root.SetAttr("error", resp.Error.Text)
			}
			root.SetAttr("remote", conn.RemoteAddr().String())
			root.End()
			traceID = root.TraceID().String()
			if resp != nil {
				// Echo everything this process recorded so the request's
				// origin can graft our subtree into its assembled trace.
				resp.Spans = spansToWire(root.Spans())
			}
		}
		if start.IsZero() {
			return resp
		}
		dur := time.Since(start)
		// Capture-all-slow: a search that crossed the slow threshold without
		// being head-sampled still lands in /traces/slow as one root span,
		// so the tail the latency histograms flag is always inspectable.
		if root == nil && s.Tracer != nil && s.SlowQuery > 0 && dur >= s.SlowQuery &&
			(verb == VerbSearch || verb == VerbSearchBatch) {
			id := s.Tracer.RecordRoot("server:"+verb, start, dur,
				trace.Attr{Key: "verb", Value: verb},
				trace.Attr{Key: "remote", Value: conn.RemoteAddr().String()},
				trace.Attr{Key: "documents", Value: strconv.Itoa(s.Server.NumDocuments())})
			if !id.IsZero() {
				traceID = id.String()
			}
		}
		// A replication subscribe returns nil after owning the connection for
		// the stream's whole lifetime — its "duration" is not a request
		// latency, so it is counted but never observed.
		if mt != nil && resp != nil {
			mt.observe(verb, dur, resp.Error != nil, traceID)
		}
		if s.Logger == nil {
			return resp
		}
		if s.SlowQuery > 0 && dur >= s.SlowQuery && (verb == VerbSearch || verb == VerbSearchBatch) {
			args := []any{
				"verb", verb, "duration", dur, "remote", conn.RemoteAddr().String(),
				"budget", s.SlowQuery, "documents", s.Server.NumDocuments()}
			if traceID != "" {
				args = append(args, "trace_id", traceID)
			}
			s.Logger.Warn("slow query", args...)
		} else if resp != nil && resp.Error != nil {
			args := []any{
				"verb", verb, "duration", dur, "remote", conn.RemoteAddr().String(),
				"err", resp.Error.Text}
			if traceID != "" {
				args = append(args, "trace_id", traceID)
			}
			s.Logger.Warn("request failed", args...)
		} else if traceID != "" {
			s.Logger.Debug("request served",
				"verb", verb, "duration", dur, "remote", conn.RemoteAddr().String(),
				"trace_id", traceID)
		} else {
			s.Logger.Debug("request served",
				"verb", verb, "duration", dur, "remote", conn.RemoteAddr().String())
		}
		return resp
	})
}

// traceRequest opens this process's root span for one request: an incoming
// sampled trace context is continued as a child of the sender's span;
// otherwise the local head sampler decides. Replication subscribes are
// never traced — they are connection-lifetime streams, not requests.
func (s *CloudService) traceRequest(m *protocol.Message, verb string) (context.Context, *trace.ActiveSpan) {
	ctx := context.Background()
	if s.Tracer == nil || verb == VerbReplicaSubscribe {
		return ctx, nil
	}
	return s.Tracer.ContinueRequest(ctx, "server:"+verb, traceCtxFromWire(m.Trace))
}

// dispatch routes one decoded request to its handler. ctx carries the
// request's trace (context.Background() when unsampled) into the handlers
// that record spans: search scans, qcache lookups, WAL appends.
func (s *CloudService) dispatch(ctx context.Context, pc *protocol.Conn, conn net.Conn, m *protocol.Message, verb string) *protocol.Message {
	switch verb {
	case VerbUpload:
		return s.handleUpload(ctx, m.UploadReq)
	case VerbDelete:
		return s.handleDelete(ctx, m.DeleteReq)
	case VerbSearch:
		return s.handleSearch(ctx, m.SearchReq)
	case VerbSearchBatch:
		return s.handleSearchBatch(ctx, m.SearchBatchReq)
	case VerbFetch:
		return s.handleFetch(m.FetchReq)
	case VerbStats:
		return s.handleStats()
	case VerbReplicaSubscribe:
		// Takes over the connection for the stream's lifetime; a nil
		// return tells serveLoop the conversation is over. The stream
		// has its own liveness protocol (acks against heartbeats), so
		// the per-request idle deadline comes off.
		conn.SetReadDeadline(time.Time{})
		s.handleReplicaSubscribe(pc, conn.RemoteAddr().String(), m.ReplicaSubscribeReq)
		return nil
	case VerbReplicaStatus:
		return s.handleReplicaStatus()
	case VerbPromote:
		return s.handlePromote(m.PromoteReq)
	case VerbReconfigure:
		return s.handleReconfigure(m.ReconfigureReq)
	case VerbClusterInfo:
		return s.handleClusterInfo()
	default:
		return errMsg(fmt.Errorf("cloud: unsupported request"))
	}
}

// handlePromote flips this daemon to primary in place: stop following, raise
// the engine's promotion term to the observer's claimed term, and start
// accepting writes. The order is load-bearing — the replica stream is fully
// stopped (Close blocks until in-flight applies return) before the term is
// bumped, and writes are only admitted after the bump, so no replicated
// record can land after the term record and no local write can precede it.
// Re-promoting to the current term is idempotent, letting an observer retry
// a promote whose acknowledgement it lost.
func (s *CloudService) handlePromote(req *protocol.PromoteRequest) *protocol.Message {
	if s.Eng == nil {
		return errMsg(fmt.Errorf("cloud: this server has no durable engine to promote (start it with -data)"))
	}
	s.failMu.Lock()
	defer s.failMu.Unlock()
	if cur := s.Eng.Term(); req.Term < cur {
		return errMsgCode(protocol.CodeStaleTerm, fmt.Errorf("cloud: promote to term %d refused, already at term %d", req.Term, cur))
	}
	if r := s.replica(); r != nil {
		r.Close()
	}
	if err := s.Eng.SetTerm(req.Term); err != nil {
		return errMsgCode(protocol.CodeStaleTerm, fmt.Errorf("cloud: promote: %w", err))
	}
	s.replMu.Lock()
	s.Replica = nil
	s.demoted = false
	s.replMu.Unlock()
	logf(s.Logger, "cloud: promoted to primary at term %d (term starts at position %d)", s.Eng.Term(), s.Eng.TermStart())
	return &protocol.Message{PromoteResp: &protocol.PromoteResponse{
		Term:     s.Eng.Term(),
		Position: s.Eng.TermStart(),
	}}
}

// handleReconfigure repoints this daemon at a new primary (or detaches it,
// with an empty primary address). A follower drops its stream and
// re-subscribes; an old primary receiving this learns it was failed over and
// rejoins as a follower — its diverged log tail, if any, is wiped when the
// subscribe is bounced with CodeDiverged and retried as a bootstrap.
func (s *CloudService) handleReconfigure(req *protocol.ReconfigureRequest) *protocol.Message {
	if s.Eng == nil {
		return errMsg(fmt.Errorf("cloud: this server has no durable engine to reconfigure (start it with -data)"))
	}
	s.failMu.Lock()
	defer s.failMu.Unlock()
	if cur := s.Eng.Term(); req.Term < cur {
		return errMsgCode(protocol.CodeStaleTerm, fmt.Errorf("cloud: reconfigure at term %d refused, already at term %d", req.Term, cur))
	}
	if r := s.replica(); r != nil {
		if req.Primary != "" && r.Primary() == req.Primary {
			// Already following the requested primary: nothing to do.
			return &protocol.Message{ReconfigureResp: &protocol.ReconfigureResponse{Term: s.Eng.Term()}}
		}
		r.Close()
	}
	var nr *Replica
	if req.Primary != "" {
		nr = StartReplica(s.Eng, req.Primary, s.Logger)
	}
	s.replMu.Lock()
	s.Replica = nr
	s.demoted = false // the daemon is back in a defined role
	s.replMu.Unlock()
	if req.Primary != "" {
		logf(s.Logger, "cloud: reconfigured to follow %s (term %d)", req.Primary, req.Term)
	} else {
		logf(s.Logger, "cloud: reconfigured to standalone")
	}
	return &protocol.Message{ReconfigureResp: &protocol.ReconfigureResponse{Term: s.Eng.Term()}}
}

// handleClusterInfo reports the daemon's partition identity — the
// partition-map exchange a fat client performs before routing anything.
func (s *CloudService) handleClusterInfo() *protocol.Message {
	return &protocol.Message{ClusterInfoResp: &protocol.ClusterInfoResponse{
		Partition:  s.Partition,
		Partitions: s.Partitions,
	}}
}

// checkOwnership rejects a mutation for a document this partition does not
// own. Searches are never checked — a scatter-gather query legitimately
// reaches every partition.
func (s *CloudService) checkOwnership(docID string) *protocol.Message {
	if s.Partitions <= 1 {
		return nil
	}
	if own := (cluster.Map{Partitions: s.Partitions}).Owner(docID); own != s.Partition {
		return errMsgCode(protocol.CodeWrongPartition, fmt.Errorf(
			"cloud: document %q belongs to partition %d/%d, this server is partition %d — the sender's partition map is misconfigured",
			docID, own, s.Partitions, s.Partition))
	}
	return nil
}

func (s *CloudService) handleUpload(ctx context.Context, req *protocol.UploadRequest) *protocol.Message {
	if s.replica() != nil {
		return errMsgCode(protocol.CodeReadOnly, fmt.Errorf("cloud: this server is a read-only replica; route uploads to the primary"))
	}
	if s.isDemoted() {
		return errMsgCode(protocol.CodeReadOnly, fmt.Errorf("cloud: this server was failed over and is fenced read-only; route uploads to the new primary"))
	}
	if reject := s.checkOwnership(req.DocID); reject != nil {
		return reject
	}
	levels := make([]*bitindex.Vector, len(req.Levels))
	for i, raw := range req.Levels {
		v, err := unmarshalVector(raw)
		if err != nil {
			return errMsg(fmt.Errorf("cloud: upload level %d: %w", i+1, err))
		}
		levels[i] = v
	}
	si := &core.SearchIndex{DocID: req.DocID, Levels: levels}
	doc := &core.EncryptedDocument{ID: req.DocID, Ciphertext: req.Ciphertext, EncKey: req.EncKey}
	b := s.backend()
	var err error
	if cb, ok := b.(ctxBackend); ok {
		err = cb.UploadCtx(ctx, si, doc)
	} else {
		err = b.Upload(si, doc)
	}
	if err != nil {
		return errMsg(err)
	}
	return &protocol.Message{UploadResp: &protocol.UploadResponse{Stored: s.Server.NumDocuments()}}
}

func (s *CloudService) handleDelete(ctx context.Context, req *protocol.DeleteRequest) *protocol.Message {
	if s.replica() != nil {
		return errMsgCode(protocol.CodeReadOnly, fmt.Errorf("cloud: this server is a read-only replica; route deletions to the primary"))
	}
	if s.isDemoted() {
		return errMsgCode(protocol.CodeReadOnly, fmt.Errorf("cloud: this server was failed over and is fenced read-only; route deletions to the new primary"))
	}
	if reject := s.checkOwnership(req.DocID); reject != nil {
		return reject
	}
	b := s.backend()
	var err error
	if cb, ok := b.(ctxBackend); ok {
		err = cb.DeleteCtx(ctx, req.DocID)
	} else {
		err = b.Delete(req.DocID)
	}
	if err != nil {
		return errMsg(err)
	}
	logf(s.Logger, "cloud: deleted %q, %d documents remain", req.DocID, s.Server.NumDocuments())
	return &protocol.Message{DeleteResp: &protocol.DeleteResponse{Stored: s.Server.NumDocuments()}}
}

func (s *CloudService) handleSearch(ctx context.Context, req *protocol.SearchRequest) *protocol.Message {
	resp, err := s.SearchWireCtx(ctx, req)
	if err != nil {
		return errMsg(err)
	}
	logf(s.Logger, "cloud: query over %d documents -> %d matches", s.Server.NumDocuments(), len(resp.Matches))
	return &protocol.Message{SearchResp: resp}
}

func (s *CloudService) handleSearchBatch(ctx context.Context, req *protocol.SearchBatchRequest) *protocol.Message {
	resp, err := s.SearchBatchWireCtx(ctx, req)
	if err != nil {
		return errMsg(err)
	}
	logf(s.Logger, "cloud: batch of %d queries over %d documents", len(req.Queries), s.Server.NumDocuments())
	return &protocol.Message{SearchBatchResp: resp}
}

// matchesToWire encodes ranked matches for the wire (and the cache).
func matchesToWire(matches []core.Match) []protocol.MatchWire {
	wire := make([]protocol.MatchWire, len(matches))
	for i, m := range matches {
		wire[i] = protocol.MatchWire{DocID: m.DocID, Rank: m.Rank, Meta: marshalVector(m.Meta)}
	}
	return wire
}

// wireSize is the cache-accounted payload of one result: the variable-length
// bytes plus a constant per match for the fixed fields.
func wireSize(ms []protocol.MatchWire) int64 {
	n := int64(0)
	for i := range ms {
		n += int64(len(ms[i].DocID)+len(ms[i].Meta)) + 48
	}
	return n
}

// SearchWire answers one search request at the wire level — the same path
// handleSearch serves over TCP, callable in-process by experiments, tests
// and benchmarks. With a Cache configured, the store's mutation epoch is
// read before the scan and the query fingerprint is looked up: a hit skips
// the scan entirely, a miss scans and stores the encoded result at that
// epoch. The returned match slice may be shared with the cache and other
// requests; callers must not mutate it.
func (s *CloudService) SearchWire(req *protocol.SearchRequest) (*protocol.SearchResponse, error) {
	return s.SearchWireCtx(context.Background(), req)
}

// SearchWireCtx is SearchWire under a request context: when the context
// carries a sampled trace, the cache lookup records a "qcache" span
// (outcome=hit|miss) and the arena scan records its "scan" span through the
// core server's context observer. The trace.Sampled guard keeps the
// unsampled path free of the allocations attribute slices would otherwise
// cost.
func (s *CloudService) SearchWireCtx(ctx context.Context, req *protocol.SearchRequest) (*protocol.SearchResponse, error) {
	traced := trace.Sampled(ctx)
	var key qcache.Key
	var epoch uint64
	if s.Cache != nil {
		// The epoch MUST be read before the scan starts: a mutation landing
		// between this read and the scan invalidates the entry we are about
		// to store, never the other way around.
		epoch = s.Server.Epoch()
		var t0 time.Time
		if traced {
			t0 = time.Now()
		}
		key = qcache.Fingerprint(s.Server.Params().R, req.TopK, req.Query)
		wire, ok := s.Cache.Get(key, epoch)
		if traced {
			outcome := "miss"
			if ok {
				outcome = "hit"
			}
			trace.AddCompleted(ctx, "qcache", t0, time.Since(t0),
				trace.Attr{Key: "outcome", Value: outcome})
		}
		if ok {
			return &protocol.SearchResponse{Matches: wire}, nil
		}
	}
	q, err := unmarshalVector(req.Query)
	if err != nil {
		return nil, fmt.Errorf("cloud: malformed query: %w", err)
	}
	matches, err := s.Server.SearchTopContext(ctx, q, req.TopK)
	if err != nil {
		return nil, err
	}
	wire := matchesToWire(matches)
	if s.Cache != nil {
		s.Cache.Put(key, epoch, wire, wireSize(wire))
	}
	return &protocol.SearchResponse{Matches: wire}, nil
}

// batchGroup collects the request slots holding one distinct query vector.
type batchGroup struct {
	key   qcache.Key
	slots []int
}

// SearchBatchWire answers one batch search request at the wire level.
// Identical query vectors within the batch are computed once and the result
// fanned out to every slot — cache or no cache — and with a Cache configured
// each distinct query is first looked up by fingerprint, so a batch of
// already-cached queries performs no scan at all; only the misses go through
// one sharded SearchBatch pass. Result slices may be shared between
// duplicate slots and with the cache; callers must not mutate them.
func (s *CloudService) SearchBatchWire(req *protocol.SearchBatchRequest) (*protocol.SearchBatchResponse, error) {
	return s.SearchBatchWireCtx(context.Background(), req)
}

// SearchBatchWireCtx is SearchBatchWire under a request context: a sampled
// trace records one "qcache" span covering the whole grouped lookup (with
// hits/misses counts) and the miss scan records its "scan" span through the
// core server's context observer.
func (s *CloudService) SearchBatchWireCtx(ctx context.Context, req *protocol.SearchBatchRequest) (*protocol.SearchBatchResponse, error) {
	traced := trace.Sampled(ctx)
	out := make([][]protocol.MatchWire, len(req.Queries))
	if len(req.Queries) == 0 {
		return &protocol.SearchBatchResponse{Results: out}, nil
	}
	var epoch uint64
	if s.Cache != nil {
		epoch = s.Server.Epoch() // before any scan, as in SearchWire
	}
	var cacheT0 time.Time
	if traced {
		cacheT0 = time.Now()
	}
	cacheHits := 0

	// Group slots by query fingerprint, preserving first-appearance order.
	r := s.Server.Params().R
	groups := make([]*batchGroup, 0, len(req.Queries))
	byKey := make(map[qcache.Key]*batchGroup, len(req.Queries))
	for i, raw := range req.Queries {
		k := qcache.Fingerprint(r, req.TopK, raw)
		g := byKey[k]
		if g == nil {
			g = &batchGroup{key: k}
			byKey[k] = g
			groups = append(groups, g)
		}
		g.slots = append(g.slots, i)
	}

	// Serve cached groups; decode one representative per remaining group.
	misses := groups[:0]
	var queries []*bitindex.Vector
	for _, g := range groups {
		if s.Cache != nil {
			if wire, ok := s.Cache.Get(g.key, epoch); ok {
				cacheHits++
				for _, slot := range g.slots {
					out[slot] = wire
				}
				continue
			}
		}
		q, err := unmarshalVector(req.Queries[g.slots[0]])
		if err != nil {
			return nil, fmt.Errorf("cloud: malformed batch query %d: %w", g.slots[0], err)
		}
		misses = append(misses, g)
		queries = append(queries, q)
	}
	if traced && s.Cache != nil {
		trace.AddCompleted(ctx, "qcache", cacheT0, time.Since(cacheT0),
			trace.Attr{Key: "hits", Value: strconv.Itoa(cacheHits)},
			trace.Attr{Key: "misses", Value: strconv.Itoa(len(misses))})
	}

	if len(queries) > 0 {
		results, err := s.Server.SearchBatchContext(ctx, queries, req.TopK)
		if err != nil {
			return nil, err
		}
		for gi, g := range misses {
			wire := matchesToWire(results[gi])
			if s.Cache != nil {
				s.Cache.Put(g.key, epoch, wire, wireSize(wire))
			}
			for _, slot := range g.slots {
				out[slot] = wire
			}
		}
	}
	return &protocol.SearchBatchResponse{Results: out}, nil
}

// handleStats reports the daemon's operational counters: store size and
// layout, mutation epoch, log position (with replication lag on a
// follower), and the query-result cache counters.
func (s *CloudService) handleStats() *protocol.Message {
	resp := &protocol.StatsResponse{
		NumDocuments: s.Server.NumDocuments(),
		NumShards:    s.Server.NumShards(),
		Epoch:        s.Server.Epoch(),
		Partition:    s.Partition,
		Partitions:   s.Partitions,
	}
	if s.WAL != nil {
		resp.Durable = true
		resp.WALPosition = s.WAL.Position()
		resp.PrimaryPosition = resp.WALPosition
		resp.Term = s.WAL.Term()
	}
	if r := s.replica(); r != nil {
		st := r.Status()
		resp.Replica = true
		resp.ReplicaConnected = st.Connected
		resp.WALPosition = st.Position
		resp.PrimaryPosition = st.PrimaryPosition
	}
	if s.Cache != nil {
		cs := s.Cache.Stats()
		resp.Cache = protocol.CacheStatsWire{
			Enabled:       true,
			Hits:          cs.Hits,
			Misses:        cs.Misses,
			Evictions:     cs.Evictions,
			Invalidations: cs.Invalidations,
			Entries:       cs.Entries,
			Bytes:         cs.Bytes,
			MaxBytes:      cs.MaxBytes,
		}
	}
	return &protocol.Message{StatsResp: resp}
}

func (s *CloudService) handleFetch(req *protocol.FetchRequest) *protocol.Message {
	doc, err := s.Server.Fetch(req.DocID)
	if err != nil {
		return errMsg(err)
	}
	return &protocol.Message{FetchResp: &protocol.FetchResponse{
		DocID:      doc.ID,
		Ciphertext: doc.Ciphertext,
		EncKey:     doc.EncKey,
	}}
}
