package service

import (
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"mkse/internal/bitindex"
	"mkse/internal/core"
	"mkse/internal/durable"
	"mkse/internal/protocol"
)

// The cache tests exercise result memoization, not cryptography: like the
// replication tests they feed random valid indices straight into the store
// and judge correctness by byte-identical wire output between the cached
// path and a fresh uncached scan of the same server.

// uncachedWire computes the ground truth for one wire query: a direct scan
// of the server, bypassing the cache entirely.
func uncachedWire(t testing.TB, srv *core.Server, raw []byte, tau int) []protocol.MatchWire {
	t.Helper()
	q, err := unmarshalVector(raw)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := srv.SearchTop(q, tau)
	if err != nil {
		t.Fatal(err)
	}
	return matchesToWire(ms)
}

// cacheQuery builds a wire query guaranteed to match the given index (its
// zero bits are drawn from the index's own level-1 zero set).
func cacheQuery(rng *rand.Rand, p core.Params, si *core.SearchIndex) []byte {
	q := bitindex.NewOnes(p.R)
	zp := si.Levels[0].ZeroPositions()
	for _, j := range rng.Perm(len(zp))[:3] {
		q.SetBit(zp[j], 0)
	}
	return marshalVector(q)
}

// TestCachedSearchAgreesAcrossInterleavings is the cache-correctness
// property test: across hundreds of random upload/re-upload/delete/search
// interleavings — with a repeat-heavy query pool so the cache actually
// hits — every SearchWire and SearchBatchWire result must be byte-identical
// to an uncached scan of the store at that moment. A single stale entry
// served after a mutation fails the comparison immediately.
func TestCachedSearchAgreesAcrossInterleavings(t *testing.T) {
	p := replParams()
	srv, err := core.NewServerSharded(p, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc := &CloudService{Server: srv, Cache: NewResultCache(1 << 20)}
	rng := rand.New(rand.NewSource(101))

	type pooledQuery struct {
		raw []byte
		tau int
	}
	var (
		live    []string
		indices = map[string]*core.SearchIndex{}
		pool    []pooledQuery
		nextID  int
		taus    = []int{0, 3, 10}
	)
	upload := func(id string) {
		si := replIndex(rng, p, id)
		indices[id] = si
		if err := srv.Upload(si, &core.EncryptedDocument{ID: id, Ciphertext: []byte(id), EncKey: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	for ; nextID < 8; nextID++ {
		id := fmt.Sprintf("d-%04d", nextID)
		upload(id)
		live = append(live, id)
	}
	refreshPool := func() {
		id := live[rng.Intn(len(live))]
		q := pooledQuery{raw: cacheQuery(rng, p, indices[id]), tau: taus[rng.Intn(len(taus))]}
		if len(pool) < 6 {
			pool = append(pool, q)
		} else {
			pool[rng.Intn(len(pool))] = q
		}
	}
	for i := 0; i < 6; i++ {
		refreshPool()
	}

	for step := 0; step < 600; step++ {
		switch op := rng.Intn(12); {
		case op < 5: // single search, repeat-heavy
			q := pool[rng.Intn(len(pool))]
			resp, err := svc.SearchWire(&protocol.SearchRequest{Query: q.raw, TopK: q.tau})
			if err != nil {
				t.Fatalf("step %d: search: %v", step, err)
			}
			want := uncachedWire(t, srv, q.raw, q.tau)
			if !reflect.DeepEqual(resp.Matches, want) {
				t.Fatalf("step %d: cached search diverged from uncached scan\n got %v\nwant %v", step, resp.Matches, want)
			}
		case op < 7: // batch search with deliberate duplicates
			tau := taus[rng.Intn(len(taus))]
			n := 2 + rng.Intn(4)
			raws := make([][]byte, n)
			for i := range raws {
				raws[i] = pool[rng.Intn(len(pool))].raw
			}
			raws[rng.Intn(n)] = raws[0] // force at least one duplicate pair
			resp, err := svc.SearchBatchWire(&protocol.SearchBatchRequest{Queries: raws, TopK: tau})
			if err != nil {
				t.Fatalf("step %d: batch: %v", step, err)
			}
			for i, raw := range raws {
				want := uncachedWire(t, srv, raw, tau)
				if !reflect.DeepEqual(resp.Results[i], want) {
					t.Fatalf("step %d: batch slot %d diverged from uncached scan", step, i)
				}
			}
		case op < 9: // upload a new document
			id := fmt.Sprintf("d-%04d", nextID)
			nextID++
			upload(id)
			live = append(live, id)
			refreshPool()
		case op < 10: // replace an existing document's index in place
			upload(live[rng.Intn(len(live))])
		default: // delete
			if len(live) <= 2 {
				continue
			}
			i := rng.Intn(len(live))
			if err := srv.Delete(live[i]); err != nil {
				t.Fatal(err)
			}
			delete(indices, live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}

	st := svc.Cache.Stats()
	if st.Hits == 0 {
		t.Fatal("property run never hit the cache; the test exercised nothing")
	}
	if st.Invalidations == 0 {
		t.Fatal("property run never invalidated an entry; mutations were not interleaved with repeats")
	}
	t.Logf("cache after interleavings: %+v", st)
}

// TestSearchBatchDedupesWithoutCache pins the satellite guarantee: identical
// query vectors inside one batch are scanned once even with no cache
// configured, and every duplicate slot receives the identical result.
func TestSearchBatchDedupesWithoutCache(t *testing.T) {
	p := replParams()
	srv, err := core.NewServerSharded(p, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc := &CloudService{Server: srv} // cache deliberately nil
	rng := rand.New(rand.NewSource(55))
	var sis []*core.SearchIndex
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("d-%03d", i)
		si := replIndex(rng, p, id)
		sis = append(sis, si)
		if err := srv.Upload(si, &core.EncryptedDocument{ID: id, Ciphertext: []byte(id), EncKey: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	q1 := cacheQuery(rng, p, sis[0])
	q2 := cacheQuery(rng, p, sis[1])

	// Comparison cost of the deduped batch must equal that of one scan per
	// distinct query, not per slot.
	before := srv.Costs.Snapshot().BinaryComparisons
	distinct, err := svc.SearchBatchWire(&protocol.SearchBatchRequest{Queries: [][]byte{q1, q2}, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	perDistinct := srv.Costs.Snapshot().BinaryComparisons - before

	before = srv.Costs.Snapshot().BinaryComparisons
	dup, err := svc.SearchBatchWire(&protocol.SearchBatchRequest{Queries: [][]byte{q1, q1, q2, q1, q2}, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	perDuped := srv.Costs.Snapshot().BinaryComparisons - before
	if perDuped != perDistinct {
		t.Fatalf("5-slot batch with 2 distinct queries cost %d comparisons, the 2-query batch cost %d — duplicates were rescanned", perDuped, perDistinct)
	}

	if len(dup.Results) != 5 {
		t.Fatalf("%d result sets for 5 slots", len(dup.Results))
	}
	for _, i := range []int{1, 3} {
		if !reflect.DeepEqual(dup.Results[i], dup.Results[0]) {
			t.Fatalf("duplicate slot %d differs from slot 0", i)
		}
	}
	if !reflect.DeepEqual(dup.Results[0], distinct.Results[0]) || !reflect.DeepEqual(dup.Results[2], distinct.Results[1]) {
		t.Fatal("deduped batch results differ from the plain batch")
	}
	if !reflect.DeepEqual(dup.Results[4], dup.Results[2]) {
		t.Fatal("second q2 slot differs from the first")
	}
}

// TestCacheConcurrentWithMutationsAndCheckpoints is the -race suite:
// searchers hammer the cached path while writers upload and delete through
// the durable engine and a checkpointer cuts snapshots. After the dust
// settles, a warm cached result must still equal a fresh scan.
func TestCacheConcurrentWithMutationsAndCheckpoints(t *testing.T) {
	p := replParams()
	eng, err := durable.Open(t.TempDir(), p, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	svc := &CloudService{Server: eng.Server(), Store: eng, Cache: NewResultCache(1 << 20)}

	seedRng := rand.New(rand.NewSource(77))
	var sis []*core.SearchIndex
	for i := 0; i < 40; i++ {
		sis = append(sis, replUpload(t, eng, seedRng, p, fmt.Sprintf("seed-%03d", i)))
	}
	queries := make([][]byte, 8)
	for i := range queries {
		queries[i] = cacheQuery(seedRng, p, sis[i])
	}

	const iters = 250
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ { // searchers: singles and batches, shared query pool
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + g)))
			for i := 0; i < iters; i++ {
				q := queries[rng.Intn(len(queries))]
				if i%3 == 0 {
					batch := [][]byte{q, queries[rng.Intn(len(queries))], q}
					if _, err := svc.SearchBatchWire(&protocol.SearchBatchRequest{Queries: batch, TopK: 10}); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := svc.SearchWire(&protocol.SearchRequest{Query: q, TopK: 10}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // uploader: new docs and in-place replacements
		defer wg.Done()
		rng := rand.New(rand.NewSource(300))
		for i := 0; i < iters; i++ {
			id := fmt.Sprintf("w-%03d", i%60)
			si := replIndex(rng, p, id)
			if err := eng.Upload(si, &core.EncryptedDocument{ID: id, Ciphertext: []byte(id), EncKey: []byte{1}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // deleter: seeded docs the searchers' queries may match
		defer wg.Done()
		for i := 20; i < 20+iters/10; i++ {
			if err := eng.Delete(fmt.Sprintf("seed-%03d", i%40)); err != nil {
				// Already deleted on a previous lap — fine.
				continue
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() { // checkpointer
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := eng.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()

	// Quiesced: warm every query, then verify hits against fresh scans.
	for _, q := range queries {
		if _, err := svc.SearchWire(&protocol.SearchRequest{Query: q, TopK: 10}); err != nil {
			t.Fatal(err)
		}
		resp, err := svc.SearchWire(&protocol.SearchRequest{Query: q, TopK: 10})
		if err != nil {
			t.Fatal(err)
		}
		if want := uncachedWire(t, eng.Server(), q, 10); !reflect.DeepEqual(resp.Matches, want) {
			t.Fatal("post-hammer cached result differs from a fresh scan")
		}
	}
	if st := svc.Cache.Stats(); st.Hits == 0 {
		t.Fatalf("hammer never hit the cache: %+v", st)
	}
}

// TestFollowerCacheInvalidatedByReplication pins the follower story: a
// follower's cache entries are keyed off its own mutation epoch, so a
// replicated apply — an upload or delete the follower never saw as a client
// request — invalidates them exactly like a local mutation would.
func TestFollowerCacheInvalidatedByReplication(t *testing.T) {
	p := replParams()
	rng := rand.New(rand.NewSource(120))
	pr := startReplPrimary(t, p, t.TempDir())

	siA := replUpload(t, pr.eng, rng, p, "doc-a")
	fo := startReplFollower(t, p, t.TempDir(), pr.addr)
	fo.svc.Cache = NewResultCache(1 << 20)
	waitConverged(t, pr.eng, fo.eng)

	q := cacheQuery(rng, p, siA)
	search := func() []protocol.MatchWire {
		t.Helper()
		resp, err := fo.svc.SearchWire(&protocol.SearchRequest{Query: q, TopK: 0})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Matches
	}
	first := search()
	if len(first) == 0 {
		t.Fatal("query missed doc-a on the follower")
	}
	second := search()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("warm result differs from cold")
	}
	if st := fo.svc.Cache.Stats(); st.Hits != 1 {
		t.Fatalf("repeat search did not hit the follower cache: %+v", st)
	}

	// A second document with doc-a's zero layout also matches q. It arrives
	// only via the replication stream; the follower's cached result must not
	// survive it.
	siB := &core.SearchIndex{DocID: "doc-b", Levels: make([]*bitindex.Vector, p.Eta())}
	for l := range siB.Levels {
		siB.Levels[l] = siA.Levels[l].Clone()
	}
	if err := pr.eng.Upload(siB, &core.EncryptedDocument{ID: "doc-b", Ciphertext: []byte("b"), EncKey: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, pr.eng, fo.eng)

	after := search()
	foundB := false
	for _, m := range after {
		if m.DocID == "doc-b" {
			foundB = true
		}
	}
	if !foundB {
		t.Fatalf("follower served a stale cached result after a replicated upload: %v", after)
	}
	if want := uncachedWire(t, fo.eng.Server(), q, 0); !reflect.DeepEqual(after, want) {
		t.Fatal("post-replication result differs from a fresh follower scan")
	}
	if st := fo.svc.Cache.Stats(); st.Invalidations == 0 {
		t.Fatalf("replicated apply did not invalidate the follower cache: %+v", st)
	}

	// Replicated deletes invalidate too.
	if err := pr.eng.Delete("doc-a"); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, pr.eng, fo.eng)
	final := search()
	for _, m := range final {
		if m.DocID == "doc-a" {
			t.Fatal("follower served deleted doc-a from its cache")
		}
	}
}

// TestStatsVerbOverTCP drives the stats verb end to end against a cached
// daemon: counters move with traffic, and the raw (enrollment-free)
// FetchStats path works for operators.
func TestStatsVerbOverTCP(t *testing.T) {
	p := replParams()
	srv, err := core.NewServerSharded(p, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc := &CloudService{Server: srv, Cache: NewResultCache(1 << 20)}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = svc.Serve(l) }()

	rng := rand.New(rand.NewSource(130))
	var si *core.SearchIndex
	for i := 0; i < 7; i++ {
		id := fmt.Sprintf("d-%03d", i)
		si = replIndex(rng, p, id)
		if err := srv.Upload(si, &core.EncryptedDocument{ID: id, Ciphertext: []byte(id), EncKey: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := protocol.NewConn(conn)

	// Two identical searches over the wire: one miss, one hit.
	q := cacheQuery(rng, p, si)
	for i := 0; i < 2; i++ {
		if _, err := pc.Roundtrip(&protocol.Message{SearchReq: &protocol.SearchRequest{Query: q, TopK: 5}}); err != nil {
			t.Fatal(err)
		}
	}

	st, err := FetchStats(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if st.NumDocuments != 7 || st.NumShards != 4 {
		t.Fatalf("stats report %d documents / %d shards, want 7 / 4", st.NumDocuments, st.NumShards)
	}
	if st.Epoch != 7 {
		t.Fatalf("stats epoch = %d, want 7 (one per upload)", st.Epoch)
	}
	if st.Durable || st.Replica {
		t.Fatalf("memory-only daemon claims durability or replica-hood: %+v", st)
	}
	if !st.Cache.Enabled || st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Fatalf("cache counters %+v, want enabled with 1 hit / 1 miss / 1 entry", st.Cache)
	}
	if st.Cache.MaxBytes != 1<<20 || st.Cache.Bytes <= 0 {
		t.Fatalf("cache accounting %+v", st.Cache)
	}

	// The enrolled-client path reports the same view, cache disabled there.
	d := sharedDeployment(t)
	client, err := Dial("stats-user", d.ownerAddr, d.cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	cst, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if cst.Cache.Enabled {
		t.Fatal("cacheless deployment reports an enabled cache")
	}
	if cst.NumDocuments != d.server.NumDocuments() {
		t.Fatalf("client stats report %d documents, server holds %d", cst.NumDocuments, d.server.NumDocuments())
	}
}
