package service

import (
	"sync"
	"time"

	"mkse/internal/protocol"
	"mkse/internal/telemetry"
)

// Verb names classify every wire request for metrics labels, slow-query
// logs and dispatch. They are the label values of the
// mkse_request_duration_seconds and mkse_request_errors_total series.
const (
	VerbUpload           = "upload"
	VerbDelete           = "delete"
	VerbSearch           = "search"
	VerbSearchBatch      = "searchbatch"
	VerbFetch            = "fetch"
	VerbStats            = "stats"
	VerbReplicaSubscribe = "replicasubscribe"
	VerbReplicaStatus    = "replicastatus"
	VerbPromote          = "promote"
	VerbReconfigure      = "reconfigure"
	VerbClusterInfo      = "clusterinfo"
	VerbUnknown          = "unknown"
)

// verbs is the full label set, pre-registered so every series exists from
// the first scrape (Prometheus rate() needs the zero sample).
var verbs = []string{
	VerbUpload, VerbDelete, VerbSearch, VerbSearchBatch, VerbFetch,
	VerbStats, VerbReplicaSubscribe, VerbReplicaStatus, VerbPromote,
	VerbReconfigure, VerbClusterInfo,
}

// verbOf classifies a decoded message by its populated request field.
func verbOf(m *protocol.Message) string {
	switch {
	case m.UploadReq != nil:
		return VerbUpload
	case m.DeleteReq != nil:
		return VerbDelete
	case m.SearchReq != nil:
		return VerbSearch
	case m.SearchBatchReq != nil:
		return VerbSearchBatch
	case m.FetchReq != nil:
		return VerbFetch
	case m.StatsReq != nil:
		return VerbStats
	case m.ReplicaSubscribeReq != nil:
		return VerbReplicaSubscribe
	case m.ReplicaStatusReq != nil:
		return VerbReplicaStatus
	case m.PromoteReq != nil:
		return VerbPromote
	case m.ReconfigureReq != nil:
		return VerbReconfigure
	case m.ClusterInfoReq != nil:
		return VerbClusterInfo
	default:
		return VerbUnknown
	}
}

// Series names exported by the cloud daemon. mkse-client's `stats -json`
// emits the Stats verb's reply keyed by the same names (StatsJSON), so a
// scrape of /metrics and a stats call agree on vocabulary.
const (
	SeriesRequestDuration  = "mkse_request_duration_seconds"
	SeriesRequestsInFlight = "mkse_requests_in_flight"
	SeriesRequestErrors    = "mkse_request_errors_total"
	SeriesScanDuration     = "mkse_scan_duration_seconds"
	SeriesDocuments        = "mkse_documents"
	SeriesShards           = "mkse_shards"
	SeriesEpoch            = "mkse_epoch"
	SeriesQCacheHits       = "mkse_qcache_hits_total"
	SeriesQCacheMisses     = "mkse_qcache_misses_total"
	SeriesQCacheEvictions  = "mkse_qcache_evictions_total"
	SeriesQCacheInvalid    = "mkse_qcache_invalidations_total"
	SeriesQCacheEntries    = "mkse_qcache_entries"
	SeriesQCacheBytes      = "mkse_qcache_bytes"
	SeriesQCacheMaxBytes   = "mkse_qcache_max_bytes"
	SeriesWALPosition      = "mkse_wal_position"
	SeriesTerm             = "mkse_term"
	SeriesReplicaConnected = "mkse_replica_connected"
	SeriesReplicaLag       = "mkse_replica_lag_records"
	SeriesFollowerLag      = "mkse_follower_lag_records"
	SeriesRole             = "mkse_role"
	SeriesBuildInfo        = "mkse_build_info"
	SeriesSlowestTraced    = "mkse_request_slowest_traced_seconds"
)

// verbMetrics is one verb's latency histogram and error counter, plus the
// exemplar-style record of its slowest traced request: histograms alone say
// the p99 is bad, the attached trace_id says which trace to open.
type verbMetrics struct {
	latency *telemetry.Histogram
	errors  *telemetry.Counter

	slowMu    sync.Mutex
	slowDur   time.Duration
	slowTrace string
}

// ServiceMetrics carries the cloud service's request instruments. Build it
// with EnableMetrics; a nil *ServiceMetrics is valid and free (every method
// no-ops), so uninstrumented daemons pay only a nil check per request.
type ServiceMetrics struct {
	inflight *telemetry.Gauge
	verbs    map[string]*verbMetrics
	unknown  *verbMetrics
}

// begin/end bracket one in-flight request.
func (m *ServiceMetrics) begin() {
	if m != nil {
		m.inflight.Inc()
	}
}

func (m *ServiceMetrics) end() {
	if m != nil {
		m.inflight.Dec()
	}
}

// observe records one finished request's verb, latency and error outcome.
// A non-empty traceID marks the request as traced; the slowest traced
// observation per verb is retained with its trace_id and exported by the
// mkse_request_slowest_traced_seconds collector — a poor man's exemplar that
// survives the plain-text exposition format.
func (m *ServiceMetrics) observe(verb string, d time.Duration, isErr bool, traceID string) {
	if m == nil {
		return
	}
	vm := m.verbs[verb]
	if vm == nil {
		vm = m.unknown
	}
	vm.latency.Observe(d)
	if isErr {
		vm.errors.Inc()
	}
	if traceID != "" {
		vm.slowMu.Lock()
		if d > vm.slowDur {
			vm.slowDur = d
			vm.slowTrace = traceID
		}
		vm.slowMu.Unlock()
	}
}

// EnableMetrics registers the cloud service's full series inventory on reg
// and wires the returned instruments into the request path (s.Metrics) and
// the core server's scan timer (core.Server.ObserveScans). Store/cache/WAL
// totals another subsystem already tracks are exported as scrape-time
// functions rather than double-counted; series with dynamic label sets
// (per-follower lag, the current role) are scrape-time collectors. Call it
// once, before Serve.
func (s *CloudService) EnableMetrics(reg *telemetry.Registry) *ServiceMetrics {
	m := &ServiceMetrics{verbs: make(map[string]*verbMetrics, len(verbs))}
	m.inflight = reg.Gauge(SeriesRequestsInFlight, "Requests currently being served.")
	for _, v := range verbs {
		m.verbs[v] = &verbMetrics{
			latency: reg.Histogram(SeriesRequestDuration, "Wire request latency by verb.",
				telemetry.RequestBuckets(), telemetry.Label{Key: "verb", Value: v}),
			errors: reg.Counter(SeriesRequestErrors, "Requests answered with an error, by verb.",
				telemetry.Label{Key: "verb", Value: v}),
		}
	}
	m.unknown = &verbMetrics{
		latency: reg.Histogram(SeriesRequestDuration, "Wire request latency by verb.",
			telemetry.RequestBuckets(), telemetry.Label{Key: "verb", Value: VerbUnknown}),
		errors: reg.Counter(SeriesRequestErrors, "Requests answered with an error, by verb.",
			telemetry.Label{Key: "verb", Value: VerbUnknown}),
	}

	// Slowest traced request per verb, labelled with its trace_id — collected
	// at scrape time because the trace_id label value changes as slower
	// requests displace the record.
	reg.Collect(SeriesSlowestTraced, "Slowest traced request per verb; trace_id points into /traces.",
		telemetry.KindGauge, func(emit func([]telemetry.Label, float64)) {
			for _, v := range verbs {
				vm := m.verbs[v]
				vm.slowMu.Lock()
				d, id := vm.slowDur, vm.slowTrace
				vm.slowMu.Unlock()
				if id == "" {
					continue
				}
				emit([]telemetry.Label{
					{Key: "verb", Value: v},
					{Key: "trace_id", Value: id},
				}, d.Seconds())
			}
		})

	// The arena-scan histogram hooks into core.Server via an atomic pointer:
	// observing it is one bucket add, keeping the scan path allocation-free
	// (verified by TestSearchScanPathAllocationFree).
	s.Server.ObserveScans(reg.Histogram(SeriesScanDuration,
		"Arena scan duration per search or batch search.", telemetry.RequestBuckets()))

	reg.GaugeFunc(SeriesDocuments, "Documents in the store.",
		func() float64 { return float64(s.Server.NumDocuments()) })
	reg.GaugeFunc(SeriesShards, "Arena shards in the store.",
		func() float64 { return float64(s.Server.NumShards()) })
	reg.GaugeFunc(SeriesEpoch, "Mutation epoch (monotonic; feeds cache invalidation).",
		func() float64 { return float64(s.Server.Epoch()) })

	if c := s.Cache; c != nil {
		reg.CounterFunc(SeriesQCacheHits, "Query-result cache hits.",
			func() float64 { return float64(c.Stats().Hits) })
		reg.CounterFunc(SeriesQCacheMisses, "Query-result cache misses.",
			func() float64 { return float64(c.Stats().Misses) })
		reg.CounterFunc(SeriesQCacheEvictions, "Query-result cache size evictions.",
			func() float64 { return float64(c.Stats().Evictions) })
		reg.CounterFunc(SeriesQCacheInvalid, "Query-result cache epoch invalidations.",
			func() float64 { return float64(c.Stats().Invalidations) })
		reg.GaugeFunc(SeriesQCacheEntries, "Query-result cache live entries.",
			func() float64 { return float64(c.Stats().Entries) })
		reg.GaugeFunc(SeriesQCacheBytes, "Query-result cache resident bytes.",
			func() float64 { return float64(c.Stats().Bytes) })
		reg.GaugeFunc(SeriesQCacheMaxBytes, "Query-result cache byte budget.",
			func() float64 { return float64(c.Stats().MaxBytes) })
	}

	if wal := s.WAL; wal != nil {
		reg.GaugeFunc(SeriesWALPosition, "Write-ahead log position (log sequence number).",
			func() float64 { return float64(wal.Position()) })
		reg.GaugeFunc(SeriesTerm, "Promotion (fencing) term.",
			func() float64 { return float64(wal.Term()) })
	}

	// Role and replication series have dynamic labels or appear and
	// disappear with role changes (a Promote swaps the Replica out at
	// runtime), so they are collected at scrape time.
	reg.Collect(SeriesRole, "Current role (the labelled series is 1).", telemetry.KindGauge,
		func(emit func([]telemetry.Label, float64)) {
			emit([]telemetry.Label{{Key: "role", Value: s.roleName()}}, 1)
		})
	reg.Collect(SeriesReplicaConnected, "1 while the follower's replication stream is established.",
		telemetry.KindGauge, func(emit func([]telemetry.Label, float64)) {
			if r := s.replica(); r != nil {
				v := 0.0
				if r.Status().Connected {
					v = 1
				}
				emit(nil, v)
			}
		})
	reg.Collect(SeriesReplicaLag, "Follower's replication lag in records.",
		telemetry.KindGauge, func(emit func([]telemetry.Label, float64)) {
			if r := s.replica(); r != nil {
				st := r.Status()
				emit(nil, float64(st.PrimaryPosition-st.Position))
			}
		})
	reg.Collect(SeriesFollowerLag, "Per-follower replication lag in records, from the primary's view.",
		telemetry.KindGauge, func(emit func([]telemetry.Label, float64)) {
			wal := s.WAL
			if wal == nil {
				return
			}
			pos := wal.Position()
			s.replMu.Lock()
			defer s.replMu.Unlock()
			for f := range s.followers {
				lag := float64(0)
				if acked := f.acked.Load(); pos > acked {
					lag = float64(pos - acked)
				}
				emit([]telemetry.Label{{Key: "follower", Value: f.addr}}, lag)
			}
		})

	s.Metrics = m
	return m
}

// roleName names the daemon's current role for the mkse_role series and
// /healthz.
func (s *CloudService) roleName() string {
	switch {
	case s.isDemoted():
		return "fenced"
	case s.replica() != nil:
		return "follower"
	case s.WAL != nil:
		return "primary"
	default:
		return "standalone"
	}
}

// Health reports the daemon's readiness for /healthz. A primary (or
// standalone) daemon is ready once serving; a follower is ready only while
// its replication stream is up and within maxLag records of the primary
// (<= 0 means DefaultMaxReplicaLag); a fenced ex-primary is never ready —
// it rejects writes and its reads may be arbitrarily stale.
func (s *CloudService) Health(maxLag uint64) telemetry.Health {
	if maxLag == 0 {
		maxLag = DefaultMaxReplicaLag
	}
	h := telemetry.Health{Ready: true, Role: s.roleName()}
	if s.WAL != nil {
		h.Term = s.WAL.Term()
	}
	switch h.Role {
	case "fenced":
		h.Ready = false
		h.Detail = "fenced after a failover; awaiting reconfigure"
	case "follower":
		r := s.replica()
		if r == nil {
			break // role changed between calls; report what we see now
		}
		st := r.Status()
		h.Lag = st.PrimaryPosition - st.Position
		switch {
		case !st.Connected:
			h.Ready = false
			h.Detail = "replication stream down"
			if st.LastError != nil {
				h.Detail = "replication stream down: " + st.LastError.Error()
			}
		case h.Lag > maxLag:
			h.Ready = false
			h.Detail = "replication lag over budget"
		}
	}
	return h
}

// StatsJSON renders a Stats reply keyed by the Prometheus series names
// above — the `mkse-client stats -json` payload, machine-parseable with the
// same vocabulary a /metrics scrape uses. Series that do not apply to the
// daemon's configuration (no cache, no WAL, not a replica) are omitted,
// mirroring their absence from that daemon's exposition.
func StatsJSON(st *protocol.StatsResponse) map[string]any {
	out := map[string]any{
		SeriesDocuments: st.NumDocuments,
		SeriesShards:    st.NumShards,
		SeriesEpoch:     st.Epoch,
	}
	if st.Durable || st.Replica {
		out[SeriesWALPosition] = st.WALPosition
		out[SeriesTerm] = st.Term
	}
	if st.Replica {
		connected := 0
		if st.ReplicaConnected {
			connected = 1
		}
		out[SeriesReplicaConnected] = connected
		lag := uint64(0)
		if st.PrimaryPosition > st.WALPosition {
			lag = st.PrimaryPosition - st.WALPosition
		}
		out[SeriesReplicaLag] = lag
	}
	if st.Cache.Enabled {
		out[SeriesQCacheHits] = st.Cache.Hits
		out[SeriesQCacheMisses] = st.Cache.Misses
		out[SeriesQCacheEvictions] = st.Cache.Evictions
		out[SeriesQCacheInvalid] = st.Cache.Invalidations
		out[SeriesQCacheEntries] = st.Cache.Entries
		out[SeriesQCacheBytes] = st.Cache.Bytes
		out[SeriesQCacheMaxBytes] = st.Cache.MaxBytes
	}
	return out
}
