package service

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"

	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/durable"
	"mkse/internal/protocol"
	"mkse/internal/rank"
	"mkse/internal/store"
)

// deployment spins up an owner daemon and a cloud daemon on loopback TCP
// with a small indexed corpus.
type deployment struct {
	owner     *core.Owner
	server    *core.Server
	ownerAddr string
	cloudAddr string
	docs      []*corpus.Document
}

var (
	deployOnce sync.Once
	deployVal  *deployment
	deployErr  error
)

// sharedDeployment builds one deployment for the whole test package; tests
// that mutate state use distinct user IDs and documents.
func sharedDeployment(t *testing.T) *deployment {
	deployOnce.Do(func() {
		deployVal, deployErr = newDeployment()
	})
	if deployErr != nil {
		t.Fatal(deployErr)
	}
	return deployVal
}

func newDeployment() (*deployment, error) {
	p := core.DefaultParams().WithLevels(rank.Levels{1, 5, 10})
	p.Bins = 64
	owner, err := core.NewOwner(p, 42)
	if err != nil {
		return nil, err
	}
	server, err := core.NewServer(p)
	if err != nil {
		return nil, err
	}

	dict := corpus.Dictionary(300)
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: 40, KeywordsPerDoc: 12, Dictionary: dict,
		MaxTermFreq: 15, ContentWords: 20, Seed: 7,
	})
	if err != nil {
		return nil, err
	}
	var items []UploadItem
	for _, d := range docs {
		si, enc, err := owner.Prepare(d)
		if err != nil {
			return nil, err
		}
		items = append(items, UploadItem{Index: si, Doc: enc})
	}

	ownerL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	cloudL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = (&OwnerService{Owner: owner}).Serve(ownerL) }()
	go func() { _ = (&CloudService{Server: server}).Serve(cloudL) }()

	if err := UploadAll(cloudL.Addr().String(), items); err != nil {
		return nil, err
	}
	return &deployment{
		owner:     owner,
		server:    server,
		ownerAddr: ownerL.Addr().String(),
		cloudAddr: cloudL.Addr().String(),
		docs:      docs,
	}, nil
}

func TestFullProtocolOverTCP(t *testing.T) {
	d := sharedDeployment(t)
	client, err := Dial("tcp-alice", d.ownerAddr, d.cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	target := d.docs[3]
	words := target.Keywords()[:2]
	matches, err := client.Search(words, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.DocID == target.ID {
			found = true
			if m.Rank < 1 || m.Rank > 3 {
				t.Errorf("rank %d outside [1,3]", m.Rank)
			}
		}
	}
	if !found {
		t.Fatalf("target %s not among %d matches", target.ID, len(matches))
	}

	pt, err := client.Retrieve(target.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, target.Content) {
		t.Error("retrieved plaintext differs from original document")
	}
}

func TestSearchTopKOverTCP(t *testing.T) {
	d := sharedDeployment(t)
	client, err := Dial("tcp-bob", d.ownerAddr, d.cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	words := d.docs[0].Keywords()[:1]
	all, err := client.Search(words, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 1 {
		t.Fatal("no matches at all")
	}
	one, err := client.Search(words, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Errorf("topK=1 returned %d matches", len(one))
	}
}

func TestTrapdoorCaching(t *testing.T) {
	d := sharedDeployment(t)
	client, err := Dial("tcp-carol", d.ownerAddr, d.cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	words := d.docs[5].Keywords()[:2]
	if err := client.EnsureTrapdoors(words); err != nil {
		t.Fatal(err)
	}
	sigsBefore := client.User().Costs.Snapshot().Signatures
	// Second call should be served from cache: no new signature issued.
	if err := client.EnsureTrapdoors(words); err != nil {
		t.Fatal(err)
	}
	if sigsAfter := client.User().Costs.Snapshot().Signatures; sigsAfter != sigsBefore {
		t.Errorf("trapdoor request repeated despite cached keys (%d -> %d signatures)", sigsBefore, sigsAfter)
	}
}

func TestDuplicateEnrollmentRejected(t *testing.T) {
	d := sharedDeployment(t)
	c1, err := Dial("tcp-dup", d.ownerAddr, d.cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := Dial("tcp-dup", d.ownerAddr, d.cloudAddr); err == nil {
		t.Error("second enrollment under the same user ID accepted")
	}
}

// A request signed by the wrong key must be rejected by the owner daemon
// (non-impersonation over the real wire).
func TestForgedTrapdoorRequestRejected(t *testing.T) {
	d := sharedDeployment(t)
	// Enroll a legitimate user.
	victim, err := Dial("tcp-victim", d.ownerAddr, d.cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()

	// Mallory connects raw and replays a request under the victim's ID with
	// her own signature.
	malloryKey, err := core.NewSigningKey(1024)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", d.ownerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := protocol.NewConn(conn)
	binIDs := []int{1, 2}
	sig, err := malloryKey.Sign(protocol.SignableTrapdoor("tcp-victim", binIDs))
	if err != nil {
		t.Fatal(err)
	}
	_, err = pc.Roundtrip(&protocol.Message{TrapdoorReq: &protocol.TrapdoorRequest{
		UserID: "tcp-victim",
		BinIDs: binIDs,
		Sig:    sig,
	}})
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Errorf("forged request not rejected: %v", err)
	}
}

func TestUnenrolledUserRejected(t *testing.T) {
	d := sharedDeployment(t)
	key, err := core.NewSigningKey(1024)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", d.ownerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := protocol.NewConn(conn)
	sig, err := key.Sign(protocol.SignableTrapdoor("tcp-ghost", []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Roundtrip(&protocol.Message{TrapdoorReq: &protocol.TrapdoorRequest{
		UserID: "tcp-ghost", BinIDs: []int{0}, Sig: sig,
	}}); err == nil {
		t.Error("unenrolled user served")
	}
}

func TestFetchUnknownDocumentOverTCP(t *testing.T) {
	d := sharedDeployment(t)
	client, err := Dial("tcp-erin", d.ownerAddr, d.cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Retrieve("no-such-doc"); err == nil {
		t.Error("unknown document retrieved")
	}
}

func TestMalformedQueryRejectedByCloud(t *testing.T) {
	d := sharedDeployment(t)
	conn, err := net.Dial("tcp", d.cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := protocol.NewConn(conn)
	if _, err := pc.Roundtrip(&protocol.Message{SearchReq: &protocol.SearchRequest{
		Query: []byte{1, 2, 3}, // not a valid vector encoding
	}}); err == nil {
		t.Error("malformed query accepted")
	}
	// Wrong-length (but well-formed) query must also be rejected.
	conn2, err := net.Dial("tcp", d.cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	pc2 := protocol.NewConn(conn2)
	if _, err := pc2.Roundtrip(&protocol.Message{SearchReq: &protocol.SearchRequest{
		Query: []byte{0, 0, 0, 8, 0xFF}, // valid 8-bit vector, wrong R
	}}); err == nil {
		t.Error("wrong-size query accepted")
	}
}

func TestUnsupportedRequestsAnswered(t *testing.T) {
	d := sharedDeployment(t)
	// Cloud request sent to the owner daemon.
	conn, err := net.Dial("tcp", d.ownerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := protocol.NewConn(conn)
	if _, err := pc.Roundtrip(&protocol.Message{FetchReq: &protocol.FetchRequest{DocID: "x"}}); err == nil {
		t.Error("owner daemon served a cloud request")
	}
	// Owner request sent to the cloud daemon.
	conn2, err := net.Dial("tcp", d.cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	pc2 := protocol.NewConn(conn2)
	if _, err := pc2.Roundtrip(&protocol.Message{EnrollReq: &protocol.EnrollRequest{UserID: "x"}}); err == nil {
		t.Error("cloud daemon served an owner request")
	}
}

// Vector-mode trapdoors over the wire: the client receives precomputed
// vectors, spends no hash operations, and searches identically.
func TestVectorModeOverTCP(t *testing.T) {
	d := sharedDeployment(t)
	// Register the corpus keywords as the dictionary.
	dict := make([]string, 0, 256)
	seen := map[string]bool{}
	for _, doc := range d.docs {
		for w := range doc.TermFreqs {
			if !seen[w] {
				seen[w] = true
				dict = append(dict, w)
			}
		}
	}
	d.owner.RegisterDictionary(dict)

	client, err := Dial("tcp-vector", d.ownerAddr, d.cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.VectorMode = true

	target := d.docs[7]
	words := target.Keywords()[:2]
	matches, err := client.Search(words, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.DocID == target.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("vector-mode search missed the target among %d matches", len(matches))
	}
	if hashes := client.User().Costs.Snapshot().HashOps; hashes != 0 {
		t.Errorf("vector-mode client spent %d hash ops, want 0", hashes)
	}
}

// Key rotation over the wire: after the owner rotates and re-uploads, a
// client with cached trapdoors detects the new epoch on its next exchange,
// refreshes its decoys, and keeps working.
func TestEpochRotationOverTCP(t *testing.T) {
	// Private deployment: rotation invalidates every other test's trapdoors.
	dep, err := newDeployment()
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial("tcp-rotate", dep.ownerAddr, dep.cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	first := dep.docs[1]
	if _, err := client.Search(first.Keywords()[:1], 0); err != nil {
		t.Fatal(err)
	}

	// Rotate and re-upload everything.
	if err := dep.owner.RotateBinKeys(); err != nil {
		t.Fatal(err)
	}
	var items []UploadItem
	for _, doc := range dep.docs {
		si, enc, err := dep.owner.Prepare(doc)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, UploadItem{Index: si, Doc: enc})
	}
	if err := UploadAll(dep.cloudAddr, items); err != nil {
		t.Fatal(err)
	}

	// Search for different keywords (forcing a trapdoor exchange that
	// reveals the rotation) and verify matches against the re-built index.
	second := dep.docs[2]
	words := second.Keywords()[:2]
	matches, err := client.Search(words, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.DocID == second.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-rotation search missed the target among %d matches", len(matches))
	}
	if client.User().KeyEpoch() != dep.owner.Epoch() {
		t.Errorf("client epoch %d, owner epoch %d", client.User().KeyEpoch(), dep.owner.Epoch())
	}
}

// Cloud restart: snapshot the server, bring up a fresh daemon from the
// snapshot on a new port, and verify an existing user's searches and
// retrievals work against it without any re-upload.
func TestCloudRestartFromSnapshot(t *testing.T) {
	d := sharedDeployment(t)
	var buf bytes.Buffer
	if err := store.Save(&buf, d.server); err != nil {
		t.Fatal(err)
	}
	restored, err := store.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = (&CloudService{Server: restored}).Serve(l) }()

	client, err := Dial("tcp-restart", d.ownerAddr, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	target := d.docs[9]
	matches, err := client.Search(target.Keywords()[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.DocID == target.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("restored daemon missed the target among %d matches", len(matches))
	}
	pt, err := client.Retrieve(target.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, target.Content) {
		t.Error("retrieval from restored daemon returned wrong plaintext")
	}
}

// Concurrent clients must not corrupt server state or each other.
func TestConcurrentClients(t *testing.T) {
	d := sharedDeployment(t)
	const n = 4
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, err := Dial("tcp-conc-"+string(rune('a'+i)), d.ownerAddr, d.cloudAddr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			doc := d.docs[i]
			if _, err := client.Search(doc.Keywords()[:2], 0); err != nil {
				errs <- err
				return
			}
			pt, err := client.Retrieve(doc.ID)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(pt, doc.Content) {
				errs <- bytes.ErrTooLarge // sentinel; message unimportant
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// SearchBatch over the wire must agree query-by-query with single Search
// calls, in one round trip.
func TestSearchBatchOverTCP(t *testing.T) {
	d := sharedDeployment(t)
	client, err := Dial("tcp-batch", d.ownerAddr, d.cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	queries := [][]string{
		d.docs[0].Keywords()[:2],
		d.docs[1].Keywords()[:1],
		d.docs[2].Keywords()[:2],
	}
	results, err := client.SearchBatch(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("%d result sets for %d queries", len(results), len(queries))
	}
	for qi, words := range queries {
		if len(results[qi]) == 0 || len(results[qi]) > 5 {
			t.Errorf("query %d returned %d matches, want 1..5", qi, len(results[qi]))
		}
		// The batch result must contain the query's source document (query
		// randomization means exact equality with a fresh Search is not
		// expected, but genuine matches never disappear).
		found := false
		for _, m := range results[qi] {
			if m.DocID == d.docs[qi].ID {
				found = true
			}
		}
		if !found && len(words) > 0 {
			// The source doc can be pushed out by τ; accept only if τ was hit.
			if len(results[qi]) < 5 {
				t.Errorf("query %d (%v) missing its source document", qi, words)
			}
		}
	}

	if res, err := client.SearchBatch(nil, 5); err != nil || res != nil {
		t.Errorf("empty batch: %v, %v", res, err)
	}
}

// A malformed query inside a batch must fail the whole request cleanly.
func TestMalformedBatchQueryRejectedByCloud(t *testing.T) {
	d := sharedDeployment(t)
	conn, err := net.Dial("tcp", d.cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := protocol.NewConn(conn)
	if _, err := pc.Roundtrip(&protocol.Message{SearchBatchReq: &protocol.SearchBatchRequest{
		Queries: [][]byte{{1, 2, 3}},
	}}); err == nil {
		t.Error("malformed batch query accepted")
	}
}

// Deletion over the wire: the document disappears from search and fetch,
// and deleting it again surfaces the server's not-found error. Runs against
// a private deployment so the shared corpus stays intact.
func TestDeleteOverTCP(t *testing.T) {
	d, err := newDeployment()
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial("delete-tester", d.ownerAddr, d.cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	target := d.docs[3]
	words := target.Keywords()[:2]
	found := func() bool {
		matches, err := client.Search(words, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			if m.DocID == target.ID {
				return true
			}
		}
		return false
	}
	if !found() {
		t.Fatalf("document %s not searchable before deletion", target.ID)
	}
	if err := client.Delete(target.ID); err != nil {
		t.Fatal(err)
	}
	if found() {
		t.Fatalf("document %s still searchable after deletion", target.ID)
	}
	if _, err := client.Retrieve(target.ID); err == nil {
		t.Fatal("Retrieve of deleted document succeeded")
	}
	if err := client.Delete(target.ID); err == nil || !strings.Contains(err.Error(), "no such document") {
		t.Fatalf("second delete = %v, want no-such-document error", err)
	}
	if got, want := d.server.NumDocuments(), len(d.docs)-1; got != want {
		t.Fatalf("server holds %d documents, want %d", got, want)
	}

	// The owner-side bulk retraction removes the rest.
	rest := []string{d.docs[0].ID, d.docs[1].ID}
	if err := DeleteAll(d.cloudAddr, rest); err != nil {
		t.Fatal(err)
	}
	if got, want := d.server.NumDocuments(), len(d.docs)-3; got != want {
		t.Fatalf("after DeleteAll: %d documents, want %d", got, want)
	}
}

// A cloud daemon backed by the durable engine survives a kill: uploads and
// deletions that went through the write-ahead log are reconstructed on
// reopen, and a client of the restarted daemon sees identical results.
func TestDurableCloudRecoveryOverTCP(t *testing.T) {
	p := core.DefaultParams().WithLevels(rank.Levels{1, 5, 10})
	p.Bins = 64
	owner, err := core.NewOwner(p, 99)
	if err != nil {
		t.Fatal(err)
	}
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: 25, KeywordsPerDoc: 10, Dictionary: corpus.Dictionary(200),
		MaxTermFreq: 15, ContentWords: 12, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	var items []UploadItem
	for _, d := range docs {
		si, enc, err := owner.Prepare(d)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, UploadItem{Index: si, Doc: enc})
	}

	ownerL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ownerL.Close()
	go func() { _ = (&OwnerService{Owner: owner}).Serve(ownerL) }()

	dir := t.TempDir()
	eng, err := durable.Open(dir, p, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	cloudL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = (&CloudService{Server: eng.Server(), Store: eng}).Serve(cloudL) }()

	if err := UploadAll(cloudL.Addr().String(), items); err != nil {
		t.Fatal(err)
	}
	if err := DeleteAll(cloudL.Addr().String(), []string{docs[0].ID, docs[7].ID}); err != nil {
		t.Fatal(err)
	}

	words := docs[3].Keywords()[:2]
	c1, err := Dial("before-crash", ownerL.Addr().String(), cloudL.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	before, err := c1.Search(words, 0)
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// Kill the daemon: no clean close, no final checkpoint.
	cloudL.Close()
	if err := eng.Sync(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()

	eng2, err := durable.Open(dir, p, durable.Options{})
	if err != nil {
		t.Fatalf("recovering engine: %v", err)
	}
	defer eng2.Close()
	if got := eng2.Stats().ReplayedOps; got != len(items)+2 {
		t.Fatalf("replayed %d ops, want %d", got, len(items)+2)
	}
	cloudL2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloudL2.Close()
	go func() { _ = (&CloudService{Server: eng2.Server(), Store: eng2}).Serve(cloudL2) }()

	c2, err := Dial("after-crash", ownerL.Addr().String(), cloudL2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	after, err := c2.Search(words, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("recovered daemon returned %d matches, want %d", len(after), len(before))
	}
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("match %d = %+v, want %+v", i, after[i], before[i])
		}
	}
	for _, id := range []string{docs[0].ID, docs[7].ID} {
		if _, err := c2.Retrieve(id); err == nil {
			t.Fatalf("deleted document %s retrievable after recovery", id)
		}
	}
	// The recovered daemon accepts new durable mutations.
	if err := DeleteAll(cloudL2.Addr().String(), []string{docs[3].ID}); err != nil {
		t.Fatal(err)
	}
	if got, want := eng2.Server().NumDocuments(), len(docs)-3; got != want {
		t.Fatalf("recovered daemon holds %d documents, want %d", got, want)
	}
}
