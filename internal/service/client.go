package service

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"net"
	"strconv"
	"sync"
	"time"

	"mkse/internal/bitindex"
	"mkse/internal/core"
	"mkse/internal/protocol"
	"mkse/internal/trace"
)

// DefaultMaxReplicaLag is how many log records a read replica may trail the
// primary before the client routes its reads back to the primary.
const DefaultMaxReplicaLag = 1024

// DialTimeout bounds every owner/cloud connection attempt this package
// makes (Dial, the raw owner-side helpers, replication streams, and the
// failover verbs), so a black-holed address fails fast instead of hanging
// for the kernel's connect timeout. Override before dialing.
var DialTimeout = 5 * time.Second

// replicaDialTimeout bounds connection attempts to read replicas. It is
// deliberately short — the dial happens on the read path, and the primary
// is always there to fall back to.
const replicaDialTimeout = 500 * time.Millisecond

// replicaMaxBench caps the exponential back-off a repeatedly failing
// replica is benched for between redial attempts.
const replicaMaxBench = 30 * time.Second

// Client drives the user's side of the full protocol against a remote owner
// daemon and a remote cloud daemon. It wraps a core.User created during
// Enroll. A Client serializes its protocol exchanges and is safe for
// concurrent use.
//
// A client may additionally be given a set of read replicas
// (AddReadReplicas): Search and SearchBatch then rotate across the healthy,
// caught-up followers and fall back to the primary when a replica is down,
// lagging past MaxReplicaLag, or fails mid-request. Mutations (Delete) and
// retrievals always go to the primary.
type Client struct {
	UserID string

	// VectorMode requests precomputed per-keyword trapdoor vectors instead
	// of bin keys (Section 4.2's alternative delivery; requires the owner
	// to have registered a dictionary). Set before the first search.
	VectorMode bool

	// MaxReplicaLag is the most records a replica may trail the primary and
	// still serve this client's reads (0 = DefaultMaxReplicaLag). Set
	// before the first search.
	MaxReplicaLag uint64

	// ReplicaProbeEvery is how often a replica's position is re-checked
	// with a status request before trusting it with reads (0 = 1s). Set
	// before the first search.
	ReplicaProbeEvery time.Duration

	// PartitionTimeout bounds each partition's share of a scatter-gather
	// read on a cluster client (0 = DefaultPartitionTimeout). Set before
	// the first request.
	PartitionTimeout time.Duration

	// Tracer, when set, samples this client's searches into distributed
	// traces: the coordinator records the root span, scatter/partition/rpc
	// children, and grafts in the spans each partition server echoes on its
	// response — the whole cross-daemon tree assembles client-side. Use
	// TraceSearch to force-sample one search regardless of the sample rate.
	Tracer *trace.Tracer

	mu        sync.Mutex
	ownerConn *protocol.Conn
	cloudConn *protocol.Conn
	ownerRaw  net.Conn
	cloudRaw  net.Conn
	cloudAddr string
	user      *core.User

	replicas []*readReplica
	rrNext   int
	reads    map[string]uint64

	// clu is non-nil on a DialCluster client: the partition topology and
	// one connection set per partition. When set, reads scatter-gather
	// across every partition and mutations route by document ID.
	clu *clusterState
}

// readReplica is one follower the client may fan read traffic to.
type readReplica struct {
	addr      string
	conn      *protocol.Conn
	raw       net.Conn
	downUntil time.Time // failed recently; no redial before this
	checkedAt time.Time // last successful status probe
	lagging   bool      // last probe showed lag beyond the budget
	fails     int       // consecutive failures, drives the bench back-off
}

// Dial connects to the owner and cloud daemons and enrolls the user with the
// data owner, receiving the scheme parameters, the owner's public key and
// the random-keyword trapdoors.
func Dial(userID, ownerAddr, cloudAddr string) (*Client, error) {
	oc, err := net.DialTimeout("tcp", ownerAddr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("service: dialing owner: %w", err)
	}
	cc, err := net.DialTimeout("tcp", cloudAddr, DialTimeout)
	if err != nil {
		oc.Close()
		return nil, fmt.Errorf("service: dialing cloud: %w", err)
	}
	c := &Client{
		UserID:    userID,
		ownerConn: protocol.NewConn(oc),
		cloudConn: protocol.NewConn(cc),
		ownerRaw:  oc,
		cloudRaw:  cc,
		cloudAddr: cloudAddr,
	}
	if err := c.enroll(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// enroll bootstraps the user. The signature key pair must exist before the
// first signed request, but the core.User needs the scheme parameters the
// enrollment response delivers — so: generate the key, enroll its public
// half, then build the User around the key and the returned parameters.
func (c *Client) enroll() error {
	signKey, err := core.NewSigningKey(core.DefaultParams().RSABits)
	if err != nil {
		return fmt.Errorf("service: generating signature key: %w", err)
	}
	resp, err := c.ownerConn.Roundtrip(&protocol.Message{EnrollReq: &protocol.EnrollRequest{
		UserID:  c.UserID,
		UserPub: protocol.FromPublicKey(signKey.Public()),
	}})
	if err != nil {
		return fmt.Errorf("service: enrolling: %w", err)
	}
	if resp.EnrollResp == nil {
		return fmt.Errorf("service: enroll response missing")
	}
	params, err := resp.EnrollResp.Params.ToParams()
	if err != nil {
		return fmt.Errorf("service: invalid parameters from owner: %w", err)
	}
	ownerPub, err := resp.EnrollResp.OwnerPub.ToPublicKey()
	if err != nil {
		return fmt.Errorf("service: invalid owner key: %w", err)
	}
	rts := make([]*bitindex.Vector, len(resp.EnrollResp.RandomTrapdoors))
	for i, raw := range resp.EnrollResp.RandomTrapdoors {
		v, err := unmarshalVector(raw)
		if err != nil {
			return fmt.Errorf("service: invalid random trapdoor %d: %w", i, err)
		}
		rts[i] = v
	}
	c.user, err = core.NewUserWithKey(c.UserID, params, ownerPub, rts, signKey)
	if err != nil {
		return fmt.Errorf("service: building user state: %w", err)
	}
	return nil
}

// User exposes the underlying core.User (for cost inspection in experiments).
func (c *Client) User() *core.User { return c.user }

// Close tears down the owner, cloud and replica connections.
func (c *Client) Close() error {
	var first error
	if c.ownerRaw != nil {
		if err := c.ownerRaw.Close(); err != nil {
			first = err
		}
	}
	if c.cloudRaw != nil {
		if err := c.cloudRaw.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.replicas {
		if r.raw != nil {
			r.raw.Close()
			r.raw, r.conn = nil, nil
		}
	}
	if c.clu != nil {
		for _, p := range c.clu.parts {
			if p.raw != nil {
				p.raw.Close()
				p.raw, p.conn = nil, nil
			}
			if p.rraw != nil {
				p.rraw.Close()
				p.rraw, p.rconn = nil, nil
			}
		}
	}
	return first
}

// AddReadReplicas registers follower addresses to fan Search/SearchBatch
// traffic across. Connections are dialed lazily and re-dialed after
// failures; an unreachable or lagging replica routes reads back to the
// primary, with failing replicas benched on an exponential back-off so a
// dead address costs at most an occasional short dial timeout, not a stall
// per search.
func (c *Client) AddReadReplicas(addrs ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range addrs {
		c.replicas = append(c.replicas, &readReplica{addr: a})
	}
}

// ReadDistribution reports how many read requests this client has sent to
// each server, keyed by replica address, plus "primary" for the primary.
func (c *Client) ReadDistribution() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.reads))
	for k, v := range c.reads {
		out[k] = v
	}
	return out
}

// countReadLocked tallies one read against a server for ReadDistribution.
func (c *Client) countReadLocked(key string) {
	if c.reads == nil {
		c.reads = make(map[string]uint64)
	}
	c.reads[key]++
}

// readRoundtrip sends a read request to the next healthy, caught-up
// replica, falling back to the primary when none qualifies or the chosen
// replica fails in transit. A *protocol.RemoteError is returned as-is
// without failover: the server understood the request and rejected it, and
// every server would. Caller holds c.mu.
func (c *Client) readRoundtrip(m *protocol.Message) (*protocol.Message, error) {
	if r := c.pickReplicaLocked(); r != nil {
		resp, err := r.conn.Roundtrip(m)
		var remote *protocol.RemoteError
		if err == nil || errors.As(err, &remote) {
			c.countReadLocked(r.addr)
			return resp, err
		}
		c.dropReplicaLocked(r)
	}
	resp, err := c.primaryRoundtripLocked(m)
	if err == nil {
		c.countReadLocked("primary")
	}
	return resp, err
}

// primaryRoundtripLocked sends a request on the primary connection,
// following the topology when the primary is gone: a transport failure, or
// a read-only rejection from a daemon that was fenced out of the primary
// role, triggers one probe of the replica set for the promoted survivor and
// one retry against it. Ordinary remote rejections pass through untouched —
// any server would reject those. Caller holds c.mu.
func (c *Client) primaryRoundtripLocked(m *protocol.Message) (*protocol.Message, error) {
	resp, err := c.cloudConn.Roundtrip(m)
	if err == nil {
		return resp, nil
	}
	var remote *protocol.RemoteError
	if errors.As(err, &remote) && remote.Code != protocol.CodeReadOnly {
		return nil, err
	}
	if ferr := c.followPrimaryLocked(); ferr != nil {
		return nil, err // the original failure describes the outage best
	}
	return c.cloudConn.Roundtrip(m)
}

// followPrimaryLocked re-discovers the primary after losing it: it probes
// every known replica address for a durable daemon that no longer calls
// itself a replica — the promoted survivor — preferring the highest
// promotion term, and repoints the primary connection there. Caller holds
// c.mu.
func (c *Client) followPrimaryLocked() error {
	var bestAddr string
	var bestTerm uint64
	found := false
	for _, r := range c.replicas {
		if r.addr == c.cloudAddr {
			continue
		}
		st, err := FetchReplicaStatus(r.addr)
		if err != nil || !st.Durable || st.Replica {
			continue
		}
		if !found || st.Term > bestTerm {
			found, bestAddr, bestTerm = true, r.addr, st.Term
		}
	}
	if !found {
		return errors.New("service: no promoted primary found among the replica set")
	}
	raw, err := net.DialTimeout("tcp", bestAddr, DialTimeout)
	if err != nil {
		return err
	}
	if c.cloudRaw != nil {
		c.cloudRaw.Close()
	}
	c.cloudRaw = raw
	c.cloudConn = protocol.NewConn(raw)
	c.cloudAddr = bestAddr
	return nil
}

// pickReplicaLocked rotates over the replica set and returns the first one
// fit to serve a read, or nil to use the primary. Caller holds c.mu.
func (c *Client) pickReplicaLocked() *readReplica {
	n := len(c.replicas)
	for i := 0; i < n; i++ {
		r := c.replicas[(c.rrNext+i)%n]
		if c.probeLocked(r) {
			c.rrNext = (c.rrNext + i + 1) % n
			return r
		}
	}
	return nil
}

// probeLocked reports whether a replica is connected and caught up,
// dialing and status-checking it as needed. Caller holds c.mu.
func (c *Client) probeLocked(r *readReplica) bool {
	now := time.Now()
	if now.Before(r.downUntil) {
		return false
	}
	if r.conn == nil {
		raw, err := net.DialTimeout("tcp", r.addr, replicaDialTimeout)
		if err != nil {
			c.dropReplicaLocked(r)
			return false
		}
		r.raw = raw
		r.conn = protocol.NewConn(raw)
		r.checkedAt = time.Time{} // force a status probe on a fresh connection
	}
	if now.Sub(r.checkedAt) >= c.probeEvery() {
		resp, err := r.conn.Roundtrip(&protocol.Message{ReplicaStatusReq: &protocol.ReplicaStatusRequest{}})
		if err != nil || resp.ReplicaStatusResp == nil {
			c.dropReplicaLocked(r)
			return false
		}
		st := resp.ReplicaStatusResp
		r.checkedAt = now
		r.fails = 0
		r.lagging = st.PrimaryPosition-st.Position > c.maxLag() || (st.Replica && !st.Connected)
	}
	return !r.lagging
}

// dropReplicaLocked closes a failed replica connection and benches the
// replica before the next redial, doubling the bench on every consecutive
// failure (up to replicaMaxBench) so a dead address is retried rarely.
// Caller holds c.mu.
func (c *Client) dropReplicaLocked(r *readReplica) {
	if r.raw != nil {
		r.raw.Close()
	}
	r.raw, r.conn = nil, nil
	r.lagging = false
	bench := c.probeEvery() << r.fails
	if bench > replicaMaxBench || bench <= 0 {
		bench = replicaMaxBench
	}
	if r.fails < 30 {
		r.fails++
	}
	r.downUntil = time.Now().Add(bench)
}

func (c *Client) maxLag() uint64 {
	if c.MaxReplicaLag > 0 {
		return c.MaxReplicaLag
	}
	return DefaultMaxReplicaLag
}

func (c *Client) probeEvery() time.Duration {
	if c.ReplicaProbeEvery > 0 {
		return c.ReplicaProbeEvery
	}
	return time.Second
}

// EnsureTrapdoors fetches trapdoor material for any of the given keywords
// the user does not already cover, signing the request (step 1 of Figure
// 1). It is a no-op when everything is cached — the paper's point that
// trapdoors are reusable across queries. If the response reveals a key
// rotation (new epoch, Section 4.3), all cached material is discarded, the
// decoy trapdoors are refreshed, and the new-epoch material from the same
// response is installed.
func (c *Client) EnsureTrapdoors(words []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var missing []string
	for _, w := range words {
		if !c.user.HasTrapdoorFor(w) {
			missing = append(missing, w)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	binIDs := c.user.BinIDs(missing)
	sig, err := c.user.Sign(protocol.SignableTrapdoor(c.UserID, binIDs))
	if err != nil {
		return err
	}
	resp, err := c.ownerConn.Roundtrip(&protocol.Message{TrapdoorReq: &protocol.TrapdoorRequest{
		UserID:      c.UserID,
		BinIDs:      binIDs,
		WantVectors: c.VectorMode,
		Sig:         sig,
	}})
	if err != nil {
		return fmt.Errorf("service: trapdoor request: %w", err)
	}
	td := resp.TrapdoorResp
	if td == nil {
		return fmt.Errorf("service: trapdoor response missing")
	}
	if td.Epoch != c.user.KeyEpoch() {
		expired, err := c.user.ObserveEpoch(td.Epoch)
		if err != nil {
			return err
		}
		if expired {
			if err := c.refreshEnrollmentLocked(); err != nil {
				return err
			}
		}
	}
	if c.VectorMode {
		vs := make(map[string]*bitindex.Vector, len(td.Vectors))
		for w, raw := range td.Vectors {
			v, err := unmarshalVector(raw)
			if err != nil {
				return fmt.Errorf("service: trapdoor vector for %q: %w", w, err)
			}
			vs[w] = v
		}
		return c.user.InstallTrapdoorVectors(vs)
	}
	return c.user.InstallTrapdoorKeys(td.BinIDs, td.Keys)
}

// refreshEnrollmentLocked re-fetches the decoy-trapdoor package after a key
// rotation. Caller holds c.mu.
func (c *Client) refreshEnrollmentLocked() error {
	sig, err := c.user.Sign(protocol.SignableRefresh(c.UserID))
	if err != nil {
		return err
	}
	resp, err := c.ownerConn.Roundtrip(&protocol.Message{RefreshReq: &protocol.RefreshRequest{
		UserID: c.UserID,
		Sig:    sig,
	}})
	if err != nil {
		return fmt.Errorf("service: enrollment refresh: %w", err)
	}
	if resp.RefreshResp == nil {
		return fmt.Errorf("service: refresh response missing")
	}
	rts := make([]*bitindex.Vector, len(resp.RefreshResp.RandomTrapdoors))
	for i, raw := range resp.RefreshResp.RandomTrapdoors {
		v, err := unmarshalVector(raw)
		if err != nil {
			return fmt.Errorf("service: refreshed random trapdoor %d: %w", i, err)
		}
		rts[i] = v
	}
	return c.user.RefreshEnrollment(rts)
}

// Match mirrors core.Match for remote results.
type Match struct {
	DocID string
	Rank  int
}

// Search builds a randomized query index for the keywords and submits it to
// the cloud (step 2 of Figure 1), returning up to topK rank-ordered matches.
func (c *Client) Search(words []string, topK int) ([]Match, error) {
	out, _, err := c.search(words, topK, false)
	return out, err
}

// TraceSearch is Search with its trace forced on: the search is sampled
// regardless of the client Tracer's rate, and the assembled span tree —
// coordinator root, per-partition fan-out, and every span the servers
// echoed back — is returned alongside the matches (render it with
// trace.FormatTree). The client must have a Tracer set.
func (c *Client) TraceSearch(words []string, topK int) ([]Match, []trace.Span, error) {
	if c.Tracer == nil {
		return nil, nil, fmt.Errorf("service: TraceSearch requires a client Tracer")
	}
	return c.search(words, topK, true)
}

// search is the one search path: with a Tracer set the request may be
// sampled (always, when forced) under a "client:search" root span, and the
// returned spans are the trace as assembled at the coordinator.
func (c *Client) search(words []string, topK int, force bool) ([]Match, []trace.Span, error) {
	if err := c.EnsureTrapdoors(words); err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx := context.Background()
	var root *trace.ActiveSpan
	if c.Tracer != nil {
		ctx, root = c.Tracer.StartRequest(ctx, "client:search", force)
		root.SetAttr("keywords", strconv.Itoa(len(words)))
		root.SetAttr("topk", strconv.Itoa(topK))
	}
	out, err := c.searchLocked(ctx, words, topK)
	var spans []trace.Span
	if root != nil {
		if err != nil {
			root.SetAttr("error", err.Error())
		}
		root.End()
		spans = root.Spans()
	}
	return out, spans, err
}

// searchLocked runs one search under an (optionally traced) context: the
// cluster scatter-gather, or the single-server round trip with an "rpc"
// span carrying the propagation context and importing the server's echoed
// spans. Caller holds c.mu.
func (c *Client) searchLocked(ctx context.Context, words []string, topK int) ([]Match, error) {
	q, err := c.user.BuildQuery(words)
	if err != nil {
		return nil, err
	}
	if c.clu != nil {
		return c.clusterSearchLocked(ctx, marshalVector(q), topK)
	}
	m := &protocol.Message{SearchReq: &protocol.SearchRequest{
		Query: marshalVector(q),
		TopK:  topK,
	}}
	rctx, sp := trace.Start(ctx, "rpc")
	if sp != nil {
		m.Trace = traceCtxToWire(sp.Context())
	}
	resp, err := c.readRoundtrip(m)
	if sp != nil {
		if err != nil {
			sp.SetAttr("error", err.Error())
		} else {
			trace.Import(rctx, spansFromWire(sp.TraceID(), resp.Spans))
		}
		sp.End()
	}
	if err != nil {
		return nil, fmt.Errorf("service: search: %w", err)
	}
	if resp.SearchResp == nil {
		return nil, fmt.Errorf("service: search response missing")
	}
	out := make([]Match, len(resp.SearchResp.Matches))
	for i, m := range resp.SearchResp.Matches {
		out[i] = Match{DocID: m.DocID, Rank: m.Rank}
	}
	return out, nil
}

// SearchBatch builds one randomized query index per keyword set and submits
// them all in a single round trip; the cloud evaluates the batch in one
// sharded pass. Result i corresponds to queries[i], each truncated to topK.
func (c *Client) SearchBatch(queries [][]string, topK int) ([][]Match, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	if err := c.EnsureTrapdoors(KeywordUnion(queries)); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	wire := make([][]byte, len(queries))
	for i, words := range queries {
		q, err := c.user.BuildQuery(words)
		if err != nil {
			return nil, fmt.Errorf("service: batch query %d: %w", i, err)
		}
		wire[i] = marshalVector(q)
	}
	ctx := context.Background()
	var root *trace.ActiveSpan
	if c.Tracer != nil {
		ctx, root = c.Tracer.StartRequest(ctx, "client:searchbatch", false)
		root.SetAttr("queries", strconv.Itoa(len(queries)))
		root.SetAttr("topk", strconv.Itoa(topK))
	}
	if c.clu != nil {
		out, err := c.clusterSearchBatchLocked(ctx, wire, topK)
		if root != nil {
			if err != nil {
				root.SetAttr("error", err.Error())
			}
			root.End()
		}
		return out, err
	}
	m := &protocol.Message{SearchBatchReq: &protocol.SearchBatchRequest{
		Queries: wire,
		TopK:    topK,
	}}
	rctx, sp := trace.Start(ctx, "rpc")
	if sp != nil {
		m.Trace = traceCtxToWire(sp.Context())
	}
	resp, err := c.readRoundtrip(m)
	if sp != nil {
		if err != nil {
			sp.SetAttr("error", err.Error())
		} else {
			trace.Import(rctx, spansFromWire(sp.TraceID(), resp.Spans))
		}
		sp.End()
	}
	if root != nil {
		if err != nil {
			root.SetAttr("error", err.Error())
		}
		root.End()
	}
	if err != nil {
		return nil, fmt.Errorf("service: batch search: %w", err)
	}
	if resp.SearchBatchResp == nil {
		return nil, fmt.Errorf("service: batch search response missing")
	}
	if got := len(resp.SearchBatchResp.Results); got != len(queries) {
		return nil, fmt.Errorf("service: batch search returned %d result sets for %d queries", got, len(queries))
	}
	out := make([][]Match, len(queries))
	for qi, ms := range resp.SearchBatchResp.Results {
		out[qi] = make([]Match, len(ms))
		for i, m := range ms {
			out[qi][i] = Match{DocID: m.DocID, Rank: m.Rank}
		}
	}
	return out, nil
}

// KeywordUnion deduplicates the keywords of a query batch, so a word shared
// by many queries costs one trapdoor derivation and transfer, not one per
// query.
func KeywordUnion(queries [][]string) []string {
	seen := make(map[string]bool)
	var union []string
	for _, words := range queries {
		for _, w := range words {
			if !seen[w] {
				seen[w] = true
				union = append(union, w)
			}
		}
	}
	return union
}

// Retrieve fetches an encrypted document from the cloud (step 3) and runs
// the blinded decryption protocol with the owner (step 4), returning the
// plaintext.
func (c *Client) Retrieve(docID string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fetch := &protocol.Message{FetchReq: &protocol.FetchRequest{DocID: docID}}
	var resp *protocol.Message
	var err error
	if c.clu != nil {
		resp, _, err = c.readPart(context.Background(), c.clusterOwnerLocked(docID), fetch)
	} else {
		resp, err = c.primaryRoundtripLocked(fetch)
	}
	if err != nil {
		return nil, fmt.Errorf("service: fetch: %w", err)
	}
	if resp.FetchResp == nil {
		return nil, fmt.Errorf("service: fetch response missing")
	}
	doc := &core.EncryptedDocument{
		ID:         resp.FetchResp.DocID,
		Ciphertext: resp.FetchResp.Ciphertext,
		EncKey:     resp.FetchResp.EncKey,
	}
	return c.user.DecryptDocument(doc, func(z *big.Int) (*big.Int, error) {
		zb := z.Bytes()
		sig, err := c.user.Sign(protocol.SignableBlindDecrypt(c.UserID, zb))
		if err != nil {
			return nil, err
		}
		r, err := c.ownerConn.Roundtrip(&protocol.Message{BlindDecryptReq: &protocol.BlindDecryptRequest{
			UserID: c.UserID,
			Z:      zb,
			Sig:    sig,
		}})
		if err != nil {
			return nil, err
		}
		if r.BlindDecryptResp == nil {
			return nil, fmt.Errorf("service: blind-decrypt response missing")
		}
		return new(big.Int).SetBytes(r.BlindDecryptResp.ZBar), nil
	})
}

// Stats fetches the cloud daemon's operational counters — document and
// shard counts, mutation epoch, WAL position and replication lag, and the
// query-result cache counters — in one round trip. It always asks the
// primary, whose answer describes the server this client mutates.
func (c *Client) Stats() (*protocol.StatsResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.clu != nil {
		parts, err := c.clusterStatsLocked()
		if err != nil {
			return nil, err
		}
		return aggregateStats(parts), nil
	}
	resp, err := c.primaryRoundtripLocked(&protocol.Message{StatsReq: &protocol.StatsRequest{}})
	if err != nil {
		return nil, fmt.Errorf("service: stats: %w", err)
	}
	if resp.StatsResp == nil {
		return nil, fmt.Errorf("service: stats response missing")
	}
	return resp.StatsResp, nil
}

// FetchStats asks any cloud daemon (primary or follower) for its
// operational counters without enrolling a user — the operator's one-shot
// introspection path, mirroring UploadAll/DeleteAll's raw dials.
func FetchStats(cloudAddr string) (*protocol.StatsResponse, error) {
	conn, err := net.DialTimeout("tcp", cloudAddr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("service: dialing cloud: %w", err)
	}
	defer conn.Close()
	resp, err := protocol.NewConn(conn).Roundtrip(&protocol.Message{StatsReq: &protocol.StatsRequest{}})
	if err != nil {
		return nil, fmt.Errorf("service: stats: %w", err)
	}
	if resp.StatsResp == nil {
		return nil, fmt.Errorf("service: stats response missing")
	}
	return resp.StatsResp, nil
}

// Delete asks the cloud daemon to remove a document. In the paper's model
// removal is the data owner's act; the client method exists for deployments
// where the owner drives the cloud through the same connection pair.
func (c *Client) Delete(docID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	del := &protocol.Message{DeleteReq: &protocol.DeleteRequest{DocID: docID}}
	var resp *protocol.Message
	var err error
	if c.clu != nil {
		resp, err = c.clusterMutateLocked(docID, del)
	} else {
		resp, err = c.primaryRoundtripLocked(del)
	}
	if err != nil {
		return fmt.Errorf("service: delete: %w", err)
	}
	if resp.DeleteResp == nil {
		return fmt.Errorf("service: delete response missing")
	}
	return nil
}

// DeleteAll removes documents from the cloud daemon by ID — the owner-side
// retraction mirroring UploadAll.
func DeleteAll(cloudAddr string, docIDs []string) error {
	conn, err := net.DialTimeout("tcp", cloudAddr, DialTimeout)
	if err != nil {
		return fmt.Errorf("service: dialing cloud: %w", err)
	}
	defer conn.Close()
	pc := protocol.NewConn(conn)
	for _, id := range docIDs {
		resp, err := pc.Roundtrip(&protocol.Message{DeleteReq: &protocol.DeleteRequest{DocID: id}})
		if err != nil {
			return fmt.Errorf("service: deleting %q: %w", id, err)
		}
		if resp.DeleteResp == nil {
			return fmt.Errorf("service: delete response missing for %q", id)
		}
	}
	return nil
}

// UploadAll pushes prepared documents from the owner to the cloud daemon —
// the owner-side upload of Figure 1's offline stage.
func UploadAll(cloudAddr string, items []UploadItem) error {
	conn, err := net.DialTimeout("tcp", cloudAddr, DialTimeout)
	if err != nil {
		return fmt.Errorf("service: dialing cloud: %w", err)
	}
	defer conn.Close()
	pc := protocol.NewConn(conn)
	for _, it := range items {
		levels := make([][]byte, len(it.Index.Levels))
		for i, l := range it.Index.Levels {
			levels[i] = marshalVector(l)
		}
		resp, err := pc.Roundtrip(&protocol.Message{UploadReq: &protocol.UploadRequest{
			DocID:      it.Index.DocID,
			Levels:     levels,
			Ciphertext: it.Doc.Ciphertext,
			EncKey:     it.Doc.EncKey,
		}})
		if err != nil {
			return fmt.Errorf("service: uploading %q: %w", it.Index.DocID, err)
		}
		if resp.UploadResp == nil {
			return fmt.Errorf("service: upload response missing for %q", it.Index.DocID)
		}
	}
	return nil
}

// UploadItem pairs a search index with its encrypted document.
type UploadItem struct {
	Index *core.SearchIndex
	Doc   *core.EncryptedDocument
}

// FetchReplicaStatus asks any cloud daemon where it stands in the
// replicated log — position, term, role, and connected followers — in one
// raw round trip.
func FetchReplicaStatus(cloudAddr string) (*protocol.ReplicaStatusResponse, error) {
	conn, err := net.DialTimeout("tcp", cloudAddr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("service: dialing cloud: %w", err)
	}
	defer conn.Close()
	resp, err := protocol.NewConn(conn).Roundtrip(&protocol.Message{ReplicaStatusReq: &protocol.ReplicaStatusRequest{}})
	if err != nil {
		return nil, fmt.Errorf("service: replica status: %w", err)
	}
	if resp.ReplicaStatusResp == nil {
		return nil, fmt.Errorf("service: replica status response missing")
	}
	return resp.ReplicaStatusResp, nil
}

// Promote asks the daemon at cloudAddr to become primary at the given
// promotion term (see protocol.PromoteRequest). The term must exceed the
// daemon's current one; retries of the same term are idempotent.
func Promote(cloudAddr string, term uint64) (*protocol.PromoteResponse, error) {
	conn, err := net.DialTimeout("tcp", cloudAddr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("service: dialing cloud: %w", err)
	}
	defer conn.Close()
	resp, err := protocol.NewConn(conn).Roundtrip(&protocol.Message{PromoteReq: &protocol.PromoteRequest{Term: term}})
	if err != nil {
		return nil, fmt.Errorf("service: promote: %w", err)
	}
	if resp.PromoteResp == nil {
		return nil, fmt.Errorf("service: promote response missing")
	}
	return resp.PromoteResp, nil
}

// Reconfigure repoints the daemon at cloudAddr to follow primaryAddr (or
// detaches it into standalone mode when primaryAddr is empty), authenticated
// by the promotion term of the failover that motivated it.
func Reconfigure(cloudAddr, primaryAddr string, term uint64) error {
	conn, err := net.DialTimeout("tcp", cloudAddr, DialTimeout)
	if err != nil {
		return fmt.Errorf("service: dialing cloud: %w", err)
	}
	defer conn.Close()
	resp, err := protocol.NewConn(conn).Roundtrip(&protocol.Message{ReconfigureReq: &protocol.ReconfigureRequest{Primary: primaryAddr, Term: term}})
	if err != nil {
		return fmt.Errorf("service: reconfigure: %w", err)
	}
	if resp.ReconfigureResp == nil {
		return fmt.Errorf("service: reconfigure response missing")
	}
	return nil
}
