// Package service deploys the three MKS roles over TCP: an owner daemon
// (enrollment, trapdoor and blind-decryption endpoints), a cloud daemon
// (upload, search and fetch endpoints), and a client that drives the full
// protocol of Figure 1. The wire format lives in internal/protocol.
package service

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"

	"mkse/internal/bitindex"
	"mkse/internal/protocol"
)

// logf is the package's nil-safe logger helper.
func logf(l *log.Logger, format string, args ...any) {
	if l != nil {
		l.Printf(format, args...)
	}
}

// serveLoop accepts connections and dispatches them to handler until the
// listener closes. A handler that returns nil has taken the connection
// over (replication streams do — they push messages for the connection's
// whole lifetime) and the connection is closed when it returns.
func serveLoop(l net.Listener, logger *log.Logger, handler func(*protocol.Conn, net.Conn, *protocol.Message) *protocol.Message) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			pc := protocol.NewConn(conn)
			for {
				msg, err := pc.Recv()
				if err != nil {
					if err != io.EOF {
						logf(logger, "service: connection error: %v", err)
					}
					return
				}
				resp := handler(pc, conn, msg)
				if resp == nil {
					return
				}
				if err := pc.Send(resp); err != nil {
					logf(logger, "service: send error: %v", err)
					return
				}
			}
		}()
	}
}

// errMsg wraps an error into a protocol reply.
func errMsg(err error) *protocol.Message {
	return &protocol.Message{Error: &protocol.ErrorMsg{Text: err.Error()}}
}

// marshalVector encodes a bit vector for the wire, panicking on the
// impossible (MarshalBinary of a valid vector cannot fail).
func marshalVector(v *bitindex.Vector) []byte {
	b, err := v.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("service: marshaling vector: %v", err))
	}
	return b
}

func unmarshalVector(b []byte) (*bitindex.Vector, error) {
	var v bitindex.Vector
	if err := v.UnmarshalBinary(b); err != nil {
		return nil, err
	}
	return &v, nil
}
