// Package service deploys the three MKS roles over TCP: an owner daemon
// (enrollment, trapdoor and blind-decryption endpoints), a cloud daemon
// (upload, search and fetch endpoints), and a client that drives the full
// protocol of Figure 1. The wire format lives in internal/protocol.
package service

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"mkse/internal/bitindex"
	"mkse/internal/protocol"
)

// logf is the package's nil-safe logger helper for free-form notices.
// Per-request logging goes through structured slog calls with verb,
// duration and remote fields (see CloudService.Serve); logf covers the
// irregular events — fencing, drains, stream lifecycles — where a rendered
// message is the payload.
func logf(l *slog.Logger, format string, args ...any) {
	if l != nil {
		l.Info(fmt.Sprintf(format, args...))
	}
}

// connTracker registers a service's live connections so a graceful shutdown
// can wait for in-flight requests and then force-close the stragglers.
type connTracker struct {
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	gone  chan struct{} // replaced on every add; closed on every remove
}

func (t *connTracker) add(c net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conns == nil {
		t.conns = make(map[net.Conn]struct{})
	}
	t.conns[c] = struct{}{}
}

func (t *connTracker) remove(c net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.conns, c)
	if t.gone != nil {
		close(t.gone)
		t.gone = nil
	}
}

// drain waits up to timeout for every tracked connection to finish, then
// force-closes whatever remains (idle keep-alive clients would otherwise pin
// the window open). Returns the number of connections it had to cut. The
// caller must have stopped accepting first.
func (t *connTracker) drain(timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		t.mu.Lock()
		n := len(t.conns)
		if n == 0 {
			t.mu.Unlock()
			return 0
		}
		if t.gone == nil {
			t.gone = make(chan struct{})
		}
		gone := t.gone
		t.mu.Unlock()

		remain := time.Until(deadline)
		if remain <= 0 {
			break
		}
		timer := time.NewTimer(remain)
		select {
		case <-gone:
			timer.Stop()
		case <-timer.C:
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cut := len(t.conns)
	for c := range t.conns {
		c.Close()
	}
	t.conns = nil
	return cut
}

// serveLoop accepts connections and dispatches them to handler until the
// listener closes. A handler that returns nil has taken the connection
// over (replication streams do — they push messages for the connection's
// whole lifetime) and the connection is closed when it returns.
//
// A non-zero idle timeout arms a read deadline before every request, so a
// stalled or half-open client cannot pin a handler goroutine forever; a
// handler that takes the connection over must clear the deadline itself.
// tracker, when non-nil, registers connections for drain on shutdown.
func serveLoop(l net.Listener, logger *slog.Logger, idle time.Duration, tracker *connTracker, handler func(*protocol.Conn, net.Conn, *protocol.Message) *protocol.Message) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if tracker != nil {
			tracker.add(conn)
		}
		go func() {
			defer conn.Close()
			if tracker != nil {
				defer tracker.remove(conn)
			}
			pc := protocol.NewConn(conn)
			for {
				if idle > 0 {
					conn.SetReadDeadline(time.Now().Add(idle))
				}
				msg, err := pc.Recv()
				if err != nil {
					if err != io.EOF && !errors.Is(err, net.ErrClosed) {
						logf(logger, "service: connection error: %v", err)
					}
					return
				}
				resp := handler(pc, conn, msg)
				if resp == nil {
					return
				}
				if err := pc.Send(resp); err != nil {
					logf(logger, "service: send error: %v", err)
					return
				}
			}
		}()
	}
}

// errMsg wraps an error into a protocol reply.
func errMsg(err error) *protocol.Message {
	return &protocol.Message{Error: &protocol.ErrorMsg{Text: err.Error()}}
}

// errMsgCode wraps an error into a protocol reply carrying a machine-readable
// rejection code (one of the protocol.Code* constants).
func errMsgCode(code string, err error) *protocol.Message {
	return &protocol.Message{Error: &protocol.ErrorMsg{Text: err.Error(), Code: code}}
}

// marshalVector encodes a bit vector for the wire, panicking on the
// impossible (MarshalBinary of a valid vector cannot fail).
func marshalVector(v *bitindex.Vector) []byte {
	b, err := v.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("service: marshaling vector: %v", err))
	}
	return b
}

func unmarshalVector(b []byte) (*bitindex.Vector, error) {
	var v bitindex.Vector
	if err := v.UnmarshalBinary(b); err != nil {
		return nil, err
	}
	return &v, nil
}
