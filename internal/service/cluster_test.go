package service

import (
	"errors"
	"net"
	"strings"
	"testing"

	"mkse/internal/cluster"
	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/protocol"
	"mkse/internal/rank"
)

// clusterDeployment is a P-partition loopback topology with an owner daemon:
// the smallest real-TCP cluster a test can route against.
type clusterDeployment struct {
	owner     *core.Owner
	svcs      []*CloudService
	cfg       cluster.Config
	ownerAddr string
	docs      []*corpus.Document
	items     []UploadItem
}

func newClusterDeployment(t *testing.T, partitions int) *clusterDeployment {
	t.Helper()
	p := core.DefaultParams().WithLevels(rank.Levels{1, 5, 10})
	p.Bins = 64
	owner, err := core.NewOwner(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: 12, KeywordsPerDoc: 8, Dictionary: corpus.Dictionary(100),
		MaxTermFreq: 10, ContentWords: 10, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := &clusterDeployment{owner: owner, docs: docs}
	for _, doc := range docs {
		si, enc, err := owner.Prepare(doc)
		if err != nil {
			t.Fatal(err)
		}
		d.items = append(d.items, UploadItem{Index: si, Doc: enc})
	}
	for i := 0; i < partitions; i++ {
		server, err := core.NewServer(p)
		if err != nil {
			t.Fatal(err)
		}
		svc := &CloudService{Server: server, Partition: i, Partitions: partitions}
		addr := serveLoopback(t, svc.Serve)
		d.svcs = append(d.svcs, svc)
		d.cfg.Partitions = append(d.cfg.Partitions, cluster.Partition{Primary: addr})
	}
	d.ownerAddr = serveLoopback(t, (&OwnerService{Owner: owner}).Serve)
	return d
}

func serveLoopback(t *testing.T, fn func(net.Listener) error) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() { _ = fn(l) }()
	return l.Addr().String()
}

// itemOwnedBy returns an upload item whose document the map assigns to the
// given partition.
func (d *clusterDeployment) itemOwnedBy(t *testing.T, partition int) UploadItem {
	t.Helper()
	m := d.cfg.Map()
	for _, it := range d.items {
		if m.Owner(it.Index.DocID) == partition {
			return it
		}
	}
	t.Fatalf("no document in the corpus hashes to partition %d", partition)
	return UploadItem{}
}

func TestClusterInfoVerbOverTCP(t *testing.T) {
	d := newClusterDeployment(t, 2)
	for i, p := range d.cfg.Partitions {
		raw, err := net.Dial("tcp", p.Primary)
		if err != nil {
			t.Fatal(err)
		}
		defer raw.Close()
		resp, err := protocol.NewConn(raw).Roundtrip(
			&protocol.Message{ClusterInfoReq: &protocol.ClusterInfoRequest{}})
		if err != nil {
			t.Fatal(err)
		}
		ci := resp.ClusterInfoResp
		if ci == nil || ci.Partition != i || ci.Partitions != 2 {
			t.Errorf("partition %d reported identity %+v, want %d/2", i, ci, i)
		}
	}
}

// A mutation routed to the wrong partition must be rejected with the typed
// wrong-partition code — a misconfigured uploader cannot silently split a
// document across partitions.
func TestWrongPartitionMutationRejected(t *testing.T) {
	d := newClusterDeployment(t, 2)
	misrouted := d.itemOwnedBy(t, 1)

	err := UploadAll(d.cfg.Partitions[0].Primary, []UploadItem{misrouted})
	var remote *protocol.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("misrouted upload: got %v, want *protocol.RemoteError", err)
	}
	if remote.Code != protocol.CodeWrongPartition {
		t.Errorf("misrouted upload rejected with code %q, want %q", remote.Code, protocol.CodeWrongPartition)
	}

	err = DeleteAll(d.cfg.Partitions[0].Primary, []string{misrouted.Index.DocID})
	if !errors.As(err, &remote) || remote.Code != protocol.CodeWrongPartition {
		t.Errorf("misrouted delete: got %v, want wrong-partition rejection", err)
	}

	// The routed path lands every document on its owner.
	if err := UploadAllCluster(d.cfg, d.items); err != nil {
		t.Fatalf("routed upload failed: %v", err)
	}
	total := 0
	for _, svc := range d.svcs {
		total += svc.Server.NumDocuments()
	}
	if total != len(d.items) {
		t.Errorf("cluster holds %d documents, want %d", total, len(d.items))
	}
}

// A miswired -cluster list (elements in the wrong order) must be caught by
// the partition-map exchange at dial time, before anything is routed.
func TestDialClusterRejectsSwappedTopology(t *testing.T) {
	d := newClusterDeployment(t, 2)
	swapped := cluster.Config{Partitions: []cluster.Partition{
		d.cfg.Partitions[1], d.cfg.Partitions[0],
	}}
	_, err := DialCluster("swapped-user", d.ownerAddr, swapped)
	if err == nil {
		t.Fatal("DialCluster accepted a swapped partition order")
	}
	if !strings.Contains(err.Error(), "identity") {
		t.Errorf("swapped-topology error %q does not mention the identity mismatch", err)
	}
}

// A single-node deployment keeps working through DialCluster even when the
// server was started without -partition: a P=1 topology routes trivially.
func TestDialClusterToleratesUnpartitionedSingleNode(t *testing.T) {
	p := core.DefaultParams().WithLevels(rank.Levels{1, 5, 10})
	p.Bins = 64
	owner, err := core.NewOwner(p, 43)
	if err != nil {
		t.Fatal(err)
	}
	server, err := core.NewServer(p)
	if err != nil {
		t.Fatal(err)
	}
	svc := &CloudService{Server: server} // no cluster identity at all
	cloudAddr := serveLoopback(t, svc.Serve)
	ownerAddr := serveLoopback(t, (&OwnerService{Owner: owner}).Serve)

	cfg := cluster.Config{Partitions: []cluster.Partition{{Primary: cloudAddr}}}
	client, err := DialCluster("solo-user", ownerAddr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Partitions != 1 {
		t.Errorf("aggregate stats count %d partitions, want 1", st.Partitions)
	}

	// The same unpartitioned server in a P=2 topology must be refused.
	bad := cluster.Config{Partitions: []cluster.Partition{{Primary: cloudAddr}, {Primary: cloudAddr}}}
	if _, err := DialCluster("solo-user-2", ownerAddr, bad); err == nil {
		t.Error("DialCluster accepted an identity-less server in a multi-partition topology")
	}
}

func TestAggregateStats(t *testing.T) {
	agg := aggregateStats([]*protocol.StatsResponse{
		{NumDocuments: 3, NumShards: 2, Durable: true},
		nil, // a failed partition contributes nothing
		{NumDocuments: 4, NumShards: 2, Durable: false},
	})
	if agg.NumDocuments != 7 || agg.NumShards != 4 {
		t.Errorf("aggregate sums wrong: %+v", agg)
	}
	if agg.Partitions != 2 {
		t.Errorf("aggregate counted %d partitions, want 2 live", agg.Partitions)
	}
	if agg.Durable {
		t.Error("aggregate durable despite a memory-only partition")
	}
	if agg.Partition != -1 {
		t.Errorf("aggregate partition index %d, want -1 marker", agg.Partition)
	}
}
