package service

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"mkse/internal/core"
	"mkse/internal/durable"
	"mkse/internal/protocol"
	"mkse/internal/rank"
)

// Failover-surface tests: the promote and reconfigure verbs, term-typed
// rejections, fencing of deposed primaries, client topology-following, and
// the graceful-shutdown plumbing (drain, idle timeouts). The end-to-end
// kill-the-primary scenarios live in internal/observer, driven by the
// fault-injecting proxy.

// wireUpload pushes one document at a follower/primary over a raw protocol
// connection, returning the roundtrip error.
func wireUpload(t *testing.T, addr string, si *core.SearchIndex, id string) error {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	levels := make([][]byte, len(si.Levels))
	for i, l := range si.Levels {
		levels[i] = marshalVector(l)
	}
	_, err = protocol.NewConn(conn).Roundtrip(&protocol.Message{UploadReq: &protocol.UploadRequest{
		DocID: id, Levels: levels, Ciphertext: []byte("body of " + id), EncKey: []byte{0xEE},
	}})
	return err
}

func TestPromoteFlipsFollowerInPlace(t *testing.T) {
	p := replParams()
	rng := rand.New(rand.NewSource(101))
	pr := startReplPrimary(t, p, t.TempDir())
	for i := 0; i < 12; i++ {
		replUpload(t, pr.eng, rng, p, fmt.Sprintf("doc-%03d", i))
	}
	fo := startReplFollower(t, p, t.TempDir(), pr.addr)
	waitConverged(t, pr.eng, fo.eng)

	// Before: a read-only replica at term 0, visible in stats.
	st, err := FetchStats(fo.addr)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Replica || st.Term != 0 {
		t.Fatalf("pre-promote stats: replica=%v term=%d, want replica at term 0", st.Replica, st.Term)
	}
	if err := wireUpload(t, fo.addr, replIndex(rng, p, "doc-pre"), "doc-pre"); err == nil {
		t.Fatal("follower accepted an upload before promotion")
	} else {
		var remote *protocol.RemoteError
		if !errors.As(err, &remote) || remote.Code != protocol.CodeReadOnly {
			t.Fatalf("follower rejection not typed read-only: %v (code %q)", err, remote.Code)
		}
	}

	// Promote in place.
	resp, err := Promote(fo.addr, 1)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if resp.Term != 1 {
		t.Fatalf("promoted to term %d, want 1", resp.Term)
	}
	if resp.Position != fo.eng.TermStart() {
		t.Fatalf("promote reported term start %d, engine says %d", resp.Position, fo.eng.TermStart())
	}

	// After: a primary at term 1 that accepts writes; stats flip too.
	st, err = FetchStats(fo.addr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replica || st.Term != 1 {
		t.Fatalf("post-promote stats: replica=%v term=%d, want primary at term 1", st.Replica, st.Term)
	}
	if err := wireUpload(t, fo.addr, replIndex(rng, p, "doc-new"), "doc-new"); err != nil {
		t.Fatalf("promoted follower rejected a write: %v", err)
	}
	if got := fo.eng.Server().NumDocuments(); got != 13 {
		t.Fatalf("promoted follower has %d documents, want 13", got)
	}

	// Re-promoting to the same term is idempotent (observer retry).
	if _, err := Promote(fo.addr, 1); err != nil {
		t.Fatalf("idempotent re-promote: %v", err)
	}

	// An old-term promote is refused with a typed stale-term error.
	_, err = Promote(fo.addr, 0)
	var remote *protocol.RemoteError
	if !errors.As(err, &remote) || remote.Code != protocol.CodeStaleTerm {
		t.Fatalf("stale promote: %v (code %q), want %s", err, remote.Code, protocol.CodeStaleTerm)
	}
}

func TestStaleSubscriberFencesDeposedPrimary(t *testing.T) {
	p := replParams()
	rng := rand.New(rand.NewSource(102))
	pr := startReplPrimary(t, p, t.TempDir())
	for i := 0; i < 5; i++ {
		replUpload(t, pr.eng, rng, p, fmt.Sprintf("doc-%03d", i))
	}

	// A follower that has seen term 5 subscribes: this primary (term 0)
	// learns it was failed over and must fence itself.
	conn, err := net.Dial("tcp", pr.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := protocol.NewConn(conn)
	if err := pc.Send(&protocol.Message{ReplicaSubscribeReq: &protocol.ReplicaSubscribeRequest{
		From: pr.eng.Position(), Term: 5,
	}}); err != nil {
		t.Fatal(err)
	}
	m, err := pc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Error == nil || m.Error.Code != protocol.CodeStaleTerm {
		t.Fatalf("subscribe reply: %+v, want a %s error", m, protocol.CodeStaleTerm)
	}

	// The fence is durable for the process: writes bounce as read-only.
	err = wireUpload(t, pr.addr, replIndex(rng, p, "doc-zombie"), "doc-zombie")
	var remote *protocol.RemoteError
	if !errors.As(err, &remote) || remote.Code != protocol.CodeReadOnly {
		t.Fatalf("fenced primary write: %v (code %q), want %s", err, remote.Code, protocol.CodeReadOnly)
	}

	// A promote at a current term puts it back into a defined role.
	if _, err := Promote(pr.addr, 6); err != nil {
		t.Fatalf("re-promote of fenced primary: %v", err)
	}
	if err := wireUpload(t, pr.addr, replIndex(rng, p, "doc-back"), "doc-back"); err != nil {
		t.Fatalf("write after re-promotion: %v", err)
	}
}

func TestClientFollowsPromotion(t *testing.T) {
	p := core.DefaultParams().WithLevels(rank.Levels{1, 5, 10})
	p.Bins = 64
	owner, err := core.NewOwner(p, 48)
	if err != nil {
		t.Fatal(err)
	}
	pr := startReplPrimary(t, p, t.TempDir())
	docs, items, err := corpusDocsFor(owner, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := UploadAll(pr.addr, items); err != nil {
		t.Fatal(err)
	}
	fo := startReplFollower(t, p, t.TempDir(), pr.addr)
	waitConverged(t, pr.eng, fo.eng)

	ownerL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ownerL.Close()
	go func() { _ = (&OwnerService{Owner: owner}).Serve(ownerL) }()

	client, err := Dial("failover-user", ownerL.Addr().String(), pr.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.AddReadReplicas(fo.addr)

	// Kill the primary, promote the follower — the client was not told.
	pr.kill()
	if _, err := Promote(fo.addr, 1); err != nil {
		t.Fatalf("promote: %v", err)
	}

	// A write on the dead connection must fail over to the new primary.
	victim := items[0].Doc.ID
	if err := client.Delete(victim); err != nil {
		t.Fatalf("delete across failover: %v", err)
	}
	if got := fo.eng.Server().NumDocuments(); got != 11 {
		t.Fatalf("new primary has %d documents after delete, want 11", got)
	}

	// Reads keep working against the new topology.
	if _, err := client.Search(docs[3].Keywords()[:2], 0); err != nil {
		t.Fatalf("search across failover: %v", err)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatalf("stats across failover: %v", err)
	}
	if st.Term != 1 {
		t.Fatalf("client sees term %d after failover, want 1", st.Term)
	}
}

func TestDrainClosesLingeringConnections(t *testing.T) {
	p := replParams()
	eng, err := durable.Open(t.TempDir(), p, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Crash()
	svc := &CloudService{Server: eng.Server(), Store: eng, WAL: eng, Eng: eng}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = svc.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := protocol.NewConn(conn)
	if _, err := pc.Roundtrip(&protocol.Message{StatsReq: &protocol.StatsRequest{}}); err != nil {
		t.Fatal(err)
	}

	// Stop accepting, then drain: the idle keep-alive connection cannot
	// finish on its own, so the window elapses and it is cut.
	l.Close()
	start := time.Now()
	svc.Drain(50 * time.Millisecond)
	if waited := time.Since(start); waited < 50*time.Millisecond {
		t.Fatalf("drain returned after %v, before the window closed", waited)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := pc.Recv(); err == nil {
		t.Fatal("connection survived the drain")
	}
	// With nothing tracked anymore, a second drain returns immediately.
	start = time.Now()
	svc.Drain(time.Second)
	if waited := time.Since(start); waited > 500*time.Millisecond {
		t.Fatalf("empty drain blocked for %v", waited)
	}
}

func TestIdleTimeoutDropsQuietConnsButSparesStreams(t *testing.T) {
	p := replParams()
	rng := rand.New(rand.NewSource(103))
	eng, err := durable.Open(t.TempDir(), p, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Crash()
	svc := &CloudService{
		Server: eng.Server(), Store: eng, WAL: eng, Eng: eng,
		IdleTimeout: 75 * time.Millisecond, HeartbeatEvery: 25 * time.Millisecond,
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = svc.Serve(l) }()
	addr := l.Addr().String()

	// An active client is fine; one that goes quiet past the window is cut.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := protocol.NewConn(conn)
	if _, err := pc.Roundtrip(&protocol.Message{StatsReq: &protocol.StatsRequest{}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := pc.Roundtrip(&protocol.Message{StatsReq: &protocol.StatsRequest{}}); err == nil {
		t.Fatal("idle connection survived four idle windows")
	}

	// A replication stream takes its connection over and clears the
	// deadline: a follower must stay converged across many idle windows.
	for i := 0; i < 5; i++ {
		replUpload(t, eng, rng, p, fmt.Sprintf("doc-%03d", i))
	}
	fo := startReplFollower(t, p, t.TempDir(), addr)
	waitConverged(t, eng, fo.eng)
	time.Sleep(300 * time.Millisecond)
	replUpload(t, eng, rng, p, "doc-late")
	waitConverged(t, eng, fo.eng)
	if !fo.rep.Status().Connected {
		t.Fatal("replication stream did not survive the idle timeout")
	}
}
