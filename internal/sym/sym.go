// Package sym provides the symmetric document encryption of the MKS scheme.
// The paper uses "symmetric-key encryption as the encryption method since it
// can handle large document sizes efficiently" (Section 3) with "a different
// secret key for each document" (Section 4.4); the concrete cipher is left
// open. We use AES-256-CTR with an HMAC-SHA256 tag (encrypt-then-MAC), built
// purely from the stdlib, so ciphertext tampering by the semi-honest-but-
// curious server is detectable (data privacy, Definition 1).
package sym

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// KeySize is the byte length of a document key: 32 bytes of AES-256 key
// material; the HMAC key is derived from it. Per-document keys of this size
// embed comfortably below a 1024-bit RSA modulus for the blind-decryption
// protocol.
const KeySize = 32

// Overhead is the ciphertext expansion in bytes: a 16-byte CTR IV plus a
// 32-byte HMAC tag. Table 1's communication analysis treats ciphertext size
// as "approximately the same as document size itself"; Overhead quantifies
// the approximation.
const Overhead = aes.BlockSize + sha256.Size

// ErrDecrypt is returned when a ciphertext fails authentication or is
// structurally invalid. The cause is deliberately not detailed further to
// avoid oracle behaviour.
var ErrDecrypt = errors.New("sym: message authentication failed")

// NewKey draws a fresh random document key.
func NewKey() ([]byte, error) {
	k := make([]byte, KeySize)
	if _, err := rand.Read(k); err != nil {
		return nil, fmt.Errorf("sym: generating key: %w", err)
	}
	// Guard against the (astronomically unlikely) all-zero key, which the
	// textbook-RSA key transport of the retrieval protocol cannot carry.
	allZero := true
	for _, b := range k {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		k[0] = 1
	}
	return k, nil
}

// deriveKeys splits the document key into independent encryption and MAC
// keys via domain-separated SHA-256.
func deriveKeys(key []byte) (encKey, macKey []byte) {
	e := sha256.Sum256(append([]byte("mkse-enc\x00"), key...))
	m := sha256.Sum256(append([]byte("mkse-mac\x00"), key...))
	return e[:], m[:]
}

// Encrypt encrypts plaintext under the given document key. The output layout
// is IV || ciphertext || tag where tag = HMAC(macKey, IV || ciphertext).
func Encrypt(key, plaintext []byte) ([]byte, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("sym: key must be %d bytes, got %d", KeySize, len(key))
	}
	encKey, macKey := deriveKeys(key)
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, fmt.Errorf("sym: cipher init: %w", err)
	}
	out := make([]byte, aes.BlockSize+len(plaintext)+sha256.Size)
	iv := out[:aes.BlockSize]
	if _, err := rand.Read(iv); err != nil {
		return nil, fmt.Errorf("sym: generating IV: %w", err)
	}
	cipher.NewCTR(block, iv).XORKeyStream(out[aes.BlockSize:aes.BlockSize+len(plaintext)], plaintext)
	mac := hmac.New(sha256.New, macKey)
	mac.Write(out[:aes.BlockSize+len(plaintext)])
	mac.Sum(out[:aes.BlockSize+len(plaintext)])
	return out, nil
}

// Decrypt authenticates and decrypts a ciphertext produced by Encrypt.
func Decrypt(key, ciphertext []byte) ([]byte, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("sym: key must be %d bytes, got %d", KeySize, len(key))
	}
	if len(ciphertext) < Overhead {
		return nil, ErrDecrypt
	}
	encKey, macKey := deriveKeys(key)
	body := ciphertext[:len(ciphertext)-sha256.Size]
	tag := ciphertext[len(ciphertext)-sha256.Size:]
	mac := hmac.New(sha256.New, macKey)
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), tag) {
		return nil, ErrDecrypt
	}
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, fmt.Errorf("sym: cipher init: %w", err)
	}
	iv := body[:aes.BlockSize]
	plaintext := make([]byte, len(body)-aes.BlockSize)
	cipher.NewCTR(block, iv).XORKeyStream(plaintext, body[aes.BlockSize:])
	return plaintext, nil
}
