package sym

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testKey(t testing.TB) []byte {
	t.Helper()
	k, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestNewKeyLengthAndNonZero(t *testing.T) {
	k := testKey(t)
	if len(k) != KeySize {
		t.Fatalf("key length %d, want %d", len(k), KeySize)
	}
	if bytes.Equal(k, make([]byte, KeySize)) {
		t.Error("NewKey returned the all-zero key")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	k := testKey(t)
	for _, pt := range [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte("a confidential medical record"),
		bytes.Repeat([]byte("large document "), 100000),
	} {
		ct, err := Encrypt(k, pt)
		if err != nil {
			t.Fatalf("encrypt: %v", err)
		}
		if len(ct) != len(pt)+Overhead {
			t.Errorf("ciphertext length %d, want %d", len(ct), len(pt)+Overhead)
		}
		got, err := Decrypt(k, ct)
		if err != nil {
			t.Fatalf("decrypt: %v", err)
		}
		if !bytes.Equal(got, pt) {
			t.Errorf("round trip mismatch for %d-byte plaintext", len(pt))
		}
	}
}

func TestEncryptIsRandomized(t *testing.T) {
	k := testKey(t)
	pt := []byte("same plaintext")
	c1, err := Encrypt(k, pt)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Encrypt(k, pt)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(c1, c2) {
		t.Error("two encryptions of the same plaintext are identical")
	}
}

func TestDecryptRejectsTampering(t *testing.T) {
	k := testKey(t)
	ct, err := Encrypt(k, []byte("sensitive search results"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte position in turn; all must fail authentication.
	for i := 0; i < len(ct); i += 7 {
		mangled := bytes.Clone(ct)
		mangled[i] ^= 0x55
		if _, err := Decrypt(k, mangled); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
}

func TestDecryptRejectsTruncation(t *testing.T) {
	k := testKey(t)
	ct, err := Encrypt(k, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, Overhead - 1, len(ct) - 1} {
		if _, err := Decrypt(k, ct[:n]); err == nil {
			t.Errorf("truncated ciphertext of %d bytes accepted", n)
		}
	}
}

func TestDecryptRejectsWrongKey(t *testing.T) {
	k1 := testKey(t)
	k2 := testKey(t)
	ct, err := Encrypt(k1, []byte("data privacy"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(k2, ct); err == nil {
		t.Error("ciphertext decrypted under wrong key")
	}
}

func TestBadKeyLengths(t *testing.T) {
	if _, err := Encrypt(make([]byte, 16), []byte("x")); err == nil {
		t.Error("16-byte key accepted by Encrypt")
	}
	if _, err := Decrypt(make([]byte, 31), make([]byte, 100)); err == nil {
		t.Error("31-byte key accepted by Decrypt")
	}
}

func TestRoundTripQuick(t *testing.T) {
	k := testKey(t)
	f := func(pt []byte) bool {
		ct, err := Encrypt(k, pt)
		if err != nil {
			return false
		}
		got, err := Decrypt(k, ct)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncrypt4KiB(b *testing.B) {
	k := testKey(b)
	pt := bytes.Repeat([]byte{0xAB}, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encrypt(k, pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt4KiB(b *testing.B) {
	k := testKey(b)
	ct, err := Encrypt(k, bytes.Repeat([]byte{0xAB}, 4096))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decrypt(k, ct); err != nil {
			b.Fatal(err)
		}
	}
}
