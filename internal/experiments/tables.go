package experiments

import (
	"fmt"
	"strings"

	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/costs"
	"mkse/internal/rank"
)

// ---------------------------------------------------------------------------
// Table 1 — communication costs
// ---------------------------------------------------------------------------

// Table1Row is one protocol step's analytic vs measured size.
type Table1Row struct {
	Step         string
	AnalyticBits int64 // the paper's Table 1 entry
	MeasuredBits int64 // actual application-payload bits in this implementation
}

// Table1Result compares the paper's communication analysis with measured
// payload sizes for a γ-keyword query returning α matches of which θ are
// retrieved.
type Table1Result struct {
	Gamma, Alpha, Theta int
	DocBytes            int
	Rows                []Table1Row
}

// Table1 measures the protocol's application-level payloads (the quantities
// Table 1 counts: bin IDs, indices, RSA group elements, ciphertexts) and
// sets them against the analytic formulas. Framing and gob overhead are
// excluded — the paper counts information content, not encoding.
func Table1(gamma, alpha, theta, docBytes int, seed int64) (*Table1Result, error) {
	owner, err := newExperimentOwner(nil, seed)
	if err != nil {
		return nil, err
	}
	p := owner.Params()
	logN := p.RSABits
	r := p.R

	exp := costs.Table1Expected(gamma, logN, r, alpha, theta, docBytes*8)
	res := &Table1Result{Gamma: gamma, Alpha: alpha, Theta: theta, DocBytes: docBytes}

	// user→owner trapdoor request: γ 32-bit bin IDs + a logN-bit signature.
	measuredTrapdoorReq := int64(32*gamma) + int64(logN)
	res.Rows = append(res.Rows, Table1Row{"user/trapdoor", exp["user/trapdoor"], measuredTrapdoorReq})

	// owner→user trapdoor reply: the paper models one encrypted logN-bit
	// payload; we ship up to γ 128-bit bin keys (≤ logN bits for γ ≤ 8).
	measuredTrapdoorResp := int64(gamma * 128)
	res.Rows = append(res.Rows, Table1Row{"owner/trapdoor", exp["owner/trapdoor"], measuredTrapdoorResp})

	// user→server query: exactly r bits.
	res.Rows = append(res.Rows, Table1Row{"user/search", exp["user/search"], int64(r)})

	// server→user: α· r-bit metadata + θ·(doc + logN).
	measuredSearch := int64(alpha*r) + int64(theta)*int64(docBytes*8+logN)
	res.Rows = append(res.Rows, Table1Row{"server/search", exp["server/search"], measuredSearch})

	// decrypt step: logN bits each way.
	res.Rows = append(res.Rows, Table1Row{"user/decrypt", exp["user/decrypt"], int64(logN)})
	res.Rows = append(res.Rows, Table1Row{"owner/decrypt", exp["owner/decrypt"], int64(logN)})

	return res, nil
}

// Format renders Table 1.
func (r *Table1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — communication costs (bits); γ=%d, α=%d, θ=%d, doc=%d bytes, logN=1024, r=448\n",
		r.Gamma, r.Alpha, r.Theta, r.DocBytes)
	fmt.Fprintf(&b, "%-16s %14s %14s\n", "step", "paper (bits)", "measured (bits)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %14d %14d\n", row.Step, row.AnalyticBits, row.MeasuredBits)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 2 — computation costs
// ---------------------------------------------------------------------------

// Table2Result captures measured per-party operation counts for one full
// protocol run (trapdoor → query → search → retrieve one document), against
// the paper's symbolic entries.
type Table2Result struct {
	NumDocs int
	Eta     int
	User    costs.Snapshot
	Owner   costs.Snapshot
	Server  costs.Snapshot
	// MatchedDocs is α, needed to interpret the server comparison count
	// σ + η·α of Algorithm 1.
	MatchedDocs int
}

// Table2 instruments one complete protocol execution.
func Table2(numDocs int, seed int64) (*Table2Result, error) {
	levels := rank.Levels{1, 5, 10}
	owner, err := newExperimentOwner(levels, seed)
	if err != nil {
		return nil, err
	}
	server, err := core.NewServer(owner.Params())
	if err != nil {
		return nil, err
	}
	dict := corpus.Dictionary(800)
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: numDocs, KeywordsPerDoc: 15, Dictionary: dict,
		MaxTermFreq: 15, ContentWords: 10, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	for _, d := range docs {
		si, enc, err := owner.Prepare(d)
		if err != nil {
			return nil, err
		}
		if err := server.Upload(si, enc); err != nil {
			return nil, err
		}
	}
	user, err := core.NewUser("table2-user", owner.Params(), owner.PublicKey(), owner.RandomTrapdoors())
	if err != nil {
		return nil, err
	}
	if err := owner.RegisterUser(user.ID, user.PublicKey()); err != nil {
		return nil, err
	}

	// Measure the online phase only: reset after the offline initialization
	// (the paper's Table 2 books initialization separately).
	owner.Costs.Reset()
	server.Costs.Reset()
	user.Costs.Reset()

	words := docs[0].Keywords()[:2]
	binIDs := user.BinIDs(words)
	msg := []byte(fmt.Sprintf("bins:%v", binIDs))
	sig, err := user.Sign(msg)
	if err != nil {
		return nil, err
	}
	if err := owner.VerifyUser(user.ID, msg, sig); err != nil {
		return nil, err
	}
	keys, err := owner.TrapdoorKeys(binIDs)
	if err != nil {
		return nil, err
	}
	if err := user.InstallTrapdoorKeys(binIDs, keys); err != nil {
		return nil, err
	}
	q, err := user.BuildQuery(words)
	if err != nil {
		return nil, err
	}
	matches, err := server.Search(q)
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("experiments: table2 query matched nothing")
	}
	doc, err := server.Fetch(matches[0].DocID)
	if err != nil {
		return nil, err
	}
	if _, err := user.DecryptDocument(doc, owner.BlindDecrypt); err != nil {
		return nil, err
	}
	return &Table2Result{
		NumDocs:     numDocs,
		Eta:         len(levels),
		User:        user.Costs.Snapshot(),
		Owner:       owner.Costs.Snapshot(),
		Server:      server.Costs.Snapshot(),
		MatchedDocs: len(matches),
	}, nil
}

// Format renders Table 2 with the paper's symbolic budget alongside.
func (r *Table2Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — computation per search+retrieval (σ=%d docs, η=%d, α=%d matches)\n", r.NumDocs, r.Eta, r.MatchedDocs)
	fmt.Fprintf(&b, "user:   %s\n", r.User)
	fmt.Fprintf(&b, "        paper: 1 hash+AND per term, 3 modexp, 2 modmul, 1 sym decrypt, 1 signature\n")
	fmt.Fprintf(&b, "owner:  %s\n", r.Owner)
	fmt.Fprintf(&b, "        paper: 4 modular exponentiations per search (2 trapdoor + 2 decrypt)\n")
	fmt.Fprintf(&b, "server: %s\n", r.Server)
	fmt.Fprintf(&b, "        paper: σ + η·α binary comparisons = %d + %d·%d ≤ %d\n",
		r.NumDocs, r.Eta, r.MatchedDocs, r.NumDocs+r.Eta*r.MatchedDocs)
	return b.String()
}

// ---------------------------------------------------------------------------
// Section 5 — ranking quality vs Equation 4
// ---------------------------------------------------------------------------

// RankingResult aggregates the paper's three agreement statistics over many
// trials of the Section 5 synthetic study.
type RankingResult struct {
	Trials         int
	TopInTop1Pct   float64 // paper: ≈ 40%
	TopInTop3Pct   float64 // paper: 100%
	AtLeast4Of5Pct float64 // paper: ≈ 80%
}

// RankingQuality runs the Section 5 experiment end to end over the
// *encrypted* path: 1000 equal-length files, 3 query keywords with
// f_t = 200, 20 documents containing all three, term frequencies uniform in
// [1, 15], η = 5 levels. The reference ranking is Equation 4; the candidate
// ranking is the rank the encrypted search assigns.
func RankingQuality(trials int, seed int64) (*RankingResult, error) {
	levels := rank.Levels{1, 4, 7, 10, 13} // η = 5 over tf ∈ [1,15]
	res := &RankingResult{Trials: trials}
	top1, top3, four := 0, 0, 0
	for tr := 0; tr < trials; tr++ {
		trialSeed := seed + int64(tr)*101
		docs, query, allMatch, err := corpus.RankingStudy(1000, 3, 200, 20, 15, trialSeed)
		if err != nil {
			return nil, err
		}
		owner, err := newExperimentOwner(levels, trialSeed)
		if err != nil {
			return nil, err
		}
		server, err := core.NewServer(owner.Params())
		if err != nil {
			return nil, err
		}
		// Index only the documents that can match (all-match docs) plus a
		// sample of others; indexing all 1000 is the honest path.
		for _, d := range docs {
			si, err := owner.BuildIndex(d)
			if err != nil {
				return nil, err
			}
			if err := server.Upload(si, &core.EncryptedDocument{ID: d.ID, Ciphertext: []byte{0}, EncKey: []byte{0}}); err != nil {
				return nil, err
			}
		}
		f := newQueryFactory(owner, trialSeed+3)
		q := f.build(query)
		matches, err := server.Search(q)
		if err != nil {
			return nil, err
		}
		candidate := make([]rank.Ranked, 0, len(matches))
		inAll := make(map[string]bool, len(allMatch))
		for _, id := range allMatch {
			inAll[id] = true
		}
		for _, m := range matches {
			if inAll[m.DocID] { // restrict to genuine all-keyword matches
				candidate = append(candidate, rank.Ranked{DocID: m.DocID, Score: float64(m.Rank)})
			}
		}
		rank.SortRanked(candidate)

		// Reference: Equation 4 over the same 20 documents.
		stats := rank.NewCorpusStats(termFreqsOf(docs))
		reference := make([]rank.Ranked, 0, len(allMatch))
		for _, d := range docs {
			if inAll[d.ID] {
				reference = append(reference, rank.Ranked{DocID: d.ID, Score: stats.Score(query, d.TermFreqs, 1)})
			}
		}
		rank.SortRanked(reference)

		ag := rank.AgreeTied(reference, candidate)
		if ag.TopInTop1 {
			top1++
		}
		if ag.TopInTop3 {
			top3++
		}
		if ag.OverlapAt5 >= 4 {
			four++
		}
	}
	res.TopInTop1Pct = 100 * float64(top1) / float64(trials)
	res.TopInTop3Pct = 100 * float64(top3) / float64(trials)
	res.AtLeast4Of5Pct = 100 * float64(four) / float64(trials)
	return res, nil
}

func termFreqsOf(docs []*corpus.Document) []map[string]int {
	out := make([]map[string]int, len(docs))
	for i, d := range docs {
		out[i] = d.TermFreqs
	}
	return out
}

// Format renders the Section 5 comparison.
func (r *RankingResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 5 — ranking quality vs Equation 4 (%d trials, η=5)\n", r.Trials)
	fmt.Fprintf(&b, "%-42s %8s %8s\n", "statistic", "paper", "measured")
	fmt.Fprintf(&b, "%-42s %7.0f%% %7.1f%%\n", "reference top-1 is our top-1", 40.0, r.TopInTop1Pct)
	fmt.Fprintf(&b, "%-42s %7.0f%% %7.1f%%\n", "reference top-1 within our top-3", 100.0, r.TopInTop3Pct)
	fmt.Fprintf(&b, "%-42s %7.0f%% %7.1f%%\n", "≥4 of reference top-5 within our top-5", 80.0, r.AtLeast4Of5Pct)
	return b.String()
}
