package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"slices"
	"strings"
	"time"

	"mkse/internal/cluster"
	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/harness"
	"mkse/internal/protocol"
	"mkse/internal/rank"
	"mkse/internal/service"
	"mkse/internal/trace"
)

// ---------------------------------------------------------------------------
// Partitioned scatter-gather cluster — scale-out search (ISSUE 9)
// ---------------------------------------------------------------------------

// ClusterPoint is one (partition count, corpus size) measurement of the
// scatter-gather cluster: fat-client search latency through a partitioned
// loopback topology, plus the merge-agreement check proving the gathered
// results byte-identical to a single node scanning the whole corpus.
type ClusterPoint struct {
	Partitions int
	NumDocs    int
	QueriesRun int

	Mean     time.Duration // fat-client search latency
	P50      time.Duration
	P99      time.Duration
	NsPerDoc float64 // mean latency per stored document

	MergeChecks int  // wire-level scatter/merge comparisons against the reference
	MergeAgree  bool // every comparison byte-identical, metadata included
}

// ClusterResult is the cluster sweep.
type ClusterResult struct {
	Points []ClusterPoint
	// SampleTree, when the sweep ran traced, is the rendered span tree of
	// one forced-sample search against the largest topology — coordinator
	// scatter, per-partition RPC, and each server's dispatch/scan/qcache
	// work, assembled cross-daemon.
	SampleTree string
}

// ClusterSweep measures scatter-gather search at several corpus sizes and
// partition counts. For each point it starts a memory-only loopback cluster
// through the shared harness, routes the corpus to the owning partitions,
// enrolls a fat client and times its scatter-gather searches; alongside the
// timing, it replays a deterministic query set at the wire level — every
// partition scanned, results merged under the global τ-cut — against a
// single reference server holding the whole corpus, and records whether
// every merged response was byte-identical, metadata and all.
//
// With traced set, every daemon starts with tracing enabled and each point
// runs one forced-sample search outside the timed loop; the last point's
// assembled span tree is kept on the result so a bench run doubles as a
// tracing smoke test.
func ClusterSweep(sizes, partitions []int, queries int, seed int64, traced bool) (*ClusterResult, error) {
	owner, err := newExperimentOwner(rank.DefaultLevels(3, 15), seed)
	if err != nil {
		return nil, err
	}
	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	docs, indices, err := experimentCorpus(owner, maxN, seed)
	if err != nil {
		return nil, err
	}

	res := &ClusterResult{}
	for _, p := range partitions {
		for _, n := range sizes {
			pt, tree, err := clusterPoint(owner, docs, indices, n, p, queries, seed, traced)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, *pt)
			if tree != "" {
				res.SampleTree = tree
			}
		}
	}
	return res, nil
}

func clusterPoint(owner *core.Owner, docs []*corpus.Document, indices []*core.SearchIndex, n, partitions, queries int, seed int64, traced bool) (*ClusterPoint, string, error) {
	params := owner.Params()
	clu, err := harness.StartCluster(params, partitions, harness.Options{Trace: traced})
	if err != nil {
		return nil, "", err
	}
	defer clu.Close()

	// Reference: one server holding the whole corpus, scanned the
	// single-node way the merge must reproduce.
	ref, err := core.NewServer(params)
	if err != nil {
		return nil, "", err
	}
	refSvc := &service.CloudService{Server: ref}

	m := clu.Config().Map()
	payload := make([]byte, 64)
	for i := 0; i < n; i++ {
		doc := &core.EncryptedDocument{ID: docs[i].ID, Ciphertext: payload, EncKey: payload[:16]}
		if err := clu.Primaries[m.Owner(docs[i].ID)].Svc.Server.Upload(indices[i], doc); err != nil {
			return nil, "", err
		}
		if err := ref.Upload(indices[i], doc); err != nil {
			return nil, "", err
		}
	}

	pt := &ClusterPoint{Partitions: partitions, NumDocs: n, QueriesRun: queries}

	// --- Fat-client latency over loopback TCP ------------------------------
	ol, oaddr, err := harness.StartOwner(owner)
	if err != nil {
		return nil, "", err
	}
	defer ol.Close()
	client, err := service.DialCluster(fmt.Sprintf("cluster-bench-%d-%d", partitions, n), oaddr, clu.Config())
	if err != nil {
		return nil, "", err
	}
	defer client.Close()

	words := make([][]string, 8)
	for i := range words {
		words[i] = docs[(i*11+1)%n].Keywords()[:2]
	}
	for _, w := range words { // warm the trapdoor cache before timing
		if _, err := client.Search(w, 10); err != nil {
			return nil, "", err
		}
	}
	var tree string
	if traced {
		// One forced-sample search outside the timed loop; the tracer is
		// detached again so the measurement below stays span-free.
		client.Tracer = trace.New("client", 0, nil)
		_, spans, err := client.TraceSearch(words[0], 10)
		if err != nil {
			return nil, "", err
		}
		tree = trace.FormatTree(spans)
		client.Tracer = nil
	}
	lat := make([]time.Duration, 0, queries)
	for i := 0; i < queries; i++ {
		start := time.Now()
		if _, err := client.Search(words[i%len(words)], 10); err != nil {
			return nil, "", err
		}
		lat = append(lat, time.Since(start))
	}
	slices.Sort(lat)
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	pt.Mean = sum / time.Duration(len(lat))
	pt.P50 = lat[len(lat)/2]
	pt.P99 = lat[len(lat)*99/100]
	pt.NsPerDoc = float64(pt.Mean) / float64(n)

	// --- Merge agreement: scatter + merge vs the reference scan ------------
	f := newQueryFactory(owner, seed+int64(partitions)*1000+int64(n))
	pt.MergeAgree = true
	for i := 0; i < 16; i++ {
		q := marshalQuery(f.build(docs[(i*7+3)%n].Keywords()[:2]))
		for _, tau := range []int{0, 1, 5} {
			want, err := refSvc.SearchWire(&protocol.SearchRequest{Query: q, TopK: tau})
			if err != nil {
				return nil, "", err
			}
			lists := make([][]protocol.MatchWire, partitions)
			for pi, node := range clu.Primaries {
				resp, err := node.Svc.SearchWire(&protocol.SearchRequest{Query: q, TopK: tau})
				if err != nil {
					return nil, "", err
				}
				lists[pi] = resp.Matches
			}
			got := cluster.MergeWire(lists, tau)
			pt.MergeChecks++
			if !gobEqual(got, want.Matches) {
				pt.MergeAgree = false
			}
		}
	}
	return pt, tree, nil
}

// marshalQuery mirrors the client's wire encoding of a query vector.
func marshalQuery(v interface{ MarshalBinary() ([]byte, error) }) []byte {
	b, err := v.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("experiments: marshaling query: %v", err))
	}
	return b
}

// gobEqual compares two values by their gob encoding — the exact bytes a
// daemon would put on the wire, so nil-versus-empty and metadata
// differences all count.
func gobEqual(a, b any) bool {
	var ab, bb bytes.Buffer
	if err := gob.NewEncoder(&ab).Encode(a); err != nil {
		return false
	}
	if err := gob.NewEncoder(&bb).Encode(b); err != nil {
		return false
	}
	return bytes.Equal(ab.Bytes(), bb.Bytes())
}

// Format renders the sweep as a table.
func (r *ClusterResult) Format() string {
	var b strings.Builder
	b.WriteString("Partitioned scatter-gather cluster — fat-client search latency & merge agreement\n")
	b.WriteString("parts  #docs  queries       mean        p50        p99   ns/doc  merge\n")
	for _, p := range r.Points {
		agree := "MISMATCH"
		if p.MergeAgree {
			agree = fmt.Sprintf("ok (%d checks)", p.MergeChecks)
		}
		fmt.Fprintf(&b, "%5d %6d %8d %9.3fms %9.3fms %9.3fms %8.1f  %s\n",
			p.Partitions, p.NumDocs, p.QueriesRun,
			float64(p.Mean)/float64(time.Millisecond),
			float64(p.P50)/float64(time.Millisecond),
			float64(p.P99)/float64(time.Millisecond),
			p.NsPerDoc, agree)
	}
	if r.SampleTree != "" {
		b.WriteString("\nSample trace (forced-sample search, largest topology):\n")
		b.WriteString(r.SampleTree)
	}
	return b.String()
}
