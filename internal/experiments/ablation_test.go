package experiments

import (
	"strings"
	"testing"
)

// Section 6.1's claim: at constant r, increasing d lowers the false accept
// rate (both measured and analytic), at the cost of a longer HMAC.
func TestDSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("d-sweep builds 4 corpora × replicas")
	}
	res, err := DSweep(200, 20, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("%d points, want 4", len(res.Points))
	}
	byD := map[int]DSweepPoint{}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].HMACBytes <= res.Points[i-1].HMACBytes {
			t.Errorf("d=%d: HMAC length did not grow with d", res.Points[i].D)
		}
	}
	for _, p := range res.Points {
		byD[p.D] = p
	}
	// The paper's §6.1 claim holds in the useful regime: moving from d=4
	// through d=8 cuts the false accept rate steeply (both analytically and
	// measured).
	if byD[6].AnalyticFAR >= byD[4].AnalyticFAR || byD[8].AnalyticFAR >= byD[6].AnalyticFAR {
		t.Errorf("analytic FAP not decreasing over d=4..8: %g %g %g",
			byD[4].AnalyticFAR, byD[6].AnalyticFAR, byD[8].AnalyticFAR)
	}
	if byD[8].MeasuredFAR > byD[4].MeasuredFAR && byD[4].MeasuredFAR > 0 {
		t.Errorf("measured FAR rose from %.3f (d=4) to %.3f (d=8)",
			byD[4].MeasuredFAR, byD[8].MeasuredFAR)
	}
	// Reproduction finding beyond the paper: the improvement is NOT
	// monotone. At d=10 with r=448 a keyword zeroes only r/2^d ≈ 0.44
	// positions, so F(2) < 1 — most queries carry no genuine zeros at all
	// and selectivity collapses. The analytic model shows the turn.
	if byD[10].AnalyticFAR <= byD[8].AnalyticFAR {
		t.Errorf("expected the d=10 overshoot (FAP %g vs d=8's %g): F(2)<1 destroys selectivity",
			byD[10].AnalyticFAR, byD[8].AnalyticFAR)
	}
	// F(1) = r/2^d halves per extra bit of d.
	for _, p := range res.Points {
		want := 448.0
		for i := 0; i < p.D; i++ {
			want /= 2
		}
		if p.ZerosPerWord < want*0.7 || p.ZerosPerWord > want*1.3 {
			t.Errorf("d=%d: measured F(1)=%.2f, want ≈%.2f", p.D, p.ZerosPerWord, want)
		}
	}
	if !strings.Contains(res.Format(), "digit width") {
		t.Error("Format output malformed")
	}
}

// Section 6's dial: more decoys → same/different distance distributions
// converge (higher overlap) and queries zero more of the index.
func TestVSweepShape(t *testing.T) {
	res, err := VSweep(300, 22)
	if err != nil {
		t.Fatal(err)
	}
	byV := map[int]VSweepPoint{}
	for _, p := range res.Points {
		byV[p.V] = p
	}
	// V=0: same-term queries are identical → distance 0 spike, while
	// different-term queries are far away → overlap ≈ 0.
	if byV[0].Overlap > 0.2 {
		t.Errorf("V=0 overlap %.3f; deterministic queries should be fully linkable", byV[0].Overlap)
	}
	// The paper's V=30 hides the pattern far better than V=5.
	if byV[30].Overlap <= byV[5].Overlap {
		t.Errorf("V=30 overlap %.3f not above V=5's %.3f", byV[30].Overlap, byV[5].Overlap)
	}
	// More decoys zero more index bits.
	if byV[30].QueryZeroFrac <= byV[5].QueryZeroFrac {
		t.Error("query zero fraction did not grow with V")
	}
	if byV[0].QueryZeroFrac >= byV[30].QueryZeroFrac {
		t.Error("decoy-free queries should zero the least")
	}
	if !strings.Contains(res.Format(), "decoy") {
		t.Error("Format output malformed")
	}
}

// Section 4.2's trade-off: more bins → thinner per-bin obfuscation, less
// dictionary exposure per trapdoor request.
func TestBinsSweepShape(t *testing.T) {
	res, err := BinsSweep(25000, 23)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Points); i++ {
		prev, cur := res.Points[i-1], res.Points[i]
		if cur.Bins <= prev.Bins {
			t.Fatal("sweep not ascending")
		}
		if cur.MinOccupancy > prev.MinOccupancy {
			t.Errorf("δ=%d: min occupancy grew with more bins", cur.Bins)
		}
		if cur.ExposedFrac >= prev.ExposedFrac {
			t.Errorf("δ=%d: exposure did not shrink with more bins", cur.Bins)
		}
	}
	// The paper's δ=250 over 25000 words leaves every bin comfortably
	// populated (ϖ ≈ 100·(1 − a few σ)).
	for _, p := range res.Points {
		if p.Bins == 250 && p.MinOccupancy < 50 {
			t.Errorf("δ=250: min occupancy %d suspiciously low", p.MinOccupancy)
		}
	}
	if !strings.Contains(res.Format(), "bin count") {
		t.Error("Format output malformed")
	}
}
