package experiments

import (
	"fmt"
	"strings"

	"mkse/internal/analysis"
	"mkse/internal/bins"
	"mkse/internal/bitindex"
	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/histogram"
)

// ---------------------------------------------------------------------------
// Ablation: reduction digit width d (Section 6.1)
// ---------------------------------------------------------------------------
//
// "If more keywords are required per document, false accept rates can be
// reduced by increasing the reduction parameter d while keeping the final
// index size r constant (i.e. choosing a longer HMAC function). Although
// computing longer HMAC functions will also increase the cost of the index
// generation, since the index size r is constant the communication cost and
// storage requirements do not increase."

// DSweepPoint is one digit-width measurement.
type DSweepPoint struct {
	D            int
	HMACBytes    int     // l/8 = r·d/8 — the index-generation cost knob
	MeasuredFAR  float64 // empirical false-accept rate at the stress point
	AnalyticFAR  float64 // the analysis package's per-document estimate
	ZerosPerWord float64 // measured F(1) = r/2^d
}

// DSweepResult sweeps d at constant r.
type DSweepResult struct {
	R       int
	DocKw   int // keywords per document at the stress point (40 in Fig. 3)
	QueryKw int
	Points  []DSweepPoint
}

// DSweep quantifies the Section 6.1 trade-off: at fixed r = 448 and the
// Figure 3 stress point (40 genuine + U random keywords per document,
// 2-keyword queries), larger d shrinks the false accept rate at the price of
// a proportionally longer HMAC per keyword.
func DSweep(numDocs, queriesPerCell int, seed int64) (*DSweepResult, error) {
	const docKw, queryKw = 40, 2
	res := &DSweepResult{R: 448, DocKw: docKw, QueryKw: queryKw}
	dict := corpus.Dictionary(4000)
	topic := []string{"topic-kw-a", "topic-kw-b", "topic-kw-c", "topic-kw-d", "topic-kw-e"}
	for _, d := range []int{4, 6, 8, 10} {
		p := core.DefaultParams()
		p.Bins = 64
		p.D = d
		model, err := analysis.NewModel(p.R, d)
		if err != nil {
			return nil, err
		}
		matches, falses := 0, 0
		zeroSum, zeroN := 0, 0
		for rep := 0; rep < fig3Replicas; rep++ {
			repSeed := seed + int64(d)*100 + int64(rep)
			owner, err := core.NewOwnerDeterministic(p, repSeed, repSeed+0x5eed)
			if err != nil {
				return nil, err
			}
			f := newQueryFactory(owner, repSeed+1)
			docs, err := corpus.Generate(corpus.Config{
				NumDocs: numDocs, KeywordsPerDoc: docKw, Dictionary: dict,
				MaxTermFreq: 15, Seed: repSeed,
			})
			if err != nil {
				return nil, err
			}
			for i, doc := range docs {
				if i%5 < 2 {
					evict := len(topic)
					for w := range doc.TermFreqs {
						if evict == 0 {
							break
						}
						delete(doc.TermFreqs, w)
						evict--
					}
					for _, tw := range topic {
						doc.TermFreqs[tw] = 1 + f.rng.Intn(15)
					}
				}
			}
			indices := make([]*bitindex.Vector, len(docs))
			for i, doc := range docs {
				si, err := owner.BuildIndex(doc)
				if err != nil {
					return nil, err
				}
				indices[i] = si.Levels[0]
			}
			// Measured F(1) from a handful of fresh trapdoors.
			for i := 0; i < 25; i++ {
				zeroSum += owner.Trapdoor(dict[f.rng.Intn(len(dict))]).ZerosCount()
				zeroN++
			}
			for qi := 0; qi < queriesPerCell; qi++ {
				perm := f.rng.Perm(len(topic))
				words := []string{topic[perm[0]], topic[perm[1]]}
				q := f.build(words)
				for di, idx := range indices {
					if !idx.Matches(q) {
						continue
					}
					matches++
					if _, ok := docs[di].TermFreqs[words[0]]; !ok {
						falses++
						continue
					}
					if _, ok := docs[di].TermFreqs[words[1]]; !ok {
						falses++
					}
				}
			}
		}
		pt := DSweepPoint{
			D:            d,
			HMACBytes:    p.HMACBytes(),
			AnalyticFAR:  model.FalseAcceptProbability(docKw, p.U, queryKw),
			ZerosPerWord: float64(zeroSum) / float64(zeroN),
		}
		if matches > 0 {
			pt.MeasuredFAR = float64(falses) / float64(matches)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Format renders the d-sweep.
func (r *DSweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation §6.1 — digit width d at constant r=%d (%d+U kw/doc, %d-kw queries)\n", r.R, r.DocKw, r.QueryKw)
	b.WriteString("  d   HMAC bytes   F(1)=r/2^d   measured FAR   analytic per-doc FAP\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%3d %12d %12.2f %13.2f%% %20.2e\n",
			p.D, p.HMACBytes, p.ZerosPerWord, 100*p.MeasuredFAR, p.AnalyticFAR)
	}
	b.WriteString("larger d → longer HMAC per keyword, same r-bit index on the wire, lower FAR —\n")
	b.WriteString("until F(n) = r·(1−(1−2^−d)^n) drops below ~1 (d=10 at r=448), where queries run\n")
	b.WriteString("out of zeros and selectivity collapses; the paper's §6.1 advice holds for d ≤ 8\n")
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation: decoy count V at U = 2V (Section 6)
// ---------------------------------------------------------------------------

// VSweepPoint is one randomization-strength measurement.
type VSweepPoint struct {
	V             int
	U             int
	Overlap       float64 // same-vs-different distance distribution overlap
	QueryZeroFrac float64 // fraction of index bits zeroed by an average query
}

// VSweepResult sweeps the number of decoy keywords.
type VSweepResult struct {
	Points []VSweepPoint
}

// VSweep quantifies the query-randomization dial: V = 0 (no decoys —
// deterministic queries, search pattern fully exposed) up to the paper's
// V = 30, measuring how close the same-terms and different-terms distance
// distributions get (overlap coefficient → 1 means the search pattern is
// hidden) and how much of the index each query zeroes (the false-accept
// cost of decoys).
func VSweep(pairs int, seed int64) (*VSweepResult, error) {
	res := &VSweepResult{}
	dict := corpus.Dictionary(4000)
	for _, v := range []int{0, 5, 10, 15, 20, 30, 45} {
		p := core.DefaultParams()
		p.Bins = 64
		p.U = 2 * v
		p.V = v
		if v == 0 {
			p.U = 0
		}
		owner, err := core.NewOwnerDeterministic(p, seed+int64(v), seed+int64(v)+0x5eed)
		if err != nil {
			return nil, err
		}
		f := newQueryFactory(owner, seed+int64(v)+1)
		pick := func(n int) []string {
			out := make([]string, n)
			for i, idx := range f.rng.Perm(len(dict))[:n] {
				out[i] = dict[idx]
			}
			return out
		}
		hd := histogram.New(0, 448, 16)
		hs := histogram.New(0, 448, 16)
		zeroSum := 0
		for i := 0; i < pairs; i++ {
			n := 2 + i%5
			wordsA := pick(n)
			wordsB := pick(n)
			qa1 := f.build(wordsA)
			qa2 := f.build(wordsA)
			qb := f.build(wordsB)
			hs.Add(qa1.Hamming(qa2))
			hd.Add(qa1.Hamming(qb))
			zeroSum += qa1.ZerosCount()
		}
		res.Points = append(res.Points, VSweepPoint{
			V:             v,
			U:             p.U,
			Overlap:       histogram.OverlapCoefficient(hd, hs),
			QueryZeroFrac: float64(zeroSum) / float64(pairs) / float64(p.R),
		})
	}
	return res, nil
}

// Format renders the V-sweep.
func (r *VSweepResult) Format() string {
	var b strings.Builder
	b.WriteString("Ablation §6 — decoy keywords V (U = 2V): search-pattern hiding vs index load\n")
	b.WriteString("  V    U   same/diff overlap   query zero fraction\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%3d %4d %19.3f %21.3f\n", p.V, p.U, p.Overlap, p.QueryZeroFrac)
	}
	b.WriteString("V=0: identical queries are byte-identical (overlap of same-distance spike at 0)\n")
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation: bin count δ (Section 4.2)
// ---------------------------------------------------------------------------

// BinsSweepPoint is one bin-count measurement.
type BinsSweepPoint struct {
	Bins          int
	MinOccupancy  int     // ϖ — smallest bin (must stay ≥ the security floor)
	MeanOccupancy float64 // dictionary/δ
	ExposedFrac   float64 // fraction of the dictionary unlocked by a 3-keyword trapdoor request
}

// BinsSweepResult sweeps δ over a fixed dictionary.
type BinsSweepResult struct {
	DictSize int
	Points   []BinsSweepPoint
}

// BinsSweep quantifies the Section 4.2 trade-off in choosing δ: more bins
// mean each trapdoor request exposes fewer foreign keywords to the user
// (smaller ExposedFrac) but thinner obfuscation against the owner (smaller
// MinOccupancy ϖ — the owner learns more from *which* bin was requested).
func BinsSweep(dictSize int, seed int64) (*BinsSweepResult, error) {
	dict := corpus.Dictionary(dictSize)
	res := &BinsSweepResult{DictSize: dictSize}
	for _, nBins := range []int{10, 50, 250, 1000, 5000} {
		min := bins.MinOccupancy(dict, nBins)
		pt := BinsSweepPoint{
			Bins:          nBins,
			MinOccupancy:  min,
			MeanOccupancy: float64(dictSize) / float64(nBins),
			// A γ-keyword request unlocks γ bins ≈ γ/δ of the dictionary
			// (ignoring collisions).
			ExposedFrac: 3.0 / float64(nBins),
		}
		if pt.ExposedFrac > 1 {
			pt.ExposedFrac = 1
		}
		res.Points = append(res.Points, pt)
	}
	_ = seed
	return res, nil
}

// Format renders the bins sweep.
func (r *BinsSweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation §4.2 — bin count δ over a %d-word dictionary\n", r.DictSize)
	b.WriteString("   δ    min bin (ϖ)   mean bin   dictionary exposed by a 3-kw request\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%5d %13d %10.1f %38.4f\n", p.Bins, p.MinOccupancy, p.MeanOccupancy, p.ExposedFrac)
	}
	b.WriteString("small δ: strong obfuscation toward the owner, large key exposure toward users\n")
	return b.String()
}
