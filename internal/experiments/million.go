package experiments

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mkse/internal/bitindex"
	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/histogram"
	"mkse/internal/rank"
)

// ---------------------------------------------------------------------------
// Million-document sweep — the scale story (beyond the paper's 10k corpora)
// ---------------------------------------------------------------------------

// MillionResult is one end-to-end run of the streaming build + ranked-search
// measurement at large corpus scale.
type MillionResult struct {
	Docs    int
	Shards  int
	Workers int
	Eta     int
	R       int
	Zipf    bool

	BuildTime   time.Duration // index construction + upload, wall clock
	BuildPerDoc time.Duration

	Queries     int
	SearchMean  time.Duration // per ranked SearchTop(τ=10) query
	SearchP50   time.Duration
	SearchP99   time.Duration
	NsPerDoc    float64 // mean search ns per stored document
	Comparisons float64 // r-bit comparisons per query (Table 2 accounting)
	Matches     float64 // mean Equation-3 survivors per query

	RSSMB float64 // resident set after the search phase (0 if unreadable)
}

// MillionSweep streams a synthetic corpus of the given size through index
// construction straight into a sharded server — documents are built,
// indexed, uploaded and dropped one at a time, so corpus size is bounded by
// the server's arenas, not by a materialized []*Document — then measures
// ranked-search latency with per-query resolution. Keyword popularity is
// Zipf-skewed when zipf is set (natural corpora are not uniform; skew makes
// popular-keyword queries match large row sets and exercises the rank walk).
// Queries are built from keyword pairs of sampled documents, deterministic
// in seed. shards/workers <= 0 pick the server defaults.
func MillionSweep(numDocs, shards, workers, queries int, zipf bool, seed int64) (*MillionResult, error) {
	if numDocs <= 0 {
		numDocs = 1_000_000
	}
	if queries <= 0 {
		queries = 64
	}
	owner, err := newExperimentOwner(rank.DefaultLevels(3, 15), seed)
	if err != nil {
		return nil, err
	}
	server, err := core.NewServerSharded(owner.Params(), shards, workers)
	if err != nil {
		return nil, err
	}
	f := newQueryFactory(owner, seed+47)

	// Sample the keyword sets the queries will be built from while the
	// corpus streams past: every sampleEvery-th document contributes one
	// future query (two of its keywords, chosen by the deterministic rng).
	sampleEvery := numDocs / queries
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	queryWords := make([][]string, 0, queries)

	cfg := corpus.Config{
		NumDocs:        numDocs,
		KeywordsPerDoc: 20,
		Dictionary:     corpus.Dictionary(25000), // the paper's dictionary scale
		MaxTermFreq:    15,
		Zipf:           zipf,
		Seed:           seed,
	}
	buildStart := time.Now()
	uploaded := 0
	err = corpus.GenerateStream(cfg, func(d *corpus.Document) error {
		si, err := owner.BuildIndex(d)
		if err != nil {
			return err
		}
		if err := server.Upload(si, &core.EncryptedDocument{ID: d.ID, Ciphertext: []byte{0}, EncKey: []byte{0}}); err != nil {
			return err
		}
		if uploaded%sampleEvery == 0 && len(queryWords) < queries {
			kws := d.Keywords()
			i := f.rng.Intn(len(kws))
			j := f.rng.Intn(len(kws) - 1)
			if j >= i {
				j++
			}
			queryWords = append(queryWords, []string{kws[i], kws[j]})
		}
		uploaded++
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &MillionResult{
		Docs:    numDocs,
		Shards:  server.NumShards(),
		Workers: server.NumWorkers(),
		Eta:     owner.Params().Eta(),
		R:       owner.Params().R,
		Zipf:    zipf,
	}
	res.BuildTime = time.Since(buildStart)
	res.BuildPerDoc = res.BuildTime / time.Duration(numDocs)

	qs := make([]*bitindex.Vector, 0, len(queryWords))
	for _, words := range queryWords {
		qs = append(qs, f.build(words))
	}
	res.Queries = len(qs)

	// Warm the pooled scratch and page the arenas in, outside the timing.
	if _, err := server.SearchTop(qs[0], 10); err != nil {
		return nil, err
	}

	lat := latencyHist()
	matches := 0
	cmpsBefore := server.Costs.Snapshot().BinaryComparisons
	searchStart := time.Now()
	for _, q := range qs {
		qStart := time.Now()
		ms, err := server.SearchTop(q, 10)
		if err != nil {
			return nil, err
		}
		lat.Add(int(time.Since(qStart) / time.Microsecond))
		matches += len(ms)
	}
	total := time.Since(searchStart)
	res.SearchMean = total / time.Duration(len(qs))
	res.SearchP50 = histQuantile(lat, 0.50)
	res.SearchP99 = histQuantile(lat, 0.99)
	res.NsPerDoc = float64(res.SearchMean) / float64(numDocs)
	res.Comparisons = float64(server.Costs.Snapshot().BinaryComparisons-cmpsBefore) / float64(len(qs))
	res.Matches = float64(matches) / float64(len(qs))
	res.RSSMB = readRSSMB()
	return res, nil
}

// latencyHist buckets per-query latencies at 10 µs resolution up to 1 s —
// wide enough that a million-document Zipf tail query (tens to hundreds of
// milliseconds) lands in a real bucket instead of saturating the top one.
func latencyHist() *histogram.Histogram { return histogram.New(0, 1_000_000, 10) }

// histQuantile converts a microsecond-bucketed quantile to a Duration.
func histQuantile(h *histogram.Histogram, q float64) time.Duration {
	return time.Duration(h.Quantile(q) * float64(time.Microsecond))
}

// readRSSMB returns the process's resident set size in MiB from
// /proc/self/status, falling back to the Go heap footprint where procfs is
// unavailable (macOS), and 0 if neither can be read.
func readRSSMB() float64 {
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if !strings.HasPrefix(line, "VmRSS:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseFloat(fields[1], 64); err == nil {
					return kb / 1024
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapSys) / (1 << 20)
}

// Format renders the sweep. The "search:" line is stable machine-readable
// output (CI extracts ns/doc from it).
func (r *MillionResult) Format() string {
	var b strings.Builder
	dist := "uniform"
	if r.Zipf {
		dist = "Zipf"
	}
	fmt.Fprintf(&b, "Million-document sweep — %d docs, %d shards / %d workers, η=%d, r=%d, %s keywords\n",
		r.Docs, r.Shards, r.Workers, r.Eta, r.R, dist)
	fmt.Fprintf(&b, "build:  %d docs in %.1fs (%.1f µs/doc)\n",
		r.Docs, r.BuildTime.Seconds(), float64(r.BuildPerDoc)/float64(time.Microsecond))
	fmt.Fprintf(&b, "search: tau=10 queries=%d mean %.3fms p50 %.3fms p99 %.3fms ns/doc %.2f cmps/query %.0f matches/query %.1f\n",
		r.Queries,
		float64(r.SearchMean)/float64(time.Millisecond),
		float64(r.SearchP50)/float64(time.Millisecond),
		float64(r.SearchP99)/float64(time.Millisecond),
		r.NsPerDoc, r.Comparisons, r.Matches)
	fmt.Fprintf(&b, "memory: %.1f MB RSS\n", r.RSSMB)
	return b.String()
}
