package experiments

import (
	"fmt"
	"sort"
	"strings"

	"mkse/internal/corpus"
)

// ConfidenceResult quantifies the Section 6 adversary: given two query
// indices, decide whether they were generated from the same search terms.
// The paper reads ≈0.6 confidence off the Figure 2(b) histogram when the
// number of terms is known; here the optimal distance-threshold classifier
// is evaluated exactly, for both threat models.
type ConfidenceResult struct {
	Pairs int
	// UnknownCount is the adversary accuracy when query sizes vary over 2–6
	// terms (the Figure 2(a) threat model); 0.5 = random guessing.
	UnknownCount     float64
	UnknownThreshold int
	// KnownCount is the accuracy when the adversary knows both queries hold
	// 5 terms (the Figure 2(b) threat model; paper: ≈0.6).
	KnownCount     float64
	KnownThreshold int
}

// AdversaryConfidence builds labeled pairs of randomized query indices —
// half from identical search terms, half from disjoint ones — and finds the
// Hamming-distance threshold maximizing classification accuracy, for the
// unknown-term-count and known-term-count settings.
func AdversaryConfidence(pairs int, seed int64) (*ConfidenceResult, error) {
	owner, err := newExperimentOwner(nil, seed)
	if err != nil {
		return nil, err
	}
	f := newQueryFactory(owner, seed+1)
	dict := corpus.Dictionary(4000)
	pick := func(n int) []string {
		out := make([]string, n)
		for i, idx := range f.rng.Perm(len(dict))[:n] {
			out[i] = dict[idx]
		}
		return out
	}

	collect := func(termCount func(i int) int) (same, diff []int) {
		for i := 0; i < pairs; i++ {
			n := termCount(i)
			words := pick(n)
			same = append(same, f.build(words).Hamming(f.build(words)))
			diff = append(diff, f.build(pick(n)).Hamming(f.build(pick(n+i%2))))
		}
		return same, diff
	}

	res := &ConfidenceResult{Pairs: pairs}
	same, diffD := collect(func(i int) int { return 2 + i%5 })
	res.UnknownCount, res.UnknownThreshold = bestThreshold(same, diffD)
	same, diffD = collect(func(int) int { return 5 })
	res.KnownCount, res.KnownThreshold = bestThreshold(same, diffD)
	return res, nil
}

// bestThreshold returns the accuracy and cut of the optimal rule
// "same iff distance < t" over the labeled samples.
func bestThreshold(same, diff []int) (accuracy float64, threshold int) {
	// Candidate cuts: every observed distance value.
	cands := make(map[int]bool)
	for _, d := range same {
		cands[d] = true
		cands[d+1] = true
	}
	for _, d := range diff {
		cands[d] = true
		cands[d+1] = true
	}
	cuts := make([]int, 0, len(cands))
	for c := range cands {
		cuts = append(cuts, c)
	}
	sort.Ints(cuts)
	total := float64(len(same) + len(diff))
	best, bestCut := 0.0, 0
	for _, t := range cuts {
		correct := 0
		for _, d := range same {
			if d < t {
				correct++
			}
		}
		for _, d := range diff {
			if d >= t {
				correct++
			}
		}
		if acc := float64(correct) / total; acc > best {
			best, bestCut = acc, t
		}
	}
	return best, bestCut
}

// Format renders the confidence comparison.
func (r *ConfidenceResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 6 — adversary confidence in linking same-term queries (%d pairs/setting)\n", r.Pairs)
	fmt.Fprintf(&b, "%-38s %8s %10s %10s\n", "threat model", "paper", "measured", "threshold")
	fmt.Fprintf(&b, "%-38s %8s %9.1f%% %10d\n", "term count unknown (Fig. 2a)", "~random", 100*r.UnknownCount, r.UnknownThreshold)
	fmt.Fprintf(&b, "%-38s %8s %9.1f%% %10d\n", "term count known = 5 (Fig. 2b)", "≈60%", 100*r.KnownCount, r.KnownThreshold)
	b.WriteString("(exact-process simulation; the paper's Eq. 5 model understates the known-count\n")
	b.WriteString(" adversary — keeping the term count secret is load-bearing, as the paper says)\n")
	return b.String()
}
