package experiments

import (
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/durable"
	"mkse/internal/harness"
	"mkse/internal/rank"
	"mkse/internal/service"
)

// ---------------------------------------------------------------------------
// WAL-shipping replication — follower catch-up and read fan-out (ISSUE 4)
// ---------------------------------------------------------------------------

// ReplicationPoint is one corpus-size measurement of the replication
// subsystem: how fast fresh followers drain a primary's write-ahead log
// over TCP, and how a client's read traffic spreads once they converge.
type ReplicationPoint struct {
	NumDocs  int   // uploads logged on the primary
	Deletes  int   // deletes logged on top
	WALBytes int64 // size of the shipped log

	CatchupOps int           // records each follower replayed
	Catchup    time.Duration // until every follower converged
	OpsPerSec  float64       // aggregate records/s across followers
	MBPerSec   float64       // aggregate log MB/s across followers

	PrimaryOnly   time.Duration // client: query set against the primary alone
	Fanout        time.Duration // client: same query set across the replica set
	QueriesRun    int
	ReadsPrimary  uint64   // fan-out run: reads the primary answered
	ReadsReplicas []uint64 // fan-out run: reads per follower, in start order
}

// ReplicationResult is the replication sweep.
type ReplicationResult struct {
	Replicas int
	Points   []ReplicationPoint
}

// ReplicationSweep measures WAL-shipping replication at several corpus
// sizes. For each size it loads a durably backed primary over TCP, starts
// `replicas` fresh followers that stream the whole log (bootstrapping from
// a checkpoint when the log was pruned), times their catch-up, then enrolls
// a client and runs the same query set against the primary alone and fanned
// across the converged followers, reporting where the reads landed.
func ReplicationSweep(sizes []int, replicas, queries int, seed int64) (*ReplicationResult, error) {
	if replicas < 1 {
		replicas = 1
	}
	owner, err := newExperimentOwner(rank.DefaultLevels(3, 15), seed)
	if err != nil {
		return nil, err
	}
	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	docs, indices, err := experimentCorpus(owner, maxN, seed)
	if err != nil {
		return nil, err
	}

	res := &ReplicationResult{Replicas: replicas}
	for _, n := range sizes {
		pt, err := replicationPoint(owner, docs, indices, n, replicas, queries)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, *pt)
	}
	return res, nil
}

func replicationPoint(owner *core.Owner, docs []*corpus.Document, indices []*core.SearchIndex, n, replicas, queries int) (*ReplicationPoint, error) {
	p := owner.Params()

	// --- Primary: durable engine behind a TCP cloud daemon -----------------
	primary, pdir, err := harness.TempEngine(p)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(pdir)
	defer primary.Crash()
	psvc := &service.CloudService{Server: primary.Server(), Store: primary, WAL: primary, HeartbeatEvery: 20 * time.Millisecond}
	pl, paddr, err := harness.ServeOn(psvc.Serve)
	if err != nil {
		return nil, err
	}
	defer pl.Close()

	pt := &ReplicationPoint{NumDocs: n, QueriesRun: queries}
	payload := make([]byte, 64)
	for i := 0; i < n; i++ {
		doc := &core.EncryptedDocument{ID: docs[i].ID, Ciphertext: payload, EncKey: payload[:16]}
		if err := primary.Upload(indices[i], doc); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i += 10 {
		if err := primary.Delete(docs[i].ID); err != nil {
			return nil, err
		}
		pt.Deletes++
	}
	pt.WALBytes = primary.Stats().WALBytes
	pt.CatchupOps = n + pt.Deletes

	// --- Followers: stream the whole log, measure convergence --------------
	type fo struct {
		eng  *durable.Engine
		rep  *service.Replica
		svc  *service.CloudService
		l    net.Listener
		addr string
		dir  string
	}
	fos := make([]*fo, replicas)
	start := time.Now()
	for i := range fos {
		eng, dir, err := harness.TempEngine(p)
		if err != nil {
			return nil, err
		}
		rep := service.StartReplica(eng, paddr, nil)
		svc := &service.CloudService{Server: eng.Server(), WAL: eng, Replica: rep, HeartbeatEvery: 20 * time.Millisecond}
		l, addr, err := harness.ServeOn(svc.Serve)
		if err != nil {
			rep.Close()
			eng.Crash()
			os.RemoveAll(dir)
			return nil, err
		}
		fos[i] = &fo{eng: eng, rep: rep, svc: svc, l: l, addr: addr, dir: dir}
		defer func(f *fo) { f.l.Close(); f.rep.Close(); f.eng.Crash(); os.RemoveAll(f.dir) }(fos[i])
	}
	target := primary.Position()
	deadline := time.Now().Add(5 * time.Minute)
	for _, f := range fos {
		for f.eng.Position() < target {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("replication: follower stuck at %d of %d", f.eng.Position(), target)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	pt.Catchup = time.Since(start)
	if secs := pt.Catchup.Seconds(); secs > 0 {
		pt.OpsPerSec = float64(pt.CatchupOps*replicas) / secs
		pt.MBPerSec = float64(pt.WALBytes) / 1e6 * float64(replicas) / secs
	}

	// --- Client read fan-out ------------------------------------------------
	osvc := &service.OwnerService{Owner: owner}
	ol, oaddr, err := harness.ServeOn(osvc.Serve)
	if err != nil {
		return nil, err
	}
	defer ol.Close()

	// The owner is shared across sweep points; enroll a distinct user each time.
	client, err := service.Dial(fmt.Sprintf("replication-bench-%d", n), oaddr, paddr)
	if err != nil {
		return nil, err
	}
	defer client.Close()
	client.ReplicaProbeEvery = 250 * time.Millisecond

	// A small rotating query set over surviving documents; trapdoors are
	// warmed before timing so both runs pay identical owner-side costs.
	words := make([][]string, 8)
	for i := range words {
		words[i] = docs[(i*10+1)%n].Keywords()[:2]
	}
	for _, w := range words {
		if _, err := client.Search(w, 10); err != nil {
			return nil, err
		}
	}

	runQueries := func() (time.Duration, error) {
		start := time.Now()
		for i := 0; i < queries; i++ {
			if _, err := client.Search(words[i%len(words)], 10); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	if pt.PrimaryOnly, err = runQueries(); err != nil {
		return nil, err
	}
	addrs := make([]string, len(fos))
	for i, f := range fos {
		addrs[i] = f.addr
	}
	client.AddReadReplicas(addrs...)
	if pt.Fanout, err = runQueries(); err != nil {
		return nil, err
	}
	dist := client.ReadDistribution()
	// The warm-up ran before AddReadReplicas, so "primary" includes the
	// warm-up and the primary-only run; report only the fan-out run's share.
	pt.ReadsPrimary = dist["primary"] - uint64(queries) - uint64(len(words))
	for _, f := range fos {
		pt.ReadsReplicas = append(pt.ReadsReplicas, dist[f.addr])
	}
	return pt, nil
}

// Format renders the sweep as a table.
func (r *ReplicationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "WAL-shipping replication — catch-up & read fan-out (%d replicas)\n", r.Replicas)
	b.WriteString("#docs  +dels   wal-bytes  catchup-ops    catchup      ops/s     MB/s  primary-only    fan-out  reads(primary/replicas)\n")
	for _, p := range r.Points {
		reads := fmt.Sprintf("%d", p.ReadsPrimary)
		for _, rr := range p.ReadsReplicas {
			reads += fmt.Sprintf("/%d", rr)
		}
		fmt.Fprintf(&b, "%6d %6d %11d %12d %9.3fms %10.0f %8.1f %11.3fms %9.3fms  %s\n",
			p.NumDocs, p.Deletes, p.WALBytes, p.CatchupOps,
			float64(p.Catchup)/float64(time.Millisecond),
			p.OpsPerSec, p.MBPerSec,
			float64(p.PrimaryOnly)/float64(time.Millisecond),
			float64(p.Fanout)/float64(time.Millisecond),
			reads)
	}
	return b.String()
}
