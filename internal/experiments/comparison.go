package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"mkse/internal/analysis"
	"mkse/internal/baseline/caomrse"
	"mkse/internal/baseline/wangcsi"
	"mkse/internal/bitindex"
	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/rank"
)

// ---------------------------------------------------------------------------
// Section 8.1 — comparison against Cao et al. MRSE
// ---------------------------------------------------------------------------

// CaoPoint is one corpus-size measurement for both schemes.
type CaoPoint struct {
	NumDocs       int
	MKSBuild      time.Duration // total index construction
	MRSEBuild     time.Duration
	MKSSearch     time.Duration // per query
	MRSESearch    time.Duration
	BuildSpeedup  float64 // MRSE / MKS
	SearchSpeedup float64
}

// CaoResult is the Section 8.1 sweep.
type CaoResult struct {
	DictSize int
	Points   []CaoPoint
}

// CaoComparison reproduces the Section 8.1 head-to-head: index construction
// and per-query search time for MKS (η = 5, as in the paper's "highest rank
// level" figure) versus Cao et al. MRSE_I, on the same machine and corpus.
// dictSize is the MRSE dictionary size n — the paper's complaint is
// precisely that MRSE costs scale with n (matrices "in the order of several
// thousands"); pass a smaller n for quick runs and scale up to see the gap
// widen.
func CaoComparison(sizes []int, dictSize, queriesPerPoint int, seed int64) (*CaoResult, error) {
	dict := corpus.Dictionary(dictSize)
	mrse, err := caomrse.New(dict, seed)
	if err != nil {
		return nil, err
	}
	owner, err := newExperimentOwner(rank.DefaultLevels(5, 15), seed)
	if err != nil {
		return nil, err
	}
	f := newQueryFactory(owner, seed+9)
	res := &CaoResult{DictSize: dictSize}

	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: maxN, KeywordsPerDoc: 20, Dictionary: dict,
		MaxTermFreq: 15, Seed: seed,
	})
	if err != nil {
		return nil, err
	}

	for _, n := range sizes {
		pt := CaoPoint{NumDocs: n}

		// MKS index construction.
		start := time.Now()
		mksIndices := make([]*core.SearchIndex, n)
		for i := 0; i < n; i++ {
			si, err := owner.BuildIndex(docs[i])
			if err != nil {
				return nil, err
			}
			mksIndices[i] = si
		}
		pt.MKSBuild = time.Since(start)

		// MRSE index construction.
		start = time.Now()
		mrseIndices := make([]*caomrse.Index, n)
		for i := 0; i < n; i++ {
			mrseIndices[i] = mrse.BuildIndex(docs[i])
		}
		pt.MRSEBuild = time.Since(start)

		// Queries drawn from document keywords.
		words := docs[0].Keywords()[:3]

		// MKS search. Pinned to one shard/worker: the paper's numbers (and
		// the MRSE baseline) are sequential scans, so the comparison must
		// not be inflated by the engine's parallel fan-out.
		server, err := core.NewServerSharded(owner.Params(), 1, 1)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if err := server.Upload(mksIndices[i], &core.EncryptedDocument{ID: mksIndices[i].DocID, Ciphertext: []byte{0}, EncKey: []byte{0}}); err != nil {
				return nil, err
			}
		}
		q := f.build(words)
		start = time.Now()
		for i := 0; i < queriesPerPoint; i++ {
			if _, err := server.Search(q); err != nil {
				return nil, err
			}
		}
		pt.MKSSearch = time.Since(start) / time.Duration(queriesPerPoint)

		// MRSE search.
		td, err := mrse.Trapdoor(words)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		for i := 0; i < queriesPerPoint; i++ {
			caomrse.Search(mrseIndices, td, 10)
		}
		pt.MRSESearch = time.Since(start) / time.Duration(queriesPerPoint)

		if pt.MKSBuild > 0 {
			pt.BuildSpeedup = float64(pt.MRSEBuild) / float64(pt.MKSBuild)
		}
		if pt.MKSSearch > 0 {
			pt.SearchSpeedup = float64(pt.MRSESearch) / float64(pt.MKSSearch)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Format renders the Section 8.1 comparison.
func (r *CaoResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 8.1 — MKS vs Cao et al. MRSE_I (dictionary n=%d; paper at n≈4000, 6000 docs: build 60s vs 4500s = 75x, search 1.5ms vs 600ms = 400x)\n", r.DictSize)
	b.WriteString("#docs   MKS build  MRSE build   speedup   MKS search  MRSE search   speedup\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d %10.3fs %10.3fs %8.1fx %11.4fms %11.3fms %8.1fx\n",
			p.NumDocs,
			p.MKSBuild.Seconds(), p.MRSEBuild.Seconds(), p.BuildSpeedup,
			float64(p.MKSSearch)/float64(time.Millisecond),
			float64(p.MRSESearch)/float64(time.Millisecond),
			p.SearchSpeedup)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Section 6 analytics — model vs Monte-Carlo
// ---------------------------------------------------------------------------

// AnalyticsRow compares F(x) (and the derived expected Hamming distance)
// against simulation.
type AnalyticsRow struct {
	X          int
	FModel     float64
	FSimulated float64
}

// AnalyticsResult validates the Section 6 model on real trapdoors.
type AnalyticsResult struct {
	Rows           []AnalyticsRow
	EOModel        float64 // V/2
	DeltaSameModel float64 // Δ for identical keyword sets (x̄ = x case of Eq. 5)
	DeltaDiffModel float64 // Δ for disjoint genuine keywords
}

// Analytics measures mean zero counts of real x-keyword query indices
// against F(x) and reports the Equation 5/6 model values at the paper's
// V = 30, U = 60 operating point.
func Analytics(trials int, seed int64) (*AnalyticsResult, error) {
	owner, err := newExperimentOwner(nil, seed)
	if err != nil {
		return nil, err
	}
	p := owner.Params()
	model, err := analysis.NewModel(p.R, p.D)
	if err != nil {
		return nil, err
	}
	dict := corpus.Dictionary(5000)
	f := newQueryFactory(owner, seed+4)
	res := &AnalyticsResult{}
	for _, x := range []int{1, 2, 5, 10, 30, 35} {
		total := 0
		for tr := 0; tr < trials; tr++ {
			q := bitindex.NewOnes(p.R)
			for _, idx := range f.rng.Perm(len(dict))[:x] {
				q.AndInto(owner.Trapdoor(dict[idx]))
			}
			total += q.ZerosCount()
		}
		res.Rows = append(res.Rows, AnalyticsRow{
			X:          x,
			FModel:     model.F(x),
			FSimulated: float64(total) / float64(trials),
		})
	}
	res.EOModel = analysis.ExpectedOverlap(p.U, p.V)
	x := 5 + p.V
	res.DeltaSameModel = model.ExpectedHamming(x, 5+int(res.EOModel))
	res.DeltaDiffModel = model.ExpectedHamming(x, int(res.EOModel))
	return res, nil
}

// Format renders the analytics comparison.
func (r *AnalyticsResult) Format() string {
	var b strings.Builder
	b.WriteString("Section 6 — analytic model vs simulation (r=448, d=6)\n")
	b.WriteString("x (keywords)   F(x) model   F(x) simulated\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%12d %12.2f %16.2f\n", row.X, row.FModel, row.FSimulated)
	}
	fmt.Fprintf(&b, "expected random-keyword overlap EO = %.1f (Eq. 6: V/2 = 15)\n", r.EOModel)
	fmt.Fprintf(&b, "expected distance, same genuine keywords  (5 terms): %.1f\n", r.DeltaSameModel)
	fmt.Fprintf(&b, "expected distance, diff genuine keywords (5 terms): %.1f\n", r.DeltaDiffModel)
	return b.String()
}

// ---------------------------------------------------------------------------
// Theorem 3 — trapdoor forgery bound
// ---------------------------------------------------------------------------

// Theorem3Result carries the forgery-probability bound.
type Theorem3Result struct {
	Bound     float64
	BoundBits float64
}

// Theorem3 evaluates the Equation 7 bound at the paper's parameters.
func Theorem3() (*Theorem3Result, error) {
	model, err := analysis.NewModel(448, 6)
	if err != nil {
		return nil, err
	}
	p := model.TrapdoorForgeryBound(30)
	return &Theorem3Result{Bound: p, BoundBits: -math.Log2(p)}, nil
}

// Format renders the Theorem 3 evaluation.
func (r *Theorem3Result) Format() string {
	return fmt.Sprintf("Theorem 3 — trapdoor forgery bound: P(vT) < 2^-%.1f (paper's estimate: ≈ 2^-9; exact binomials are stronger)\n", r.BoundBits)
}

// ---------------------------------------------------------------------------
// Section 4.1 — brute-force attack on the keyless baseline
// ---------------------------------------------------------------------------

// AttackResult contrasts the keyless Wang et al. scheme with MKS under the
// dictionary attack.
type AttackResult struct {
	DictSize         int
	KeylessRecovered bool
	KeylessTrials    int
	MKSRecovered     bool
	MKSCandidates    int
	PairBits         float64 // log2 of the 2-keyword search space at 25000 words
}

// BruteForceAttack runs the Section 4.1 attack: recover a single-keyword
// query from its index by dictionary enumeration. Against the keyless
// common-secure-index it succeeds; against MKS (secret bin keys) the same
// adversary — who knows the GetBin hash and the reduction but not the HMAC
// keys — finds nothing.
func BruteForceAttack(dictSize int, seed int64) (*AttackResult, error) {
	dict := corpus.Dictionary(dictSize)
	secret := dict[dictSize/3]
	res := &AttackResult{DictSize: dictSize, PairBits: analysis.BruteForceTrials(25000, 2)}

	// Keyless scheme: shared hash known to the adversary.
	keyless := wangcsi.New(448, 6)
	q := keyless.BuildIndex([]string{secret})
	att := keyless.BruteForceSingle(q, dict)
	res.KeylessTrials = att.Trials
	for _, c := range att.Candidates {
		if c == secret {
			res.KeylessRecovered = true
		}
	}

	// MKS: same adversary tooling, but the real index was built under the
	// owner's secret bin key.
	owner, err := newExperimentOwner(nil, seed)
	if err != nil {
		return nil, err
	}
	mksIndex := owner.Trapdoor(secret)
	att2 := keyless.BruteForceSingle(mksIndex, dict)
	res.MKSCandidates = len(att2.Candidates)
	for _, c := range att2.Candidates {
		if c == secret {
			res.MKSRecovered = true
		}
	}
	return res, nil
}

// Format renders the attack comparison.
func (r *AttackResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 4.1 — brute-force attack (dictionary: %d words)\n", r.DictSize)
	fmt.Fprintf(&b, "keyless Wang et al. [14] index: keyword recovered = %v in %d trials\n", r.KeylessRecovered, r.KeylessTrials)
	fmt.Fprintf(&b, "MKS index (secret bin keys):   keyword recovered = %v (%d spurious candidates)\n", r.MKSRecovered, r.MKSCandidates)
	fmt.Fprintf(&b, "2-keyword search space at 25000 words: 2^%.1f pairs (paper: \"approximately 2^27 trials\")\n", r.PairBits)
	return b.String()
}
