package experiments

import (
	"fmt"
	"strings"
	"time"

	"mkse/internal/bitindex"
	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/rank"
)

// ---------------------------------------------------------------------------
// Sharded search engine — scaling beyond the paper's sequential scan
// ---------------------------------------------------------------------------

// ShardPoint is one corpus-size measurement of the sharded search engine.
type ShardPoint struct {
	NumDocs      int
	SingleShard  time.Duration // per query, 1 shard / 1 worker
	Sharded      time.Duration // per query, the configured shard layout
	ShardedP50   time.Duration // per-query latency median, sharded layout
	ShardedP99   time.Duration // per-query latency 99th percentile, sharded layout
	PerDoc       float64       // sharded ns per query per stored document
	Comparisons  float64       // r-bit binary comparisons per query (Table 2 accounting)
	Sequential   time.Duration // batch of queries issued one Search at a time
	Batched      time.Duration // same batch through one SearchBatch pass
	ShardSpeedup float64       // SingleShard / Sharded
	BatchSpeedup float64       // Sequential / Batched
}

// ShardSweepResult is the shard/batch scaling sweep.
type ShardSweepResult struct {
	Shards  int
	Workers int
	Batch   int
	Points  []ShardPoint
}

// ShardSweep measures ranked-search latency with the store split into the
// given number of shards against the single-shard (sequential-scan)
// configuration, and a batch of queries evaluated in one SearchBatch pass
// against the same queries issued sequentially. Results of the two layouts
// are defined to be identical; this sweep quantifies the wall-clock side.
// shards/workers <= 0 pick the defaults (one shard per core). batch is the
// number of queries per SearchBatch call.
func ShardSweep(sizes []int, shards, workers, queries, batch int, seed int64) (*ShardSweepResult, error) {
	if queries <= 0 {
		queries = 10
	}
	if batch <= 0 {
		batch = 16
	}
	owner, err := newExperimentOwner(rank.DefaultLevels(3, 15), seed)
	if err != nil {
		return nil, err
	}
	f := newQueryFactory(owner, seed+31)

	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	docs, indices, err := experimentCorpus(owner, maxN, seed)
	if err != nil {
		return nil, err
	}

	single, err := core.NewServerSharded(owner.Params(), 1, 1)
	if err != nil {
		return nil, err
	}
	sharded, err := core.NewServerSharded(owner.Params(), shards, workers)
	if err != nil {
		return nil, err
	}
	res := &ShardSweepResult{Shards: sharded.NumShards(), Workers: sharded.NumWorkers(), Batch: batch}

	uploaded := 0
	for _, n := range sizes {
		for ; uploaded < n && uploaded < len(docs); uploaded++ {
			doc := &core.EncryptedDocument{ID: docs[uploaded].ID, Ciphertext: []byte{0}, EncKey: []byte{0}}
			if err := single.Upload(indices[uploaded], doc); err != nil {
				return nil, err
			}
			if err := sharded.Upload(indices[uploaded], doc); err != nil {
				return nil, err
			}
		}
		qs := make([]*bitindex.Vector, batch)
		for i := range qs {
			qs[i] = f.build(docs[i%n].Keywords()[:2])
		}
		pt := ShardPoint{NumDocs: n}

		start := time.Now()
		for i := 0; i < queries; i++ {
			if _, err := single.SearchTop(qs[i%batch], 10); err != nil {
				return nil, err
			}
		}
		pt.SingleShard = time.Since(start) / time.Duration(queries)

		cmpsBefore := sharded.Costs.Snapshot().BinaryComparisons
		lat := latencyHist()
		start = time.Now()
		for i := 0; i < queries; i++ {
			qStart := time.Now()
			if _, err := sharded.SearchTop(qs[i%batch], 10); err != nil {
				return nil, err
			}
			lat.Add(int(time.Since(qStart) / time.Microsecond))
		}
		pt.Sharded = time.Since(start) / time.Duration(queries)
		pt.ShardedP50 = histQuantile(lat, 0.50)
		pt.ShardedP99 = histQuantile(lat, 0.99)
		pt.PerDoc = float64(pt.Sharded) / float64(n)
		pt.Comparisons = float64(sharded.Costs.Snapshot().BinaryComparisons-cmpsBefore) / float64(queries)

		start = time.Now()
		for _, q := range qs {
			if _, err := sharded.SearchTop(q, 10); err != nil {
				return nil, err
			}
		}
		pt.Sequential = time.Since(start)

		start = time.Now()
		if _, err := sharded.SearchBatch(qs, 10); err != nil {
			return nil, err
		}
		pt.Batched = time.Since(start)

		if pt.Sharded > 0 {
			pt.ShardSpeedup = float64(pt.SingleShard) / float64(pt.Sharded)
		}
		if pt.Batched > 0 {
			pt.BatchSpeedup = float64(pt.Sequential) / float64(pt.Batched)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// experimentCorpus generates maxN documents and their search indices.
func experimentCorpus(owner *core.Owner, maxN int, seed int64) ([]*corpus.Document, []*core.SearchIndex, error) {
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: maxN, KeywordsPerDoc: 20, Dictionary: corpus.Dictionary(2000),
		MaxTermFreq: 15, Seed: seed,
	})
	if err != nil {
		return nil, nil, err
	}
	indices, err := owner.BuildIndexes(docs, 0)
	if err != nil {
		return nil, nil, err
	}
	return docs, indices, nil
}

// Format renders the sweep as a table.
func (r *ShardSweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded search engine — %d shards / %d workers, batch of %d queries (τ=10)\n", r.Shards, r.Workers, r.Batch)
	b.WriteString("#docs   1-shard/query  sharded/query        p50        p99  speedup   ns/doc  cmps/query   sequential batch  SearchBatch   speedup\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d %11.4fms %13.4fms %8.3fms %8.3fms %8.2fx %8.1f %11.0f %14.4fms %11.4fms %8.2fx\n",
			p.NumDocs,
			float64(p.SingleShard)/float64(time.Millisecond),
			float64(p.Sharded)/float64(time.Millisecond),
			float64(p.ShardedP50)/float64(time.Millisecond),
			float64(p.ShardedP99)/float64(time.Millisecond),
			p.ShardSpeedup,
			p.PerDoc,
			p.Comparisons,
			float64(p.Sequential)/float64(time.Millisecond),
			float64(p.Batched)/float64(time.Millisecond),
			p.BatchSpeedup)
	}
	return b.String()
}
