package experiments

import (
	"fmt"
	"os"
	"strings"
	"time"

	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/durable"
	"mkse/internal/rank"
)

// ---------------------------------------------------------------------------
// Durable storage engine — WAL replay and checkpoint cost (ISSUE 3)
// ---------------------------------------------------------------------------

// RecoveryPoint is one corpus-size measurement of the durable engine: the
// cost of logging mutations, the throughput of crash recovery (WAL replay),
// and how long a live checkpoint pauses the mutation stream.
type RecoveryPoint struct {
	NumDocs  int   // uploads logged
	Deletes  int   // deletes logged on top
	WALBytes int64 // bytes the operations occupy in the log

	UploadPerOp time.Duration // logged upload latency, fsync=never

	ReplayOps  int           // operations replayed at recovery
	Replay     time.Duration // pure replay time within Open
	DocsPerSec float64       // replayed operations per second
	MBPerSec   float64       // replayed log bytes per second

	CheckpointPause time.Duration // mutation-stream pause during the cut
	CheckpointWrite time.Duration // full serialization time (overlaps service)
	CleanOpen       time.Duration // reopen from the checkpoint, replay-free
}

// RecoveryResult is the crash-recovery sweep.
type RecoveryResult struct {
	Fsync  string
	Points []RecoveryPoint
}

// RecoverySweep measures the durable engine at several corpus sizes. For
// each size it logs uploads (plus one delete per ten uploads) through a
// fresh engine with fsync disabled, simulates a power cut, times recovery
// from the bare WAL, verifies the recovered state answers a query exactly
// like a never-crashed in-memory server, then takes a checkpoint and times
// the replay-free reopen.
func RecoverySweep(sizes []int, seed int64) (*RecoveryResult, error) {
	owner, err := newExperimentOwner(rank.DefaultLevels(3, 15), seed)
	if err != nil {
		return nil, err
	}
	f := newQueryFactory(owner, seed+31)

	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	docs, indices, err := experimentCorpus(owner, maxN, seed)
	if err != nil {
		return nil, err
	}

	res := &RecoveryResult{Fsync: durable.FsyncNever.String()}
	for _, n := range sizes {
		pt, err := recoveryPoint(owner.Params(), docs, indices, n, f)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, *pt)
	}
	return res, nil
}

func recoveryPoint(p core.Params, docs []*corpus.Document, indices []*core.SearchIndex, n int, f *queryFactory) (*RecoveryPoint, error) {
	dir, err := os.MkdirTemp("", "mkse-recovery-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	eng, err := durable.Open(dir, p, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		return nil, err
	}
	// The reference server never crashes; the recovered engine must agree
	// with it.
	ref, err := core.NewServer(p)
	if err != nil {
		return nil, err
	}

	payload := make([]byte, 64)
	enc := make([]*core.EncryptedDocument, n)
	for i := range enc {
		enc[i] = &core.EncryptedDocument{ID: docs[i].ID, Ciphertext: payload, EncKey: payload[:16]}
	}

	pt := &RecoveryPoint{NumDocs: n}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := eng.Upload(indices[i], enc[i]); err != nil {
			return nil, err
		}
	}
	pt.UploadPerOp = time.Since(start) / time.Duration(n)
	for i := 0; i < n; i++ {
		if err := ref.Upload(indices[i], enc[i]); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i += 10 {
		if err := eng.Delete(docs[i].ID); err != nil {
			return nil, err
		}
		if err := ref.Delete(docs[i].ID); err != nil {
			return nil, err
		}
		pt.Deletes++
	}
	if err := eng.Sync(); err != nil {
		return nil, err
	}
	pt.WALBytes = eng.Stats().WALBytes
	eng.Crash() // power cut: recovery must come from the log alone

	re, err := durable.Open(dir, p, durable.Options{})
	if err != nil {
		return nil, fmt.Errorf("recovering %d-doc WAL: %w", n, err)
	}
	st := re.Stats()
	pt.ReplayOps = st.ReplayedOps
	pt.Replay = st.ReplayTime
	if secs := st.ReplayTime.Seconds(); secs > 0 {
		pt.DocsPerSec = float64(st.ReplayedOps) / secs
		pt.MBPerSec = float64(st.ReplayedBytes) / 1e6 / secs
	}

	// Agreement check: the recovered server and the never-crashed reference
	// return identical results (docs[0] was deleted; query a survivor).
	q := f.build(docs[1].Keywords()[:2])
	got, err := re.Server().SearchTop(q, 10)
	if err != nil {
		return nil, err
	}
	want, err := ref.SearchTop(q, 10)
	if err != nil {
		return nil, err
	}
	if len(got) != len(want) {
		return nil, fmt.Errorf("recovery disagreement at %d docs: %d matches vs %d", n, len(got), len(want))
	}
	for i := range want {
		if got[i].DocID != want[i].DocID || got[i].Rank != want[i].Rank {
			return nil, fmt.Errorf("recovery disagreement at %d docs, match %d: (%s,%d) vs (%s,%d)",
				n, i, got[i].DocID, got[i].Rank, want[i].DocID, want[i].Rank)
		}
	}

	if err := re.Checkpoint(); err != nil {
		return nil, err
	}
	st = re.Stats()
	pt.CheckpointPause = st.LastCheckpointPause
	pt.CheckpointWrite = st.LastCheckpointWrite
	re.Crash()

	start = time.Now()
	re2, err := durable.Open(dir, p, durable.Options{})
	if err != nil {
		return nil, err
	}
	pt.CleanOpen = time.Since(start)
	if got := re2.Stats().ReplayedOps; got != 0 {
		return nil, fmt.Errorf("clean reopen replayed %d ops", got)
	}
	re2.Crash()
	return pt, nil
}

// Format renders the sweep as a table.
func (r *RecoveryResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Durable storage engine — WAL replay & checkpoint (fsync=%s while loading)\n", r.Fsync)
	b.WriteString("#docs  +dels   wal-bytes  upload/op   replay-ops     replay      docs/s     MB/s  ckpt-pause  ckpt-write  clean-open\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d %6d %11d %9.2fµs %12d %9.3fms %11.0f %8.1f %9.3fms %9.3fms %9.3fms\n",
			p.NumDocs, p.Deletes, p.WALBytes,
			float64(p.UploadPerOp)/float64(time.Microsecond),
			p.ReplayOps,
			float64(p.Replay)/float64(time.Millisecond),
			p.DocsPerSec, p.MBPerSec,
			float64(p.CheckpointPause)/float64(time.Millisecond),
			float64(p.CheckpointWrite)/float64(time.Millisecond),
			float64(p.CleanOpen)/float64(time.Millisecond))
	}
	return b.String()
}
