package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"mkse/internal/core"
	"mkse/internal/protocol"
	"mkse/internal/rank"
	"mkse/internal/service"
)

// ---------------------------------------------------------------------------
// Query-result cache — cold vs warm vs mutate-invalidate (ISSUE 5)
// ---------------------------------------------------------------------------

// CachePoint is one corpus-size measurement of the query-result cache.
type CachePoint struct {
	NumDocs int

	Uncached   time.Duration // per query, cache disabled (the full arena scan)
	Cold       time.Duration // per query, cache enabled but empty (miss + fill)
	Warm       time.Duration // per query, repeated queries (all hits)
	Invalidate time.Duration // per query with a mutation landing before each one

	WarmSpeedup float64 // Uncached / Warm
	Hits        uint64  // cache counters at the end of the point
	Misses      uint64
	Invalid     uint64
}

// CacheSweepResult is the cache sweep across corpus sizes.
type CacheSweepResult struct {
	CacheMB int
	Queries int
	Points  []CachePoint
}

// CacheSweep measures the query-result cache through the same wire-level
// entry points the TCP daemon serves (service.CloudService.SearchWire):
// the uncached scan, the cold pass that fills the cache, the warm pass
// that repeats the identical queries, and an invalidation-heavy pass where
// a mutation (an in-place re-upload, so results stay comparable) bumps the
// epoch before every query. Every warm result is checked byte-identical to
// its uncached counterpart before any timing is reported — a cache that
// ever served a stale or wrong result fails the sweep instead of
// graduating into EXPERIMENTS.md.
func CacheSweep(sizes []int, cacheMB, queries int, seed int64) (*CacheSweepResult, error) {
	if queries <= 0 {
		queries = 25
	}
	if cacheMB <= 0 {
		cacheMB = 64
	}
	owner, err := newExperimentOwner(rank.DefaultLevels(3, 15), seed)
	if err != nil {
		return nil, err
	}
	f := newQueryFactory(owner, seed+67)

	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	docs, indices, err := experimentCorpus(owner, maxN, seed)
	if err != nil {
		return nil, err
	}

	server, err := core.NewServer(owner.Params())
	if err != nil {
		return nil, err
	}
	svc := &service.CloudService{Server: server}
	res := &CacheSweepResult{CacheMB: cacheMB, Queries: queries}

	uploadTo := func(i int) error {
		doc := &core.EncryptedDocument{ID: docs[i].ID, Ciphertext: []byte{0}, EncKey: []byte{0}}
		return server.Upload(indices[i], doc)
	}

	uploaded := 0
	for _, n := range sizes {
		for ; uploaded < n && uploaded < len(docs); uploaded++ {
			if err := uploadTo(uploaded); err != nil {
				return nil, err
			}
		}
		reqs := make([]*protocol.SearchRequest, queries)
		for i := range reqs {
			q := f.build(docs[i%n].Keywords()[:2])
			raw, err := q.MarshalBinary()
			if err != nil {
				return nil, err
			}
			reqs[i] = &protocol.SearchRequest{Query: raw, TopK: 10}
		}
		pt := CachePoint{NumDocs: n}

		// Uncached baseline: the path a daemon without -cache-mb serves.
		svc.Cache = nil
		truth := make([]*protocol.SearchResponse, queries)
		start := time.Now()
		for i, req := range reqs {
			if truth[i], err = svc.SearchWire(req); err != nil {
				return nil, err
			}
		}
		pt.Uncached = time.Since(start) / time.Duration(queries)

		// Cold: fresh cache, every query misses and fills.
		svc.Cache = service.NewResultCache(int64(cacheMB) << 20)
		start = time.Now()
		for _, req := range reqs {
			if _, err := svc.SearchWire(req); err != nil {
				return nil, err
			}
		}
		pt.Cold = time.Since(start) / time.Duration(queries)

		// Agreement check (untimed): every cached result must be
		// byte-identical to the uncached scan before any warm number is
		// reported.
		for i, req := range reqs {
			resp, err := svc.SearchWire(req)
			if err != nil {
				return nil, err
			}
			if !reflect.DeepEqual(resp.Matches, truth[i].Matches) {
				return nil, fmt.Errorf("cache sweep: warm result for query %d differs from the uncached scan at %d docs", i, n)
			}
		}

		// Warm: identical queries again, all hits.
		start = time.Now()
		for _, req := range reqs {
			if _, err := svc.SearchWire(req); err != nil {
				return nil, err
			}
		}
		pt.Warm = time.Since(start) / time.Duration(queries)

		// Mutate-invalidate: an in-place re-upload (same index, so results
		// stay byte-comparable) bumps the epoch before every query; each
		// search pays a full scan plus the invalidation bookkeeping.
		responses := make([]*protocol.SearchResponse, queries)
		start = time.Now()
		for i, req := range reqs {
			if err := uploadTo(i % n); err != nil {
				return nil, err
			}
			if responses[i], err = svc.SearchWire(req); err != nil {
				return nil, err
			}
		}
		pt.Invalidate = time.Since(start) / time.Duration(queries)
		for i, resp := range responses {
			if !reflect.DeepEqual(resp.Matches, truth[i].Matches) {
				return nil, fmt.Errorf("cache sweep: post-mutation result for query %d differs from the uncached scan at %d docs", i, n)
			}
		}

		if pt.Warm > 0 {
			pt.WarmSpeedup = float64(pt.Uncached) / float64(pt.Warm)
		}
		st := svc.Cache.Stats()
		pt.Hits, pt.Misses, pt.Invalid = st.Hits, st.Misses, st.Invalidations
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Format renders the sweep as a table.
func (r *CacheSweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Query-result cache — %d MiB budget, %d queries per pass (τ=10, η=3)\n", r.CacheMB, r.Queries)
	b.WriteString("#docs   uncached/query    cold/query    warm/query  warm-speedup  invalidate/query   hits misses invalidations\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d %13.4fms %12.4fms %12.4fms %12.1fx %16.4fms %6d %6d %13d\n",
			p.NumDocs,
			float64(p.Uncached)/float64(time.Millisecond),
			float64(p.Cold)/float64(time.Millisecond),
			float64(p.Warm)/float64(time.Millisecond),
			p.WarmSpeedup,
			float64(p.Invalidate)/float64(time.Millisecond),
			p.Hits, p.Misses, p.Invalid)
	}
	b.WriteString("warm pass agreement-checked byte-identical against the uncached scan; invalidate pass re-checks after every mutation\n")
	return b.String()
}
