package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"mkse/internal/bitindex"
)

// ---------------------------------------------------------------------------
// Match-kernel sweep — index layout and zero-word skipping (beyond the paper)
// ---------------------------------------------------------------------------

// KernelPoint measures the Equation-3 scan over one corpus with one query
// zero-count, under the three storage/kernel combinations the server has
// used across revisions.
type KernelPoint struct {
	ZeroBits    int     // zero bits in the query (the x of Section 6's F(x))
	ActiveWords int     // 64-bit words where ¬q ≠ 0 — all the skip kernel touches
	Matches     int     // documents matching the query
	Boxed       float64 // ns per document: boxed []*Vector scan, Matches per doc
	Arena       float64 // ns per document: flat columnar arena, dense word sweep
	Skip        float64 // ns per document: arena + zero-word-skipping kernel
	ArenaX      float64 // Boxed / Arena
	SkipX       float64 // Boxed / Skip
}

// KernelSweepResult is the layout/kernel comparison across query densities.
type KernelSweepResult struct {
	Docs    int
	R       int
	Stride  int // words per index row
	Queries int // queries timed per point
	Points  []KernelPoint
}

// KernelSweep times one full corpus scan per kernel across query zero-counts.
// Documents are random indices at the zero density of a paper-parameter
// document (20 genuine + U random keywords); queries are all-ones indices
// with the given number of random zero bits, spanning the single-trapdoor
// case (r/2^d ≈ 7 zeros, Section 6's F(1)) up to fully randomized
// multi-keyword queries where every word is active. Boxed is the seed
// layout: one heap-allocated Vector per document, pointer-chased per test.
// Arena lays every index back-to-back in one []uint64 and sweeps it
// linearly. Skip adds the Sparse preprocessing so only active words are
// touched. All three must agree on the match set (verified per point).
func KernelSweep(docs, r int, zeros []int, queries int, seed int64) (*KernelSweepResult, error) {
	if docs <= 0 {
		docs = 10000
	}
	if r <= 0 {
		r = 448
	}
	if queries <= 0 {
		queries = 8
	}
	if len(zeros) == 0 {
		zeros = []int{1, 2, 4, 7, 14, 28, 56, 112, 224}
	}
	rng := rand.New(rand.NewSource(seed))
	stride := bitindex.WordsFor(r)

	// Zero density of a document index that folded x keyword indices:
	// each bit survives as 1 with probability (1−2^−d)^x; x ≈ 80 under the
	// paper's defaults (20 genuine + U = 60 random keywords), d = 6.
	oneProb := 1.0
	for i := 0; i < 80; i++ {
		oneProb *= 1 - 1.0/64
	}
	boxed := make([]*bitindex.Vector, docs)
	arena := make([]uint64, 0, docs*stride)
	for i := range boxed {
		v := bitindex.New(r)
		for j := 0; j < r; j++ {
			if rng.Float64() < oneProb {
				v.SetBit(j, 1)
			}
		}
		boxed[i] = v
		arena = v.AppendTo(arena)
	}

	res := &KernelSweepResult{Docs: docs, R: r, Stride: stride, Queries: queries}
	matched := make([]bool, docs)
	var rows []int32
	for _, z := range zeros {
		if z > r {
			continue
		}
		qs := make([]*bitindex.Vector, queries)
		sqs := make([]*bitindex.Sparse, queries)
		for i := range qs {
			q := bitindex.NewOnes(r)
			for _, pos := range rng.Perm(r)[:z] {
				q.SetBit(pos, 0)
			}
			qs[i] = q
			sqs[i] = q.Sparsify()
		}
		pt := KernelPoint{ZeroBits: z, ActiveWords: sqs[0].ActiveWords()}

		boxedPass := func() int {
			m := 0
			for _, q := range qs {
				for _, v := range boxed {
					if v.Matches(q) {
						m++
					}
				}
			}
			return m
		}
		arenaPass := func() int {
			m := 0
			for _, q := range qs {
				// Dense arena sweep: every word of ¬q, no preprocessing.
				qw := q.Words()
				for base := 0; base < len(arena); base += stride {
					ok := true
					for wi, w := range arena[base : base+stride] {
						if w&^qw[wi] != 0 {
							ok = false
							break
						}
					}
					if ok {
						m++
					}
				}
			}
			return m
		}
		skipPass := func() int {
			m := 0
			for _, s := range sqs {
				rows = s.AppendMatchingRows(arena, stride, rows[:0])
				m += len(rows)
			}
			return m
		}

		boxedMatches, arenaMatches, skipMatches := boxedPass(), arenaPass(), skipPass()
		if boxedMatches != arenaMatches || boxedMatches != skipMatches {
			return nil, fmt.Errorf("kernel disagreement at %d zeros: boxed %d, arena %d, skip %d",
				z, boxedMatches, arenaMatches, skipMatches)
		}
		// The whole-arena kernel must agree with the boxed scan row by row.
		sqs[0].MatchArena(arena, stride, matched)
		for i, v := range boxed {
			if matched[i] != v.Matches(qs[0]) {
				return nil, fmt.Errorf("MatchArena disagreement at %d zeros, row %d", z, i)
			}
		}
		pt.Matches = boxedMatches / queries
		tests := float64(docs * queries)
		pt.Boxed = float64(timeKernel(boxedPass)) / tests
		pt.Arena = float64(timeKernel(arenaPass)) / tests
		pt.Skip = float64(timeKernel(skipPass)) / tests
		if pt.Arena > 0 {
			pt.ArenaX = pt.Boxed / pt.Arena
		}
		if pt.Skip > 0 {
			pt.SkipX = pt.Boxed / pt.Skip
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// kernelSink defeats dead-code elimination of the timed passes.
var kernelSink int

// timeKernel times one scan pass, repeating it until enough wall clock has
// accumulated (≥ 20 ms) for the per-document quotient to be stable.
func timeKernel(pass func() int) time.Duration {
	kernelSink += pass() // warmup
	iters := 0
	start := time.Now()
	var elapsed time.Duration
	for elapsed < 20*time.Millisecond {
		kernelSink += pass()
		iters++
		elapsed = time.Since(start)
	}
	return elapsed / time.Duration(iters)
}

// Format renders the sweep as a table.
func (r *KernelSweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Match kernel — %d docs, r=%d (%d words/row), %d queries per point\n", r.Docs, r.R, r.Stride, r.Queries)
	b.WriteString("zeros  active-words  matches   boxed ns/doc   arena ns/doc    skip ns/doc   arena×    skip×\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%5d %13d %8d %14.2f %14.2f %14.2f %8.2f %8.2f\n",
			p.ZeroBits, p.ActiveWords, p.Matches,
			p.Boxed, p.Arena, p.Skip,
			p.ArenaX, p.SkipX)
	}
	return b.String()
}
