package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"mkse/internal/bitindex"
)

// ---------------------------------------------------------------------------
// Match-kernel sweep — index layout and zero-word skipping (beyond the paper)
// ---------------------------------------------------------------------------

// KernelPoint measures the Equation-3 scan over one corpus with one query
// zero-count, under the four storage/kernel combinations the server has
// used across revisions.
type KernelPoint struct {
	ZeroBits    int     // zero bits in the query (the x of Section 6's F(x))
	ActiveWords int     // 64-bit words where ¬q ≠ 0 — all the skip kernel touches
	Matches     int     // documents matching the query
	Boxed       float64 // ns per document: boxed []*Vector scan, Matches per doc
	Arena       float64 // ns per document: flat columnar arena, dense word sweep
	Skip        float64 // ns per document: arena + zero-word-skipping kernel
	Cols        float64 // ns per document: word-major arena, blocked bitmap kernel
	ArenaX      float64 // Boxed / Arena
	SkipX       float64 // Boxed / Skip
	ColsX       float64 // Boxed / Cols
	ColsVsSkip  float64 // Skip / Cols — the word-major win over the row-major skip kernel
}

// KernelSweepResult is the layout/kernel comparison across query densities.
type KernelSweepResult struct {
	Docs    int
	R       int
	Stride  int // words per index row
	Queries int // queries timed per point
	Points  []KernelPoint
}

// KernelSweep times one full corpus scan per kernel across query zero-counts.
// Documents are random indices at the zero density of a paper-parameter
// document (20 genuine + U random keywords); queries are all-ones indices
// with the given number of random zero bits, spanning the single-trapdoor
// case (r/2^d ≈ 7 zeros, Section 6's F(1)) up to fully randomized
// multi-keyword queries where every word is active. Boxed is the seed
// layout: one heap-allocated Vector per document, pointer-chased per test.
// Arena lays every index back-to-back in one []uint64 and sweeps it
// linearly. Skip adds the Sparse preprocessing so only active words are
// touched. Cols stores the same indices word-major (one contiguous column
// per word offset) and runs the blocked bitmap-refinement kernel, the layout
// the server scans level 0 with. All four must agree on the match set
// (verified per point; Cols is additionally checked row list against row
// list with Skip).
func KernelSweep(docs, r int, zeros []int, queries int, seed int64) (*KernelSweepResult, error) {
	if docs <= 0 {
		docs = 10000
	}
	if r <= 0 {
		r = 448
	}
	if queries <= 0 {
		queries = 8
	}
	if len(zeros) == 0 {
		zeros = []int{1, 2, 4, 7, 14, 28, 56, 112, 224}
	}
	rng := rand.New(rand.NewSource(seed))
	stride := bitindex.WordsFor(r)

	// Zero density of a document index that folded x keyword indices:
	// each bit survives as 1 with probability (1−2^−d)^x; x ≈ 80 under the
	// paper's defaults (20 genuine + U = 60 random keywords), d = 6.
	oneProb := 1.0
	for i := 0; i < 80; i++ {
		oneProb *= 1 - 1.0/64
	}
	boxed := make([]*bitindex.Vector, docs)
	arena := make([]uint64, 0, docs*stride)
	cols := make([][]uint64, stride)
	for w := range cols {
		cols[w] = make([]uint64, docs)
	}
	for i := range boxed {
		v := bitindex.New(r)
		for j := 0; j < r; j++ {
			if rng.Float64() < oneProb {
				v.SetBit(j, 1)
			}
		}
		boxed[i] = v
		arena = v.AppendTo(arena)
		for w, word := range v.Words() {
			cols[w][i] = word
		}
	}

	res := &KernelSweepResult{Docs: docs, R: r, Stride: stride, Queries: queries}
	var bs bitindex.BlockScratch
	var rows, colRows []int32
	for _, z := range zeros {
		if z > r {
			continue
		}
		qs := make([]*bitindex.Vector, queries)
		sqs := make([]*bitindex.Sparse, queries)
		for i := range qs {
			q := bitindex.NewOnes(r)
			for _, pos := range rng.Perm(r)[:z] {
				q.SetBit(pos, 0)
			}
			qs[i] = q
			sqs[i] = q.Sparsify()
		}
		pt := KernelPoint{ZeroBits: z, ActiveWords: sqs[0].ActiveWords()}

		boxedPass := func() int {
			m := 0
			for _, q := range qs {
				for _, v := range boxed {
					if v.Matches(q) {
						m++
					}
				}
			}
			return m
		}
		arenaPass := func() int {
			m := 0
			for _, q := range qs {
				// Dense arena sweep: every word of ¬q, no preprocessing.
				qw := q.Words()
				for base := 0; base < len(arena); base += stride {
					ok := true
					for wi, w := range arena[base : base+stride] {
						if w&^qw[wi] != 0 {
							ok = false
							break
						}
					}
					if ok {
						m++
					}
				}
			}
			return m
		}
		skipPass := func() int {
			m := 0
			for _, s := range sqs {
				rows = s.AppendMatchingRows(arena, stride, rows[:0])
				m += len(rows)
			}
			return m
		}
		colsPass := func() int {
			m := 0
			for _, s := range sqs {
				colRows = s.AppendMatchingRowsColumns(cols, docs, &bs, colRows[:0])
				m += len(colRows)
			}
			return m
		}

		boxedMatches, arenaMatches, skipMatches, colsMatches := boxedPass(), arenaPass(), skipPass(), colsPass()
		if boxedMatches != arenaMatches || boxedMatches != skipMatches || boxedMatches != colsMatches {
			return nil, fmt.Errorf("kernel disagreement at %d zeros: boxed %d, arena %d, skip %d, cols %d",
				z, boxedMatches, arenaMatches, skipMatches, colsMatches)
		}
		// The blocked word-major kernel must agree with the row-major skip
		// kernel row list against row list, for every query.
		for _, s := range sqs {
			rows = s.AppendMatchingRows(arena, stride, rows[:0])
			colRows = s.AppendMatchingRowsColumns(cols, docs, &bs, colRows[:0])
			if len(rows) != len(colRows) {
				return nil, fmt.Errorf("cols kernel disagreement at %d zeros: %d rows vs %d", z, len(colRows), len(rows))
			}
			for i := range rows {
				if rows[i] != colRows[i] {
					return nil, fmt.Errorf("cols kernel disagreement at %d zeros, position %d: row %d vs %d",
						z, i, colRows[i], rows[i])
				}
			}
		}
		pt.Matches = boxedMatches / queries
		tests := float64(docs * queries)
		pt.Boxed = float64(timeKernel(boxedPass)) / tests
		pt.Arena = float64(timeKernel(arenaPass)) / tests
		pt.Skip = float64(timeKernel(skipPass)) / tests
		pt.Cols = float64(timeKernel(colsPass)) / tests
		if pt.Arena > 0 {
			pt.ArenaX = pt.Boxed / pt.Arena
		}
		if pt.Skip > 0 {
			pt.SkipX = pt.Boxed / pt.Skip
		}
		if pt.Cols > 0 {
			pt.ColsX = pt.Boxed / pt.Cols
			pt.ColsVsSkip = pt.Skip / pt.Cols
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// kernelSink defeats dead-code elimination of the timed passes.
var kernelSink int

// timeKernel times one scan pass, repeating it until enough wall clock has
// accumulated (≥ 20 ms) for the per-document quotient to be stable.
func timeKernel(pass func() int) time.Duration {
	kernelSink += pass() // warmup
	iters := 0
	start := time.Now()
	var elapsed time.Duration
	for elapsed < 20*time.Millisecond {
		kernelSink += pass()
		iters++
		elapsed = time.Since(start)
	}
	return elapsed / time.Duration(iters)
}

// Format renders the sweep as a table.
func (r *KernelSweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Match kernel — %d docs, r=%d (%d words/row), %d queries per point\n", r.Docs, r.R, r.Stride, r.Queries)
	b.WriteString("zeros  active-words  matches   boxed ns/doc   arena ns/doc    skip ns/doc    cols ns/doc   arena×    skip×    cols×  vs-skip\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%5d %13d %8d %14.2f %14.2f %14.2f %14.2f %8.2f %8.2f %8.2f %8.2f\n",
			p.ZeroBits, p.ActiveWords, p.Matches,
			p.Boxed, p.Arena, p.Skip, p.Cols,
			p.ArenaX, p.SkipX, p.ColsX, p.ColsVsSkip)
	}
	return b.String()
}
