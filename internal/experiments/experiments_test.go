package experiments

import (
	"math"
	"strings"
	"testing"
)

// Figure 2(a): with V=30 of U=60 random keywords, the same-query and
// different-query distance distributions must overlap heavily — the paper's
// claim is that the adversary "basically needs to make a random guess".
func TestFig2aDistributionsOverlap(t *testing.T) {
	res, err := Fig2a(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Different.N() != 1250 {
		t.Errorf("different-query distances: %d, want 1250", res.Different.N())
	}
	if res.Same.N() != 1250 {
		t.Errorf("same-query distances: %d, want 1250", res.Same.N())
	}
	// The model (analysis.ExpectedHamming) puts the two means ≈ 10% apart
	// with σ ≈ 10, i.e. substantial but not total overlap — the paper's
	// histograms show the same picture.
	if res.Overlap < 0.3 {
		t.Errorf("distribution overlap %.3f too low; randomization is not masking the search pattern", res.Overlap)
	}
	// Exact-process simulation gives a 15–20% mean gap (the paper's Eq. 5
	// model predicts ~10%; see EXPERIMENTS.md on the discrepancy).
	gap := math.Abs(res.Different.Mean() - res.Same.Mean())
	if gap/res.Different.Mean() > 0.3 {
		t.Errorf("mean distance gap %.1f%% too wide for the masking claim", 100*gap/res.Different.Mean())
	}
	// Distances concentrate in the paper's 100–200 band.
	if m := res.Different.Mean(); m < 100 || m > 200 {
		t.Errorf("mean different-query distance %.1f outside the paper's plotted band", m)
	}
	if s := res.Different.StdDev(); s > 40 {
		t.Errorf("different-query distances too dispersed: σ=%.1f", s)
	}
	if out := res.Format("Fig 2(a)"); !strings.Contains(out, "different qry") {
		t.Error("Format output malformed")
	}
}

// Figure 2(b): knowing the query holds 5 terms shifts the same-query
// distribution measurably below the different-query one (the paper reads
// ≈45% below 150 / ≈20% at 150 / ≈35% above, giving an adversary ~0.6
// confidence). We pin the qualitative separation: same-query mean strictly
// below different-query mean, but with substantial residual overlap.
func TestFig2bKnownTermCountSeparation(t *testing.T) {
	res, err := Fig2b(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Different.N() != 1000 || res.Same.N() != 1000 {
		t.Fatalf("sample sizes %d/%d, want 1000/1000", res.Different.N(), res.Same.N())
	}
	if res.Same.Mean() >= res.Different.Mean() {
		t.Errorf("same-query mean %.1f not below different-query mean %.1f",
			res.Same.Mean(), res.Different.Mean())
	}
	// Reproduction note (recorded in EXPERIMENTS.md): simulating the exact
	// V-of-U process yields MORE separation than the paper's Figure 2(b)
	// (our same-query mean ≈ 105 vs the paper's ≈ 150) because Equation 5
	// overestimates the same-query distance — shared random keywords
	// correlate the two indices more than the independence approximation
	// admits. The qualitative conclusion stands: the adversary gains real
	// advantage once the term count is known, so it must be kept secret.
	if res.Overlap < 0.05 {
		t.Errorf("overlap %.3f collapsed entirely; expected residual confusion", res.Overlap)
	}
}

// Figure 3: FAR grows with keywords per document and shrinks with keywords
// per query; at 10+60 keywords it is small, and it "rapidly increases after
// 40 keywords per document".
func TestFig3Shape(t *testing.T) {
	res, err := Fig3(400, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Monotone in document keywords for 2-keyword queries (allowing noise at
	// the low end where FAR ≈ 0).
	if far40, far10 := res.FAR(40, 2), res.FAR(10, 2); far40 <= far10 {
		t.Errorf("FAR(40kw) = %.3f not above FAR(10kw) = %.3f", far40, far10)
	}
	// More query keywords reduce FAR at 40 keywords/doc.
	if far2, far5 := res.FAR(40, 2), res.FAR(40, 5); far5 > far2 {
		t.Errorf("FAR with 5-kw query (%.3f) above 2-kw query (%.3f)", far5, far2)
	}
	// At 10+60 the rate is small (paper: ≈ 1–2%).
	if far := res.FAR(10, 2); far > 0.10 {
		t.Errorf("FAR at 10+60 kw/doc = %.3f, paper shows ≈ 0.01–0.02", far)
	}
	// At 40+60 with 2-keyword queries the rate is substantial (paper ≈ 18%).
	if far := res.FAR(40, 2); far < 0.02 {
		t.Errorf("FAR at 40+60 kw/doc = %.3f, paper shows a steep rise (≈ 0.18)", far)
	}
	if out := res.Format(); !strings.Contains(out, "10+60") {
		t.Error("Format output malformed")
	}
}

// Figure 4(a): build time grows linearly in the number of documents and
// with the number of rank levels.
func TestFig4aShape(t *testing.T) {
	sizes := []int{200, 400, 800}
	res, err := Fig4a(sizes, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(sizes)*3 {
		t.Fatalf("%d points, want %d", len(res.Points), len(sizes)*3)
	}
	// Linearity: t(800) within [2x, 8x] of t(200) per configuration (wide
	// bounds; CI machines are noisy).
	for _, eta := range []int{1, 3, 5} {
		t200, t800 := res.Elapsed(200, eta), res.Elapsed(800, eta)
		if t800 < t200 {
			t.Errorf("η=%d: build time decreased with corpus size", eta)
		}
		ratio := float64(t800) / float64(t200)
		if ratio < 1.5 || ratio > 12 {
			t.Errorf("η=%d: 4x corpus changed time by %.1fx, expected ≈4x", eta, ratio)
		}
	}
	// Ranking overhead: with per-keyword HMACs computed once and shared
	// across levels, extra levels only add cheap AND folds, so η=5 is a few
	// percent slower at most (the paper's Java, recomputing per level, shows
	// a larger but still modest gap). Assert it is not *faster* beyond
	// timer noise.
	if float64(res.Elapsed(800, 5)) < 0.85*float64(res.Elapsed(800, 1)) {
		t.Errorf("5-level ranking measurably faster than no ranking: %v vs %v",
			res.Elapsed(800, 5), res.Elapsed(800, 1))
	}
	if out := res.Format(); !strings.Contains(out, "Figure 4(a)") {
		t.Error("Format output malformed")
	}
}

// Figure 4(b): per-query search time is far below the paper's 3 ms ceiling
// at these sizes and grows with corpus size.
func TestFig4bShape(t *testing.T) {
	sizes := []int{500, 2000}
	res, err := Fig4b(sizes, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, eta := range []int{1, 3, 5} {
		small, large := res.Elapsed(500, eta), res.Elapsed(2000, eta)
		if small == 0 || large == 0 {
			t.Fatalf("missing measurements for η=%d", eta)
		}
		if large < small {
			t.Logf("note: η=%d search time not monotone (%v vs %v) — timer noise", eta, small, large)
		}
		// The paper reports ≤ 3 ms for 10000 docs in 2012 Java; our 2000-doc
		// Go search must be well under that.
		if large > 3*1e6 {
			t.Errorf("η=%d: search over 2000 docs took %v, expected ≪ 3ms", eta, large)
		}
	}
}

func TestTable1MatchesAnalytic(t *testing.T) {
	res, err := Table1(3, 10, 2, 4096, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Step == "owner/trapdoor" {
			// We ship γ·128-bit keys where the paper books one logN-bit
			// encrypted payload; both are O(γ) small — skip exact equality.
			continue
		}
		if row.AnalyticBits != row.MeasuredBits {
			t.Errorf("%s: analytic %d bits != measured %d bits", row.Step, row.AnalyticBits, row.MeasuredBits)
		}
	}
	if out := res.Format(); !strings.Contains(out, "Table 1") {
		t.Error("Format output malformed")
	}
}

// Table 2: the measured operation counts must stay within the paper's
// symbolic budget.
func TestTable2WithinPaperBudget(t *testing.T) {
	res, err := Table2(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Server: at most σ + η·α comparisons.
	maxCmp := int64(res.NumDocs + res.Eta*res.MatchedDocs)
	if res.Server.BinaryComparisons > maxCmp {
		t.Errorf("server comparisons %d exceed σ+ηα = %d", res.Server.BinaryComparisons, maxCmp)
	}
	if res.Server.BinaryComparisons < int64(res.NumDocs) {
		t.Errorf("server comparisons %d below σ = %d", res.Server.BinaryComparisons, res.NumDocs)
	}
	// User: 2 hash ops (one per search term), 1 signature, 1 modexp + 2
	// modmul for blinding, 1 symmetric decryption.
	if res.User.HashOps != 2 {
		t.Errorf("user hash ops = %d, want 2", res.User.HashOps)
	}
	if res.User.SymDecrypts != 1 {
		t.Errorf("user sym decrypts = %d, want 1", res.User.SymDecrypts)
	}
	if res.User.ModExps < 1 || res.User.ModExps > 3 {
		t.Errorf("user modexps = %d, paper budget is 3", res.User.ModExps)
	}
	// Owner online phase: 1 verification + 1 blind decryption modexp.
	if res.Owner.ModExps != 1 {
		t.Errorf("owner modexps = %d, want 1 (blind decrypt)", res.Owner.ModExps)
	}
	if res.Owner.Verifications != 1 {
		t.Errorf("owner verifications = %d, want 1", res.Owner.Verifications)
	}
	if out := res.Format(); !strings.Contains(out, "Table 2") {
		t.Error("Format output malformed")
	}
}

// Section 5: the level ranking agrees with Equation 4 within the paper's
// reported bands (40% / 100% / 80%). Bands are widened for trial noise at a
// modest trial count.
func TestRankingQualityBands(t *testing.T) {
	if testing.Short() {
		t.Skip("ranking study indexes 1000 docs per trial")
	}
	res, err := RankingQuality(12, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.TopInTop1Pct < 15 {
		t.Errorf("top-1 agreement %.1f%%, paper reports ≈40%%", res.TopInTop1Pct)
	}
	if res.TopInTop3Pct < 75 {
		t.Errorf("top-3 agreement %.1f%%, paper reports 100%%", res.TopInTop3Pct)
	}
	if res.AtLeast4Of5Pct < 50 {
		t.Errorf("≥4-of-top-5 agreement %.1f%%, paper reports ≈80%%", res.AtLeast4Of5Pct)
	}
	if out := res.Format(); !strings.Contains(out, "Section 5") {
		t.Error("Format output malformed")
	}
}

// Section 8.1: MKS must beat MRSE on both index construction and search by
// a widening margin — the paper's headline "several orders of magnitude".
func TestCaoComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("MRSE key generation is O(n^3)")
	}
	// The gap scales with the MRSE dictionary size n (its costs are O(n²)
	// per index and O(n) per score; MKS is O(1) in n). Even at the modest
	// n = 800 the separation is unambiguous; the paper's n ≈ "several
	// thousands" gives the orders-of-magnitude headline.
	res, err := CaoComparison([]int{100, 300}, 800, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.BuildSpeedup < 2 {
			t.Errorf("%d docs: MKS build only %.1fx faster than MRSE (dict=800)", p.NumDocs, p.BuildSpeedup)
		}
		if p.SearchSpeedup < 5 {
			t.Errorf("%d docs: MKS search only %.1fx faster than MRSE (dict=800)", p.NumDocs, p.SearchSpeedup)
		}
	}
	if out := res.Format(); !strings.Contains(out, "MRSE") {
		t.Error("Format output malformed")
	}
}

// Section 6 analytics: simulated zero counts track F(x) closely.
func TestAnalyticsModelMatchesSimulation(t *testing.T) {
	res, err := Analytics(150, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		tol := 0.15*row.FModel + 1.5
		if math.Abs(row.FModel-row.FSimulated) > tol {
			t.Errorf("x=%d: F model %.2f vs simulated %.2f (tol %.2f)", row.X, row.FModel, row.FSimulated, tol)
		}
	}
	if res.EOModel != 15 {
		t.Errorf("EO = %v, want 15", res.EOModel)
	}
	if res.DeltaSameModel >= res.DeltaDiffModel {
		t.Error("model says same-keyword queries are farther apart than different ones")
	}
	if out := res.Format(); !strings.Contains(out, "Section 6") {
		t.Error("Format output malformed")
	}
}

// Section 6's adversary: linking confidence must be near-random with the
// term count hidden and distinctly better once it is known — bracketing the
// paper's ≈0.6 claim from both sides.
func TestAdversaryConfidence(t *testing.T) {
	res, err := AdversaryConfidence(400, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnknownCount < 0.5 || res.KnownCount < 0.5 {
		t.Fatalf("optimal classifier below chance: %+v", res)
	}
	if res.KnownCount <= res.UnknownCount {
		t.Errorf("knowing the term count did not help the adversary: %.3f vs %.3f",
			res.KnownCount, res.UnknownCount)
	}
	if res.KnownCount < 0.60 {
		t.Errorf("known-count confidence %.3f below the paper's 0.6 reading", res.KnownCount)
	}
	if res.UnknownCount > 0.90 {
		t.Errorf("unknown-count confidence %.3f — randomization not masking", res.UnknownCount)
	}
	if !strings.Contains(res.Format(), "adversary confidence") {
		t.Error("Format output malformed")
	}
}

func TestTheorem3Bound(t *testing.T) {
	res, err := Theorem3()
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundBits < 9 {
		t.Errorf("forgery bound 2^-%.1f weaker than the paper's 2^-9", res.BoundBits)
	}
	if !strings.Contains(res.Format(), "Theorem 3") {
		t.Error("Format output malformed")
	}
}

// Section 4.1: the attack succeeds against the keyless baseline and fails
// against MKS.
func TestBruteForceAttackContrast(t *testing.T) {
	res, err := BruteForceAttack(3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !res.KeylessRecovered {
		t.Error("attack failed against the keyless scheme — it should succeed")
	}
	if res.MKSRecovered {
		t.Error("attack succeeded against MKS — secret keys are not protecting the index")
	}
	if res.PairBits < 27 || res.PairBits > 29 {
		t.Errorf("pair search space 2^%.1f, paper estimates ≈2^28", res.PairBits)
	}
	if !strings.Contains(res.Format(), "brute-force") {
		t.Error("Format output malformed")
	}
}

// The kernel sweep verifies internally that boxed, dense-arena and
// zero-word-skipping scans agree on every match set; any disagreement
// surfaces as an error. Also pin the structural invariants of the report.
func TestKernelSweepKernelsAgree(t *testing.T) {
	res, err := KernelSweep(500, 448, []int{1, 7, 64, 448, 1000}, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("%d points, want 4 (zero-count beyond r skipped)", len(res.Points))
	}
	for _, p := range res.Points {
		if p.ActiveWords < 1 || p.ActiveWords > res.Stride {
			t.Errorf("%d zeros: %d active words outside [1,%d]", p.ZeroBits, p.ActiveWords, res.Stride)
		}
		if p.ZeroBits == 448 && p.ActiveWords != res.Stride {
			t.Errorf("all-zero query should activate every word, got %d", p.ActiveWords)
		}
	}
	// More query zeros can only shrink the match set (AND-monotonicity).
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Matches > res.Points[0].Matches {
			t.Errorf("matches grew with more zeros: %d at %d zeros vs %d at %d",
				res.Points[i].Matches, res.Points[i].ZeroBits,
				res.Points[0].Matches, res.Points[0].ZeroBits)
		}
	}
	if !strings.Contains(res.Format(), "ns/doc") {
		t.Error("Format output malformed")
	}
}

// A small-scale run of the million-document sweep (the full scale lives in
// mkse-bench -exp million): streamed build must account every document,
// queries must be sampled and timed, and the quantiles must be ordered.
func TestMillionSweepSmoke(t *testing.T) {
	res, err := MillionSweep(1500, 3, 2, 8, true, 19)
	if err != nil {
		t.Fatal(err)
	}
	if res.Docs != 1500 || res.Shards != 3 || res.Workers != 2 {
		t.Fatalf("geometry %d docs / %d shards / %d workers, want 1500/3/2", res.Docs, res.Shards, res.Workers)
	}
	if res.Queries != 8 {
		t.Fatalf("%d queries sampled, want 8", res.Queries)
	}
	if res.BuildPerDoc <= 0 || res.NsPerDoc <= 0 {
		t.Errorf("non-positive cost: build/doc %v, search ns/doc %v", res.BuildPerDoc, res.NsPerDoc)
	}
	if res.SearchP99 < res.SearchP50 {
		t.Errorf("p99 %v below p50 %v", res.SearchP99, res.SearchP50)
	}
	// The level-1 screen alone costs one comparison per stored document.
	if res.Comparisons < float64(res.Docs) {
		t.Errorf("%.0f comparisons/query over %d docs", res.Comparisons, res.Docs)
	}
	out := res.Format()
	for _, want := range []string{"ns/doc", "p50", "p99", "RSS", "Zipf"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}

// The shard sweep must carry the per-document and comparison columns the
// kernel work is judged by.
func TestShardSweepReportsPerDocCosts(t *testing.T) {
	res, err := ShardSweep([]int{60}, 2, 2, 4, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("%d points, want 1", len(res.Points))
	}
	p := res.Points[0]
	if p.Comparisons < float64(p.NumDocs) {
		t.Errorf("%.0f comparisons/query over %d docs — level-1 screen alone should cost one per doc", p.Comparisons, p.NumDocs)
	}
	if p.PerDoc <= 0 {
		t.Errorf("PerDoc = %v, want > 0", p.PerDoc)
	}
	if !strings.Contains(res.Format(), "cmps/query") {
		t.Error("Format output malformed")
	}
}

// The cache sweep agreement-checks itself (warm and post-mutation results
// byte-identical to the uncached scan — it errors on any divergence); the
// test pins the counter bookkeeping and that warm hits actually beat the
// scan. The timing assertion is deliberately loose (a cache hit is a map
// lookup ~two orders of magnitude under the scan) so a loaded CI machine
// cannot flake it.
func TestCacheSweepWarmHitsBeatScans(t *testing.T) {
	res, err := CacheSweep([]int{400}, 16, 10, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("%d points, want 1", len(res.Points))
	}
	p := res.Points[0]
	// 10 distinct queries: agreement pass hits 10, warm pass hits 10; cold
	// pass misses 10, invalidate pass misses (and invalidates) 10.
	if p.Hits != 20 || p.Misses != 20 || p.Invalid != 10 {
		t.Errorf("counters hits=%d misses=%d invalidations=%d, want 20/20/10", p.Hits, p.Misses, p.Invalid)
	}
	if p.WarmSpeedup < 2 {
		t.Errorf("warm speedup %.1fx — cache hits are not beating the scan", p.WarmSpeedup)
	}
	if p.Uncached <= 0 || p.Cold <= 0 || p.Warm <= 0 || p.Invalidate <= 0 {
		t.Errorf("degenerate timings: %+v", p)
	}
	if !strings.Contains(res.Format(), "warm-speedup") {
		t.Error("Format output malformed")
	}
}

// The recovery sweep must replay every logged operation, report positive
// throughput, and agree with the never-crashed reference (the sweep itself
// errors on disagreement).
func TestRecoverySweepReplaysEverything(t *testing.T) {
	res, err := RecoverySweep([]int{80}, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("%d points, want 1", len(res.Points))
	}
	p := res.Points[0]
	if p.ReplayOps != p.NumDocs+p.Deletes {
		t.Errorf("replayed %d ops, want %d uploads + %d deletes", p.ReplayOps, p.NumDocs, p.Deletes)
	}
	if p.DocsPerSec <= 0 || p.MBPerSec <= 0 || p.WALBytes <= 0 {
		t.Errorf("degenerate throughput: %+v", p)
	}
	if p.CheckpointPause <= 0 || p.CleanOpen <= 0 {
		t.Errorf("checkpoint timings missing: %+v", p)
	}
	if !strings.Contains(res.Format(), "docs/s") {
		t.Error("Format output malformed")
	}
}
