// Package experiments regenerates every table and figure of the paper's
// evaluation (Örencik & Savaş, Sections 5, 6 and 8). Each experiment is a
// pure function returning a structured result plus a formatter, so the same
// code backs the mkse-bench command, the testing.B benchmarks and the
// regression tests that pin the paper's qualitative claims.
//
// The experiment ↔ paper mapping (DESIGN.md §3):
//
//	Fig2a, Fig2b      — query-distance histograms (Section 6, Figure 2)
//	Fig3              — false accept rates (Section 6.1, Figure 3)
//	Fig4a, Fig4b      — index construction & search timings (Section 8.1)
//	Table1            — communication costs (Section 8)
//	Table2            — computation costs (Section 8)
//	RankingQuality    — level ranking vs Equation 4 (Section 5)
//	CaoComparison     — MKS vs MRSE_I (Section 8.1)
//	Analytics         — F/C/Δ/EO model vs simulation (Section 6)
//	Theorem3          — trapdoor forgery bound (Section 7)
//	BruteForceAttack  — keyless-scheme attack (Section 4.1)
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"mkse/internal/bitindex"
	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/histogram"
	"mkse/internal/rank"
)

// queryFactory builds randomized query indices the way a user does, but
// without per-user key generation: genuine trapdoors come straight from an
// owner, random-keyword trapdoors from the owner's enrollment package.
type queryFactory struct {
	owner *core.Owner
	rts   []*bitindex.Vector
	rng   *rand.Rand
}

func newQueryFactory(o *core.Owner, seed int64) *queryFactory {
	return &queryFactory{owner: o, rts: o.RandomTrapdoors(), rng: rand.New(rand.NewSource(seed))}
}

// build ANDs the genuine keywords' trapdoors with a fresh random V-subset.
func (f *queryFactory) build(words []string) *bitindex.Vector {
	p := f.owner.Params()
	q := bitindex.NewOnes(p.R)
	for _, w := range words {
		q.AndInto(f.owner.Trapdoor(w))
	}
	for _, i := range f.rng.Perm(p.U)[:p.V] {
		q.AndInto(f.rts[i])
	}
	return q
}

// newExperimentOwner builds an owner with a small bin count (key generation
// cost) and no ranking unless levels are given. Bin keys derive from the
// seed so every experiment is exactly reproducible.
func newExperimentOwner(levels rank.Levels, seed int64) (*core.Owner, error) {
	p := core.DefaultParams()
	p.Bins = 64
	if levels != nil {
		p.Levels = levels
	}
	return core.NewOwnerDeterministic(p, seed, seed+0x5eed)
}

// ---------------------------------------------------------------------------
// Figure 2 — query-distance histograms
// ---------------------------------------------------------------------------

// Fig2Result carries the two distance distributions of one Figure 2 panel.
type Fig2Result struct {
	Different *histogram.Histogram // pairs with different genuine keywords
	Same      *histogram.Histogram // pairs with identical genuine keywords
	Overlap   float64              // distribution overlap coefficient (1 = indistinguishable)
}

// Fig2a reproduces Figure 2(a): the adversary does not know the number of
// genuine terms. 250 query indices (50 each with 2–6 genuine keywords) are
// compared against 5 probe indices (2–6 genuine keywords) → 1250 distances;
// the "same" histogram holds 1250 distances between index pairs built from
// identical search terms with fresh random keywords.
func Fig2a(seed int64) (*Fig2Result, error) {
	owner, err := newExperimentOwner(nil, seed)
	if err != nil {
		return nil, err
	}
	f := newQueryFactory(owner, seed+1)
	dict := corpus.Dictionary(4000)
	pick := func(n int) []string {
		out := make([]string, n)
		for i, idx := range f.rng.Perm(len(dict))[:n] {
			out[i] = dict[idx]
		}
		return out
	}

	histDiff := histogram.New(100, 200, 10)
	histSame := histogram.New(100, 200, 10)

	// Former set: 50 indices per keyword count 2..6.
	var former []*bitindex.Vector
	for n := 2; n <= 6; n++ {
		for i := 0; i < 50; i++ {
			former = append(former, f.build(pick(n)))
		}
	}
	// Latter (probe) set: one index per keyword count 2..6.
	var probes []*bitindex.Vector
	for n := 2; n <= 6; n++ {
		probes = append(probes, f.build(pick(n)))
	}
	for _, a := range former {
		for _, b := range probes {
			histDiff.Add(a.Hamming(b))
		}
	}
	// Same-terms pairs: for each of 1250 comparisons, one keyword set,
	// two independently randomized indices.
	for i := 0; i < len(former)*len(probes); i++ {
		n := 2 + i%5
		words := pick(n)
		histSame.Add(f.build(words).Hamming(f.build(words)))
	}
	return &Fig2Result{
		Different: histDiff,
		Same:      histSame,
		Overlap:   histogram.OverlapCoefficient(histDiff, histSame),
	}, nil
}

// Fig2b reproduces Figure 2(b): the adversary knows the query has 5 genuine
// terms. 1000 indices (200 each with 2–6 genuine keywords) are compared to a
// single 5-keyword probe; the "same" histogram holds 1000 distances between
// pairs with five identical terms.
func Fig2b(seed int64) (*Fig2Result, error) {
	owner, err := newExperimentOwner(nil, seed)
	if err != nil {
		return nil, err
	}
	f := newQueryFactory(owner, seed+1)
	dict := corpus.Dictionary(4000)
	pick := func(n int) []string {
		out := make([]string, n)
		for i, idx := range f.rng.Perm(len(dict))[:n] {
			out[i] = dict[idx]
		}
		return out
	}

	histDiff := histogram.New(100, 200, 10)
	histSame := histogram.New(100, 200, 10)

	probeWords := pick(5)
	probe := f.build(probeWords)
	for n := 2; n <= 6; n++ {
		for i := 0; i < 200; i++ {
			histDiff.Add(f.build(pick(n)).Hamming(probe))
		}
	}
	sameWords := pick(5)
	for i := 0; i < 1000; i++ {
		histSame.Add(f.build(sameWords).Hamming(f.build(sameWords)))
	}
	return &Fig2Result{
		Different: histDiff,
		Same:      histSame,
		Overlap:   histogram.OverlapCoefficient(histDiff, histSame),
	}, nil
}

// Format renders a Figure 2 panel as the paper's side-by-side histogram.
func (r *Fig2Result) Format(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	b.WriteString(histogram.RenderPair("different qry", r.Different, "same qry", r.Same))
	fmt.Fprintf(&b, "distribution overlap coefficient: %.3f (1.0 = indistinguishable)\n", r.Overlap)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 3 — false accept rates
// ---------------------------------------------------------------------------

// Fig3Cell is the FAR for one (keywords-per-doc, keywords-per-query) pair.
type Fig3Cell struct {
	DocKeywords   int
	QueryKeywords int
	FAR           float64
	Matches       int
	FalseMatches  int
}

// Fig3Result is the full Figure 3 sweep.
type Fig3Result struct {
	Cells []Fig3Cell
}

// fig3Replicas is the number of independent owners (fresh trapdoor keys)
// each Figure 3 cell is averaged over. False accepts hinge on the zero
// patterns the secret keys happen to assign to the query keywords, so a
// single key set gives heavily correlated — and across seeds, wildly
// variable — rates; averaging over keys recovers the expectation the
// paper's curves show.
const fig3Replicas = 8

// Fig3 reproduces Figure 3: false accept rates for documents with
// 10/20/30/40 genuine (+U random) keywords and queries of 2–5 keywords, at
// d = 6, r = 448, U = 60, V = 30. FAR = incorrect matches / all matches.
//
// Workload: five designated topic keywords co-occur in ~40% of the corpus
// (the documents the user is actually after), and queries take n-subsets of
// them — so every query has a realistic pool of genuine matches and the FAR
// denominator mirrors the paper's "all matches". The remaining documents are
// filler whose only way of matching is a false accept.
func Fig3(numDocs, queriesPerCell int, seed int64) (*Fig3Result, error) {
	dict := corpus.Dictionary(4000)
	topic := []string{"topic-kw-a", "topic-kw-b", "topic-kw-c", "topic-kw-d", "topic-kw-e"}
	res := &Fig3Result{}
	type tally struct{ matches, falses int }
	for _, m := range []int{10, 20, 30, 40} {
		cells := map[int]*tally{2: {}, 3: {}, 4: {}, 5: {}}
		for rep := 0; rep < fig3Replicas; rep++ {
			repSeed := seed + int64(m)*10 + int64(rep)
			owner, err := newExperimentOwner(nil, repSeed)
			if err != nil {
				return nil, err
			}
			f := newQueryFactory(owner, repSeed+1)
			docs, err := corpus.Generate(corpus.Config{
				NumDocs: numDocs, KeywordsPerDoc: m, Dictionary: dict,
				MaxTermFreq: 15, Seed: repSeed,
			})
			if err != nil {
				return nil, err
			}
			// Plant the topic keywords in 40% of documents (keeping m total
			// by evicting filler keywords).
			for i, d := range docs {
				if i%5 < 2 {
					evict := len(topic)
					for w := range d.TermFreqs {
						if evict == 0 {
							break
						}
						delete(d.TermFreqs, w)
						evict--
					}
					for _, tw := range topic {
						d.TermFreqs[tw] = 1 + f.rng.Intn(15)
					}
				}
			}
			indices := make([]*bitindex.Vector, len(docs))
			for i, d := range docs {
				si, err := owner.BuildIndex(d)
				if err != nil {
					return nil, err
				}
				indices[i] = si.Levels[0]
			}
			for _, n := range []int{2, 3, 4, 5} {
				for qi := 0; qi < queriesPerCell; qi++ {
					perm := f.rng.Perm(len(topic))
					words := make([]string, n)
					for i := 0; i < n; i++ {
						words[i] = topic[perm[i]]
					}
					q := f.build(words)
					for di, idx := range indices {
						if !idx.Matches(q) {
							continue
						}
						cells[n].matches++
						hasAll := true
						for _, w := range words {
							if _, ok := docs[di].TermFreqs[w]; !ok {
								hasAll = false
								break
							}
						}
						if !hasAll {
							cells[n].falses++
						}
					}
				}
			}
		}
		for _, n := range []int{2, 3, 4, 5} {
			cell := Fig3Cell{DocKeywords: m, QueryKeywords: n, Matches: cells[n].matches, FalseMatches: cells[n].falses}
			if cell.Matches > 0 {
				cell.FAR = float64(cell.FalseMatches) / float64(cell.Matches)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// FAR returns the measured rate for a sweep cell, or -1 if absent.
func (r *Fig3Result) FAR(docKw, queryKw int) float64 {
	for _, c := range r.Cells {
		if c.DocKeywords == docKw && c.QueryKeywords == queryKw {
			return c.FAR
		}
	}
	return -1
}

// Format renders the Figure 3 table: rows = keywords/doc, cols = query size.
func (r *Fig3Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 3 — false accept rates (d=6, r=448, U=60, V=30)\n")
	b.WriteString("kw/doc    2 kw      3 kw      4 kw      5 kw\n")
	for _, m := range []int{10, 20, 30, 40} {
		fmt.Fprintf(&b, "%2d+60  ", m)
		for _, n := range []int{2, 3, 4, 5} {
			fmt.Fprintf(&b, "%8.2f%% ", 100*r.FAR(m, n))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 4 — index construction and search timings
// ---------------------------------------------------------------------------

// TimingPoint is one (corpus size, configuration) measurement.
type TimingPoint struct {
	NumDocs int
	Eta     int // 1 = without ranking
	Elapsed time.Duration
}

// Fig4aResult holds the index-construction sweep.
type Fig4aResult struct {
	Points []TimingPoint
}

// Fig4a reproduces Figure 4(a): wall-clock time to build search indices for
// sweeping corpus sizes with 20 genuine + 60 random keywords per document,
// without ranking and with 3 and 5 rank levels.
func Fig4a(sizes []int, seed int64) (*Fig4aResult, error) {
	res := &Fig4aResult{}
	dict := corpus.Dictionary(4000)
	for _, eta := range []int{1, 3, 5} {
		levels := rank.DefaultLevels(eta, 15)
		owner, err := newExperimentOwner(levels, seed)
		if err != nil {
			return nil, err
		}
		for _, n := range sizes {
			docs, err := corpus.Generate(corpus.Config{
				NumDocs: n, KeywordsPerDoc: 20, Dictionary: dict,
				MaxTermFreq: 15, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			for _, d := range docs {
				if _, err := owner.BuildIndex(d); err != nil {
					return nil, err
				}
			}
			res.Points = append(res.Points, TimingPoint{NumDocs: n, Eta: eta, Elapsed: time.Since(start)})
		}
	}
	return res, nil
}

// Format renders Figure 4(a).
func (r *Fig4aResult) Format() string {
	return formatTimings("Figure 4(a) — index construction time (20+60 keywords/doc)", r.Points, time.Second, "s")
}

// Fig4bResult holds the search-time sweep.
type Fig4bResult struct {
	Points []TimingPoint // Elapsed = mean per query
}

// Fig4b reproduces Figure 4(b): server-side ranked search time per query
// over sweeping corpus sizes, without ranking and with 3 and 5 levels.
func Fig4b(sizes []int, queries int, seed int64) (*Fig4bResult, error) {
	res := &Fig4bResult{}
	dict := corpus.Dictionary(4000)
	for _, eta := range []int{1, 3, 5} {
		levels := rank.DefaultLevels(eta, 15)
		owner, err := newExperimentOwner(levels, seed)
		if err != nil {
			return nil, err
		}
		f := newQueryFactory(owner, seed+2)
		maxN := 0
		for _, n := range sizes {
			if n > maxN {
				maxN = n
			}
		}
		docs, err := corpus.Generate(corpus.Config{
			NumDocs: maxN, KeywordsPerDoc: 20, Dictionary: dict,
			MaxTermFreq: 15, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		// One shard/worker: Figure 4(b) reports the paper's sequential scan;
		// the sharded fan-out has its own sweep (ShardSweep).
		server, err := core.NewServerSharded(owner.Params(), 1, 1)
		if err != nil {
			return nil, err
		}
		uploaded := 0
		for _, n := range sizes {
			for ; uploaded < n; uploaded++ {
				d := docs[uploaded]
				si, err := owner.BuildIndex(d)
				if err != nil {
					return nil, err
				}
				err = server.Upload(si, &core.EncryptedDocument{ID: d.ID, Ciphertext: []byte{0}, EncKey: []byte{0}})
				if err != nil {
					return nil, err
				}
			}
			// Queries drawn from real documents so matches occur.
			qs := make([]*bitindex.Vector, queries)
			for i := range qs {
				src := docs[f.rng.Intn(n)]
				kws := src.Keywords()
				qs[i] = f.build(kws[:2])
			}
			start := time.Now()
			for _, q := range qs {
				if _, err := server.Search(q); err != nil {
					return nil, err
				}
			}
			res.Points = append(res.Points, TimingPoint{
				NumDocs: n, Eta: eta, Elapsed: time.Since(start) / time.Duration(queries),
			})
		}
	}
	return res, nil
}

// Format renders Figure 4(b).
func (r *Fig4bResult) Format() string {
	return formatTimings("Figure 4(b) — search time per query", r.Points, time.Millisecond, "ms")
}

func formatTimings(title string, pts []TimingPoint, unit time.Duration, unitName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	sizes := []int{}
	seen := map[int]bool{}
	for _, p := range pts {
		if !seen[p.NumDocs] {
			seen[p.NumDocs] = true
			sizes = append(sizes, p.NumDocs)
		}
	}
	b.WriteString("#docs     no-rank        η=3        η=5\n")
	for _, n := range sizes {
		fmt.Fprintf(&b, "%6d", n)
		for _, eta := range []int{1, 3, 5} {
			for _, p := range pts {
				if p.NumDocs == n && p.Eta == eta {
					fmt.Fprintf(&b, " %9.3f%s", float64(p.Elapsed)/float64(unit), unitName)
				}
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// timing lookup helper for tests.
func (r *Fig4aResult) Elapsed(n, eta int) time.Duration { return lookup(r.Points, n, eta) }

// Elapsed returns the mean per-query time for a sweep point.
func (r *Fig4bResult) Elapsed(n, eta int) time.Duration { return lookup(r.Points, n, eta) }

func lookup(pts []TimingPoint, n, eta int) time.Duration {
	for _, p := range pts {
		if p.NumDocs == n && p.Eta == eta {
			return p.Elapsed
		}
	}
	return 0
}
