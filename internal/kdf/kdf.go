// Package kdf expands an HMAC into the long pseudorandom strings the MKS
// scheme consumes. The paper (Section 8.1) builds a 336-byte (2688-bit)
// trapdoor source "by concatenating different SHA2-based HMAC functions"; we
// realize the same {0,1}* → {0,1}^l interface by running HMAC-SHA256 in
// counter mode, which is the standard stdlib-only construction with uniform,
// independent output blocks.
package kdf

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
)

// KeySize is the HMAC key size used throughout the scheme, in bytes. The
// paper's index-privacy proof (Theorem 2) assumes 128-bit HMAC keys; we keep
// that parameter.
const KeySize = 16

// Expand computes an l-byte pseudorandom string from key and data. Blocks are
// HMAC-SHA256(key, data || counter) for counter = 0,1,2,…, concatenated and
// truncated to l bytes. It panics if l <= 0 or the key is empty — both
// indicate programmer error, not input error.
func Expand(key, data []byte, l int) []byte {
	if l <= 0 {
		panic(fmt.Sprintf("kdf: invalid output length %d", l))
	}
	if len(key) == 0 {
		panic("kdf: empty key")
	}
	out := make([]byte, 0, l+sha256.Size)
	var counter [4]byte
	for len(out) < l {
		mac := hmac.New(sha256.New, key)
		mac.Write(data)
		mac.Write(counter[:])
		out = mac.Sum(out)
		// 32-bit big-endian counter increment.
		for i := 3; i >= 0; i-- {
			counter[i]++
			if counter[i] != 0 {
				break
			}
		}
	}
	return out[:l]
}

// ExpandString is Expand for string inputs (keywords).
func ExpandString(key []byte, word string, l int) []byte {
	return Expand(key, []byte(word), l)
}
