package kdf

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"
)

func TestExpandDeterministic(t *testing.T) {
	key := []byte("0123456789abcdef")
	a := Expand(key, []byte("cloud"), 336)
	b := Expand(key, []byte("cloud"), 336)
	if !bytes.Equal(a, b) {
		t.Error("Expand is not deterministic")
	}
}

func TestExpandLength(t *testing.T) {
	key := []byte("0123456789abcdef")
	for _, l := range []int{1, 31, 32, 33, 64, 336, 1000} {
		out := Expand(key, []byte("x"), l)
		if len(out) != l {
			t.Errorf("Expand(..., %d) returned %d bytes", l, len(out))
		}
	}
}

func TestExpandKeySeparation(t *testing.T) {
	k1 := []byte("0123456789abcdef")
	k2 := []byte("0123456789abcdeg")
	if bytes.Equal(Expand(k1, []byte("w"), 64), Expand(k2, []byte("w"), 64)) {
		t.Error("different keys produced identical output")
	}
}

func TestExpandInputSeparation(t *testing.T) {
	key := []byte("0123456789abcdef")
	if bytes.Equal(Expand(key, []byte("alpha"), 64), Expand(key, []byte("beta"), 64)) {
		t.Error("different inputs produced identical output")
	}
}

// Prefix consistency: a longer expansion begins with the shorter one, so the
// scheme can derive differently-sized indices from the same trapdoor source.
func TestExpandPrefixConsistency(t *testing.T) {
	key := []byte("0123456789abcdef")
	short := Expand(key, []byte("kw"), 40)
	long := Expand(key, []byte("kw"), 400)
	if !bytes.Equal(short, long[:40]) {
		t.Error("shorter expansion is not a prefix of longer expansion")
	}
}

func TestExpandStringMatchesExpand(t *testing.T) {
	key := []byte("0123456789abcdef")
	if !bytes.Equal(ExpandString(key, "word", 99), Expand(key, []byte("word"), 99)) {
		t.Error("ExpandString disagrees with Expand")
	}
}

func TestExpandPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"zero length", func() { Expand([]byte("k"), nil, 0) }},
		{"negative length", func() { Expand([]byte("k"), nil, -5) }},
		{"empty key", func() { Expand(nil, []byte("x"), 8) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

// Distinct (key, word) pairs should essentially never collide on 32-byte
// outputs; quick-check a sample.
func TestExpandNoObservedCollisions(t *testing.T) {
	seen := make(map[string]string)
	key := make([]byte, KeySize)
	if _, err := rand.Read(key); err != nil {
		t.Fatal(err)
	}
	f := func(word string) bool {
		out := string(Expand(key, []byte(word), 32))
		if prev, ok := seen[out]; ok {
			return prev == word
		}
		seen[out] = word
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Rough uniformity: over many expansions the ones-density of the output
// should be close to 1/2 per bit.
func TestExpandBitBalance(t *testing.T) {
	key := []byte("0123456789abcdef")
	ones, total := 0, 0
	for i := 0; i < 200; i++ {
		out := Expand(key, []byte{byte(i)}, 64)
		for _, b := range out {
			for j := 0; j < 8; j++ {
				ones += int(b >> uint(j) & 1)
				total++
			}
		}
	}
	frac := float64(ones) / float64(total)
	if frac < 0.48 || frac > 0.52 {
		t.Errorf("ones fraction %.4f outside [0.48, 0.52]", frac)
	}
}

func BenchmarkExpand336(b *testing.B) {
	key := []byte("0123456789abcdef")
	word := []byte("confidential")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Expand(key, word, 336)
	}
}
