package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func paperModel(t testing.TB) Model {
	m, err := NewModel(448, 6)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	cases := []struct{ r, d int }{{0, 6}, {-1, 6}, {448, 0}, {448, 33}}
	for _, c := range cases {
		if _, err := NewModel(c.r, c.d); err == nil {
			t.Errorf("NewModel(%d,%d) accepted", c.r, c.d)
		}
	}
}

func TestF1MatchesPaper(t *testing.T) {
	m := paperModel(t)
	// F(1) = r/2^d = 448/64 = 7.
	if got := m.F(1); math.Abs(got-7) > 1e-12 {
		t.Errorf("F(1) = %v, want 7", got)
	}
}

func TestFZeroIsZero(t *testing.T) {
	m := paperModel(t)
	if m.F(0) != 0 {
		t.Errorf("F(0) = %v, want 0", m.F(0))
	}
}

func TestFMonotoneBoundedByR(t *testing.T) {
	m := paperModel(t)
	prev := 0.0
	for x := 1; x <= 200; x++ {
		f := m.F(x)
		if f <= prev {
			t.Fatalf("F not strictly increasing at x=%d: %v <= %v", x, f, prev)
		}
		if f >= float64(m.R) {
			t.Fatalf("F(%d) = %v exceeds r", x, f)
		}
		prev = f
	}
}

// The paper's recurrence must agree with the closed form r(1-(1-2^-d)^x).
func TestFRecurrenceMatchesClosedForm(t *testing.T) {
	for _, geom := range []struct{ r, d int }{{448, 6}, {448, 8}, {1024, 4}, {64, 1}} {
		m, err := NewModel(geom.r, geom.d)
		if err != nil {
			t.Fatal(err)
		}
		for x := 0; x <= 100; x++ {
			rec, cf := m.F(x), m.FClosed(x)
			if math.Abs(rec-cf) > 1e-9*float64(geom.r) {
				t.Fatalf("r=%d d=%d x=%d: recurrence %v vs closed form %v", geom.r, geom.d, x, rec, cf)
			}
		}
	}
}

func TestCIsFOver2d(t *testing.T) {
	m := paperModel(t)
	for x := 1; x < 50; x++ {
		if math.Abs(m.C(x)-m.F(x)/64) > 1e-12 {
			t.Fatalf("C(%d) != F(%d)/64", x, x)
		}
	}
}

// Monte-Carlo validation of F(x): simulate keyword indices as independent
// Bernoulli digit reductions and compare mean zero counts.
func TestFMatchesSimulation(t *testing.T) {
	m := paperModel(t)
	rng := rand.New(rand.NewSource(1))
	const trials = 2000
	for _, x := range []int{1, 2, 5, 30, 62} {
		total := 0
		for tr := 0; tr < trials; tr++ {
			zeros := 0
			for bit := 0; bit < m.R; bit++ {
				allOne := true
				for k := 0; k < x; k++ {
					if rng.Intn(64) == 0 { // digit is zero w.p. 2^-6
						allOne = false
						break
					}
				}
				if !allOne {
					zeros++
				}
			}
			total += zeros
		}
		mean := float64(total) / trials
		want := m.F(x)
		// Tolerance: 5 standard errors of the mean (σ per trial < sqrt(r)/1).
		tol := 5 * math.Sqrt(float64(m.R)) / math.Sqrt(trials) * 3
		if math.Abs(mean-want) > tol {
			t.Errorf("x=%d: simulated mean zeros %.2f vs F(x)=%.2f (tol %.2f)", x, mean, want, tol)
		}
	}
}

func TestFPanicsOnNegative(t *testing.T) {
	m := paperModel(t)
	defer func() {
		if recover() == nil {
			t.Error("F(-1) did not panic")
		}
	}()
	m.F(-1)
}

func TestExpectedHammingProperties(t *testing.T) {
	m := paperModel(t)
	// Identical keyword sets (x̄ = x) minimize the distance; disjoint sets
	// (x̄ = 0) maximize it; the function is decreasing in x̄.
	x := 35 // 5 genuine + 30 random, the Figure 2(b) regime
	prev := math.Inf(1)
	for xbar := 0; xbar <= x; xbar++ {
		d := m.ExpectedHamming(x, xbar)
		if d < 0 || d > float64(m.R) {
			t.Fatalf("Δ out of range at x̄=%d: %v", xbar, d)
		}
		if d > prev {
			t.Fatalf("Δ not non-increasing in x̄ at %d: %v > %v", xbar, d, prev)
		}
		prev = d
	}
}

// The Section 6 design claim: with V = 30 of U = 60 random keywords, the
// distance between two queries with the *same* genuine keywords is close to
// the distance between queries with different genuine keywords — close enough
// that an adversary "basically needs to make a random guess". We check the
// two expectations are within 15% of each other for 2–6 genuine keywords.
func TestRandomizationMasksSearchPattern(t *testing.T) {
	m := paperModel(t)
	const v, u = 30, 60
	overlapRandom := ExpectedOverlap(u, v) // 15 shared random keywords on average
	for n := 2; n <= 6; n++ {
		x := n + v
		// Same genuine keywords: share n genuine + E[overlap] random.
		sameD := m.ExpectedHamming(x, n+int(overlapRandom))
		// Different genuine keywords: share only random overlap.
		diffD := m.ExpectedHamming(x, int(overlapRandom))
		if sameD >= diffD {
			t.Errorf("n=%d: same-query distance %.1f not below different-query %.1f", n, sameD, diffD)
		}
		if (diffD-sameD)/diffD > 0.15 {
			t.Errorf("n=%d: distance gap %.1f%% too large for masking claim", n, 100*(diffD-sameD)/diffD)
		}
	}
}

func TestExpectedOverlapPaperValue(t *testing.T) {
	// Equation 6 with U = 2V: EO = V/2.
	if got := ExpectedOverlap(60, 30); got != 15 {
		t.Errorf("ExpectedOverlap(60,30) = %v, want 15", got)
	}
}

func TestExpectedOverlapExactMatchesClosedForm(t *testing.T) {
	for _, c := range []struct{ u, v int }{{60, 30}, {40, 20}, {10, 5}, {100, 25}, {7, 7}, {9, 0}} {
		exact := ExpectedOverlapExact(c.u, c.v)
		closed := ExpectedOverlap(c.u, c.v)
		if math.Abs(exact-closed) > 1e-9 {
			t.Errorf("U=%d V=%d: exact %v vs closed %v", c.u, c.v, exact, closed)
		}
	}
}

func TestExpectedOverlapPanics(t *testing.T) {
	cases := []struct{ u, v int }{{0, 0}, {5, 6}, {5, -1}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExpectedOverlap(%d,%d) did not panic", c.u, c.v)
				}
			}()
			ExpectedOverlap(c.u, c.v)
		}()
	}
}

// Monte-Carlo check of the hypergeometric overlap: draw two V-subsets of U
// and count the intersection.
func TestExpectedOverlapMatchesSimulation(t *testing.T) {
	const u, v, trials = 60, 30, 5000
	rng := rand.New(rand.NewSource(2))
	total := 0
	for tr := 0; tr < trials; tr++ {
		a := rng.Perm(u)[:v]
		b := rng.Perm(u)[:v]
		inA := make(map[int]bool, v)
		for _, i := range a {
			inA[i] = true
		}
		for _, i := range b {
			if inA[i] {
				total++
			}
		}
	}
	mean := float64(total) / trials
	if math.Abs(mean-15) > 0.3 {
		t.Errorf("simulated overlap %.3f, want 15 ± 0.3", mean)
	}
}

func TestLogBinomialKnownValues(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{4, 2, math.Log(6)},
		{10, 0, 0},
		{10, 10, 0},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		if got := LogBinomial(c.n, c.k); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("LogBinomial(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogBinomial(3, 5), -1) {
		t.Error("LogBinomial(3,5) should be -Inf")
	}
}

// Section 4.1: 25000 keywords, 2-keyword queries → < 2^28 candidate pairs.
func TestBruteForceTrialsPaperValue(t *testing.T) {
	// The paper approximates 25000² < 2^28 and "approximately 2^27 trials";
	// the exact pair count C(25000,2) is 2^28.2. Accept the neighbourhood.
	bits := BruteForceTrials(25000, 2)
	if bits < 27 || bits > 29 {
		t.Errorf("BruteForceTrials(25000,2) = 2^%.2f, paper estimates ≈ 2^27–2^28", bits)
	}
}

// Theorem 3: the paper eyeballs the Equation 7 bound as ≈ 2^-9. Evaluating
// the binomials exactly (even with the paper's own "20·xi zeros" shortcut)
// gives ≈ 2^-14 — i.e. the theorem's claim P(vT) < 2^-9 holds with margin.
// Assert the exact bound is at most the paper's estimate and not absurdly
// small (which would indicate a formula bug).
func TestTrapdoorForgeryBoundPaperValue(t *testing.T) {
	m := paperModel(t)
	p := m.TrapdoorForgeryBound(30)
	if p <= 0 || p >= 1 {
		t.Fatalf("bound %v outside (0,1)", p)
	}
	bits := -math.Log2(p)
	if bits < 9 {
		t.Errorf("forgery bound = 2^-%.2f, weaker than the paper's 2^-9 claim", bits)
	}
	if bits > 20 {
		t.Errorf("forgery bound = 2^-%.2f, implausibly strong — check formula", bits)
	}
}

func TestFalseAcceptProbabilityShape(t *testing.T) {
	m := paperModel(t)
	// More keywords per document → higher false-accept probability.
	prev := 0.0
	for _, mk := range []int{10, 20, 30, 40} {
		p := m.FalseAcceptProbability(mk, 60, 2)
		if p <= prev {
			t.Fatalf("FAR estimate not increasing in doc keywords at m=%d", mk)
		}
		if p < 0 || p > 1 {
			t.Fatalf("FAR estimate %v outside [0,1]", p)
		}
		prev = p
	}
	// More query keywords → lower false-accept probability.
	prev = 1.0
	for n := 2; n <= 5; n++ {
		p := m.FalseAcceptProbability(40, 60, n)
		if p >= prev {
			t.Fatalf("FAR estimate not decreasing in query keywords at n=%d", n)
		}
		prev = p
	}
}

func TestFalseAcceptProbabilityPanics(t *testing.T) {
	m := paperModel(t)
	defer func() {
		if recover() == nil {
			t.Error("no panic for n=0")
		}
	}()
	m.FalseAcceptProbability(10, 60, 0)
}

// Quick property: Δ(x, x̄) is always within [0, r] for valid inputs.
func TestExpectedHammingQuick(t *testing.T) {
	m := paperModel(t)
	f := func(a, b uint8) bool {
		x := int(a)%80 + 1
		xbar := int(b) % (x + 1)
		d := m.ExpectedHamming(x, xbar)
		return d >= 0 && d <= float64(m.R)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkF62(b *testing.B) {
	m := paperModel(b)
	for i := 0; i < b.N; i++ {
		m.F(62)
	}
}
