// Package analysis implements the analytic model of the MKS scheme's query
// randomization and security arguments (Örencik & Savaş, Sections 6 and 7):
// the zero-count functions F(x) and C(x), the expected Hamming distance
// between query indices (Equation 5), the expected random-keyword overlap
// (Equation 6), the trapdoor-forgery bound of Theorem 3 (Equation 7), and a
// false-accept probability estimate backing the Figure 3 experiment.
package analysis

import (
	"fmt"
	"math"
)

// Model fixes the index geometry: r index bits, d-bit reduction digits.
// The paper's implementation uses r = 448, d = 6.
type Model struct {
	R int // index size in bits
	D int // digit size in bits; a digit is zero with probability 2^(−d)
}

// NewModel validates the geometry.
func NewModel(r, d int) (Model, error) {
	if r <= 0 || d <= 0 || d > 32 {
		return Model{}, fmt.Errorf("analysis: invalid model r=%d d=%d", r, d)
	}
	return Model{R: r, D: d}, nil
}

// p0 is the probability that a single keyword leaves a given index bit zero.
func (m Model) p0() float64 { return math.Pow(2, -float64(m.D)) }

// F returns the expected number of 0 bits in an index built from x keywords,
// computed by the paper's recurrence
//
//	F(1) = r / 2^d
//	F(x) = F(x−1) + F(1) − C(x−1).
//
// F(0) = 0 by convention (the empty AND is the all-ones vector).
func (m Model) F(x int) float64 {
	if x < 0 {
		panic(fmt.Sprintf("analysis: F(%d) undefined", x))
	}
	f := 0.0
	f1 := float64(m.R) * m.p0()
	for i := 1; i <= x; i++ {
		f = f + f1 - f*m.p0() // C(i−1) = F(i−1)/2^d
	}
	return f
}

// FClosed is the closed form of the recurrence, F(x) = r·(1 − (1 − 2^−d)^x).
// It agrees with F to floating-point accuracy and is O(1); exported so tests
// can cross-check the paper's recurrence against the direct derivation.
func (m Model) FClosed(x int) float64 {
	if x < 0 {
		panic(fmt.Sprintf("analysis: F(%d) undefined", x))
	}
	return float64(m.R) * (1 - math.Pow(1-m.p0(), float64(x)))
}

// C returns the expected number of 0 positions shared between an x-keyword
// query index and an independent single-keyword index: C(x) = F(x)/2^d.
func (m Model) C(x int) float64 { return m.F(x) * m.p0() }

// ExpectedHamming evaluates Equation 5: the expected Hamming distance between
// two query indices built from x keywords each, sharing xbar common keywords.
//
//	Δ = (F(x) − F(x̄))·(r − F(x))/r + F(x)·(r − F(x))/r
//
// Two identical queries (x̄ = x) built deterministically have distance
// F(x)·(r−F(x))/r only because the model treats the non-shared zero mass as
// independent; with x̄ = x the first term vanishes.
func (m Model) ExpectedHamming(x, xbar int) float64 {
	if xbar > x {
		panic(fmt.Sprintf("analysis: shared keywords x̄=%d exceed x=%d", xbar, x))
	}
	fx := m.F(x)
	fxb := m.F(xbar)
	r := float64(m.R)
	return (fx-fxb)*(r-fx)/r + fx*(r-fx)/r
}

// ExpectedOverlap evaluates Equation 6 generalized to any U ≥ V: the expected
// number of random keywords shared by two independent V-of-U selections. It
// is the mean of a hypergeometric distribution, V²/U; for the paper's
// U = 2V this is V/2.
func ExpectedOverlap(u, v int) float64 {
	if u <= 0 || v < 0 || v > u {
		panic(fmt.Sprintf("analysis: invalid overlap parameters U=%d V=%d", u, v))
	}
	return float64(v) * float64(v) / float64(u)
}

// ExpectedOverlapExact evaluates the sum of Equation 6 literally:
// Σ_{i=0}^{V} i · C(V,i)·C(U−V, V−i) / C(U,V). Exposed so tests can confirm
// the paper's claim that the sum collapses to V/2 when U = 2V.
func ExpectedOverlapExact(u, v int) float64 {
	if u <= 0 || v < 0 || v > u {
		panic(fmt.Sprintf("analysis: invalid overlap parameters U=%d V=%d", u, v))
	}
	logDenom := logBinomial(u, v)
	sum := 0.0
	for i := 0; i <= v; i++ {
		if v-i > u-v { // second factor would be C(U−V, k) with k > U−V: zero
			continue
		}
		w := math.Exp(logBinomial(v, i) + logBinomial(u-v, v-i) - logDenom)
		sum += float64(i) * w
	}
	return sum
}

// logBinomial returns ln C(n, k) via log-gamma, valid for large n.
func logBinomial(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	ln2, _ := math.Lgamma(float64(k + 1))
	ln3, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - ln2 - ln3
}

// LogBinomial exposes ln C(n,k) for experiment code (e.g. the brute-force
// attack cost estimate of Section 4.1: ~25000² keyword pairs ≈ 2^28).
func LogBinomial(n, k int) float64 { return logBinomial(n, k) }

// TrapdoorForgeryBound evaluates the Theorem 3 bound (Equation 7) on the
// probability that an adversary holding a two-keyword randomized query index
// can assemble a valid single-keyword trapdoor. Following the proof's
// worst-case instantiation: x_i = x_j = r/2^d non-overlapping zeros per
// genuine keyword, and the random keywords contribute ratio·x_i further
// zeros, with ratio = F(V)/F(1). The adversary must choose all x_i genuine
// zeros and none of the x_j zeros when picking x_i + y positions out of the
// x total zeros:
//
//	P(vT) < C(x − x_i − x_j, y) / C(x, x_i + y)
//
// maximized over the adversary's free choice of y. The paper evaluates this
// to ≈ 2^−9 for r = 448, d = 6, V = 30.
func (m Model) TrapdoorForgeryBound(v int) float64 {
	xi := float64(m.R) * m.p0()
	ratio := m.F(v) / m.F(1)
	x := ratio*xi + 2*xi // total zeros: random mass + two genuine keywords
	best := 0.0
	xiI := int(math.Round(xi))
	xI := int(math.Round(x))
	rest := xI - 2*xiI
	for y := 0; y <= rest; y++ {
		p := math.Exp(logBinomial(rest, y) - logBinomial(xI, xiI+y))
		if p > best {
			best = p
		}
	}
	return best
}

// FalseAcceptProbability estimates the per-document probability that a query
// of n genuine keywords falsely matches a document of m genuine keywords
// (that contains none of the query's genuine keywords), when every document
// index carries u random keywords and the query carries v of them. The
// query's random-keyword zeros are automatically covered (its v randoms are a
// subset of the document's u), so a false accept requires every genuine query
// zero to coincide with a document zero:
//
//	P ≈ pDoc^F(n), pDoc = 1 − (1 − 2^−d)^(m+u)
//
// This is the analytic shape behind Figure 3: FAR grows steeply with m
// because pDoc → 1 as the document index fills with zeros.
func (m Model) FalseAcceptProbability(docKeywords, u, n int) float64 {
	if docKeywords < 0 || u < 0 || n <= 0 {
		panic(fmt.Sprintf("analysis: invalid FAR parameters m=%d u=%d n=%d", docKeywords, u, n))
	}
	pDoc := 1 - math.Pow(1-m.p0(), float64(docKeywords+u))
	return math.Pow(pDoc, m.FClosed(n))
}

// BruteForceTrials returns log2 of the number of trials needed to brute-force
// a query of k keywords over a dictionary of size n when the index hash is
// public (the Section 4.1 attack on the keyless scheme of Wang et al. [14]):
// log2(C(n, k)). For n = 25000, k = 2 the paper reports < 2^28 pairs.
func BruteForceTrials(dictionary, keywords int) float64 {
	return logBinomial(dictionary, keywords) / math.Ln2
}
