package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, s := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", s[0], s[1])
				}
			}()
			New(s[0], s[1])
		}()
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(3, 4)
	m.Set(2, 3, 7.5)
	m.Set(0, 0, -1)
	if m.At(2, 3) != 7.5 || m.At(0, 0) != -1 || m.At(1, 1) != 0 {
		t.Error("Set/At mismatch")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("At(2,0) did not panic")
		}
	}()
	m.At(2, 0)
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandomInvertible(5, rng)
	if d := MaxAbsDiff(a.Mul(Identity(5)), a); d > 1e-12 {
		t.Errorf("A·I differs from A by %g", d)
	}
	if d := MaxAbsDiff(Identity(5).Mul(a), a); d > 1e-12 {
		t.Errorf("I·A differs from A by %g", d)
	}
}

func TestMulKnownValues(t *testing.T) {
	a := New(2, 3)
	b := New(3, 2)
	// a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
	vals := []float64{1, 2, 3, 4, 5, 6}
	for i, v := range vals {
		a.Set(i/3, i%3, v)
	}
	vals = []float64{7, 8, 9, 10, 11, 12}
	for i, v := range vals {
		b.Set(i/2, i%2, v)
	}
	c := a.Mul(b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on shape mismatch")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandomInvertible(7, rng)
	v := make([]float64, 7)
	for i := range v {
		v[i] = rng.Float64()
	}
	got := a.MulVec(v)
	col := New(7, 1)
	for i, x := range v {
		col.Set(i, 0, x)
	}
	want := a.Mul(col)
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MulVec[%d] = %v, Mul gives %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestTranspose(t *testing.T) {
	a := New(2, 3)
	a.Set(0, 1, 5)
	a.Set(1, 2, 7)
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", at.Rows, at.Cols)
	}
	if at.At(1, 0) != 5 || at.At(2, 1) != 7 {
		t.Error("transpose values wrong")
	}
	if d := MaxAbsDiff(at.Transpose(), a); d != 0 {
		t.Error("double transpose is not identity")
	}
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := RandomInvertible(n, rng)
		inv, err := a.Inverse()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := MaxAbsDiff(a.Mul(inv), Identity(n)); d > 1e-8 {
			t.Errorf("n=%d: A·A⁻¹ deviates from I by %g", n, d)
		}
		if d := MaxAbsDiff(inv.Mul(a), Identity(n)); d > 1e-8 {
			t.Errorf("n=%d: A⁻¹·A deviates from I by %g", n, d)
		}
	}
}

func TestFactorizeSingular(t *testing.T) {
	a := New(3, 3) // zero matrix
	if _, err := Factorize(a); err == nil {
		t.Error("singular matrix factorized")
	}
	b := New(2, 3)
	if _, err := Factorize(b); err == nil {
		t.Error("non-square matrix factorized")
	}
	// Rank-deficient: two identical rows.
	c := New(2, 2)
	c.Set(0, 0, 1)
	c.Set(0, 1, 2)
	c.Set(1, 0, 1)
	c.Set(1, 1, 2)
	if _, err := Factorize(c); err == nil {
		t.Error("rank-deficient matrix factorized")
	}
}

func TestSolve(t *testing.T) {
	// 2x + y = 5; x − y = 1 → x = 2, y = 1.
	a := New(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, -1)
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{5, 1})
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Errorf("Solve = %v, want [2 1]", x)
	}
}

// Property: for random invertible A and random b, A·Solve(b) == b.
func TestSolveQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		a := RandomInvertible(n, rng)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		lu, err := Factorize(a)
		if err != nil {
			return false
		}
		x := lu.Solve(b)
		back := a.MulVec(x)
		for i := range b {
			if math.Abs(back[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The inner-product preservation at the heart of secure kNN: for any vectors
// p, q and invertible M, (Mᵀp)·(M⁻¹q) = p·q.
func TestSecureKNNInnerProductIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(20)
		m := RandomInvertible(n, rng)
		inv, err := m.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		p := make([]float64, n)
		q := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64()*4 - 2
			q[i] = rng.Float64()*4 - 2
		}
		lhs := Dot(m.Transpose().MulVec(p), inv.MulVec(q))
		rhs := Dot(p, q)
		if math.Abs(lhs-rhs) > 1e-6*(1+math.Abs(rhs)) {
			t.Fatalf("trial %d n=%d: (Mᵀp)·(M⁻¹q) = %v, p·q = %v", trial, n, lhs, rhs)
		}
	}
}

func BenchmarkMulVec500(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := RandomInvertible(500, rng)
	v := make([]float64, 500)
	for i := range v {
		v[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(v)
	}
}

func BenchmarkInverse200(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	m := RandomInvertible(200, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Inverse(); err != nil {
			b.Fatal(err)
		}
	}
}
