// Package matrix provides the dense linear algebra required by the Cao et
// al. MRSE baseline (secure kNN encryption): matrix-vector products with the
// secret invertible matrices M1, M2 and their inverses. Implemented from
// scratch on float64 because the module is stdlib-only; sizes are the
// (n+2)×(n+2) matrices of MRSE where n is the dictionary size ("square
// matrices where the number of rows are in the order of several thousands",
// Örencik & Savaş Section 2).
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	data       []float64
}

// New returns a zero matrix of the given shape. It panics on non-positive
// dimensions.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.data, m.data)
	return out
}

// Transpose returns Mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.data[j*out.Cols+i] = m.data[i*m.Cols+j]
		}
	}
	return out
}

// Mul returns the matrix product m·other. It panics on shape mismatch.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("matrix: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := New(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			rowOut := out.data[i*out.Cols : (i+1)*out.Cols]
			rowOther := other.data[k*other.Cols : (k+1)*other.Cols]
			for j := range rowOut {
				rowOut[j] += a * rowOther[j]
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v. It panics on shape mismatch.
// This is the hot operation of MRSE index and trapdoor generation — one
// O(n²) product per split vector.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("matrix: cannot multiply %dx%d by vector of %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("matrix: dot of %d and %d elements", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu    *Matrix
	pivot []int
	signs int
}

// Factorize computes the LU decomposition of a square matrix. It returns an
// error if the matrix is singular to working precision.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("matrix: cannot factorize %dx%d (not square)", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	for i := range pivot {
		pivot[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot: largest |value| in this column at or below diag.
		p := col
		max := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > max {
				max, p = v, r
			}
		}
		if max < 1e-12 {
			return nil, fmt.Errorf("matrix: singular at column %d", col)
		}
		if p != col {
			lu.swapRows(p, col)
			pivot[p], pivot[col] = pivot[col], pivot[p]
		}
		d := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / d
			lu.Set(r, col, f)
			if f == 0 {
				continue
			}
			rowR := lu.data[r*n : (r+1)*n]
			rowC := lu.data[col*n : (col+1)*n]
			for j := col + 1; j < n; j++ {
				rowR[j] -= f * rowC[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot}, nil
}

func (m *Matrix) swapRows(a, b int) {
	ra := m.data[a*m.Cols : (a+1)*m.Cols]
	rb := m.data[b*m.Cols : (b+1)*m.Cols]
	for j := range ra {
		ra[j], rb[j] = rb[j], ra[j]
	}
}

// Solve returns x with A·x = b.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic(fmt.Sprintf("matrix: solve with rhs of %d, want %d", len(b), n))
	}
	x := make([]float64, n)
	// Apply permutation.
	for i, p := range f.pivot {
		x[i] = b[p]
	}
	// Forward substitution (L has implicit unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.data[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// Inverse returns A⁻¹ via LU factorization.
func (m *Matrix) Inverse() (*Matrix, error) {
	f, err := Factorize(m)
	if err != nil {
		return nil, err
	}
	n := m.Rows
	inv := New(n, n)
	e := make([]float64, n)
	for col := 0; col < n; col++ {
		e[col] = 1
		x := f.Solve(e)
		e[col] = 0
		for row := 0; row < n; row++ {
			inv.Set(row, col, x[row])
		}
	}
	return inv, nil
}

// RandomInvertible draws a random matrix that is invertible with
// overwhelming probability (i.i.d. uniform entries in [-1, 1) plus a small
// diagonal boost) and retries factorization until it succeeds. MRSE key
// generation uses two of these as the secret matrices M1, M2.
func RandomInvertible(n int, rng *rand.Rand) *Matrix {
	for {
		m := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := rng.Float64()*2 - 1
				if i == j {
					v += 2 // diagonal dominance nudge for conditioning
				}
				m.Set(i, j, v)
			}
		}
		if _, err := Factorize(m); err == nil {
			return m
		}
	}
}

// MaxAbsDiff returns max |a_ij − b_ij|, for approximate-equality tests.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("matrix: shape mismatch in MaxAbsDiff")
	}
	max := 0.0
	for i := range a.data {
		if d := math.Abs(a.data[i] - b.data[i]); d > max {
			max = d
		}
	}
	return max
}
