package bitindex

import "fmt"

// This file is the word-level face of the package: raw access to a vector's
// 64-bit words, kernels that run the Equation-3 match relation directly over
// word slices (so callers can store many indices back-to-back in one flat
// arena instead of boxing each Vector), and Sparse, a preprocessed query form
// that skips every word the query cannot fail on.

// WordsFor returns the number of 64-bit words backing a vector of n bits —
// the stride of one index row in a columnar arena.
func WordsFor(n int) int { return (n + 63) / 64 }

// Words returns the vector's backing words, least significant first, with the
// unused tail bits of the last word zero. The slice aliases the vector's
// storage: callers must treat it as read-only.
func (v *Vector) Words() []uint64 { return v.words }

// AppendTo appends the vector's words to dst and returns the extended slice.
// It is the arena fill operation: consecutive AppendTo calls lay index rows
// back-to-back with stride WordsFor(v.Len()).
func (v *Vector) AppendTo(dst []uint64) []uint64 { return append(dst, v.words...) }

// CopyWordsTo overwrites dst with the vector's words (the arena in-place
// replace operation). It panics if dst is not exactly WordsFor(v.Len()) long.
func (v *Vector) CopyWordsTo(dst []uint64) {
	if len(dst) != len(v.words) {
		panic(fmt.Sprintf("bitindex: destination holds %d words, vector has %d", len(dst), len(v.words)))
	}
	copy(dst, v.words)
}

// FromWords builds an n-bit vector from a row of raw words (the inverse of
// Words/AppendTo), copying them so the result does not alias the arena. Tail
// bits beyond n are cleared. It panics if n <= 0 or the row is not exactly
// WordsFor(n) words.
func FromWords(n int, row []uint64) *Vector {
	if n <= 0 {
		panic(fmt.Sprintf("bitindex: invalid vector length %d", n))
	}
	if len(row) != WordsFor(n) {
		panic(fmt.Sprintf("bitindex: row holds %d words, %d bits need %d", len(row), n, WordsFor(n)))
	}
	v := &Vector{words: make([]uint64, len(row)), n: n}
	copy(v.words, row)
	v.clampTail()
	return v
}

// Sparse is a query preprocessed for the zero-word-skipping match kernel.
//
// Equation 3 (v matches q iff v ∧ ¬q = 0) can only fail at words where
// ¬q ≠ 0, i.e. words holding at least one 0 bit of q. Sparse stores ¬q
// plus the offsets of those "active" words; its kernels test only the active
// offsets of each document row and skip the all-ones remainder of the query
// entirely. Queries built from few trapdoors are zero-sparse (Section 6's
// F(x) starts at r/2^d zeros for one keyword), so most words are inactive.
//
// A Sparse is immutable after Sparsify/SparsifyInto and safe for concurrent
// use by any number of kernel calls.
type Sparse struct {
	n     int      // bits in the query
	not   []uint64 // ¬q, tail bits beyond n cleared
	off   []int32  // offsets of the nonzero words of not, ascending
	dense bool     // every word is active: use the branch-free linear sweep
}

// Sparsify preprocesses query q for the word-skipping kernels.
func (q *Vector) Sparsify() *Sparse {
	s := new(Sparse)
	q.SparsifyInto(s)
	return s
}

// SparsifyInto is Sparsify reusing s's backing storage, for callers that keep
// per-scan scratch to make the query hot path allocation-free.
func (q *Vector) SparsifyInto(s *Sparse) {
	s.n = q.n
	if cap(s.not) < len(q.words) {
		s.not = make([]uint64, len(q.words))
		s.off = make([]int32, 0, len(q.words))
	}
	s.not = s.not[:len(q.words)]
	s.off = s.off[:0]
	for i, w := range q.words {
		s.not[i] = ^w
	}
	// Clear the tail so inverted padding never reads as active.
	if rem := s.n % 64; rem != 0 {
		s.not[len(s.not)-1] &= (uint64(1) << uint(rem)) - 1
	}
	for i, w := range s.not {
		if w != 0 {
			s.off = append(s.off, int32(i))
		}
	}
	s.dense = len(s.off) == len(s.not)
}

// Len returns the number of bits in the query.
func (s *Sparse) Len() int { return s.n }

// WordLen returns the number of words per index row the kernels expect.
func (s *Sparse) WordLen() int { return len(s.not) }

// ActiveWords returns the number of words the kernels actually test per
// document — the ¬q ≠ 0 words of the Section-6 zero analysis.
func (s *Sparse) ActiveWords() int { return len(s.off) }

// MatchWords reports whether a document index row (raw words, as laid out by
// AppendTo) matches the query under Equation 3, testing only the query's
// active words. It is the rank-walk primitive: the Algorithm-1 level walk
// tests one specific row per level, where a whole-arena kernel has nothing
// to amortize. It panics if the row length differs from WordLen.
func (s *Sparse) MatchWords(row []uint64) bool {
	if len(row) != len(s.not) {
		panic(fmt.Sprintf("bitindex: row holds %d words, query needs %d", len(row), len(s.not)))
	}
	if s.dense {
		for i, m := range s.not {
			if row[i]&m != 0 {
				return false
			}
		}
		return true
	}
	for _, o := range s.off {
		if row[o]&s.not[o] != 0 {
			return false
		}
	}
	return true
}

// AppendMatchingRows scans a row-major columnar arena with one query and
// appends the indices of matching rows to dst, returning the extended slice.
// The query's first active word test is hoisted out of the per-row call, so
// the fail-fast common case (most documents mismatch on the first active
// word) touches exactly one word per row. The server's level-0 screen now
// runs AppendMatchingRowsColumns over the word-major arena instead; this
// kernel remains the row-major reference the blocked kernel is
// property-tested against, and the scan for callers that only hold a
// row-major arena. It panics if stride differs from WordLen or the arena is
// not a whole number of rows.
func (s *Sparse) AppendMatchingRows(arena []uint64, stride int, dst []int32) []int32 {
	if stride != len(s.not) {
		panic(fmt.Sprintf("bitindex: arena stride %d, query needs %d", stride, len(s.not)))
	}
	if stride == 0 || len(arena)%stride != 0 {
		panic(fmt.Sprintf("bitindex: arena of %d words is not a whole number of %d-word rows", len(arena), stride))
	}
	n := len(arena) / stride
	if len(s.off) == 0 {
		// A query with no zero bits matches every document (Equation 3).
		for i := 0; i < n; i++ {
			dst = append(dst, int32(i))
		}
		return dst
	}
	o0 := int(s.off[0])
	m0 := s.not[o0]
	rest := s.off[1:]
	for i, base := 0, 0; i < n; i, base = i+1, base+stride {
		if arena[base+o0]&m0 != 0 {
			continue
		}
		ok := true
		for _, o := range rest {
			if arena[base+int(o)]&s.not[o] != 0 {
				ok = false
				break
			}
		}
		if ok {
			dst = append(dst, int32(i))
		}
	}
	return dst
}
