package bitindex

import (
	mrand "math/rand"
	"testing"
)

// sparseQuery builds a query with roughly the given number of zero bits —
// the knob the zero-word-skipping kernel keys on.
func sparseQuery(rng *mrand.Rand, n, zeros int) *Vector {
	q := NewOnes(n)
	for i := 0; i < zeros; i++ {
		q.SetBit(rng.Intn(n), 0)
	}
	return q
}

func TestWordsForMatchesBacking(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 448, 1000} {
		if got := WordsFor(n); got != len(New(n).Words()) {
			t.Errorf("WordsFor(%d) = %d, backing has %d words", n, got, len(New(n).Words()))
		}
	}
}

func TestFromWordsRoundTrip(t *testing.T) {
	rng := mrand.New(mrand.NewSource(21))
	for _, n := range []int{1, 63, 64, 65, 448} {
		v := randomVector(rng, n)
		u := FromWords(n, v.Words())
		if !v.Equal(u) {
			t.Errorf("n=%d: FromWords(Words()) != original", n)
		}
		// The copy must not alias the source row.
		u.SetBit(0, 1-u.Bit(0))
		if v.Equal(u) {
			t.Errorf("n=%d: FromWords shares storage with its input", n)
		}
	}
}

func TestFromWordsClampsTail(t *testing.T) {
	row := []uint64{^uint64(0)}
	v := FromWords(5, row)
	if v.OnesCount() != 5 {
		t.Errorf("tail bits beyond n survived: %d ones, want 5", v.OnesCount())
	}
}

func TestFromWordsPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bits":  func() { FromWords(0, nil) },
		"short row":  func() { FromWords(65, make([]uint64, 1)) },
		"long row":   func() { FromWords(64, make([]uint64, 2)) },
		"neg length": func() { FromWords(-3, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAppendToCopyWordsTo(t *testing.T) {
	rng := mrand.New(mrand.NewSource(22))
	a, b := randomVector(rng, 130), randomVector(rng, 130)
	stride := WordsFor(130)
	arena := a.AppendTo(nil)
	arena = b.AppendTo(arena)
	if len(arena) != 2*stride {
		t.Fatalf("arena holds %d words, want %d", len(arena), 2*stride)
	}
	if !FromWords(130, arena[:stride]).Equal(a) || !FromWords(130, arena[stride:]).Equal(b) {
		t.Fatal("AppendTo rows do not round-trip")
	}
	// In-place replace of row 0.
	c := randomVector(rng, 130)
	c.CopyWordsTo(arena[:stride])
	if !FromWords(130, arena[:stride]).Equal(c) {
		t.Fatal("CopyWordsTo did not overwrite the row")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CopyWordsTo with wrong-size destination did not panic")
			}
		}()
		c.CopyWordsTo(arena)
	}()
}

// The core property of the whole arena design: every sparse kernel —
// MatchWords, AppendMatchingRows — must agree exactly with the naive Matches
// relation, for random vectors, lengths (word-boundary cases included), zero
// densities, and batch sizes.
func TestSparseKernelsAgreeWithMatches(t *testing.T) {
	rng := mrand.New(mrand.NewSource(23))
	lengths := []int{1, 7, 63, 64, 65, 127, 128, 200, 448, 577}
	for trial := 0; trial < 60; trial++ {
		n := lengths[trial%len(lengths)]
		stride := WordsFor(n)
		ndocs := 1 + rng.Intn(40)
		docs := make([]*Vector, ndocs)
		var arena []uint64
		for i := range docs {
			docs[i] = randomVector(rng, n)
			arena = docs[i].AppendTo(arena)
		}
		nq := 1 + rng.Intn(5)
		qs := make([]*Sparse, nq)
		raw := make([]*Vector, nq)
		for i := range qs {
			// Mix zero densities: all-ones (no active words), a few zeros
			// (the skip kernel's sweet spot), and dense random.
			switch rng.Intn(3) {
			case 0:
				raw[i] = NewOnes(n)
			case 1:
				raw[i] = sparseQuery(rng, n, 1+rng.Intn(4))
			default:
				raw[i] = randomVector(rng, n)
			}
			qs[i] = raw[i].Sparsify()
		}

		for d, doc := range docs {
			for qi, q := range qs {
				want := doc.Matches(raw[qi])
				if got := q.MatchWords(arena[d*stride : (d+1)*stride]); got != want {
					t.Fatalf("trial %d n=%d doc %d query %d: MatchWords=%v, Matches=%v", trial, n, d, qi, got, want)
				}
			}
		}
		for qi, q := range qs {
			rows := q.AppendMatchingRows(arena, stride, nil)
			ri := 0
			for d, doc := range docs {
				want := doc.Matches(raw[qi])
				if want {
					if ri >= len(rows) || rows[ri] != int32(d) {
						t.Fatalf("trial %d query %d: AppendMatchingRows missing row %d (got %v)", trial, qi, d, rows)
					}
					ri++
				}
			}
			if ri != len(rows) {
				t.Fatalf("trial %d query %d: AppendMatchingRows has %d extra rows", trial, qi, len(rows)-ri)
			}
		}
	}
}

// SparsifyInto must fully reset reused storage: a dense query sparsified
// into scratch previously holding a sparse one (and vice versa) must behave
// identically to a fresh Sparsify.
func TestSparsifyIntoReuse(t *testing.T) {
	rng := mrand.New(mrand.NewSource(24))
	var s Sparse
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(300)
		var q *Vector
		if trial%2 == 0 {
			q = sparseQuery(rng, n, 1+rng.Intn(3))
		} else {
			q = randomVector(rng, n)
		}
		q.SparsifyInto(&s)
		fresh := q.Sparsify()
		if s.Len() != fresh.Len() || s.ActiveWords() != fresh.ActiveWords() || s.WordLen() != fresh.WordLen() {
			t.Fatalf("trial %d: reused Sparse differs from fresh (%d/%d/%d vs %d/%d/%d)",
				trial, s.Len(), s.ActiveWords(), s.WordLen(), fresh.Len(), fresh.ActiveWords(), fresh.WordLen())
		}
		doc := randomVector(rng, n)
		if s.MatchWords(doc.Words()) != doc.Matches(q) {
			t.Fatalf("trial %d: reused Sparse disagrees with Matches", trial)
		}
	}
}

func TestSparseActiveWords(t *testing.T) {
	q := NewOnes(448)
	if s := q.Sparsify(); s.ActiveWords() != 0 {
		t.Errorf("all-ones query has %d active words, want 0", s.ActiveWords())
	}
	q.SetBit(100, 0) // word 1
	q.SetBit(101, 0) // word 1 again
	q.SetBit(400, 0) // word 6
	if s := q.Sparsify(); s.ActiveWords() != 2 {
		t.Errorf("query with zeros in 2 words has %d active words", s.ActiveWords())
	}
	// Inverted padding of the last word must never count as active.
	if s := NewOnes(65).Sparsify(); s.ActiveWords() != 0 {
		t.Errorf("all-ones 65-bit query has %d active words, want 0", s.ActiveWords())
	}
}

func TestSparseKernelPanics(t *testing.T) {
	s := NewOnes(64).Sparsify()
	for name, fn := range map[string]func(){
		"row too short": func() { s.MatchWords(nil) },
		"row too long":  func() { s.MatchWords(make([]uint64, 2)) },
		"rows stride":   func() { s.AppendMatchingRows(make([]uint64, 4), 2, nil) },
		"rows ragged":   func() { NewOnes(80).Sparsify().AppendMatchingRows(make([]uint64, 3), 2, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkSparseMatchArena448(b *testing.B) {
	rng := mrand.New(mrand.NewSource(25))
	const docs = 1000
	stride := WordsFor(448)
	var arena []uint64
	for i := 0; i < docs; i++ {
		arena = randomVector(rng, 448).AppendTo(arena)
	}
	for _, zeros := range []int{2, 7, 170} {
		q := sparseQuery(rng, 448, zeros).Sparsify()
		b.Run(map[int]string{2: "zeros=2", 7: "zeros=7", 170: "zeros=170"}[zeros], func(b *testing.B) {
			var rows []int32
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows = q.AppendMatchingRows(arena, stride, rows[:0])
			}
		})
	}
}
