package bitindex

import (
	mrand "math/rand"
	"testing"
)

// transpose lays docs out word-major: cols[w][row] = word w of docs[row].
func transpose(docs []*Vector, stride int) [][]uint64 {
	cols := make([][]uint64, stride)
	for w := range cols {
		cols[w] = make([]uint64, len(docs))
	}
	for row, d := range docs {
		for w, word := range d.Words() {
			cols[w][row] = word
		}
	}
	return cols
}

// The blocked word-major kernel must agree, byte for byte, with both the
// row-major AppendMatchingRows kernel and the naive per-row MatchWords loop,
// across randomized vector lengths (stride-1 included), row counts that
// exercise full blocks, partial tail blocks and the empty arena, zero
// densities from all-ones to dense random, and a shared scratch reused
// across every geometry.
func TestColumnKernelAgreesWithRowKernels(t *testing.T) {
	rng := mrand.New(mrand.NewSource(26))
	lengths := []int{1, 7, 63, 64, 65, 127, 128, 200, 448, 577}
	rowCounts := []int{0, 1, 3, 63, 64, 65, 127, 128, 200, 256, 300}
	var bs BlockScratch // reused across all trials, like a worker's scratch
	for trial := 0; trial < 120; trial++ {
		n := lengths[trial%len(lengths)]
		stride := WordsFor(n)
		var ndocs int
		if trial%3 == 0 {
			ndocs = rowCounts[(trial/3)%len(rowCounts)]
		} else {
			ndocs = rng.Intn(260)
		}
		docs := make([]*Vector, ndocs)
		var arena []uint64
		for i := range docs {
			docs[i] = randomVector(rng, n)
			arena = docs[i].AppendTo(arena)
		}
		cols := transpose(docs, stride)

		for qi := 0; qi < 4; qi++ {
			var raw *Vector
			switch qi {
			case 0:
				raw = NewOnes(n) // no active words: matches everything
			case 1:
				raw = sparseQuery(rng, n, 1+rng.Intn(3)) // one-ish active word
			case 2:
				raw = sparseQuery(rng, n, 1+rng.Intn(n)) // multi-word refinement
			default:
				raw = randomVector(rng, n) // dense: every word active
			}
			q := raw.Sparsify()

			wantRows := q.AppendMatchingRows(arena, stride, nil)
			gotRows := q.AppendMatchingRowsColumns(cols, ndocs, &bs, nil)
			if len(gotRows) != len(wantRows) {
				t.Fatalf("trial %d n=%d docs=%d query %d: cols kernel found %d rows, row kernel %d",
					trial, n, ndocs, qi, len(gotRows), len(wantRows))
			}
			for i := range wantRows {
				if gotRows[i] != wantRows[i] {
					t.Fatalf("trial %d n=%d docs=%d query %d: row %d is %d, want %d",
						trial, n, ndocs, qi, i, gotRows[i], wantRows[i])
				}
			}
			// Independent naive reference: per-row MatchWords.
			ri := 0
			for d := 0; d < ndocs; d++ {
				if !q.MatchWords(arena[d*stride : (d+1)*stride]) {
					continue
				}
				if ri >= len(gotRows) || gotRows[ri] != int32(d) {
					t.Fatalf("trial %d query %d: cols kernel missing row %d", trial, qi, d)
				}
				ri++
			}
			if ri != len(gotRows) {
				t.Fatalf("trial %d query %d: cols kernel has %d extra rows", trial, qi, len(gotRows)-ri)
			}
		}
	}
}

// A nil scratch must work (the kernel allocates its own) and produce the
// same output as a reused one.
func TestColumnKernelNilScratch(t *testing.T) {
	rng := mrand.New(mrand.NewSource(27))
	n := 448
	stride := WordsFor(n)
	docs := make([]*Vector, 130)
	for i := range docs {
		docs[i] = randomVector(rng, n)
	}
	cols := transpose(docs, stride)
	q := sparseQuery(rng, n, 20).Sparsify()
	var bs BlockScratch
	with := q.AppendMatchingRowsColumns(cols, len(docs), &bs, nil)
	without := q.AppendMatchingRowsColumns(cols, len(docs), nil, nil)
	if len(with) != len(without) {
		t.Fatalf("nil scratch found %d rows, reused scratch %d", len(without), len(with))
	}
	for i := range with {
		if with[i] != without[i] {
			t.Fatalf("row %d: nil scratch %d, reused scratch %d", i, without[i], with[i])
		}
	}
}

func TestColumnKernelPanics(t *testing.T) {
	s := NewOnes(128).Sparsify() // 2 words
	good := [][]uint64{make([]uint64, 3), make([]uint64, 3)}
	for name, fn := range map[string]func(){
		"column count":  func() { s.AppendMatchingRowsColumns([][]uint64{nil}, 0, nil, nil) },
		"negative rows": func() { s.AppendMatchingRowsColumns(good, -1, nil, nil) },
		// An active column shorter than rows must panic; word 1 is active.
		"ragged column": func() {
			q := NewOnes(128)
			q.SetBit(100, 0)
			q.Sparsify().AppendMatchingRowsColumns([][]uint64{make([]uint64, 3), make([]uint64, 2)}, 3, nil, nil)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Steady-state kernel calls with warm scratch and a pre-grown destination
// must not allocate — the server's scan loop depends on it.
func TestColumnKernelAllocationFree(t *testing.T) {
	rng := mrand.New(mrand.NewSource(28))
	n := 448
	stride := WordsFor(n)
	docs := make([]*Vector, 1000)
	for i := range docs {
		docs[i] = randomVector(rng, n)
	}
	cols := transpose(docs, stride)
	q := sparseQuery(rng, n, 30).Sparsify()
	var bs BlockScratch
	rows := make([]int32, 0, len(docs))
	rows = q.AppendMatchingRowsColumns(cols, len(docs), &bs, rows[:0]) // warm the scratch
	if got := testing.AllocsPerRun(50, func() {
		rows = q.AppendMatchingRowsColumns(cols, len(docs), &bs, rows[:0])
	}); got > 0 {
		t.Errorf("warm kernel call allocates %.0f times, want 0", got)
	}
}

func BenchmarkColumnKernel448(b *testing.B) {
	rng := mrand.New(mrand.NewSource(29))
	const docs = 10000
	n := 448
	stride := WordsFor(n)
	vecs := make([]*Vector, docs)
	for i := range vecs {
		v := New(n)
		for j := 0; j < n; j++ {
			if rng.Intn(100) < 28 { // document-index one-density under defaults
				v.SetBit(j, 1)
			}
		}
		vecs[i] = v
	}
	cols := transpose(vecs, stride)
	for _, zeros := range []int{2, 7, 170} {
		q := sparseQuery(rng, n, zeros).Sparsify()
		b.Run(map[int]string{2: "zeros=2", 7: "zeros=7", 170: "zeros=170"}[zeros], func(b *testing.B) {
			var bs BlockScratch
			var rows []int32
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows = q.AppendMatchingRowsColumns(cols, docs, &bs, rows[:0])
			}
		})
	}
}
