package bitindex

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalBinary exercises the wire decoder with arbitrary bytes. The
// encoding is canonical — a 4-byte big-endian bit length, exactly
// ByteLen(n) payload bytes, no set bits past n — so any input the decoder
// accepts must re-marshal to the identical bytes, and any structural
// violation must be rejected with ErrCorrupt rather than a panic or a
// silently mangled vector.
func FuzzUnmarshalBinary(f *testing.F) {
	for _, n := range []int{1, 8, 63, 64, 65, 448} {
		v := NewOnes(n)
		data, err := v.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 9, 0xff})
	f.Add([]byte{0, 0, 0, 4, 0xf0}) // set bits beyond the declared length

	f.Fuzz(func(t *testing.T, data []byte) {
		var v Vector
		if err := v.UnmarshalBinary(data); err != nil {
			if err != ErrCorrupt {
				t.Fatalf("non-sentinel error %v", err)
			}
			return
		}
		if v.Len() <= 0 {
			t.Fatalf("accepted a %d-bit vector", v.Len())
		}
		out, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted input failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip not canonical:\nin  %x\nout %x", data, out)
		}
		var u Vector
		if err := u.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if !v.Equal(&u) {
			t.Fatal("re-unmarshal produced a different vector")
		}
	})
}
