package bitindex

import (
	"crypto/rand"
	"math"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

func randomVector(rng *mrand.Rand, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		v.SetBit(i, rng.Intn(2))
	}
	return v
}

func TestNewIsAllZero(t *testing.T) {
	for _, n := range []int{1, 7, 63, 64, 65, 448, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("Len() = %d, want %d", v.Len(), n)
		}
		if v.OnesCount() != 0 {
			t.Errorf("New(%d) has %d ones, want 0", n, v.OnesCount())
		}
		if v.ZerosCount() != n {
			t.Errorf("New(%d) has %d zeros, want %d", n, v.ZerosCount(), n)
		}
	}
}

func TestNewOnesIsAllOnes(t *testing.T) {
	for _, n := range []int{1, 7, 63, 64, 65, 448} {
		v := NewOnes(n)
		if v.OnesCount() != n {
			t.Errorf("NewOnes(%d) has %d ones, want %d", n, v.OnesCount(), n)
		}
		for i := 0; i < n; i++ {
			if v.Bit(i) != 1 {
				t.Fatalf("NewOnes(%d).Bit(%d) = 0", n, i)
			}
		}
	}
}

func TestNewPanicsOnBadLength(t *testing.T) {
	for _, n := range []int{0, -1, -64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestSetBitGetBit(t *testing.T) {
	v := New(130)
	positions := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, p := range positions {
		v.SetBit(p, 1)
	}
	for _, p := range positions {
		if v.Bit(p) != 1 {
			t.Errorf("Bit(%d) = 0 after SetBit(%d,1)", p, p)
		}
	}
	if v.OnesCount() != len(positions) {
		t.Errorf("OnesCount = %d, want %d", v.OnesCount(), len(positions))
	}
	for _, p := range positions {
		v.SetBit(p, 0)
	}
	if v.OnesCount() != 0 {
		t.Errorf("OnesCount = %d after clearing, want 0", v.OnesCount())
	}
}

func TestBitPanicsOutOfRange(t *testing.T) {
	v := New(10)
	for _, p := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) did not panic", p)
				}
			}()
			v.Bit(p)
		}()
	}
}

func TestAndBasic(t *testing.T) {
	a := New(8)
	b := New(8)
	a.SetBit(0, 1)
	a.SetBit(1, 1)
	b.SetBit(1, 1)
	b.SetBit(2, 1)
	c := a.And(b)
	if c.Bit(0) != 0 || c.Bit(1) != 1 || c.Bit(2) != 0 {
		t.Errorf("And produced %v", c)
	}
	// operands untouched
	if a.Bit(0) != 1 || b.Bit(2) != 1 {
		t.Error("And mutated its operands")
	}
}

func TestAndIdentity(t *testing.T) {
	rng := mrand.New(mrand.NewSource(1))
	v := randomVector(rng, 448)
	if !v.And(NewOnes(448)).Equal(v) {
		t.Error("v AND ones != v")
	}
	if v.And(New(448)).OnesCount() != 0 {
		t.Error("v AND zeros != zeros")
	}
}

func TestAndLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("And with mismatched lengths did not panic")
		}
	}()
	New(8).And(New(9))
}

// The fundamental correctness property of the scheme: a document index that
// was produced by ANDing a superset of the query's keyword indices always
// matches the query (no false rejects, Section 4.3).
func TestMatchNoFalseRejects(t *testing.T) {
	rng := mrand.New(mrand.NewSource(2))
	const r = 448
	for trial := 0; trial < 200; trial++ {
		nDoc := 1 + rng.Intn(30)
		keywords := make([]*Vector, nDoc)
		for i := range keywords {
			keywords[i] = randomVector(rng, r)
		}
		doc := NewOnes(r)
		for _, k := range keywords {
			doc.AndInto(k)
		}
		// Query over a random subset of the document's keywords.
		q := NewOnes(r)
		for _, k := range keywords {
			if rng.Intn(2) == 0 {
				q.AndInto(k)
			}
		}
		if !doc.Matches(q) {
			t.Fatalf("trial %d: document index does not match query over its own keywords", trial)
		}
	}
}

func TestMatchDetectsForeignZeros(t *testing.T) {
	const r = 64
	doc := NewOnes(r) // document with "no zeros"
	q := NewOnes(r)
	q.SetBit(5, 0)
	// Query demands a zero at position 5; document has a 1 there -> no match.
	if doc.Matches(q) {
		t.Error("document with 1 at a query-zero position must not match")
	}
	doc.SetBit(5, 0)
	if !doc.Matches(q) {
		t.Error("document with 0 at every query-zero position must match")
	}
}

func TestMatchesSelf(t *testing.T) {
	rng := mrand.New(mrand.NewSource(3))
	for i := 0; i < 50; i++ {
		v := randomVector(rng, 200)
		if !v.Matches(v) {
			t.Fatal("vector does not match itself")
		}
	}
}

// Property: match is exactly "zeros(q) ⊆ zeros(doc)".
func TestMatchEquivalentToZeroSubset(t *testing.T) {
	rng := mrand.New(mrand.NewSource(4))
	for i := 0; i < 300; i++ {
		doc := randomVector(rng, 96)
		q := randomVector(rng, 96)
		want := true
		for j := 0; j < 96; j++ {
			if q.Bit(j) == 0 && doc.Bit(j) != 0 {
				want = false
				break
			}
		}
		if got := doc.Matches(q); got != want {
			t.Fatalf("Matches = %v, zero-subset says %v\ndoc=%v\nq=%v", got, want, doc, q)
		}
	}
}

// Property: AND-ing more trapdoors into a query only zeroes more bits, so any
// document matching the bigger query also matches the smaller one
// (monotonicity of conjunctive search).
func TestMatchMonotoneUnderAnd(t *testing.T) {
	rng := mrand.New(mrand.NewSource(5))
	for i := 0; i < 300; i++ {
		doc := randomVector(rng, 128)
		q1 := randomVector(rng, 128)
		q2 := q1.And(randomVector(rng, 128))
		if doc.Matches(q2) && !doc.Matches(q1) {
			t.Fatal("match not monotone: matches narrower query but not broader")
		}
	}
}

func TestHammingAxioms(t *testing.T) {
	rng := mrand.New(mrand.NewSource(6))
	f := func(seedA, seedB, seedC int64) bool {
		a := randomVector(mrand.New(mrand.NewSource(seedA)), 160)
		b := randomVector(mrand.New(mrand.NewSource(seedB)), 160)
		c := randomVector(mrand.New(mrand.NewSource(seedC)), 160)
		// identity, symmetry, triangle inequality
		if a.Hamming(a) != 0 {
			return false
		}
		if a.Hamming(b) != b.Hamming(a) {
			return false
		}
		return a.Hamming(c) <= a.Hamming(b)+b.Hamming(c)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHammingManual(t *testing.T) {
	a := New(70)
	b := New(70)
	b.SetBit(0, 1)
	b.SetBit(64, 1)
	b.SetBit(69, 1)
	if d := a.Hamming(b); d != 3 {
		t.Errorf("Hamming = %d, want 3", d)
	}
}

func TestZeroPositions(t *testing.T) {
	v := NewOnes(10)
	v.SetBit(2, 0)
	v.SetBit(7, 0)
	zs := v.ZeroPositions()
	if len(zs) != 2 || zs[0] != 2 || zs[1] != 7 {
		t.Errorf("ZeroPositions = %v, want [2 7]", zs)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewOnes(65)
	b := a.Clone()
	b.SetBit(64, 0)
	if a.Bit(64) != 1 {
		t.Error("Clone shares storage with original")
	}
	if !a.Equal(a.Clone()) {
		t.Error("Clone not equal to original")
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if New(8).Equal(New(9)) {
		t.Error("vectors of different lengths compare equal")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := mrand.New(mrand.NewSource(7))
	for _, n := range []int{1, 8, 63, 64, 65, 448, 449, 1000} {
		v := randomVector(rng, n)
		data, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if len(data) != 4+ByteLen(n) {
			t.Errorf("encoded length %d, want %d", len(data), 4+ByteLen(n))
		}
		var u Vector
		if err := u.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !v.Equal(&u) {
			t.Errorf("round trip mismatch for n=%d", n)
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0, 0, 0},                // too short for header
		{0, 0, 0, 0},             // zero length
		{0xff, 0xff, 0xff, 0xff}, // absurd length with no payload
		{0, 0, 0, 9, 0xff},       // 9 bits claimed, 1 payload byte (needs 2)
		{0, 0, 0, 4, 0xf0},       // set bits beyond declared length
	}
	for i, data := range cases {
		var v Vector
		if err := v.UnmarshalBinary(data); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
}

func TestMarshalRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := mrand.New(mrand.NewSource(seed))
		n := 1 + rng.Intn(600)
		v := randomVector(rng, n)
		data, _ := v.MarshalBinary()
		var u Vector
		if err := u.UnmarshalBinary(data); err != nil {
			return false
		}
		return v.Equal(&u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReduceZeroSource(t *testing.T) {
	// An all-zero source reduces to the all-zero vector: every digit is 0.
	src := make([]byte, 448*6/8)
	v := Reduce(src, 448, 6)
	if v.OnesCount() != 0 {
		t.Errorf("all-zero source gave %d ones, want 0", v.OnesCount())
	}
}

func TestReduceAllOnesSource(t *testing.T) {
	src := make([]byte, 448*6/8)
	for i := range src {
		src[i] = 0xff
	}
	v := Reduce(src, 448, 6)
	if v.OnesCount() != 448 {
		t.Errorf("all-one source gave %d ones, want 448", v.OnesCount())
	}
}

func TestReduceSingleDigit(t *testing.T) {
	// d=8: each source byte is one digit.
	src := []byte{0, 1, 0, 255, 7, 0}
	v := Reduce(src, 6, 8)
	want := []int{0, 1, 0, 1, 1, 0}
	for i, w := range want {
		if v.Bit(i) != w {
			t.Errorf("bit %d = %d, want %d", i, v.Bit(i), w)
		}
	}
}

func TestReduceD1IsIdentity(t *testing.T) {
	// With d=1 the reduction is the identity on bits.
	src := []byte{0b10110100}
	v := Reduce(src, 8, 1)
	want := []int{0, 0, 1, 0, 1, 1, 0, 1} // LSB-first within the byte
	for i, w := range want {
		if v.Bit(i) != w {
			t.Errorf("bit %d = %d, want %d", i, v.Bit(i), w)
		}
	}
}

func TestReduceCrossesByteBoundaries(t *testing.T) {
	// d=6, r=4 consumes 3 bytes; verify digit extraction across boundaries.
	// Bits (LSB-first): digit0 = bits 0..5, digit1 = bits 6..11, etc.
	src := []byte{0b11000000, 0b00001111, 0b00000011}
	// digit0 = bits0-5 of byte0 = 000000 -> 0
	// digit1 = bits6-7 of byte0 (11) + bits0-3 of byte1 (1111) -> nonzero
	// digit2 = bits4-7 of byte1 (0000) + bits0-1 of byte2 (11) -> nonzero
	// digit3 = bits2-7 of byte2 = 000000 -> 0
	v := Reduce(src, 4, 6)
	want := []int{0, 1, 1, 0}
	for i, w := range want {
		if v.Bit(i) != w {
			t.Errorf("digit %d -> bit %d, want %d", i, v.Bit(i), w)
		}
	}
}

// Statistical property from Section 6: with uniform source bits the expected
// number of zeros in a reduced index is F(1) = r/2^d.
func TestReduceZeroDensityMatchesF1(t *testing.T) {
	const r, d, trials = 448, 6, 400
	totalZeros := 0
	src := make([]byte, r*d/8)
	for i := 0; i < trials; i++ {
		if _, err := rand.Read(src); err != nil {
			t.Fatal(err)
		}
		totalZeros += Reduce(src, r, d).ZerosCount()
	}
	mean := float64(totalZeros) / trials
	want := float64(r) / math.Pow(2, d) // = 7.0
	// Standard deviation of zeros per index is sqrt(r·p·(1-p)) ≈ 2.63, so the
	// mean over 400 trials has σ ≈ 0.13; a ±0.7 window is > 5σ.
	if math.Abs(mean-want) > 0.7 {
		t.Errorf("mean zeros per index = %.3f, want %.3f ± 0.7 (F(1)=r/2^d)", mean, want)
	}
}

func TestReducePanics(t *testing.T) {
	src := make([]byte, 8)
	cases := []struct {
		name string
		fn   func()
	}{
		{"short source", func() { Reduce(src, 448, 6) }},
		{"zero r", func() { Reduce(src, 0, 6) }},
		{"zero d", func() { Reduce(src, 8, 0) }},
		{"huge d", func() { Reduce(src, 1, 64) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestStringIncludesLength(t *testing.T) {
	s := NewOnes(448).String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
}

func BenchmarkAndInto448(b *testing.B) {
	rng := mrand.New(mrand.NewSource(9))
	v := randomVector(rng, 448)
	u := randomVector(rng, 448)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.AndInto(u)
	}
}

func BenchmarkMatches448(b *testing.B) {
	rng := mrand.New(mrand.NewSource(10))
	v := randomVector(rng, 448)
	q := randomVector(rng, 448)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Matches(q)
	}
}

func BenchmarkReduce448x6(b *testing.B) {
	src := make([]byte, 448*6/8)
	if _, err := rand.Read(src); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Reduce(src, 448, 6)
	}
}
