// Package bitindex implements the r-bit searchable index vectors at the heart
// of the MKS scheme (Örencik & Savaş, PAIS 2012, Section 4.1).
//
// A keyword index is derived from an l = r·d bit HMAC output: the output is
// viewed as r digits of d bits each (elements of GF(2^d)) and every digit is
// reduced to a single bit — 0 if the digit is zero, 1 otherwise (Equation 1 of
// the paper). A document index is the bitwise AND of its keyword indices
// (Equation 2), and a query matches a document iff every 0 bit of the query is
// also 0 in the document index (Equation 3).
package bitindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// Vector is a fixed-length bit vector of Len() bits stored in 64-bit words.
// The zero value is an empty vector; use New to allocate one of a given
// length. Vectors of different lengths are never equal and may not be
// combined.
type Vector struct {
	words []uint64
	n     int // number of valid bits
}

// New returns an all-zero vector of n bits. It panics if n <= 0, mirroring
// make's behaviour for negative sizes: a zero- or negative-width index is a
// programming error, not a runtime condition.
func New(n int) *Vector {
	if n <= 0 {
		panic(fmt.Sprintf("bitindex: invalid vector length %d", n))
	}
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// NewOnes returns an all-ones vector of n bits. An all-ones vector is the
// identity element of And: it is the natural accumulator seed when folding
// keyword indices into a document index (Equation 2).
func NewOnes(n int) *Vector {
	v := New(n)
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.clampTail()
	return v
}

// clampTail zeroes the unused high bits of the last word so that word-wise
// operations (popcount, equality, match tests) never see garbage.
func (v *Vector) clampTail() {
	if rem := v.n % 64; rem != 0 {
		v.words[len(v.words)-1] &= (uint64(1) << uint(rem)) - 1
	}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Bit returns bit i (0 or 1). It panics if i is out of range.
func (v *Vector) Bit(i int) int {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitindex: bit %d out of range [0,%d)", i, v.n))
	}
	return int(v.words[i/64] >> (uint(i) % 64) & 1)
}

// SetBit sets bit i to b (0 or 1). It panics if i is out of range.
func (v *Vector) SetBit(i, b int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitindex: bit %d out of range [0,%d)", i, v.n))
	}
	if b == 0 {
		v.words[i/64] &^= 1 << (uint(i) % 64)
	} else {
		v.words[i/64] |= 1 << (uint(i) % 64)
	}
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	w := &Vector{words: make([]uint64, len(v.words)), n: v.n}
	copy(w.words, v.words)
	return w
}

// And returns the bitwise product v ∧ u as a new vector (Equation 2's ⊓
// operation). It panics if the lengths differ.
func (v *Vector) And(u *Vector) *Vector {
	w := v.Clone()
	w.AndInto(u)
	return w
}

// AndInto folds u into v in place: v ← v ∧ u. It panics if the lengths
// differ. Folding in place avoids one allocation per keyword during index
// construction, which dominates the data owner's offline cost (Figure 4(a)).
func (v *Vector) AndInto(u *Vector) {
	if v.n != u.n {
		panic(fmt.Sprintf("bitindex: length mismatch %d != %d", v.n, u.n))
	}
	for i := range v.words {
		v.words[i] &= u.words[i]
	}
}

// Matches reports whether a document index v matches query q under the
// paper's match relation (Equation 3): every position where q is 0 must also
// be 0 in v, i.e. v ∧ ¬q = 0. It panics if the lengths differ.
func (v *Vector) Matches(q *Vector) bool {
	if v.n != q.n {
		panic(fmt.Sprintf("bitindex: length mismatch %d != %d", v.n, q.n))
	}
	for i := range v.words {
		if v.words[i]&^q.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and u have the same length and identical bits.
func (v *Vector) Equal(u *Vector) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// OnesCount returns the number of 1 bits.
func (v *Vector) OnesCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ZerosCount returns the number of 0 bits. Section 6 of the paper reasons
// about queries through their zero counts (the function F(x)).
func (v *Vector) ZerosCount() int { return v.n - v.OnesCount() }

// Hamming returns the Hamming distance between v and u — the number of
// positions at which they differ. This is the similarity metric of the
// query-randomization analysis (Section 6, Figure 2). It panics if the
// lengths differ.
func (v *Vector) Hamming(u *Vector) int {
	if v.n != u.n {
		panic(fmt.Sprintf("bitindex: length mismatch %d != %d", v.n, u.n))
	}
	d := 0
	for i := range v.words {
		d += bits.OnesCount64(v.words[i] ^ u.words[i])
	}
	return d
}

// ZeroPositions returns the sorted positions of all 0 bits. It scans whole
// words, peeling one trailing-zero index per set bit of the complement, so
// mostly-ones vectors (every query and document index) cost a handful of
// word operations instead of one Bit call per position.
func (v *Vector) ZeroPositions() []int {
	out := make([]int, 0, v.ZerosCount())
	for wi, w := range v.words {
		z := ^w // zeros of v as ones
		base := wi * 64
		for z != 0 {
			pos := base + bits.TrailingZeros64(z)
			if pos >= v.n {
				break // inverted padding of the last word
			}
			out = append(out, pos)
			z &= z - 1
		}
	}
	return out
}

// String renders the vector as a compact hex string, most significant word
// last (little-endian word order, matching the in-memory layout).
func (v *Vector) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bitindex.Vector(len=%d, ones=%d, 0x", v.n, v.OnesCount())
	for i := len(v.words) - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "%016x", v.words[i])
	}
	b.WriteString(")")
	return b.String()
}

// ByteLen returns the number of bytes MarshalBinary produces for a vector of
// n bits, excluding the 4-byte length header.
func ByteLen(n int) int { return (n + 7) / 8 }

// MarshalBinary encodes the vector as a 4-byte big-endian bit length followed
// by ceil(n/8) little-endian payload bytes. The r-bit payload is exactly what
// the user transmits to the server as a query (Table 1: "Search: r" bits).
func (v *Vector) MarshalBinary() ([]byte, error) {
	out := make([]byte, 4+ByteLen(v.n))
	binary.BigEndian.PutUint32(out, uint32(v.n))
	payload := out[4:]
	for _, w := range v.words {
		if len(payload) >= 8 {
			binary.LittleEndian.PutUint64(payload, w)
			payload = payload[8:]
			continue
		}
		// Partial last word: emit only the payload bytes the bit length covers.
		for j := range payload {
			payload[j] = byte(w >> (8 * uint(j)))
		}
		break
	}
	return out, nil
}

// ErrCorrupt is returned by UnmarshalBinary when the input is malformed.
var ErrCorrupt = errors.New("bitindex: corrupt encoding")

// UnmarshalBinary decodes data produced by MarshalBinary.
func (v *Vector) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return ErrCorrupt
	}
	n := int(binary.BigEndian.Uint32(data))
	if n <= 0 || len(data) != 4+ByteLen(n) {
		return ErrCorrupt
	}
	v.n = n
	v.words = make([]uint64, (n+63)/64)
	payload := data[4:]
	for i := range v.words {
		if len(payload) >= 8 {
			v.words[i] = binary.LittleEndian.Uint64(payload)
			payload = payload[8:]
			continue
		}
		var w uint64
		for j, b := range payload {
			w |= uint64(b) << (8 * uint(j))
		}
		v.words[i] = w
	}
	// Reject encodings with set bits beyond the declared length; accepting
	// them would make two representations of the same vector unequal.
	tail := v.words[len(v.words)-1]
	v.clampTail()
	if v.words[len(v.words)-1] != tail {
		return ErrCorrupt
	}
	return nil
}

// Reduce derives an r-bit keyword index from raw pseudorandom bytes under the
// paper's digit reduction (Equation 1): the first r·d bits of src are read as
// r consecutive d-bit digits; output bit j is 0 iff digit j is the zero
// element of GF(2^d). It panics if src is shorter than r·d bits or if the
// parameters are out of range (d in [1,32], r > 0).
//
// The probability of a 0 output bit is 2^(−d) per position, which is the
// quantity F(1) = r/2^d of the Section 6 analysis.
func Reduce(src []byte, r, d int) *Vector {
	if r <= 0 || d <= 0 || d > 32 {
		panic(fmt.Sprintf("bitindex: invalid reduction parameters r=%d d=%d", r, d))
	}
	need := (r*d + 7) / 8
	if len(src) < need {
		panic(fmt.Sprintf("bitindex: source too short: have %d bytes, need %d for r=%d d=%d", len(src), need, r, d))
	}
	// Pack the source bytes into 64-bit words (little-endian, matching the
	// LSB-first bit order of the per-bit reader this replaces), then slice
	// each d-bit digit out of the words with at most two shifts. This reads
	// 64 bits per memory access instead of one, which matters because Reduce
	// sits under every trapdoor and keyword-index derivation (Figure 4(a)).
	words := make([]uint64, (r*d+63)/64)
	for i := range words {
		if b := src[i*8:]; len(b) >= 8 {
			words[i] = binary.LittleEndian.Uint64(b)
		} else {
			var w uint64
			for j := 0; j < len(b); j++ {
				w |= uint64(b[j]) << (8 * uint(j))
			}
			words[i] = w
		}
	}
	v := New(r)
	mask := uint64(1)<<uint(d) - 1
	for j, bitPos := 0, 0; j < r; j, bitPos = j+1, bitPos+d {
		wi, sh := bitPos>>6, uint(bitPos&63)
		digit := words[wi] >> sh
		if int(sh)+d > 64 {
			digit |= words[wi+1] << (64 - sh)
		}
		if digit&mask != 0 {
			v.words[j>>6] |= 1 << uint(j&63)
		}
	}
	return v
}
