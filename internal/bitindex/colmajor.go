package bitindex

import (
	"fmt"
	"math/bits"
	"slices"
)

// This file is the word-major (transposed) face of the arena design. The
// row-major kernels of sparse.go touch one word per row at stride-word
// spacing, so at realistic strides (r = 448 bits ⇒ 7 words = 56 bytes per
// row) the fail-fast first-word test still drags a whole cache line per
// document through the core — the scan is bandwidth-bound an order of
// magnitude before it needs to be. Storing level 0 word-major — one
// contiguous column per word offset, cols[w][row] — turns the same test into
// a sequential sweep of exactly the columns the query is active on: eight
// rows per cache line instead of one.
//
// AppendMatchingRowsColumns is the blocked bitmap-refinement kernel over that
// layout. It scans the first active word's column once, branch-free,
// producing a survivor bitmask per 64-row block; every later active column is
// then evaluated only on the blocks that still have survivors, most selective
// column first (selectivity measured on a small block sample), and a block
// whose mask empties is dropped from the live set for all remaining columns.
// The emitted row set is defined to be identical — order included — to
// AppendMatchingRows over the equivalent row-major arena.

// BlockScratch is the reusable working set of AppendMatchingRowsColumns: the
// per-block survivor bitmap, the live-block list and the column evaluation
// order. Callers on the query hot path keep one per scanning goroutine so the
// kernel allocates nothing in steady state. The zero value is ready to use;
// a BlockScratch must not be shared by concurrent kernel calls.
type BlockScratch struct {
	mask  []uint64  // survivor bitmask, one word per 64-row block
	live  []int32   // blocks with at least one survivor, ascending
	order []colStat // refinement columns, most selective first
}

// colStat is one refinement column with its sampled survivor count.
type colStat struct {
	off  int32 // word offset of the column
	surv int32 // survivors over the sampled blocks; fewer = more selective
}

// compareColStat orders refinement columns by ascending sampled survivor
// count — the most selective column runs first, so the live set collapses as
// early as possible. Ties break on word offset for determinism.
func compareColStat(a, b colStat) int {
	if a.surv != b.surv {
		return int(a.surv) - int(b.surv)
	}
	return int(a.off) - int(b.off)
}

// sampleBlocks is how many live blocks the selectivity probe reads per
// remaining column before ordering the refinement passes. The probe work is
// sampleBlocks×(k−1) cache lines for a k-active-word query — noise next to
// the full first-column sweep — and the measured counts order the passes the
// way Gottlob-style cost-ordered evaluation would.
const sampleBlocks = 8

// survivors64 returns the 64-bit survivor mask of one full block of a
// column: bit i is set iff col[i]&m == 0, i.e. row i cannot be rejected by
// this word (Equation 3 fails only where the row intersects ¬q). The loop is
// branch-free — (x|−x)>>63 is 1 exactly when x ≠ 0 — and 4-way unrolled into
// independent accumulator chains so the superscalar pipeline is fed four
// loads per iteration instead of one.
func survivors64(col []uint64, m uint64) uint64 {
	_ = col[63] // one bounds check for the whole block
	var a, b, c, d uint64
	for i := 0; i < 64; i += 4 {
		x0 := col[i] & m
		x1 := col[i+1] & m
		x2 := col[i+2] & m
		x3 := col[i+3] & m
		a |= (((x0 | -x0) >> 63) ^ 1) << uint(i)
		b |= (((x1 | -x1) >> 63) ^ 1) << uint(i+1)
		c |= (((x2 | -x2) >> 63) ^ 1) << uint(i+2)
		d |= (((x3 | -x3) >> 63) ^ 1) << uint(i+3)
	}
	return a | b | c | d
}

// survivorsTail is survivors64 for the final partial block (len(col) < 64).
// Rows beyond the column's end read as non-survivors (bit clear).
func survivorsTail(col []uint64, m uint64) uint64 {
	var s uint64
	for i, w := range col {
		x := w & m
		s |= (((x | -x) >> 63) ^ 1) << uint(i)
	}
	return s
}

// blockSurvivors dispatches a block's survivor computation: the unrolled
// full-block path when 64 rows remain, the scalar tail otherwise.
func blockSurvivors(col []uint64, base, rows int, m uint64) uint64 {
	if base+64 <= rows {
		return survivors64(col[base:base+64], m)
	}
	return survivorsTail(col[base:rows], m)
}

// AppendMatchingRowsColumns scans a word-major level-0 arena — cols[w][row]
// holds word w of row's index — with one query and appends the indices of
// matching rows to dst, returning the extended slice. Output is identical,
// order included, to AppendMatchingRows over the row-major equivalent. It
// panics if the column count differs from WordLen or an active column does
// not hold exactly rows words. bs may be nil, in which case the kernel
// allocates its own scratch.
func (s *Sparse) AppendMatchingRowsColumns(cols [][]uint64, rows int, bs *BlockScratch, dst []int32) []int32 {
	if len(cols) != len(s.not) {
		panic(fmt.Sprintf("bitindex: arena has %d columns, query needs %d", len(cols), len(s.not)))
	}
	if rows < 0 {
		panic(fmt.Sprintf("bitindex: negative row count %d", rows))
	}
	for _, o := range s.off {
		if len(cols[o]) != rows {
			panic(fmt.Sprintf("bitindex: column %d holds %d rows, arena has %d", o, len(cols[o]), rows))
		}
	}
	if rows == 0 {
		return dst
	}
	if len(s.off) == 0 {
		// A query with no zero bits matches every document (Equation 3).
		for i := 0; i < rows; i++ {
			dst = append(dst, int32(i))
		}
		return dst
	}
	if bs == nil {
		bs = new(BlockScratch)
	}

	// Pass 1: sweep the first active column sequentially, one survivor mask
	// per 64-row block, collecting the blocks that still matter.
	nb := (rows + 63) / 64
	if cap(bs.mask) < nb {
		bs.mask = make([]uint64, nb)
	}
	bs.mask = bs.mask[:nb]
	bs.live = bs.live[:0]
	col0, m0 := cols[s.off[0]], s.not[s.off[0]]
	for b := 0; b < nb; b++ {
		m := blockSurvivors(col0, b*64, rows, m0)
		bs.mask[b] = m
		if m != 0 {
			bs.live = append(bs.live, int32(b))
		}
	}

	// Refinement: remaining active columns, most selective first. Each pass
	// touches only live blocks and compacts the live set in place, so a
	// selective early column shields the rest of the columns from most of
	// the arena.
	if rest := s.off[1:]; len(rest) > 0 && len(bs.live) > 0 {
		bs.order = bs.order[:0]
		if len(rest) == 1 {
			bs.order = append(bs.order, colStat{off: rest[0]})
		} else {
			sample := bs.live
			if len(sample) > sampleBlocks {
				sample = sample[:sampleBlocks]
			}
			for _, o := range rest {
				col, m := cols[o], s.not[o]
				cnt := 0
				for _, bi := range sample {
					cnt += bits.OnesCount64(bs.mask[bi] & blockSurvivors(col, int(bi)*64, rows, m))
				}
				bs.order = append(bs.order, colStat{off: o, surv: int32(cnt)})
			}
			slices.SortFunc(bs.order, compareColStat)
		}
		for _, st := range bs.order {
			col, m := cols[st.off], s.not[st.off]
			w := 0
			for _, bi := range bs.live {
				if mm := bs.mask[bi] & blockSurvivors(col, int(bi)*64, rows, m); mm != 0 {
					bs.mask[bi] = mm
					bs.live[w] = bi
					w++
				}
			}
			bs.live = bs.live[:w]
			if w == 0 {
				break
			}
		}
	}

	// Emit surviving rows in ascending order: live blocks are ascending and
	// bits walk least-significant first.
	for _, bi := range bs.live {
		base := int32(bi) * 64
		m := bs.mask[bi]
		for m != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(m)))
			m &= m - 1
		}
	}
	return dst
}
