// Package caomrse implements the MRSE_I scheme of Cao, Wang, Li, Ren and Lou
// ("Privacy-preserving multi-keyword ranked search over encrypted cloud
// data", INFOCOM 2011) — the closest prior work and the baseline the paper
// compares against in Section 8.1. MRSE encrypts per-document binary keyword
// vectors with the secure kNN technique: a random split driven by a secret
// bit string S followed by multiplication with two secret invertible
// (n+2)×(n+2) matrices, so the server can compute inner-product similarity
// scores without learning the vectors.
//
// The cost shape that the paper exploits is visible directly in the code:
// index generation is two O(n²) matrix-vector products per document and
// search is one O(n) score per document, where n is the *dictionary* size —
// versus MKS's constant-size 448-bit index and single binary comparison.
package caomrse

import (
	"fmt"
	"math/rand"
	"sort"

	"mkse/internal/corpus"
	"mkse/internal/matrix"
)

// Scheme holds the MRSE secret key material: the split indicator S and the
// two invertible matrices (kept as the transposes/inverses actually applied).
type Scheme struct {
	dict []string
	pos  map[string]int
	n    int // dictionary size; vectors have dimension n+2

	s            []int // split indicator S ∈ {0,1}^(n+2)
	m1T, m2T     *matrix.Matrix
	m1Inv, m2Inv *matrix.Matrix

	epsSigma float64 // magnitude of the dummy randomness ε in data vectors
	rng      *rand.Rand
}

// Index is an encrypted document index: the pair {M1ᵀp′, M2ᵀp″}.
type Index struct {
	DocID string
	A, B  []float64
}

// Trapdoor is an encrypted query: the pair {M1⁻¹q′, M2⁻¹q″}.
type Trapdoor struct {
	A, B []float64
}

// New creates an MRSE instance over the given dictionary. Key generation
// draws S, M1, M2 from the seeded RNG and inverts both matrices — the O(n³)
// setup cost that already dominates at "several thousand" keywords.
func New(dict []string, seed int64) (*Scheme, error) {
	if len(dict) == 0 {
		return nil, fmt.Errorf("caomrse: empty dictionary")
	}
	pos := make(map[string]int, len(dict))
	for i, w := range dict {
		if _, dup := pos[w]; dup {
			return nil, fmt.Errorf("caomrse: duplicate dictionary word %q", w)
		}
		pos[w] = i
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(dict)
	dim := n + 2
	s := make([]int, dim)
	for i := range s {
		s[i] = rng.Intn(2)
	}
	m1 := matrix.RandomInvertible(dim, rng)
	m2 := matrix.RandomInvertible(dim, rng)
	m1Inv, err := m1.Inverse()
	if err != nil {
		return nil, fmt.Errorf("caomrse: inverting M1: %w", err)
	}
	m2Inv, err := m2.Inverse()
	if err != nil {
		return nil, fmt.Errorf("caomrse: inverting M2: %w", err)
	}
	return &Scheme{
		dict: dict, pos: pos, n: n,
		s:   s,
		m1T: m1.Transpose(), m2T: m2.Transpose(),
		m1Inv: m1Inv, m2Inv: m2Inv,
		epsSigma: 0.01,
		rng:      rng,
	}, nil
}

// DictionarySize returns n.
func (s *Scheme) DictionarySize() int { return s.n }

// dataVector builds the extended plaintext vector p̃ = (p, ε, 1) for a
// document: p[j] = 1 iff the document contains dictionary word j, ε is the
// scheme's dummy randomness.
func (s *Scheme) dataVector(doc *corpus.Document) []float64 {
	p := make([]float64, s.n+2)
	for w := range doc.TermFreqs {
		if j, ok := s.pos[w]; ok {
			p[j] = 1
		}
	}
	p[s.n] = s.rng.NormFloat64() * s.epsSigma // ε
	p[s.n+1] = 1
	return p
}

// split applies the secure-kNN split: positions where indicator == splitOn
// are split into two random shares; other positions are duplicated.
func (s *Scheme) split(v []float64, splitOn int) (a, b []float64) {
	a = make([]float64, len(v))
	b = make([]float64, len(v))
	for j, x := range v {
		if s.s[j] == splitOn {
			r := s.rng.Float64()*2 - 1
			a[j] = x/2 + r
			b[j] = x/2 - r
		} else {
			a[j] = x
			b[j] = x
		}
	}
	return a, b
}

// BuildIndex encrypts one document's keyword vector — the per-document cost
// the paper measures at "about 4500 s" for 6000 documents.
func (s *Scheme) BuildIndex(doc *corpus.Document) *Index {
	p := s.dataVector(doc)
	a, b := s.split(p, 1) // data vectors split where S[j] = 1
	return &Index{DocID: doc.ID, A: s.m1T.MulVec(a), B: s.m2T.MulVec(b)}
}

// Trapdoor encrypts a query: q̃ = (r·q, r, t) with fresh r > 0 and t, split
// complementarily (where S[j] = 0), then multiplied by the inverse matrices.
// The scaling by r and offset t randomize scores across queries while
// preserving the per-query ranking.
func (s *Scheme) Trapdoor(query []string) (*Trapdoor, error) {
	if len(query) == 0 {
		return nil, fmt.Errorf("caomrse: empty query")
	}
	q := make([]float64, s.n+2)
	known := 0
	for _, w := range query {
		if j, ok := s.pos[w]; ok {
			q[j] = 1
			known++
		}
	}
	if known == 0 {
		return nil, fmt.Errorf("caomrse: no query keyword appears in the dictionary")
	}
	r := 0.5 + s.rng.Float64() // r > 0
	t := s.rng.Float64()
	for j := 0; j < s.n; j++ {
		q[j] *= r
	}
	q[s.n] = r
	q[s.n+1] = t
	a, b := s.split(q, 0) // query vectors split where S[j] = 0
	return &Trapdoor{A: s.m1Inv.MulVec(a), B: s.m2Inv.MulVec(b)}, nil
}

// Score computes the similarity the server evaluates per document:
// I·T = p̃·q̃ = r·(p·q + ε) + t. Within one trapdoor, higher means more
// query keywords matched.
func Score(idx *Index, td *Trapdoor) float64 {
	return matrix.Dot(idx.A, td.A) + matrix.Dot(idx.B, td.B)
}

// Search scores every index against the trapdoor and returns document IDs in
// descending score order, truncated to topK (topK <= 0 returns all).
func Search(indices []*Index, td *Trapdoor, topK int) []string {
	type scored struct {
		id string
		s  float64
	}
	all := make([]scored, len(indices))
	for i, idx := range indices {
		all[i] = scored{idx.DocID, Score(idx, td)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].id < all[j].id
	})
	if topK <= 0 || topK > len(all) {
		topK = len(all)
	}
	out := make([]string, topK)
	for i := 0; i < topK; i++ {
		out[i] = all[i].id
	}
	return out
}
