package caomrse

import (
	"math"
	"testing"

	"mkse/internal/corpus"
)

func smallScheme(t testing.TB, n int, seed int64) *Scheme {
	t.Helper()
	s, err := New(corpus.Dictionary(n), seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func doc(id string, words ...string) *corpus.Document {
	tf := make(map[string]int, len(words))
	for _, w := range words {
		tf[w] = 1
	}
	return &corpus.Document{ID: id, TermFreqs: tf}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 1); err == nil {
		t.Error("empty dictionary accepted")
	}
	if _, err := New([]string{"a", "a"}, 1); err == nil {
		t.Error("duplicate dictionary accepted")
	}
}

// The secure-kNN correctness property: the encrypted score equals the
// plaintext extended inner product r·(p·q + ε) + t, which means documents
// with more matching keywords score strictly higher (ε kept small).
func TestScoreOrdersByMatchCount(t *testing.T) {
	s := smallScheme(t, 50, 1)
	d3 := s.BuildIndex(doc("three", "kw00001", "kw00002", "kw00003"))
	d2 := s.BuildIndex(doc("two", "kw00001", "kw00002", "kw00040"))
	d1 := s.BuildIndex(doc("one", "kw00001", "kw00041", "kw00042"))
	d0 := s.BuildIndex(doc("zero", "kw00043", "kw00044", "kw00045"))
	td, err := s.Trapdoor([]string{"kw00001", "kw00002", "kw00003"})
	if err != nil {
		t.Fatal(err)
	}
	s3, s2, s1, s0 := Score(d3, td), Score(d2, td), Score(d1, td), Score(d0, td)
	if !(s3 > s2 && s2 > s1 && s1 > s0) {
		t.Errorf("scores not ordered by match count: %v %v %v %v", s3, s2, s1, s0)
	}
}

// Score must reproduce r(p·q + ε) + t up to numerical error. We cannot see
// r, t, ε directly, but the *differences* between documents scored under the
// same trapdoor expose r: score(A) − score(B) = r(p_A·q − p_B·q + ε_A − ε_B).
// With matches differing by exactly one keyword, the gap must be ≈ r, a
// constant across pairs.
func TestScoreGapsConsistent(t *testing.T) {
	s := smallScheme(t, 40, 2)
	docs := []*Index{
		s.BuildIndex(doc("m0", "kw00030")),
		s.BuildIndex(doc("m1", "kw00001")),
		s.BuildIndex(doc("m2", "kw00001", "kw00002")),
		s.BuildIndex(doc("m3", "kw00001", "kw00002", "kw00003")),
	}
	td, err := s.Trapdoor([]string{"kw00001", "kw00002", "kw00003"})
	if err != nil {
		t.Fatal(err)
	}
	gap1 := Score(docs[1], td) - Score(docs[0], td)
	gap2 := Score(docs[2], td) - Score(docs[1], td)
	gap3 := Score(docs[3], td) - Score(docs[2], td)
	// ε noise is O(0.01·r); gaps must agree within a few percent.
	if math.Abs(gap2-gap1) > 0.2*math.Abs(gap1) || math.Abs(gap3-gap2) > 0.2*math.Abs(gap2) {
		t.Errorf("inconsistent score gaps %v %v %v (inner product not preserved)", gap1, gap2, gap3)
	}
	if gap1 <= 0 {
		t.Errorf("per-keyword score increment %v not positive (r must be > 0)", gap1)
	}
}

// Index and trapdoor vectors must not expose the plaintext binary vectors:
// two documents with the same keywords but different ε/splits encrypt
// differently, and a trapdoor is randomized per query.
func TestEncryptionIsRandomized(t *testing.T) {
	s := smallScheme(t, 30, 3)
	a := s.BuildIndex(doc("a", "kw00005"))
	b := s.BuildIndex(doc("b", "kw00005"))
	same := true
	for i := range a.A {
		if a.A[i] != b.A[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two indexes of identical documents have identical A vectors")
	}
	t1, err := s.Trapdoor([]string{"kw00005"})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Trapdoor([]string{"kw00005"})
	if err != nil {
		t.Fatal(err)
	}
	same = true
	for i := range t1.A {
		if t1.A[i] != t2.A[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two trapdoors for the same query are identical")
	}
}

// Even though absolute scores are randomized per trapdoor (r, t), the
// *ranking* induced on a fixed corpus must be stable across trapdoors for
// the same query.
func TestRankingStableAcrossTrapdoors(t *testing.T) {
	s := smallScheme(t, 40, 4)
	indices := []*Index{
		s.BuildIndex(doc("d3", "kw00001", "kw00002", "kw00003")),
		s.BuildIndex(doc("d1", "kw00001")),
		s.BuildIndex(doc("d2", "kw00001", "kw00002")),
		s.BuildIndex(doc("d0", "kw00020")),
	}
	query := []string{"kw00001", "kw00002", "kw00003"}
	var first []string
	for trial := 0; trial < 5; trial++ {
		td, err := s.Trapdoor(query)
		if err != nil {
			t.Fatal(err)
		}
		got := Search(indices, td, 0)
		if first == nil {
			first = got
			continue
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("trial %d: ranking %v differs from first %v", trial, got, first)
			}
		}
	}
	if first[0] != "d3" || first[1] != "d2" || first[2] != "d1" {
		t.Errorf("ranking %v, want d3 > d2 > d1 > d0", first)
	}
}

func TestSearchTopK(t *testing.T) {
	s := smallScheme(t, 20, 5)
	indices := []*Index{
		s.BuildIndex(doc("x", "kw00001")),
		s.BuildIndex(doc("y", "kw00002")),
		s.BuildIndex(doc("z", "kw00001", "kw00002")),
	}
	td, err := s.Trapdoor([]string{"kw00001", "kw00002"})
	if err != nil {
		t.Fatal(err)
	}
	top := Search(indices, td, 1)
	if len(top) != 1 || top[0] != "z" {
		t.Errorf("top-1 = %v, want [z]", top)
	}
}

func TestTrapdoorValidation(t *testing.T) {
	s := smallScheme(t, 10, 6)
	if _, err := s.Trapdoor(nil); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := s.Trapdoor([]string{"not-in-dictionary"}); err == nil {
		t.Error("out-of-dictionary query accepted")
	}
}

func TestDictionarySize(t *testing.T) {
	if smallScheme(t, 33, 7).DictionarySize() != 33 {
		t.Error("DictionarySize wrong")
	}
}

func BenchmarkBuildIndexDict500(b *testing.B) {
	s, err := New(corpus.Dictionary(500), 8)
	if err != nil {
		b.Fatal(err)
	}
	d := doc("bench", "kw00001", "kw00002", "kw00003", "kw00004")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BuildIndex(d)
	}
}

func BenchmarkScoreDict500(b *testing.B) {
	s, err := New(corpus.Dictionary(500), 9)
	if err != nil {
		b.Fatal(err)
	}
	idx := s.BuildIndex(doc("bench", "kw00001"))
	td, err := s.Trapdoor([]string{"kw00001"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Score(idx, td)
	}
}
