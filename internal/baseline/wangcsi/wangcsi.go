// Package wangcsi implements the common-secure-index scheme of Wang, Wang &
// Pieprzyk ("An efficient scheme of common secure indices for conjunctive
// keyword-based retrieval on encrypted data", WISA 2009) — the indexing
// method MKS builds on — in its original *keyless* form, where a single hash
// function is "secretly shared between all authorized users".
//
// Örencik & Savaş argue (Section 4.1) that once this shared function leaks
// to the server, the whole system falls to a brute-force dictionary attack:
// with ~25000 candidate keywords and 1–2 terms per query, enumerating
// keyword (pairs) and re-deriving indices identifies the queried terms in at
// most ~2^28 trials. This package implements both the scheme and that
// attack, so the repository can demonstrate concretely why MKS's per-bin
// secret keys matter.
package wangcsi

import (
	"mkse/internal/bitindex"
	"mkse/internal/kdf"
)

// PublicHashKey is the "shared" HMAC key of the original scheme. Its value
// is immaterial — the point is that the adversary is assumed to know it.
var PublicHashKey = []byte("wang-csi-shared-hash-function!!!")

// Scheme is a common-secure-index instance with the (leaked) shared hash.
type Scheme struct {
	r, d int
	key  []byte
}

// New creates a scheme with the given index geometry and the well-known
// shared hash key.
func New(r, d int) *Scheme {
	return &Scheme{r: r, d: d, key: PublicHashKey}
}

// NewWithKey creates a scheme under a different shared key; used to model
// the pre-leak state.
func NewWithKey(r, d int, key []byte) *Scheme {
	return &Scheme{r: r, d: d, key: key}
}

// hmacBytes is the expansion length l/8.
func (s *Scheme) hmacBytes() int { return (s.r*s.d + 7) / 8 }

// KeywordIndex derives a keyword's bit index exactly as MKS does
// (Equation 1), but under the shared hash.
func (s *Scheme) KeywordIndex(w string) *bitindex.Vector {
	return bitindex.Reduce(kdf.ExpandString(s.key, w, s.hmacBytes()), s.r, s.d)
}

// BuildIndex ANDs the keyword indices (Equation 2).
func (s *Scheme) BuildIndex(words []string) *bitindex.Vector {
	v := bitindex.NewOnes(s.r)
	for _, w := range words {
		v.AndInto(s.KeywordIndex(w))
	}
	return v
}

// AttackResult reports a brute-force run.
type AttackResult struct {
	Trials     int      // candidate evaluations performed
	Candidates []string // keywords (or "a+b" pairs) whose index equals the target
}

// BruteForceSingle enumerates the dictionary looking for single keywords
// whose index equals the observed query index. With the shared hash known,
// a one-keyword query is recovered in at most |dict| trials.
func (s *Scheme) BruteForceSingle(q *bitindex.Vector, dict []string) AttackResult {
	var res AttackResult
	for _, w := range dict {
		res.Trials++
		if s.KeywordIndex(w).Equal(q) {
			res.Candidates = append(res.Candidates, w)
		}
	}
	return res
}

// BruteForcePair enumerates unordered keyword pairs. maxTrials bounds the
// work (0 = unbounded); the attack aborts once the bound is hit, returning
// whatever it found. The full 25000-word dictionary gives C(25000,2) ≈ 2^28
// pairs — large but, as the paper stresses, entirely feasible offline.
func (s *Scheme) BruteForcePair(q *bitindex.Vector, dict []string, maxTrials int) AttackResult {
	var res AttackResult
	// Precompute single-keyword indices once: the pair index is their AND,
	// so the inner loop is a cheap AND + compare instead of two HMACs.
	singles := make([]*bitindex.Vector, len(dict))
	for i, w := range dict {
		singles[i] = s.KeywordIndex(w)
	}
	for i := 0; i < len(dict); i++ {
		// Pruning: every zero of a factor survives the AND, so a viable
		// factor's zeros must be a subset of the target's zeros.
		if !q.Matches(singles[i]) {
			continue
		}
		for j := i + 1; j < len(dict); j++ {
			res.Trials++
			if maxTrials > 0 && res.Trials > maxTrials {
				return res
			}
			if singles[i].And(singles[j]).Equal(q) {
				res.Candidates = append(res.Candidates, dict[i]+"+"+dict[j])
			}
		}
	}
	return res
}
