package wangcsi

import (
	"strings"
	"testing"

	"mkse/internal/corpus"
)

func TestKeywordIndexDeterministic(t *testing.T) {
	s := New(448, 6)
	if !s.KeywordIndex("cloud").Equal(s.KeywordIndex("cloud")) {
		t.Error("index not deterministic")
	}
	if s.KeywordIndex("cloud").Equal(s.KeywordIndex("server")) {
		t.Error("distinct keywords share an index")
	}
}

func TestBuildIndexIsConjunction(t *testing.T) {
	s := New(448, 6)
	a := s.KeywordIndex("alpha")
	b := s.KeywordIndex("beta")
	q := s.BuildIndex([]string{"alpha", "beta"})
	if !q.Equal(a.And(b)) {
		t.Error("BuildIndex is not the AND of keyword indices")
	}
}

// The paper's core security argument (Section 4.1): with the shared hash
// public, a single-keyword query is recovered exactly by dictionary
// enumeration.
func TestBruteForceRecoversSingleKeyword(t *testing.T) {
	s := New(448, 6)
	dict := corpus.Dictionary(5000)
	secret := dict[1234]
	q := s.BuildIndex([]string{secret})
	res := s.BruteForceSingle(q, dict)
	if len(res.Candidates) != 1 || res.Candidates[0] != secret {
		t.Errorf("attack recovered %v, want [%s]", res.Candidates, secret)
	}
	if res.Trials != 5000 {
		t.Errorf("trials = %d, want 5000", res.Trials)
	}
}

func TestBruteForceRecoversKeywordPair(t *testing.T) {
	s := New(448, 6)
	dict := corpus.Dictionary(800)
	w1, w2 := dict[17], dict[523]
	q := s.BuildIndex([]string{w1, w2})
	res := s.BruteForcePair(q, dict, 0)
	found := false
	for _, c := range res.Candidates {
		if c == w1+"+"+w2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("attack did not recover the pair; candidates: %v", res.Candidates)
	}
	// The zero-subset pruning should have cut the naive C(800,2)=319600
	// trials down dramatically (only pairs whose first factor's zeros are
	// contained in the target's survive).
	if res.Trials >= 319600 {
		t.Errorf("pruning ineffective: %d trials", res.Trials)
	}
}

func TestBruteForcePairRespectsBudget(t *testing.T) {
	s := New(448, 6)
	dict := corpus.Dictionary(400)
	q := s.BuildIndex([]string{dict[0], dict[399]})
	res := s.BruteForcePair(q, dict, 50)
	if res.Trials > 51 {
		t.Errorf("budget exceeded: %d trials", res.Trials)
	}
}

// The MKS defence: the same attack run against an index built under a
// *secret* key finds nothing (or only hash-collision noise), because the
// adversary's candidate indices are computed under the wrong function.
func TestAttackFailsAgainstKeyedIndex(t *testing.T) {
	adversary := New(448, 6)
	owner := NewWithKey(448, 6, []byte("secret-bin-key-unknown-to-attacker"))
	dict := corpus.Dictionary(5000)
	secret := dict[42]
	q := owner.BuildIndex([]string{secret})
	res := adversary.BruteForceSingle(q, dict)
	for _, c := range res.Candidates {
		if c == secret {
			t.Fatal("attack recovered the keyword despite the secret key")
		}
	}
	if len(res.Candidates) != 0 {
		// Any candidate would be an accidental full-index collision,
		// astronomically unlikely at r=448.
		t.Errorf("unexpected collision candidates: %v", res.Candidates)
	}
}

func TestAttackCandidatesNamedSensibly(t *testing.T) {
	s := New(64, 4)
	dict := []string{"aa", "bb"}
	q := s.BuildIndex([]string{"aa", "bb"})
	res := s.BruteForcePair(q, dict, 0)
	for _, c := range res.Candidates {
		if !strings.Contains(c, "+") {
			t.Errorf("pair candidate %q not in a+b form", c)
		}
	}
}

func BenchmarkBruteForceSingle25k(b *testing.B) {
	s := New(448, 6)
	dict := corpus.Dictionary(25000)
	q := s.BuildIndex([]string{dict[12345]})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BruteForceSingle(q, dict)
	}
}
