package telemetry

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Health is a daemon's point-in-time readiness report, served as JSON on
// /healthz. Ready gates the HTTP status (200 ready, 503 not): a follower is
// not ready while its replication stream is down or lagging past the
// operator's budget, and a fenced ex-primary is not ready for writes — so a
// load balancer scraping /healthz routes around exactly the daemons the
// cluster itself would.
type Health struct {
	Ready  bool   `json:"ready"`
	Role   string `json:"role"`             // primary, follower, standalone, fenced, observer
	Term   uint64 `json:"term"`             // promotion (fencing) term, 0 when memory-only
	Lag    uint64 `json:"lag"`              // replication lag in records (followers)
	Detail string `json:"detail,omitempty"` // human-readable reason when not ready
}

// Route mounts an extra handler on the telemetry sidecar — how daemons add
// surfaces the sidecar does not know about (the trace buffer's /traces and
// /traces/slow) without telemetry importing their packages.
type Route struct {
	Pattern string
	Handler http.Handler
}

// Handler builds the telemetry sidecar's HTTP mux: /metrics renders reg in
// the Prometheus exposition format, /healthz serves health() as JSON with a
// readiness-gated status code, and /debug/pprof/* exposes the runtime
// profiles (CPU, heap, goroutine, trace) without touching the default mux.
// health may be nil, in which case /healthz always reports ready. Any extra
// routes are mounted verbatim.
func Handler(reg *Registry, health func() Health, extra ...Route) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := Health{Ready: true, Role: "standalone"}
		if health != nil {
			h = health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !h.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, r := range extra {
		mux.Handle(r.Pattern, r.Handler)
	}
	return mux
}

// Serve starts the telemetry sidecar on addr and returns immediately; the
// returned server is already accepting. Close it with Server.Close on
// shutdown. The sidecar is deliberately a separate listener from the wire
// protocol: scrapes and profiles must keep answering while the service
// port drains, and operators can firewall the two surfaces independently.
func Serve(addr string, reg *Registry, health func() Health, logger *slog.Logger, extra ...Route) (*http.Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listening on %s: %w", addr, err)
	}
	srv := &http.Server{
		Addr:              l.Addr().String(), // resolved, so ":0" callers learn the port
		Handler:           Handler(reg, health, extra...),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			if logger != nil {
				logger.Error("telemetry listener failed", "addr", addr, "err", err)
			}
		}
	}()
	if logger != nil {
		endpoints := "/metrics /healthz /debug/pprof"
		for _, r := range extra {
			endpoints += " " + r.Pattern
		}
		logger.Info("telemetry listening", "addr", l.Addr().String(),
			"endpoints", endpoints)
	}
	return srv, nil
}
