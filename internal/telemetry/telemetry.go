// Package telemetry is the daemons' observability core: a dependency-free
// metrics registry — atomic counters, gauges, and fixed-bucket latency
// histograms — rendered in the Prometheus text exposition format, plus the
// HTTP sidecar (metrics.go's Handler/Serve) that exports /metrics, a
// role/term/lag-aware /healthz, and net/http/pprof on every daemon.
//
// # Design constraints
//
// The package sits under the search hot path, so the instruments are built
// for the mutator, not the scraper: a Counter or Gauge update is one atomic
// add, and a Histogram observation is a bucket-index computation (reusing
// internal/histogram's fixed-width bucket math, see histogram.BucketIndex)
// plus two atomic adds into preallocated slots — no locks, no allocation,
// no branching on enablement (all instrument methods are nil-safe, so an
// uninstrumented daemon pays a nil check and nothing else). All rendering
// cost — label assembly, cumulative bucket sums, float formatting — is paid
// at scrape time under the registry lock.
//
// # Conventions
//
// Series are named mkse_<subsystem>_<unit> with _total suffixes on
// counters, durations are exported in seconds, and histogram buckets follow
// internal/histogram's half-open [lo, hi) convention: a sample exactly on a
// bucket bound lands in the next bucket. The final implicit bucket is
// rendered as le="+Inf", as Prometheus requires.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mkse/internal/histogram"
)

// Label is one name="value" pair attached to a series at registration time.
type Label struct{ Key, Value string }

// Kind classifies a metric family for the # TYPE exposition line.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// CollectFunc emits a family's samples at scrape time, for series whose
// label sets are dynamic (per-follower lag, the current role). The emit
// callback may be called any number of times with distinct label sets.
type CollectFunc func(emit func(labels []Label, value float64))

// Registry holds metric families and renders them in registration order.
// Registration is not hot-path work and takes a lock; the instruments a
// registration returns are lock-free afterwards.
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

type family struct {
	name, help string
	kind       Kind
	series     []renderer
	bySig      map[string]renderer // label signature → instrument, for idempotent re-registration
	collectors []CollectFunc
	valueFns   []valueFn
}

type valueFn struct {
	labels string
	fn     func() float64
}

// renderer is a registered instrument that can print itself.
type renderer interface {
	render(w io.Writer, name string)
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// familyFor returns (creating if needed) the family with the given name,
// panicking on a kind or help mismatch — re-registering a name as a
// different metric is a programming error, as in histogram.New.
func (r *Registry) familyFor(name, help string, kind Kind) *family {
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bySig: make(map[string]renderer)}
		r.byName[name] = f
		r.order = append(r.order, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s re-registered as %s, was %s", name, kind, f.kind))
	}
	return f
}

// Counter registers (or returns the existing) monotonic counter under name
// with the given labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindCounter)
	sig := renderLabels(labels)
	if c, ok := f.bySig[sig].(*Counter); ok {
		return c
	}
	c := &Counter{labels: sig}
	f.bySig[sig] = c
	f.series = append(f.series, c)
	return c
}

// Gauge registers (or returns the existing) integer gauge under name.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindGauge)
	sig := renderLabels(labels)
	if g, ok := f.bySig[sig].(*Gauge); ok {
		return g
	}
	g := &Gauge{labels: sig}
	f.bySig[sig] = g
	f.series = append(f.series, g)
	return g
}

// Histogram registers (or returns the existing) latency histogram under
// name. bounds are the ascending finite bucket upper bounds; an implicit
// +Inf bucket follows the last. Use LinearBuckets or ExponentialBuckets to
// build them.
func (r *Registry) Histogram(name, help string, bounds []time.Duration, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindHistogram)
	sig := renderLabels(labels)
	if h, ok := f.bySig[sig].(*Histogram); ok {
		return h
	}
	h := newHistogram(bounds, labels)
	f.bySig[sig] = h
	f.series = append(f.series, h)
	return h
}

// CounterFunc registers a counter whose value is read by f at scrape time —
// for monotonic totals another subsystem already tracks (qcache hits, WAL
// bytes) that would be wasteful to double-count.
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...Label) {
	r.registerFunc(name, help, KindCounter, f, labels)
}

// GaugeFunc registers a gauge whose value is read by f at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	r.registerFunc(name, help, KindGauge, f, labels)
}

func (r *Registry) registerFunc(name, help string, kind Kind, f func() float64, labels []Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.familyFor(name, help, kind)
	fam.valueFns = append(fam.valueFns, valueFn{labels: renderLabels(labels), fn: f})
}

// Collect registers a scrape-time collector for a family whose label sets
// are only known when scraped (for example one series per connected
// follower).
func (r *Registry) Collect(name, help string, kind Kind, f CollectFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.familyFor(name, help, kind)
	fam.collectors = append(fam.collectors, f)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.order {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			s.render(w, f.name)
		}
		for _, vf := range f.valueFns {
			fmt.Fprintf(w, "%s%s %s\n", f.name, vf.labels, formatFloat(vf.fn()))
		}
		for _, c := range f.collectors {
			c(func(labels []Label, v float64) {
				fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(labels), formatFloat(v))
			})
		}
	}
}

// Render returns the full exposition as a string, for tests and logs.
func (r *Registry) Render() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// --- instruments ---

// Counter is a monotonically increasing counter. All methods are safe on a
// nil *Counter (no-ops), so instrumented code needs no enablement branches.
type Counter struct {
	v      atomic.Uint64
	labels string
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) render(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, c.labels, c.v.Load())
}

// Gauge is an integer gauge. All methods are safe on a nil *Gauge.
type Gauge struct {
	v      atomic.Int64
	labels string
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) render(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, g.labels, g.v.Load())
}

// Histogram buckets duration observations into fixed upper-bound buckets
// plus an implicit +Inf bucket. Observe is the hot-path operation: a bucket
// index (histogram.BucketIndex for linear geometries, a short bounds scan
// otherwise) and two atomic adds — no locks, no allocation. All methods are
// safe on a nil *Histogram.
type Histogram struct {
	bounds []time.Duration // ascending finite upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64    // nanoseconds
	labels string
	// lo/width describe a linear geometry (set by LinearBuckets-shaped
	// bounds): bucket i spans [lo+i·width, lo+(i+1)·width). Zero width means
	// irregular bounds, indexed by scanning.
	lo, width time.Duration
	// bucketLBs are the prerendered per-bucket label strings (labels merged
	// with le="…"), so scraping does no label assembly either.
	bucketLBs []string
}

func newHistogram(bounds []time.Duration, labels []Label) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
		labels: renderLabels(labels),
	}
	// Detect the linear geometry LinearBuckets produces so Observe can use
	// internal/histogram's O(1) bucket math instead of scanning.
	if len(bounds) == 1 || allLinear(bounds) {
		width := bounds[0]
		if len(bounds) > 1 {
			width = bounds[1] - bounds[0]
		}
		h.lo, h.width = bounds[0]-width, width
	}
	h.bucketLBs = make([]string, len(bounds)+1)
	for i, b := range bounds {
		h.bucketLBs[i] = mergeLE(labels, formatFloat(b.Seconds()))
	}
	h.bucketLBs[len(bounds)] = mergeLE(labels, "+Inf")
	return h
}

// allLinear reports whether the bounds are evenly spaced.
func allLinear(bounds []time.Duration) bool {
	w := bounds[1] - bounds[0]
	for i := 2; i < len(bounds); i++ {
		if bounds[i]-bounds[i-1] != w {
			return false
		}
	}
	return true
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.counts[h.bucketIndex(d)].Add(1)
	h.sum.Add(int64(d))
}

// Since is shorthand for Observe(time.Since(start)).
func (h *Histogram) Since(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start))
	}
}

// bucketIndex maps d onto a bucket. Both paths share the half-open [lo, hi)
// convention of internal/histogram: a sample equal to a bound belongs to
// the next bucket, and everything past the last finite bound clamps into
// the +Inf slot.
func (h *Histogram) bucketIndex(d time.Duration) int {
	if h.width > 0 {
		return histogram.BucketIndex(int(h.lo), int(h.width), len(h.counts), int(d))
	}
	for i, b := range h.bounds {
		if d < b {
			return i
		}
	}
	return len(h.bounds)
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the summed observations (0 on nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

func (h *Histogram) render(w io.Writer, name string) {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, h.bucketLBs[i], cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, h.labels, formatFloat(time.Duration(h.sum.Load()).Seconds()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, h.labels, cum)
}

// --- bucket constructors ---

// LinearBuckets returns n fixed-width upper bounds lo+width, lo+2·width, …,
// lo+n·width — the same geometry internal/histogram.New(lo, hi, width)
// buckets with, expressed as Prometheus le bounds.
func LinearBuckets(lo, width time.Duration, n int) []time.Duration {
	if width <= 0 || n <= 0 {
		panic(fmt.Sprintf("telemetry: invalid linear buckets width %v n %d", width, n))
	}
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = lo + time.Duration(i+1)*width
	}
	return out
}

// ExponentialBuckets returns n upper bounds growing from start by factor.
func ExponentialBuckets(start time.Duration, factor float64, n int) []time.Duration {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic(fmt.Sprintf("telemetry: invalid exponential buckets start %v factor %v n %d", start, factor, n))
	}
	out := make([]time.Duration, n)
	v := float64(start)
	for i := range out {
		out[i] = time.Duration(v)
		v *= factor
	}
	return out
}

// RequestBuckets is the default latency geometry for request-scoped
// histograms: 1-2-5 decades from 10µs to 10s, 19 buckets.
func RequestBuckets() []time.Duration {
	return []time.Duration{
		10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
		100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
		1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
		1 * time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
	}
}

// WriteBuckets is the default geometry for storage-path histograms (WAL
// append, fsync): 1-2-5 decades from 1µs to 1s, 19 buckets.
func WriteBuckets() []time.Duration {
	return []time.Duration{
		1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
		10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
		100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
		1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
		1 * time.Second,
	}
}

// --- label rendering ---

// renderLabels prerenders a label set as {k="v",…} (empty string for no
// labels), escaping per the exposition format. Labels are sorted so the
// same set always produces the same signature.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLE renders labels plus the histogram le label.
func mergeLE(labels []Label, le string) string {
	merged := make([]Label, 0, len(labels)+1)
	merged = append(merged, labels...)
	merged = append(merged, Label{Key: "le", Value: le})
	return renderLabels(merged)
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a sample value the way Prometheus clients do: shortest
// round-trippable representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
