package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// The exposition output is a wire format consumed by Prometheus, not a log:
// pin it exactly — HELP/TYPE lines, registration order, sorted labels,
// cumulative buckets with the implicit +Inf, _sum in seconds, _total naming
// left to the caller.
func TestWritePrometheusGolden(t *testing.T) {
	r := New()
	c := r.Counter("mkse_request_errors_total", "Requests answered with an error.",
		Label{Key: "verb", Value: "search"})
	c.Add(3)
	g := r.Gauge("mkse_documents", "Documents in the store.")
	g.Set(42)
	h := r.Histogram("mkse_scan_duration_seconds", "Arena scan duration.",
		[]time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond})
	h.Observe(500 * time.Microsecond) // bucket le=0.001
	h.Observe(time.Millisecond)       // exactly on a bound: half-open, next bucket
	h.Observe(3 * time.Millisecond)   // bucket le=0.004
	h.Observe(time.Hour)              // +Inf
	r.GaugeFunc("mkse_epoch", "Mutation epoch.", func() float64 { return 7 })
	r.Collect("mkse_role", "Current role.", KindGauge, func(emit func([]Label, float64)) {
		emit([]Label{{Key: "role", Value: "primary"}}, 1)
	})

	want := strings.Join([]string{
		"# HELP mkse_request_errors_total Requests answered with an error.",
		"# TYPE mkse_request_errors_total counter",
		`mkse_request_errors_total{verb="search"} 3`,
		"# HELP mkse_documents Documents in the store.",
		"# TYPE mkse_documents gauge",
		"mkse_documents 42",
		"# HELP mkse_scan_duration_seconds Arena scan duration.",
		"# TYPE mkse_scan_duration_seconds histogram",
		`mkse_scan_duration_seconds_bucket{le="0.001"} 1`,
		`mkse_scan_duration_seconds_bucket{le="0.002"} 2`,
		`mkse_scan_duration_seconds_bucket{le="0.004"} 3`,
		`mkse_scan_duration_seconds_bucket{le="+Inf"} 4`,
		"mkse_scan_duration_seconds_sum 3600.0045",
		"mkse_scan_duration_seconds_count 4",
		"# HELP mkse_epoch Mutation epoch.",
		"# TYPE mkse_epoch gauge",
		"mkse_epoch 7",
		"# HELP mkse_role Current role.",
		"# TYPE mkse_role gauge",
		`mkse_role{role="primary"} 1`,
		"",
	}, "\n")
	if got := r.Render(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// Histogram bucketing shares internal/histogram's half-open [lo, hi)
// convention on both index paths: the O(1) linear-geometry fast path and
// the bounds scan for irregular (1-2-5) bucket sets must agree, including
// on samples exactly at a bound and past the last finite bound.
func TestHistogramBucketBoundaries(t *testing.T) {
	linear := LinearBuckets(0, time.Millisecond, 4) // 1ms 2ms 3ms 4ms
	irregular := []time.Duration{time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond}
	cases := []struct {
		name   string
		bounds []time.Duration
		fast   bool
	}{
		{"linear", linear, true},
		{"irregular", irregular, false},
		{"single", []time.Duration{time.Millisecond}, true},
	}
	for _, tc := range cases {
		h := newHistogram(tc.bounds, nil)
		if (h.width > 0) != tc.fast {
			t.Errorf("%s: fast-path detection = %v, want %v", tc.name, h.width > 0, tc.fast)
		}
		for i, b := range tc.bounds {
			if got := h.bucketIndex(b - 1); got != i {
				t.Errorf("%s: bucketIndex(%v-1ns) = %d, want %d", tc.name, b, got, i)
			}
			// Exactly on the bound: the next bucket, per the half-open
			// convention shared with internal/histogram.
			if got := h.bucketIndex(b); got != i+1 {
				t.Errorf("%s: bucketIndex(%v) = %d, want %d", tc.name, b, got, i+1)
			}
		}
		if got := h.bucketIndex(0); got != 0 {
			t.Errorf("%s: bucketIndex(0) = %d, want 0", tc.name, got)
		}
		if got := h.bucketIndex(time.Hour); got != len(tc.bounds) {
			t.Errorf("%s: bucketIndex(1h) = %d, want +Inf slot %d", tc.name, got, len(tc.bounds))
		}
	}
}

// Re-registering the same (name, labels) returns the same instrument —
// EnableMetrics must be idempotent — and re-registering a name as a
// different kind is a programming error that panics.
func TestRegistrationIdempotence(t *testing.T) {
	r := New()
	l := Label{Key: "verb", Value: "search"}
	if r.Counter("c", "h", l) != r.Counter("c", "h", l) {
		t.Error("same counter registration returned distinct instruments")
	}
	if r.Counter("c", "h") == r.Counter("c", "h", l) {
		t.Error("distinct label sets shared an instrument")
	}
	if r.Gauge("g", "h") != r.Gauge("g", "h") {
		t.Error("same gauge registration returned distinct instruments")
	}
	b := RequestBuckets()
	if r.Histogram("hist", "h", b) != r.Histogram("hist", "h", b) {
		t.Error("same histogram registration returned distinct instruments")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("c", "h")
}

// Nil instruments are the disabled state: every method must be a safe no-op
// so instrumented code paths need no enablement branches.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value != 0")
	}
	var g *Gauge
	g.Set(1)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if g.Value() != 0 {
		t.Error("nil gauge value != 0")
	}
	var h *Histogram
	h.Observe(time.Second)
	h.Since(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram accumulated")
	}
}

// Hammer every instrument from many goroutines while a scraper renders
// concurrently; run under -race in CI. Counts must come out exact — the
// instruments are atomics, not sampled.
func TestConcurrentObserve(t *testing.T) {
	r := New()
	c := r.Counter("c", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("hist", "h", RequestBuckets())
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(seed*i) * time.Microsecond)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Render()
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Errorf("gauge = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}

// Label values are escaped per the exposition format and label sets render
// sorted by key, so a scrape never emits an unparseable or unstable series.
func TestLabelRendering(t *testing.T) {
	got := renderLabels([]Label{
		{Key: "z", Value: "end"},
		{Key: "a", Value: "quote\" slash\\ nl\n"},
	})
	want := `{a="quote\" slash\\ nl\n",z="end"}`
	if got != want {
		t.Errorf("renderLabels = %s, want %s", got, want)
	}
	if renderLabels(nil) != "" {
		t.Error("empty label set should render as empty string")
	}
}

func TestBucketConstructors(t *testing.T) {
	lin := LinearBuckets(time.Millisecond, time.Millisecond, 3)
	want := []time.Duration{2 * time.Millisecond, 3 * time.Millisecond, 4 * time.Millisecond}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearBuckets = %v, want %v", lin, want)
		}
	}
	exp := ExponentialBuckets(time.Millisecond, 10, 3)
	if exp[0] != time.Millisecond || exp[1] != 10*time.Millisecond || exp[2] != 100*time.Millisecond {
		t.Errorf("ExponentialBuckets = %v", exp)
	}
	for _, bs := range [][]time.Duration{RequestBuckets(), WriteBuckets()} {
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				t.Fatalf("default buckets not ascending at %d: %v", i, bs)
			}
		}
	}
}
