package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetrics(t *testing.T) {
	reg := New()
	reg.Counter("mkse_request_errors_total", "Errors.").Add(2)
	ts := httptest.NewServer(Handler(reg, nil))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "mkse_request_errors_total 2") {
		t.Errorf("/metrics body missing series:\n%s", body)
	}
}

func TestHandlerHealthz(t *testing.T) {
	// nil health func: always ready.
	ts := httptest.NewServer(Handler(New(), nil))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nil health: status = %d, want 200", resp.StatusCode)
	}

	// A lagging follower reports 503 with the reason in the JSON body, so a
	// load balancer and a human read the same signal.
	h := Health{Ready: false, Role: "follower", Term: 3, Lag: 2048, Detail: "replication stream down"}
	ts2 := httptest.NewServer(Handler(New(), func() Health { return h }))
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unready health: status = %d, want 503", resp2.StatusCode)
	}
	if ct := resp2.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/healthz content type = %q", ct)
	}
	var got Health
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("/healthz body = %+v, want %+v", got, h)
	}
}

func TestHandlerPprof(t *testing.T) {
	ts := httptest.NewServer(Handler(New(), nil))
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestHandlerExtraRoutes(t *testing.T) {
	traced := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`[{"trace_id":"abc"}]`))
	})
	ts := httptest.NewServer(Handler(New(), nil, Route{Pattern: "/traces", Handler: traced}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "trace_id") {
		t.Errorf("extra route not mounted, body: %s", body)
	}
	// The built-in surfaces survive extra routes.
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("/metrics status = %d with extra routes", resp2.StatusCode)
	}
}

func TestServe(t *testing.T) {
	reg := New()
	reg.Gauge("mkse_documents", "Documents.").Set(5)
	srv, err := Serve("127.0.0.1:0", reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Serve returns with the listener already accepting and srv.Addr resolved
	// (":0" callers learn the port), so a scrape works immediately.
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "mkse_documents 5") {
		t.Errorf("scrape missing series:\n%s", body)
	}

	if _, err := Serve("256.0.0.1:1", reg, nil, nil); err == nil {
		t.Error("Serve on an invalid address should fail")
	}
}
