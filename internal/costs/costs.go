// Package costs instruments the three protocol parties with the operation
// and byte counters behind the paper's complexity analysis (Section 8,
// Tables 1 and 2). Counters are cheap atomics so production code paths can
// stay instrumented.
package costs

import (
	"fmt"
	"sync/atomic"
)

// Counters tallies the unit operations of Table 2 and the traffic of
// Table 1 for one party. The zero value is ready to use.
type Counters struct {
	HashOps           atomic.Int64 // HMAC/keyword expansions
	BitwiseProducts   atomic.Int64 // index AND folds
	BinaryComparisons atomic.Int64 // r-bit index match tests (server search)
	ModExps           atomic.Int64 // modular exponentiations (RSA ops)
	ModMuls           atomic.Int64 // modular multiplications (blind/unblind)
	SymEncrypts       atomic.Int64 // symmetric-key encryptions
	SymDecrypts       atomic.Int64 // symmetric-key decryptions
	Signatures        atomic.Int64 // signature creations
	Verifications     atomic.Int64 // signature verifications
	BytesSent         atomic.Int64
	BytesReceived     atomic.Int64
}

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	HashOps           int64
	BitwiseProducts   int64
	BinaryComparisons int64
	ModExps           int64
	ModMuls           int64
	SymEncrypts       int64
	SymDecrypts       int64
	Signatures        int64
	Verifications     int64
	BytesSent         int64
	BytesReceived     int64
}

// Snapshot captures the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		HashOps:           c.HashOps.Load(),
		BitwiseProducts:   c.BitwiseProducts.Load(),
		BinaryComparisons: c.BinaryComparisons.Load(),
		ModExps:           c.ModExps.Load(),
		ModMuls:           c.ModMuls.Load(),
		SymEncrypts:       c.SymEncrypts.Load(),
		SymDecrypts:       c.SymDecrypts.Load(),
		Signatures:        c.Signatures.Load(),
		Verifications:     c.Verifications.Load(),
		BytesSent:         c.BytesSent.Load(),
		BytesReceived:     c.BytesReceived.Load(),
	}
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	c.HashOps.Store(0)
	c.BitwiseProducts.Store(0)
	c.BinaryComparisons.Store(0)
	c.ModExps.Store(0)
	c.ModMuls.Store(0)
	c.SymEncrypts.Store(0)
	c.SymDecrypts.Store(0)
	c.Signatures.Store(0)
	c.Verifications.Store(0)
	c.BytesSent.Store(0)
	c.BytesReceived.Store(0)
}

// Sub returns the difference s − earlier, for measuring one protocol step.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	return Snapshot{
		HashOps:           s.HashOps - earlier.HashOps,
		BitwiseProducts:   s.BitwiseProducts - earlier.BitwiseProducts,
		BinaryComparisons: s.BinaryComparisons - earlier.BinaryComparisons,
		ModExps:           s.ModExps - earlier.ModExps,
		ModMuls:           s.ModMuls - earlier.ModMuls,
		SymEncrypts:       s.SymEncrypts - earlier.SymEncrypts,
		SymDecrypts:       s.SymDecrypts - earlier.SymDecrypts,
		Signatures:        s.Signatures - earlier.Signatures,
		Verifications:     s.Verifications - earlier.Verifications,
		BytesSent:         s.BytesSent - earlier.BytesSent,
		BytesReceived:     s.BytesReceived - earlier.BytesReceived,
	}
}

// String renders the non-zero counters on one line.
func (s Snapshot) String() string {
	out := ""
	add := func(name string, v int64) {
		if v != 0 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s=%d", name, v)
		}
	}
	add("hash", s.HashOps)
	add("and", s.BitwiseProducts)
	add("cmp", s.BinaryComparisons)
	add("modexp", s.ModExps)
	add("modmul", s.ModMuls)
	add("enc", s.SymEncrypts)
	add("dec", s.SymDecrypts)
	add("sig", s.Signatures)
	add("vrf", s.Verifications)
	add("tx", s.BytesSent)
	add("rx", s.BytesReceived)
	if out == "" {
		out = "(none)"
	}
	return out
}

// Table1Expected returns the analytic per-step communication costs of
// Table 1 in bits, for γ query keywords, an logN-bit RSA modulus, r-bit
// indices, α matched documents, θ retrieved documents and docSize-bit
// documents. Keys are "<party>/<step>" as printed in the paper's table.
func Table1Expected(gamma, logN, r, alpha, theta, docSize int) map[string]int64 {
	return map[string]int64{
		"user/trapdoor":   int64(32*gamma + logN), // bin IDs + signature-carrying request... signature folded into logN per paper
		"user/search":     int64(r),
		"user/decrypt":    int64(logN),
		"owner/trapdoor":  int64(logN),
		"owner/search":    0,
		"owner/decrypt":   int64(logN),
		"server/trapdoor": 0,
		"server/search":   int64(alpha*r) + int64(theta)*int64(docSize+logN),
		"server/decrypt":  0,
	}
}
