package costs

import (
	"strings"
	"sync"
	"testing"
)

func TestSnapshotAndReset(t *testing.T) {
	var c Counters
	c.HashOps.Add(3)
	c.BinaryComparisons.Add(10)
	c.BytesSent.Add(448)
	s := c.Snapshot()
	if s.HashOps != 3 || s.BinaryComparisons != 10 || s.BytesSent != 448 {
		t.Errorf("snapshot = %+v", s)
	}
	c.Reset()
	s = c.Snapshot()
	if s.HashOps != 0 || s.BinaryComparisons != 0 || s.BytesSent != 0 {
		t.Errorf("reset left nonzero counters: %+v", s)
	}
}

func TestSub(t *testing.T) {
	var c Counters
	c.ModExps.Add(2)
	before := c.Snapshot()
	c.ModExps.Add(3)
	c.ModMuls.Add(1)
	diff := c.Snapshot().Sub(before)
	if diff.ModExps != 3 || diff.ModMuls != 1 {
		t.Errorf("diff = %+v", diff)
	}
}

func TestConcurrentSafety(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.BinaryComparisons.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().BinaryComparisons; got != 8000 {
		t.Errorf("concurrent adds lost updates: %d", got)
	}
}

func TestStringOutput(t *testing.T) {
	var c Counters
	c.HashOps.Add(5)
	c.BytesSent.Add(100)
	s := c.Snapshot().String()
	if !strings.Contains(s, "hash=5") || !strings.Contains(s, "tx=100") {
		t.Errorf("String() = %q", s)
	}
	if !strings.Contains(Snapshot{}.String(), "none") {
		t.Errorf("empty snapshot String() = %q", Snapshot{}.String())
	}
}

// Table 1 of the paper with its own symbolic entries.
func TestTable1Expected(t *testing.T) {
	// γ=3 keywords, logN=1024, r=448, α=10 matches, θ=2 retrieved, 1 MiB doc.
	docBits := 8 * 1024 * 1024
	tab := Table1Expected(3, 1024, 448, 10, 2, docBits)
	if got := tab["user/trapdoor"]; got != 32*3+1024 {
		t.Errorf("user/trapdoor = %d, want %d", got, 32*3+1024)
	}
	if got := tab["user/search"]; got != 448 {
		t.Errorf("user/search = %d, want 448", got)
	}
	if got := tab["owner/trapdoor"]; got != 1024 {
		t.Errorf("owner/trapdoor = %d, want 1024", got)
	}
	want := int64(10*448) + int64(2)*int64(docBits+1024)
	if got := tab["server/search"]; got != want {
		t.Errorf("server/search = %d, want %d", got, want)
	}
	if tab["server/trapdoor"] != 0 || tab["owner/search"] != 0 || tab["server/decrypt"] != 0 {
		t.Error("structurally-zero entries are nonzero")
	}
}
