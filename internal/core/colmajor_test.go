package core

import (
	"fmt"
	"sync"
	"testing"

	"mkse/internal/bitindex"
	"mkse/internal/corpus"
)

// checkColumnInvariant asserts the word-major mirror is exact: every shard's
// cols[w][row] must equal word w of row's level-0 arena row, with column
// lengths tracking the row count. This is the invariant Upload (append and
// replace), Delete (swap-remove) and checkpoint installs must all preserve —
// the blocked scan kernel reads only cols, so any divergence is a silent
// wrong answer.
func checkColumnInvariant(t *testing.T, srv *Server) {
	t.Helper()
	for si, sh := range srv.shards {
		sh.mu.RLock()
		rows := len(sh.ids)
		if len(sh.cols) != sh.stride {
			sh.mu.RUnlock()
			t.Fatalf("shard %d: %d columns, stride %d", si, len(sh.cols), sh.stride)
		}
		for w, col := range sh.cols {
			if len(col) != rows {
				sh.mu.RUnlock()
				t.Fatalf("shard %d column %d: %d entries, %d rows", si, w, len(col), rows)
			}
			for row := 0; row < rows; row++ {
				if col[row] != sh.levels[0][row*sh.stride+w] {
					sh.mu.RUnlock()
					t.Fatalf("shard %d row %d word %d: column holds %#x, level-0 arena %#x",
						si, row, w, col[row], sh.levels[0][row*sh.stride+w])
				}
			}
		}
		sh.mu.RUnlock()
	}
}

// Upload (fresh and replacing), Delete and re-upload must keep the
// word-major columns an exact mirror of the row-major level-0 arena, and
// searches through the column kernel must stay byte-identical to the
// sequential reference at every step.
func TestWordMajorColumnsMirrorLevelZero(t *testing.T) {
	o := sharedOwner(t)
	srv, err := NewServerSharded(o.Params(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	docs := uploadCorpus(t, o, 60, 71, srv)
	checkColumnInvariant(t, srv)

	u := newUserFor(t, o, "col-mirror")
	u.SeedQueryRNG(73)
	words := docs[5].Keywords()[:2]
	fetchTrapdoors(t, o, u, words)
	q, err := u.BuildQuery(words)
	if err != nil {
		t.Fatal(err)
	}
	verify := func(step string) {
		t.Helper()
		checkColumnInvariant(t, srv)
		got, err := srv.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		matchesEqual(t, step, got, searchReference(t, srv, q, 0))
	}
	verify("after initial upload")

	// Replace a third of the corpus in place (same IDs, new term freqs →
	// new index words written over existing rows and columns).
	for i := 0; i < len(docs); i += 3 {
		d := docs[i]
		for w := range d.TermFreqs {
			d.TermFreqs[w] = 1 + (d.TermFreqs[w]+6)%15
		}
		si, err := o.BuildIndex(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Upload(si, &EncryptedDocument{ID: d.ID, Ciphertext: []byte(d.ID), EncKey: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	verify("after in-place replacements")

	// Delete every other document — swap-remove churns row positions, and
	// the columns must follow every swap.
	for i := 0; i < len(docs); i += 2 {
		if err := srv.Delete(docs[i].ID); err != nil {
			t.Fatal(err)
		}
	}
	verify("after deletions")

	// Re-upload the deleted half (rows append again at new positions).
	for i := 0; i < len(docs); i += 2 {
		si, err := o.BuildIndex(docs[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Upload(si, &EncryptedDocument{ID: docs[i].ID, Ciphertext: []byte(docs[i].ID), EncKey: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	verify("after re-upload")

	for _, d := range docs {
		if err := srv.Delete(d.ID); err != nil {
			t.Fatal(err)
		}
	}
	verify("after deleting everything")
}

// A concurrent upload/delete/search hammer over the transposed columns: the
// race detector checks the locking, the final column-invariant and
// reference-search checks the data. Unlike TestConcurrentUploadSearchFetch
// this mixes Delete into the write load, so searches race against
// swap-removes shifting rows between columns mid-run.
func TestConcurrentUploadDeleteSearchColumns(t *testing.T) {
	o := sharedOwner(t)
	srv, err := NewServerSharded(o.Params(), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	seedDocs := uploadCorpus(t, o, 30, 79, srv)

	u := newUserFor(t, o, "col-hammer")
	u.SeedQueryRNG(83)
	words := seedDocs[0].Keywords()[:2]
	fetchTrapdoors(t, o, u, words)
	q, err := u.BuildQuery(words)
	if err != nil {
		t.Fatal(err)
	}

	const writers, searchers, iters = 3, 3, 20
	errs := make(chan error, writers+searchers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				doc := &corpus.Document{
					ID:        fmt.Sprintf("colhammer-%d-%d", w, i),
					TermFreqs: map[string]int{"kw": 1 + i%15, fmt.Sprintf("w%d", w): 2},
				}
				si, enc, err := o.Prepare(doc)
				if err != nil {
					errs <- err
					return
				}
				if err := srv.Upload(si, enc); err != nil {
					errs <- err
					return
				}
				// Delete an earlier document of this writer's, and
				// sometimes a seed document, so swap-removes hit rows
				// other goroutines are scanning.
				if i%2 == 1 {
					if err := srv.Delete(fmt.Sprintf("colhammer-%d-%d", w, i-1)); err != nil {
						errs <- err
						return
					}
				}
				if i == iters/2 {
					if err := srv.Delete(seedDocs[w].ID); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < searchers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := srv.SearchTop(q, 5); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	checkColumnInvariant(t, srv)
	got, err := srv.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, "post-hammer", got, searchReference(t, srv, q, 0))
}

// An empty server (and an emptied shard) must scan cleanly through the
// column kernel: zero rows means zero-length columns, not nil-column
// panics.
func TestColumnScanEmptyShards(t *testing.T) {
	o := sharedOwner(t)
	srv, err := NewServerSharded(o.Params(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := bitindex.NewOnes(o.Params().R)
	res, err := srv.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty server matched %d documents", len(res))
	}
	checkColumnInvariant(t, srv)
}
