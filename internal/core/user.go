package core

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math/big"
	mrand "math/rand"
	"sync"

	"mkse/internal/bins"
	"mkse/internal/bitindex"
	"mkse/internal/blindrsa"
	"mkse/internal/costs"
	"mkse/internal/kdf"
	"mkse/internal/sym"
)

// User is an authorized group member (Figure 1). It accumulates trapdoor
// bin keys obtained from the data owner, builds randomized query indices,
// and runs the blinded document-retrieval protocol. A User is safe for
// concurrent use.
type User struct {
	ID     string
	params Params

	ownerPub        *blindrsa.PublicKey
	signKey         *blindrsa.PrivateKey
	randomTrapdoors []*bitindex.Vector

	mu       sync.Mutex
	keys     *bins.KeySet                // partial: only requested bins are populated
	vectors  map[string]*bitindex.Vector // vector-mode trapdoors (§4.2 alternative)
	keyEpoch int64                       // epoch the cached material belongs to
	rng      *mrand.Rand                 // drives the V-of-U random-keyword selection

	// Costs tallies the user-side operation counts of Table 2.
	Costs costs.Counters
}

// NewSigningKey generates a user signature key pair. Networked clients need
// the key *before* the User exists: the public half is registered with the
// owner at enrollment, and the enrollment response carries the parameters a
// User is built from. Pass the result to NewUserWithKey.
func NewSigningKey(bits int) (*blindrsa.PrivateKey, error) {
	return blindrsa.GenerateKey(bits)
}

// NewUser creates a user with a fresh signature key pair. ownerPub is the
// data owner's public key; randomTrapdoors is the enrollment package of the
// U random-keyword index vectors (Owner.RandomTrapdoors).
func NewUser(id string, p Params, ownerPub *blindrsa.PublicKey, randomTrapdoors []*bitindex.Vector) (*User, error) {
	signKey, err := NewSigningKey(p.RSABits)
	if err != nil {
		return nil, err
	}
	return NewUserWithKey(id, p, ownerPub, randomTrapdoors, signKey)
}

// NewUserWithKey creates a user around an existing signature key pair.
func NewUserWithKey(id string, p Params, ownerPub *blindrsa.PublicKey, randomTrapdoors []*bitindex.Vector, signKey *blindrsa.PrivateKey) (*User, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if signKey == nil {
		return nil, fmt.Errorf("core: user %q needs a signing key", id)
	}
	if id == "" {
		return nil, fmt.Errorf("core: user with empty ID")
	}
	if ownerPub == nil {
		return nil, fmt.Errorf("core: user %q needs the owner's public key", id)
	}
	if len(randomTrapdoors) != p.U {
		return nil, fmt.Errorf("core: user %q received %d random trapdoors, scheme uses U=%d", id, len(randomTrapdoors), p.U)
	}
	for i, v := range randomTrapdoors {
		if v == nil || v.Len() != p.R {
			return nil, fmt.Errorf("core: random trapdoor %d malformed", i)
		}
	}
	keys, err := bins.EmptyKeySet(p.Bins)
	if err != nil {
		return nil, err
	}
	// Seed the query-randomization RNG from crypto/rand; SeedQueryRNG can
	// re-seed deterministically for reproducible experiments.
	var seedBytes [8]byte
	if _, err := crand.Read(seedBytes[:]); err != nil {
		return nil, fmt.Errorf("core: seeding query rng: %w", err)
	}
	return &User{
		ID:              id,
		params:          p,
		ownerPub:        ownerPub,
		signKey:         signKey,
		randomTrapdoors: randomTrapdoors,
		keys:            keys,
		vectors:         make(map[string]*bitindex.Vector),
		keyEpoch:        1,
		rng:             mrand.New(mrand.NewSource(int64(binary.LittleEndian.Uint64(seedBytes[:])))),
	}, nil
}

// InstallTrapdoorVectors stores precomputed per-keyword trapdoors received
// from the owner in vector mode (Section 4.2's alternative trapdoor
// delivery: more bandwidth, no hashing on the user, and the bin secret
// never leaves the owner).
func (u *User) InstallTrapdoorVectors(vs map[string]*bitindex.Vector) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	for w, v := range vs {
		if v == nil || v.Len() != u.params.R {
			return fmt.Errorf("core: malformed trapdoor vector for %q", w)
		}
		u.vectors[w] = v
	}
	return nil
}

// RefreshEnrollment replaces the user's random-keyword trapdoors with a new
// package from the owner. Required after a key rotation: the decoy
// trapdoors are derived from bin keys, so they expire together with every
// other trapdoor.
func (u *User) RefreshEnrollment(randomTrapdoors []*bitindex.Vector) error {
	if len(randomTrapdoors) != u.params.U {
		return fmt.Errorf("core: user %q received %d random trapdoors, scheme uses U=%d", u.ID, len(randomTrapdoors), u.params.U)
	}
	for i, v := range randomTrapdoors {
		if v == nil || v.Len() != u.params.R {
			return fmt.Errorf("core: random trapdoor %d malformed", i)
		}
	}
	u.mu.Lock()
	u.randomTrapdoors = randomTrapdoors
	u.mu.Unlock()
	return nil
}

// KeyEpoch returns the epoch the user's cached trapdoor material belongs to.
func (u *User) KeyEpoch() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.keyEpoch
}

// ObserveEpoch compares an epoch learned from the owner with the cached
// material's epoch; if the owner has rotated keys, all cached trapdoors are
// discarded (they are expired, Section 4.3) and ObserveEpoch reports true so
// the caller can re-request.
func (u *User) ObserveEpoch(epoch int64) (expired bool, err error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if epoch == u.keyEpoch {
		return false, nil
	}
	fresh, err := bins.EmptyKeySet(u.params.Bins)
	if err != nil {
		return false, err
	}
	u.keys = fresh
	u.vectors = make(map[string]*bitindex.Vector)
	u.keyEpoch = epoch
	return true, nil
}

// SeedQueryRNG makes the V-of-U random keyword selection deterministic, for
// reproducible experiments. Production users keep the crypto-seeded default.
func (u *User) SeedQueryRNG(seed int64) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.rng = mrand.New(mrand.NewSource(seed))
}

// PublicKey returns the user's signature verification key, registered with
// the data owner at enrollment.
func (u *User) PublicKey() *blindrsa.PublicKey { return u.signKey.Public() }

// Sign signs a protocol message with the user's private key (Section 4.2:
// "the user signs his messages").
func (u *User) Sign(msg []byte) ([]byte, error) {
	u.Costs.Signatures.Add(1)
	return u.signKey.Sign(msg)
}

// BinIDs maps the query keywords to their deduplicated bin IDs — the only
// information about the keywords that a trapdoor request reveals to the
// owner.
func (u *User) BinIDs(words []string) []int {
	seen := make(map[int]bool, len(words))
	var out []int
	for _, w := range words {
		b := bins.GetBin(w, u.params.Bins)
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// InstallTrapdoorKeys stores bin keys received from the data owner. binIDs
// and keys must be parallel slices as returned by Owner.TrapdoorKeys.
func (u *User) InstallTrapdoorKeys(binIDs []int, keys [][]byte) error {
	if len(binIDs) != len(keys) {
		return fmt.Errorf("core: %d bin IDs with %d keys", len(binIDs), len(keys))
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	for i, b := range binIDs {
		if err := u.keys.SetKey(b, keys[i]); err != nil {
			return fmt.Errorf("core: installing trapdoor key: %w", err)
		}
	}
	return nil
}

// HasTrapdoorFor reports whether the user already holds trapdoor material
// (a bin key or a precomputed vector) covering a keyword, i.e. whether a
// new trapdoor exchange is needed. ("Since the user can use the same
// trapdoor for many queries ... this operation does not need to be
// performed every time", Section 3.)
func (u *User) HasTrapdoorFor(word string) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, ok := u.vectors[word]; ok {
		return true
	}
	_, err := u.keys.PartialKeyFor(word)
	return err == nil
}

// Trapdoor returns the keyword's index vector I_w: the precomputed vector
// if the owner delivered one, otherwise the Equation 1 reduction computed
// from the installed bin key (the same computation the owner applies).
func (u *User) Trapdoor(word string) (*bitindex.Vector, error) {
	u.mu.Lock()
	if v, ok := u.vectors[word]; ok {
		u.mu.Unlock()
		return v, nil
	}
	key, err := u.keys.PartialKeyFor(word)
	u.mu.Unlock()
	if err != nil {
		return nil, err
	}
	u.Costs.HashOps.Add(1)
	return bitindex.Reduce(kdf.ExpandString(key, word, u.params.HMACBytes()), u.params.R, u.params.D), nil
}

// BuildQuery assembles the randomized r-bit query index for the given search
// terms: the AND of their trapdoors plus the AND of a fresh random V-subset
// of the U random-keyword trapdoors (Sections 4.2 and 6). Two calls with the
// same keywords yield different indices — that is the point of query
// randomization.
func (u *User) BuildQuery(words []string) (*bitindex.Vector, error) {
	if len(words) == 0 {
		return nil, fmt.Errorf("core: empty query")
	}
	q := bitindex.NewOnes(u.params.R)
	for _, w := range words {
		td, err := u.Trapdoor(w)
		if err != nil {
			return nil, err
		}
		q.AndInto(td)
		u.Costs.BitwiseProducts.Add(1)
	}
	rts, subset := u.pickRandomSubset()
	for _, ri := range subset {
		q.AndInto(rts[ri])
		u.Costs.BitwiseProducts.Add(1)
	}
	return q, nil
}

// BuildQueryPlain builds a query without random keywords. It exists for the
// false-accept-rate and attack experiments, which need the deterministic
// baseline behaviour; real deployments always use BuildQuery.
func (u *User) BuildQueryPlain(words []string) (*bitindex.Vector, error) {
	if len(words) == 0 {
		return nil, fmt.Errorf("core: empty query")
	}
	q := bitindex.NewOnes(u.params.R)
	for _, w := range words {
		td, err := u.Trapdoor(w)
		if err != nil {
			return nil, err
		}
		q.AndInto(td)
		u.Costs.BitwiseProducts.Add(1)
	}
	return q, nil
}

// pickRandomSubset draws V distinct indices from [0, U) and returns the
// current random-trapdoor package alongside (both read under the lock, as
// RefreshEnrollment may swap the package concurrently).
func (u *User) pickRandomSubset() ([]*bitindex.Vector, []int) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.params.V == 0 || u.params.U == 0 {
		return u.randomTrapdoors, nil
	}
	return u.randomTrapdoors, u.rng.Perm(u.params.U)[:u.params.V]
}

// DecryptDocument runs the user's side of the retrieval protocol (Section
// 4.4) against an owner oracle (the network call performing BlindDecrypt):
// blind the wrapped key, have the owner raise it to d, unblind, then decrypt
// and authenticate the document body. The oracle never sees which EncKey the
// user is decrypting.
func (u *User) DecryptDocument(doc *EncryptedDocument, ownerDecrypt func(z *big.Int) (*big.Int, error)) ([]byte, error) {
	if doc == nil {
		return nil, fmt.Errorf("core: nil document")
	}
	// Blinding costs: 1 modexp (c^e) + 1 modmul; unblinding 1 modmul. The
	// paper's Table 2 books 3 modexp + 2 modmul per retrieval on the user
	// side (including signing); signing is counted by Sign.
	u.Costs.ModExps.Add(1)
	u.Costs.ModMuls.Add(2)
	sk, err := blindrsa.BlindDecryptKey(u.ownerPub, doc.EncKey, sym.KeySize, ownerDecrypt)
	if err != nil {
		return nil, fmt.Errorf("core: blind decryption of %q: %w", doc.ID, err)
	}
	u.Costs.SymDecrypts.Add(1)
	pt, err := sym.Decrypt(sk, doc.Ciphertext)
	if err != nil {
		return nil, fmt.Errorf("core: decrypting %q: %w", doc.ID, err)
	}
	return pt, nil
}
