package core

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"mkse/internal/bitindex"
	"mkse/internal/corpus"
	"mkse/internal/telemetry"
)

// searchReference replicates the pre-sharding implementation: scan every
// index in upload order, collect every match with its metadata cloned up
// front, fully sort by (rank desc, docID asc), then cut τ. The sharded
// engine is required to produce byte-identical output.
func searchReference(t *testing.T, srv *Server, q *bitindex.Vector, tau int) []Match {
	t.Helper()
	var out []Match
	err := srv.Export(func(si *SearchIndex, _ *EncryptedDocument) error {
		if !si.Levels[0].Matches(q) {
			return nil
		}
		rank := 1
		for rank < len(si.Levels) {
			if !si.Levels[rank].Matches(q) {
				break
			}
			rank++
		}
		out = append(out, Match{DocID: si.DocID, Rank: rank, Meta: si.Levels[0].Clone()})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank > out[j].Rank
		}
		return out[i].DocID < out[j].DocID
	})
	if tau > 0 && tau < len(out) {
		out = out[:tau]
	}
	return out
}

func matchesEqual(t *testing.T, label string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].DocID != want[i].DocID || got[i].Rank != want[i].Rank {
			t.Fatalf("%s: match %d = (%s, %d), want (%s, %d)",
				label, i, got[i].DocID, got[i].Rank, want[i].DocID, want[i].Rank)
		}
		if got[i].Meta == nil || !got[i].Meta.Equal(want[i].Meta) {
			t.Fatalf("%s: match %d metadata differs", label, i)
		}
	}
}

// uploadCorpus builds and uploads n documents to every given server.
func uploadCorpus(t *testing.T, o *Owner, n int, seed int64, servers ...*Server) []*corpus.Document {
	t.Helper()
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: n, KeywordsPerDoc: 12, Dictionary: corpus.Dictionary(300),
		MaxTermFreq: 15, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		si, err := o.BuildIndex(d)
		if err != nil {
			t.Fatal(err)
		}
		enc := &EncryptedDocument{ID: d.ID, Ciphertext: []byte(d.ID), EncKey: []byte{1}}
		for _, srv := range servers {
			if err := srv.Upload(si, enc); err != nil {
				t.Fatal(err)
			}
		}
	}
	return docs
}

// Sharded top-τ output must be byte-identical — order included — to the
// sort-based sequential baseline, for every shard/worker layout and τ.
func TestShardedSearchMatchesSequentialBaseline(t *testing.T) {
	o := sharedOwner(t)
	layouts := []struct{ shards, workers int }{
		{1, 1}, {2, 1}, {2, 2}, {4, 2}, {7, 16}, {16, 3},
	}
	servers := make([]*Server, len(layouts))
	for i, l := range layouts {
		srv, err := NewServerSharded(o.Params(), l.shards, l.workers)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
	}
	docs := uploadCorpus(t, o, 150, 23, servers...)

	u := newUserFor(t, o, "shard-prop")
	u.SeedQueryRNG(41)
	for qi := 0; qi < 8; qi++ {
		words := docs[qi*3].Keywords()[:1+qi%2]
		fetchTrapdoors(t, o, u, words)
		q, err := u.BuildQuery(words)
		if err != nil {
			t.Fatal(err)
		}
		want := searchReference(t, servers[0], q, 0)
		for li, srv := range servers {
			for _, tau := range []int{0, 1, 3, 10, 10000} {
				got, err := srv.SearchTop(q, tau)
				if err != nil {
					t.Fatal(err)
				}
				ref := want
				if tau > 0 && tau < len(ref) {
					ref = ref[:tau]
				}
				matchesEqual(t, fmt.Sprintf("layout %d (%d shards), query %d, tau=%d",
					li, servers[li].NumShards(), qi, tau), got, ref)
			}
		}
	}
}

// SearchBatch result i must equal SearchTop(queries[i]), and batching must
// spend exactly the same number of binary comparisons as the sequential
// calls (the Table 2 accounting is batch-invariant).
func TestSearchBatchMatchesSearchTop(t *testing.T) {
	o := sharedOwner(t)
	srv, err := NewServerSharded(o.Params(), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	docs := uploadCorpus(t, o, 100, 29, srv)

	u := newUserFor(t, o, "batch-prop")
	u.SeedQueryRNG(43)
	var queries []*bitindex.Vector
	for qi := 0; qi < 6; qi++ {
		words := docs[qi*5].Keywords()[:2]
		fetchTrapdoors(t, o, u, words)
		q, err := u.BuildQuery(words)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}
	for _, tau := range []int{0, 2, 7} {
		srv.Costs.Reset()
		results, err := srv.SearchBatch(queries, tau)
		if err != nil {
			t.Fatal(err)
		}
		batchCmps := srv.Costs.Snapshot().BinaryComparisons
		if len(results) != len(queries) {
			t.Fatalf("tau=%d: %d result sets for %d queries", tau, len(results), len(queries))
		}
		srv.Costs.Reset()
		for qi, q := range queries {
			want, err := srv.SearchTop(q, tau)
			if err != nil {
				t.Fatal(err)
			}
			matchesEqual(t, fmt.Sprintf("tau=%d query %d", tau, qi), results[qi], want)
		}
		if seqCmps := srv.Costs.Snapshot().BinaryComparisons; batchCmps != seqCmps {
			t.Errorf("tau=%d: batch spent %d comparisons, sequential %d", tau, batchCmps, seqCmps)
		}
	}

	if res, err := srv.SearchBatch(nil, 0); err != nil || res != nil {
		t.Errorf("empty batch: %v, %v", res, err)
	}
	if _, err := srv.SearchBatch([]*bitindex.Vector{queries[0], bitindex.New(8)}, 0); err == nil {
		t.Error("batch with wrong-size query accepted")
	}
}

func TestNewServerShardedLayouts(t *testing.T) {
	o := sharedOwner(t)
	srv, err := NewServerSharded(o.Params(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if srv.NumShards() < 1 {
		t.Errorf("default layout has %d shards", srv.NumShards())
	}
	srv, err = NewServerSharded(o.Params(), 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if srv.NumShards() != 5 {
		t.Errorf("explicit layout has %d shards, want 5", srv.NumShards())
	}
	bad := o.Params()
	bad.R = -1
	if _, err := NewServerSharded(bad, 2, 2); err == nil {
		t.Error("invalid params accepted")
	}
}

// Upload order must survive sharding: Export and DocumentIDs iterate in
// global upload order, and re-uploads keep their original position.
func TestShardedUploadOrderPreserved(t *testing.T) {
	o := sharedOwner(t)
	srv, err := NewServerSharded(o.Params(), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wantIDs []string
	var lastSI *SearchIndex
	var lastEnc *EncryptedDocument
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("order-%02d", i)
		doc := &corpus.Document{ID: id, TermFreqs: map[string]int{"w": 1 + i%15}}
		si, enc, err := o.Prepare(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Upload(si, enc); err != nil {
			t.Fatal(err)
		}
		wantIDs = append(wantIDs, id)
		if i == 10 {
			lastSI, lastEnc = si, enc
		}
	}
	// Replace a middle document; its position must not move.
	if err := srv.Upload(lastSI, lastEnc); err != nil {
		t.Fatal(err)
	}
	if srv.NumDocuments() != 30 {
		t.Fatalf("NumDocuments = %d, want 30", srv.NumDocuments())
	}
	got := srv.DocumentIDs()
	if len(got) != len(wantIDs) {
		t.Fatalf("DocumentIDs returned %d ids, want %d", len(got), len(wantIDs))
	}
	for i := range wantIDs {
		if got[i] != wantIDs[i] {
			t.Fatalf("DocumentIDs[%d] = %s, want %s", i, got[i], wantIDs[i])
		}
	}
	i := 0
	err = srv.Export(func(si *SearchIndex, doc *EncryptedDocument) error {
		if si.DocID != wantIDs[i] || doc.ID != wantIDs[i] {
			return fmt.Errorf("export position %d is %s, want %s", i, si.DocID, wantIDs[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Concurrent Upload, Search, SearchBatch and Fetch from many goroutines must
// neither race (run with -race) nor corrupt results: after quiescence every
// search must agree with the sequential baseline.
func TestConcurrentUploadSearchFetch(t *testing.T) {
	o := sharedOwner(t)
	srv, err := NewServerSharded(o.Params(), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	seedDocs := uploadCorpus(t, o, 40, 31, srv)

	u := newUserFor(t, o, "hammer")
	u.SeedQueryRNG(47)
	words := seedDocs[0].Keywords()[:2]
	fetchTrapdoors(t, o, u, words)
	var queries []*bitindex.Vector
	for i := 0; i < 4; i++ {
		q, err := u.BuildQuery(words)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}

	const writers, readers, iters = 3, 4, 25
	errs := make(chan error, writers+readers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				doc := &corpus.Document{
					ID:        fmt.Sprintf("conc-%d-%d", w, i),
					TermFreqs: map[string]int{"kw": 1 + i%15, fmt.Sprintf("w%d", w): 2},
				}
				si, enc, err := o.Prepare(doc)
				if err != nil {
					errs <- err
					return
				}
				if err := srv.Upload(si, enc); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0:
					if _, err := srv.SearchTop(queries[r%len(queries)], 5); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, err := srv.SearchBatch(queries, 5); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := srv.Fetch(seedDocs[i%len(seedDocs)].ID); err != nil {
						errs <- err
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if want := 40 + writers*iters; srv.NumDocuments() != want {
		t.Fatalf("NumDocuments = %d, want %d", srv.NumDocuments(), want)
	}
	// Quiescent state must agree with the sequential baseline exactly.
	for qi, q := range queries {
		want := searchReference(t, srv, q, 0)
		got, err := srv.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		matchesEqual(t, fmt.Sprintf("post-hammer query %d", qi), got, want)
	}
}

// The steady-state query path must be allocation-free outside of result
// assembly: a query with no matches allocates only the result slice, and a
// τ-cut query allocates only its τ Match structs and Meta copies. All scan
// scratch (sparse query forms, match flags, heaps, merge buffers) is pooled.
//
// The whole test runs with the telemetry scan histogram enabled: a metrics
// observation is a bucket index plus two atomic adds into preallocated
// slots, so instrumentation must not cost the scan path a single
// allocation either.
func TestSearchScanPathAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	o := sharedOwner(t)
	srv, err := NewServerSharded(o.Params(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	scanHist := telemetry.New().Histogram("test_scan_seconds", "scan timings", telemetry.RequestBuckets())
	srv.ObserveScans(scanHist)
	docs := uploadCorpus(t, o, 200, 37, srv)

	u := newUserFor(t, o, "alloc-prop")
	u.SeedQueryRNG(53)
	words := docs[0].Keywords()[:2]
	fetchTrapdoors(t, o, u, words)
	hit, err := u.BuildQuery(words)
	if err != nil {
		t.Fatal(err)
	}
	miss := bitindex.New(o.Params().R) // all-zero query matches nothing here

	if got := testing.AllocsPerRun(100, func() {
		if _, err := srv.SearchTop(miss, 5); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Errorf("no-match SearchTop allocates %.0f times per query, want 0", got)
	}

	res, err := srv.SearchTop(hit, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("test query matched nothing; pick different words")
	}
	// Result assembly: the ms slice plus ≤ 2 allocations per returned Meta
	// vector. Anything above that is scan-path garbage.
	budget := 1.0 + 2.0*float64(len(res))
	if got := testing.AllocsPerRun(100, func() {
		if _, err := srv.SearchTop(hit, 5); err != nil {
			t.Fatal(err)
		}
	}); got > budget {
		t.Errorf("SearchTop with %d matches allocates %.0f times per query, want <= %.0f", len(res), got, budget)
	}

	// The multi-worker path must be equally clean: job dispatch to the
	// persistent shard-affine workers is by-value channel sends, and every
	// worker's scratch (row buffers, block bitmaps) is warm after the
	// first search.
	multi, err := NewServerSharded(o.Params(), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	uploadCorpus(t, o, 200, 37, multi)
	for i := 0; i < 3; i++ { // spawn workers, warm every worker's scratch
		if _, err := multi.SearchTop(miss, 5); err != nil {
			t.Fatal(err)
		}
	}
	multi.ObserveScans(scanHist)
	if got := testing.AllocsPerRun(100, func() {
		if _, err := multi.SearchTop(miss, 5); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Errorf("no-match multi-worker SearchTop allocates %.0f times per query, want 0", got)
	}

	// Every instrumented search above must actually have been observed — a
	// zero count would mean the histogram hook silently fell off and the
	// allocation assertions proved nothing about the telemetry-enabled path.
	if scanHist.Count() == 0 {
		t.Fatal("scan histogram observed nothing; the telemetry hook is disconnected")
	}
}

// Every applied mutation — insert, in-place replacement, delete — must bump
// the mutation epoch before the call returns; failed mutations must not.
// The query-result cache's no-stale-results guarantee rests on this.
func TestEpochAdvancesOnEveryMutation(t *testing.T) {
	o := sharedOwner(t)
	srv, err := NewServerSharded(o.Params(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Epoch(); got != 0 {
		t.Fatalf("fresh server epoch = %d", got)
	}
	docs := uploadCorpus(t, o, 5, 91, srv)
	if got := srv.Epoch(); got != 5 {
		t.Fatalf("epoch after 5 uploads = %d", got)
	}

	// Re-upload (in-place replacement) mutates visible state: must bump.
	si, err := o.BuildIndex(docs[2])
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Upload(si, &EncryptedDocument{ID: docs[2].ID, Ciphertext: []byte("v2"), EncKey: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if got := srv.Epoch(); got != 6 {
		t.Fatalf("epoch after replacement = %d, want 6", got)
	}

	if err := srv.Delete(docs[0].ID); err != nil {
		t.Fatal(err)
	}
	if got := srv.Epoch(); got != 7 {
		t.Fatalf("epoch after delete = %d, want 7", got)
	}

	// Failed mutations leave the epoch alone: nothing changed.
	if err := srv.Delete("no-such-doc"); err == nil {
		t.Fatal("deleting unknown ID succeeded")
	}
	if err := srv.Upload(nil, nil); err == nil {
		t.Fatal("nil upload succeeded")
	}
	if got := srv.Epoch(); got != 7 {
		t.Fatalf("epoch after failed mutations = %d, want 7", got)
	}

	// Searches are reads: no bump.
	q := bitindex.New(o.Params().R)
	if _, err := srv.SearchTop(q, 5); err != nil {
		t.Fatal(err)
	}
	if got := srv.Epoch(); got != 7 {
		t.Fatalf("epoch after search = %d, want 7", got)
	}
}
