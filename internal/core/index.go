package core

import (
	"fmt"

	"mkse/internal/bitindex"
)

// SearchIndex is the per-document searchable metadata stored at the cloud
// server: one r-bit index per ranking level. Level 1 (slice position 0)
// covers every keyword of the document; higher levels cover only keywords
// whose term frequency clears the level's threshold (Section 5). With
// ranking disabled there is a single level.
//
// The index reveals nothing about the keywords without the owner's bin keys
// (index privacy, Theorem 2); the server stores and compares it blindly.
type SearchIndex struct {
	DocID  string
	Levels []*bitindex.Vector
}

// Clone deep-copies the index.
func (si *SearchIndex) Clone() *SearchIndex {
	out := &SearchIndex{DocID: si.DocID, Levels: make([]*bitindex.Vector, len(si.Levels))}
	for i, l := range si.Levels {
		out.Levels[i] = l.Clone()
	}
	return out
}

// Validate checks structural invariants against the scheme parameters.
func (si *SearchIndex) Validate(p Params) error {
	if si.DocID == "" {
		return fmt.Errorf("core: search index with empty document ID")
	}
	if len(si.Levels) != p.Eta() {
		return fmt.Errorf("core: search index for %q has %d levels, scheme uses %d", si.DocID, len(si.Levels), p.Eta())
	}
	for i, l := range si.Levels {
		if l == nil {
			return fmt.Errorf("core: search index for %q has nil level %d", si.DocID, i+1)
		}
		if l.Len() != p.R {
			return fmt.Errorf("core: search index for %q level %d has %d bits, want %d", si.DocID, i+1, l.Len(), p.R)
		}
	}
	return nil
}

// EncryptedDocument is the payload stored at the cloud server: the
// symmetric-key ciphertext of the document body and the RSA encryption of
// its per-document symmetric key (Section 4.4). The server can decrypt
// neither.
type EncryptedDocument struct {
	ID         string
	Ciphertext []byte
	EncKey     []byte // textbook-RSA encryption of the document key
}

// Match is one search hit returned by the server: the document ID, the rank
// assigned by Algorithm 1 (highest matching level, ≥ 1), and the document's
// level-1 index — the "metadata" the user may analyze further; it "does not
// contain useful information about the content" (Section 3, footnote 2).
type Match struct {
	DocID string
	Rank  int
	Meta  *bitindex.Vector
}
