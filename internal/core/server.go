package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mkse/internal/bitindex"
	"mkse/internal/costs"
	"mkse/internal/telemetry"
)

// ErrNotFound reports an operation on a document ID the server does not
// hold. Fetch and Delete wrap it so callers (the durable write-ahead log,
// the service layer) can distinguish "no such document" from real failures.
var ErrNotFound = errors.New("no such document")

// Server is the semi-honest cloud server of Figure 1. It stores encrypted
// documents, RSA-wrapped keys and search indices, and answers queries with
// the oblivious comparison of Equation 3 plus the level-walking rank
// assignment of Algorithm 1. It holds no key material: everything it stores
// and computes on is opaque. A Server is safe for concurrent use.
//
// # Sharded architecture
//
// The document store is split over a fixed set of shards, each with its own
// lock; a document's shard is a hash of its ID. Uploads, fetches and searches
// touching different shards never contend. Search fans the query out across
// shards with a bounded worker pool: every shard runs the Equation-3 match
// kernel over its own indices and keeps a local bounded top-τ heap keyed on
// (rank, docID); the per-shard winners are merged, cut to τ, and only the
// survivors' level-1 metadata is copied out. Binary-comparison cost
// accounting is batched into one atomic add per shard per query. For any
// fixed store state, results are identical — order included — to a
// sequential scan followed by a full (rank desc, docID asc) sort, whatever
// the shard and worker counts. Consistency under concurrent writes is
// per-shard, not global: a search overlapping in-flight uploads may observe
// a later upload while missing an earlier one on a different shard, and a
// returned match's Meta vector reflects the stored index at result-assembly
// time, which for a document replaced mid-search may be newer than the index
// that matched (the pre-sharding single lock made every search a
// point-in-time snapshot; Export retains that guarantee by locking all
// shards at once).
//
// # Columnar index arenas and the zero-word-skipping kernel
//
// Within a shard, indices are not stored as per-document vectors but as one
// contiguous []uint64 arena per ranking level: document i's r-bit level-η
// index occupies words [i·stride, (i+1)·stride) of the level-η arena
// (struct-of-arrays). The scan is therefore a linear, prefetch-friendly
// sweep over flat memory with zero pointer chasing — the boxed
// *SearchIndex → *Vector → []uint64 chain of earlier revisions cost three
// dependent cache misses per document. Uploading copies the index words into
// the arenas (the caller's SearchIndex is not retained); re-uploading an
// existing ID overwrites its rows in place, keeping its original
// upload-order position. Each query is preprocessed once into a
// bitindex.Sparse — the offsets of the few words where ¬q ≠ 0, the only
// words Equation 3 can fail on. The level-1 screen runs over a word-major
// copy of the level-1 arena (one contiguous column per word offset) with the
// blocked bitmap-refinement kernel (bitindex.AppendMatchingRowsColumns):
// the first active column is swept sequentially into per-64-row survivor
// bitmasks, and only surviving blocks are refined against the remaining
// active columns, most selective first. The Algorithm-1 level walk then
// tests survivors row-major per level, touching only the active offsets.
// Multi-shard scans are dispatched to persistent shard-affine workers —
// each worker goroutine owns a fixed subset of shards for the server's
// lifetime, so a shard's arenas are always rescanned by the same worker.
// Scan scratch (row buffers, block bitmaps, sparse forms, heaps, merge
// buffers) is pooled and reused, so steady-state searches allocate only
// their results.
//
// Uploaded documents are stored by reference and must not be mutated by the
// caller afterwards; search indices are copied into the arenas at Upload.
type Server struct {
	params  Params
	workers int
	stride  int // 64-bit words per r-bit index row
	shards  []*shard

	seq atomic.Uint64 // global upload order, for Export/DocumentIDs

	// epoch counts applied mutations. It is bumped after a mutation is
	// applied and before the mutating call returns, so once an Upload or
	// Delete has been acknowledged, every later Epoch read observes a value
	// newer than any epoch read before the mutation — the invariant the
	// query-result cache (internal/qcache) builds its invalidation on.
	epoch atomic.Uint64

	scratch sync.Pool // *scanScratch, reused across searches

	// Persistent shard-affine scan workers, spawned on the first parallel
	// search. jobs[k] feeds the worker owning shards k, k+W, k+2W, … (W =
	// workers). The goroutines reference only their channel and shard
	// subset — not the Server — so a cleanup attached to the Server can
	// close the channels and end them once the Server is unreachable.
	startWorkers sync.Once
	jobs         []chan scanJob

	// scanHist, when set (ObserveScans), receives the wall-clock duration of
	// every SearchTop/SearchBatch scan. A histogram observation is two atomic
	// adds into preallocated buckets, so enabling telemetry keeps the
	// steady-state search path allocation-free (pinned by
	// TestSearchScanPathAllocationFree).
	scanHist atomic.Pointer[telemetry.Histogram]

	// scanObs, when set (ObserveScanContexts), additionally receives each
	// scan's request context and timing. It is how the tracing layer hangs
	// a "scan" span under a sampled request without core importing the
	// trace package: the installed closure checks the context for a sampled
	// trace and no-ops otherwise, so with tracing compiled in but disabled
	// the scan path stays allocation-free.
	scanObs atomic.Pointer[ScanObserverFunc]

	// Costs tallies server-side binary comparisons (Table 2) and traffic.
	Costs costs.Counters
}

// ScanObserverFunc receives one scan's request context, start time and
// duration (see ObserveScanContexts).
type ScanObserverFunc func(ctx context.Context, start time.Time, d time.Duration)

// shard is one independently locked slice of the document store, laid out as
// parallel columns: row i of every slice and arena describes one document.
//
// Level-0 indices are stored twice: row-major in levels[0] (the layout the
// metadata copies, Export and the level walk read rows from) and word-major
// in cols (cols[w][row] = word w of row's level-0 index — the layout the
// blocked bitmap-refinement kernel sweeps). Upload and Delete maintain both
// in lock step; the duplication costs one extra level's worth of memory and
// buys the scan a sequential, line-dense walk of exactly the query's active
// words.
type shard struct {
	mu     sync.RWMutex
	byID   map[string]int // docID → row
	ids    []string
	seqs   []uint64
	docs   []*EncryptedDocument
	levels [][]uint64 // levels[l]: all rows' level-(l+1) index words, back-to-back
	cols   [][]uint64 // word-major level 0: cols[w][row], one column per word offset
	stride int
}

// NewServer creates an empty server with one shard per GOMAXPROCS core.
func NewServer(p Params) (*Server, error) {
	return NewServerSharded(p, 0, 0)
}

// NewServerSharded creates an empty server with an explicit shard count and
// search worker-pool size. shards <= 0 defaults to GOMAXPROCS; workers <= 0
// defaults to min(shards, GOMAXPROCS). A single shard reproduces the
// monolithic layout (one lock, one scan).
func NewServerSharded(p Params, shards, workers int) (*Server, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	s := &Server{params: p, workers: workers, stride: bitindex.WordsFor(p.R), shards: make([]*shard, shards)}
	for i := range s.shards {
		s.shards[i] = &shard{
			byID:   make(map[string]int),
			levels: make([][]uint64, p.Eta()),
			cols:   make([][]uint64, s.stride),
			stride: s.stride,
		}
	}
	s.scratch.New = func() any { return new(scanScratch) }
	return s, nil
}

// Params returns the scheme parameters the server was configured with.
func (s *Server) Params() Params { return s.params }

// NumShards returns the number of store shards.
func (s *Server) NumShards() int { return len(s.shards) }

// Epoch returns the store's mutation epoch: a counter bumped by every
// applied Upload and Delete (wherever it originates — a client request, a
// WAL replay, a replicated record, a checkpoint install). A result computed
// at epoch E is valid exactly as long as Epoch still returns E. Callers
// caching search results must read the epoch before starting the scan; see
// internal/qcache.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// NumWorkers returns the resolved search worker-pool size.
func (s *Server) NumWorkers() int { return s.workers }

// ObserveScans points the server's scan-latency instrument at h: every
// subsequent SearchTop or SearchBatch call records its scan duration there
// (the raw arena-scan time, before any wire encoding or result caching —
// the number that moves when the kernel or the corpus does). A nil h
// disables observation. Safe to call concurrently with searches.
func (s *Server) ObserveScans(h *telemetry.Histogram) { s.scanHist.Store(h) }

// ObserveScanContexts points the server's context-aware scan observer at
// fn: every subsequent SearchTopContext or SearchBatchContext scan invokes
// it with the request's context and the scan's timing, alongside any
// ObserveScans histogram. A nil fn disables observation. Safe to call
// concurrently with searches.
func (s *Server) ObserveScanContexts(fn ScanObserverFunc) {
	if fn == nil {
		s.scanObs.Store(nil)
		return
	}
	s.scanObs.Store(&fn)
}

// shardFor routes a document ID to its shard (inlined 32-bit FNV-1a — the
// hash/fnv object would heap-allocate on every Upload/Fetch).
func (s *Server) shardFor(docID string) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(docID); i++ {
		h ^= uint32(docID[i])
		h *= 16777619
	}
	return s.shards[h%uint32(len(s.shards))]
}

// Upload stores one document's search index and encrypted payload. Both
// must refer to the same document ID; re-uploading an existing ID replaces
// it (the owner refreshing an index after key rotation) in place, keeping
// its original upload-order position. The index words are copied into the
// shard's arenas; the payload is stored by reference.
func (s *Server) Upload(si *SearchIndex, doc *EncryptedDocument) error {
	if si == nil || doc == nil {
		return fmt.Errorf("core: nil upload")
	}
	if err := si.Validate(s.params); err != nil {
		return err
	}
	if doc.ID != si.DocID {
		return fmt.Errorf("core: index is for %q but document is %q", si.DocID, doc.ID)
	}
	sh := s.shardFor(si.DocID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lvl0 := si.Levels[0].Words()
	if row, ok := sh.byID[si.DocID]; ok {
		for l, v := range si.Levels {
			v.CopyWordsTo(sh.levels[l][row*sh.stride : (row+1)*sh.stride])
		}
		for w := range sh.cols {
			sh.cols[w][row] = lvl0[w]
		}
		sh.docs[row] = doc
		s.epoch.Add(1) // after apply, before ack (see Epoch)
		return nil
	}
	sh.byID[si.DocID] = len(sh.ids)
	sh.ids = append(sh.ids, si.DocID)
	sh.seqs = append(sh.seqs, s.seq.Add(1))
	sh.docs = append(sh.docs, doc)
	for l, v := range si.Levels {
		sh.levels[l] = v.AppendTo(sh.levels[l])
	}
	for w := range sh.cols {
		sh.cols[w] = append(sh.cols[w], lvl0[w])
	}
	s.epoch.Add(1) // after apply, before ack (see Epoch)
	return nil
}

// Delete removes a stored document: its encrypted payload, wrapped key and
// every ranking level's index row. The freed arena rows are compacted by
// swap-remove — the shard's last row moves into the vacated slot and the
// arenas shrink by one stride — so scans never visit dead rows and a long
// delete-heavy workload cannot leak arena space (capacities are released
// once a shard falls to a quarter of its high-water mark). Deleting an
// unknown ID returns ErrNotFound. Delete does not reset the document's
// upload sequence: re-uploading the same ID later enrolls it as new, at the
// end of the upload order.
func (s *Server) Delete(docID string) error {
	sh := s.shardFor(docID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	row, ok := sh.byID[docID]
	if !ok {
		return fmt.Errorf("core: no document %q: %w", docID, ErrNotFound)
	}
	last := len(sh.ids) - 1
	if row != last {
		sh.ids[row] = sh.ids[last]
		sh.seqs[row] = sh.seqs[last]
		sh.docs[row] = sh.docs[last]
		sh.byID[sh.ids[row]] = row
		for _, arena := range sh.levels {
			copy(arena[row*sh.stride:(row+1)*sh.stride], arena[last*sh.stride:(last+1)*sh.stride])
		}
		for _, col := range sh.cols {
			col[row] = col[last]
		}
	}
	sh.ids = shrink(sh.ids[:last])
	sh.seqs = shrink(sh.seqs[:last])
	sh.docs[last] = nil // release the payload reference
	sh.docs = shrink(sh.docs[:last])
	for l := range sh.levels {
		sh.levels[l] = shrink(sh.levels[l][:last*sh.stride])
	}
	for w := range sh.cols {
		sh.cols[w] = shrink(sh.cols[w][:last])
	}
	delete(sh.byID, docID)
	s.epoch.Add(1) // after apply, before ack (see Epoch)
	return nil
}

// shrink reallocates a column whose length has fallen to a quarter of its
// capacity, so a store that grew large and was then mostly deleted returns
// the memory. Small columns are left alone.
func shrink[T any](s []T) []T {
	if cap(s) >= 64 && len(s)*4 <= cap(s) {
		return append(make([]T, 0, len(s)*2), s...)
	}
	return s
}

// NumDocuments returns the number of stored documents σ.
func (s *Server) NumDocuments() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.ids)
		sh.mu.RUnlock()
	}
	return n
}

// candidate is a match that survived a shard scan: the rank plus the
// (shard, row) coordinates of the stored index. Its level-1 metadata is
// copied out of the arena only if it survives the global τ-cut — the seed
// implementation cloned every match's r-bit vector up front and then
// discarded all but τ of them.
type candidate struct {
	rank int
	row  int
	id   string
	sh   *shard
}

// worse orders candidates worst-first: lower rank, ties broken by larger
// document ID (the final output is rank descending, docID ascending).
func (c candidate) worse(o candidate) bool {
	if c.rank != o.rank {
		return c.rank < o.rank
	}
	return c.id > o.id
}

// topTau accumulates match candidates. With limit > 0 it is a bounded
// min-heap (worst kept candidate at the root) holding the τ best seen so
// far; with limit <= 0 it collects everything.
type topTau struct {
	limit int
	c     []candidate
}

func (h *topTau) add(c candidate) {
	if h.limit <= 0 {
		h.c = append(h.c, c)
		return
	}
	if len(h.c) < h.limit {
		h.c = append(h.c, c)
		// Sift up.
		i := len(h.c) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !h.c[i].worse(h.c[parent]) {
				break
			}
			h.c[i], h.c[parent] = h.c[parent], h.c[i]
			i = parent
		}
		return
	}
	if !h.c[0].worse(c) {
		return // incoming candidate is no better than the worst kept
	}
	// Replace the root and sift down.
	h.c[0] = c
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h.c) && h.c[l].worse(h.c[min]) {
			min = l
		}
		if r < len(h.c) && h.c[r].worse(h.c[min]) {
			min = r
		}
		if min == i {
			return
		}
		h.c[i], h.c[min] = h.c[min], h.c[i]
		i = min
	}
}

// scanScratch is the per-search working set, pooled on the Server so the
// steady-state query path performs no allocations beyond its results.
type scanScratch struct {
	sparse  []bitindex.Sparse  // preprocessed query forms (backing storage)
	qs      []*bitindex.Sparse // pointers into sparse, what the kernels take
	workers []workerScratch    // one per concurrent shard scanner
	heaps   []topTau           // per-shard × per-query heaps, flat
	cands   []candidate        // merge buffer for the global τ-cut
	qbuf    []*bitindex.Vector // single-query wrapper for SearchTop
	out     [][]Match          // single-query result wrapper for SearchTop
	wg      sync.WaitGroup     // parallel-scan barrier, reused across searches
}

// workerScratch is the buffer set one scanning goroutine owns for the
// duration of a search.
type workerScratch struct {
	rows   []int32               // matching-row buffer for the arena scan kernel
	blocks bitindex.BlockScratch // survivor bitmaps for the blocked column kernel
	cmps   int64                 // comparisons this worker performed, read after wg.Wait
}

// queries sparsifies qs into the scratch, reusing prior backing storage.
func (sc *scanScratch) queries(qs []*bitindex.Vector) []*bitindex.Sparse {
	if cap(sc.sparse) < len(qs) {
		sc.sparse = make([]bitindex.Sparse, len(qs))
	}
	sc.sparse = sc.sparse[:len(qs)]
	sc.qs = sc.qs[:0]
	for i, q := range qs {
		q.SparsifyInto(&sc.sparse[i])
		sc.qs = append(sc.qs, &sc.sparse[i])
	}
	return sc.qs
}

// grids sizes the worker buffers and heap grid for a (workers × shards × nq)
// search with per-heap limit tau, recycling all prior backing storage.
func (sc *scanScratch) grids(workers, shards, nq, tau int) {
	if cap(sc.workers) < workers {
		sc.workers = append(sc.workers[:cap(sc.workers)], make([]workerScratch, workers-cap(sc.workers))...)
	}
	sc.workers = sc.workers[:workers]
	if need := shards * nq; cap(sc.heaps) < need {
		sc.heaps = append(sc.heaps[:cap(sc.heaps)], make([]topTau, need-cap(sc.heaps))...)
	}
	sc.heaps = sc.heaps[:shards*nq]
	for i := range sc.heaps {
		sc.heaps[i].limit = tau
		sc.heaps[i].c = sc.heaps[i].c[:0]
	}
}

// scan runs the Equation-3 match kernel and Algorithm-1 level walk over one
// shard for every query, feeding per-query heaps. It returns the number of
// r-bit comparisons performed so the caller can record them with a single
// atomic add per shard.
func (sh *shard) scan(qs []*bitindex.Sparse, ws *workerScratch, heaps []topTau) int64 {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var cmps int64
	rows := len(sh.ids)
	for qi, q := range qs {
		// One blocked column sweep per query: the kernel reads the first
		// active word of every row from one contiguous column (eight rows
		// per cache line), then refines only the surviving 64-row blocks
		// against the other active columns — so even a query batch is
		// cheaper as consecutive sequential sweeps than as a row-hot
		// multi-query loop with its per-row call overhead. Every row is
		// still one Equation-3 comparison for Table-2 accounting.
		ws.rows = q.AppendMatchingRowsColumns(sh.cols, rows, &ws.blocks, ws.rows[:0])
		cmps += int64(rows)
		for _, r := range ws.rows {
			cmps += sh.walkLevelsAt(q, int(r), &heaps[qi])
		}
	}
	return cmps
}

// walkLevelsAt assigns row's rank against q and records the candidate,
// returning the number of extra r-bit comparisons spent on levels ≥ 2.
func (sh *shard) walkLevelsAt(q *bitindex.Sparse, row int, heap *topTau) int64 {
	base := row * sh.stride
	var cmps int64
	rank := 1
	for rank < len(sh.levels) {
		cmps++
		if !q.MatchWords(sh.levels[rank][base : base+sh.stride]) {
			break
		}
		rank++
	}
	heap.add(candidate{rank: rank, row: row, id: sh.ids[row], sh: sh})
	return cmps
}

// metaVector copies row's level-1 index out of the arena as a fresh vector.
func (sh *shard) metaVector(row, nbits int) *bitindex.Vector {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return bitindex.FromWords(nbits, sh.levels[0][row*sh.stride:(row+1)*sh.stride])
}

// searchSharded fans qs out across shards with the worker pool and merges
// the per-shard winners into one rank-ordered, τ-cut result into out[i] for
// query i. out must be len(qs) long; entries for queries without matches
// are left nil, matching the sequential scan.
func (s *Server) searchSharded(sc *scanScratch, qs []*bitindex.Vector, tau int, out [][]Match) {
	nq := len(qs)
	workers := s.workers
	if workers <= 1 || len(s.shards) == 1 {
		workers = 1
	}
	sqs := sc.queries(qs)
	sc.grids(workers, len(s.shards), nq, tau)

	if workers == 1 {
		// Kept free of func literals: a `go` closure anywhere in a function
		// heap-allocates its captures even on branches that never spawn it,
		// and this branch is the single-query hot path.
		for i := range s.shards {
			cmps := s.shards[i].scan(sqs, &sc.workers[0], sc.heaps[i*nq:(i+1)*nq])
			s.Costs.BinaryComparisons.Add(cmps)
		}
	} else {
		s.scanParallel(sqs, sc, nq, workers)
	}

	for qi := range qs {
		cands := sc.cands[:0]
		for si := 0; si < len(s.shards); si++ {
			cands = append(cands, sc.heaps[si*nq+qi].c...)
		}
		slices.SortFunc(cands, func(a, b candidate) int {
			if a.rank != b.rank {
				return b.rank - a.rank
			}
			return strings.Compare(a.id, b.id)
		})
		if tau > 0 && tau < len(cands) {
			cands = cands[:tau]
		}
		sc.cands = cands[:0]
		if len(cands) == 0 {
			continue // out[qi] stays nil, matching the sequential scan
		}
		ms := make([]Match, len(cands))
		for i, c := range cands {
			ms[i] = Match{DocID: c.id, Rank: c.rank, Meta: c.sh.metaVector(c.row, s.params.R)}
		}
		out[qi] = ms
	}
}

// scanJob is one search's worth of work for one persistent scan worker: scan
// every shard the worker owns with sqs, feed heaps, leave the comparison
// count in ws.cmps, and signal wg. All fields are owned by the dispatching
// search until wg is signalled.
type scanJob struct {
	sqs   []*bitindex.Sparse
	heaps []topTau // full shard × query grid; indexed by the worker's shard numbers
	nq    int
	ws    *workerScratch
	wg    *sync.WaitGroup
}

// scanParallel dispatches one job per persistent shard-affine worker and
// waits for all of them. Earlier revisions spun up a fresh goroutine pool
// per search with an atomic shard cursor; persistent workers keep the
// goroutine stack and scheduler state warm across searches and pin each
// shard to one worker, so a shard's arenas are always rescanned by the
// goroutine that scanned them last. Comparison counts are accumulated in
// each worker's scratch and folded into Costs here with a single atomic add
// per search instead of one per shard.
func (s *Server) scanParallel(sqs []*bitindex.Sparse, sc *scanScratch, nq, workers int) {
	s.startWorkers.Do(s.spawnWorkers)
	sc.wg.Add(workers)
	for k := 0; k < workers; k++ {
		s.jobs[k] <- scanJob{sqs: sqs, heaps: sc.heaps, nq: nq, ws: &sc.workers[k], wg: &sc.wg}
	}
	sc.wg.Wait()
	var cmps int64
	for k := 0; k < workers; k++ {
		cmps += sc.workers[k].cmps
	}
	s.Costs.BinaryComparisons.Add(cmps)
}

// spawnWorkers starts the persistent scan workers. Worker k owns shards
// k, k+W, k+2W, … — a fixed assignment, so every rescan of a shard touches
// memory the same goroutine last walked. The workers hold no reference to
// the Server (only their job channel and shard subset), letting the
// attached cleanup close the channels — and end the goroutines — once the
// Server itself is unreachable.
func (s *Server) spawnWorkers() {
	s.jobs = make([]chan scanJob, s.workers)
	for k := range s.jobs {
		jobs := make(chan scanJob, 1)
		s.jobs[k] = jobs
		var owned []*shard
		var idx []int
		for i := k; i < len(s.shards); i += s.workers {
			owned = append(owned, s.shards[i])
			idx = append(idx, i)
		}
		go scanWorker(jobs, owned, idx)
	}
	runtime.AddCleanup(s, stopWorkers, s.jobs)
}

// stopWorkers closes every job channel, ending the persistent workers. It
// runs as the Server's cleanup; by then no search can be in flight (a
// search holds the Server reachable), so no send can race the close.
func stopWorkers(jobs []chan scanJob) {
	for _, ch := range jobs {
		close(ch)
	}
}

// scanWorker is the persistent scan loop: one job per search, covering the
// worker's fixed shard subset. idx[i] is owned[i]'s global shard number,
// used to address the job's flat shard × query heap grid.
func scanWorker(jobs <-chan scanJob, owned []*shard, idx []int) {
	for j := range jobs {
		var cmps int64
		for i, sh := range owned {
			si := idx[i]
			cmps += sh.scan(j.sqs, j.ws, j.heaps[si*j.nq:(si+1)*j.nq])
		}
		j.ws.cmps = cmps
		j.wg.Done()
	}
}

func (s *Server) validateQuery(q *bitindex.Vector) error {
	if q == nil || q.Len() != s.params.R {
		return fmt.Errorf("core: query must be %d bits", s.params.R)
	}
	return nil
}

// Search runs the ranked oblivious search of Algorithm 1 against every
// stored index: a document matches if its level-1 index matches the query
// (Equation 3); its rank is the highest consecutive level that still
// matches. Results are returned in descending rank order, ties broken by
// document ID for determinism.
func (s *Server) Search(q *bitindex.Vector) ([]Match, error) {
	return s.SearchTop(q, 0)
}

// SearchTop returns only the top-τ matches ("the user can retrieve only the
// top τ matches where τ is chosen by the user", Section 5). τ ≤ 0 returns
// every match. With τ > 0 each shard retains at most τ candidates and only
// the global survivors' metadata vectors are copied out of the arenas.
func (s *Server) SearchTop(q *bitindex.Vector, tau int) ([]Match, error) {
	return s.SearchTopContext(context.Background(), q, tau)
}

// SearchTopContext is SearchTop with a request context for the scan
// observer (ObserveScanContexts): a traced request's context flows to the
// observer so its scan span lands in the right trace. ctx does not cancel
// the scan.
func (s *Server) SearchTopContext(ctx context.Context, q *bitindex.Vector, tau int) ([]Match, error) {
	if err := s.validateQuery(q); err != nil {
		return nil, err
	}
	h := s.scanHist.Load()
	obs := s.scanObs.Load()
	var start time.Time
	if h != nil || obs != nil {
		start = time.Now()
	}
	// Wrap the query and result in pooled one-element slices so a SearchTop
	// call allocates nothing but the returned matches.
	sc := s.scratch.Get().(*scanScratch)
	sc.qbuf = append(sc.qbuf[:0], q)
	if cap(sc.out) < 1 {
		sc.out = make([][]Match, 1)
	}
	sc.out = sc.out[:1]
	sc.out[0] = nil
	s.searchSharded(sc, sc.qbuf, tau, sc.out)
	res := sc.out[0]
	sc.out[0] = nil
	sc.qbuf[0] = nil
	s.scratch.Put(sc)
	if h != nil || obs != nil {
		d := time.Since(start)
		if h != nil {
			h.Observe(d)
		}
		if obs != nil {
			(*obs)(ctx, start, d)
		}
	}
	return res, nil
}

// SearchBatch evaluates several queries in one sharded pass over the store:
// each shard is locked and its arenas swept once per query back to back,
// paying the per-shard lock, fan-out and scratch costs once per batch
// instead of once per query. Result i is exactly what
// SearchTop(queries[i], tau) would return.
func (s *Server) SearchBatch(queries []*bitindex.Vector, tau int) ([][]Match, error) {
	return s.SearchBatchContext(context.Background(), queries, tau)
}

// SearchBatchContext is SearchBatch with a request context for the scan
// observer (see SearchTopContext).
func (s *Server) SearchBatchContext(ctx context.Context, queries []*bitindex.Vector, tau int) ([][]Match, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	for i, q := range queries {
		if err := s.validateQuery(q); err != nil {
			return nil, fmt.Errorf("core: batch query %d: %w", i, err)
		}
	}
	h := s.scanHist.Load()
	obs := s.scanObs.Load()
	var start time.Time
	if h != nil || obs != nil {
		start = time.Now()
	}
	out := make([][]Match, len(queries))
	sc := s.scratch.Get().(*scanScratch)
	s.searchSharded(sc, queries, tau, out)
	s.scratch.Put(sc)
	if h != nil || obs != nil {
		d := time.Since(start)
		if h != nil {
			h.Observe(d)
		}
		if obs != nil {
			(*obs)(ctx, start, d)
		}
	}
	return out, nil
}

// Fetch returns a stored encrypted document by ID (step 3 of Figure 1).
func (s *Server) Fetch(docID string) (*EncryptedDocument, error) {
	sh := s.shardFor(docID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	row, ok := sh.byID[docID]
	if !ok {
		return nil, fmt.Errorf("core: no document %q: %w", docID, ErrNotFound)
	}
	return sh.docs[row], nil
}

// exported pairs a materialized search index with its payload and upload
// sequence number, for the snapshot paths.
type exported struct {
	seq uint64
	si  *SearchIndex
	doc *EncryptedDocument
}

// materializeLocked rebuilds row's SearchIndex from the arenas. The caller
// must hold at least a read lock on the shard.
func (sh *shard) materializeLocked(row, nbits int) *SearchIndex {
	si := &SearchIndex{DocID: sh.ids[row], Levels: make([]*bitindex.Vector, len(sh.levels))}
	for l, arena := range sh.levels {
		si.Levels[l] = bitindex.FromWords(nbits, arena[row*sh.stride:(row+1)*sh.stride])
	}
	return si
}

// snapshotOrdered collects every stored document across shards in global
// upload order, materializing each search index from the arenas. All shard
// read locks are held simultaneously while copying so the snapshot is a
// consistent point in time, as under the pre-sharding single lock (every
// other path locks at most one shard, so acquiring them in slice order
// cannot deadlock).
func (s *Server) snapshotOrdered() []exported {
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
	var all []exported
	for _, sh := range s.shards {
		for row := range sh.ids {
			all = append(all, exported{seq: sh.seqs[row], si: sh.materializeLocked(row, s.params.R), doc: sh.docs[row]})
		}
	}
	for _, sh := range s.shards {
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	return all
}

// Export iterates over every stored document in upload order, passing its
// search index and encrypted payload to fn. It is the hook persistence
// layers (internal/store, internal/durable) snapshot the server through;
// iteration stops at the first error. The callback must not mutate the
// arguments, but it may retain them: the SearchIndex is materialized fresh
// for each call and the EncryptedDocument is immutable under the Upload
// contract — the durable checkpointer relies on this to capture a snapshot
// under lock and serialize it after release.
func (s *Server) Export(fn func(*SearchIndex, *EncryptedDocument) error) error {
	for _, d := range s.snapshotOrdered() {
		if err := fn(d.si, d.doc); err != nil {
			return err
		}
	}
	return nil
}

// DocumentIDs lists stored document IDs in upload order, for tooling. Unlike
// Export it copies no index words, only IDs and sequence numbers.
func (s *Server) DocumentIDs() []string {
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
	type seqID struct {
		seq uint64
		id  string
	}
	var all []seqID
	for _, sh := range s.shards {
		for row, id := range sh.ids {
			all = append(all, seqID{seq: sh.seqs[row], id: id})
		}
	}
	for _, sh := range s.shards {
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = d.id
	}
	return out
}
