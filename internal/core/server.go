package core

import (
	"fmt"
	"sort"
	"sync"

	"mkse/internal/bitindex"
	"mkse/internal/costs"
)

// Server is the semi-honest cloud server of Figure 1. It stores encrypted
// documents, RSA-wrapped keys and search indices, and answers queries with
// the oblivious comparison of Equation 3 plus the level-walking rank
// assignment of Algorithm 1. It holds no key material: everything it stores
// and computes on is opaque. A Server is safe for concurrent use.
type Server struct {
	params Params

	mu      sync.RWMutex
	indices []*SearchIndex
	byID    map[string]int
	docs    map[string]*EncryptedDocument

	// Costs tallies server-side binary comparisons (Table 2) and traffic.
	Costs costs.Counters
}

// NewServer creates an empty server for the given scheme parameters.
func NewServer(p Params) (*Server, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Server{
		params: p,
		byID:   make(map[string]int),
		docs:   make(map[string]*EncryptedDocument),
	}, nil
}

// Params returns the scheme parameters the server was configured with.
func (s *Server) Params() Params { return s.params }

// Upload stores one document's search index and encrypted payload. Both
// must refer to the same document ID; re-uploading an existing ID replaces
// it (the owner refreshing an index after key rotation).
func (s *Server) Upload(si *SearchIndex, doc *EncryptedDocument) error {
	if si == nil || doc == nil {
		return fmt.Errorf("core: nil upload")
	}
	if err := si.Validate(s.params); err != nil {
		return err
	}
	if doc.ID != si.DocID {
		return fmt.Errorf("core: index is for %q but document is %q", si.DocID, doc.ID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if pos, ok := s.byID[si.DocID]; ok {
		s.indices[pos] = si
	} else {
		s.byID[si.DocID] = len(s.indices)
		s.indices = append(s.indices, si)
	}
	s.docs[doc.ID] = doc
	return nil
}

// NumDocuments returns the number of stored documents σ.
func (s *Server) NumDocuments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.indices)
}

// Search runs the ranked oblivious search of Algorithm 1 against every
// stored index: a document matches if its level-1 index matches the query
// (Equation 3); its rank is the highest consecutive level that still
// matches. Results are returned in descending rank order, ties broken by
// document ID for determinism.
func (s *Server) Search(q *bitindex.Vector) ([]Match, error) {
	if q == nil || q.Len() != s.params.R {
		return nil, fmt.Errorf("core: query must be %d bits", s.params.R)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Match
	for _, si := range s.indices {
		s.Costs.BinaryComparisons.Add(1)
		if !si.Levels[0].Matches(q) {
			continue
		}
		rank := 1
		for rank < len(si.Levels) {
			s.Costs.BinaryComparisons.Add(1)
			if !si.Levels[rank].Matches(q) {
				break
			}
			rank++
		}
		out = append(out, Match{DocID: si.DocID, Rank: rank, Meta: si.Levels[0].Clone()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank > out[j].Rank
		}
		return out[i].DocID < out[j].DocID
	})
	return out, nil
}

// SearchTop returns only the top-τ matches ("the user can retrieve only the
// top τ matches where τ is chosen by the user", Section 5). τ ≤ 0 returns
// every match.
func (s *Server) SearchTop(q *bitindex.Vector, tau int) ([]Match, error) {
	all, err := s.Search(q)
	if err != nil {
		return nil, err
	}
	if tau > 0 && tau < len(all) {
		all = all[:tau]
	}
	return all, nil
}

// Fetch returns a stored encrypted document by ID (step 3 of Figure 1).
func (s *Server) Fetch(docID string) (*EncryptedDocument, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	doc, ok := s.docs[docID]
	if !ok {
		return nil, fmt.Errorf("core: no document %q", docID)
	}
	return doc, nil
}

// Export iterates over every stored document in upload order, passing its
// search index and encrypted payload to fn. It is the hook persistence
// layers (internal/store) snapshot the server through; iteration stops at
// the first error. The callback must not retain or mutate the arguments
// beyond the call.
func (s *Server) Export(fn func(*SearchIndex, *EncryptedDocument) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, si := range s.indices {
		if err := fn(si, s.docs[si.DocID]); err != nil {
			return err
		}
	}
	return nil
}

// DocumentIDs lists stored document IDs in upload order, for tooling.
func (s *Server) DocumentIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.indices))
	for i, si := range s.indices {
		out[i] = si.DocID
	}
	return out
}
