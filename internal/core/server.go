package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mkse/internal/bitindex"
	"mkse/internal/costs"
)

// Server is the semi-honest cloud server of Figure 1. It stores encrypted
// documents, RSA-wrapped keys and search indices, and answers queries with
// the oblivious comparison of Equation 3 plus the level-walking rank
// assignment of Algorithm 1. It holds no key material: everything it stores
// and computes on is opaque. A Server is safe for concurrent use.
//
// # Sharded architecture
//
// The document store is split over a fixed set of shards, each with its own
// lock, index slice and document map; a document's shard is a hash of its ID.
// Uploads, fetches and searches touching different shards never contend.
// Search fans the query out across shards with a bounded worker pool: every
// shard runs the Equation-3 match kernel over its own indices and keeps a
// local bounded top-τ heap keyed on (rank, docID); the per-shard winners are
// merged, cut to τ, and only the survivors' level-1 metadata is cloned.
// Binary-comparison cost accounting is batched into one atomic add per shard
// per query. For any fixed store state, results are identical — order
// included — to a sequential scan followed by a full (rank desc, docID asc)
// sort, whatever the shard and worker counts. Consistency under concurrent
// writes is per-shard, not global: a search overlapping in-flight uploads
// may observe a later upload while missing an earlier one on a different
// shard (the pre-sharding single lock made every search a point-in-time
// snapshot; Export retains that guarantee by locking all shards at once).
//
// Uploaded indices and documents are stored by reference and must not be
// mutated by the caller afterwards.
type Server struct {
	params  Params
	workers int
	shards  []*shard

	seq atomic.Uint64 // global upload order, for Export/DocumentIDs

	// Costs tallies server-side binary comparisons (Table 2) and traffic.
	Costs costs.Counters
}

// shard is one independently locked slice of the document store.
type shard struct {
	mu   sync.RWMutex
	byID map[string]int
	docs []storedDoc
}

// storedDoc pairs a search index with its payload and the global upload
// sequence number that preserves cross-shard iteration order.
type storedDoc struct {
	seq uint64
	si  *SearchIndex
	doc *EncryptedDocument
}

// NewServer creates an empty server with one shard per GOMAXPROCS core.
func NewServer(p Params) (*Server, error) {
	return NewServerSharded(p, 0, 0)
}

// NewServerSharded creates an empty server with an explicit shard count and
// search worker-pool size. shards <= 0 defaults to GOMAXPROCS; workers <= 0
// defaults to min(shards, GOMAXPROCS). A single shard reproduces the
// monolithic layout (one lock, one scan).
func NewServerSharded(p Params, shards, workers int) (*Server, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	s := &Server{params: p, workers: workers, shards: make([]*shard, shards)}
	for i := range s.shards {
		s.shards[i] = &shard{byID: make(map[string]int)}
	}
	return s, nil
}

// Params returns the scheme parameters the server was configured with.
func (s *Server) Params() Params { return s.params }

// NumShards returns the number of store shards.
func (s *Server) NumShards() int { return len(s.shards) }

// NumWorkers returns the resolved search worker-pool size.
func (s *Server) NumWorkers() int { return s.workers }

// shardFor routes a document ID to its shard (inlined 32-bit FNV-1a — the
// hash/fnv object would heap-allocate on every Upload/Fetch).
func (s *Server) shardFor(docID string) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(docID); i++ {
		h ^= uint32(docID[i])
		h *= 16777619
	}
	return s.shards[h%uint32(len(s.shards))]
}

// Upload stores one document's search index and encrypted payload. Both
// must refer to the same document ID; re-uploading an existing ID replaces
// it (the owner refreshing an index after key rotation) in place, keeping
// its original upload-order position.
func (s *Server) Upload(si *SearchIndex, doc *EncryptedDocument) error {
	if si == nil || doc == nil {
		return fmt.Errorf("core: nil upload")
	}
	if err := si.Validate(s.params); err != nil {
		return err
	}
	if doc.ID != si.DocID {
		return fmt.Errorf("core: index is for %q but document is %q", si.DocID, doc.ID)
	}
	sh := s.shardFor(si.DocID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if pos, ok := sh.byID[si.DocID]; ok {
		sh.docs[pos].si = si
		sh.docs[pos].doc = doc
		return nil
	}
	sh.byID[si.DocID] = len(sh.docs)
	sh.docs = append(sh.docs, storedDoc{seq: s.seq.Add(1), si: si, doc: doc})
	return nil
}

// NumDocuments returns the number of stored documents σ.
func (s *Server) NumDocuments() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.docs)
		sh.mu.RUnlock()
	}
	return n
}

// candidate is a match that survived a shard scan: the rank and a reference
// to the stored index. Its metadata is cloned only if it survives the global
// τ-cut — the seed implementation cloned every match's r-bit vector up
// front and then discarded all but τ of them.
type candidate struct {
	rank int
	si   *SearchIndex
}

// worse orders candidates worst-first: lower rank, ties broken by larger
// document ID (the final output is rank descending, docID ascending).
func (c candidate) worse(o candidate) bool {
	if c.rank != o.rank {
		return c.rank < o.rank
	}
	return c.si.DocID > o.si.DocID
}

// topTau accumulates match candidates. With limit > 0 it is a bounded
// min-heap (worst kept candidate at the root) holding the τ best seen so
// far; with limit <= 0 it collects everything.
type topTau struct {
	limit int
	c     []candidate
}

func (h *topTau) add(c candidate) {
	if h.limit <= 0 {
		h.c = append(h.c, c)
		return
	}
	if len(h.c) < h.limit {
		h.c = append(h.c, c)
		// Sift up.
		i := len(h.c) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !h.c[i].worse(h.c[parent]) {
				break
			}
			h.c[i], h.c[parent] = h.c[parent], h.c[i]
			i = parent
		}
		return
	}
	if !h.c[0].worse(c) {
		return // incoming candidate is no better than the worst kept
	}
	// Replace the root and sift down.
	h.c[0] = c
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h.c) && h.c[l].worse(h.c[min]) {
			min = l
		}
		if r < len(h.c) && h.c[r].worse(h.c[min]) {
			min = r
		}
		if min == i {
			return
		}
		h.c[i], h.c[min] = h.c[min], h.c[i]
		i = min
	}
}

// scan runs the Equation-3 match kernel and Algorithm-1 level walk over one
// shard for every query, feeding per-query heaps. It returns the number of
// r-bit comparisons performed so the caller can record them with a single
// atomic add per shard.
func (sh *shard) scan(qs []*bitindex.Vector, heaps []*topTau) int64 {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var cmps int64
	matched := make([]bool, len(qs))
	for i := range sh.docs {
		si := sh.docs[i].si
		// Level-1 screen for every query in one pass over the document's
		// index: the kernel keeps the index words hot across queries.
		si.Levels[0].MatchAll(qs, matched)
		cmps += int64(len(qs))
		for qi, ok := range matched {
			if !ok {
				continue
			}
			rank := 1
			for rank < len(si.Levels) {
				cmps++
				if !si.Levels[rank].Matches(qs[qi]) {
					break
				}
				rank++
			}
			heaps[qi].add(candidate{rank: rank, si: si})
		}
	}
	return cmps
}

// searchSharded fans qs out across shards with the worker pool and merges
// the per-shard winners into one rank-ordered, τ-cut result per query.
func (s *Server) searchSharded(qs []*bitindex.Vector, tau int) [][]Match {
	// Per-shard, per-query heaps: heaps[shard][query].
	heaps := make([][]*topTau, len(s.shards))
	for si := range heaps {
		heaps[si] = make([]*topTau, len(qs))
		for qi := range heaps[si] {
			heaps[si][qi] = &topTau{limit: tau}
		}
	}

	scanShard := func(i int) {
		cmps := s.shards[i].scan(qs, heaps[i])
		s.Costs.BinaryComparisons.Add(cmps)
	}
	if w := s.workers; w <= 1 || len(s.shards) == 1 {
		for i := range s.shards {
			scanShard(i)
		}
	} else {
		// Per-call fan-out: w goroutines claim shards through an atomic
		// cursor (no feeder goroutine or channel on the query hot path).
		var wg sync.WaitGroup
		var cursor atomic.Int64
		wg.Add(w)
		for k := 0; k < w; k++ {
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(s.shards) {
						return
					}
					scanShard(i)
				}
			}()
		}
		wg.Wait()
	}

	out := make([][]Match, len(qs))
	for qi := range qs {
		var cands []candidate
		for si := range s.shards {
			cands = append(cands, heaps[si][qi].c...)
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].rank != cands[j].rank {
				return cands[i].rank > cands[j].rank
			}
			return cands[i].si.DocID < cands[j].si.DocID
		})
		if tau > 0 && tau < len(cands) {
			cands = cands[:tau]
		}
		if len(cands) == 0 {
			continue // out[qi] stays nil, matching the sequential scan
		}
		ms := make([]Match, len(cands))
		for i, c := range cands {
			ms[i] = Match{DocID: c.si.DocID, Rank: c.rank, Meta: c.si.Levels[0].Clone()}
		}
		out[qi] = ms
	}
	return out
}

func (s *Server) validateQuery(q *bitindex.Vector) error {
	if q == nil || q.Len() != s.params.R {
		return fmt.Errorf("core: query must be %d bits", s.params.R)
	}
	return nil
}

// Search runs the ranked oblivious search of Algorithm 1 against every
// stored index: a document matches if its level-1 index matches the query
// (Equation 3); its rank is the highest consecutive level that still
// matches. Results are returned in descending rank order, ties broken by
// document ID for determinism.
func (s *Server) Search(q *bitindex.Vector) ([]Match, error) {
	return s.SearchTop(q, 0)
}

// SearchTop returns only the top-τ matches ("the user can retrieve only the
// top τ matches where τ is chosen by the user", Section 5). τ ≤ 0 returns
// every match. With τ > 0 each shard retains at most τ candidates and only
// the global survivors' metadata vectors are cloned.
func (s *Server) SearchTop(q *bitindex.Vector, tau int) ([]Match, error) {
	if err := s.validateQuery(q); err != nil {
		return nil, err
	}
	return s.searchSharded([]*bitindex.Vector{q}, tau)[0], nil
}

// SearchBatch evaluates several queries in one sharded pass over the store:
// every shard is scanned once, testing each document against all queries
// while its index words are hot, instead of once per query. Result i is
// exactly what SearchTop(queries[i], tau) would return.
func (s *Server) SearchBatch(queries []*bitindex.Vector, tau int) ([][]Match, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	for i, q := range queries {
		if err := s.validateQuery(q); err != nil {
			return nil, fmt.Errorf("core: batch query %d: %w", i, err)
		}
	}
	return s.searchSharded(queries, tau), nil
}

// Fetch returns a stored encrypted document by ID (step 3 of Figure 1).
func (s *Server) Fetch(docID string) (*EncryptedDocument, error) {
	sh := s.shardFor(docID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	pos, ok := sh.byID[docID]
	if !ok {
		return nil, fmt.Errorf("core: no document %q", docID)
	}
	return sh.docs[pos].doc, nil
}

// snapshotOrdered collects every stored document across shards in global
// upload order. All shard read locks are held simultaneously while copying
// so the snapshot is a consistent point in time, as under the pre-sharding
// single lock (every other path locks at most one shard, so acquiring them
// in slice order cannot deadlock).
func (s *Server) snapshotOrdered() []storedDoc {
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
	var all []storedDoc
	for _, sh := range s.shards {
		all = append(all, sh.docs...)
	}
	for _, sh := range s.shards {
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	return all
}

// Export iterates over every stored document in upload order, passing its
// search index and encrypted payload to fn. It is the hook persistence
// layers (internal/store) snapshot the server through; iteration stops at
// the first error. The callback must not retain or mutate the arguments
// beyond the call.
func (s *Server) Export(fn func(*SearchIndex, *EncryptedDocument) error) error {
	for _, d := range s.snapshotOrdered() {
		if err := fn(d.si, d.doc); err != nil {
			return err
		}
	}
	return nil
}

// DocumentIDs lists stored document IDs in upload order, for tooling.
func (s *Server) DocumentIDs() []string {
	all := s.snapshotOrdered()
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = d.si.DocID
	}
	return out
}
